package gridbank

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/replica"
)

// DeploymentConfig parameterizes NewDeployment.
type DeploymentConfig struct {
	// VO names the virtual organization; it becomes the CA name and the
	// certificate O= component. Required.
	VO string
	// Branch is the four-digit branch number (default "0001").
	Branch string
	// Admins lists extra administrator certificate names; the deployment
	// always creates its own "banker" admin identity.
	Admins []string
	// Journal persists the ledger; nil keeps it in memory.
	Journal Journal
	// ListenAddr is where the server listens (default "127.0.0.1:0",
	// i.e. an ephemeral loopback port).
	ListenAddr string
	// Now injects a clock (simulations); default time.Now.
	Now func() time.Time
}

// Deployment is a complete single-VO GridBank: CA, trust store, bank,
// TLS server, and an administrator identity. It exists so examples,
// tests and experiments can stand up a working Grid bank in one call;
// production deployments wire the pieces explicitly (see cmd/gridbankd).
type Deployment struct {
	CA     *CA
	Trust  *TrustStore
	Bank   *Bank
	Server *Server
	// Banker is the built-in administrator identity.
	Banker *Identity

	addr     string
	serveErr chan error

	publisher *replica.Publisher
	pubAddr   string
	pubErr    chan error
	replicas  []*ReadReplica
}

// ReadReplica is one in-process WAL-shipped read replica of a
// Deployment: a follower mirroring the primary's store plus a read-only
// TLS server answering the query API from it.
type ReadReplica struct {
	Follower *replica.Follower
	Server   *core.Server

	addr      string
	serveErr  chan error
	closeOnce sync.Once
	closeErr  error
}

// Addr returns the replica's query-API listen address.
func (r *ReadReplica) Addr() string { return r.addr }

// Close stops the replica's server and follower. Idempotent —
// Deployment.Close also closes every replica it created.
func (r *ReadReplica) Close() error {
	r.closeOnce.Do(func() {
		r.closeErr = r.Server.Close()
		<-r.serveErr
		if ferr := r.Follower.Close(); r.closeErr == nil {
			r.closeErr = ferr
		}
	})
	return r.closeErr
}

// NewDeployment stands up a VO bank and starts its TLS server.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.VO == "" {
		return nil, errors.New("gridbank: deployment requires a VO name")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ca, err := pki.NewCA(cfg.VO+" CA", cfg.VO, 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: cfg.VO, IsServer: true})
	if err != nil {
		return nil, err
	}
	banker, err := ca.Issue(pki.IssueOptions{CommonName: "banker", Organization: cfg.VO})
	if err != nil {
		return nil, err
	}
	store, err := db.Open(cfg.Journal)
	if err != nil {
		return nil, err
	}
	bank, err := core.NewBank(store, core.BankConfig{
		Identity: bankID,
		Trust:    trust,
		Admins:   append([]string{banker.SubjectName()}, cfg.Admins...),
		Branch:   cfg.Branch,
		Now:      cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		return nil, err
	}
	srv.Logf = func(string, ...any) {} // deployments are quiet; wire Logf explicitly if needed
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("gridbank: listen %s: %w", cfg.ListenAddr, err)
	}
	d := &Deployment{
		CA:       ca,
		Trust:    trust,
		Bank:     bank,
		Server:   srv,
		Banker:   banker,
		addr:     ln.Addr().String(),
		serveErr: make(chan error, 1),
	}
	go func() { d.serveErr <- srv.Serve(ln) }()
	return d, nil
}

// Addr returns the server's listen address.
func (d *Deployment) Addr() string { return d.addr }

// NewUser issues an identity in the deployment's VO.
func (d *Deployment) NewUser(name string) (*Identity, error) {
	return d.CA.Issue(pki.IssueOptions{CommonName: name, Organization: voOf(d)})
}

func voOf(d *Deployment) string {
	orgs := d.CA.Certificate().Subject.Organization
	if len(orgs) > 0 {
		return orgs[0]
	}
	return ""
}

// Dial connects a client authenticated as id.
func (d *Deployment) Dial(id *Identity) (*Client, error) {
	return core.Dial(d.addr, id, d.Trust)
}

// DialProxy creates a short-lived proxy for id and connects with it —
// the paper's single sign-on flow.
func (d *Deployment) DialProxy(id *Identity, ttl time.Duration) (*Client, error) {
	proxy, err := pki.NewProxy(id, ttl)
	if err != nil {
		return nil, err
	}
	return core.Dial(d.addr, proxy, d.Trust)
}

// EnableReplication starts the deployment's WAL-shipping publisher (on
// an ephemeral loopback port) and returns its address. Idempotent.
func (d *Deployment) EnableReplication() (string, error) {
	if d.publisher != nil {
		return d.pubAddr, nil
	}
	bankID := d.Bank.Identity()
	pub, err := replica.NewPublisher(replica.PublisherConfig{
		Store:       d.Bank.Manager().Store(),
		Identity:    bankID,
		Trust:       d.Trust,
		PrimaryAddr: d.addr,
		Heartbeat:   100 * time.Millisecond,
	})
	if err != nil {
		return "", err
	}
	pub.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	d.publisher = pub
	d.pubAddr = ln.Addr().String()
	d.pubErr = make(chan error, 1)
	go func() { d.pubErr <- pub.Serve(ln) }()
	return d.pubAddr, nil
}

// AddReadReplica boots a read replica named name: it bootstraps from
// the primary over the replication stream (starting the publisher if
// needed), then serves the query subset of the API on its own loopback
// address. Mutations sent to it redirect to the primary.
func (d *Deployment) AddReadReplica(name string) (*ReadReplica, error) {
	pubAddr, err := d.EnableReplication()
	if err != nil {
		return nil, err
	}
	id, err := d.CA.Issue(pki.IssueOptions{CommonName: name, Organization: voOf(d), IsServer: true})
	if err != nil {
		return nil, err
	}
	fol, err := replica.StartFollower(replica.FollowerConfig{
		PublisherAddr: pubAddr,
		Identity:      id,
		Trust:         d.Trust,
		RetryInterval: 100 * time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	if err := fol.WaitReady(10 * time.Second); err != nil {
		fol.Close()
		return nil, err
	}
	rb, err := core.NewReadOnlyBank(fol, core.ReadOnlyBankConfig{Identity: id, Trust: d.Trust})
	if err != nil {
		fol.Close()
		return nil, err
	}
	srv, err := core.NewReadOnlyServer(rb, id)
	if err != nil {
		fol.Close()
		return nil, err
	}
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fol.Close()
		return nil, err
	}
	r := &ReadReplica{
		Follower: fol,
		Server:   srv,
		addr:     ln.Addr().String(),
		serveErr: make(chan error, 1),
	}
	go func() { r.serveErr <- srv.Serve(ln) }()
	d.replicas = append(d.replicas, r)
	return r, nil
}

// Replicas returns the deployment's read replicas, in creation order.
func (d *Deployment) Replicas() []*ReadReplica { return d.replicas }

// SyncReplicas blocks until every replica has applied the primary's
// current sequence — the barrier examples and tests use between a write
// and a replica read.
func (d *Deployment) SyncReplicas(timeout time.Duration) error {
	seq := d.Bank.Manager().Store().CurrentSeq()
	for _, r := range d.replicas {
		if err := r.Follower.WaitForSeq(seq, timeout); err != nil {
			return err
		}
	}
	return nil
}

// DialRouted connects a read-routing client authenticated as id: reads
// spread over every replica within opts' staleness bound, mutations and
// stale-replica fallbacks go to the primary.
func (d *Deployment) DialRouted(id *Identity, opts core.RouteOptions) (*core.RoutedClient, error) {
	primary, err := core.Dial(d.addr, id, d.Trust)
	if err != nil {
		return nil, err
	}
	var reps []*Client
	for _, r := range d.replicas {
		c, err := core.Dial(r.Addr(), id, d.Trust)
		if err != nil {
			primary.Close()
			for _, rc := range reps {
				rc.Close()
			}
			return nil, err
		}
		reps = append(reps, c)
	}
	return core.NewRoutedClient(primary, reps, opts)
}

// Close stops the replicas, the publisher, then the server.
func (d *Deployment) Close() error {
	var firstErr error
	for _, r := range d.replicas {
		if err := r.Close(); firstErr == nil {
			firstErr = err
		}
	}
	d.replicas = nil
	if d.publisher != nil {
		if err := d.publisher.Close(); firstErr == nil {
			firstErr = err
		}
		<-d.pubErr
		d.publisher = nil
	}
	if err := d.Server.Close(); firstErr == nil {
		firstErr = err
	}
	<-d.serveErr
	return firstErr
}
