package gridbank

import (
	"errors"
	"fmt"
	"net"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/db"
	"gridbank/internal/pki"
)

// DeploymentConfig parameterizes NewDeployment.
type DeploymentConfig struct {
	// VO names the virtual organization; it becomes the CA name and the
	// certificate O= component. Required.
	VO string
	// Branch is the four-digit branch number (default "0001").
	Branch string
	// Admins lists extra administrator certificate names; the deployment
	// always creates its own "banker" admin identity.
	Admins []string
	// Journal persists the ledger; nil keeps it in memory.
	Journal Journal
	// ListenAddr is where the server listens (default "127.0.0.1:0",
	// i.e. an ephemeral loopback port).
	ListenAddr string
	// Now injects a clock (simulations); default time.Now.
	Now func() time.Time
}

// Deployment is a complete single-VO GridBank: CA, trust store, bank,
// TLS server, and an administrator identity. It exists so examples,
// tests and experiments can stand up a working Grid bank in one call;
// production deployments wire the pieces explicitly (see cmd/gridbankd).
type Deployment struct {
	CA     *CA
	Trust  *TrustStore
	Bank   *Bank
	Server *Server
	// Banker is the built-in administrator identity.
	Banker *Identity

	addr     string
	serveErr chan error
}

// NewDeployment stands up a VO bank and starts its TLS server.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.VO == "" {
		return nil, errors.New("gridbank: deployment requires a VO name")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ca, err := pki.NewCA(cfg.VO+" CA", cfg.VO, 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: cfg.VO, IsServer: true})
	if err != nil {
		return nil, err
	}
	banker, err := ca.Issue(pki.IssueOptions{CommonName: "banker", Organization: cfg.VO})
	if err != nil {
		return nil, err
	}
	store, err := db.Open(cfg.Journal)
	if err != nil {
		return nil, err
	}
	bank, err := core.NewBank(store, core.BankConfig{
		Identity: bankID,
		Trust:    trust,
		Admins:   append([]string{banker.SubjectName()}, cfg.Admins...),
		Branch:   cfg.Branch,
		Now:      cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		return nil, err
	}
	srv.Logf = func(string, ...any) {} // deployments are quiet; wire Logf explicitly if needed
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("gridbank: listen %s: %w", cfg.ListenAddr, err)
	}
	d := &Deployment{
		CA:       ca,
		Trust:    trust,
		Bank:     bank,
		Server:   srv,
		Banker:   banker,
		addr:     ln.Addr().String(),
		serveErr: make(chan error, 1),
	}
	go func() { d.serveErr <- srv.Serve(ln) }()
	return d, nil
}

// Addr returns the server's listen address.
func (d *Deployment) Addr() string { return d.addr }

// NewUser issues an identity in the deployment's VO.
func (d *Deployment) NewUser(name string) (*Identity, error) {
	return d.CA.Issue(pki.IssueOptions{CommonName: name, Organization: voOf(d)})
}

func voOf(d *Deployment) string {
	orgs := d.CA.Certificate().Subject.Organization
	if len(orgs) > 0 {
		return orgs[0]
	}
	return ""
}

// Dial connects a client authenticated as id.
func (d *Deployment) Dial(id *Identity) (*Client, error) {
	return core.Dial(d.addr, id, d.Trust)
}

// DialProxy creates a short-lived proxy for id and connects with it —
// the paper's single sign-on flow.
func (d *Deployment) DialProxy(id *Identity, ttl time.Duration) (*Client, error) {
	proxy, err := pki.NewProxy(id, ttl)
	if err != nil {
		return nil, err
	}
	return core.Dial(d.addr, proxy, d.Trust)
}

// Close stops the server.
func (d *Deployment) Close() error {
	err := d.Server.Close()
	<-d.serveErr
	return err
}
