package gridbank

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/db"
	"gridbank/internal/micropay"
	"gridbank/internal/pki"
	"gridbank/internal/replica"
	"gridbank/internal/shard"
	"gridbank/internal/usage"
)

// DeploymentConfig parameterizes NewDeployment.
type DeploymentConfig struct {
	// VO names the virtual organization; it becomes the CA name and the
	// certificate O= component. Required.
	VO string
	// Branch is the four-digit branch number (default "0001").
	Branch string
	// Admins lists extra administrator certificate names; the deployment
	// always creates its own "banker" admin identity.
	Admins []string
	// Journal persists the ledger; nil keeps it in memory.
	Journal Journal
	// ListenAddr is where the server listens (default "127.0.0.1:0",
	// i.e. an ephemeral loopback port).
	ListenAddr string
	// Now injects a clock (simulations); default time.Now.
	Now func() time.Time
	// MaxConns caps concurrent client connections on every server the
	// deployment runs (primary and read replicas). 0 = unlimited.
	MaxConns int
	// IdleTimeout drops connections with no traffic and no in-flight
	// requests. 0 = the server default (core.DefaultIdleTimeout);
	// negative disables.
	IdleTimeout time.Duration
	// MaxInFlight caps concurrently dispatched requests per connection.
	// 0 = the server default (core.DefaultMaxInFlight).
	MaxInFlight int
	// DedupTTL bounds how long idempotency-key dedup markers protect a
	// replayed mutation. 0 = the bank default (core.DefaultDedupTTL);
	// negative disables the sweep.
	DedupTTL time.Duration
	// WireCodecs selects the wire codec policy for everything the
	// deployment stands up, in preference order (wire.CodecBin1,
	// wire.CodecJSON). Servers (primary and replicas) accept these in
	// negotiation; clients dialed through the deployment and the
	// replication followers offer them. Nil is the seed behavior:
	// servers accept any supported codec but nothing offers, so every
	// frame stays JSON.
	WireCodecs []string
}

// applyLimits pushes the deployment's connection limits onto a server
// before it starts serving.
func (cfg DeploymentConfig) applyLimits(srv *core.Server) {
	srv.MaxConns = cfg.MaxConns
	srv.IdleTimeout = cfg.IdleTimeout
	srv.MaxInFlight = cfg.MaxInFlight
	srv.WireCodecs = cfg.WireCodecs
}

// Deployment is a complete single-VO GridBank: CA, trust store, bank,
// TLS server, and an administrator identity. It exists so examples,
// tests and experiments can stand up a working Grid bank in one call;
// production deployments wire the pieces explicitly (see cmd/gridbankd).
type Deployment struct {
	CA     *CA
	Trust  *TrustStore
	Bank   *Bank
	Server *Server
	// Banker is the built-in administrator identity.
	Banker *Identity

	cfg       DeploymentConfig
	bankID    *Identity
	addr      string
	serveErr  chan error
	closeOnce sync.Once
	closeErr  error

	// sharded is the shard ledger when EnableSharding was called (even
	// with n=1); nil for a classic single-store deployment.
	sharded *shard.Ledger

	pubs     map[int]*shardPublisher // shard index -> commit-stream publisher
	replicas []*ReadReplica

	// usagePipe is the batched settlement pipeline when EnableUsage was
	// called; nil otherwise.
	usagePipe *usage.Pipeline

	// micropayPipe is the streaming chain-redemption pipeline when
	// EnableMicropay was called; nil otherwise.
	micropayPipe *micropay.Pipeline
}

// PipelineOptions is the shared tuning surface of the deployment's two
// spooled settlement pipelines — batched usage (EnableUsage) and
// streaming micropayment redemption (EnableMicropay). Both pipelines
// have the same intake shape (spool, batch, workers, backpressure), so
// they share one option struct; zero values take the pipeline defaults:
// 64-item batches, 2 workers, 4096-deep queue.
type PipelineOptions struct {
	// BatchSize caps how many spooled items one settlement pass takes
	// off the queue and coalesces into one ledger transaction (for
	// micropay, all claims for one chain inside a batch settle as one
	// redemption).
	BatchSize int
	// Workers is the number of background settlement goroutines.
	// Negative runs none (settlement through Drain/SettleOnce only).
	Workers int
	// MaxPending bounds the intake queue (backpressure threshold).
	MaxPending int
	// SpoolJournal persists the intake spool; nil keeps it in memory —
	// the in-process harness trades intake durability for convenience,
	// exactly like EnableSharding's extra shards. Production wiring
	// with a WAL-backed spool is gridbankd's job (see -usage and
	// -micropay).
	SpoolJournal Journal
}

// UsageOptions tune EnableUsage. Alias of PipelineOptions: existing
// composite literals keep compiling, and harness code can build one
// option set and pass it to both pipelines.
type UsageOptions = PipelineOptions

// shardPublisher is one shard's WAL-shipping publisher.
type shardPublisher struct {
	pub      *replica.Publisher
	addr     string
	serveErr chan error
}

// ReadReplica is one in-process WAL-shipped read replica of a
// Deployment: a follower mirroring one primary store (the whole ledger,
// or a single shard of it) plus a read-only TLS server answering the
// query API from it.
type ReadReplica struct {
	Follower *replica.Follower
	Server   *core.Server
	// Shard is the shard this replica follows (0 on an unsharded
	// deployment).
	Shard int

	addr      string
	serveErr  chan error
	closeOnce sync.Once
	closeErr  error
}

// Addr returns the replica's query-API listen address.
func (r *ReadReplica) Addr() string { return r.addr }

// Close stops the replica's server and follower. Idempotent —
// Deployment.Close also closes every replica it created.
func (r *ReadReplica) Close() error {
	r.closeOnce.Do(func() {
		r.closeErr = r.Server.Close()
		<-r.serveErr
		if ferr := r.Follower.Close(); r.closeErr == nil {
			r.closeErr = ferr
		}
	})
	return r.closeErr
}

// NewDeployment stands up a VO bank and starts its TLS server.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.VO == "" {
		return nil, errors.New("gridbank: deployment requires a VO name")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ca, err := pki.NewCA(cfg.VO+" CA", cfg.VO, 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: cfg.VO, IsServer: true})
	if err != nil {
		return nil, err
	}
	banker, err := ca.Issue(pki.IssueOptions{CommonName: "banker", Organization: cfg.VO})
	if err != nil {
		return nil, err
	}
	store, err := db.Open(cfg.Journal)
	if err != nil {
		return nil, err
	}
	bank, err := core.NewBank(store, core.BankConfig{
		Identity: bankID,
		Trust:    trust,
		Admins:   append([]string{banker.SubjectName()}, cfg.Admins...),
		Branch:   cfg.Branch,
		Now:      cfg.Now,
		DedupTTL: cfg.DedupTTL,
	})
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		return nil, err
	}
	srv.Logf = func(string, ...any) {} // deployments are quiet; wire Logf explicitly if needed
	cfg.applyLimits(srv)
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("gridbank: listen %s: %w", cfg.ListenAddr, err)
	}
	d := &Deployment{
		CA:       ca,
		Trust:    trust,
		Bank:     bank,
		Server:   srv,
		Banker:   banker,
		cfg:      cfg,
		bankID:   bankID,
		addr:     ln.Addr().String(),
		serveErr: make(chan error, 1),
		pubs:     make(map[int]*shardPublisher),
	}
	go func() { d.serveErr <- srv.Serve(ln) }()
	return d, nil
}

// Addr returns the server's listen address.
func (d *Deployment) Addr() string { return d.addr }

// NewUser issues an identity in the deployment's VO.
func (d *Deployment) NewUser(name string) (*Identity, error) {
	return d.CA.Issue(pki.IssueOptions{CommonName: name, Organization: voOf(d)})
}

func voOf(d *Deployment) string {
	orgs := d.CA.Certificate().Subject.Organization
	if len(orgs) > 0 {
		return orgs[0]
	}
	return ""
}

// Dial connects a client authenticated as id.
func (d *Deployment) Dial(id *Identity) (*Client, error) {
	c, err := core.Dial(d.addr, id, d.Trust)
	if err != nil {
		return nil, err
	}
	c.OfferCodecs = d.cfg.WireCodecs
	return c, nil
}

// DialProxy creates a short-lived proxy for id and connects with it —
// the paper's single sign-on flow.
func (d *Deployment) DialProxy(id *Identity, ttl time.Duration) (*Client, error) {
	proxy, err := pki.NewProxy(id, ttl)
	if err != nil {
		return nil, err
	}
	c, err := core.Dial(d.addr, proxy, d.Trust)
	if err != nil {
		return nil, err
	}
	c.OfferCodecs = d.cfg.WireCodecs
	return c, nil
}

// shardStores returns the per-shard stores (a single-element slice on
// an unsharded deployment).
func (d *Deployment) shardStores() []*db.Store {
	if d.sharded != nil {
		return d.sharded.Stores()
	}
	return []*db.Store{d.Bank.Ledger().Store()}
}

// EnableSharding repartitions a fresh deployment's ledger over n
// consistent-hash shards: shard 0 is the deployment's original store
// (keeping the configured journal and full byte compatibility for
// n = 1), shards 1..n-1 are volatile in-memory stores — the in-process
// deployment harness trades their durability for convenience;
// production sharding with one journal per shard is gridbankd's job
// (see -shards).
//
// It must be called before any accounts exist and before replication
// is enabled: resharding populated stores would strand accounts on
// shards their IDs no longer hash to, and that migration is not
// implemented. The bank and TLS server are rebuilt, so the
// deployment's address changes — call this immediately after
// NewDeployment, before handing out the address or dialing clients.
func (d *Deployment) EnableSharding(n int) error {
	if n < 1 {
		return fmt.Errorf("gridbank: shard count %d", n)
	}
	if d.sharded != nil {
		return errors.New("gridbank: sharding already enabled")
	}
	if len(d.pubs) > 0 || len(d.replicas) > 0 {
		return errors.New("gridbank: enable sharding before replication")
	}
	if d.usagePipe != nil {
		// EnableSharding rebuilds the bank over a new ledger; a pipeline
		// bound to the old one would settle into the wrong stores.
		return errors.New("gridbank: enable sharding before the usage pipeline")
	}
	if d.micropayPipe != nil {
		return errors.New("gridbank: enable sharding before the micropay pipeline")
	}
	meta := d.Bank.Ledger().Store()
	if cnt, err := meta.Count("accounts"); err != nil {
		return err
	} else if cnt > 0 && n > 1 {
		return errors.New("gridbank: cannot shard a deployment that already has accounts (resharding requires migration)")
	}
	stores := make([]*db.Store, n)
	stores[0] = meta
	for i := 1; i < n; i++ {
		stores[i] = db.MustOpenMemory()
	}
	led, err := shard.New(stores, shard.Config{Branch: branchOf(d.cfg), Now: d.cfg.Now})
	if err != nil {
		return err
	}
	bank, err := core.NewBankWithLedger(led, core.BankConfig{
		Identity: d.bankID,
		Trust:    d.Trust,
		Admins:   append([]string{d.Banker.SubjectName()}, d.cfg.Admins...),
		Branch:   branchOf(d.cfg),
		Now:      d.cfg.Now,
		DedupTTL: d.cfg.DedupTTL,
	})
	if err != nil {
		return err
	}
	srv, err := core.NewServer(bank, d.bankID)
	if err != nil {
		return err
	}
	srv.Logf = func(string, ...any) {}
	d.cfg.applyLimits(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	if err := d.Server.Close(); err != nil {
		ln.Close()
		return err
	}
	<-d.serveErr
	d.sharded = led
	d.Bank = bank
	d.Server = srv
	d.addr = ln.Addr().String()
	d.serveErr = make(chan error, 1)
	go func() { d.serveErr <- srv.Serve(ln) }()
	return nil
}

func branchOf(cfg DeploymentConfig) string {
	if cfg.Branch == "" {
		return "0001"
	}
	return cfg.Branch
}

// Sharded returns the shard ledger, or nil on an unsharded deployment.
func (d *Deployment) Sharded() *shard.Ledger { return d.sharded }

// EnableUsage attaches the batched asynchronous usage-settlement
// pipeline to the deployment's bank, opening the Usage.Submit /
// Usage.Status / Usage.Drain operations to clients. Call it after
// EnableSharding (the pipeline binds to the ledger's final shape) and
// before handing out the address. Idempotent per deployment.
func (d *Deployment) EnableUsage(opts UsageOptions) (*usage.Pipeline, error) {
	if d.usagePipe != nil {
		return d.usagePipe, nil
	}
	spool, err := db.Open(opts.SpoolJournal)
	if err != nil {
		return nil, err
	}
	var led usage.Ledger
	if d.sharded != nil {
		led = usage.WrapSharded(d.sharded)
	} else {
		led = usage.WrapManager(d.Bank.Manager())
	}
	pipe, err := usage.New(usage.Config{
		Ledger:     led,
		Spool:      spool,
		BatchSize:  opts.BatchSize,
		Workers:    opts.Workers,
		MaxPending: opts.MaxPending,
		Now:        d.cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	d.Bank.SetUsage(pipe)
	d.usagePipe = pipe
	return pipe, nil
}

// Usage returns the settlement pipeline, or nil when EnableUsage was
// not called.
func (d *Deployment) Usage() *usage.Pipeline { return d.usagePipe }

// MicropayOptions tune EnableMicropay. Alias of PipelineOptions (see
// UsageOptions).
type MicropayOptions = PipelineOptions

// EnableMicropay attaches the streaming GridHash redemption pipeline to
// the deployment's bank, opening the Micropay.Submit / Micropay.Status
// / Micropay.Drain operations to clients. The pipeline shares the
// bank's chain redeemer, so streamed claims and synchronous RedeemChain
// calls serialize per serial. Call it after EnableSharding and before
// handing out the address. Idempotent per deployment.
func (d *Deployment) EnableMicropay(opts MicropayOptions) (*micropay.Pipeline, error) {
	if d.micropayPipe != nil {
		return d.micropayPipe, nil
	}
	spool, err := db.Open(opts.SpoolJournal)
	if err != nil {
		return nil, err
	}
	led := d.Bank.Ledger()
	pipe, err := micropay.New(micropay.Config{
		Redeemer:    d.Bank.ChainRedeemer(),
		FindAccount: led.FindByCertificate,
		Spool:       spool,
		BatchSize:   opts.BatchSize,
		Workers:     opts.Workers,
		MaxPending:  opts.MaxPending,
		Now:         d.cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	d.Bank.SetMicropay(pipe)
	d.micropayPipe = pipe
	return pipe, nil
}

// Micropay returns the streaming redemption pipeline, or nil when
// EnableMicropay was not called.
func (d *Deployment) Micropay() *micropay.Pipeline { return d.micropayPipe }

// enablePublisher starts (or returns) the WAL-shipping publisher for
// one shard's store.
func (d *Deployment) enablePublisher(shardIdx int) (*shardPublisher, error) {
	if sp, ok := d.pubs[shardIdx]; ok {
		return sp, nil
	}
	stores := d.shardStores()
	if shardIdx < 0 || shardIdx >= len(stores) {
		return nil, fmt.Errorf("gridbank: shard %d out of range [0,%d)", shardIdx, len(stores))
	}
	pub, err := replica.NewPublisher(replica.PublisherConfig{
		Store:       stores[shardIdx],
		Identity:    d.Bank.Identity(),
		Trust:       d.Trust,
		PrimaryAddr: d.addr,
		Heartbeat:   100 * time.Millisecond,
		WireCodecs:  d.cfg.WireCodecs,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sp := &shardPublisher{pub: pub, addr: ln.Addr().String(), serveErr: make(chan error, 1)}
	d.pubs[shardIdx] = sp
	go func() { sp.serveErr <- pub.Serve(ln) }()
	return sp, nil
}

// EnableReplication starts the deployment's WAL-shipping publisher for
// shard 0 (the whole ledger when unsharded) on an ephemeral loopback
// port and returns its address. Idempotent.
func (d *Deployment) EnableReplication() (string, error) {
	return d.PublisherAddr(0)
}

// PublisherAddr starts (if needed) and returns the commit-stream
// publisher address for shard shardIdx. Harnesses that interpose a
// fault proxy on the replication link dial this address through the
// proxy and hand the proxy's address to AddShardReplicaAt.
func (d *Deployment) PublisherAddr(shardIdx int) (string, error) {
	sp, err := d.enablePublisher(shardIdx)
	if err != nil {
		return "", err
	}
	return sp.addr, nil
}

// AddReadReplica boots a read replica of shard 0 — the whole ledger on
// an unsharded deployment. See AddShardReplica for sharded topologies.
func (d *Deployment) AddReadReplica(name string) (*ReadReplica, error) {
	return d.AddShardReplica(name, 0)
}

// AddShardReplica boots a read replica named name following shard
// shardIdx: it bootstraps from that shard's commit stream (starting the
// shard's publisher if needed), then serves the query subset of the API
// for accounts on that shard from its own loopback address. Mutations
// redirect to the primary; reads for accounts on other shards answer
// wrong_shard with the placement parameters.
func (d *Deployment) AddShardReplica(name string, shardIdx int) (*ReadReplica, error) {
	sp, err := d.enablePublisher(shardIdx)
	if err != nil {
		return nil, err
	}
	return d.AddShardReplicaAt(name, shardIdx, sp.addr)
}

// AddShardReplicaAt is AddShardReplica with an explicit publisher
// address: the follower subscribes to publisherAddr instead of the
// shard's publisher directly, so a test can route the replication
// stream through a netsim proxy (the shard's real publisher must
// already be running — see PublisherAddr).
func (d *Deployment) AddShardReplicaAt(name string, shardIdx int, publisherAddr string) (*ReadReplica, error) {
	id, err := d.CA.Issue(pki.IssueOptions{CommonName: name, Organization: voOf(d), IsServer: true})
	if err != nil {
		return nil, err
	}
	fol, err := replica.StartFollower(replica.FollowerConfig{
		PublisherAddr: publisherAddr,
		Identity:      id,
		Trust:         d.Trust,
		RetryInterval: 100 * time.Millisecond,
		OfferCodecs:   d.cfg.WireCodecs,
	})
	if err != nil {
		return nil, err
	}
	if err := fol.WaitReady(10 * time.Second); err != nil {
		fol.Close()
		return nil, err
	}
	roCfg := core.ReadOnlyBankConfig{Identity: id, Trust: d.Trust}
	if d.sharded != nil {
		shards, vnodes := d.sharded.ShardTopology()
		if shards > 1 {
			roCfg.Shard = &core.ShardInfo{Index: shardIdx, Count: shards, Vnodes: vnodes}
		}
	}
	rb, err := core.NewReadOnlyBank(fol, roCfg)
	if err != nil {
		fol.Close()
		return nil, err
	}
	srv, err := core.NewReadOnlyServer(rb, id)
	if err != nil {
		fol.Close()
		return nil, err
	}
	srv.Logf = func(string, ...any) {}
	d.cfg.applyLimits(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fol.Close()
		return nil, err
	}
	r := &ReadReplica{
		Follower: fol,
		Server:   srv,
		Shard:    shardIdx,
		addr:     ln.Addr().String(),
		serveErr: make(chan error, 1),
	}
	go func() { r.serveErr <- srv.Serve(ln) }()
	d.replicas = append(d.replicas, r)
	return r, nil
}

// Replicas returns the deployment's read replicas, in creation order.
func (d *Deployment) Replicas() []*ReadReplica { return d.replicas }

// SyncReplicas blocks until every replica has applied its shard's
// current sequence — the barrier examples and tests use between a write
// and a replica read.
func (d *Deployment) SyncReplicas(timeout time.Duration) error {
	stores := d.shardStores()
	for _, r := range d.replicas {
		seq := stores[r.Shard].CurrentSeq()
		if err := r.Follower.WaitForSeq(seq, timeout); err != nil {
			return err
		}
	}
	return nil
}

// DialRouted connects a read-routing client authenticated as id: reads
// spread over every replica (within opts' staleness bound, and on
// sharded deployments within the account's shard pool), mutations and
// unroutable reads go to the primary.
func (d *Deployment) DialRouted(id *Identity, opts core.RouteOptions) (*core.RoutedClient, error) {
	primary, err := core.Dial(d.addr, id, d.Trust)
	if err != nil {
		return nil, err
	}
	primary.OfferCodecs = d.cfg.WireCodecs
	var reps []*Client
	for _, r := range d.replicas {
		c, err := core.Dial(r.Addr(), id, d.Trust)
		if err != nil {
			primary.Close()
			for _, rc := range reps {
				rc.Close()
			}
			return nil, err
		}
		c.OfferCodecs = d.cfg.WireCodecs
		reps = append(reps, c)
	}
	return core.NewRoutedClient(primary, reps, opts)
}

// Close stops the replicas, the publishers, then the server.
// Idempotent.
func (d *Deployment) Close() error {
	d.closeOnce.Do(func() {
		var firstErr error
		if d.usagePipe != nil {
			if err := d.usagePipe.Close(); firstErr == nil {
				firstErr = err
			}
		}
		if d.micropayPipe != nil {
			if err := d.micropayPipe.Close(); firstErr == nil {
				firstErr = err
			}
		}
		for _, r := range d.replicas {
			if err := r.Close(); firstErr == nil {
				firstErr = err
			}
		}
		d.replicas = nil
		for _, sp := range d.pubs {
			if err := sp.pub.Close(); firstErr == nil {
				firstErr = err
			}
			<-sp.serveErr
		}
		d.pubs = make(map[int]*shardPublisher)
		if err := d.Server.Close(); firstErr == nil {
			firstErr = err
		}
		<-d.serveErr
		d.closeErr = firstErr
	})
	return d.closeErr
}
