// Command experiments regenerates every figure and quantified claim of
// the GridBank paper (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured notes).
//
//	experiments -exp all          # run everything
//	experiments -exp fig4         # one experiment
//	experiments -list             # list experiment ids
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"gridbank/internal/experiments"
)

type experiment struct {
	id   string
	desc string
	run  func() error
}

func registry() []experiment {
	out := os.Stdout
	return []experiment{
		{"fig1", "Figure 1: end-to-end Grid accounting use case", func() error {
			r, err := experiments.RunFig1(experiments.Fig1Config{})
			if err != nil {
				return err
			}
			experiments.WriteFig1(out, r)
			return nil
		}},
		{"fig2", "Figure 2: GSP metering/charging pipeline", func() error {
			r, err := experiments.RunFig2()
			if err != nil {
				return err
			}
			experiments.WriteFig2(out, r)
			return nil
		}},
		{"fig3", "Figure 3: payment protocols through the 3-layer server", func() error {
			r, err := experiments.RunFig3(experiments.Fig3Config{})
			if err != nil {
				return err
			}
			experiments.WriteFig3(out, r)
			return nil
		}},
		{"fig4", "Figure 4: co-operative resource sharing", func() error {
			r, err := experiments.RunFig4(experiments.Fig4Config{})
			if err != nil {
				return err
			}
			experiments.WriteFig4(out, r)
			return nil
		}},
		{"scalability", "§2.3: template-account access scalability", func() error {
			r, err := experiments.RunScalability(experiments.ScalabilityConfig{})
			if err != nil {
				return err
			}
			experiments.WriteScalability(out, r)
			return nil
		}},
		{"guarantee", "§3.4: payment guarantee via fund locking", func() error {
			r, err := experiments.RunGuarantee(experiments.GuaranteeConfig{})
			if err != nil {
				return err
			}
			experiments.WriteGuarantee(out, r)
			return nil
		}},
		{"policies", "§3.1: the three charging policies", func() error {
			r, err := experiments.RunPolicies()
			if err != nil {
				return err
			}
			experiments.WritePolicies(out, r)
			return nil
		}},
		{"estimate", "§4.2: competitive price estimation", func() error {
			r, err := experiments.RunEstimate(experiments.EstimateConfig{})
			if err != nil {
				return err
			}
			experiments.WriteEstimate(out, r)
			return nil
		}},
		{"equilibrium", "§4.1: price equilibrium regulation", func() error {
			r, err := experiments.RunEquilibrium(experiments.EquilibriumConfig{})
			if err != nil {
				return err
			}
			experiments.WriteEquilibrium(out, r)
			return nil
		}},
		{"branches", "§6: multi-branch settlement", func() error {
			r, err := experiments.RunBranches(experiments.BranchesConfig{})
			if err != nil {
				return err
			}
			experiments.WriteBranches(out, r)
			return nil
		}},
		{"pricing", "§1: supply-and-demand price regulation", func() error {
			r, err := experiments.RunPricing(experiments.PricingConfig{})
			if err != nil {
				return err
			}
			experiments.WritePricing(out, r)
			return nil
		}},
		{"broker", "Nimrod-G DBC scheduling sweep", func() error {
			r, err := experiments.RunDBC(experiments.DBCConfig{})
			if err != nil {
				return err
			}
			experiments.WriteDBC(out, r)
			return nil
		}},
		{"conload", "concurrent transfer load vs. journal durability", func() error {
			r, err := experiments.RunConcurrentLoad(experiments.ConcurrentLoadConfig{})
			if err != nil {
				return err
			}
			experiments.WriteConcurrentLoad(out, r)
			return nil
		}},
		{"conload-hot", "concurrent load against one shared provider (hotspot)", func() error {
			r, err := experiments.RunConcurrentLoad(experiments.ConcurrentLoadConfig{SharedRecipient: true})
			if err != nil {
				return err
			}
			experiments.WriteConcurrentLoad(out, r)
			return nil
		}},
		{"replicas", "WAL-shipping read replicas: readers x replica count", func() error {
			r, err := experiments.RunReplicas(experiments.ReplicasConfig{})
			if err != nil {
				return err
			}
			experiments.WriteReplicas(out, r)
			return nil
		}},
		{"shards", "sharded ledger: transfers/sec vs shard count x cross-shard ratio", func() error {
			r, err := experiments.RunShards(experiments.ShardsConfig{})
			if err != nil {
				return err
			}
			experiments.WriteShards(out, r)
			return nil
		}},
		{"wire", "multiplexed wire transport: callers x payload x durability on one connection", func() error {
			r, err := experiments.RunWireExp(experiments.WireExpConfig{})
			if err != nil {
				return err
			}
			experiments.WriteWireExp(out, r)
			return nil
		}},
		{"usage", "batched async usage settlement vs naive per-RUR SettleCheque", func() error {
			r, err := experiments.RunUsage(experiments.UsageExpConfig{})
			if err != nil {
				return err
			}
			experiments.WriteUsage(out, r)
			return nil
		}},
		{"micropay", "streaming GridHash micropayments vs naive per-tick RedeemChain", func() error {
			r, err := experiments.RunMicropay(experiments.MicropayExpConfig{})
			if err != nil {
				return err
			}
			experiments.WriteMicropay(out, r)
			return nil
		}},
		{"codec", "negotiated bin1 wire/WAL codec vs seed JSON: frames, replay, replica catch-up", func() error {
			r, err := experiments.RunCodecExp(experiments.CodecExpConfig{})
			if err != nil {
				return err
			}
			experiments.WriteCodecExp(out, r)
			return nil
		}},
		{"obs", "telemetry overhead: identical worlds A/B, full instrumentation on vs off", func() error {
			r, err := experiments.RunObsExp(experiments.ObsExpConfig{})
			if err != nil {
				return err
			}
			experiments.WriteObsExp(out, r)
			return nil
		}},
		{"chaos", "network chaos sweep: fault profile x retry policy, invariants asserted per cell", func() error {
			r, err := experiments.RunChaosExp(experiments.ChaosExpConfig{})
			if err != nil {
				return err
			}
			experiments.WriteChaosExp(out, r)
			return nil
		}},
		{"diskfault", "storage fault sweep: crash/recovery scenarios x fsync fail-stop, durability diffed per cell", func() error {
			r, err := experiments.RunDiskfaultExp(experiments.DiskfaultExpConfig{})
			if err != nil {
				return err
			}
			experiments.WriteDiskfaultExp(out, r)
			return nil
		}},
	}
}

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (or 'all')")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	reg := registry()
	if *list {
		ids := make([]string, 0, len(reg))
		for _, e := range reg {
			ids = append(ids, fmt.Sprintf("%-12s %s", e.id, e.desc))
		}
		sort.Strings(ids)
		for _, s := range ids {
			fmt.Println(s)
		}
		return
	}
	ran := false
	for _, e := range reg {
		if *exp != "all" && e.id != *exp {
			continue
		}
		ran = true
		fmt.Printf("==== %s: %s ====\n\n", e.id, e.desc)
		if err := e.run(); err != nil {
			log.Fatalf("experiments: %s: %v", e.id, err)
		}
		fmt.Println()
	}
	if !ran {
		log.Fatalf("experiments: unknown experiment %q (use -list)", *exp)
	}
}
