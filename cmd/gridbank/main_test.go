package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/pki"
)

// cliWorld mirrors what gridbankd sets up: a CA + bank + TLS server plus
// on-disk credentials the CLI loads.
type cliWorld struct {
	dir  string
	addr string
	bank *core.Bank
}

func newCLIWorld(t *testing.T) *cliWorld {
	t.Helper()
	dir := t.TempDir()
	ca, err := pki.NewCA("VO-CLI CA", "VO-CLI", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := pki.SaveCACert(filepath.Join(dir, "ca.pem"), ca.Certificate()); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, server bool) *pki.Identity {
		id, err := ca.Issue(pki.IssueOptions{CommonName: name, Organization: "VO-CLI", IsServer: server})
		if err != nil {
			t.Fatal(err)
		}
		if err := pki.SaveIdentity(dir, name, id); err != nil {
			t.Fatal(err)
		}
		return id
	}
	bankID := mk("bank", true)
	banker := mk("banker", false)
	mk("alice", false)
	trust := pki.NewTrustStore(ca.Certificate())
	bank, err := core.NewBank(db.MustOpenMemory(), core.BankConfig{
		Identity: bankID, Trust: trust, Admins: []string{banker.SubjectName()},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &cliWorld{dir: dir, addr: ln.Addr().String(), bank: bank}
}

func (w *cliWorld) cli(t *testing.T, who string, args ...string) error {
	t.Helper()
	return run(w.addr, filepath.Join(w.dir, "ca.pem"),
		filepath.Join(w.dir, who+".crt"), filepath.Join(w.dir, who+".key"), args)
}

func TestCLIAccountLifecycle(t *testing.T) {
	w := newCLIWorld(t)
	// Silence the CLI's stdout JSON during the test.
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := w.cli(t, "alice", "ping"); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := w.cli(t, "alice", "create-account", "VO-CLI", "G$"); err != nil {
		t.Fatalf("create-account: %v", err)
	}
	acct, err := w.bank.Manager().FindByCertificate("CN=alice,O=VO-CLI", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank.AdminDeposit("CN=banker,O=VO-CLI", &core.AdminAmountRequest{
		AccountID: acct.AccountID, Amount: currency.FromG(50),
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.cli(t, "alice", "details", string(acct.AccountID)); err != nil {
		t.Fatalf("details: %v", err)
	}
	if err := w.cli(t, "alice", "check-funds", string(acct.AccountID), "10"); err != nil {
		t.Fatalf("check-funds: %v", err)
	}
	got, err := w.bank.Manager().Details(acct.AccountID)
	if err != nil || got.LockedBalance != currency.FromG(10) {
		t.Fatalf("lock not applied: %+v, %v", got, err)
	}
	if err := w.cli(t, "alice", "statement", string(acct.AccountID), "1"); err != nil {
		t.Fatalf("statement: %v", err)
	}
	// Errors surface as errors, not panics.
	if err := w.cli(t, "alice", "details", "99-9999-99999999"); err == nil {
		t.Fatal("missing account did not error")
	}
	if err := w.cli(t, "alice", "bogus-op"); err == nil {
		t.Fatal("unknown op did not error")
	}
}

func TestCLIProxyGeneration(t *testing.T) {
	w := newCLIWorld(t)
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := w.cli(t, "alice", "proxy", "2"); err != nil {
		t.Fatalf("proxy: %v", err)
	}
	proxy, err := pki.LoadIdentity(w.dir, "proxy")
	if err != nil {
		t.Fatal(err)
	}
	if pki.BaseSubjectName(proxy.Cert) != "CN=alice,O=VO-CLI" {
		t.Fatalf("proxy base = %q", pki.BaseSubjectName(proxy.Cert))
	}
	if len(proxy.Chain) != 1 {
		t.Fatalf("proxy chain length = %d", len(proxy.Chain))
	}
}

func TestCLIIdentityErrors(t *testing.T) {
	w := newCLIWorld(t)
	if err := run(w.addr, filepath.Join(w.dir, "ca.pem"), "", "", []string{"ping"}); err == nil {
		t.Fatal("missing cert flags accepted")
	}
	if err := run(w.addr, filepath.Join(w.dir, "ca.pem"),
		filepath.Join(w.dir, "ghost.crt"), filepath.Join(w.dir, "ghost.key"), []string{"ping"}); err == nil {
		t.Fatal("missing identity files accepted")
	}
	if err := run(w.addr, filepath.Join(w.dir, "missing-ca.pem"),
		filepath.Join(w.dir, "alice.crt"), filepath.Join(w.dir, "alice.key"), []string{"ping"}); err == nil {
		t.Fatal("missing CA accepted")
	}
}
