// Command gridbank is the client CLI: the GridBank Payment Module's
// operations (§5.2/§5.3) from a shell.
//
//	gridbank -server host:7776 -ca ca.pem -cert alice.crt -key alice.key <op> [args]
//
// Operations:
//
//	ping
//	create-account [org] [currency]
//	details <account-id>
//	statement <account-id> <days>
//	summary <account-id> <days>
//	check-funds <account-id> <amount>
//	transfer <from> <to> <amount> [recipient-address]
//	request-cheque <account-id> <amount> <payee-cert> [ttl]
//	redeem-cheque <cheque.json> <amount> [rur-file]
//	request-chain <account-id> <payee-cert> <length> <per-word> [ttl]
//	release-cheque <serial>
//	release-chain <serial>
//	proxy <hours>   (create a proxy certificate next to the identity)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

func main() {
	var (
		server = flag.String("server", "127.0.0.1:7776", "GridBank server address")
		caPath = flag.String("ca", "ca.pem", "trusted CA certificate bundle")
		cert   = flag.String("cert", "", "client certificate file (without .crt: identity name in -data)")
		key    = flag.String("key", "", "client key file")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*server, *caPath, *cert, *key, flag.Args()); err != nil {
		log.Fatalf("gridbank: %v", err)
	}
}

func loadClientIdentity(certPath, keyPath string) (*pki.Identity, error) {
	if certPath == "" || keyPath == "" {
		return nil, fmt.Errorf("both -cert and -key are required")
	}
	dir, base := filepath.Split(certPath)
	name := strings.TrimSuffix(base, ".crt")
	if dir == "" {
		dir = "."
	}
	id, err := pki.LoadIdentity(dir, name)
	if err != nil {
		return nil, err
	}
	return id, nil
}

func run(server, caPath, certPath, keyPath string, args []string) error {
	id, err := loadClientIdentity(certPath, keyPath)
	if err != nil {
		return err
	}
	op, rest := args[0], args[1:]

	if op == "proxy" {
		hours := 12.0
		if len(rest) > 0 {
			if hours, err = strconv.ParseFloat(rest[0], 64); err != nil {
				return err
			}
		}
		proxy, err := pki.NewProxy(id, time.Duration(hours*float64(time.Hour)))
		if err != nil {
			return err
		}
		dir := filepath.Dir(certPath)
		if err := pki.SaveIdentity(dir, "proxy", proxy); err != nil {
			return err
		}
		fmt.Printf("proxy %s valid %.1fh -> %s/proxy.crt\n", proxy.SubjectName(), hours, dir)
		return nil
	}

	cas, err := pki.LoadCACerts(caPath)
	if err != nil {
		return err
	}
	trust := pki.NewTrustStore(cas...)
	client, err := core.Dial(server, id, trust)
	if err != nil {
		return err
	}
	// Offer the binary codec; a seed-era server ignores the unknown
	// field and the session stays on JSON.
	client.OfferCodecs = []string{wire.CodecBin1, wire.CodecJSON}
	defer client.Close()

	out := func(v any) error {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}

	switch op {
	case "ping":
		bank, err := client.Ping()
		if err != nil {
			return err
		}
		fmt.Println(bank)
		return nil
	case "create-account":
		org, cur := argAt(rest, 0), currency.Code(argAt(rest, 1))
		acct, err := client.CreateAccount(org, cur)
		if err != nil {
			return err
		}
		return out(acct)
	case "details":
		acct, err := client.AccountDetails(accounts.ID(need(rest, 0, "account-id")))
		if err != nil {
			return err
		}
		return out(acct)
	case "statement":
		days, err := strconv.Atoi(need(rest, 1, "days"))
		if err != nil {
			return err
		}
		end := time.Now()
		st, err := client.AccountStatement(accounts.ID(need(rest, 0, "account-id")), end.AddDate(0, 0, -days), end)
		if err != nil {
			return err
		}
		return out(st)
	case "summary":
		days, err := strconv.Atoi(need(rest, 1, "days"))
		if err != nil {
			return err
		}
		end := time.Now()
		st, err := client.AccountStatement(accounts.ID(need(rest, 0, "account-id")), end.AddDate(0, 0, -days), end)
		if err != nil {
			return err
		}
		return out(accounts.Summarize(st))
	case "check-funds":
		amount, err := currency.Parse(need(rest, 1, "amount"))
		if err != nil {
			return err
		}
		if err := client.CheckFunds(accounts.ID(need(rest, 0, "account-id")), amount); err != nil {
			return err
		}
		fmt.Println("locked")
		return nil
	case "transfer":
		amount, err := currency.Parse(need(rest, 2, "amount"))
		if err != nil {
			return err
		}
		resp, err := client.DirectTransfer(
			accounts.ID(need(rest, 0, "from")), accounts.ID(need(rest, 1, "to")), amount, argAt(rest, 3))
		if err != nil {
			return err
		}
		return out(resp)
	case "request-cheque":
		amount, err := currency.Parse(need(rest, 1, "amount"))
		if err != nil {
			return err
		}
		ttl := 24 * time.Hour
		if v := argAt(rest, 3); v != "" {
			if ttl, err = time.ParseDuration(v); err != nil {
				return err
			}
		}
		cheque, err := client.RequestCheque(accounts.ID(need(rest, 0, "account-id")), amount, need(rest, 2, "payee-cert"), ttl)
		if err != nil {
			return err
		}
		return out(cheque)
	case "redeem-cheque":
		var cheque payment.SignedCheque
		if err := readJSONFile(need(rest, 0, "cheque.json"), &cheque); err != nil {
			return err
		}
		amount, err := currency.Parse(need(rest, 1, "amount"))
		if err != nil {
			return err
		}
		claim := &payment.ChequeClaim{Serial: cheque.Cheque.Serial, Amount: amount}
		if p := argAt(rest, 2); p != "" {
			rurBytes, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			claim.RUR = rurBytes
		}
		resp, err := client.RedeemCheque(&cheque, claim)
		if err != nil {
			return err
		}
		return out(resp)
	case "request-chain":
		length, err := strconv.Atoi(need(rest, 2, "length"))
		if err != nil {
			return err
		}
		perWord, err := currency.Parse(need(rest, 3, "per-word"))
		if err != nil {
			return err
		}
		ttl := 24 * time.Hour
		if v := argAt(rest, 4); v != "" {
			if ttl, err = time.ParseDuration(v); err != nil {
				return err
			}
		}
		chain, signed, err := client.RequestChain(accounts.ID(need(rest, 0, "account-id")), need(rest, 1, "payee-cert"), length, perWord, ttl)
		if err != nil {
			return err
		}
		return out(map[string]any{"chain": signed, "seed": chain.Seed})
	case "release-cheque":
		released, err := client.ReleaseCheque(need(rest, 0, "serial"))
		if err != nil {
			return err
		}
		fmt.Printf("released %s\n", released)
		return nil
	case "release-chain":
		released, err := client.ReleaseChain(need(rest, 0, "serial"))
		if err != nil {
			return err
		}
		fmt.Printf("released %s\n", released)
		return nil
	default:
		return fmt.Errorf("unknown operation %q", op)
	}
}

func argAt(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}

func need(args []string, i int, name string) string {
	if i >= len(args) {
		log.Fatalf("gridbank: missing argument <%s>", name)
	}
	return args[i]
}

func readJSONFile(path string, out any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}
