// Command gridbankd runs a GridBank server for one Virtual Organization.
//
// On first start with a fresh data directory it bootstraps the VO: a
// certificate authority, the bank's server identity, a "banker"
// administrator identity, and a durable ledger journal. Client and admin
// credentials are written under <data>/ for distribution:
//
//	gridbankd -data /var/lib/gridbank -vo VO-A -listen :7776
//
// Subsequent starts reuse the CA, identities and ledger. Each start
// also writes a ledger checkpoint, so the next restart replays only the
// journal tail written after it (disable with -checkpoint=false).
//
// To enrol a user, issue a certificate with:
//
//	gridbankd -data /var/lib/gridbank -issue alice
//
// which writes alice.crt/alice.key for use with the gridbank CLI.
//
// Replication: a primary exposes its commit stream with -publish, and a
// read replica mirrors it with -replica-of, serving the query subset of
// the API (mutations redirect to the primary named by -primary):
//
//	gridbankd -data /var/lib/gridbank -listen :7776 -publish :7777
//	gridbankd -data /var/lib/gridbank-r1 -replica-of primary:7777 \
//	    -primary primary:7776 -listen :7778
//
// Sharding: -shards N partitions the ledger over N consistent-hash
// shards, one journal per shard (ledger.wal, ledger-1.wal, ...); the
// shard count is fixed once data exists. A sharded -publish serves one
// commit stream per shard on consecutive ports, and a replica follows
// one shard with -shard:
//
//	gridbankd -data /var/lib/gridbank -shards 4 -publish :7777
//	gridbankd -data /var/lib/gridbank-s2 -replica-of primary:7779 \
//	    -shards 4 -shard 2 -primary primary:7776 -listen :7780
//
// The replica's data directory must be seeded with the VO's CA files
// (ca.crt/ca.key from the primary's directory) so its identity chains
// to the same trust root.
//
// Usage settlement: -usage enables the batched asynchronous pipeline
// (Usage.Submit / Usage.Status / Usage.Drain), spooling intake to
// <data>/usage.wal and settling in per-(shard, account) batches:
//
//	gridbankd -data /var/lib/gridbank -shards 4 -usage \
//	    -usage-workers 4 -usage-batch 128
//
// Streaming micropayments: -micropay enables the GridHash streaming
// redemption pipeline (Micropay.Submit / Micropay.Status /
// Micropay.Drain), spooling claim intake to <data>/micropay.wal and
// settling chains in per-(shard, drawer) batches — one ledger
// transaction per chain per batch:
//
//	gridbankd -data /var/lib/gridbank -shards 4 -micropay \
//	    -micropay-workers 4 -micropay-batch 256
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/db"
	"gridbank/internal/micropay"
	"gridbank/internal/obs"
	"gridbank/internal/pki"
	"gridbank/internal/replica"
	"gridbank/internal/shard"
	"gridbank/internal/usage"
	"gridbank/internal/wire"
)

func main() {
	var (
		dataDir    = flag.String("data", "gridbank-data", "data directory (keys, CA, ledger journal)")
		vo         = flag.String("vo", "VO-A", "virtual organization name (used at bootstrap)")
		branch     = flag.String("branch", "0001", "four-digit branch number")
		listen     = flag.String("listen", "127.0.0.1:7776", "listen address")
		issue      = flag.String("issue", "", "issue a user certificate with this common name and exit")
		syncWAL    = flag.Bool("sync", true, "fsync the ledger journal on every commit")
		checkpoint = flag.Bool("checkpoint", true, "checkpoint the ledger at startup (restart replays only the tail)")
		shards     = flag.Int("shards", 1, "partition the ledger over this many shards (one journal per shard; fixed once data exists)")
		publish    = flag.String("publish", "", "serve the replication commit stream on this address (primary)")
		replicaOf  = flag.String("replica-of", "", "run as a read replica of the publisher at this address")
		shardIdx   = flag.Int("shard", 0, "with -replica-of on a sharded primary: the shard index this replica follows")
		primary    = flag.String("primary", "", "primary API address advertised in replica redirects")
		enableU    = flag.Bool("usage", false, "enable the batched usage-settlement pipeline (Usage.Submit/Status/Drain; spool in <data>/usage.wal)")
		uWorkers   = flag.Int("usage-workers", 2, "usage pipeline settlement workers")
		uBatch     = flag.Int("usage-batch", 64, "usage pipeline max charges per ledger transaction")
		uQueue     = flag.Int("usage-queue", 4096, "usage pipeline pending-queue bound (backpressure threshold)")
		enableM    = flag.Bool("micropay", false, "enable the streaming GridHash redemption pipeline (Micropay.Submit/Status/Drain; spool in <data>/micropay.wal)")
		mWorkers   = flag.Int("micropay-workers", 2, "micropay pipeline settlement workers")
		mBatch     = flag.Int("micropay-batch", 64, "micropay pipeline max claims per settlement pass")
		mQueue     = flag.Int("micropay-queue", 4096, "micropay pipeline pending-queue bound (backpressure threshold)")
		maxConns   = flag.Int("max-conns", 0, "maximum concurrent client connections (0 = unlimited)")
		idleConn   = flag.Duration("idle-timeout", core.DefaultIdleTimeout, "drop connections idle this long (<0 disables)")
		inFlight   = flag.Int("max-in-flight", core.DefaultMaxInFlight, "per-connection concurrent request dispatch cap")
		dedupTTL   = flag.Duration("dedup-ttl", core.DefaultDedupTTL, "retention of idempotency-key dedup markers (<0 disables the sweep)")
		obsAddr    = flag.String("obs-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address (keep it loopback, e.g. 127.0.0.1:7790; empty disables)")
		slowOp     = flag.Duration("slow-op", 0, "log a structured line for every request whose queue wait + handler latency reaches this (0 disables)")
		wireCodec  = flag.String("wire-codec", wire.CodecBin1, "wire codec policy: bin1 negotiates binary frames per connection (seed peers that never offer stay JSON), json pins the seed format and refuses binary offers")
		walCodec   = flag.String("wal-codec", wire.CodecBin1, "journal codec for new ledger/spool WAL generations: bin1 (length-prefixed binary records) or json; existing files keep their recorded format either way")
	)
	flag.Parse()
	codecs, err := wireCodecList(*wireCodec)
	if err != nil {
		log.Fatalf("gridbankd: %v", err)
	}
	if _, ok := wire.CodecByName(*walCodec); !ok {
		log.Fatalf("gridbankd: -wal-codec %q: unknown codec", *walCodec)
	}
	lcfg := limitFlags{maxConns: *maxConns, idleTimeout: *idleConn, maxInFlight: *inFlight, wireCodecs: codecs}
	ocfg := obsFlags{addr: *obsAddr, slowOp: *slowOp}
	if *replicaOf != "" {
		if err := runReplica(*dataDir, *vo, *listen, *replicaOf, *primary, *shardIdx, *shards, lcfg, ocfg); err != nil {
			log.Fatalf("gridbankd: %v", err)
		}
		return
	}
	ucfg := usageFlags{enabled: *enableU, workers: *uWorkers, batch: *uBatch, queue: *uQueue}
	mcfg := micropayFlags{enabled: *enableM, workers: *mWorkers, batch: *mBatch, queue: *mQueue}
	if err := run(*dataDir, *vo, *branch, *listen, *issue, *publish, *shards, *syncWAL, *checkpoint, *walCodec, *dedupTTL, ucfg, mcfg, lcfg, ocfg); err != nil {
		log.Fatalf("gridbankd: %v", err)
	}
}

// wireCodecList maps the -wire-codec policy to the accept/offer list
// every server and follower in this process uses.
func wireCodecList(v string) ([]string, error) {
	switch v {
	case wire.CodecBin1:
		return []string{wire.CodecBin1, wire.CodecJSON}, nil
	case wire.CodecJSON:
		return []string{wire.CodecJSON}, nil
	default:
		return nil, fmt.Errorf("-wire-codec %q: unknown codec (want %s or %s)", v, wire.CodecBin1, wire.CodecJSON)
	}
}

// limitFlags carries the connection-limit and wire-codec flag values
// into run and runReplica.
type limitFlags struct {
	maxConns    int
	idleTimeout time.Duration
	maxInFlight int
	wireCodecs  []string
}

// apply sets the limits and codec policy on a server before it starts
// serving.
func (l limitFlags) apply(srv *core.Server) {
	srv.MaxConns = l.maxConns
	srv.IdleTimeout = l.idleTimeout
	srv.MaxInFlight = l.maxInFlight
	srv.WireCodecs = l.wireCodecs
}

// pipelineFlags carries one settlement pipeline's flag group into run —
// the -usage* and -micropay* surfaces are the same knobs over the same
// intake shape, so they share one struct (mirroring
// gridbank.PipelineOptions).
type pipelineFlags struct {
	enabled               bool
	workers, batch, queue int
}

// usageFlags and micropayFlags name the two instances of the shared
// pipeline flag group.
type (
	usageFlags    = pipelineFlags
	micropayFlags = pipelineFlags
)

// obsFlags carries the telemetry flag values into run and runReplica.
type obsFlags struct {
	addr   string
	slowOp time.Duration
}

// apply wires the process registry and slow-op log into a server and
// starts the ops endpoint, returning the bound obs address ("" when
// disabled).
func (o obsFlags) apply(srv *core.Server, reg *obs.Registry) (string, error) {
	srv.Obs = reg
	if o.slowOp > 0 {
		srv.SlowOpLog = obs.NewLogger(os.Stderr, obs.LevelInfo)
		srv.SlowOpThreshold = o.slowOp
	}
	if o.addr == "" {
		return "", nil
	}
	return startObsServer(o.addr, reg)
}

// startObsServer serves /metrics and /debug/pprof on addr in the
// background. The listener binds before returning, so a bad address
// fails startup instead of logging asynchronously.
func startObsServer(addr string, reg *obs.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("-obs-addr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := obs.WritePrometheus(w, reg.Snapshot()); err != nil {
			log.Printf("gridbankd: obs: rendering /metrics: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("gridbankd: obs endpoint: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

func run(dataDir, vo, branch, listen, issue, publish string, shards int, syncWAL, checkpoint bool, walCodec string, dedupTTL time.Duration, ucfg usageFlags, mcfg micropayFlags, lcfg limitFlags, ocfg obsFlags) error {
	if shards < 1 {
		return fmt.Errorf("-shards %d: need at least 1", shards)
	}
	ca, err := loadOrCreateCA(dataDir, vo)
	if err != nil {
		return err
	}
	if issue != "" {
		id, err := ca.Issue(pki.IssueOptions{CommonName: issue, Organization: vo})
		if err != nil {
			return err
		}
		if err := pki.SaveIdentity(dataDir, issue, id); err != nil {
			return err
		}
		fmt.Printf("issued %s -> %s/%s.crt, %s/%s.key\n", id.SubjectName(), dataDir, issue, dataDir, issue)
		return nil
	}

	bankID, err := loadOrIssue(dataDir, ca, "bank", vo, true)
	if err != nil {
		return err
	}
	banker, err := loadOrIssue(dataDir, ca, "banker", vo, false)
	if err != nil {
		return err
	}
	// Shard i lives in ledger-<i>.wal / ledger-<i>.ckpt; shard 0 keeps
	// the historical unsuffixed names, so a -shards 1 server (the
	// default) opens pre-sharding data directories unchanged, byte for
	// byte. The shard count is fixed once data exists: reopening under
	// a different count would strand accounts on shards their IDs no
	// longer hash to, so it is pinned in a marker file on first boot
	// and every later boot must match (forgetting -shards after a
	// sharded bootstrap is the dangerous default this catches).
	if err := pinShardCount(dataDir, shards); err != nil {
		return err
	}
	shardFiles := func(i int) (wal, ckpt string) {
		if i == 0 {
			return filepath.Join(dataDir, "ledger.wal"), filepath.Join(dataDir, "ledger.ckpt")
		}
		return filepath.Join(dataDir, fmt.Sprintf("ledger-%d.wal", i)),
			filepath.Join(dataDir, fmt.Sprintf("ledger-%d.ckpt", i))
	}
	stores := make([]*db.Store, shards)
	tele := &ckptTelemetry{}
	for i := range stores {
		walPath, ckptPath := shardFiles(i)
		journal, err := db.OpenFileJournalCodec(walPath, syncWAL, walCodec)
		if err != nil {
			return err
		}
		store, info, err := db.OpenWithCheckpointFS(db.OSFS(), ckptPath, journal)
		if err != nil {
			return err
		}
		logBoot(fmt.Sprintf("shard %d", i), info)
		var fresh time.Time
		if checkpoint {
			// Quiescent window before serving: snapshot the whole state,
			// then drop the journal it covers — startup cost and disk
			// usage stay proportional to one run's writes, not the full
			// history.
			seq, err := store.Checkpoint(ckptPath)
			if err != nil {
				return fmt.Errorf("checkpoint shard %d: %w", i, err)
			}
			if cj, ok := journal.(db.CompactableJournal); ok {
				if err := cj.Compact(); err != nil {
					return fmt.Errorf("compacting shard %d journal after checkpoint: %w", i, err)
				}
			}
			fresh = time.Now()
			log.Printf("gridbankd: checkpointed shard %d at seq %d (%s), journal compacted", i, seq, ckptPath)
		}
		tele.note(info, fresh)
		stores[i] = store
	}
	trust := pki.NewTrustStore(ca.Certificate())
	ledger, err := shard.New(stores, shard.Config{Branch: branch})
	if err != nil {
		return err
	}
	// One process-wide registry: the ledger forwards it to every shard
	// store, the bank serves it over Metrics.Snapshot, the server and
	// usage pipeline record into it, and -obs-addr scrapes it.
	reg := obs.NewRegistry()
	ledger.SetObs(reg)
	bank, err := core.NewBankWithLedger(ledger, core.BankConfig{
		Identity: bankID,
		Trust:    trust,
		Admins:   []string{banker.SubjectName()},
		Branch:   branch,
		DedupTTL: dedupTTL,
		Obs:      reg,
	})
	if err != nil {
		return err
	}
	if shards > 1 {
		log.Printf("gridbankd: ledger partitioned over %d shards (consistent hash, %d vnodes/shard)", shards, ledger.Ring().Vnodes())
	}
	if ucfg.enabled {
		// The spool gets the same durability treatment as a shard:
		// WAL-backed with a startup checkpoint, so crash recovery
		// replays pending charges and the journal stays proportional to
		// one run. Built before serving, so recovered transaction-ID
		// pins reseed the allocator ahead of any traffic.
		spool, err := openSpool(dataDir, "usage", syncWAL, checkpoint, walCodec, tele)
		if err != nil {
			return err
		}
		spool.SetObs(reg)
		pipe, err := usage.New(usage.Config{
			Ledger:     usage.WrapSharded(ledger),
			Spool:      spool,
			BatchSize:  ucfg.batch,
			Workers:    ucfg.workers,
			MaxPending: ucfg.queue,
			Log:        obs.NewLogger(os.Stderr, obs.LevelWarn),
			Obs:        reg,
		})
		if err != nil {
			return err
		}
		defer pipe.Close()
		bank.SetUsage(pipe)
		log.Printf("gridbankd: usage settlement pipeline enabled (%d workers, batch %d, queue bound %d, %d pending recovered)",
			ucfg.workers, ucfg.batch, ucfg.queue, pipe.Status().Pending)
	}
	if mcfg.enabled {
		// Same durability treatment as the usage spool: WAL-backed
		// claim intake with a startup checkpoint, so a crash replays
		// accepted-but-unsettled ticks instead of dropping them.
		spool, err := openSpool(dataDir, "micropay", syncWAL, checkpoint, walCodec, tele)
		if err != nil {
			return err
		}
		spool.SetObs(reg)
		pipe, err := micropay.New(micropay.Config{
			Redeemer:    bank.ChainRedeemer(),
			FindAccount: bank.Ledger().FindByCertificate,
			Spool:       spool,
			BatchSize:   mcfg.batch,
			Workers:     mcfg.workers,
			MaxPending:  mcfg.queue,
			Log:         obs.NewLogger(os.Stderr, obs.LevelWarn),
			Obs:         reg,
		})
		if err != nil {
			return err
		}
		defer pipe.Close()
		bank.SetMicropay(pipe)
		log.Printf("gridbankd: micropay streaming pipeline enabled (%d workers, batch %d, queue bound %d, %d pending recovered)",
			mcfg.workers, mcfg.batch, mcfg.queue, pipe.Status().Pending)
	}
	// Checkpoint provenance gauges: generation is fixed at boot (every
	// store is open by now); age is a callback so it stays live between
	// scrapes without a background updater.
	reg.Gauge("db.checkpoint_generation").Set(tele.generation())
	reg.GaugeFunc("db.checkpoint_age_seconds", tele.age)
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		return err
	}
	lcfg.apply(srv)
	obsBound, err := ocfg.apply(srv, reg)
	if err != nil {
		return err
	}
	publishers := 0
	if publish != "" {
		// One commit stream per shard: shard 0 on the given address,
		// shard i on port+i. Replicas subscribe per shard (a replica of
		// shard 2 points -replica-of at port+2).
		host, portStr, err := net.SplitHostPort(publish)
		if err != nil {
			return fmt.Errorf("-publish %s: %w", publish, err)
		}
		basePort, err := strconv.Atoi(portStr)
		if err != nil {
			return fmt.Errorf("-publish %s: %w", publish, err)
		}
		for i, store := range ledger.Stores() {
			pub, err := replica.NewPublisher(replica.PublisherConfig{
				Store:       store,
				Identity:    bankID,
				Trust:       trust,
				PrimaryAddr: listen,
				WireCodecs:  lcfg.wireCodecs,
			})
			if err != nil {
				return err
			}
			pub.Log = obs.NewLogger(os.Stderr, obs.LevelInfo)
			publishers++
			addr := net.JoinHostPort(host, strconv.Itoa(basePort+i))
			go func(i int) {
				if err := pub.ListenAndServe(addr); err != nil {
					log.Printf("gridbankd: shard %d replication publisher: %v", i, err)
				}
			}(i)
			log.Printf("gridbankd: publishing shard %d commit stream on %s", i, addr)
		}
	}
	log.Printf("gridbankd: %s branch %s serving on %s (CA %s)",
		bankID.SubjectName(), branch, listen, pki.SubjectNameOf(ca.Certificate()))
	log.Printf("gridbankd: topology: shards=%d publishers=%d usage_workers=%d obs=%s dedup_ttl=%v",
		shards, publishers, topologyUsageWorkers(ucfg), topologyObs(obsBound), dedupTTL)
	return srv.ListenAndServe(listen)
}

// ckptTelemetry aggregates checkpoint provenance across every store
// the process opens (ledger shards + pipeline spools), feeding the
// db.checkpoint_generation / db.checkpoint_age_seconds gauges. All
// notes happen during single-threaded startup, before the registry is
// scraped, so no locking is needed.
type ckptTelemetry struct {
	worstGen   int64 // highest generation any store booted from
	oldestUnix int64 // unix time of the oldest checkpoint in use (0 = none)
	have       bool  // at least one store restored from a checkpoint
}

// note records one store's boot provenance; fresh is the time of a
// startup checkpoint taken right after the restore (zero when the
// -checkpoint pass is disabled).
func (c *ckptTelemetry) note(info *db.BootInfo, fresh time.Time) {
	gen, ts := int64(info.Generation), info.ModTime
	if !fresh.IsZero() {
		// The startup checkpoint just rewrote generation 0.
		gen, ts = 0, fresh
	}
	if gen < 0 {
		return // plain journal replay: no checkpoint to age
	}
	c.have = true
	if gen > c.worstGen {
		c.worstGen = gen
	}
	if u := ts.Unix(); !ts.IsZero() && (c.oldestUnix == 0 || u < c.oldestUnix) {
		c.oldestUnix = u
	}
}

// generation is the gauge value: worst generation in use, -1 when no
// store restored from a checkpoint.
func (c *ckptTelemetry) generation() int64 {
	if !c.have {
		return -1
	}
	return c.worstGen
}

// age is the db.checkpoint_age_seconds callback: seconds since the
// oldest checkpoint in use, -1 when no store has one.
func (c *ckptTelemetry) age(now time.Time) int64 {
	if c.oldestUnix == 0 {
		return -1
	}
	if age := now.Unix() - c.oldestUnix; age > 0 {
		return age
	}
	return 0
}

// logBoot prints the startup restore line for one store, including the
// checkpoint generation used and any generations skipped on the way.
func logBoot(name string, info *db.BootInfo) {
	for _, fb := range info.Fallbacks {
		log.Printf("gridbankd: WARNING %s checkpoint fallback: %s", name, fb)
	}
	switch {
	case info.Generation < 0:
		log.Printf("gridbankd: %s restored by journal replay (no checkpoint)", name)
	case info.Legacy:
		log.Printf("gridbankd: %s restored from checkpoint generation %d (legacy format, seq %d, %s)",
			name, info.Generation, info.Seq, info.Path)
	default:
		log.Printf("gridbankd: %s restored from checkpoint generation %d (seq %d, %s)",
			name, info.Generation, info.Seq, info.Path)
	}
}

// openSpool opens a durable pipeline intake spool (<data>/<name>.wal
// with a <data>/<name>.ckpt startup checkpoint) — the same treatment a
// ledger shard gets, so crash recovery replays pending entries and the
// journal stays proportional to one run's writes.
func openSpool(dataDir, name string, syncWAL, checkpoint bool, walCodec string, tele *ckptTelemetry) (*db.Store, error) {
	spoolWAL := filepath.Join(dataDir, name+".wal")
	spoolCkpt := filepath.Join(dataDir, name+".ckpt")
	journal, err := db.OpenFileJournalCodec(spoolWAL, syncWAL, walCodec)
	if err != nil {
		return nil, err
	}
	spool, info, err := db.OpenWithCheckpointFS(db.OSFS(), spoolCkpt, journal)
	if err != nil {
		return nil, err
	}
	logBoot(name+" spool", info)
	var fresh time.Time
	if checkpoint {
		seq, err := spool.Checkpoint(spoolCkpt)
		if err != nil {
			return nil, fmt.Errorf("checkpoint %s spool: %w", name, err)
		}
		if cj, ok := journal.(db.CompactableJournal); ok {
			if err := cj.Compact(); err != nil {
				return nil, fmt.Errorf("compacting %s spool journal: %w", name, err)
			}
		}
		fresh = time.Now()
		log.Printf("gridbankd: checkpointed %s spool at seq %d (%s)", name, seq, spoolCkpt)
	}
	tele.note(info, fresh)
	return spool, nil
}

// topologyUsageWorkers renders the usage-worker count for the topology
// summary (0 when the pipeline is disabled).
func topologyUsageWorkers(ucfg usageFlags) int {
	if !ucfg.enabled {
		return 0
	}
	return ucfg.workers
}

// followerOffers maps the process codec policy to the follower's hello
// offer: pinned-to-JSON sends no offer at all, keeping the hello
// byte-identical to the seed protocol.
func followerOffers(codecs []string) []string {
	if len(codecs) == 1 && codecs[0] == wire.CodecJSON {
		return nil
	}
	return codecs
}

// topologyObs renders the obs address for the topology summary.
func topologyObs(bound string) string {
	if bound == "" {
		return "off"
	}
	return bound
}

// runReplica runs the -replica-of mode: follow the publisher's commit
// stream and serve the query API read-only.
func runReplica(dataDir, vo, listen, publisherAddr, primaryAddr string, shardIdx, shardCount int, lcfg limitFlags, ocfg obsFlags) error {
	ca, err := loadOrCreateCA(dataDir, vo)
	if err != nil {
		return err
	}
	id, err := loadOrIssue(dataDir, ca, "replica", vo, true)
	if err != nil {
		return err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	reg := obs.NewRegistry()
	fol, err := replica.StartFollower(replica.FollowerConfig{
		PublisherAddr: publisherAddr,
		Identity:      id,
		Trust:         trust,
		OfferCodecs:   followerOffers(lcfg.wireCodecs),
		Log:           obs.NewLogger(os.Stderr, obs.LevelInfo),
		Obs:           reg,
	})
	if err != nil {
		return err
	}
	defer fol.Close()
	if err := fol.WaitReady(30 * time.Second); err != nil {
		return err
	}
	roCfg := core.ReadOnlyBankConfig{
		Identity:    id,
		Trust:       trust,
		PrimaryAddr: primaryAddr,
		Obs:         reg,
	}
	if shardCount > 1 {
		roCfg.Shard = &core.ShardInfo{Index: shardIdx, Count: shardCount}
		// Sanity-check the claimed shard against the mirrored data: the
		// publisher ports are consecutive per shard, so a -shard that
		// disagrees with -replica-of would serve false not_found for
		// every real account. Any account bootstrapped into this store
		// must hash to the claimed shard.
		if err := checkShardIndex(fol.Store(), shardIdx, shardCount); err != nil {
			return err
		}
	}
	rb, err := core.NewReadOnlyBank(fol, roCfg)
	if err != nil {
		return err
	}
	srv, err := core.NewReadOnlyServer(rb, id)
	if err != nil {
		return err
	}
	lcfg.apply(srv)
	obsBound, err := ocfg.apply(srv, reg)
	if err != nil {
		return err
	}
	log.Printf("gridbankd: %s read replica of %s serving on %s (applied seq %d, obs %s)",
		id.SubjectName(), publisherAddr, listen, fol.AppliedSeq(), topologyObs(obsBound))
	return srv.ListenAndServe(listen)
}

// checkShardIndex verifies that the accounts a shard replica mirrored
// actually hash to the shard it claims to serve (-shard vs -replica-of
// mismatch detection). An empty store proves nothing and passes.
func checkShardIndex(store *db.Store, shardIdx, shardCount int) error {
	if store == nil {
		return nil
	}
	ring, err := shard.NewRing(shardCount, 0)
	if err != nil {
		return err
	}
	var mismatch error
	err = store.Scan("accounts", func(key string, _ []byte) bool {
		if owner := ring.ShardFor(key); owner != shardIdx {
			mismatch = fmt.Errorf("mirrored account %s hashes to shard %d, but this replica claims -shard %d of %d — check that -replica-of points at shard %d's stream", key, owner, shardIdx, shardCount, shardIdx)
			return false
		}
		return true
	})
	if err != nil && !errors.Is(err, db.ErrNoTable) {
		return err
	}
	return mismatch
}

// pinShardCount records the shard count in <data>/shards on first boot
// and refuses later boots whose -shards disagrees: opening a subset of
// the shard journals would silently hide accounts and break the
// cross-shard duplicate-identity check. Pre-sharding data directories
// (journal exists, no marker) are grandfathered as 1 shard.
func pinShardCount(dataDir string, shards int) error {
	path := filepath.Join(dataDir, "shards")
	raw, err := os.ReadFile(path)
	if err == nil {
		pinned, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil {
			return fmt.Errorf("corrupt shard-count marker %s: %q", path, raw)
		}
		if pinned != shards {
			return fmt.Errorf("data directory %s was created with -shards %d; refusing to open with -shards %d (resharding requires migration)", dataDir, pinned, shards)
		}
		return nil
	}
	if !os.IsNotExist(err) {
		return err
	}
	if _, werr := os.Stat(filepath.Join(dataDir, "ledger.wal")); werr == nil && shards != 1 {
		return fmt.Errorf("data directory %s predates sharding (no shard-count marker); it holds 1 shard, got -shards %d", dataDir, shards)
	}
	if err := os.MkdirAll(dataDir, 0o700); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(strconv.Itoa(shards)+"\n"), 0o600)
}

// loadOrCreateCA reuses the data directory's CA or bootstraps one.
func loadOrCreateCA(dataDir, vo string) (*pki.CA, error) {
	caID, err := pki.LoadIdentity(dataDir, "ca")
	if err == nil {
		return pki.ResumeCA(caID)
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	ca, err := pki.NewCA(vo+" CA", vo, 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	if err := pki.SaveIdentity(dataDir, "ca", ca.Identity()); err != nil {
		return nil, err
	}
	if err := pki.SaveCACert(filepath.Join(dataDir, "ca.pem"), ca.Certificate()); err != nil {
		return nil, err
	}
	log.Printf("gridbankd: bootstrapped CA %s (distribute %s/ca.pem to clients)",
		pki.SubjectNameOf(ca.Certificate()), dataDir)
	return ca, nil
}

func loadOrIssue(dataDir string, ca *pki.CA, name, vo string, server bool) (*pki.Identity, error) {
	id, err := pki.LoadIdentity(dataDir, name)
	if err == nil {
		return id, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	id, err = ca.Issue(pki.IssueOptions{CommonName: name, Organization: vo, IsServer: server})
	if err != nil {
		return nil, err
	}
	if err := pki.SaveIdentity(dataDir, name, id); err != nil {
		return nil, err
	}
	return id, nil
}
