// Command gridbankd runs a GridBank server for one Virtual Organization.
//
// On first start with a fresh data directory it bootstraps the VO: a
// certificate authority, the bank's server identity, a "banker"
// administrator identity, and a durable ledger journal. Client and admin
// credentials are written under <data>/ for distribution:
//
//	gridbankd -data /var/lib/gridbank -vo VO-A -listen :7776
//
// Subsequent starts reuse the CA, identities and ledger. Each start
// also writes a ledger checkpoint, so the next restart replays only the
// journal tail written after it (disable with -checkpoint=false).
//
// To enrol a user, issue a certificate with:
//
//	gridbankd -data /var/lib/gridbank -issue alice
//
// which writes alice.crt/alice.key for use with the gridbank CLI.
//
// Replication: a primary exposes its commit stream with -publish, and a
// read replica mirrors it with -replica-of, serving the query subset of
// the API (mutations redirect to the primary named by -primary):
//
//	gridbankd -data /var/lib/gridbank -listen :7776 -publish :7777
//	gridbankd -data /var/lib/gridbank-r1 -replica-of primary:7777 \
//	    -primary primary:7776 -listen :7778
//
// The replica's data directory must be seeded with the VO's CA files
// (ca.crt/ca.key from the primary's directory) so its identity chains
// to the same trust root.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/replica"
)

func main() {
	var (
		dataDir    = flag.String("data", "gridbank-data", "data directory (keys, CA, ledger journal)")
		vo         = flag.String("vo", "VO-A", "virtual organization name (used at bootstrap)")
		branch     = flag.String("branch", "0001", "four-digit branch number")
		listen     = flag.String("listen", "127.0.0.1:7776", "listen address")
		issue      = flag.String("issue", "", "issue a user certificate with this common name and exit")
		syncWAL    = flag.Bool("sync", true, "fsync the ledger journal on every commit")
		checkpoint = flag.Bool("checkpoint", true, "checkpoint the ledger at startup (restart replays only the tail)")
		publish    = flag.String("publish", "", "serve the replication commit stream on this address (primary)")
		replicaOf  = flag.String("replica-of", "", "run as a read replica of the publisher at this address")
		primary    = flag.String("primary", "", "primary API address advertised in replica redirects")
	)
	flag.Parse()
	if *replicaOf != "" {
		if err := runReplica(*dataDir, *vo, *listen, *replicaOf, *primary); err != nil {
			log.Fatalf("gridbankd: %v", err)
		}
		return
	}
	if err := run(*dataDir, *vo, *branch, *listen, *issue, *publish, *syncWAL, *checkpoint); err != nil {
		log.Fatalf("gridbankd: %v", err)
	}
}

func run(dataDir, vo, branch, listen, issue, publish string, syncWAL, checkpoint bool) error {
	ca, err := loadOrCreateCA(dataDir, vo)
	if err != nil {
		return err
	}
	if issue != "" {
		id, err := ca.Issue(pki.IssueOptions{CommonName: issue, Organization: vo})
		if err != nil {
			return err
		}
		if err := pki.SaveIdentity(dataDir, issue, id); err != nil {
			return err
		}
		fmt.Printf("issued %s -> %s/%s.crt, %s/%s.key\n", id.SubjectName(), dataDir, issue, dataDir, issue)
		return nil
	}

	bankID, err := loadOrIssue(dataDir, ca, "bank", vo, true)
	if err != nil {
		return err
	}
	banker, err := loadOrIssue(dataDir, ca, "banker", vo, false)
	if err != nil {
		return err
	}
	journal, err := db.OpenFileJournal(filepath.Join(dataDir, "ledger.wal"), syncWAL)
	if err != nil {
		return err
	}
	ckptPath := filepath.Join(dataDir, "ledger.ckpt")
	store, err := db.OpenWithCheckpoint(ckptPath, journal)
	if err != nil {
		return err
	}
	if checkpoint {
		// Quiescent window before serving: snapshot the whole state,
		// then drop the journal it covers — startup cost and disk usage
		// stay proportional to one run's writes, not the full history.
		seq, err := store.Checkpoint(ckptPath)
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if cj, ok := journal.(db.CompactableJournal); ok {
			if err := cj.Compact(); err != nil {
				return fmt.Errorf("compacting journal after checkpoint: %w", err)
			}
		}
		log.Printf("gridbankd: checkpointed ledger at seq %d (%s), journal compacted", seq, ckptPath)
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bank, err := core.NewBank(store, core.BankConfig{
		Identity: bankID,
		Trust:    trust,
		Admins:   []string{banker.SubjectName()},
		Branch:   branch,
	})
	if err != nil {
		return err
	}
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		return err
	}
	if publish != "" {
		pub, err := replica.NewPublisher(replica.PublisherConfig{
			Store:       store,
			Identity:    bankID,
			Trust:       trust,
			PrimaryAddr: listen,
		})
		if err != nil {
			return err
		}
		go func() {
			if err := pub.ListenAndServe(publish); err != nil {
				log.Printf("gridbankd: replication publisher: %v", err)
			}
		}()
		log.Printf("gridbankd: publishing commit stream on %s", publish)
	}
	log.Printf("gridbankd: %s branch %s serving on %s (CA %s)",
		bankID.SubjectName(), branch, listen, pki.SubjectNameOf(ca.Certificate()))
	return srv.ListenAndServe(listen)
}

// runReplica runs the -replica-of mode: follow the publisher's commit
// stream and serve the query API read-only.
func runReplica(dataDir, vo, listen, publisherAddr, primaryAddr string) error {
	ca, err := loadOrCreateCA(dataDir, vo)
	if err != nil {
		return err
	}
	id, err := loadOrIssue(dataDir, ca, "replica", vo, true)
	if err != nil {
		return err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	fol, err := replica.StartFollower(replica.FollowerConfig{
		PublisherAddr: publisherAddr,
		Identity:      id,
		Trust:         trust,
	})
	if err != nil {
		return err
	}
	defer fol.Close()
	if err := fol.WaitReady(30 * time.Second); err != nil {
		return err
	}
	rb, err := core.NewReadOnlyBank(fol, core.ReadOnlyBankConfig{
		Identity:    id,
		Trust:       trust,
		PrimaryAddr: primaryAddr,
	})
	if err != nil {
		return err
	}
	srv, err := core.NewReadOnlyServer(rb, id)
	if err != nil {
		return err
	}
	log.Printf("gridbankd: %s read replica of %s serving on %s (applied seq %d)",
		id.SubjectName(), publisherAddr, listen, fol.AppliedSeq())
	return srv.ListenAndServe(listen)
}

// loadOrCreateCA reuses the data directory's CA or bootstraps one.
func loadOrCreateCA(dataDir, vo string) (*pki.CA, error) {
	caID, err := pki.LoadIdentity(dataDir, "ca")
	if err == nil {
		return pki.ResumeCA(caID)
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	ca, err := pki.NewCA(vo+" CA", vo, 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	if err := pki.SaveIdentity(dataDir, "ca", ca.Identity()); err != nil {
		return nil, err
	}
	if err := pki.SaveCACert(filepath.Join(dataDir, "ca.pem"), ca.Certificate()); err != nil {
		return nil, err
	}
	log.Printf("gridbankd: bootstrapped CA %s (distribute %s/ca.pem to clients)",
		pki.SubjectNameOf(ca.Certificate()), dataDir)
	return ca, nil
}

func loadOrIssue(dataDir string, ca *pki.CA, name, vo string, server bool) (*pki.Identity, error) {
	id, err := pki.LoadIdentity(dataDir, name)
	if err == nil {
		return id, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	id, err = ca.Issue(pki.IssueOptions{CommonName: name, Organization: vo, IsServer: server})
	if err != nil {
		return nil, err
	}
	if err := pki.SaveIdentity(dataDir, name, id); err != nil {
		return nil, err
	}
	return id, nil
}
