// Command gridbankd runs a GridBank server for one Virtual Organization.
//
// On first start with a fresh data directory it bootstraps the VO: a
// certificate authority, the bank's server identity, a "banker"
// administrator identity, and a durable ledger journal. Client and admin
// credentials are written under <data>/ for distribution:
//
//	gridbankd -data /var/lib/gridbank -vo VO-A -listen :7776
//
// Subsequent starts reuse the CA, identities and ledger.
//
// To enrol a user, issue a certificate with:
//
//	gridbankd -data /var/lib/gridbank -issue alice
//
// which writes alice.crt/alice.key for use with the gridbank CLI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/db"
	"gridbank/internal/pki"
)

func main() {
	var (
		dataDir = flag.String("data", "gridbank-data", "data directory (keys, CA, ledger journal)")
		vo      = flag.String("vo", "VO-A", "virtual organization name (used at bootstrap)")
		branch  = flag.String("branch", "0001", "four-digit branch number")
		listen  = flag.String("listen", "127.0.0.1:7776", "listen address")
		issue   = flag.String("issue", "", "issue a user certificate with this common name and exit")
		syncWAL = flag.Bool("sync", true, "fsync the ledger journal on every commit")
	)
	flag.Parse()
	if err := run(*dataDir, *vo, *branch, *listen, *issue, *syncWAL); err != nil {
		log.Fatalf("gridbankd: %v", err)
	}
}

func run(dataDir, vo, branch, listen, issue string, syncWAL bool) error {
	ca, err := loadOrCreateCA(dataDir, vo)
	if err != nil {
		return err
	}
	if issue != "" {
		id, err := ca.Issue(pki.IssueOptions{CommonName: issue, Organization: vo})
		if err != nil {
			return err
		}
		if err := pki.SaveIdentity(dataDir, issue, id); err != nil {
			return err
		}
		fmt.Printf("issued %s -> %s/%s.crt, %s/%s.key\n", id.SubjectName(), dataDir, issue, dataDir, issue)
		return nil
	}

	bankID, err := loadOrIssue(dataDir, ca, "bank", vo, true)
	if err != nil {
		return err
	}
	banker, err := loadOrIssue(dataDir, ca, "banker", vo, false)
	if err != nil {
		return err
	}
	journal, err := db.OpenFileJournal(filepath.Join(dataDir, "ledger.wal"), syncWAL)
	if err != nil {
		return err
	}
	store, err := db.Open(journal)
	if err != nil {
		return err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bank, err := core.NewBank(store, core.BankConfig{
		Identity: bankID,
		Trust:    trust,
		Admins:   []string{banker.SubjectName()},
		Branch:   branch,
	})
	if err != nil {
		return err
	}
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		return err
	}
	log.Printf("gridbankd: %s branch %s serving on %s (CA %s)",
		bankID.SubjectName(), branch, listen, pki.SubjectNameOf(ca.Certificate()))
	return srv.ListenAndServe(listen)
}

// loadOrCreateCA reuses the data directory's CA or bootstraps one.
func loadOrCreateCA(dataDir, vo string) (*pki.CA, error) {
	caID, err := pki.LoadIdentity(dataDir, "ca")
	if err == nil {
		return pki.ResumeCA(caID)
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	ca, err := pki.NewCA(vo+" CA", vo, 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	if err := pki.SaveIdentity(dataDir, "ca", ca.Identity()); err != nil {
		return nil, err
	}
	if err := pki.SaveCACert(filepath.Join(dataDir, "ca.pem"), ca.Certificate()); err != nil {
		return nil, err
	}
	log.Printf("gridbankd: bootstrapped CA %s (distribute %s/ca.pem to clients)",
		pki.SubjectNameOf(ca.Certificate()), dataDir)
	return ca, nil
}

func loadOrIssue(dataDir string, ca *pki.CA, name, vo string, server bool) (*pki.Identity, error) {
	id, err := pki.LoadIdentity(dataDir, name)
	if err == nil {
		return id, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	id, err = ca.Issue(pki.IssueOptions{CommonName: name, Organization: vo, IsServer: server})
	if err != nil {
		return nil, err
	}
	if err := pki.SaveIdentity(dataDir, name, id); err != nil {
		return nil, err
	}
	return id, nil
}
