package main

import (
	"crypto/x509"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gridbank/internal/pki"
)

func TestBootstrapAndResumeCA(t *testing.T) {
	dir := t.TempDir()
	ca1, err := loadOrCreateCA(dir, "VO-T")
	if err != nil {
		t.Fatal(err)
	}
	// Artifacts exist.
	for _, f := range []string{"ca.crt", "ca.key", "ca.pem"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	// Second call resumes the same CA.
	ca2, err := loadOrCreateCA(dir, "VO-T")
	if err != nil {
		t.Fatal(err)
	}
	if !ca1.Certificate().Equal(ca2.Certificate()) {
		t.Fatal("CA not resumed")
	}
	// Identities issued by the resumed CA verify against the original
	// trust anchor.
	id, err := ca2.Issue(pki.IssueOptions{CommonName: "post-restart", Organization: "VO-T"})
	if err != nil {
		t.Fatal(err)
	}
	ts := pki.NewTrustStore(ca1.Certificate())
	subj, err := ts.VerifyPeer([]*x509.Certificate{id.Cert}, time.Now())
	if err != nil {
		t.Fatalf("post-restart issuance not trusted: %v", err)
	}
	if subj != "CN=post-restart,O=VO-T" {
		t.Fatalf("subject = %q", subj)
	}
}

func TestLoadOrIssueIdempotent(t *testing.T) {
	dir := t.TempDir()
	ca, err := loadOrCreateCA(dir, "VO-T")
	if err != nil {
		t.Fatal(err)
	}
	id1, err := loadOrIssue(dir, ca, "bank", "VO-T", true)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := loadOrIssue(dir, ca, "bank", "VO-T", true)
	if err != nil {
		t.Fatal(err)
	}
	if !id1.Cert.Equal(id2.Cert) {
		t.Fatal("identity re-issued instead of loaded")
	}
}

func TestIssueFlagWritesIdentity(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "VO-T", "0001", "", "alice", "", false, false); err != nil {
		t.Fatal(err)
	}
	id, err := pki.LoadIdentity(dir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if id.SubjectName() != "CN=alice,O=VO-T" {
		t.Fatalf("issued subject = %q", id.SubjectName())
	}
}
