package main

import (
	"crypto/x509"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/shard"
	"gridbank/internal/wire"
)

func TestBootstrapAndResumeCA(t *testing.T) {
	dir := t.TempDir()
	ca1, err := loadOrCreateCA(dir, "VO-T")
	if err != nil {
		t.Fatal(err)
	}
	// Artifacts exist.
	for _, f := range []string{"ca.crt", "ca.key", "ca.pem"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	// Second call resumes the same CA.
	ca2, err := loadOrCreateCA(dir, "VO-T")
	if err != nil {
		t.Fatal(err)
	}
	if !ca1.Certificate().Equal(ca2.Certificate()) {
		t.Fatal("CA not resumed")
	}
	// Identities issued by the resumed CA verify against the original
	// trust anchor.
	id, err := ca2.Issue(pki.IssueOptions{CommonName: "post-restart", Organization: "VO-T"})
	if err != nil {
		t.Fatal(err)
	}
	ts := pki.NewTrustStore(ca1.Certificate())
	subj, err := ts.VerifyPeer([]*x509.Certificate{id.Cert}, time.Now())
	if err != nil {
		t.Fatalf("post-restart issuance not trusted: %v", err)
	}
	if subj != "CN=post-restart,O=VO-T" {
		t.Fatalf("subject = %q", subj)
	}
}

func TestLoadOrIssueIdempotent(t *testing.T) {
	dir := t.TempDir()
	ca, err := loadOrCreateCA(dir, "VO-T")
	if err != nil {
		t.Fatal(err)
	}
	id1, err := loadOrIssue(dir, ca, "bank", "VO-T", true)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := loadOrIssue(dir, ca, "bank", "VO-T", true)
	if err != nil {
		t.Fatal(err)
	}
	if !id1.Cert.Equal(id2.Cert) {
		t.Fatal("identity re-issued instead of loaded")
	}
}

func TestIssueFlagWritesIdentity(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "VO-T", "0001", "", "alice", "", 1, false, false, wire.CodecJSON, core.DefaultDedupTTL, usageFlags{}, micropayFlags{}, limitFlags{}, obsFlags{}); err != nil {
		t.Fatal(err)
	}
	id, err := pki.LoadIdentity(dir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if id.SubjectName() != "CN=alice,O=VO-T" {
		t.Fatalf("issued subject = %q", id.SubjectName())
	}
}

func TestPinShardCountRefusesMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := pinShardCount(dir, 4); err != nil {
		t.Fatal(err)
	}
	if err := pinShardCount(dir, 4); err != nil {
		t.Fatalf("matching re-pin = %v", err)
	}
	if err := pinShardCount(dir, 1); err == nil {
		t.Fatal("mismatched shard count accepted")
	}
	// A pre-sharding data dir (journal, no marker) is 1 shard only.
	legacy := t.TempDir()
	if err := os.WriteFile(filepath.Join(legacy, "ledger.wal"), []byte("[]\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := pinShardCount(legacy, 4); err == nil {
		t.Fatal("pre-sharding dir accepted -shards 4")
	}
	if err := pinShardCount(legacy, 1); err != nil {
		t.Fatalf("pre-sharding dir refused -shards 1: %v", err)
	}
}

func TestCheckShardIndexDetectsMismatchedReplica(t *testing.T) {
	store := db.MustOpenMemory()
	if err := store.EnsureTable("accounts"); err != nil {
		t.Fatal(err)
	}
	// Find an account ID on shard 2 of 4 and pretend this replica
	// mirrored it while claiming another shard.
	ring, err := shard.NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var id string
	for i := 1; i < 10000; i++ {
		candidate := fmt.Sprintf("01-0001-%08d", i)
		if ring.ShardFor(candidate) == 2 {
			id = candidate
			break
		}
	}
	err = store.Update(func(tx *db.Tx) error { return tx.Put("accounts", id, []byte("{}")) })
	if err != nil {
		t.Fatal(err)
	}
	if err := checkShardIndex(store, 2, 4); err != nil {
		t.Fatalf("correct shard claim rejected: %v", err)
	}
	if err := checkShardIndex(store, 1, 4); err == nil {
		t.Fatal("mismatched shard claim accepted")
	}
	// An empty store proves nothing and passes.
	if err := checkShardIndex(db.MustOpenMemory(), 1, 4); err != nil {
		t.Fatalf("empty store rejected: %v", err)
	}
}
