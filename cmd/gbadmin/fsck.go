package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gridbank/internal/db"
)

// runFsck walks a gridbankd data directory offline, verifying every
// journal (CRC / parse / sequence walk, read-only — torn tails are
// reported, not truncated) and every checkpoint generation, and prints
// the boot decision the fallback chain would make for each store. It
// returns healthy=false when any store has no intact source of history.
func runFsck(w io.Writer, dataDir string) (healthy bool, err error) {
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		return false, err
	}
	stores := map[string]bool{}
	var stale []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".wal"):
			stores[strings.TrimSuffix(name, ".wal")] = true
		case strings.HasSuffix(name, ".ckpt"):
			stores[strings.TrimSuffix(name, ".ckpt")] = true
		case strings.HasSuffix(name, ".ckpt.1"):
			stores[strings.TrimSuffix(name, ".ckpt.1")] = true
		case strings.HasSuffix(name, ".ckpt.corrupt"):
			stores[strings.TrimSuffix(name, ".ckpt.corrupt")] = true
		case strings.HasSuffix(name, ".tmp"):
			stale = append(stale, name)
		}
	}
	if len(stores) == 0 {
		fmt.Fprintf(w, "fsck: no stores found in %s\n", dataDir)
		return true, nil
	}
	names := make([]string, 0, len(stores))
	for n := range stores {
		names = append(names, n)
	}
	sort.Strings(names)

	fsys := db.OSFS()
	healthy = true
	for _, name := range names {
		rep, err := db.FsckStore(fsys, name,
			filepath.Join(dataDir, name+".wal"),
			filepath.Join(dataDir, name+".ckpt"))
		if err != nil {
			return false, fmt.Errorf("fsck %s: %w", name, err)
		}
		fmt.Fprintf(w, "store %s:\n", name)
		fmt.Fprintf(w, "  journal %s.wal [%s]: %s\n", name, rep.Journal.Codec, rep.Journal.Verdict())
		for _, g := range rep.Generations {
			fmt.Fprintf(w, "  checkpoint %s: %s\n", filepath.Base(g.Path), g.Verdict())
		}
		if rep.Bootable {
			fmt.Fprintf(w, "  boot: %s\n", rep.BootSource)
		} else {
			fmt.Fprintf(w, "  boot: REFUSED — no intact source of history\n")
			healthy = false
		}
	}
	for _, name := range stale {
		fmt.Fprintf(w, "stale temp file %s (swept at next open)\n", name)
	}
	if healthy {
		fmt.Fprintf(w, "fsck: %d store(s), all bootable\n", len(names))
	} else {
		fmt.Fprintf(w, "fsck: UNHEALTHY — at least one store cannot boot\n")
	}
	return healthy, nil
}
