// Command gbadmin performs the §5.2.1 GridBank Admin API operations.
// The identity presented must be in the bank's administrator table
// (gridbankd bootstraps "banker").
//
//	gbadmin -server host:7776 -ca ca.pem -cert banker.crt -key banker.key <op> [args]
//
// Operations:
//
//	deposit <account-id> <amount>
//	withdraw <account-id> <amount>
//	credit-limit <account-id> <amount>
//	cancel <transaction-id>
//	close <account-id> [transfer-to-account-id]
//	accounts
//	usage-status
//	usage-drain [timeout-seconds]
//	micropay-status
//	micropay-drain [timeout-seconds]
//	metrics
//
// One operation is offline and needs no server or identity:
//
//	fsck <data-dir>     verify journals + checkpoint generations on disk
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

func main() {
	var (
		server = flag.String("server", "127.0.0.1:7776", "GridBank server address")
		caPath = flag.String("ca", "ca.pem", "trusted CA certificate bundle")
		cert   = flag.String("cert", "banker.crt", "administrator certificate file")
		key    = flag.String("key", "banker.key", "administrator key file")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.Arg(0) == "fsck" {
		// Offline: verifies the data directory directly, no server dial.
		if flag.NArg() < 2 {
			log.Fatal("gbadmin: fsck needs a data directory argument")
		}
		healthy, err := runFsck(os.Stdout, flag.Arg(1))
		if err != nil {
			log.Fatalf("gbadmin: %v", err)
		}
		if !healthy {
			os.Exit(1)
		}
		return
	}
	if err := run(*server, *caPath, *cert, *key, flag.Args()); err != nil {
		log.Fatalf("gbadmin: %v", err)
	}
}

func run(server, caPath, certPath, keyPath string, args []string) error {
	dir, base := filepath.Split(certPath)
	if dir == "" {
		dir = "."
	}
	id, err := pki.LoadIdentity(dir, strings.TrimSuffix(base, ".crt"))
	if err != nil {
		return err
	}
	cas, err := pki.LoadCACerts(caPath)
	if err != nil {
		return err
	}
	client, err := core.Dial(server, id, pki.NewTrustStore(cas...))
	if err != nil {
		return err
	}
	// Offer the binary codec; a seed-era server ignores the unknown
	// field and the session stays on JSON.
	client.OfferCodecs = []string{wire.CodecBin1, wire.CodecJSON}
	defer client.Close()

	op, rest := args[0], args[1:]
	amountArg := func(i int) (currency.Amount, error) {
		if i >= len(rest) {
			return 0, fmt.Errorf("missing amount")
		}
		return currency.Parse(rest[i])
	}
	acctArg := func(i int) accounts.ID {
		if i >= len(rest) {
			log.Fatal("gbadmin: missing account ID")
		}
		return accounts.ID(rest[i])
	}

	switch op {
	case "deposit":
		amount, err := amountArg(1)
		if err != nil {
			return err
		}
		if err := client.AdminDeposit(acctArg(0), amount); err != nil {
			return err
		}
		fmt.Println("deposited")
	case "withdraw":
		amount, err := amountArg(1)
		if err != nil {
			return err
		}
		if err := client.AdminWithdraw(acctArg(0), amount); err != nil {
			return err
		}
		fmt.Println("withdrawn")
	case "credit-limit":
		amount, err := amountArg(1)
		if err != nil {
			return err
		}
		if err := client.AdminChangeCreditLimit(acctArg(0), amount); err != nil {
			return err
		}
		fmt.Println("limit set")
	case "cancel":
		if len(rest) < 1 {
			return fmt.Errorf("missing transaction ID")
		}
		txID, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			return err
		}
		if err := client.AdminCancelTransfer(txID); err != nil {
			return err
		}
		fmt.Println("cancelled")
	case "close":
		var to accounts.ID
		if len(rest) > 1 {
			to = accounts.ID(rest[1])
		}
		if err := client.AdminCloseAccount(acctArg(0), to); err != nil {
			return err
		}
		fmt.Println("closed")
	case "accounts":
		accts, err := client.AdminListAccounts()
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(accts, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	case "usage-status":
		st, err := client.UsageStatus()
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("queue_depth=%d in_flight=%d parked=%d pending=%d\n%s\n",
			st.QueueDepth, st.InFlight, st.Failed, st.Pending, b)
	case "micropay-status":
		st, err := client.MicropayStatus()
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("queue_depth=%d in_flight=%d parked=%d pending=%d settled_ticks=%d\n%s\n",
			st.QueueDepth, st.InFlight, st.Failed, st.Pending, st.SettledTicks, b)
	case "micropay-drain":
		timeout := 30 * time.Second
		if len(rest) > 0 {
			secs, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("bad timeout %q: %w", rest[0], err)
			}
			timeout = time.Duration(secs) * time.Second
		}
		st, err := client.MicropayDrain(timeout)
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("drained\n%s\n", b)
	case "metrics":
		snap, err := client.MetricsSnapshot()
		if err != nil {
			return err
		}
		if !snap.Enabled {
			fmt.Println("telemetry disabled: the server has no metrics registry")
			return nil
		}
		b, err := json.MarshalIndent(snap.Snapshot, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	case "usage-drain":
		timeout := 30 * time.Second
		if len(rest) > 0 {
			secs, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("bad timeout %q: %w", rest[0], err)
			}
			timeout = time.Duration(secs) * time.Second
		}
		st, err := client.UsageDrain(timeout)
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("drained\n%s\n", b)
	default:
		return fmt.Errorf("unknown operation %q", op)
	}
	return nil
}
