package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/obs"
	"gridbank/internal/pki"
	"gridbank/internal/usage"
)

func accountsID(s string) accounts.ID { return accounts.ID(s) }

type adminWorld struct {
	dir  string
	addr string
	bank *core.Bank
	srv  *core.Server
	acct string
}

func newAdminWorld(t *testing.T) *adminWorld {
	t.Helper()
	dir := t.TempDir()
	ca, err := pki.NewCA("VO-ADM CA", "VO-ADM", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := pki.SaveCACert(filepath.Join(dir, "ca.pem"), ca.Certificate()); err != nil {
		t.Fatal(err)
	}
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "bank", Organization: "VO-ADM", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	banker, err := ca.Issue(pki.IssueOptions{CommonName: "banker", Organization: "VO-ADM"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pki.SaveIdentity(dir, "banker", banker); err != nil {
		t.Fatal(err)
	}
	alice, err := ca.Issue(pki.IssueOptions{CommonName: "alice", Organization: "VO-ADM"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pki.SaveIdentity(dir, "alice", alice); err != nil {
		t.Fatal(err)
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bank, err := core.NewBank(db.MustOpenMemory(), core.BankConfig{
		Identity: bankID, Trust: trust, Admins: []string{banker.SubjectName()},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := bank.CreateAccount(alice.SubjectName(), &core.CreateAccountRequest{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &adminWorld{dir: dir, addr: ln.Addr().String(), bank: bank, srv: srv, acct: string(resp.Account.AccountID)}
}

func (w *adminWorld) admin(t *testing.T, who string, args ...string) error {
	t.Helper()
	return run(w.addr, filepath.Join(w.dir, "ca.pem"),
		filepath.Join(w.dir, who+".crt"), filepath.Join(w.dir, who+".key"), args)
}

func TestAdminCLIFlows(t *testing.T) {
	w := newAdminWorld(t)
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := w.admin(t, "banker", "deposit", w.acct, "120"); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	if err := w.admin(t, "banker", "withdraw", w.acct, "20"); err != nil {
		t.Fatalf("withdraw: %v", err)
	}
	if err := w.admin(t, "banker", "credit-limit", w.acct, "10"); err != nil {
		t.Fatalf("credit-limit: %v", err)
	}
	if err := w.admin(t, "banker", "accounts"); err != nil {
		t.Fatalf("accounts: %v", err)
	}
	acct, err := w.bank.Manager().Details(accountsID(w.acct))
	if err != nil {
		t.Fatal(err)
	}
	if acct.AvailableBalance != currency.FromG(100) || acct.CreditLimit != currency.FromG(10) {
		t.Fatalf("state = %+v", acct)
	}
	// Non-admin identities are refused by the server.
	if err := w.admin(t, "alice", "deposit", w.acct, "1"); err == nil {
		t.Fatal("non-admin deposit succeeded")
	}
	// Bad usage errors cleanly.
	if err := w.admin(t, "banker", "deposit", w.acct, "not-a-number"); err == nil {
		t.Fatal("bad amount accepted")
	}
	if err := w.admin(t, "banker", "cancel", "not-a-number"); err == nil {
		t.Fatal("bad tx id accepted")
	}
	if err := w.admin(t, "banker", "nonsense"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestMetricsCLIFlow(t *testing.T) {
	w := newAdminWorld(t)
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	// A registry-less server answers with Enabled=false, not an error.
	if err := w.admin(t, "banker", "metrics"); err != nil {
		t.Fatalf("metrics without registry: %v", err)
	}
	reg := obs.NewRegistry()
	w.bank.SetObs(reg)
	w.srv.Obs = reg
	if err := w.admin(t, "banker", "metrics"); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	// Metrics.Snapshot is an admin operation.
	if err := w.admin(t, "alice", "metrics"); err == nil {
		t.Fatal("non-admin metrics succeeded")
	}
}

func TestUsageCLIFlows(t *testing.T) {
	w := newAdminWorld(t)
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	// Without a pipeline the server answers "unavailable".
	if err := w.admin(t, "banker", "usage-status"); err == nil {
		t.Fatal("usage-status succeeded without a pipeline")
	}
	pipe, err := usage.New(usage.Config{
		Ledger: usage.WrapManager(w.bank.Manager()),
		Spool:  db.MustOpenMemory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	w.bank.SetUsage(pipe)
	if err := w.admin(t, "banker", "usage-status"); err != nil {
		t.Fatalf("usage-status: %v", err)
	}
	if err := w.admin(t, "banker", "usage-drain", "5"); err != nil {
		t.Fatalf("usage-drain: %v", err)
	}
	if err := w.admin(t, "banker", "usage-drain", "not-a-number"); err == nil {
		t.Fatal("bad drain timeout accepted")
	}
	// Draining is an admin operation.
	if err := w.admin(t, "alice", "usage-drain"); err == nil {
		t.Fatal("non-admin drain succeeded")
	}
}
