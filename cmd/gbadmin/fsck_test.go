package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridbank/internal/db"
)

// buildStore writes a small store with a journal and one checkpoint
// into dir under the given name, then closes everything cleanly.
func buildStore(t *testing.T, dir, name string) {
	t.Helper()
	j, err := db.OpenFileJournal(filepath.Join(dir, name+".wal"), true)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	s, err := db.OpenWithCheckpoint(filepath.Join(dir, name+".ckpt"), j)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if err := s.CreateTable("kv"); err != nil {
		t.Fatalf("create table: %v", err)
	}
	put := func(k, v string) {
		if err := s.Update(func(tx *db.Tx) error { return tx.Put("kv", k, []byte(v)) }); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	put("a", "1")
	put("b", "2")
	if _, err := s.Checkpoint(filepath.Join(dir, name+".ckpt")); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	put("c", "3") // post-checkpoint tail in the journal
	s.Close()
}

func TestFsckHealthyDataDir(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, "ledger-0")
	buildStore(t, dir, "usage")

	var out strings.Builder
	healthy, err := runFsck(&out, dir)
	if err != nil {
		t.Fatalf("runFsck: %v", err)
	}
	got := out.String()
	if !healthy {
		t.Fatalf("healthy dir reported unhealthy:\n%s", got)
	}
	for _, want := range []string{
		"store ledger-0:",
		"store usage:",
		"boot: checkpoint",
		"2 store(s), all bootable",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "CORRUPT") {
		t.Errorf("healthy dir reported corruption:\n%s", got)
	}
}

func TestFsckReportsCorruptCheckpointAndFallback(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, "ledger-0")
	// Second checkpoint rotates the first to .ckpt.1; then corrupt the
	// newest generation mid-body.
	j, err := db.OpenFileJournal(filepath.Join(dir, "ledger-0.wal"), true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.OpenWithCheckpoint(filepath.Join(dir, "ledger-0.ckpt"), j)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx *db.Tx) error { return tx.Put("kv", "d", []byte("4")) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(filepath.Join(dir, "ledger-0.ckpt")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	ckpt := filepath.Join(dir, "ledger-0.ckpt")
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(ckpt, b, 0o600); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	healthy, err := runFsck(&out, dir)
	if err != nil {
		t.Fatalf("runFsck: %v", err)
	}
	got := out.String()
	if !healthy {
		t.Fatalf("store with intact .ckpt.1 should stay bootable:\n%s", got)
	}
	if !strings.Contains(got, "checkpoint ledger-0.ckpt: CORRUPT") {
		t.Errorf("corrupt newest generation not reported:\n%s", got)
	}
	if !strings.Contains(got, "boot: checkpoint "+filepath.Join(dir, "ledger-0.ckpt.1")) {
		t.Errorf("fallback generation not chosen:\n%s", got)
	}
}

func TestFsckUnhealthyWhenNoIntactHistory(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, "ledger-0")
	// Compact so the journal no longer holds full history, then corrupt
	// the only checkpoint generation.
	j, err := db.OpenFileJournal(filepath.Join(dir, "ledger-0.wal"), true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.OpenWithCheckpoint(filepath.Join(dir, "ledger-0.ckpt"), j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(filepath.Join(dir, "ledger-0.ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := j.(db.CompactableJournal).Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx *db.Tx) error { return tx.Put("kv", "e", []byte("5")) }); err != nil {
		t.Fatal(err)
	}
	s.Close()
	for _, name := range []string{"ledger-0.ckpt", "ledger-0.ckpt.1"} {
		p := filepath.Join(dir, name)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xFF
		if err := os.WriteFile(p, b, 0o600); err != nil {
			t.Fatal(err)
		}
	}

	var out strings.Builder
	healthy, err := runFsck(&out, dir)
	if err != nil {
		t.Fatalf("runFsck: %v", err)
	}
	got := out.String()
	if healthy {
		t.Fatalf("no intact history but fsck reported healthy:\n%s", got)
	}
	if !strings.Contains(got, "REFUSED") || !strings.Contains(got, "UNHEALTHY") {
		t.Errorf("missing refusal verdicts:\n%s", got)
	}
}

func TestFsckReportsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, "ledger-0")
	if err := os.WriteFile(filepath.Join(dir, "ledger-0.ckpt.tmp"), []byte("partial"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := runFsck(&out, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stale temp file ledger-0.ckpt.tmp") {
		t.Errorf("stale tmp not reported:\n%s", out.String())
	}
}
