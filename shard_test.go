package gridbank_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridbank"
)

// shardedFixture stands up a 3-shard deployment with one read replica
// per shard and two funded users whose accounts live on different
// shards.
type shardedFixture struct {
	dep          *gridbank.Deployment
	alice, bob   *gridbank.Identity
	aAcct, bAcct gridbank.AccountID
}

func newShardedFixture(t *testing.T) *shardedFixture {
	t.Helper()
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Shard"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	if err := dep.EnableSharding(3); err != nil {
		t.Fatal(err)
	}
	led := dep.Sharded()
	if led == nil || led.Shards() != 3 {
		t.Fatalf("Sharded() = %v", led)
	}

	// Mint users until two accounts land on different shards.
	open := func(name string) (*gridbank.Identity, gridbank.AccountID) {
		id, err := dep.NewUser(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := dep.Dial(id)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		acct, err := c.CreateAccount("VO-Shard", "")
		if err != nil {
			t.Fatal(err)
		}
		return id, acct.AccountID
	}
	f := &shardedFixture{dep: dep}
	f.alice, f.aAcct = open("alice")
	for i := 0; ; i++ {
		if i > 50 {
			t.Fatal("no cross-shard account pair in 50 tries")
		}
		id, acct := open(fmt.Sprintf("bob-%d", i))
		if led.ShardFor(acct) != led.ShardFor(f.aAcct) {
			f.bob, f.bAcct = id, acct
			break
		}
	}
	return f
}

// TestDeploymentShardedEndToEnd drives the full stack over a sharded
// ledger: cross-shard direct transfer, cross-shard cheque redemption
// (the pay-after-use flow whose drawer and payee bank on different
// shards), per-shard read replicas, and routed reads — all through the
// real TLS servers, with conservation checked at the end.
func TestDeploymentShardedEndToEnd(t *testing.T) {
	f := newShardedFixture(t)
	dep := f.dep

	// One replica per shard.
	for i := 0; i < 3; i++ {
		if _, err := dep.AddShardReplica(fmt.Sprintf("shard-rep-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}

	bc, err := dep.Dial(dep.Banker)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if err := bc.AdminDeposit(f.aAcct, gridbank.G(100)); err != nil {
		t.Fatal(err)
	}

	// Cross-shard direct transfer through the wire.
	ac, err := dep.Dial(f.alice)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if _, err := ac.DirectTransfer(f.aAcct, f.bAcct, gridbank.G(10), ""); err != nil {
		t.Fatal(err)
	}

	// Cross-shard cheque: alice draws on her shard, bob redeems onto
	// his — the redemption settles FromLocked across shards via 2PC.
	cheque, err := ac.RequestCheque(f.aAcct, gridbank.G(20), f.bob.SubjectName(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := dep.Dial(f.bob)
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()
	red, err := gc.RedeemCheque(cheque, &gridbank.ChequeClaim{
		Serial: cheque.Cheque.Serial,
		Amount: gridbank.G(15),
		RUR:    []byte("usage"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if red.Paid != gridbank.G(15) || red.Released != gridbank.G(5) {
		t.Fatalf("redemption = %+v", red)
	}

	aBal, err := ac.AccountDetails(f.aAcct)
	if err != nil {
		t.Fatal(err)
	}
	bBal, err := gc.AccountDetails(f.bAcct)
	if err != nil {
		t.Fatal(err)
	}
	if aBal.AvailableBalance != gridbank.G(75) || bBal.AvailableBalance != gridbank.G(25) {
		t.Fatalf("balances after cross-shard flows: alice=%v bob=%v", aBal.AvailableBalance, bBal.AvailableBalance)
	}

	// Conservation across the whole sharded ledger.
	total, err := dep.Sharded().TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	if total != gridbank.G(100) {
		t.Fatalf("total across shards = %v, want 100 G$", total)
	}

	// Routed reads resolve through the per-shard replica pools.
	if err := dep.SyncReplicas(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	routed, err := dep.DialRouted(f.alice, gridbank.RouteOptions{MaxStaleness: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer routed.Close()
	a, err := routed.AccountDetails(f.aAcct)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != gridbank.G(75) {
		t.Fatalf("routed read = %v", a.AvailableBalance)
	}

	// A replica of the wrong shard redirects typed, never lies.
	var wrong *gridbank.Client
	for _, r := range dep.Replicas() {
		if r.Shard != dep.Sharded().ShardFor(f.aAcct) {
			wrong, err = gridbank.Dial(r.Addr(), f.alice, dep.Trust)
			if err != nil {
				t.Fatal(err)
			}
			defer wrong.Close()
			break
		}
	}
	if _, err := wrong.AccountDetails(f.aAcct); !gridbank.IsRemoteCode(err, "wrong_shard") {
		t.Fatalf("wrong-shard replica read = %v, want wrong_shard", err)
	}
}

// TestEnableShardingGuards pins the safety rails: resharding a
// populated deployment is refused, as is double-enabling.
func TestEnableShardingGuards(t *testing.T) {
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Guard"})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	u, err := dep.NewUser("u")
	if err != nil {
		t.Fatal(err)
	}
	c, err := dep.Dial(u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateAccount("VO-Guard", ""); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := dep.EnableSharding(2); err == nil {
		t.Fatal("sharding a populated deployment must be refused")
	}

	dep2, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Guard2"})
	if err != nil {
		t.Fatal(err)
	}
	defer dep2.Close()
	if err := dep2.EnableSharding(2); err != nil {
		t.Fatal(err)
	}
	if err := dep2.EnableSharding(2); err == nil {
		t.Fatal("double EnableSharding must be refused")
	}
}

// TestOneShardOpensSeedFormatJournalByteCompatibly guards the PR 1
// byte-compatibility promise through the shard refactor: a 1-shard
// deployment opens a journal written by an unsharded deployment,
// serves it, adds no sharding tables, and appends in the exact NDJSON
// framing the seed wrote.
func TestOneShardOpensSeedFormatJournalByteCompatibly(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ledger.wal")

	// Generation 1: classic unsharded deployment writes the journal.
	j1, err := gridbank.OpenFileJournal(walPath, false)
	if err != nil {
		t.Fatal(err)
	}
	dep1, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Seed", Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := dep1.NewUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := dep1.Dial(alice)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := c1.CreateAccount("VO-Seed", "")
	if err != nil {
		t.Fatal(err)
	}
	bc1, err := dep1.Dial(dep1.Banker)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc1.AdminDeposit(acct.AccountID, gridbank.G(42)); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	bc1.Close()
	if err := dep1.Close(); err != nil {
		t.Fatal(err)
	}
	seedBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(seedBytes) == 0 {
		t.Fatal("generation 1 wrote no journal")
	}

	// Generation 2: a 1-shard deployment reopens the same journal. The
	// sharded code path must replay it identically and leave the
	// on-disk format untouched.
	j2, err := gridbank.OpenFileJournal(walPath, false)
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Seed", Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	defer dep2.Close()
	if err := dep2.EnableSharding(1); err != nil {
		t.Fatal(err)
	}
	got, err := dep2.Sharded().Details(acct.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if got.AvailableBalance != gridbank.G(42) {
		t.Fatalf("replayed balance = %v, want 42 G$", got.AvailableBalance)
	}
	// Writing through the 1-shard ledger appends seed-framed lines
	// after the untouched original bytes.
	if err := dep2.Sharded().Deposit(acct.AccountID, gridbank.G(8)); err != nil {
		t.Fatal(err)
	}
	if err := dep2.Close(); err != nil {
		t.Fatal(err)
	}
	finalBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(finalBytes), string(seedBytes)) {
		t.Fatal("1-shard reopen rewrote existing journal bytes")
	}
	tail := strings.TrimPrefix(string(finalBytes), string(seedBytes))
	for _, line := range strings.Split(strings.TrimSuffix(tail, "\n"), "\n") {
		if !strings.HasPrefix(line, `[{"seq":`) || !strings.HasSuffix(line, "}]") {
			t.Fatalf("appended line not in seed NDJSON batch framing: %q", line)
		}
		if strings.Contains(line, "pc_transfers") || strings.Contains(line, "pc_applied") {
			t.Fatalf("1-shard deployment created sharding tables: %q", line)
		}
	}
	if !strings.Contains(tail, `"op":"put"`) {
		t.Fatalf("deposit did not journal through the sharded path: %q", tail)
	}
}
