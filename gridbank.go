// Package gridbank is the public API of this GridBank (GASA)
// implementation — a Grid-wide accounting and micro-payment service after
// Barmouta & Buyya, "GridBank: A Grid Accounting Services Architecture
// (GASA) for Distributed Systems Sharing and Integration" (IPPS 2003).
//
// The package re-exports the library's building blocks and provides
// one-call deployment helpers:
//
//   - the bank: Bank (ledger + payment protocols + §5.2 API), Server
//     (mutually-authenticated TLS front end), Client (the GridBank
//     Payment Module);
//   - payment instruments: GridCheques (pay-after-use), GridHash chains
//     (pay-as-you-go), direct transfers (pay-before-use);
//   - the GSP side: TradeServer (GTS with GRACE pricing models), Meter
//     (GRM), ChargingModule (GBCM with template accounts + grid-mapfile);
//   - the GSC side: DBC broker scheduling (cost/time/cost-time);
//   - substrates: PKI/GSI-style security, an embedded ledger store, a
//     discrete-event Grid simulator, the market directory, the §4
//     economic models, and §6 multi-branch settlement.
//
// Quickstart:
//
//	dep, _ := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-A"})
//	defer dep.Close()
//	alice, _ := dep.NewUser("alice")
//	client, _ := dep.Dial(alice)
//	acct, _ := client.CreateAccount("VO-A", gridbank.GridDollar)
//
// See examples/ for complete scenarios.
package gridbank

import (
	"gridbank/internal/accounts"
	"gridbank/internal/branch"
	"gridbank/internal/broker"
	"gridbank/internal/charging"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/economy"
	"gridbank/internal/gmd"
	"gridbank/internal/gridsim"
	"gridbank/internal/meter"
	"gridbank/internal/micropay"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/replica"
	"gridbank/internal/rur"
	"gridbank/internal/shard"
	"gridbank/internal/trade"
	"gridbank/internal/usage"
)

// --- Currency ---------------------------------------------------------------

// Amount is a fixed-point quantity of Grid currency (µG$ resolution).
type Amount = currency.Amount

// Rate is a price per metered unit.
type Rate = currency.Rate

// CurrencyCode identifies a currency unit ("G$", "USD", ...).
type CurrencyCode = currency.Code

// GridDollar is the default Grid currency.
const GridDollar = currency.GridDollar

// Currency constructors and helpers.
var (
	// G converts whole Grid dollars to an Amount.
	G = currency.FromG
	// Micro converts micro-credits to an Amount.
	Micro = currency.FromMicro
	// ParseAmount parses a decimal G$ string.
	ParseAmount = currency.Parse
	// MustParseAmount parses or panics (literals in examples/tests).
	MustParseAmount = currency.MustParse
	// PerHour / PerMB / PerMBHour / PerSecond build rates.
	PerHour   = currency.PerHour
	PerMB     = currency.PerMB
	PerMBHour = currency.PerMBHour
	PerSecond = currency.PerSecond
)

// --- Security (GSI substitute) ----------------------------------------------

// CA is a certificate authority for a VO.
type CA = pki.CA

// Identity is a certificate + private key (user, GSP, bank, admin).
type Identity = pki.Identity

// TrustStore is the set of trusted CAs plus proxy-aware verification.
type TrustStore = pki.TrustStore

// IssueOptions parameterize certificate issuance.
type IssueOptions = pki.IssueOptions

// Signed is a detached-signature envelope (non-repudiation).
type Signed = pki.Signed

// Security constructors.
var (
	// NewCA creates a self-signed VO certificate authority.
	NewCA = pki.NewCA
	// NewTrustStore builds a trust store over CA certificates.
	NewTrustStore = pki.NewTrustStore
	// NewProxy creates a short-lived user proxy (single sign-on).
	NewProxy = pki.NewProxy
)

// --- Accounts & ledger --------------------------------------------------------

// Account is the §5.1 ACCOUNT record.
type Account = accounts.Account

// AccountID is a bank-branch-account identifier ("01-0001-00000001").
type AccountID = accounts.ID

// Transaction and Transfer are the §5.1 journal records.
type (
	Transaction = accounts.Transaction
	Transfer    = accounts.Transfer
	Statement   = accounts.Statement
)

// TransferOptions modify ledger transfers (locked-funds payout, RUR
// evidence).
type TransferOptions = accounts.TransferOptions

// AccountSummary condenses a statement into billing totals.
type AccountSummary = accounts.Summary

// Summarize folds a statement into an AccountSummary.
var Summarize = accounts.Summarize

// Store is the embedded database beneath a bank.
type Store = db.Store

// Journal is the store's write-ahead log interface.
type Journal = db.Journal

// Storage constructors.
var (
	// OpenStore opens a store over a journal (nil = volatile).
	OpenStore = db.Open
	// MemoryStore returns a volatile in-memory store.
	MemoryStore = db.MustOpenMemory
	// OpenFileJournal opens a durable newline-JSON journal file.
	OpenFileJournal = db.OpenFileJournal
	// OpenStoreWithCheckpoint restores from a checkpoint file and
	// replays only the journal tail written after it.
	OpenStoreWithCheckpoint = db.OpenWithCheckpoint
)

// --- The bank ----------------------------------------------------------------

// Bank is the GridBank server core: accounts layer + payment protocol
// layer + authorization, implementing the §5.2 API.
type Bank = core.Bank

// BankConfig configures NewBank.
type BankConfig = core.BankConfig

// Server exposes a Bank over mutually-authenticated TLS. Connections
// are multiplexed: requests on one connection dispatch concurrently
// (bounded by Server.MaxInFlight) and responses return as they
// complete, matched by ID; Server.MaxConns and Server.IdleTimeout gate
// and reap connections.
type Server = core.Server

// Server transport limit defaults (override the Server fields, or set
// DeploymentConfig.MaxConns / IdleTimeout / MaxInFlight).
const (
	DefaultMaxInFlight  = core.DefaultMaxInFlight
	DefaultIdleTimeout  = core.DefaultIdleTimeout
	DefaultWriteTimeout = core.DefaultWriteTimeout
)

// OpHandler serves a custom payment-scheme operation registered with
// Server.RegisterOp (the §3.2 extension point).
type OpHandler = core.OpHandler

// Client is the GridBank Payment Module (GBPM) transport: a pipelined
// multiplexed connection — concurrent callers share it without
// serializing their round trips.
type Client = core.Client

// Bank constructors.
var (
	NewBank   = core.NewBank
	NewServer = core.NewServer
	// Dial connects a client to a GridBank server.
	Dial = core.Dial
	// IsRemoteCode tests a client error for a stable server error code.
	IsRemoteCode = core.IsRemoteCode
	// NewIdempotencyKey mints a fresh token for Client.DirectTransferKeyed:
	// retrying an ambiguous failure under the same key is safe.
	NewIdempotencyKey = core.NewIdempotencyKey
)

// Stable server error codes.
const (
	CodeDenied       = core.CodeDenied
	CodeNotFound     = core.CodeNotFound
	CodeInsufficient = core.CodeInsufficient
	CodeInvalid      = core.CodeInvalid
	CodeDuplicate    = core.CodeDuplicate
	CodeExpired      = core.CodeExpired
	CodeConflict     = core.CodeConflict
	CodeReadOnly     = core.CodeReadOnly
	CodeUnavailable  = core.CodeUnavailable
	CodeOverloaded   = core.CodeOverloaded
	// CodeDeadlineExceeded marks a request the server shed because the
	// caller's deadline_ms budget elapsed before dispatch (nothing
	// executed; safe to retry).
	CodeDeadlineExceeded = core.CodeDeadlineExceeded
)

// Per-call deadline and resilience defaults (see Client.CallTimeout,
// BankConfig.DedupTTL).
const (
	DefaultCallTimeout = core.DefaultCallTimeout
	DefaultDedupTTL    = core.DefaultDedupTTL
)

// --- Usage settlement pipeline ----------------------------------------------

// UsagePipeline is the batched asynchronous usage-settlement engine:
// durable intake spool, exactly-once settlement keyed by submission ID,
// per-(shard, account) batching, backpressure.
type UsagePipeline = usage.Pipeline

// UsagePipelineConfig configures NewUsagePipeline.
type UsagePipelineConfig = usage.Config

// UsageSubmission is one priced usage record offered for settlement.
type UsageSubmission = usage.Submission

// UsageStats is the pipeline's observable state (Usage.Status).
type UsageStats = usage.Stats

// UsageSubmitResult summarizes one intake batch.
type UsageSubmitResult = usage.SubmitResult

// Usage pipeline constructors and errors.
var (
	// NewUsagePipeline builds a settlement pipeline (library wiring;
	// deployments use Deployment.EnableUsage).
	NewUsagePipeline = usage.New
	// WrapShardedLedger / WrapAccountsManager adapt settlement targets.
	WrapShardedLedger   = usage.WrapSharded
	WrapAccountsManager = usage.WrapManager
	// ErrUsageOverloaded is the typed backpressure refusal.
	ErrUsageOverloaded = usage.ErrOverloaded
)

// --- Read replication --------------------------------------------------------

// ReplicaPublisher serves a primary's commit stream (snapshot bootstrap
// + WAL shipping) to followers over mutual TLS.
type ReplicaPublisher = replica.Publisher

// ReplicaPublisherConfig configures NewReplicaPublisher.
type ReplicaPublisherConfig = replica.PublisherConfig

// ReplicaFollower mirrors a primary's store from its commit stream,
// tracking applied sequence, lag and staleness, re-bootstrapping on
// stream gaps.
type ReplicaFollower = replica.Follower

// ReplicaFollowerConfig configures StartReplicaFollower.
type ReplicaFollowerConfig = replica.FollowerConfig

// ReadOnlyBank answers the query subset of the §5.2 API from a
// follower's store and redirects mutations to the primary.
type ReadOnlyBank = core.ReadOnlyBank

// ReadOnlyBankConfig configures NewReadOnlyBank.
type ReadOnlyBankConfig = core.ReadOnlyBankConfig

// RoutedClient spreads query traffic across read replicas within a
// max-staleness bound, sending mutations (and stale fallbacks) to the
// primary.
type RoutedClient = core.RoutedClient

// RouteOptions tune a RoutedClient (staleness bound, probe interval,
// retry policy, circuit breaker).
type RouteOptions = core.RouteOptions

// RetryPolicy governs a RoutedClient's automatic retries of retry-safe
// calls (idempotent reads and idempotency-keyed mutations).
type RetryPolicy = core.RetryPolicy

// ReplicaStatus is a server's replication role, position and staleness.
type ReplicaStatus = core.ReplicaStatusResponse

// Replication roles reported by ReplicaStatus.
const (
	RolePrimary = core.RolePrimary
	RoleReplica = core.RoleReplica
)

// Replication constructors.
var (
	NewReplicaPublisher  = replica.NewPublisher
	StartReplicaFollower = replica.StartFollower
	NewReadOnlyBank      = core.NewReadOnlyBank
	// NewReadOnlyServer serves a ReadOnlyBank over the same TLS gate as
	// a primary Server.
	NewReadOnlyServer = core.NewReadOnlyServer
	// NewRoutedClient builds a read-routing client over a primary and
	// replica connections.
	NewRoutedClient = core.NewRoutedClient
)

// --- Sharding ----------------------------------------------------------------

// ShardedLedger partitions accounts across N stores by consistent hash
// of the account ID, with two-phase-commit cross-shard transfers
// journaled in the shards' write-ahead logs.
type ShardedLedger = shard.Ledger

// ShardedLedgerConfig configures NewShardedLedger.
type ShardedLedgerConfig = shard.Config

// ShardRing is the consistent-hash placement ring (virtual nodes).
type ShardRing = shard.Ring

// ShardMap is the Shard.Map response: the placement parameters a
// client needs to compute account→shard mapping locally.
type ShardMap = core.ShardMapResponse

// Sharding constructors.
var (
	// NewShardedLedger builds a sharded ledger over one store per shard
	// and resolves any in-doubt cross-shard transfers left by a crash.
	NewShardedLedger = shard.New
	// NewShardRing builds a placement ring for (shards, vnodes).
	NewShardRing = shard.NewRing
	// NewBankWithLedger assembles a bank over a sharded ledger.
	NewBankWithLedger = core.NewBankWithLedger
)

// --- Payment instruments -------------------------------------------------------

// Cheque is the GridCheque payload (pay-after-use).
type Cheque = payment.Cheque

// SignedCheque couples a cheque with the bank's signature.
type SignedCheque = payment.SignedCheque

// ChequeClaim is a GSP's redemption request.
type ChequeClaim = payment.ChequeClaim

// Chain is the consumer-side GridHash chain (pay-as-you-go).
type Chain = payment.Chain

// SignedChain is the bank-signed chain commitment.
type SignedChain = payment.SignedChain

// ChainClaim is a chain redemption request.
type ChainClaim = payment.ChainClaim

// Instrument verification helpers (GSP-side checks). VerifyChain
// returns the signature-verified payload commitment — use it (never the
// unverified wrapper copy) for everything downstream. VerifyWordAfter
// verifies a streamed word incrementally against the last accepted one
// in O(delta) hashes; ChainReceiver packages that bookkeeping.
var (
	VerifyCheque     = payment.VerifyCheque
	VerifyChain      = payment.VerifyChain
	VerifyWord       = payment.VerifyWord
	VerifyWordAfter  = payment.VerifyWordAfter
	NewChainReceiver = payment.NewReceiver
)

// ChainReceiver tracks the payee side of one streaming chain: highest
// accepted word and the incremental-verification anchor.
type ChainReceiver = payment.Receiver

// --- Streaming micropayments (GridHash fast path) ---------------------------

// MicropayPipeline is the streaming chain-redemption pipeline: durable
// claim intake, per-(shard, drawer) batching, one redemption
// transaction per chain per batch.
type MicropayPipeline = micropay.Pipeline

// MicropayPipelineConfig configures NewMicropayPipeline.
type MicropayPipelineConfig = micropay.Config

// MicropayClaim is one chain tick offered for asynchronous redemption.
type MicropayClaim = micropay.Claim

// MicropayStats is the pipeline's observable state (Micropay.Status).
type MicropayStats = micropay.Stats

// MicropaySubmitResult summarizes one intake batch.
type MicropaySubmitResult = micropay.SubmitResult

// Micropay pipeline constructor and errors.
var (
	// NewMicropayPipeline builds a streaming redemption pipeline
	// (library wiring; deployments use Deployment.EnableMicropay).
	NewMicropayPipeline = micropay.New
	// ErrMicropayOverloaded is the typed backpressure refusal.
	ErrMicropayOverloaded = micropay.ErrOverloaded
)

// --- Usage records ---------------------------------------------------------

// UsageRecord is the standard Resource Usage Record.
type UsageRecord = rur.Record

// UsageItem is a chargeable item category.
type UsageItem = rur.Item

// Chargeable items (§2.1).
const (
	ItemCPU       = rur.ItemCPU
	ItemWallClock = rur.ItemWallClock
	ItemMemory    = rur.ItemMemory
	ItemStorage   = rur.ItemStorage
	ItemNetwork   = rur.ItemNetwork
	ItemSoftware  = rur.ItemSoftware
)

// AllUsageItems lists every chargeable item in canonical order.
var AllUsageItems = rur.AllItems

// RateCard is a per-item price list from a Grid Trade Server.
type RateCard = rur.RateCard

// ZeroRate charges nothing regardless of usage.
var ZeroRate = currency.ZeroRate

// CostStatement is a priced usage calculation.
type CostStatement = rur.CostStatement

// PriceUsage computes usage × rates (the §2.1 charge formula).
var PriceUsage = rur.Price

// UsageRecord encodings (the meter translates between them).
const (
	UsageFormatJSON = rur.FormatJSON
	UsageFormatXML  = rur.FormatXML
)

// EncodeUsageRecord / DecodeUsageRecord serialize records for wire
// submission and storage.
var (
	EncodeUsageRecord = rur.Encode
	DecodeUsageRecord = rur.Decode
)

// --- GSP side ---------------------------------------------------------------

// TradeServer is the Grid Trade Server (GTS).
type TradeServer = trade.Server

// TradeServerConfig configures a GTS.
type TradeServerConfig = trade.ServerConfig

// RateAgreement is a signed, concluded rate agreement.
type RateAgreement = trade.Agreement

// Pricing models.
type (
	PostedPrice     = trade.PostedPrice
	CommodityMarket = trade.CommodityMarket
)

// Meter is the Grid Resource Meter (GRM).
type Meter = meter.Meter

// ChargingModule is the GridBank Charging Module (GBCM).
type ChargingModule = charging.Module

// ChargingConfig configures a GBCM.
type ChargingConfig = charging.ModuleConfig

// TemplatePool manages §2.3 template local accounts.
type TemplatePool = charging.TemplatePool

// Mapfile is the grid-mapfile simulation.
type Mapfile = charging.Mapfile

// GSP-side constructors.
var (
	NewTradeServer    = trade.NewServer
	NewMeter          = meter.New
	NewChargingModule = charging.NewModule
	NewTemplatePool   = charging.NewTemplatePool
	NewMapfile        = charging.NewMapfile
)

// --- Market directory ---------------------------------------------------------

// MarketDirectory is the Grid Market Directory.
type MarketDirectory = gmd.Directory

// Advertisement is one GSP's directory entry.
type Advertisement = gmd.Advertisement

// MarketQuery filters directory lookups.
type MarketQuery = gmd.Query

// NewMarketDirectory creates a directory.
var NewMarketDirectory = gmd.New

// --- Broker (GSC side) ---------------------------------------------------------

// SchedStrategy selects a DBC algorithm.
type SchedStrategy = broker.Strategy

// DBC strategies (Nimrod-G).
const (
	CostOptimal = broker.CostOptimal
	TimeOptimal = broker.TimeOptimal
	CostTime    = broker.CostTime
)

// Candidate, QoS, Plan: broker planning types.
type (
	Candidate = broker.Candidate
	QoS       = broker.QoS
	Plan      = broker.Plan
)

// ScheduleJobs plans a bag of jobs under deadline/budget constraints.
var ScheduleJobs = broker.Schedule

// --- Simulator -----------------------------------------------------------------

// Sim is the discrete-event Grid simulator.
type Sim = gridsim.Sim

// SimJob is a simulated job.
type SimJob = gridsim.Job

// SimResource is a simulated GSP resource.
type SimResource = gridsim.Resource

// ResourceConfig describes a simulated resource.
type ResourceConfig = gridsim.ResourceConfig

// JobResult is a completed simulated job with raw usage.
type JobResult = gridsim.JobResult

// BagOptions parameterize BagWorkload.
type BagOptions = gridsim.BagOptions

// Simulator constructors.
var (
	NewSim = gridsim.New
	// BagWorkload generates a deterministic bag-of-tasks workload.
	BagWorkload = gridsim.Bag
)

// --- Economy -----------------------------------------------------------------

// CoopSim drives the §4.1 co-operative bartering community.
type CoopSim = economy.CoopSim

// CoopParticipant is one co-op member.
type CoopParticipant = economy.Participant

// PricingAuthority regulates community prices toward equilibrium.
type PricingAuthority = economy.PricingAuthority

// PriceEstimator values resources from transaction history (§4.2).
type PriceEstimator = economy.Estimator

// ResourceSpec describes hardware for valuation.
type ResourceSpec = economy.ResourceSpec

// PricePoint is one historical observation.
type PricePoint = economy.PricePoint

// Economy constructors.
var (
	NewCoopSim        = economy.NewCoopSim
	NewPriceEstimator = economy.NewEstimator
)

// --- Multi-branch -----------------------------------------------------------

// BranchNetwork is the §6 multi-VO settlement network.
type BranchNetwork = branch.Network

// BankBranch is one VO's branch in the network.
type BankBranch = branch.Branch

// NewBranchNetwork creates an empty settlement network.
var NewBranchNetwork = branch.NewNetwork
