package gridbank_test

import (
	"testing"
	"time"

	"gridbank"
)

// TestDeploymentQuickstart exercises the README quickstart path against
// the public API only.
func TestDeploymentQuickstart(t *testing.T) {
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Test"})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	alice, err := dep.NewUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	client, err := dep.Dial(alice)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	acct, err := client.CreateAccount("VO-Test", gridbank.GridDollar)
	if err != nil {
		t.Fatal(err)
	}
	if !acct.AccountID.Valid() {
		t.Fatalf("account ID %q invalid", acct.AccountID)
	}

	// Admin funds the account over the wire.
	banker, err := dep.Dial(dep.Banker)
	if err != nil {
		t.Fatal(err)
	}
	defer banker.Close()
	if err := banker.AdminDeposit(acct.AccountID, gridbank.G(100)); err != nil {
		t.Fatal(err)
	}

	got, err := client.AccountDetails(acct.AccountID)
	if err != nil || got.AvailableBalance != gridbank.G(100) {
		t.Fatalf("balance = %+v, %v", got, err)
	}
}

func TestDeploymentProxySignOn(t *testing.T) {
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Test"})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	alice, err := dep.NewUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Open the account with the identity, then operate through a proxy.
	c1, err := dep.Dial(alice)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := c1.CreateAccount("", "")
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()

	proxyClient, err := dep.DialProxy(alice, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer proxyClient.Close()
	got, err := proxyClient.AccountDetails(acct.AccountID)
	if err != nil {
		t.Fatalf("proxy access failed: %v", err)
	}
	if got.CertificateName != alice.SubjectName() {
		t.Errorf("owner = %q", got.CertificateName)
	}
}

func TestDeploymentEndToEndCheque(t *testing.T) {
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Test"})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	alice, _ := dep.NewUser("alice")
	gsp, _ := dep.NewUser("gsp1")

	ac, err := dep.Dial(alice)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	gc, err := dep.Dial(gsp)
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()
	bc, err := dep.Dial(dep.Banker)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()

	aAcct, err := ac.CreateAccount("", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gc.CreateAccount("", ""); err != nil {
		t.Fatal(err)
	}
	if err := bc.AdminDeposit(aAcct.AccountID, gridbank.G(50)); err != nil {
		t.Fatal(err)
	}
	cheque, err := ac.RequestCheque(aAcct.AccountID, gridbank.G(20), gsp.SubjectName(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// GSP verifies independently, then redeems.
	if _, err := gridbank.VerifyCheque(cheque, dep.Trust, gsp.SubjectName(), time.Now()); err != nil {
		t.Fatal(err)
	}
	red, err := gc.RedeemCheque(cheque, &gridbank.ChequeClaim{
		Serial: cheque.Cheque.Serial, Amount: gridbank.G(15), RUR: []byte(`{}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if red.Paid != gridbank.G(15) || red.Released != gridbank.G(5) {
		t.Fatalf("redeem = %+v", red)
	}
}

func TestDeploymentValidation(t *testing.T) {
	if _, err := gridbank.NewDeployment(gridbank.DeploymentConfig{}); err == nil {
		t.Error("deployment without VO accepted")
	}
}

func TestDeploymentReadReplicas(t *testing.T) {
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Rep"})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.AddReadReplica("replica-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.AddReadReplica("replica-2"); err != nil {
		t.Fatal(err)
	}

	alice, err := dep.NewUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	ac, err := dep.Dial(alice)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	acct, err := ac.CreateAccount("VO-Rep", "")
	if err != nil {
		t.Fatal(err)
	}
	bc, err := dep.Dial(dep.Banker)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if err := bc.AdminDeposit(acct.AccountID, gridbank.G(75)); err != nil {
		t.Fatal(err)
	}
	if err := dep.SyncReplicas(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Routed reads see the replicated balance; mutations still work
	// (routed to the primary) through the same handle.
	routed, err := dep.DialRouted(alice, gridbank.RouteOptions{MaxStaleness: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer routed.Close()
	a, err := routed.AccountDetails(acct.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != gridbank.G(75) {
		t.Fatalf("routed balance = %v", a.AvailableBalance)
	}

	// Direct mutation on a replica redirects to the primary.
	rc, err := gridbank.Dial(dep.Replicas()[0].Addr(), alice, dep.Trust)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	_, err = rc.DirectTransfer(acct.AccountID, acct.AccountID, gridbank.G(1), "")
	if !gridbank.IsRemoteCode(err, gridbank.CodeReadOnly) {
		t.Fatalf("replica mutation = %v, want %s", err, gridbank.CodeReadOnly)
	}
	status, err := rc.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status.Role != gridbank.RoleReplica || status.PrimaryAddr != dep.Addr() {
		t.Fatalf("replica status = %+v", status)
	}
}
