module gridbank

go 1.24
