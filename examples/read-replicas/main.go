// Read replicas: one primary GridBank fans its committed ledger out to
// WAL-shipped read replicas; balance and statement queries spread across
// the replicas through the read-routing client while every payment still
// settles on the primary.
//
//	go run ./examples/read-replicas
package main

import (
	"fmt"
	"log"
	"time"

	"gridbank"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Stand up the VO and two read replicas. Each replica bootstraps
	// from a snapshot of the primary's store, then follows its commit
	// stream over mutually-authenticated TLS.
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Replicated"})
	if err != nil {
		return err
	}
	defer dep.Close()
	for _, name := range []string{"replica-1", "replica-2"} {
		r, err := dep.AddReadReplica(name)
		if err != nil {
			return err
		}
		fmt.Printf("%s serving reads on %s\n", name, r.Addr())
	}

	// Alice opens an account on the primary and is funded by the banker.
	alice, err := dep.NewUser("alice")
	if err != nil {
		return err
	}
	primaryCli, err := dep.Dial(alice)
	if err != nil {
		return err
	}
	defer primaryCli.Close()
	acct, err := primaryCli.CreateAccount("VO-Replicated", gridbank.GridDollar)
	if err != nil {
		return err
	}
	banker, err := dep.Dial(dep.Banker)
	if err != nil {
		return err
	}
	defer banker.Close()
	if err := banker.AdminDeposit(acct.AccountID, gridbank.G(500)); err != nil {
		return err
	}

	// Wait out replication lag, then read the balance through the
	// routing client: queries land on the replicas (max 2s staleness),
	// mutations go to the primary.
	if err := dep.SyncReplicas(5 * time.Second); err != nil {
		return err
	}
	routed, err := dep.DialRouted(alice, gridbank.RouteOptions{MaxStaleness: 2 * time.Second})
	if err != nil {
		return err
	}
	defer routed.Close()
	details, err := routed.AccountDetails(acct.AccountID)
	if err != nil {
		return err
	}
	fmt.Printf("balance via replicas: %s\n", details.AvailableBalance)

	// A mutation sent directly to a replica is refused with a redirect
	// naming the primary — the authoritative writer.
	replicaOnly, err := gridbank.Dial(dep.Replicas()[0].Addr(), alice, dep.Trust)
	if err != nil {
		return err
	}
	defer replicaOnly.Close()
	_, err = replicaOnly.DirectTransfer(acct.AccountID, acct.AccountID, gridbank.G(1), "")
	if gridbank.IsRemoteCode(err, gridbank.CodeReadOnly) {
		fmt.Printf("replica refused the transfer: %v\n", err)
	} else {
		return fmt.Errorf("expected read-only redirect, got %v", err)
	}

	// The routing client is a full client: the same handle settles a
	// payment (on the primary) and reads it back (from a replica).
	bob, err := dep.NewUser("bob")
	if err != nil {
		return err
	}
	bobCli, err := dep.Dial(bob)
	if err != nil {
		return err
	}
	defer bobCli.Close()
	bobAcct, err := bobCli.CreateAccount("VO-Replicated", gridbank.GridDollar)
	if err != nil {
		return err
	}
	if _, err := routed.DirectTransfer(acct.AccountID, bobAcct.AccountID, gridbank.G(125), ""); err != nil {
		return err
	}
	if err := dep.SyncReplicas(5 * time.Second); err != nil {
		return err
	}
	details, err = routed.AccountDetails(acct.AccountID)
	if err != nil {
		return err
	}
	status, err := routed.Primary().ReplicaStatus()
	if err != nil {
		return err
	}
	fmt.Printf("after paying bob 125 G$: %s (primary at seq %d)\n", details.AvailableBalance, status.HeadSeq)
	for i, r := range dep.Replicas() {
		applied, _, stale, err := r.Follower.Progress()
		if err != nil {
			return err
		}
		fmt.Printf("replica-%d applied seq %d, staleness %v\n", i+1, applied, stale.Round(time.Millisecond))
	}
	return nil
}
