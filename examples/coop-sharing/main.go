// Co-operative resource sharing (the paper's §4.1 / Figure 4): four
// organizations that both provide and consume compute barter through
// GridBank credits, with a community pricing authority keeping the
// market near equilibrium.
//
//	go run ./examples/coop-sharing
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gridbank"
	"gridbank/internal/accounts"
	"gridbank/internal/db"
	"gridbank/internal/economy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The community's shared ledger (in-process for the example; a real
	// deployment uses the TLS server + durable journal).
	mgr, err := accounts.NewManager(db.MustOpenMemory(), accounts.Config{})
	if err != nil {
		return err
	}

	// Four participants with heterogeneous hardware. Figure 4's point:
	// "although computations on some resources are faster because of
	// better hardware, the slower resources have to compensate by
	// running longer."
	defs := []struct {
		name   string
		rating int
	}{
		{"physics-dept", 1600},
		{"chem-lab", 800},
		{"bio-cluster", 600},
		{"math-group", 400},
	}
	parts := make([]*economy.Participant, len(defs))
	for i, d := range defs {
		acct, err := mgr.CreateAccount("CN="+d.name, "Campus Grid", gridbank.GridDollar)
		if err != nil {
			return err
		}
		parts[i] = &economy.Participant{
			Name:           d.name,
			Account:        acct.AccountID,
			RatingMIPS:     d.rating,
			RatePerCPUHour: gridbank.G(2),
		}
	}

	// Initial credit allocation (§4.1) plus the community pricing
	// authority regulating toward equilibrium.
	authority := &economy.PricingAuthority{Gain: 0.02}
	sim, err := economy.NewCoopSim(mgr, parts, gridbank.G(100), authority, 2026)
	if err != nil {
		return err
	}

	fmt.Println("bartering: each round every participant consumes ~2h of work from a peer")
	for _, checkpoint := range []int{50, 200, 500} {
		for r := 0; r < checkpoint; r++ {
			if err := sim.RunRound(7_200_000); err != nil {
				return err
			}
		}
		spread, err := sim.BalanceSpread()
		if err != nil {
			return err
		}
		fmt.Printf("after +%d rounds: max balance deviation %.2f G$\n", checkpoint, spread)
	}

	fmt.Println("\nGridBank account view (Figure 4):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "participant\tMIPS\tconsumed (G$)\tprovided (G$)\tbalance (G$)\tcurrent rate (G$/h)")
	for _, p := range parts {
		acct, err := mgr.Details(p.Account)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n",
			p.Name, p.RatingMIPS, p.Consumed, p.Provided, acct.AvailableBalance, p.RatePerCPUHour)
	}
	tw.Flush()

	total, err := mgr.TotalBalance()
	if err != nil {
		return err
	}
	fmt.Printf("\ntotal credits in circulation: %s G$ (conserved: %v)\n",
		total, total == gridbank.G(int64(100*len(parts))))
	return nil
}
