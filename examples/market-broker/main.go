// Competitive market with broker scheduling: providers advertise in the
// Grid Market Directory, negotiate rates with the broker (GRACE
// alternating offers), and a deadline/budget-constrained plan runs on the
// simulated Grid with every job settled by GridCheque.
//
//	go run ./examples/market-broker
package main

import (
	"fmt"
	"log"
	"time"

	"gridbank"
	"gridbank/internal/broker"
	"gridbank/internal/charging"
	"gridbank/internal/core"
	"gridbank/internal/gmd"
	"gridbank/internal/gridsim"
	"gridbank/internal/meter"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
	"gridbank/internal/trade"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type provider struct {
	id    *pki.Identity
	gts   *trade.Server
	grm   *meter.Meter
	gbcm  *charging.Module
	res   *gridsim.Resource
	agree *trade.Agreement
}

type redeemer struct {
	bank *core.Bank
	sub  string
}

func (r *redeemer) RedeemCheque(c *payment.SignedCheque, cl *payment.ChequeClaim) (*core.RedeemChequeResponse, error) {
	return r.bank.RedeemCheque(r.sub, &core.RedeemChequeRequest{Cheque: *c, Claim: *cl})
}
func (r *redeemer) RedeemChain(c *payment.SignedChain, cl *payment.ChainClaim) (*core.RedeemChainResponse, error) {
	return r.bank.RedeemChain(r.sub, &core.RedeemChainRequest{Chain: *c, Claim: *cl})
}

func run() error {
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Market"})
	if err != nil {
		return err
	}
	defer dep.Close()
	bank := dep.Bank
	banker, err := dep.Dial(dep.Banker)
	if err != nil {
		return err
	}
	defer banker.Close()

	sim := gridsim.New(time.Now())
	directory := gmd.New(nil)

	// Three providers: different speed, different asking price.
	defs := []struct {
		name     string
		nodes    int
		rating   int
		gPerCPUH int64
	}{
		{"budget-farm", 16, 400, 1},
		{"campus-hpc", 16, 800, 3},
		{"premium-cray", 16, 1600, 8},
	}
	providers := map[string]*provider{}
	for _, d := range defs {
		id, err := dep.NewUser(d.name)
		if err != nil {
			return err
		}
		cli, err := dep.Dial(id)
		if err != nil {
			return err
		}
		if _, err := cli.CreateAccount("VO-Market", ""); err != nil {
			return err
		}
		cli.Close()
		rates := map[rur.Item]gridbank.Rate{
			rur.ItemCPU:       gridbank.PerHour(d.gPerCPUH * 1_000_000),
			rur.ItemWallClock: gridbank.PerHour(50_000),
			rur.ItemMemory:    gridbank.PerMBHour(1_000),
			rur.ItemStorage:   gridbank.PerMBHour(100),
			rur.ItemNetwork:   gridbank.PerMB(10_000),
			rur.ItemSoftware:  gridbank.PerHour(d.gPerCPUH * 1_000_000),
		}
		gts, err := trade.NewServer(trade.ServerConfig{Identity: id, Model: trade.PostedPrice{Card: rates}})
		if err != nil {
			return err
		}
		grm, err := meter.New(id.SubjectName(), "cluster")
		if err != nil {
			return err
		}
		pool, err := charging.NewTemplatePool("grid", 8, nil)
		if err != nil {
			return err
		}
		gbcm, err := charging.NewModule(charging.ModuleConfig{
			Identity: id, Trust: dep.Trust, Pool: pool,
			Redeemer: &redeemer{bank: bank, sub: id.SubjectName()},
		})
		if err != nil {
			return err
		}
		res, err := sim.AddResource(gridsim.ResourceConfig{
			Provider: id.SubjectName(), Host: d.name + ".grid", Nodes: d.nodes, RatingMIPS: d.rating,
		})
		if err != nil {
			return err
		}
		if err := directory.Register(gmd.Advertisement{
			Provider: id.SubjectName(), Address: d.name + ".grid:9000",
			CPURating: d.rating, Nodes: d.nodes, Rates: rates,
		}); err != nil {
			return err
		}
		providers[id.SubjectName()] = &provider{id: id, gts: gts, grm: grm, gbcm: gbcm, res: res}
	}

	// The consumer: 60-job parameter sweep, 10-minute deadline, 50 G$
	// budget.
	alice, err := dep.NewUser("alice")
	if err != nil {
		return err
	}
	aliceCli, err := dep.Dial(alice)
	if err != nil {
		return err
	}
	defer aliceCli.Close()
	aliceAcct, err := aliceCli.CreateAccount("VO-Market", "")
	if err != nil {
		return err
	}
	if err := banker.AdminDeposit(aliceAcct.AccountID, gridbank.G(200)); err != nil {
		return err
	}

	// Discovery + negotiation: the broker haggles each provider down
	// from its posted price (GRACE alternating offers).
	ads := directory.Find(gmd.Query{})
	var candidates []broker.Candidate
	fmt.Println("negotiations:")
	for _, ad := range ads {
		p := providers[ad.Provider]
		agree, outcome, err := p.gts.Negotiate(alice.SubjectName(),
			trade.BuyerStrategy{OpenFraction: 0.5, MaxFraction: 0.9}, trade.NegotiationParams{})
		if err != nil {
			return err
		}
		p.agree = agree
		fmt.Printf("  %-40s settled at %.0f%% of posted after %d rounds\n",
			ad.Provider, outcome.FinalFraction*100, outcome.Rounds)
		candidates = append(candidates, broker.Candidate{
			Provider: ad.Provider, Nodes: ad.Nodes, RatingMIPS: ad.CPURating,
			Rates: &agree.Card, AgreementID: agree.ID,
		})
	}

	jobs := gridbank.BagWorkload(gridbank.BagOptions{
		Owner: alice.SubjectName(), Application: "monte-carlo",
		N: 60, MeanLengthMI: 96_000, MemoryMB: 256, InputMB: 8, OutputMB: 8,
		Seed: 99, IDPrefix: "mc",
	})
	plan, err := gridbank.ScheduleJobs(jobs, candidates, gridbank.QoS{
		Deadline: 10 * time.Minute, Budget: gridbank.G(50),
	}, gridbank.CostTime)
	if err != nil {
		return err
	}
	fmt.Printf("\nplan (%s): %d jobs, est. makespan %v, est. cost %s G$\n",
		plan.Strategy, len(plan.Assignments), plan.Makespan.Round(time.Second), plan.TotalCost)
	for prov, as := range plan.ByProvider() {
		fmt.Printf("  %-40s %2d jobs, est. %s G$\n", prov, len(as), plan.CostOf(prov))
	}

	// Execute: cheque per job, meter on completion, settle.
	var spent gridbank.Amount
	done := 0
	for _, a := range plan.Assignments {
		a := a
		p := providers[a.Provider]
		budget := a.EstCost.MustAdd(a.EstCost)
		cheque, err := aliceCli.RequestCheque(aliceAcct.AccountID, budget, a.Provider, time.Hour)
		if err != nil {
			return err
		}
		if _, err := p.gbcm.AdmitCheque(a.Job.ID, cheque); err != nil {
			return err
		}
		if err := p.res.Submit(a.Job, func(res gridsim.JobResult) {
			rec, err := p.grm.Convert(res)
			if err != nil {
				log.Printf("meter: %v", err)
				return
			}
			result, err := p.gbcm.SettleCheque(res.Job.ID, rec, &p.agree.Card)
			if err != nil {
				log.Printf("settle: %v", err)
				return
			}
			paid, _ := gridbank.ParseAmount(result.Paid)
			spent = spent.MustAdd(paid)
			done++
		}); err != nil {
			return err
		}
	}
	sim.Run()

	fmt.Printf("\nexecuted %d/%d jobs; actual spend %s G$ (estimate was %s G$)\n",
		done, len(plan.Assignments), spent, plan.TotalCost)
	final, err := aliceCli.AccountDetails(aliceAcct.AccountID)
	if err != nil {
		return err
	}
	fmt.Printf("alice's balance: %s G$ (locked %s)\n", final.AvailableBalance, final.LockedBalance)
	return nil
}
