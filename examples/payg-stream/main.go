// Pay-as-you-go streaming (§3.1's second policy): a consumer pays a
// provider per delivered result with GridHash micro-payments — one hash
// preimage per result, no per-result bank round trip, provider redeems in
// batches.
//
//	go run ./examples/payg-stream
package main

import (
	"fmt"
	"log"
	"time"

	"gridbank"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Stream"})
	if err != nil {
		return err
	}
	defer dep.Close()

	alice, err := dep.NewUser("alice")
	if err != nil {
		return err
	}
	gsp, err := dep.NewUser("render-farm")
	if err != nil {
		return err
	}
	aliceCli, err := dep.Dial(alice)
	if err != nil {
		return err
	}
	defer aliceCli.Close()
	gspCli, err := dep.Dial(gsp)
	if err != nil {
		return err
	}
	defer gspCli.Close()
	banker, err := dep.Dial(dep.Banker)
	if err != nil {
		return err
	}
	defer banker.Close()

	aAcct, err := aliceCli.CreateAccount("", "")
	if err != nil {
		return err
	}
	if _, err := gspCli.CreateAccount("", ""); err != nil {
		return err
	}
	if err := banker.AdminDeposit(aAcct.AccountID, gridbank.G(50)); err != nil {
		return err
	}

	// Alice buys a 200-word chain at 0.1 G$ per word: up to 20 G$ of
	// streaming payments, all locked up front so the provider bears no
	// credit risk ("eliminate unnecessary trust relationships", §3.1).
	perFrame := gridbank.MustParseAmount("0.1")
	chain, signedChain, err := aliceCli.RequestChain(aAcct.AccountID, gsp.SubjectName(), 200, perFrame, time.Hour)
	if err != nil {
		return err
	}
	fmt.Printf("chain %s…: 200 frames × %s G$ locked\n", chain.Commitment.Serial[:8], perFrame)

	// The provider verifies the bank's commitment signature once.
	if _, _, err := gridbank.VerifyChain(signedChain, dep.Trust, gsp.SubjectName(), time.Now()); err != nil {
		return fmt.Errorf("chain rejected: %w", err)
	}

	// Streaming: the farm renders frames; alice releases one word per
	// frame; the farm verifies each word locally (one SHA-256 chain
	// walk, no bank involved) and redeems every 50 frames.
	rendered := 0
	var lastRedeemed int
	for frame := 1; frame <= 130; frame++ {
		word, err := chain.Word(frame)
		if err != nil {
			return err
		}
		// Provider-side verification of the micro-payment.
		if err := gridbank.VerifyWord(&chain.Commitment, frame, word); err != nil {
			return fmt.Errorf("frame %d payment rejected: %w", frame, err)
		}
		rendered++
		if frame%50 == 0 {
			resp, err := gspCli.RedeemChain(signedChain, &gridbank.ChainClaim{
				Serial: chain.Commitment.Serial, Index: frame, Word: word,
			})
			if err != nil {
				return err
			}
			fmt.Printf("batch redemption at frame %d: +%s G$ (chain position %d)\n",
				frame, resp.Paid, resp.IndexNow)
			lastRedeemed = frame
		}
	}

	// The job ends early at frame 130; final redemption for the tail.
	word, err := chain.Word(rendered)
	if err != nil {
		return err
	}
	resp, err := gspCli.RedeemChain(signedChain, &gridbank.ChainClaim{
		Serial: chain.Commitment.Serial, Index: rendered, Word: word,
	})
	if err != nil {
		return err
	}
	fmt.Printf("final redemption frames %d–%d: +%s G$\n", lastRedeemed+1, rendered, resp.Paid)

	// Alice reclaims the 70 unspent frames after expiry. (The example
	// bank runs on the wall clock, so we demonstrate the refusal instead
	// of waiting an hour.)
	if _, err := aliceCli.ReleaseChain(chain.Commitment.Serial); err != nil {
		fmt.Printf("early release refused, as §3.4 requires: %v\n", err)
	}

	a, err := aliceCli.AccountDetails(aAcct.AccountID)
	if err != nil {
		return err
	}
	fmt.Printf("alice: %s G$ available, %s G$ still locked for the remaining frames\n",
		a.AvailableBalance, a.LockedBalance)
	return nil
}
