// Multi-VO settlement (§6): two virtual organizations each run their own
// GridBank branch; a consumer in VO-A pays a provider in VO-B by
// GridCheque, cleared through correspondent (vostro) accounts, with
// end-of-day netting between the branches.
//
//	go run ./examples/multi-vo
package main

import (
	"fmt"
	"log"
	"time"

	"gridbank/internal/branch"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One federation CA both VOs trust (in practice each VO's CA would
	// be cross-trusted; one CA keeps the example short).
	ca, err := pki.NewCA("Grid Federation CA", "Fed", 24*time.Hour)
	if err != nil {
		return err
	}
	trust := pki.NewTrustStore(ca.Certificate())

	newBranchBank := func(name, branchNum string) (*core.Bank, error) {
		id, err := ca.Issue(pki.IssueOptions{CommonName: name, Organization: "Fed"})
		if err != nil {
			return nil, err
		}
		return core.NewBank(db.MustOpenMemory(), core.BankConfig{
			Identity: id, Trust: trust, Branch: branchNum, Admins: []string{"CN=root"},
		})
	}
	bankA, err := newBranchBank("gridbank-vo-a", "0001")
	if err != nil {
		return err
	}
	bankB, err := newBranchBank("gridbank-vo-b", "0002")
	if err != nil {
		return err
	}

	// Join the branches: vostro accounts open automatically in both
	// directions.
	net := branch.NewNetwork()
	if _, err := net.AddBranch(bankA); err != nil {
		return err
	}
	if _, err := net.AddBranch(bankB); err != nil {
		return err
	}
	fmt.Println("branches 0001 (VO-A) and 0002 (VO-B) joined with mutual vostro accounts")

	// Alice banks at VO-A; the render farm banks at VO-B.
	alice, err := ca.Issue(pki.IssueOptions{CommonName: "alice", Organization: "VO-A"})
	if err != nil {
		return err
	}
	farm, err := ca.Issue(pki.IssueOptions{CommonName: "render-farm", Organization: "VO-B"})
	if err != nil {
		return err
	}
	aAcct, err := bankA.CreateAccount(alice.SubjectName(), &core.CreateAccountRequest{})
	if err != nil {
		return err
	}
	fAcct, err := bankB.CreateAccount(farm.SubjectName(), &core.CreateAccountRequest{})
	if err != nil {
		return err
	}
	if _, err := bankA.AdminDeposit("CN=root", &core.AdminAmountRequest{
		AccountID: aAcct.Account.AccountID, Amount: currency.FromG(200),
	}); err != nil {
		return err
	}
	fmt.Printf("alice: %s at branch 0001; render-farm: %s at branch 0002\n",
		aAcct.Account.AccountID, fAcct.Account.AccountID)

	// Alice's cheque is drawn on VO-A's bank but payable to a VO-B
	// identity — the account ID's branch number routes the settlement.
	cheque, err := bankA.RequestCheque(alice.SubjectName(), &core.RequestChequeRequest{
		AccountID: aAcct.Account.AccountID, Amount: currency.FromG(60), PayeeCert: farm.SubjectName(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("cheque for 60 G$ drawn on branch %s, payable to %s\n",
		cheque.Cheque.Cheque.DrawerAccountID.Branch(), cheque.Cheque.Cheque.PayeeCert)

	// The farm presents it at its *home* branch (0002); the network
	// forwards to 0001, which pays from alice's locked funds into 0002's
	// vostro; 0002 credits the farm.
	red, err := net.RedeemForeignCheque("0002", farm.SubjectName(), &cheque.Cheque,
		&payment.ChequeClaim{Serial: cheque.Cheque.Cheque.Serial, Amount: currency.FromG(45),
			RUR: []byte(`{"job":"render","cpu_hours":22.5}`)})
	if err != nil {
		return err
	}
	fmt.Printf("cross-branch redemption: paid %s G$ (issuing branch %s → payee branch %s), 15 G$ unlocked back to alice\n",
		red.Paid, red.IssuingBranch, red.PayeeBranch)

	f, _ := bankB.Manager().Details(fAcct.Account.AccountID)
	a, _ := bankA.Manager().Details(aAcct.Account.AccountID)
	fmt.Printf("balances: alice %s G$ at 0001, farm %s G$ at 0002\n",
		a.AvailableBalance, f.AvailableBalance)

	// End of day: the branches net their mutual obligations.
	st, err := net.SettlePair("0001", "0002")
	if err != nil {
		return err
	}
	fmt.Printf("settlement: gross 0001→0002 %s G$, 0002→0001 %s G$, netted %s G$, residual %s G$ paid by %s\n",
		st.GrossAtoB, st.GrossBtoA, st.Netted, st.NetAmount, st.NetPayer)
	return nil
}
