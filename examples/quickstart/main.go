// Quickstart: stand up a single-VO GridBank, open accounts, and settle a
// job with a GridCheque — the minimal end-to-end accounting flow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gridbank"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One call stands up the VO: CA, bank, TLS server, banker admin.
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Quick"})
	if err != nil {
		return err
	}
	defer dep.Close()
	fmt.Printf("GridBank for VO-Quick listening on %s\n", dep.Addr())

	// Enrol a consumer and a provider; both open accounts over mutual
	// TLS (the server extracts their certificate names — §5.2).
	alice, err := dep.NewUser("alice")
	if err != nil {
		return err
	}
	gsp, err := dep.NewUser("gsp1")
	if err != nil {
		return err
	}
	aliceCli, err := dep.Dial(alice)
	if err != nil {
		return err
	}
	defer aliceCli.Close()
	gspCli, err := dep.Dial(gsp)
	if err != nil {
		return err
	}
	defer gspCli.Close()

	aliceAcct, err := aliceCli.CreateAccount("VO-Quick", gridbank.GridDollar)
	if err != nil {
		return err
	}
	gspAcct, err := gspCli.CreateAccount("VO-Quick", gridbank.GridDollar)
	if err != nil {
		return err
	}
	fmt.Printf("accounts: alice=%s gsp=%s\n", aliceAcct.AccountID, gspAcct.AccountID)

	// The banker funds alice (the paper's admin deposit, §5.2.1).
	banker, err := dep.Dial(dep.Banker)
	if err != nil {
		return err
	}
	defer banker.Close()
	if err := banker.AdminDeposit(aliceAcct.AccountID, gridbank.G(100)); err != nil {
		return err
	}

	// Pay-after-use: alice buys a GridCheque made out to the GSP; the
	// bank locks the budget (§3.4 payment guarantee).
	cheque, err := aliceCli.RequestCheque(aliceAcct.AccountID, gridbank.G(25), gsp.SubjectName(), time.Hour)
	if err != nil {
		return err
	}
	fmt.Printf("cheque %s for %s G$, payable to %s\n",
		cheque.Cheque.Serial[:8], cheque.Cheque.Limit, cheque.Cheque.PayeeCert)

	// The GSP verifies the bank's signature before accepting the job.
	if _, err := gridbank.VerifyCheque(cheque, dep.Trust, gsp.SubjectName(), time.Now()); err != nil {
		return fmt.Errorf("cheque rejected: %w", err)
	}

	// ... job runs, the meter produces an RUR, the GBCM prices it at
	// 18.4 G$ ... then the GSP redeems with the usage evidence.
	redemption, err := gspCli.RedeemCheque(cheque, &gridbank.ChequeClaim{
		Serial: cheque.Cheque.Serial,
		Amount: gridbank.MustParseAmount("18.4"),
		RUR:    []byte(`{"job":"quickstart","cpu_seconds":3600}`),
	})
	if err != nil {
		return err
	}
	fmt.Printf("redeemed: paid %s G$, unspent reservation %s G$ returned to alice\n",
		redemption.Paid, redemption.Released)

	// Balances after settlement.
	a, err := aliceCli.AccountDetails(aliceAcct.AccountID)
	if err != nil {
		return err
	}
	g, err := gspCli.AccountDetails(gspAcct.AccountID)
	if err != nil {
		return err
	}
	fmt.Printf("final: alice %s G$, gsp %s G$\n", a.AvailableBalance, g.AvailableBalance)

	// And the statement shows the §5.1 records.
	st, err := aliceCli.AccountStatement(aliceAcct.AccountID, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		return err
	}
	fmt.Printf("alice's statement: %d transactions, %d transfers\n", len(st.Transactions), len(st.Transfers))
	return nil
}
