package gridbank_test

import (
	"fmt"
	"testing"
	"time"

	"gridbank"
)

// usageRUR builds a record worth cpuSec CPU-seconds.
func usageRUR(t *testing.T, consumer, provider, jobID string, cpuSec int64) []byte {
	t.Helper()
	now := time.Now()
	var rec gridbank.UsageRecord
	rec.User.CertificateName = consumer
	rec.Job.JobID = jobID
	rec.Job.Application = "e2e"
	rec.Job.Start = now.Add(-time.Hour)
	rec.Job.End = now
	rec.Resource.Host = "h"
	rec.Resource.CertificateName = provider
	rec.Resource.LocalJobID = "pid"
	rec.SetQuantity(gridbank.ItemCPU, cpuSec)
	raw, err := gridbank.EncodeUsageRecord(&rec, gridbank.UsageFormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func usageRates(provider string) *gridbank.RateCard {
	rates := map[gridbank.UsageItem]gridbank.Rate{
		gridbank.ItemCPU: gridbank.PerHour(1_000_000), // 1 G$/CPU-hour
	}
	for _, item := range gridbank.AllUsageItems {
		if _, ok := rates[item]; !ok {
			rates[item] = gridbank.ZeroRate
		}
	}
	return &gridbank.RateCard{Provider: provider, Currency: gridbank.GridDollar, Rates: rates}
}

// TestUsagePipelineEndToEnd drives the full public-API path: a sharded
// deployment with the usage pipeline enabled, a GSP streaming priced
// RURs over TLS through a routed client, an admin draining the queue,
// and conservation checked on the sharded ledger.
func TestUsagePipelineEndToEnd(t *testing.T) {
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Usage"})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if err := dep.EnableSharding(2); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.EnableUsage(gridbank.UsageOptions{Workers: 2, BatchSize: 32}); err != nil {
		t.Fatal(err)
	}

	alice, err := dep.NewUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	gsp, err := dep.NewUser("gsp")
	if err != nil {
		t.Fatal(err)
	}
	aliceC, err := dep.Dial(alice)
	if err != nil {
		t.Fatal(err)
	}
	defer aliceC.Close()
	aliceAcct, err := aliceC.CreateAccount("VO-Usage", gridbank.GridDollar)
	if err != nil {
		t.Fatal(err)
	}
	// The GSP submits through a routed client: usage ops must pin to
	// the primary transparently.
	gspC, err := dep.DialRouted(gsp, gridbank.RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer gspC.Close()
	gspAcct, err := gspC.CreateAccount("VO-Usage", gridbank.GridDollar)
	if err != nil {
		t.Fatal(err)
	}
	adminC, err := dep.Dial(dep.Banker)
	if err != nil {
		t.Fatal(err)
	}
	defer adminC.Close()
	if err := adminC.AdminDeposit(aliceAcct.AccountID, gridbank.G(500)); err != nil {
		t.Fatal(err)
	}
	before, err := dep.Sharded().TotalBalance()
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 50
	subs := make([]gridbank.UsageSubmission, 0, jobs)
	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("e2e-job-%03d", i)
		subs = append(subs, gridbank.UsageSubmission{
			ID:        id,
			Drawer:    aliceAcct.AccountID,
			Recipient: gspAcct.AccountID,
			RUR:       usageRUR(t, alice.SubjectName(), gsp.SubjectName(), id, 3600),
			Rates:     usageRates(gsp.SubjectName()),
		})
	}
	res, err := gspC.UsageSubmit(subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != jobs {
		t.Fatalf("submit = %+v", res)
	}
	st, err := adminC.UsageDrain(20 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st.Settled != jobs || st.Pending != 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}

	got, err := gspC.AccountDetails(gspAcct.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if want := gridbank.G(jobs); got.AvailableBalance != want {
		t.Errorf("gsp balance = %s, want %s", got.AvailableBalance, want)
	}
	after, err := dep.Sharded().TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("conservation violated: %s -> %s", before, after)
	}
	// Replayed batch: settled markers dedupe every charge.
	if res, err = gspC.UsageSubmit(subs); err != nil || res.Accepted != 0 || res.Duplicates != jobs {
		t.Fatalf("replay = %+v, %v", res, err)
	}
	// Status over the wire reflects the drained pipeline.
	if st, err = gspC.UsageStatus(); err != nil || st.Pending != 0 {
		t.Fatalf("status = %+v, %v", st, err)
	}
}
