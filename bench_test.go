package gridbank_test

// One benchmark per experiment row of DESIGN.md §4, plus micro-benchmarks
// of the hot paths (ledger transfer, cheque issue/redeem, hash-chain
// verification, RUR pricing). Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks measure a whole scenario per iteration, so
// their ns/op is "time to reproduce the figure", not a micro-latency.

import (
	"testing"
	"time"

	"gridbank"
	"gridbank/internal/experiments"
)

// --- Experiment benchmarks (E1..E11) -----------------------------------------

func BenchmarkFig1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig1(experiments.Fig1Config{Consumers: 2, JobsPerConsumer: 4, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if r.JobsCompleted == 0 {
			b.Fatal("no jobs completed")
		}
	}
}

func BenchmarkFig2MeterPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Protocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(experiments.Fig3Config{Payments: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Coop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(experiments.Fig4Config{Rounds: 50, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTemplatePool(b *testing.B) {
	// E5: admission+settlement cycle over a template pool, per consumer.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScalability(experiments.ScalabilityConfig{
			ConsumerCounts: []int{50}, PoolSize: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuarantee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGuarantee(experiments.GuaranteeConfig{Cheques: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaymentSchemes(b *testing.B) {
	// E7: the three charging policies end to end.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPolicies(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriceEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEstimate(experiments.EstimateConfig{HistorySize: 500, Queries: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquilibrium(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEquilibrium(experiments.EquilibriumConfig{Participants: 8, Rounds: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchSettlement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBranches(experiments.BranchesConfig{ChequesPerPair: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommodityPricing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPricing(experiments.PricingConfig{PhaseLen: 10, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrokerDBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDBC(experiments.DBCConfig{Jobs: 60, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of hot paths -------------------------------------------

// benchWorld pre-builds an in-process deployment for micro-benchmarks.
type benchWorld struct {
	dep    *gridbank.Deployment
	client *gridbank.Client
	gspCli *gridbank.Client
	banker *gridbank.Client
	acctA  gridbank.AccountID
	acctB  gridbank.AccountID
	gspSub string
}

func newBenchWorld(b *testing.B) *benchWorld {
	b.Helper()
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Bench"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dep.Close() })
	alice, err := dep.NewUser("alice")
	if err != nil {
		b.Fatal(err)
	}
	gsp, err := dep.NewUser("gsp")
	if err != nil {
		b.Fatal(err)
	}
	client, err := dep.Dial(alice)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	gspCli, err := dep.Dial(gsp)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gspCli.Close() })
	banker, err := dep.Dial(dep.Banker)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { banker.Close() })
	a, err := client.CreateAccount("", "")
	if err != nil {
		b.Fatal(err)
	}
	g, err := gspCli.CreateAccount("", "")
	if err != nil {
		b.Fatal(err)
	}
	if err := banker.AdminDeposit(a.AccountID, gridbank.G(1_000_000_000)); err != nil {
		b.Fatal(err)
	}
	return &benchWorld{
		dep: dep, client: client, gspCli: gspCli, banker: banker,
		acctA: a.AccountID, acctB: g.AccountID, gspSub: gsp.SubjectName(),
	}
}

func BenchmarkWireDirectTransfer(b *testing.B) {
	w := newBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.client.DirectTransfer(w.acctA, w.acctB, gridbank.Micro(1000), ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireChequeIssueRedeem(b *testing.B) {
	w := newBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cheque, err := w.client.RequestCheque(w.acctA, gridbank.Micro(1000), w.gspSub, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.gspCli.RedeemCheque(cheque, &gridbank.ChequeClaim{
			Serial: cheque.Cheque.Serial, Amount: gridbank.Micro(1000),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireBalanceQuery(b *testing.B) {
	w := newBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.client.AccountDetails(w.acctA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLedgerTransferInProcess(b *testing.B) {
	w := newBenchWorld(b)
	mgr := w.dep.Bank.Manager()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Transfer(w.acctA, w.acctB, gridbank.Micro(1), gridbank.TransferOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashChainVerifyWord(b *testing.B) {
	w := newBenchWorld(b)
	chain, _, err := w.client.RequestChain(w.acctA, w.gspSub, 1000, gridbank.Micro(1000), time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	word, err := chain.Word(500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gridbank.VerifyWord(&chain.Commitment, 500, word); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRURPricing(b *testing.B) {
	// Price a full six-line record against a rate card.
	rec := &gridbank.UsageRecord{}
	rec.User.CertificateName = "CN=alice"
	rec.Resource.CertificateName = "CN=gsp"
	rec.SetQuantity(gridbank.ItemCPU, 3600)
	rec.SetQuantity(gridbank.ItemWallClock, 3600)
	rec.SetQuantity(gridbank.ItemMemory, 512*3600)
	rec.SetQuantity(gridbank.ItemStorage, 100*3600)
	rec.SetQuantity(gridbank.ItemNetwork, 250)
	rec.SetQuantity(gridbank.ItemSoftware, 30)
	card := &gridbank.RateCard{
		Provider: "CN=gsp",
		Currency: gridbank.GridDollar,
		Rates: map[gridbank.UsageItem]gridbank.Rate{
			gridbank.ItemCPU:       gridbank.PerHour(2_000_000),
			gridbank.ItemWallClock: gridbank.PerHour(100_000),
			gridbank.ItemMemory:    gridbank.PerMBHour(1_000),
			gridbank.ItemStorage:   gridbank.PerMBHour(100),
			gridbank.ItemNetwork:   gridbank.PerMB(10_000),
			gridbank.ItemSoftware:  gridbank.PerHour(10_000_000),
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gridbank.PriceUsage(rec, card); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrokerSchedule(b *testing.B) {
	jobs := gridbank.BagWorkload(gridbank.BagOptions{Owner: "CN=a", N: 100, MeanLengthMI: 50_000, Seed: 1})
	rates := &gridbank.RateCard{
		Provider: "CN=p",
		Currency: gridbank.GridDollar,
		Rates: map[gridbank.UsageItem]gridbank.Rate{
			gridbank.ItemCPU:       gridbank.PerHour(2_000_000),
			gridbank.ItemWallClock: gridbank.PerHour(0),
			gridbank.ItemMemory:    gridbank.PerMBHour(0),
			gridbank.ItemStorage:   gridbank.PerMBHour(0),
			gridbank.ItemNetwork:   gridbank.PerMB(0),
			gridbank.ItemSoftware:  gridbank.PerHour(2_000_000),
		},
	}
	cands := []gridbank.Candidate{
		{Provider: "CN=p", Nodes: 16, RatingMIPS: 800, Rates: rates},
		{Provider: "CN=q", Nodes: 16, RatingMIPS: 1600, Rates: rates},
	}
	qos := gridbank.QoS{Deadline: time.Hour, Budget: gridbank.G(100000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gridbank.ScheduleJobs(jobs, cands, qos, gridbank.CostTime); err != nil {
			b.Fatal(err)
		}
	}
}
