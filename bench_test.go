package gridbank_test

// One benchmark per experiment row of DESIGN.md §4, plus micro-benchmarks
// of the hot paths (ledger transfer, cheque issue/redeem, hash-chain
// verification, RUR pricing). Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks measure a whole scenario per iteration, so
// their ns/op is "time to reproduce the figure", not a micro-latency.

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"gridbank"
	"gridbank/internal/core"
	"gridbank/internal/db"
	"gridbank/internal/experiments"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// --- Experiment benchmarks (E1..E11) -----------------------------------------

func BenchmarkFig1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig1(experiments.Fig1Config{Consumers: 2, JobsPerConsumer: 4, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if r.JobsCompleted == 0 {
			b.Fatal("no jobs completed")
		}
	}
}

func BenchmarkFig2MeterPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Protocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(experiments.Fig3Config{Payments: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Coop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(experiments.Fig4Config{Rounds: 50, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTemplatePool(b *testing.B) {
	// E5: admission+settlement cycle over a template pool, per consumer.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScalability(experiments.ScalabilityConfig{
			ConsumerCounts: []int{50}, PoolSize: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuarantee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGuarantee(experiments.GuaranteeConfig{Cheques: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaymentSchemes(b *testing.B) {
	// E7: the three charging policies end to end.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPolicies(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriceEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEstimate(experiments.EstimateConfig{HistorySize: 500, Queries: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquilibrium(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEquilibrium(experiments.EquilibriumConfig{Participants: 8, Rounds: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchSettlement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBranches(experiments.BranchesConfig{ChequesPerPair: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommodityPricing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPricing(experiments.PricingConfig{PhaseLen: 10, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrokerDBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDBC(experiments.DBCConfig{Jobs: 60, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentLoad(b *testing.B) {
	// One full concurrency-vs-durability sweep per iteration.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunConcurrentLoad(experiments.ConcurrentLoadConfig{
			ConsumerCounts:       []int{8},
			TransfersPerConsumer: 25,
			Dir:                  b.TempDir(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent hot-path benchmarks -------------------------------------------

// benchParallelism oversubscribes RunParallel workers so journal group
// commit has real fan-in: GridBank's load is many concurrent consumers,
// not one per core.
const benchParallelism = 8

// parallelBankWorld builds an in-process bank over a fsync-per-commit
// file journal — the durable GridBank server configuration — with n
// disjoint (drawer, payee) actor pairs for RunParallel benchmarks.
func parallelBankWorld(b *testing.B, n int) (*core.Bank, []parallelPair) {
	b.Helper()
	ca, err := pki.NewCA("Bench CA", "VO-Bench", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-Bench", IsServer: true})
	if err != nil {
		b.Fatal(err)
	}
	j, err := db.OpenFileJournal(filepath.Join(b.TempDir(), "wal"), true)
	if err != nil {
		b.Fatal(err)
	}
	store, err := db.Open(j)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	const admin = "CN=bench-admin"
	bank, err := core.NewBank(store, core.BankConfig{
		Identity: bankID, Trust: pki.NewTrustStore(ca.Certificate()), Admins: []string{admin},
	})
	if err != nil {
		b.Fatal(err)
	}
	pairs := make([]parallelPair, n)
	for i := range pairs {
		drawerID, err := ca.Issue(pki.IssueOptions{CommonName: fmt.Sprintf("drawer%d", i), Organization: "VO-Bench"})
		if err != nil {
			b.Fatal(err)
		}
		payeeID, err := ca.Issue(pki.IssueOptions{CommonName: fmt.Sprintf("payee%d", i), Organization: "VO-Bench"})
		if err != nil {
			b.Fatal(err)
		}
		dResp, err := bank.CreateAccount(drawerID.SubjectName(), &core.CreateAccountRequest{})
		if err != nil {
			b.Fatal(err)
		}
		pResp, err := bank.CreateAccount(payeeID.SubjectName(), &core.CreateAccountRequest{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bank.AdminDeposit(admin, &core.AdminAmountRequest{
			AccountID: dResp.Account.AccountID, Amount: gridbank.G(1_000_000),
		}); err != nil {
			b.Fatal(err)
		}
		pairs[i] = parallelPair{
			drawer:     drawerID.SubjectName(),
			payee:      payeeID.SubjectName(),
			drawerAcct: dResp.Account.AccountID,
			payeeAcct:  pResp.Account.AccountID,
		}
	}
	return bank, pairs
}

type parallelPair struct {
	drawer, payee         string
	drawerAcct, payeeAcct gridbank.AccountID
}

// BenchmarkParallelDirectTransfer drives concurrent DirectTransfer calls
// between disjoint account pairs through the bank core, each commit
// durable (fsync) before it is acknowledged.
func BenchmarkParallelDirectTransfer(b *testing.B) {
	bank, pairs := parallelBankWorld(b, 32)
	var next atomic.Uint64
	b.SetParallelism(benchParallelism)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := pairs[int(next.Add(1)-1)%len(pairs)]
		for pb.Next() {
			_, err := bank.DirectTransfer(p.drawer, &core.DirectTransferRequest{
				FromAccountID: p.drawerAcct, ToAccountID: p.payeeAcct, Amount: gridbank.Micro(1),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelChequeIssueRedeem measures the full cheque
// issue+redeem cycle with concurrent disjoint drawer/payee pairs — the
// §3.4 guarantee path under load, durable per commit.
func BenchmarkParallelChequeIssueRedeem(b *testing.B) {
	bank, pairs := parallelBankWorld(b, 32)
	var next atomic.Uint64
	b.SetParallelism(benchParallelism)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := pairs[int(next.Add(1)-1)%len(pairs)]
		for pb.Next() {
			cheque, err := bank.RequestCheque(p.drawer, &core.RequestChequeRequest{
				AccountID: p.drawerAcct, Amount: gridbank.Micro(1000), PayeeCert: p.payee, TTL: time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			_, err = bank.RedeemCheque(p.payee, &core.RedeemChequeRequest{
				Cheque: cheque.Cheque,
				Claim:  payment.ChequeClaim{Serial: cheque.Cheque.Cheque.Serial, Amount: gridbank.Micro(1000)},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Micro-benchmarks of hot paths -------------------------------------------

// benchWorld pre-builds an in-process deployment for micro-benchmarks.
type benchWorld struct {
	dep    *gridbank.Deployment
	client *gridbank.Client
	gspCli *gridbank.Client
	banker *gridbank.Client
	acctA  gridbank.AccountID
	acctB  gridbank.AccountID
	gspSub string
}

func newBenchWorld(b *testing.B) *benchWorld {
	b.Helper()
	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Bench"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dep.Close() })
	alice, err := dep.NewUser("alice")
	if err != nil {
		b.Fatal(err)
	}
	gsp, err := dep.NewUser("gsp")
	if err != nil {
		b.Fatal(err)
	}
	client, err := dep.Dial(alice)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	gspCli, err := dep.Dial(gsp)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gspCli.Close() })
	banker, err := dep.Dial(dep.Banker)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { banker.Close() })
	a, err := client.CreateAccount("", "")
	if err != nil {
		b.Fatal(err)
	}
	g, err := gspCli.CreateAccount("", "")
	if err != nil {
		b.Fatal(err)
	}
	if err := banker.AdminDeposit(a.AccountID, gridbank.G(1_000_000_000)); err != nil {
		b.Fatal(err)
	}
	return &benchWorld{
		dep: dep, client: client, gspCli: gspCli, banker: banker,
		acctA: a.AccountID, acctB: g.AccountID, gspSub: gsp.SubjectName(),
	}
}

func BenchmarkWireDirectTransfer(b *testing.B) {
	w := newBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.client.DirectTransfer(w.acctA, w.acctB, gridbank.Micro(1000), ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireChequeIssueRedeem(b *testing.B) {
	w := newBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cheque, err := w.client.RequestCheque(w.acctA, gridbank.Micro(1000), w.gspSub, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.gspCli.RedeemCheque(cheque, &gridbank.ChequeClaim{
			Serial: cheque.Cheque.Serial, Amount: gridbank.Micro(1000),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireBalanceQuery(b *testing.B) {
	w := newBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.client.AccountDetails(w.acctA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLedgerTransferInProcess(b *testing.B) {
	w := newBenchWorld(b)
	mgr := w.dep.Bank.Manager()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Transfer(w.acctA, w.acctB, gridbank.Micro(1), gridbank.TransferOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashChainVerifyWord(b *testing.B) {
	w := newBenchWorld(b)
	chain, _, err := w.client.RequestChain(w.acctA, w.gspSub, 1000, gridbank.Micro(1000), time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	word, err := chain.Word(500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gridbank.VerifyWord(&chain.Commitment, 500, word); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRURPricing(b *testing.B) {
	// Price a full six-line record against a rate card.
	rec := &gridbank.UsageRecord{}
	rec.User.CertificateName = "CN=alice"
	rec.Resource.CertificateName = "CN=gsp"
	rec.SetQuantity(gridbank.ItemCPU, 3600)
	rec.SetQuantity(gridbank.ItemWallClock, 3600)
	rec.SetQuantity(gridbank.ItemMemory, 512*3600)
	rec.SetQuantity(gridbank.ItemStorage, 100*3600)
	rec.SetQuantity(gridbank.ItemNetwork, 250)
	rec.SetQuantity(gridbank.ItemSoftware, 30)
	card := &gridbank.RateCard{
		Provider: "CN=gsp",
		Currency: gridbank.GridDollar,
		Rates: map[gridbank.UsageItem]gridbank.Rate{
			gridbank.ItemCPU:       gridbank.PerHour(2_000_000),
			gridbank.ItemWallClock: gridbank.PerHour(100_000),
			gridbank.ItemMemory:    gridbank.PerMBHour(1_000),
			gridbank.ItemStorage:   gridbank.PerMBHour(100),
			gridbank.ItemNetwork:   gridbank.PerMB(10_000),
			gridbank.ItemSoftware:  gridbank.PerHour(10_000_000),
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gridbank.PriceUsage(rec, card); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrokerSchedule(b *testing.B) {
	jobs := gridbank.BagWorkload(gridbank.BagOptions{Owner: "CN=a", N: 100, MeanLengthMI: 50_000, Seed: 1})
	rates := &gridbank.RateCard{
		Provider: "CN=p",
		Currency: gridbank.GridDollar,
		Rates: map[gridbank.UsageItem]gridbank.Rate{
			gridbank.ItemCPU:       gridbank.PerHour(2_000_000),
			gridbank.ItemWallClock: gridbank.PerHour(0),
			gridbank.ItemMemory:    gridbank.PerMBHour(0),
			gridbank.ItemStorage:   gridbank.PerMBHour(0),
			gridbank.ItemNetwork:   gridbank.PerMB(0),
			gridbank.ItemSoftware:  gridbank.PerHour(2_000_000),
		},
	}
	cands := []gridbank.Candidate{
		{Provider: "CN=p", Nodes: 16, RatingMIPS: 800, Rates: rates},
		{Provider: "CN=q", Nodes: 16, RatingMIPS: 1600, Rates: rates},
	}
	qos := gridbank.QoS{Deadline: time.Hour, Budget: gridbank.G(100000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gridbank.ScheduleJobs(jobs, cands, qos, gridbank.CostTime); err != nil {
			b.Fatal(err)
		}
	}
}
