package core

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/netsim"
	"gridbank/internal/pki"
	"gridbank/internal/usage"
)

// slowUsage is a UsageEngine stub whose Submit blocks for delay before
// accepting — it makes the server answer *late*, after the caller has
// already abandoned the call.
type slowUsage struct{ delay time.Duration }

func (s *slowUsage) Submit(batch []usage.Submission) (*usage.SubmitResult, error) {
	time.Sleep(s.delay)
	return &usage.SubmitResult{Accepted: len(batch)}, nil
}
func (s *slowUsage) Status() *usage.Stats { return &usage.Stats{} }
func (s *slowUsage) Drain(time.Duration) (*usage.Stats, error) {
	return &usage.Stats{}, nil
}

// TestCallTimeoutUnsticksLostResponse is the regression test for the
// lost-response hang: a reply that doesn't arrive in time must fail
// the parked call with ErrCallTimeout instead of blocking forever, and
// the connection must keep working — including when the late response
// eventually lands on it (the forgotten-ID tombstone swallows it).
func TestCallTimeoutUnsticksLostResponse(t *testing.T) {
	lw := newLiveWorld(t)
	lw.bank.SetUsage(&slowUsage{delay: 500 * time.Millisecond})

	c, err := Dial(lw.addr, lw.admin, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.CallTimeout = 150 * time.Millisecond

	start := time.Now()
	_, err = c.UsageSubmit([]usage.Submission{{
		ID: "slow-1", Drawer: lw.aliceAcct.AccountID, Recipient: lw.gspAcct.AccountID,
	}})
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("stalled call: got %v, want ErrCallTimeout", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("call blocked %v before timing out", waited)
	}

	// The same connection serves the next call immediately — the read
	// loop is not stuck behind the abandoned call.
	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping while stale response still pending: %v", err)
	}

	// Let the late response land on the connection; the tombstone must
	// swallow it without disturbing later calls.
	time.Sleep(500 * time.Millisecond)
	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping after late response arrived: %v", err)
	}
}

// TestClientRedialsAfterConnectionCut proves a hard connection loss
// (every live connection severed mid-stream) heals through the
// client's transparent redial rather than poisoning the client.
func TestClientRedialsAfterConnectionCut(t *testing.T) {
	lw := newLiveWorld(t)
	p, err := netsim.NewProxy(lw.addr, netsim.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := Dial(p.Addr(), lw.alice, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.CallTimeout = 300 * time.Millisecond

	if _, err := c.Ping(); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}
	p.CutAll()
	recovered := false
	for i := 0; i < 40 && !recovered; i++ {
		if _, err := c.Ping(); err == nil {
			recovered = true
		} else {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !recovered {
		t.Fatal("client never recovered after connection cut")
	}
}

// TestTornFramesDoNotWedgeServer feeds the server's read loop torn
// input — a partial frame header, a frame that dies mid-body, and a
// netsim torn-write connection killed mid-frame without close_notify —
// and proves the server neither wedges nor leaks an in-flight slot:
// with MaxInFlight lowered to 2, a healthy client must still complete
// more concurrent calls than the leaked slots would allow.
func TestTornFramesDoNotWedgeServer(t *testing.T) {
	w := newTestWorld(t)
	lw := newLiveWorldWith(t, w, func(srv *Server) {
		srv.MaxInFlight = 2
	})

	// Half a length header, then an orderly close.
	conn := rawTLSConn(t, lw, lw.alice)
	if _, err := conn.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A full header promising 64 bytes, only 16 delivered.
	conn2 := rawTLSConn(t, lw, lw.alice)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 64)
	if _, err := conn2.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	conn2.Close()

	// The netsim variant: TLS over a torn-write wrapper, then the raw
	// socket dies mid-frame with no close_notify — the server sees a
	// truncated TLS record stream.
	cfg, err := pki.ClientTLSConfig(lw.alice, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.DialTimeout("tcp", lw.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tc := tls.Client(netsim.WrapConn(raw, netsim.ConnConfig{Seed: 5, Tear: true}), cfg)
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(hdr[:], 200)
	if _, err := tc.Write(append(hdr[:], make([]byte, 80)...)); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	// If any of the three leaked an in-flight slot, at most one of
	// these concurrent calls could proceed at a time; a wedged read
	// loop would hang them outright.
	c := lw.client(t, lw.alice)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.AccountDetails(lw.aliceAcct.AccountID); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("healthy call failed after torn input: %v", err)
	}
}

// flakyUsage is a UsageEngine stub whose Submit refuses the first
// `fails` calls with ErrOverloaded, then accepts.
type flakyUsage struct {
	mu    sync.Mutex
	fails int
	calls int
}

func (f *flakyUsage) Submit(batch []usage.Submission) (*usage.SubmitResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.fails > 0 {
		f.fails--
		return nil, usage.ErrOverloaded
	}
	return &usage.SubmitResult{Accepted: len(batch)}, nil
}
func (f *flakyUsage) Status() *usage.Stats { return &usage.Stats{} }
func (f *flakyUsage) Drain(time.Duration) (*usage.Stats, error) {
	return &usage.Stats{}, nil
}

func (f *flakyUsage) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// TestRoutedClientAbsorbsUsageBackpressure pins satellite behavior: an
// overloaded usage queue is backpressure, not a hard failure. The
// routed client retries within its budget and succeeds; with retries
// disabled the same condition surfaces as CodeOverloaded.
func TestRoutedClientAbsorbsUsageBackpressure(t *testing.T) {
	lw := newLiveWorld(t)
	stub := &flakyUsage{fails: 2}
	lw.bank.SetUsage(stub)

	charges := []usage.Submission{{
		ID:        "backpressure-1",
		Drawer:    lw.aliceAcct.AccountID,
		Recipient: lw.gspAcct.AccountID,
	}}

	rc, err := NewRoutedClient(lw.client(t, lw.admin), nil, RouteOptions{
		Retry: RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.UsageSubmit(charges)
	if err != nil {
		t.Fatalf("overloaded queue should be retried, got: %v", err)
	}
	if res.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1", res.Accepted)
	}
	if got := stub.callCount(); got != 3 {
		t.Fatalf("engine saw %d submits, want 3 (2 refusals + 1 success)", got)
	}
	if got := rc.RetryCount(); got != 2 {
		t.Fatalf("RetryCount() = %d, want 2", got)
	}

	// Same condition with retries off must surface the overload.
	stub2 := &flakyUsage{fails: 100}
	lw.bank.SetUsage(stub2)
	rc2, err := NewRoutedClient(lw.client(t, lw.admin), nil, RouteOptions{
		Retry: RetryPolicy{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rc2.UsageSubmit(charges)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeOverloaded {
		t.Fatalf("retries disabled: got %v, want overloaded", err)
	}
	if got := stub2.callCount(); got != 1 {
		t.Fatalf("engine saw %d submits with retries disabled, want 1", got)
	}
}

// TestOpenPrimaryCircuitDegradesReadsToReplica drives the graceful
// degradation path end to end: a replica too stale to pass the
// staleness bound is skipped while the primary is healthy, but once
// consecutive timeouts open the primary's circuit, reads fall back to
// that stale replica — its frozen balance is the proof of who answered.
func TestOpenPrimaryCircuitDegradesReadsToReplica(t *testing.T) {
	lw := newLiveWorld(t)
	acct := lw.aliceAcct.AccountID

	// Freeze the replica at the current balance...
	sn, err := lw.bank.Ledger().Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := db.OpenFromSnapshot(sn, nil)
	if err != nil {
		t.Fatal(err)
	}
	frozenDetails, err := lw.bank.Ledger().Details(acct)
	if err != nil {
		t.Fatal(err)
	}
	frozenBal := frozenDetails.AvailableBalance

	// ...then move the primary past it.
	if _, err := lw.bank.AdminDeposit(lw.admin.SubjectName(), &AdminAmountRequest{
		AccountID: acct, Amount: currency.FromG(25),
	}); err != nil {
		t.Fatal(err)
	}

	repID, err := lw.ca.Issue(pki.IssueOptions{CommonName: "rep", Organization: "VO-A", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	src := &staticSource{store: frozen, seq: frozen.CurrentSeq(), stale: time.Hour, addr: lw.addr}
	ro, err := NewReadOnlyBank(src, ReadOnlyBankConfig{Identity: repID, Trust: lw.ts})
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := NewReadOnlyServer(ro, repID)
	if err != nil {
		t.Fatal(err)
	}
	rsrv.Logf = func(string, ...any) {}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve(rln)
	t.Cleanup(func() { rsrv.Close() })

	p, err := netsim.NewProxy(lw.addr, netsim.Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	primary, err := Dial(p.Addr(), lw.alice, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.CallTimeout = 150 * time.Millisecond
	primary.DialTimeout = time.Second
	replica, err := Dial(rln.Addr().String(), lw.alice, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	rc, err := NewRoutedClient(primary, []*Client{replica}, RouteOptions{
		MaxStaleness:     time.Millisecond, // replica (1h stale) is over the bound
		StatusInterval:   time.Hour,        // probe once, cache the verdict
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Retry:            RetryPolicy{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy: the stale replica is skipped, the primary answers with
	// the live balance.
	a, err := rc.AccountDetails(acct)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != frozenBal+currency.FromG(25) {
		t.Fatalf("healthy read = %v, want live balance %v", a.AvailableBalance, frozenBal+currency.FromG(25))
	}

	// Partition the primary: two timeouts open its circuit.
	p.Partition(true, true)
	for i := 0; i < 2; i++ {
		if _, err := rc.AccountDetails(acct); err == nil {
			t.Fatal("read through a full partition unexpectedly succeeded")
		}
	}

	// Circuit open: the read degrades to the stale replica instead of
	// erroring — the frozen balance proves the replica served it.
	a, err = rc.AccountDetails(acct)
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if a.AvailableBalance != frozenBal {
		t.Fatalf("degraded read = %v, want frozen replica balance %v", a.AvailableBalance, frozenBal)
	}
}

// TestDirectTransferKeyedReplay pins client-visible idempotency: the
// same key replays the recorded outcome (same transaction, no second
// debit); a fresh key moves money again.
func TestDirectTransferKeyedReplay(t *testing.T) {
	lw := newLiveWorld(t)
	c := lw.client(t, lw.alice)
	from, to := lw.aliceAcct.AccountID, lw.gspAcct.AccountID

	avail0, _ := lw.balance(t, from)

	key := NewIdempotencyKey()
	if key == "" {
		t.Fatal("NewIdempotencyKey returned empty key")
	}
	r1, err := c.DirectTransferKeyed(key, from, to, currency.FromG(5), "")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.DirectTransferKeyed(key, from, to, currency.FromG(5), "")
	if err != nil {
		t.Fatalf("keyed replay: %v", err)
	}
	if r2.TransactionID != r1.TransactionID {
		t.Fatalf("replay minted a new transaction: %d vs %d", r2.TransactionID, r1.TransactionID)
	}
	if avail, _ := lw.balance(t, from); avail != avail0-currency.FromG(5) {
		t.Fatalf("after replay balance = %v, want a single %v debit from %v", avail, currency.FromG(5), avail0)
	}

	r3, err := c.DirectTransferKeyed(NewIdempotencyKey(), from, to, currency.FromG(5), "")
	if err != nil {
		t.Fatal(err)
	}
	if r3.TransactionID == r1.TransactionID {
		t.Fatal("fresh key replayed the old transaction")
	}
	if avail, _ := lw.balance(t, from); avail != avail0-currency.FromG(10) {
		t.Fatalf("after second transfer balance = %v, want two debits", avail)
	}
}
