package core

import (
	"errors"
	"fmt"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/rur"
	"gridbank/internal/usage"
	"gridbank/internal/wire"
)

// Usage-settlement operations: the wire surface of the batched
// asynchronous pipeline (internal/usage). Usage.Submit is the paper's
// metering front door at scale — a GSP streams priced RURs in batches
// instead of redeeming one instrument per job — and Usage.Status /
// Usage.Drain are the operational window.
const (
	OpUsageSubmit = "Usage.Submit" // batch intake of priced usage records
	OpUsageStatus = "Usage.Status" // pipeline queue depth and outcome counters
	OpUsageDrain  = "Usage.Drain"  // block until the queue settles (admin)
)

// CodeOverloaded marks an intake batch refused by backpressure: the
// settlement pipeline lags and the client should back off and retry.
const CodeOverloaded = wire.CodeOverloaded

// ErrUsageDisabled answers usage operations on a server whose pipeline
// was not enabled.
var ErrUsageDisabled = errors.New("core: usage settlement pipeline not enabled on this server")

// UsageEngine is the pipeline surface the bank dispatches usage
// operations to. *usage.Pipeline implements it.
type UsageEngine interface {
	Submit(batch []usage.Submission) (*usage.SubmitResult, error)
	Status() *usage.Stats
	Drain(timeout time.Duration) (*usage.Stats, error)
}

var _ UsageEngine = (*usage.Pipeline)(nil)

// UsageSubmitRequest offers a batch of usage records for asynchronous
// settlement. Unless the caller is an administrator, it must own every
// recipient account named in the batch (the GSP submits usage it
// metered itself), and each decodable RUR must name the charged
// parties: consumer = the drawer account's certificate holder,
// provider = the caller.
type UsageSubmitRequest struct {
	Charges []usage.Submission `json:"charges"`
}

// UsageSubmitResponse reports the intake outcome per batch.
type UsageSubmitResponse struct {
	Result usage.SubmitResult `json:"result"`
}

// UsageStatusResponse reports the pipeline's observable state.
type UsageStatusResponse struct {
	Stats usage.Stats `json:"stats"`
}

// UsageDrainRequest blocks until the pipeline settles everything
// pending, or Timeout elapses (default 30s).
type UsageDrainRequest struct {
	Timeout time.Duration `json:"timeout,omitempty"`
}

// UsageDrainResponse carries the post-drain stats.
type UsageDrainResponse struct {
	Stats usage.Stats `json:"stats"`
}

// SetUsage attaches the settlement pipeline the bank dispatches usage
// operations to. Call during wiring, before the server takes traffic.
func (b *Bank) SetUsage(eng UsageEngine) {
	b.usageMu.Lock()
	b.usage = eng
	b.usageMu.Unlock()
}

func (b *Bank) usageEngine() (UsageEngine, error) {
	b.usageMu.RLock()
	eng := b.usage
	b.usageMu.RUnlock()
	if eng == nil {
		return nil, ErrUsageDisabled
	}
	return eng, nil
}

// UsageSubmit implements Usage.Submit: authorize, then hand the batch
// to the pipeline. Authorization is per charge — a caller may only
// submit charges crediting accounts it owns (§2.1: the GSP's charging
// module presents its own metered usage), unless it is an
// administrator, and the RUR evidence must name the parties it
// charges: its consumer must be the drawer account's certificate
// holder and its provider must be the caller. The drawer signs
// nothing here — this is the paper's §3.1 pay-after-use trust model,
// where the RUR stored in the TRANSFER record is the dispute evidence
// and Admin.CancelTransfer is the remedy — so the binding check is
// what keeps that evidence attributable: a provider cannot debit an
// account with a record that never names its owner.
func (b *Bank) UsageSubmit(caller string, req *UsageSubmitRequest) (*UsageSubmitResponse, error) {
	eng, err := b.usageEngine()
	if err != nil {
		return nil, err
	}
	if len(req.Charges) == 0 {
		return &UsageSubmitResponse{}, nil
	}
	if !b.IsAdmin(caller) {
		owned := make(map[accounts.ID]bool)
		drawers := make(map[accounts.ID]string) // drawer account -> certificate name
		for i := range req.Charges {
			recip := req.Charges[i].Recipient
			if !owned[recip] {
				a, err := b.led.Details(recip)
				if err != nil {
					return nil, fmt.Errorf("core: usage recipient %s: %w", recip, err)
				}
				if a.CertificateName != caller {
					return nil, fmt.Errorf("%w: %s does not own recipient account %s", ErrDenied, caller, recip)
				}
				owned[recip] = true
			}
			drawer := req.Charges[i].Drawer
			cert, seen := drawers[drawer]
			if !seen {
				a, err := b.led.Details(drawer)
				if err != nil {
					return nil, fmt.Errorf("core: usage drawer %s: %w", drawer, err)
				}
				cert = a.CertificateName
				drawers[drawer] = cert
			}
			// Undecodable records fall through: intake rejects them with
			// a per-charge reason instead of failing the whole batch.
			rec, err := rur.Decode(req.Charges[i].RUR)
			if err != nil {
				continue
			}
			req.Charges[i].Record = rec // decoded once; intake reuses it
			if rec.User.CertificateName != cert {
				return nil, fmt.Errorf("%w: RUR %q names consumer %q, but drawer %s belongs to %q",
					ErrDenied, req.Charges[i].ID, rec.User.CertificateName, drawer, cert)
			}
			if rec.Resource.CertificateName != caller {
				return nil, fmt.Errorf("%w: RUR %q names provider %q, not the submitting %q",
					ErrDenied, req.Charges[i].ID, rec.Resource.CertificateName, caller)
			}
		}
	}
	res, err := eng.Submit(req.Charges)
	if err != nil {
		return nil, err
	}
	return &UsageSubmitResponse{Result: *res}, nil
}

// UsageStatus implements Usage.Status for any authenticated subject.
func (b *Bank) UsageStatus(string) (*UsageStatusResponse, error) {
	eng, err := b.usageEngine()
	if err != nil {
		return nil, err
	}
	return &UsageStatusResponse{Stats: *eng.Status()}, nil
}

// UsageDrain implements Usage.Drain (administrators only — it blocks a
// server goroutine until the queue empties).
func (b *Bank) UsageDrain(caller string, req *UsageDrainRequest) (*UsageDrainResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	eng, err := b.usageEngine()
	if err != nil {
		return nil, err
	}
	st, err := eng.Drain(req.Timeout)
	if err != nil {
		return nil, err
	}
	return &UsageDrainResponse{Stats: *st}, nil
}

// --- Read-only replica: usage ops live on the primary -----------------------

// UsageSubmit redirects to the primary (intake mutates the spool).
func (b *ReadOnlyBank) UsageSubmit(string, *UsageSubmitRequest) (*UsageSubmitResponse, error) {
	return nil, b.redirect(OpUsageSubmit)
}

// UsageStatus redirects to the primary: the pipeline (and its queue)
// runs there, and spool tables are not part of the replicated ledger.
func (b *ReadOnlyBank) UsageStatus(string) (*UsageStatusResponse, error) {
	return nil, b.redirect(OpUsageStatus)
}

// UsageDrain redirects to the primary.
func (b *ReadOnlyBank) UsageDrain(string, *UsageDrainRequest) (*UsageDrainResponse, error) {
	return nil, b.redirect(OpUsageDrain)
}

// --- Client side -------------------------------------------------------------

// UsageSubmit streams a batch of priced usage records into the bank's
// asynchronous settlement pipeline. On CodeOverloaded the caller backs
// off and resubmits — re-submission is idempotent per submission ID.
func (c *Client) UsageSubmit(charges []usage.Submission) (*usage.SubmitResult, error) {
	var out UsageSubmitResponse
	if err := c.call(OpUsageSubmit, &UsageSubmitRequest{Charges: charges}, &out); err != nil {
		return nil, err
	}
	return &out.Result, nil
}

// UsageStatus reports the settlement pipeline's state.
func (c *Client) UsageStatus() (*usage.Stats, error) {
	var out UsageStatusResponse
	if err := c.call(OpUsageStatus, nil, &out); err != nil {
		return nil, err
	}
	return &out.Stats, nil
}

// UsageDrain blocks until the pipeline settles everything pending
// (administrator caller). The call's own deadline is stretched past the
// server-side drain window so a long legitimate drain is not cut off by
// the default CallTimeout.
func (c *Client) UsageDrain(timeout time.Duration) (*usage.Stats, error) {
	serverSide := timeout
	if serverSide <= 0 {
		serverSide = 30 * time.Second // the server's own default drain window
	}
	var out UsageDrainResponse
	if err := c.callWithTimeout(OpUsageDrain, &UsageDrainRequest{Timeout: timeout}, &out, serverSide+30*time.Second); err != nil {
		return nil, err
	}
	return &out.Stats, nil
}

// --- Routed client -----------------------------------------------------------

// Usage operations always run on the primary: intake mutates the spool
// and the pipeline state lives only there. The explicit overrides keep
// that guarantee even if replica routing grows more aggressive.

// UsageSubmit submits a usage batch to the primary under the retry
// policy: overloaded backpressure is absorbed with backoff within the
// retry budget instead of surfacing as a hard error (re-submission is
// idempotent per submission ID, so transport-ambiguous failures retry
// safely too).
func (r *RoutedClient) UsageSubmit(charges []usage.Submission) (*usage.SubmitResult, error) {
	var out UsageSubmitResponse
	if err := r.retryMutate(OpUsageSubmit, &UsageSubmitRequest{Charges: charges}, &out); err != nil {
		return nil, err
	}
	return &out.Result, nil
}

// UsageStatus reads pipeline state from the primary.
func (r *RoutedClient) UsageStatus() (*usage.Stats, error) {
	return r.Client.UsageStatus()
}

// UsageDrain drains the primary's pipeline.
func (r *RoutedClient) UsageDrain(timeout time.Duration) (*usage.Stats, error) {
	return r.Client.UsageDrain(timeout)
}
