package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// requestChain issues a fresh chain for the standard world: alice pays
// gsp, length words at perWord each, default 24h TTL.
func requestChain(t *testing.T, w *testWorld, length int, perWord currency.Amount) (*RequestChainResponse, *payment.Chain) {
	t.Helper()
	resp, err := w.bank.RequestChain(w.alice.SubjectName(), &RequestChainRequest{
		AccountID: w.aliceAcct.AccountID, PayeeCert: w.gsp.SubjectName(), Length: length, PerWord: perWord,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp, &payment.Chain{Commitment: resp.Chain.Commitment, Seed: resp.Seed}
}

func chainWord(t *testing.T, ch *payment.Chain, i int) []byte {
	t.Helper()
	w, err := ch.Word(i)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRedeemChainTamperedWrapperRefused regresses the authorization
// bug: RedeemChain once trusted wrapper fields (drawer account,
// currency, expiry) that VerifyChain never compared against the signed
// payload. Every wrapper field a payee could profit from rewriting must
// now sink the redemption outright, with no money moved.
func TestRedeemChainTamperedWrapperRefused(t *testing.T) {
	cases := map[string]func(*payment.ChainCommitment){
		"DrawerAccountID": func(cc *payment.ChainCommitment) { cc.DrawerAccountID = "01-0001-00009999" },
		"DrawerCert":      func(cc *payment.ChainCommitment) { cc.DrawerCert = "CN=mallory,O=VO-A" },
		"Currency":        func(cc *payment.ChainCommitment) { cc.Currency = "USD" },
		"Expires":         func(cc *payment.ChainCommitment) { cc.Expires = cc.Expires.Add(240 * time.Hour) },
		"PerWord":         func(cc *payment.ChainCommitment) { cc.PerWord = currency.FromG(500) },
		"Length":          func(cc *payment.ChainCommitment) { cc.Length *= 2 },
	}
	for field, mutate := range cases {
		t.Run(field, func(t *testing.T) {
			w := newTestWorld(t)
			resp, chain := requestChain(t, w, 10, currency.FromG(1))
			tampered := resp.Chain
			mutate(&tampered.Commitment)
			_, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
				Chain: tampered,
				Claim: payment.ChainClaim{Serial: tampered.Commitment.Serial, Index: 3, Word: chainWord(t, chain, 3)},
			})
			if err == nil {
				t.Fatalf("redemption with tampered wrapper %s accepted", field)
			}
			if avail, _ := w.balance(t, w.gspAcct.AccountID); !avail.IsZero() {
				t.Fatalf("payee paid %s through tampered wrapper", avail)
			}
			if _, locked := w.balance(t, w.aliceAcct.AccountID); locked != currency.FromG(10) {
				t.Fatalf("drawer lock disturbed: %s", locked)
			}
		})
	}
}

// TestRedeemChainWrongPayee: a third party holding a copy of the signed
// chain and a leaked word cannot redeem an instrument made out to
// someone else.
func TestRedeemChainWrongPayee(t *testing.T) {
	w := newTestWorld(t)
	resp, chain := requestChain(t, w, 10, currency.FromG(1))
	mallory, err := w.ca.Issue(pki.IssueOptions{CommonName: "mallory", Organization: "VO-A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank.CreateAccount(mallory.SubjectName(), &CreateAccountRequest{OrganizationName: "VO-A"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank.RedeemChain(mallory.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 4, Word: chainWord(t, chain, 4)},
	}); !errors.Is(err, payment.ErrWrongPayee) {
		t.Fatalf("wrong payee err = %v", err)
	}
}

// TestRedeemChainClaimSerialMismatch: a claim for chain A presented
// with chain B's (valid, signed) wrapper is refused before any word
// verification.
func TestRedeemChainClaimSerialMismatch(t *testing.T) {
	w := newTestWorld(t)
	respA, chainA := requestChain(t, w, 10, currency.FromG(1))
	respB, _ := requestChain(t, w, 10, currency.FromG(1))
	_ = respA
	if _, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
		Chain: respB.Chain,
		Claim: payment.ChainClaim{Serial: chainA.Commitment.Serial, Index: 2, Word: chainWord(t, chainA, 2)},
	}); err == nil {
		t.Fatal("cross-chain claim accepted")
	}
	if avail, _ := w.balance(t, w.gspAcct.AccountID); !avail.IsZero() {
		t.Fatalf("payee paid %s", avail)
	}
}

// TestChainExpiryGates pins the redemption/release disjointness at the
// bank level: redemption works strictly before Expires and fails after,
// release is refused before Expires and works after — the two gates can
// never both admit.
func TestChainExpiryGates(t *testing.T) {
	w := newTestWorld(t)
	resp, chain := requestChain(t, w, 10, currency.FromG(1))

	// Before expiry: redemption admitted, release refused.
	if _, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 3, Word: chainWord(t, chain, 3)},
	}); err != nil {
		t.Fatalf("pre-expiry redeem: %v", err)
	}
	if _, err := w.bank.ReleaseChain(w.alice.SubjectName(), &ReleaseRequest{Serial: chain.Commitment.Serial}); !errors.Is(err, ErrNotExpired) {
		t.Fatalf("pre-expiry release err = %v", err)
	}

	// After expiry: redemption refused (the word is genuine — only time
	// has passed), release admitted for exactly the remainder.
	w.clock.Advance(25 * time.Hour)
	if _, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 7, Word: chainWord(t, chain, 7)},
	}); !errors.Is(err, payment.ErrExpired) {
		t.Fatalf("post-expiry redeem err = %v", err)
	}
	rel, err := w.bank.ReleaseChain(w.alice.SubjectName(), &ReleaseRequest{Serial: chain.Commitment.Serial})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Released != currency.FromG(7) {
		t.Fatalf("released = %s, want 7 G$", rel.Released)
	}
	// And only once.
	if _, err := w.bank.ReleaseChain(w.alice.SubjectName(), &ReleaseRequest{Serial: chain.Commitment.Serial}); !errors.Is(err, ErrAlreadyRedeemed) {
		t.Fatalf("double release err = %v", err)
	}
	avail, locked := w.balance(t, w.aliceAcct.AccountID)
	if !locked.IsZero() || avail != currency.FromG(997) {
		t.Fatalf("drawer = %s/%s", avail, locked)
	}
}

// TestReleaseVsInFlightRedeemRace drives redemption and release
// concurrently across the expiry instant. Whatever interleaving the
// scheduler picks, the per-serial lock plus single-transaction commits
// must keep the books exact: paid + released == chain total, nothing
// locked, nobody double-paid.
func TestReleaseVsInFlightRedeemRace(t *testing.T) {
	w := newTestWorld(t)
	const length = 400
	perWord := currency.MustParse("0.01")
	resp, err := w.bank.RequestChain(w.alice.SubjectName(), &RequestChainRequest{
		AccountID: w.aliceAcct.AccountID, PayeeCert: w.gsp.SubjectName(),
		Length: length, PerWord: perWord,
		TTL: 150 * time.Millisecond, // fakeClock ticks 1ms per Now(): expiry lands mid-stream
	})
	if err != nil {
		t.Fatal(err)
	}
	chain := &payment.Chain{Commitment: resp.Chain.Commitment, Seed: resp.Seed}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the GSP, redeeming word by word until the chain goes dead
		defer wg.Done()
		for i := 1; i <= length; i++ {
			word, err := chain.Word(i)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
				Chain: resp.Chain,
				Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: i, Word: word},
			}); err != nil {
				if errors.Is(err, payment.ErrExpired) || errors.Is(err, ErrAlreadyRedeemed) {
					return // chain expired or released under us: both legitimate ends
				}
				t.Errorf("redeem %d: %v", i, err)
				return
			}
		}
	}()
	go func() { // the drawer, hammering release until the gate opens
		defer wg.Done()
		for {
			_, err := w.bank.ReleaseChain(w.alice.SubjectName(), &ReleaseRequest{Serial: chain.Commitment.Serial})
			if err == nil {
				return
			}
			if !errors.Is(err, ErrNotExpired) {
				t.Errorf("release: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	gspAvail, gspLocked := w.balance(t, w.gspAcct.AccountID)
	aliceAvail, aliceLocked := w.balance(t, w.aliceAcct.AccountID)
	if !gspLocked.IsZero() || !aliceLocked.IsZero() {
		t.Fatalf("funds still locked after settlement: gsp %s, alice %s", gspLocked, aliceLocked)
	}
	// Conservation: every microdollar is either paid to the GSP or back
	// with the drawer — no delta vanished, none was paid twice.
	got, err := gspAvail.Add(aliceAvail)
	if err != nil {
		t.Fatal(err)
	}
	if want := currency.FromG(1000); got != want {
		t.Fatalf("conservation broken: gsp %s + alice %s = %s, want %s", gspAvail, aliceAvail, got, want)
	}
}

// TestChainReplayAcrossBankRestart rebuilds the bank over the same
// store and replays a settled claim: the refusal must come from the
// durable chain row, not from any in-memory state the restart erased.
func TestChainReplayAcrossBankRestart(t *testing.T) {
	ca, err := pki.NewCA("Test Grid CA", "VO-A", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cn string) *pki.Identity {
		id, err := ca.Issue(pki.IssueOptions{CommonName: cn, Organization: "VO-A"})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	bankID, alice, gsp, admin := mk("gridbank"), mk("alice"), mk("gsp1"), mk("banker")
	ts := pki.NewTrustStore(ca.Certificate())
	clock := &fakeClock{t: time.Now()}
	store := db.MustOpenMemory()
	cfg := BankConfig{Identity: bankID, Trust: ts, Admins: []string{admin.SubjectName()}, Now: clock.Now}

	bank1, err := NewBank(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := bank1.CreateAccount(alice.SubjectName(), &CreateAccountRequest{OrganizationName: "VO-A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank1.CreateAccount(gsp.SubjectName(), &CreateAccountRequest{OrganizationName: "VO-A"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bank1.AdminDeposit(admin.SubjectName(), &AdminAmountRequest{AccountID: ar.Account.AccountID, Amount: currency.FromG(100)}); err != nil {
		t.Fatal(err)
	}
	resp, err := bank1.RequestChain(alice.SubjectName(), &RequestChainRequest{
		AccountID: ar.Account.AccountID, PayeeCert: gsp.SubjectName(), Length: 10, PerWord: currency.FromG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	chain := &payment.Chain{Commitment: resp.Chain.Commitment, Seed: resp.Seed}
	w6, _ := chain.Word(6)
	if _, err := bank1.RedeemChain(gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 6, Word: w6},
	}); err != nil {
		t.Fatal(err)
	}

	// "Restart": a second bank over the same store.
	bank2, err := NewBank(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank2.RedeemChain(gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 6, Word: w6},
	}); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("replay after restart err = %v", err)
	}
	// Progress beyond the durable index still works.
	w9, _ := chain.Word(9)
	red, err := bank2.RedeemChain(gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 9, Word: w9},
	})
	if err != nil || red.Paid != currency.FromG(3) {
		t.Fatalf("post-restart advance = %+v, %v", red, err)
	}
}
