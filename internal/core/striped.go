package core

import (
	"sync"

	"gridbank/internal/strhash"
)

// instrStripes is the shard count of the bank's keyed instrument lock.
// Power of two, comfortably above typical concurrent redemption fan-in;
// collisions only cost unnecessary serialization, never correctness.
const instrStripes = 64

// stripedLock is a keyed mutex: operations on the same key serialize,
// operations on different keys almost always proceed in parallel (two
// keys share a stripe with probability 1/instrStripes). GridBank keys
// it by instrument serial, so cheque and chain check-then-act sequences
// against different instruments — and therefore different drawer
// accounts — no longer queue behind one bank-wide mutex.
type stripedLock struct {
	shards [instrStripes]sync.Mutex
}

// of returns the mutex shard for key. Usage:
//
//	mu := b.instr.of(serial)
//	mu.Lock()
//	defer mu.Unlock()
func (s *stripedLock) of(key string) *sync.Mutex {
	return &s.shards[strhash.FNV32a(key)%instrStripes]
}
