package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

func pkiIssueOpts(cn string) pki.IssueOptions {
	return pki.IssueOptions{CommonName: cn, Organization: "VO-A"}
}

// These tests cover the multiplexed transport: concurrent per-connection
// dispatch on the server, pipelined demux on the client, and the §3.2
// gate semantics the concurrency must not weaken.

// registerBlockOp installs a custom op that parks until released,
// signalling each entry on started.
func registerBlockOp(t *testing.T, srv *Server, started chan struct{}, release chan struct{}) {
	t.Helper()
	err := srv.RegisterOp("test.block", func(subject string, body []byte) (any, error) {
		started <- struct{}{}
		<-release
		return map[string]bool{"ok": true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServerRespondsOutOfOrder proves the wire-level contract: a
// response for a later cheap request overtakes an earlier slow one on
// the same connection, matched by ID.
func TestServerRespondsOutOfOrder(t *testing.T) {
	lw := newLiveWorld(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	registerBlockOp(t, lw.server, started, release)

	conn := rawTLSConn(t, lw, lw.alice)
	wc := wire.NewConn(conn)
	if err := wc.WriteRequest(&wire.Request{ID: 1, Op: "test.block"}); err != nil {
		t.Fatal(err)
	}
	<-started // the slow op is executing, not queued
	if err := wc.WriteRequest(&wire.Request{ID: 2, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	resp, err := wc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 2 || !resp.OK {
		t.Fatalf("first response = %+v, want the ping (ID 2) to overtake", resp)
	}
	close(release)
	resp, err = wc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 || !resp.OK {
		t.Fatalf("second response = %+v, want the released slow op (ID 1)", resp)
	}
}

// TestSlowOpDoesNotBlockConcurrentRead is the head-of-line test through
// the full client stack: a parked durable-ish op on a connection does
// not serialize a concurrent CheckFunds on the same connection.
func TestSlowOpDoesNotBlockConcurrentRead(t *testing.T) {
	lw := newLiveWorld(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	registerBlockOp(t, lw.server, started, release)

	c := lw.client(t, lw.alice)
	slowDone := make(chan error, 1)
	go func() {
		var out map[string]bool
		slowDone <- c.Call("test.block", nil, &out)
	}()
	<-started

	fastDone := make(chan error, 1)
	go func() {
		fastDone <- c.CheckFunds(lw.aliceAcct.AccountID, currency.FromG(1))
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("CheckFunds behind a parked op: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CheckFunds head-of-line-blocked behind a slow op on the same connection")
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("released slow op: %v", err)
	}
}

// TestInFlightCallsFailOnConnectionDrop: a mid-pipeline transport
// failure fans out to every parked caller instead of stranding them.
func TestInFlightCallsFailOnConnectionDrop(t *testing.T) {
	lw := newLiveWorld(t)
	const callers = 4
	started := make(chan struct{}, callers)
	release := make(chan struct{})
	defer close(release)
	registerBlockOp(t, lw.server, started, release)

	c := lw.client(t, lw.alice)
	done := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			var out map[string]bool
			done <- c.Call("test.block", nil, &out)
		}()
	}
	for i := 0; i < callers; i++ {
		<-started
	}
	// Sever every server-side connection mid-pipeline.
	lw.server.mu.Lock()
	for conn := range lw.server.conns {
		conn.Close()
	}
	lw.server.mu.Unlock()
	for i := 0; i < callers; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("parked call reported success after its connection died")
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("caller %d stranded after connection drop", i)
		}
	}
	// The client redials transparently on the next call.
	if _, err := c.Ping(); err != nil {
		if _, err2 := c.Ping(); err2 != nil {
			t.Fatalf("redial after fan-out failed: %v / %v", err, err2)
		}
	}
}

// TestUnknownSubjectGateUnderPipelining: §3.2 regression — a stranger
// pipelines a denied op and a CreateAccount back-to-back; the deny must
// drop the connection WITHOUT executing the second in-flight request.
func TestUnknownSubjectGateUnderPipelining(t *testing.T) {
	lw := newLiveWorld(t)
	stranger, err := lw.ca.Issue(pkiIssueOpts("stranger-pipeline"))
	if err != nil {
		t.Fatal(err)
	}
	conn := rawTLSConn(t, lw, stranger)
	wc := wire.NewConn(conn)
	// Both frames hit the server before it has answered anything.
	if err := wc.WriteRequest(&wire.Request{ID: 1, Op: OpAccountDetails, Body: []byte(`{"account_id":"x"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := wc.WriteRequest(&wire.Request{ID: 2, Op: OpCreateAccount, Body: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	resp, err := wc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 || resp.OK || resp.Code != CodeDenied {
		t.Fatalf("gate response = %+v", resp)
	}
	// The connection is dropped, as the paper prescribes…
	if _, err := wc.ReadResponse(); err == nil {
		t.Fatal("connection survived the deny")
	}
	// …and the pipelined CreateAccount behind the deny never executed.
	if lw.bank.Authorize(stranger.SubjectName()) == nil {
		t.Fatal("request pipelined behind the deny executed: stranger got an account")
	}
}

// TestServerMaxInFlightBackpressure: the per-connection cap admits
// exactly MaxInFlight concurrent dispatches; the overflow request waits
// for a slot instead of executing or erroring.
func TestServerMaxInFlightBackpressure(t *testing.T) {
	w := newTestWorld(t)
	lw := newLiveWorldWith(t, w, func(srv *Server) { srv.MaxInFlight = 2 })
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	registerBlockOp(t, lw.server, started, release)

	c := lw.client(t, lw.alice)
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			var out map[string]bool
			done <- c.Call("test.block", nil, &out)
		}()
	}
	<-started
	<-started
	select {
	case <-started:
		t.Fatal("third dispatch ran past MaxInFlight=2")
	case <-time.After(200 * time.Millisecond):
	}
	close(release) // frees a slot; the queued third request now runs
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestIdleConnectionDropped: a connection with no traffic and nothing
// in flight is reaped by the idle watchdog; the client transparently
// redials afterwards.
func TestIdleConnectionDropped(t *testing.T) {
	w := newTestWorld(t)
	lw := newLiveWorldWith(t, w, func(srv *Server) { srv.IdleTimeout = 100 * time.Millisecond })
	c := lw.client(t, lw.alice)
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		lw.server.mu.Lock()
		n := len(lw.server.conns)
		lw.server.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle connection not reaped: %d still open", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Ping(); err != nil {
		if _, err2 := c.Ping(); err2 != nil {
			t.Fatalf("redial after idle drop failed: %v / %v", err, err2)
		}
	}
}

// TestIdleTimeoutSparesParkedCalls: a connection whose only activity is
// a long-running in-flight request is NOT idle.
func TestIdleTimeoutSparesParkedCalls(t *testing.T) {
	w := newTestWorld(t)
	lw := newLiveWorldWith(t, w, func(srv *Server) { srv.IdleTimeout = 100 * time.Millisecond })
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	registerBlockOp(t, lw.server, started, release)

	c := lw.client(t, lw.alice)
	done := make(chan error, 1)
	go func() {
		var out map[string]bool
		done <- c.Call("test.block", nil, &out)
	}()
	<-started
	time.Sleep(400 * time.Millisecond) // several idle periods
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parked call killed by idle watchdog: %v", err)
	}
}

// TestMaxConnsAcceptGate: connections beyond MaxConns are refused at
// accept; closing one re-opens the door.
func TestMaxConnsAcceptGate(t *testing.T) {
	w := newTestWorld(t)
	lw := newLiveWorldWith(t, w, func(srv *Server) { srv.MaxConns = 1 })
	c1 := lw.client(t, lw.alice)
	if _, err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	c2 := lw.client(t, lw.gsp)
	if _, err := c2.Ping(); err == nil {
		t.Fatal("second connection admitted past MaxConns=1")
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c2.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing the first connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientDemuxRace hammers one pipelined client from many
// goroutines with mixed reads and mutations — the demux-map race test
// (run under -race in CI).
func TestClientDemuxRace(t *testing.T) {
	lw := newLiveWorld(t)
	c := lw.client(t, lw.alice)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if n%2 == 0 {
					if _, err := c.AccountDetails(lw.aliceAcct.AccountID); err != nil {
						errs <- fmt.Errorf("worker %d details: %w", n, err)
						return
					}
				} else if _, err := c.Ping(); err != nil {
					errs <- fmt.Errorf("worker %d ping: %w", n, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPipelinedConservationUnderLoad: concurrent transfers multiplexed
// over ONE connection conserve money end to end.
func TestPipelinedConservationUnderLoad(t *testing.T) {
	lw := newLiveWorld(t)
	before, err := lw.bank.Manager().TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	alice := lw.client(t, lw.alice)
	const workers, transfers = 4, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < transfers; k++ {
				if _, err := alice.DirectTransfer(lw.aliceAcct.AccountID, lw.gspAcct.AccountID, currency.FromMicro(10), ""); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	after, err := lw.bank.Manager().TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("money not conserved over pipelined wire: %s -> %s", before, after)
	}
}

// TestOversizedResponseAnswersTyped: a response body past wire.MaxFrame
// must come back as a typed internal error on the SAME connection —
// never a silent drop that strands the pipelined caller forever.
func TestOversizedResponseAnswersTyped(t *testing.T) {
	lw := newLiveWorld(t)
	big := strings.Repeat("a", wire.MaxFrame)
	if err := lw.server.RegisterOp("test.big", func(subject string, body []byte) (any, error) {
		return map[string]string{"pad": big}, nil
	}); err != nil {
		t.Fatal(err)
	}
	c := lw.client(t, lw.alice)
	var out map[string]string
	err := c.Call("test.big", nil, &out)
	if !IsRemoteCode(err, CodeInternal) {
		t.Fatalf("oversized response err = %v, want %s", err, CodeInternal)
	}
	// The connection survived; a normal call still works.
	if _, err := c.Ping(); err != nil {
		t.Fatalf("connection dead after oversized response: %v", err)
	}
}

// TestOversizedRequestFailsOnlyThatCall: a request frame past
// wire.MaxFrame fails locally without tearing down the connection or
// the sibling calls parked on it.
func TestOversizedRequestFailsOnlyThatCall(t *testing.T) {
	lw := newLiveWorld(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	registerBlockOp(t, lw.server, started, release)

	c := lw.client(t, lw.alice)
	parked := make(chan error, 1)
	go func() {
		var out map[string]bool
		parked <- c.Call("test.block", nil, &out)
	}()
	<-started

	var out map[string]string
	err := c.Call("test.big", map[string]string{"pad": strings.Repeat("a", wire.MaxFrame)}, &out)
	if err == nil {
		t.Fatal("oversized request accepted")
	}
	select {
	case err := <-parked:
		t.Fatalf("sibling in-flight call killed by a local encode failure: %v", err)
	default:
	}
	close(release)
	if err := <-parked; err != nil {
		t.Fatalf("parked call after sibling encode failure: %v", err)
	}
}

// TestStalledReaderBoundedByMaxInFlight: a peer that pipelines requests
// but never reads responses must not accumulate more than MaxInFlight
// completed dispatches server-side (backpressure holds while the writer
// is wedged).
func TestStalledReaderBoundedByMaxInFlight(t *testing.T) {
	w := newTestWorld(t)
	lw := newLiveWorldWith(t, w, func(srv *Server) {
		srv.MaxInFlight = 2
		srv.WriteTimeout = -1 // never give up on the wedged peer; the cap must hold alone
	})
	conn := rawTLSConn(t, lw, lw.alice)
	wc := wire.NewConn(conn)
	var dispatched atomic.Int64
	if err := lw.server.RegisterOp("test.count", func(subject string, body []byte) (any, error) {
		dispatched.Add(1)
		// A response large enough that a few fill the TLS/TCP buffers
		// of a reader that never drains them.
		return map[string]string{"pad": strings.Repeat("x", 1<<20)}, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Fire many requests and read nothing.
	const total = 40
	for i := 0; i < total; i++ {
		if err := wc.WriteRequest(&wire.Request{ID: uint64(i + 1), Op: "test.count"}); err != nil {
			t.Fatal(err)
		}
	}
	// Once the kernel's socket buffers fill, the writer wedges, the
	// response queue and semaphore fill, and dispatch must PLATEAU well
	// short of the pipelined total. (If the semaphore were released
	// before queueing, all 40 would dispatch regardless.)
	deadline := time.Now().Add(10 * time.Second)
	var plateau int64
	for {
		before := dispatched.Load()
		time.Sleep(300 * time.Millisecond)
		plateau = dispatched.Load()
		if plateau == before || time.Now().After(deadline) {
			break
		}
	}
	if plateau >= total {
		t.Fatalf("all %d dispatches ran against a stalled reader (MaxInFlight=2): backpressure never engaged", plateau)
	}
}
