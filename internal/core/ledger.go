package core

import (
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/shard"
)

// Ledger is the accounts surface Bank dispatches through. Two
// implementations exist: managerLedger wraps a single accounts.Manager
// (the classic one-store bank), and shard.Ledger spreads the same
// surface over N consistent-hash shards with two-phase-commit
// cross-shard transfers. Bank itself is shard-agnostic — routing
// decisions live entirely behind this interface.
type Ledger interface {
	CreateAccount(certName, orgName string, cur currency.Code) (*accounts.Account, error)
	Details(id accounts.ID) (*accounts.Account, error)
	FindByCertificate(certName string, cur currency.Code) (*accounts.Account, error)
	UpdateDetails(id accounts.ID, certName, orgName string) (*accounts.Account, error)
	CheckFunds(id accounts.ID, amount currency.Amount) error
	Unlock(id accounts.ID, amount currency.Amount) error
	Transfer(drawer, recipient accounts.ID, amount currency.Amount, opts accounts.TransferOptions) (*accounts.Transfer, error)
	Statement(id accounts.ID, start, end time.Time) (*accounts.Statement, error)
	GetTransfer(txID uint64) (*accounts.Transfer, error)
	TotalBalance() (currency.Amount, error)
	Accounts() ([]accounts.Account, error)

	// SweepDedup garbage-collects op_dedup idempotency markers older
	// than cutoff, returning how many were removed.
	SweepDedup(cutoff time.Time) (int, error)

	// §5.2.1 admin operations.
	Deposit(id accounts.ID, amount currency.Amount) error
	Withdraw(id accounts.ID, amount currency.Amount) error
	ChangeCreditLimit(id accounts.ID, limit currency.Amount) error
	CancelTransfer(txID uint64) error
	CloseAccount(id, transferTo accounts.ID) error

	// Store returns the metadata store: where the bank core keeps
	// instrument and administrator tables (the whole ledger for a
	// single-store bank, shard 0 for a sharded one).
	Store() *db.Store

	// Shards / ShardFor / ShardManager / ShardStore expose account
	// placement and per-shard transactional access — the same shape the
	// usage and micropay settlement pipelines consume — so the bank can
	// compose instrument-state changes and money movement into one
	// store transaction on the owning shard (chain redemption must be
	// atomic with the chain row advance).
	Shards() int
	ShardFor(id accounts.ID) int
	ShardManager(i int) *accounts.Manager
	ShardStore(i int) *db.Store

	// ShardTopology reports the placement parameters clients need to
	// compute account→shard mapping locally: shard count and virtual
	// nodes per shard. (1, vnodes) means unsharded.
	ShardTopology() (shards, vnodes int)
}

// managerLedger adapts a single accounts.Manager (plus its admin
// module) to the Ledger interface.
type managerLedger struct {
	*accounts.Manager
}

func (m managerLedger) Deposit(id accounts.ID, amount currency.Amount) error {
	return m.Admin().Deposit(id, amount)
}

func (m managerLedger) Withdraw(id accounts.ID, amount currency.Amount) error {
	return m.Admin().Withdraw(id, amount)
}

func (m managerLedger) ChangeCreditLimit(id accounts.ID, limit currency.Amount) error {
	return m.Admin().ChangeCreditLimit(id, limit)
}

func (m managerLedger) CancelTransfer(txID uint64) error {
	return m.Admin().CancelTransfer(txID)
}

func (m managerLedger) CloseAccount(id, transferTo accounts.ID) error {
	return m.Admin().CloseAccount(id, transferTo)
}

func (m managerLedger) ShardTopology() (int, int) { return 1, shard.DefaultVnodes }

func (m managerLedger) Shards() int                        { return 1 }
func (m managerLedger) ShardFor(accounts.ID) int           { return 0 }
func (m managerLedger) ShardManager(int) *accounts.Manager { return m.Manager }
func (m managerLedger) ShardStore(int) *db.Store           { return m.Manager.Store() }

var _ Ledger = managerLedger{}
var _ Ledger = (*shard.Ledger)(nil)
