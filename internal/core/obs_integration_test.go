package core

import (
	"bytes"
	"errors"
	"net"
	"regexp"
	"sync"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/obs"
	"gridbank/internal/pki"
	"gridbank/internal/shard"
	"gridbank/internal/usage"
)

// spanCollector gathers server spans across dispatch goroutines (and,
// in the sharded test, across several servers feeding one collector).
type spanCollector struct {
	mu    sync.Mutex
	spans []Span
}

func (sc *spanCollector) add(s Span) {
	sc.mu.Lock()
	sc.spans = append(sc.spans, s)
	sc.mu.Unlock()
}

func (sc *spanCollector) byOp(op string) []Span {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	var out []Span
	for _, s := range sc.spans {
		if s.Op == op {
			out = append(out, s)
		}
	}
	return out
}

// TestTraceCarriedAcrossRetries pins the one-trace-per-logical-op
// guarantee: a routed UsageSubmit that is refused twice with
// overloaded and then accepted must show up server-side as three spans
// sharing a single trace ID — the retries are attempts of one
// operation, not three unrelated calls.
func TestTraceCarriedAcrossRetries(t *testing.T) {
	sc := &spanCollector{}
	lw := newLiveWorldWith(t, newTestWorld(t), func(srv *Server) {
		srv.OnSpan = sc.add
	})
	lw.bank.SetUsage(&flakyUsage{fails: 2})

	reg := obs.NewRegistry()
	rc, err := NewRoutedClient(lw.client(t, lw.admin), nil, RouteOptions{
		Retry:      RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
		Obs:        reg,
		TraceCalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.UsageSubmit([]usage.Submission{{
		ID: "traced-1", Drawer: lw.aliceAcct.AccountID, Recipient: lw.gspAcct.AccountID,
	}}); err != nil {
		t.Fatal(err)
	}

	spans := sc.byOp(OpUsageSubmit)
	if len(spans) != 3 {
		t.Fatalf("got %d Usage.Submit spans, want 3 (2 refusals + 1 success)", len(spans))
	}
	trace := spans[0].Trace
	if len(trace) != 24 {
		t.Fatalf("trace ID %q: want 24 hex chars", trace)
	}
	for i, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %d trace = %q, want %q (one ID across all retries)", i, s.Trace, trace)
		}
	}
	if spans[0].Code != CodeOverloaded || spans[1].Code != CodeOverloaded {
		t.Fatalf("refusal spans carry codes %q/%q, want %q", spans[0].Code, spans[1].Code, CodeOverloaded)
	}
	if !spans[2].OK || spans[2].Code != "ok" {
		t.Fatalf("final span = %+v, want ok", spans[2])
	}
	if got := reg.Counter("routed.retries").Value(); got != 2 {
		t.Fatalf("routed.retries = %d, want 2", got)
	}
}

// TestTraceCarriedAcrossWrongShardRedirect drives the stale-shard-map
// redirect with tracing on: the wrong replica's wrong_shard span and
// the right replica's serving span must carry the same trace ID, and
// the routed client's wrong_shard_refresh counter must record the
// map refresh.
func TestTraceCarriedAcrossWrongShardRedirect(t *testing.T) {
	ca, err := pki.NewCA("Obs Shard CA", "VO-OS", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-OS", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	const nShards = 3
	stores := make([]*db.Store, nShards)
	for i := range stores {
		stores[i] = db.MustOpenMemory()
	}
	led, err := shard.New(stores, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const admin = "CN=obs-shard-admin"
	bank, err := NewBankWithLedger(led, BankConfig{Identity: bankID, Trust: trust, Admins: []string{admin}})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := ca.Issue(pki.IssueOptions{CommonName: "alice", Organization: "VO-OS"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := bank.CreateAccount(alice.SubjectName(), &CreateAccountRequest{OrganizationName: "VO-OS"})
	if err != nil {
		t.Fatal(err)
	}
	acct := resp.Account.AccountID
	if _, err := bank.AdminDeposit(admin, &AdminAmountRequest{AccountID: acct, Amount: currency.FromG(75)}); err != nil {
		t.Fatal(err)
	}
	acctShard := led.ShardFor(acct)
	otherShard := (acctShard + 1) % nShards
	_, vnodes := led.ShardTopology()

	// One collector across the primary and both replicas: the trace ID
	// is exactly what lets spans from different processes correlate.
	sc := &spanCollector{}

	srv, err := NewServer(bank, bankID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	srv.OnSpan = sc.add
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	primaryAddr := ln.Addr().String()

	startReplica := func(shardIdx int) string {
		t.Helper()
		sn, err := stores[shardIdx].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		frozen, err := db.OpenFromSnapshot(sn, nil)
		if err != nil {
			t.Fatal(err)
		}
		src := &staticSource{store: frozen, seq: frozen.CurrentSeq(), addr: primaryAddr}
		repID, err := ca.Issue(pki.IssueOptions{CommonName: "rep", Organization: "VO-OS", IsServer: true})
		if err != nil {
			t.Fatal(err)
		}
		ro, err := NewReadOnlyBank(src, ReadOnlyBankConfig{
			Identity: repID, Trust: trust,
			Shard: &ShardInfo{Index: shardIdx, Count: nShards, Vnodes: vnodes},
		})
		if err != nil {
			t.Fatal(err)
		}
		rsrv, err := NewReadOnlyServer(ro, repID)
		if err != nil {
			t.Fatal(err)
		}
		rsrv.Logf = func(string, ...any) {}
		rsrv.OnSpan = sc.add
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go rsrv.Serve(rln)
		t.Cleanup(func() { rsrv.Close() })
		return rln.Addr().String()
	}
	wrongAddr := startReplica(otherShard)
	rightAddr := startReplica(acctShard)

	dial := func(addr string) *Client {
		t.Helper()
		c, err := Dial(addr, alice, trust)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	reg := obs.NewRegistry()
	routed, err := NewRoutedClient(dial(primaryAddr), []*Client{dial(wrongAddr), dial(rightAddr)}, RouteOptions{
		MaxStaleness:   time.Hour,
		StatusInterval: time.Hour,
		Obs:            reg,
		TraceCalls:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poison the map as after an unnoticed reshard: the wrong replica is
	// claimed to hold alice's shard.
	staleRing, err := shard.NewRing(nShards, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	routed.mu.Lock()
	routed.mapOnce = true
	routed.ring = staleRing
	routed.repShard = []int{acctShard, otherShard}
	routed.mu.Unlock()

	a, err := routed.AccountDetails(acct)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != currency.FromG(75) {
		t.Fatalf("routed read = %v, want the replica's 75 G$", a.AvailableBalance)
	}

	spans := sc.byOp(OpAccountDetails)
	if len(spans) < 2 {
		t.Fatalf("got %d Account.Details spans, want at least 2 (redirect + retry)", len(spans))
	}
	var redirected, served bool
	trace := spans[0].Trace
	if len(trace) != 24 {
		t.Fatalf("trace ID %q: want 24 hex chars", trace)
	}
	for i, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %d trace = %q, want %q (one ID across the redirect)", i, s.Trace, trace)
		}
		switch s.Code {
		case CodeWrongShard:
			redirected = true
		case "ok":
			served = true
		}
	}
	if !redirected || !served {
		t.Fatalf("spans %+v: want both a wrong_shard redirect and a served read", spans)
	}
	if got := reg.Counter("routed.wrong_shard_refresh").Value(); got != 1 {
		t.Fatalf("routed.wrong_shard_refresh = %d, want 1", got)
	}
}

// TestMetricsSnapshotOpAdminOnly exercises the Metrics.Snapshot wire
// op end to end: an administrator reads the live registry, a plain
// account holder is denied, and a bank without a registry answers
// Enabled=false instead of erroring (mixed-fleet scrapes degrade
// gracefully).
func TestMetricsSnapshotOpAdminOnly(t *testing.T) {
	reg := obs.NewRegistry()
	lw := newLiveWorldWith(t, newTestWorld(t), func(srv *Server) {
		srv.Obs = reg
	})
	lw.bank.SetObs(reg)

	admin := lw.client(t, lw.admin)
	if _, err := admin.Ping(); err != nil {
		t.Fatal(err)
	}
	snap, err := admin.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled {
		t.Fatal("Enabled = false with a live registry")
	}
	var requests int64 = -1
	for _, c := range snap.Snapshot.Counters {
		if c.Name == "server.requests" {
			requests = c.Value
		}
	}
	if requests < 1 {
		t.Fatalf("server.requests = %d in snapshot, want >= 1 (the Ping)", requests)
	}
	var pingLatency bool
	for _, h := range snap.Snapshot.Hists {
		if h.Name == "server.op."+OpPing+".latency" && h.Count >= 1 {
			pingLatency = true
		}
	}
	if !pingLatency {
		t.Fatal("snapshot lacks a populated server.op.Ping.latency histogram")
	}

	alice := lw.client(t, lw.alice)
	if _, err := alice.MetricsSnapshot(); !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("non-admin snapshot = %v, want code %q", err, CodeDenied)
	}

	// A bank with no registry attached still answers, flagged disabled.
	bare := newLiveWorld(t)
	snap, err = bare.client(t, bare.admin).MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Enabled || len(snap.Snapshot.Counters) != 0 {
		t.Fatalf("bare snapshot = %+v, want Enabled=false and empty", snap)
	}
}

// TestReplicaMetricsSnapshotAdminGate proves replicas answer
// Metrics.Snapshot exactly like primaries — behind the replicated
// admin table — so one admin scrape covers the whole fleet.
func TestReplicaMetricsSnapshotAdminGate(t *testing.T) {
	f := newROFixture(t)

	snap, err := f.ro.MetricsSnapshot(f.admin)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Enabled {
		t.Fatal("Enabled = true with no registry attached")
	}
	if _, err := f.ro.MetricsSnapshot(f.owner.SubjectName()); !errors.Is(err, ErrDenied) {
		t.Fatalf("owner snapshot = %v, want ErrDenied", err)
	}

	// Attach a registry: the replica's own process metrics surface.
	reg := obs.NewRegistry()
	reg.Counter("replica.bootstraps").Inc()
	f.ro.cfg.Obs = reg
	snap, err = f.ro.MetricsSnapshot(f.admin)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || len(snap.Snapshot.Counters) != 1 || snap.Snapshot.Counters[0].Name != "replica.bootstraps" {
		t.Fatalf("replica snapshot = %+v, want the attached registry's counter", snap)
	}
}

// TestSlowOpLogThresholdZero is the ISSUE acceptance check: with the
// threshold at zero every span is "slow", so a single traced call must
// surface its queue wait, handler latency and outcome — stamped with
// the caller's trace ID — in one structured log line.
func TestSlowOpLogThresholdZero(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	lw := newLiveWorldWith(t, newTestWorld(t), func(srv *Server) {
		srv.Obs = reg
		srv.SlowOpLog = obs.NewLogger(&buf, obs.LevelInfo)
		srv.SlowOpThreshold = 0
	})

	c := lw.client(t, lw.alice)
	c.TraceCalls = true
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	line := buf.String()
	if line == "" {
		t.Fatal("slow-op log empty after a traced call at threshold 0")
	}
	for _, want := range []string{"slow op", "op=" + OpPing, "queue_wait_us=", "handler_us=", "ok=true", "code=ok"} {
		if !bytes.Contains([]byte(line), []byte(want)) {
			t.Fatalf("slow-op line %q lacks %q", line, want)
		}
	}
	m := regexp.MustCompile(`trace=([0-9a-f]{24})`).FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("slow-op line %q lacks a 24-hex-char trace ID", line)
	}
	if got := reg.Counter("server.slow_ops").Value(); got < 1 {
		t.Fatalf("server.slow_ops = %d, want >= 1", got)
	}
}
