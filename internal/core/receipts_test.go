package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"gridbank/internal/currency"
)

// TestBatchReceiptRoundTrip drives the opt-in batched path through the
// public API: a DirectTransfer with BatchReceipt set returns a
// BatchReceiptProof instead of a per-transfer signature, and the proof
// verifies against the trust store back to the exact receipt.
func TestBatchReceiptRoundTrip(t *testing.T) {
	w := newTestWorld(t)
	resp, err := w.bank.DirectTransfer(w.alice.SubjectName(), &DirectTransferRequest{
		FromAccountID: w.aliceAcct.AccountID,
		ToAccountID:   w.gspAcct.AccountID,
		Amount:        currency.FromG(3),
		BatchReceipt:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Receipt != nil {
		t.Fatal("batched transfer also carried a per-transfer signature")
	}
	if resp.BatchProof == nil {
		t.Fatal("batched transfer returned no proof")
	}
	rcpt, signer, err := VerifyBatchReceipt(resp.BatchProof, w.ts, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if signer != w.bankID.SubjectName() {
		t.Errorf("signer = %s", signer)
	}
	if rcpt.TransactionID != resp.TransactionID || rcpt.Amount != currency.FromG(3) ||
		rcpt.Drawer != w.aliceAcct.AccountID || rcpt.Recipient != w.gspAcct.AccountID {
		t.Errorf("receipt = %+v", rcpt)
	}
}

// TestBatchReceiptAmortizesSignatures is the point of the batcher:
// concurrent opt-in transfers that land inside one batch window share a
// single signed envelope — one ECDSA signature for the lot — while each
// caller still gets a proof of its own receipt.
func TestBatchReceiptAmortizesSignatures(t *testing.T) {
	w := newTestWorld(t)
	const n = 16
	proofs := make([]*BatchReceiptProof, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := w.bank.DirectTransfer(w.alice.SubjectName(), &DirectTransferRequest{
				FromAccountID: w.aliceAcct.AccountID,
				ToAccountID:   w.gspAcct.AccountID,
				Amount:        currency.FromG(1),
				BatchReceipt:  true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			proofs[i] = resp.BatchProof
		}(i)
	}
	wg.Wait()

	envelopes := map[string]int{}
	indices := map[string]map[int]bool{}
	for _, p := range proofs {
		if p == nil {
			t.Fatal("missing proof")
		}
		rcpt, _, err := VerifyBatchReceipt(p, w.ts, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		if rcpt.Amount != currency.FromG(1) {
			t.Fatalf("receipt = %+v", rcpt)
		}
		key := string(p.Envelope.Signature)
		envelopes[key]++
		if indices[key] == nil {
			indices[key] = map[int]bool{}
		}
		if indices[key][p.Index] {
			t.Fatalf("two transfers share envelope index %d", p.Index)
		}
		indices[key][p.Index] = true
	}
	if len(envelopes) >= n {
		t.Errorf("no amortization: %d transfers produced %d signatures", n, len(envelopes))
	}
	t.Logf("%d transfers across %d signatures", n, len(envelopes))
}

// TestBatchReceiptProofTamperRefused: a proof whose index points at a
// different receipt in the batch, an index out of range, and a tampered
// envelope must all fail verification.
func TestBatchReceiptProofTamperRefused(t *testing.T) {
	w := newTestWorld(t)
	resp, err := w.bank.DirectTransfer(w.alice.SubjectName(), &DirectTransferRequest{
		FromAccountID: w.aliceAcct.AccountID,
		ToAccountID:   w.gspAcct.AccountID,
		Amount:        currency.FromG(2),
		BatchReceipt:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	proof := resp.BatchProof

	oob := *proof
	oob.Index = 99
	if _, _, err := VerifyBatchReceipt(&oob, w.ts, time.Now()); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range index err = %v", err)
	}
	neg := *proof
	neg.Index = -1
	if _, _, err := VerifyBatchReceipt(&neg, w.ts, time.Now()); err == nil {
		t.Error("negative index accepted")
	}
	if _, _, err := VerifyBatchReceipt(nil, w.ts, time.Now()); err == nil {
		t.Error("nil proof accepted")
	}
	forged := *proof
	env := *proof.Envelope
	env.Payload = append([]byte(nil), env.Payload...)
	if len(env.Payload) > 0 {
		env.Payload[0] ^= 1
	}
	forged.Envelope = &env
	if _, _, err := VerifyBatchReceipt(&forged, w.ts, time.Now()); err == nil {
		t.Error("tampered envelope accepted")
	}
}

// TestReceiptBatcherSequentialGroups: after one group seals, the next
// transfer opens a fresh group rather than reusing the sealed one.
func TestReceiptBatcherSequentialGroups(t *testing.T) {
	w := newTestWorld(t)
	send := func() *BatchReceiptProof {
		resp, err := w.bank.DirectTransfer(w.alice.SubjectName(), &DirectTransferRequest{
			FromAccountID: w.aliceAcct.AccountID,
			ToAccountID:   w.gspAcct.AccountID,
			Amount:        currency.FromG(1),
			BatchReceipt:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp.BatchProof
	}
	p1 := send()
	p2 := send()
	if p1.Index != 0 || p2.Index != 0 {
		t.Errorf("sequential singleton batches: indices %d, %d", p1.Index, p2.Index)
	}
	if string(p1.Envelope.Signature) == string(p2.Envelope.Signature) {
		t.Error("sealed envelope was reused for a later transfer")
	}
}
