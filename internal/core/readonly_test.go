package core

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/replica"
)

// staticSource serves a fixed store with configurable staleness — the
// in-process stand-in for a replica follower.
type staticSource struct {
	store *db.Store
	seq   uint64
	stale time.Duration
	addr  string
}

func (s *staticSource) Store() *db.Store { return s.store }
func (s *staticSource) Progress() (uint64, uint64, time.Duration, error) {
	if s.store == nil {
		return 0, 0, 0, errors.New("not bootstrapped")
	}
	return s.seq, s.seq, s.stale, nil
}
func (s *staticSource) PrimaryAddr() string { return s.addr }

// roFixture builds a primary bank with a funded account, then a
// ReadOnlyBank over the very same store (zero replication lag).
type roFixture struct {
	bank  *Bank
	ro    *ReadOnlyBank
	owner *pki.Identity
	acct  accounts.ID
	admin string
}

func newROFixture(t *testing.T) *roFixture {
	t.Helper()
	ca, err := pki.NewCA("RO CA", "VO-RO", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-RO", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := ca.Issue(pki.IssueOptions{CommonName: "alice", Organization: "VO-RO"})
	if err != nil {
		t.Fatal(err)
	}
	trust := pki.NewTrustStore(ca.Certificate())
	const admin = "CN=ro-admin"
	store := db.MustOpenMemory()
	bank, err := NewBank(store, BankConfig{Identity: bankID, Trust: trust, Admins: []string{admin}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := bank.CreateAccount(owner.SubjectName(), &CreateAccountRequest{OrganizationName: "VO-RO"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank.AdminDeposit(admin, &AdminAmountRequest{AccountID: resp.Account.AccountID, Amount: currency.FromG(100)}); err != nil {
		t.Fatal(err)
	}
	src := &staticSource{store: store, seq: store.CurrentSeq(), addr: "primary.example:7776"}
	ro, err := NewReadOnlyBank(src, ReadOnlyBankConfig{Identity: bankID, Trust: trust})
	if err != nil {
		t.Fatal(err)
	}
	return &roFixture{bank: bank, ro: ro, owner: owner, acct: resp.Account.AccountID, admin: admin}
}

func TestReadOnlyBankServesQuerySubset(t *testing.T) {
	f := newROFixture(t)
	subject := f.owner.SubjectName()

	// The connection gate works against replicated state.
	if err := f.ro.Authorize(subject); err != nil {
		t.Fatalf("Authorize(owner) = %v", err)
	}
	if err := f.ro.Authorize("CN=stranger"); err == nil {
		t.Fatal("Authorize(stranger) passed")
	}

	d, err := f.ro.AccountDetails(subject, &AccountDetailsRequest{AccountID: f.acct})
	if err != nil {
		t.Fatal(err)
	}
	if d.Account.AvailableBalance != currency.FromG(100) {
		t.Fatalf("replica balance = %v", d.Account.AvailableBalance)
	}
	// Ownership still enforced.
	if _, err := f.ro.AccountDetails("CN=stranger", &AccountDetailsRequest{AccountID: f.acct}); !errors.Is(err, ErrDenied) {
		t.Fatalf("stranger read = %v, want ErrDenied", err)
	}

	st, err := f.ro.AccountStatement(subject, &AccountStatementRequest{
		AccountID: f.acct,
		Start:     time.Now().Add(-time.Hour),
		End:       time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Statement.Transactions) == 0 {
		t.Fatal("statement empty despite deposit")
	}

	// Admin read works; the admin table replicated.
	if !f.ro.IsAdmin(f.admin) {
		t.Fatal("replicated admin not recognized")
	}
	as, err := f.ro.AdminListAccounts(f.admin)
	if err != nil || len(as.Accounts) != 1 {
		t.Fatalf("AdminListAccounts = %v, %v", as, err)
	}

	status, err := f.ro.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status.Role != RoleReplica || status.PrimaryAddr != "primary.example:7776" {
		t.Fatalf("status = %+v", status)
	}
}

func TestReadOnlyBankRedirectsMutations(t *testing.T) {
	f := newROFixture(t)
	subject := f.owner.SubjectName()

	mutations := map[string]func() error{
		OpCreateAccount: func() error {
			_, err := f.ro.CreateAccount(subject, &CreateAccountRequest{})
			return err
		},
		OpUpdateAccount: func() error {
			_, err := f.ro.UpdateAccount(subject, &UpdateAccountRequest{AccountID: f.acct, CertificateName: subject})
			return err
		},
		OpCheckFunds: func() error {
			_, err := f.ro.CheckFunds(subject, &CheckFundsRequest{AccountID: f.acct, Amount: currency.FromG(1)})
			return err
		},
		OpDirectTransfer: func() error {
			_, err := f.ro.DirectTransfer(subject, &DirectTransferRequest{FromAccountID: f.acct, ToAccountID: f.acct, Amount: currency.FromG(1)})
			return err
		},
		OpRequestCheque: func() error {
			_, err := f.ro.RequestCheque(subject, &RequestChequeRequest{AccountID: f.acct, Amount: currency.FromG(1), PayeeCert: "CN=x"})
			return err
		},
		OpRedeemCheque: func() error {
			_, err := f.ro.RedeemCheque(subject, &RedeemChequeRequest{})
			return err
		},
		OpRequestChain: func() error {
			_, err := f.ro.RequestChain(subject, &RequestChainRequest{AccountID: f.acct, PayeeCert: "CN=x", Length: 1, PerWord: currency.FromG(1)})
			return err
		},
		OpRedeemChain: func() error {
			_, err := f.ro.RedeemChain(subject, &RedeemChainRequest{})
			return err
		},
		OpReleaseCheque: func() error {
			_, err := f.ro.ReleaseCheque(subject, &ReleaseRequest{Serial: "s"})
			return err
		},
		OpReleaseChain: func() error {
			_, err := f.ro.ReleaseChain(subject, &ReleaseRequest{Serial: "s"})
			return err
		},
		OpAdminDeposit: func() error {
			_, err := f.ro.AdminDeposit(f.admin, &AdminAmountRequest{AccountID: f.acct, Amount: currency.FromG(1)})
			return err
		},
		OpAdminWithdraw: func() error {
			_, err := f.ro.AdminWithdraw(f.admin, &AdminAmountRequest{AccountID: f.acct, Amount: currency.FromG(1)})
			return err
		},
		OpAdminCreditLimit: func() error {
			_, err := f.ro.AdminChangeCreditLimit(f.admin, &AdminAmountRequest{AccountID: f.acct, Amount: currency.FromG(1)})
			return err
		},
		OpAdminCancel: func() error {
			_, err := f.ro.AdminCancelTransfer(f.admin, &AdminCancelRequest{TransactionID: 1})
			return err
		},
		OpAdminClose: func() error {
			_, err := f.ro.AdminCloseAccount(f.admin, &AdminCloseRequest{AccountID: f.acct})
			return err
		},
	}
	for op, fn := range mutations {
		err := fn()
		if !errors.Is(err, ErrReadOnly) {
			t.Fatalf("%s on replica = %v, want ErrReadOnly", op, err)
		}
		if !strings.Contains(err.Error(), "primary.example:7776") {
			t.Fatalf("%s redirect does not name the primary: %v", op, err)
		}
		if ErrorCode(err) != CodeReadOnly {
			t.Fatalf("%s maps to code %q, want %q", op, ErrorCode(err), CodeReadOnly)
		}
	}
}

func TestReadOnlyBankNotReady(t *testing.T) {
	ca, err := pki.NewCA("RO CA", "VO-RO", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.Issue(pki.IssueOptions{CommonName: "replica", Organization: "VO-RO", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := NewReadOnlyBank(&staticSource{}, ReadOnlyBankConfig{Identity: id, Trust: pki.NewTrustStore(ca.Certificate())})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ro.AccountDetails("CN=x", &AccountDetailsRequest{AccountID: "01-0001-00000001"})
	if !errors.Is(err, ErrReplicaNotReady) {
		t.Fatalf("query before bootstrap = %v, want ErrReplicaNotReady", err)
	}
	if ErrorCode(err) != CodeUnavailable {
		t.Fatalf("code = %q, want %q", ErrorCode(err), CodeUnavailable)
	}
}

// replicatedWorld is the full stack: primary bank + TLS server +
// publisher, one follower + read-only server, real wire protocol
// everywhere.
type replicatedWorld struct {
	ca      *pki.CA
	trust   *pki.TrustStore
	bank    *Bank
	store   *db.Store
	primary string // primary API addr
	pub     *replica.Publisher
	fol     *replica.Follower
	repAddr string // replica API addr
	admin   *pki.Identity
}

func newReplicatedWorld(t *testing.T) *replicatedWorld {
	t.Helper()
	ca, err := pki.NewCA("Rep CA", "VO-REP", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-REP", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	repID, err := ca.Issue(pki.IssueOptions{CommonName: "replica-1", Organization: "VO-REP", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	adminID, err := ca.Issue(pki.IssueOptions{CommonName: "banker", Organization: "VO-REP"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := db.Open(db.NewMemJournal())
	if err != nil {
		t.Fatal(err)
	}
	bank, err := NewBank(store, BankConfig{Identity: bankID, Trust: trust, Admins: []string{adminID.SubjectName()}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(bank, bankID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	primaryAddr := ln.Addr().String()

	pub, err := replica.NewPublisher(replica.PublisherConfig{
		Store:       store,
		Identity:    bankID,
		Trust:       trust,
		PrimaryAddr: primaryAddr,
		Heartbeat:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go pub.Serve(pln)
	t.Cleanup(func() { pub.Close() })

	fol, err := replica.StartFollower(replica.FollowerConfig{
		PublisherAddr: pln.Addr().String(),
		Identity:      repID,
		Trust:         trust,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	if err := fol.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	ro, err := NewReadOnlyBank(fol, ReadOnlyBankConfig{Identity: repID, Trust: trust})
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := NewReadOnlyServer(ro, repID)
	if err != nil {
		t.Fatal(err)
	}
	rsrv.Logf = func(string, ...any) {}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve(rln)
	t.Cleanup(func() { rsrv.Close() })

	return &replicatedWorld{
		ca: ca, trust: trust, bank: bank, store: store,
		primary: primaryAddr, pub: pub, fol: fol,
		repAddr: rln.Addr().String(), admin: adminID,
	}
}

func (w *replicatedWorld) user(t *testing.T, name string) *pki.Identity {
	t.Helper()
	id, err := w.ca.Issue(pki.IssueOptions{CommonName: name, Organization: "VO-REP"})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func (w *replicatedWorld) dial(t *testing.T, id *pki.Identity, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, id, w.trust)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// sync blocks until the follower has applied the primary's current seq.
func (w *replicatedWorld) sync(t *testing.T) {
	t.Helper()
	if err := w.fol.WaitForSeq(w.store.CurrentSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaServesReadsOverWireAndRedirectsWrites(t *testing.T) {
	w := newReplicatedWorld(t)
	alice := w.user(t, "alice")

	// Account opened and funded on the primary.
	pc := w.dial(t, alice, w.primary)
	acct, err := pc.CreateAccount("VO-REP", "")
	if err != nil {
		t.Fatal(err)
	}
	ac := w.dial(t, w.admin, w.primary)
	if err := ac.AdminDeposit(acct.AccountID, currency.FromG(250)); err != nil {
		t.Fatal(err)
	}
	w.sync(t)

	// The same credentials read the balance from the replica.
	rc := w.dial(t, alice, w.repAddr)
	got, err := rc.AccountDetails(acct.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if got.AvailableBalance != currency.FromG(250) {
		t.Fatalf("replica balance = %v, want 250 G$", got.AvailableBalance)
	}
	st, err := rc.AccountStatement(acct.AccountID, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Transactions) == 0 {
		t.Fatal("replica statement empty")
	}
	status, err := rc.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status.Role != RoleReplica || status.PrimaryAddr != w.primary {
		t.Fatalf("replica status = %+v", status)
	}

	// Mutations on the replica redirect to the primary.
	_, err = rc.DirectTransfer(acct.AccountID, acct.AccountID, currency.FromG(1), "")
	if !IsRemoteCode(err, CodeReadOnly) {
		t.Fatalf("transfer on replica = %v, want code %q", err, CodeReadOnly)
	}
	if !strings.Contains(err.Error(), w.primary) {
		t.Fatalf("redirect error does not name primary %s: %v", w.primary, err)
	}

	// Sustained writes on the primary converge on the replica.
	bob := w.user(t, "bob")
	bc := w.dial(t, bob, w.primary)
	bacct, err := bc.CreateAccount("VO-REP", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := pc.DirectTransfer(acct.AccountID, bacct.AccountID, currency.FromG(1), ""); err != nil {
			t.Fatal(err)
		}
	}
	w.sync(t)
	brc := w.dial(t, bob, w.repAddr)
	got, err = brc.AccountDetails(bacct.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if got.AvailableBalance != currency.FromG(50) {
		t.Fatalf("replica sees %v after 50 transfers, want 50 G$", got.AvailableBalance)
	}
}

func TestRoutedClientHonorsStalenessBound(t *testing.T) {
	w := newReplicatedWorld(t)
	alice := w.user(t, "alice")
	pc := w.dial(t, alice, w.primary)
	acct, err := pc.CreateAccount("VO-REP", "")
	if err != nil {
		t.Fatal(err)
	}
	ac := w.dial(t, w.admin, w.primary)
	if err := ac.AdminDeposit(acct.AccountID, currency.FromG(10)); err != nil {
		t.Fatal(err)
	}
	w.sync(t)

	primary := w.dial(t, alice, w.primary)
	replicaCli := w.dial(t, alice, w.repAddr)
	routed, err := NewRoutedClient(primary, []*Client{replicaCli}, RouteOptions{
		MaxStaleness:   300 * time.Millisecond,
		StatusInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy replica within bound: reads succeed (served by the
	// replica — verified by its correct, replicated balance).
	a, err := routed.AccountDetails(acct.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != currency.FromG(10) {
		t.Fatalf("routed read = %v", a.AvailableBalance)
	}

	// Mutations go to the primary even with replicas configured.
	if err := ac.AdminDeposit(acct.AccountID, currency.FromG(5)); err != nil {
		t.Fatal(err)
	}
	w.sync(t)

	// Kill replication: staleness grows past the bound, and a write the
	// replica will never see lands on the primary. The routed read must
	// fall back to the primary and return the fresh balance.
	w.fol.Close()
	if err := ac.AdminDeposit(acct.AccountID, currency.FromG(85)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		a, err = routed.AccountDetails(acct.AccountID)
		if err != nil {
			t.Fatal(err)
		}
		if a.AvailableBalance == currency.FromG(100) {
			break // primary served: replica never applied the 85
		}
		if time.Now().After(deadline) {
			t.Fatalf("routed reads still served stale balance %v after staleness exceeded bound", a.AvailableBalance)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
