package core

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

// RemoteError is a failure reported by the GridBank server.
type RemoteError struct {
	Code    string
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("gridbank server: %s (%s)", e.Message, e.Code)
}

// IsRemoteCode reports whether err is a RemoteError with the given code.
func IsRemoteCode(err error, code string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == code
}

// Client is the GridBank client: the transport beneath both the GridBank
// Payment Module (consumer side, §3.3/§5.3) and the GridBank Charging
// Module's redemption calls (provider side). It authenticates with a
// proxy or identity certificate and serializes requests over one TLS
// connection, reconnecting on demand.
type Client struct {
	addr string
	cfg  *tls.Config

	mu   sync.Mutex
	conn *wire.Conn
	raw  net.Conn
	next uint64

	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
}

// Dial creates a client for the GridBank server at addr, authenticating
// as the given identity (typically a user proxy, preserving single
// sign-on) and trusting servers signed by the trust store's CAs.
func Dial(addr string, id *pki.Identity, ts *pki.TrustStore) (*Client, error) {
	cfg, err := pki.ClientTLSConfig(id, ts)
	if err != nil {
		return nil, err
	}
	return &Client{addr: addr, cfg: cfg, DialTimeout: 10 * time.Second}, nil
}

func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	d := net.Dialer{Timeout: c.DialTimeout}
	raw, err := d.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("core: dial %s: %w", c.addr, err)
	}
	tconn := tls.Client(raw, c.cfg)
	ctx, cancel := context.WithTimeout(context.Background(), c.DialTimeout)
	defer cancel()
	if err := tconn.HandshakeContext(ctx); err != nil {
		raw.Close()
		return fmt.Errorf("core: tls handshake with %s: %w", c.addr, err)
	}
	c.raw = tconn
	c.conn = wire.NewConn(tconn)
	return nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.raw != nil {
		err := c.raw.Close()
		c.raw, c.conn = nil, nil
		return err
	}
	return nil
}

// call performs one request/response round trip. A transport error
// invalidates the connection (next call redials).
func (c *Client) call(op string, in, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(); err != nil {
		return err
	}
	var body []byte
	if in != nil {
		raw, err := wire.Encode(in)
		if err != nil {
			return err
		}
		body = raw
	}
	c.next++
	req := &wire.Request{ID: c.next, Op: op, Body: body}
	if err := c.conn.WriteRequest(req); err != nil {
		c.dropConnLocked()
		return fmt.Errorf("core: send %s: %w", op, err)
	}
	resp, err := c.conn.ReadResponse()
	if err != nil {
		c.dropConnLocked()
		return fmt.Errorf("core: receive %s: %w", op, err)
	}
	if resp.ID != req.ID {
		c.dropConnLocked()
		return fmt.Errorf("core: response ID %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return &RemoteError{Code: resp.Code, Message: resp.Error}
	}
	if out != nil {
		return wire.Decode(resp.Body, out)
	}
	return nil
}

func (c *Client) dropConnLocked() {
	if c.raw != nil {
		c.raw.Close()
	}
	c.raw, c.conn = nil, nil
}

// Call invokes an arbitrary (e.g. custom-registered) operation: the
// client side of the §3.2 payment-scheme extension point.
func (c *Client) Call(op string, in, out any) error { return c.call(op, in, out) }

// ReplicaStatus reports the server's replication role, position and
// staleness (zero staleness on a primary).
func (c *Client) ReplicaStatus() (*ReplicaStatusResponse, error) {
	var out ReplicaStatusResponse
	if err := c.call(OpReplicaStatus, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardMap fetches the server's shard placement parameters: ring shape
// on a primary, ring shape plus own shard index on a shard replica.
func (c *Client) ShardMap() (*ShardMapResponse, error) {
	var out ShardMapResponse
	if err := c.call(OpShardMap, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ping checks connectivity and returns the bank's subject name.
func (c *Client) Ping() (string, error) {
	var out map[string]string
	if err := c.call(OpPing, nil, &out); err != nil {
		return "", err
	}
	return out["bank"], nil
}

// CreateAccount opens an account for the authenticated subject.
func (c *Client) CreateAccount(org string, cur currency.Code) (*accounts.Account, error) {
	var out CreateAccountResponse
	if err := c.call(OpCreateAccount, &CreateAccountRequest{OrganizationName: org, Currency: cur}, &out); err != nil {
		return nil, err
	}
	return &out.Account, nil
}

// AccountDetails fetches an account record.
func (c *Client) AccountDetails(id accounts.ID) (*accounts.Account, error) {
	var out AccountDetailsResponse
	if err := c.call(OpAccountDetails, &AccountDetailsRequest{AccountID: id}, &out); err != nil {
		return nil, err
	}
	return &out.Account, nil
}

// UpdateAccount amends certificate/organization names.
func (c *Client) UpdateAccount(id accounts.ID, certName, orgName string) (*accounts.Account, error) {
	var out AccountDetailsResponse
	req := &UpdateAccountRequest{AccountID: id, CertificateName: certName, OrganizationName: orgName}
	if err := c.call(OpUpdateAccount, req, &out); err != nil {
		return nil, err
	}
	return &out.Account, nil
}

// AccountStatement fetches transactions in [start, end].
func (c *Client) AccountStatement(id accounts.ID, start, end time.Time) (*accounts.Statement, error) {
	var out AccountStatementResponse
	if err := c.call(OpAccountStatement, &AccountStatementRequest{AccountID: id, Start: start, End: end}, &out); err != nil {
		return nil, err
	}
	return &out.Statement, nil
}

// CheckFunds locks amount as a payment guarantee.
func (c *Client) CheckFunds(id accounts.ID, amount currency.Amount) error {
	var out ConfirmationResponse
	return c.call(OpCheckFunds, &CheckFundsRequest{AccountID: id, Amount: amount}, &out)
}

// DirectTransfer performs a pay-before-use transfer, returning the signed
// receipt.
func (c *Client) DirectTransfer(from, to accounts.ID, amount currency.Amount, recipientAddr string) (*DirectTransferResponse, error) {
	var out DirectTransferResponse
	req := &DirectTransferRequest{FromAccountID: from, ToAccountID: to, Amount: amount, RecipientAddress: recipientAddr}
	if err := c.call(OpDirectTransfer, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RequestCheque obtains a GridCheque made out to payeeCert, locking
// amount.
func (c *Client) RequestCheque(id accounts.ID, amount currency.Amount, payeeCert string, ttl time.Duration) (*payment.SignedCheque, error) {
	var out RequestChequeResponse
	req := &RequestChequeRequest{AccountID: id, Amount: amount, PayeeCert: payeeCert, TTL: ttl}
	if err := c.call(OpRequestCheque, req, &out); err != nil {
		return nil, err
	}
	return &out.Cheque, nil
}

// RedeemCheque settles a cheque claim (provider side).
func (c *Client) RedeemCheque(cheque *payment.SignedCheque, claim *payment.ChequeClaim) (*RedeemChequeResponse, error) {
	var out RedeemChequeResponse
	req := &RedeemChequeRequest{Cheque: *cheque, Claim: *claim}
	if err := c.call(OpRedeemCheque, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RequestChain obtains a GridHash chain: the signed commitment plus the
// secret seed.
func (c *Client) RequestChain(id accounts.ID, payeeCert string, length int, perWord currency.Amount, ttl time.Duration) (*payment.Chain, *payment.SignedChain, error) {
	var out RequestChainResponse
	req := &RequestChainRequest{AccountID: id, PayeeCert: payeeCert, Length: length, PerWord: perWord, TTL: ttl}
	if err := c.call(OpRequestChain, req, &out); err != nil {
		return nil, nil, err
	}
	chain := &payment.Chain{Commitment: out.Chain.Commitment, Seed: out.Seed}
	if err := chain.Rederive(); err != nil {
		return nil, nil, fmt.Errorf("core: server returned inconsistent chain: %w", err)
	}
	return chain, &out.Chain, nil
}

// RedeemChain settles a chain claim incrementally (provider side).
func (c *Client) RedeemChain(chain *payment.SignedChain, claim *payment.ChainClaim) (*RedeemChainResponse, error) {
	var out RedeemChainResponse
	req := &RedeemChainRequest{Chain: *chain, Claim: *claim}
	if err := c.call(OpRedeemChain, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReleaseCheque releases an expired cheque's lock (drawer side).
func (c *Client) ReleaseCheque(serial string) (currency.Amount, error) {
	var out ReleaseResponse
	if err := c.call(OpReleaseCheque, &ReleaseRequest{Serial: serial}, &out); err != nil {
		return 0, err
	}
	return out.Released, nil
}

// ReleaseChain releases an expired chain's remaining lock (drawer side).
func (c *Client) ReleaseChain(serial string) (currency.Amount, error) {
	var out ReleaseResponse
	if err := c.call(OpReleaseChain, &ReleaseRequest{Serial: serial}, &out); err != nil {
		return 0, err
	}
	return out.Released, nil
}

// --- Admin client (§5.2.1) --------------------------------------------------

// AdminDeposit credits an account (administrator caller).
func (c *Client) AdminDeposit(id accounts.ID, amount currency.Amount) error {
	var out ConfirmationResponse
	return c.call(OpAdminDeposit, &AdminAmountRequest{AccountID: id, Amount: amount}, &out)
}

// AdminWithdraw debits an account (administrator caller).
func (c *Client) AdminWithdraw(id accounts.ID, amount currency.Amount) error {
	var out ConfirmationResponse
	return c.call(OpAdminWithdraw, &AdminAmountRequest{AccountID: id, Amount: amount}, &out)
}

// AdminChangeCreditLimit sets a credit limit (administrator caller).
func (c *Client) AdminChangeCreditLimit(id accounts.ID, limit currency.Amount) error {
	var out ConfirmationResponse
	return c.call(OpAdminCreditLimit, &AdminAmountRequest{AccountID: id, Amount: limit}, &out)
}

// AdminCancelTransfer reverses a transfer (administrator caller).
func (c *Client) AdminCancelTransfer(txID uint64) error {
	var out ConfirmationResponse
	return c.call(OpAdminCancel, &AdminCancelRequest{TransactionID: txID}, &out)
}

// AdminCloseAccount closes an account (administrator caller).
func (c *Client) AdminCloseAccount(id, transferTo accounts.ID) error {
	var out ConfirmationResponse
	return c.call(OpAdminClose, &AdminCloseRequest{AccountID: id, TransferTo: transferTo}, &out)
}

// AdminListAccounts lists all accounts (administrator caller).
func (c *Client) AdminListAccounts() ([]accounts.Account, error) {
	var out AdminAccountsResponse
	if err := c.call(OpAdminAccounts, nil, &out); err != nil {
		return nil, err
	}
	return out.Accounts, nil
}
