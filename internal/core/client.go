package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/tls"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/obs"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

// RemoteError is a failure reported by the GridBank server.
type RemoteError struct {
	Code    string
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("gridbank server: %s (%s)", e.Message, e.Code)
}

// IsRemoteCode reports whether err is a RemoteError with the given code.
func IsRemoteCode(err error, code string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == code
}

// Client is the GridBank client: the transport beneath both the GridBank
// Payment Module (consumer side, §3.3/§5.3) and the GridBank Charging
// Module's redemption calls (provider side). It authenticates with a
// proxy or identity certificate and pipelines requests over one TLS
// connection, reconnecting on demand.
//
// The connection is multiplexed: each call registers an in-flight entry
// keyed by its request ID, sends under a short write lock, and parks on
// a per-call channel while a single reader goroutine demuxes responses
// by ID — concurrent callers share the connection without serializing
// their round trips. A transport error fails every in-flight call; the
// next call redials.
type Client struct {
	addr string
	cfg  *tls.Config

	mu   sync.Mutex
	conn *clientConn
	next uint64

	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration

	// CallTimeout bounds each request/response exchange. Zero selects
	// DefaultCallTimeout; negative disables the deadline (a caller that
	// truly wants to park forever must say so). The budget rides the
	// request header as deadline_ms so the server can shed work whose
	// caller has already given up. A timed-out call fails alone — the
	// connection and its sibling in-flight calls stay healthy, and a
	// late response is discarded instead of treated as a protocol
	// violation.
	CallTimeout time.Duration

	// OfferCodecs lists wire codecs to offer the server at dial time, in
	// preference order (e.g. [wire.CodecBin1, wire.CodecJSON]). When it
	// names anything beyond the seed JSON codec, each fresh connection
	// starts with a blocking Ping that carries the offer; if the server
	// confirms a codec, both directions switch to it before any other
	// traffic. Empty (the default) skips the handshake entirely — every
	// frame stays byte-identical to the seed protocol, and seed servers
	// interoperate unmodified (they ignore the unknown offer field and
	// the connection stays JSON). Set before the first call.
	OfferCodecs []string

	// Obs instruments the client (per-op call latency, in-flight calls,
	// send-batch sizes, call timeouts). Nil disables. Set before the
	// first call.
	Obs *obs.Registry
	// TraceCalls stamps every outgoing request with a fresh trace ID in
	// the optional wire trace header (untraced requests stay
	// byte-identical to seed framing). Calls carrying an explicit trace
	// — RoutedClient pins one ID per logical operation — keep theirs.
	// Set before the first call.
	TraceCalls bool

	metOnce sync.Once
	met     *clientMetrics
}

// clientMetrics mirrors serverMetrics on the calling side: handles
// resolved once, nil no-ops when Obs is unset.
type clientMetrics struct {
	inflight  *obs.Gauge
	timeouts  *obs.Counter
	sendBatch *obs.Histogram
	opLatency map[string]*obs.Histogram

	reg *obs.Registry
	mu  sync.RWMutex
}

func (m *clientMetrics) latencyFor(op string) *obs.Histogram {
	if m.reg == nil {
		return nil
	}
	m.mu.RLock()
	h := m.opLatency[op]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	h = m.reg.Histogram("client.call." + op + ".latency")
	m.mu.Lock()
	m.opLatency[op] = h
	m.mu.Unlock()
	return h
}

func (c *Client) metrics() *clientMetrics {
	c.metOnce.Do(func() {
		m := &clientMetrics{opLatency: make(map[string]*obs.Histogram), reg: c.Obs}
		if c.Obs != nil {
			m.inflight = c.Obs.Gauge("client.inflight")
			m.timeouts = c.Obs.Counter("client.timeouts")
			m.sendBatch = c.Obs.Histogram("client.send_batch")
		}
		c.met = m
	})
	return c.met
}

// DefaultCallTimeout is the per-call deadline when Client.CallTimeout
// is zero. Generous: it exists to unstick callers whose response was
// lost, not to police slow operations.
const DefaultCallTimeout = 2 * time.Minute

// ErrCallTimeout marks a call abandoned at its deadline with the
// outcome unknown: the request may or may not have executed. Retry is
// safe only for idempotent or idempotency-keyed operations.
var ErrCallTimeout = errors.New("core: call deadline exceeded awaiting response")

// forgottenMax caps abandoned-call tombstones per connection. A peer
// that never answers would otherwise grow the set without bound; past
// the cap the connection is declared dead and redialed.
const forgottenMax = 1024

// callResult is what the reader goroutine (or a connection failure)
// delivers to a parked caller.
type callResult struct {
	resp *wire.Response
	err  error
}

// clientConn is one live pipelined connection: the in-flight demux map
// plus the coalescing write half. A Client replaces it wholesale on
// redial so late responses from a dying connection can never reach a
// new connection's callers.
//
// Writes use leader-based group flushing (the group-commit trick on the
// send side): a caller appends its frame to the shared buffer and, if
// no flush is running, becomes the flusher — writing every queued frame
// in one syscall / TLS record; otherwise it parks until the flush
// carrying its bytes completes. Under N concurrent callers this turns N
// per-request writes into a few batched ones.
type clientConn struct {
	nc  net.Conn
	wc  *wire.Conn
	met *clientMetrics
	// codec is the negotiated wire codec (wire.JSON when no negotiation
	// happened). Fixed before the connection is handed to callers, so
	// send and body encoding read it without synchronization.
	codec wire.Codec

	wmu     sync.Mutex
	wcond   *sync.Cond    // flush completion signal; guarded by wmu
	wbuf    *bytes.Buffer // frames awaiting flush
	wframes int64         // frames queued in wbuf (send-batch metric)
	wgen    uint64        // generation of wbuf
	wdone   uint64        // latest generation fully written
	wbusy   bool          // a flusher is running
	spare   *bytes.Buffer // the flusher's swap buffer
	werr    error         // first write-path error

	mu      sync.Mutex
	pending map[uint64]chan callResult
	forgot  map[uint64]struct{} // IDs abandoned at their deadline; late responses are dropped
	err     error               // first transport error; set before failing pending
}

// errNotSent marks a send failure that happened before any byte was
// queued for the wire (e.g. a frame past MaxFrame): the connection is
// intact and only the offending call should fail.
type errNotSent struct{ err error }

func (e *errNotSent) Error() string { return e.err.Error() }
func (e *errNotSent) Unwrap() error { return e.err }

// send queues one request frame and returns once it is on the wire
// (possibly batched with other callers' frames).
func (cc *clientConn) send(req *wire.Request) error {
	cc.wmu.Lock()
	if cc.werr != nil {
		err := cc.werr
		cc.wmu.Unlock()
		return err
	}
	if err := cc.codec.AppendFrame(cc.wbuf, req); err != nil {
		// AppendFrame restored the buffer: nothing of this frame will
		// ever reach the wire, so the connection (and every sibling
		// in-flight call) is unaffected.
		cc.wmu.Unlock()
		return &errNotSent{err}
	}
	cc.wframes++
	gen := cc.wgen
	if cc.wbusy {
		// A flusher is running; it will pick this frame up on its next
		// sweep. Park until the sweep carrying generation gen lands.
		for cc.werr == nil && cc.wdone < gen {
			cc.wcond.Wait()
		}
		err := cc.werr
		cc.wmu.Unlock()
		return err
	}
	cc.wbusy = true
	for cc.werr == nil && cc.wbuf.Len() > 0 {
		stolen, stolenGen := cc.wbuf, cc.wgen
		cc.met.sendBatch.Observe(cc.wframes)
		cc.wframes = 0
		cc.wbuf = cc.spare
		cc.spare = nil
		cc.wgen++
		cc.wmu.Unlock()
		_, err := cc.nc.Write(stolen.Bytes())
		stolen.Reset()
		if stolen.Cap() > writerBufMax {
			stolen = &bytes.Buffer{} // release a one-off giant batch
		}
		cc.wmu.Lock()
		cc.spare = stolen
		if err != nil {
			cc.werr = err
		}
		cc.wdone = stolenGen
		cc.wcond.Broadcast()
	}
	cc.wbusy = false
	err := cc.werr
	cc.wmu.Unlock()
	return err
}

// Dial creates a client for the GridBank server at addr, authenticating
// as the given identity (typically a user proxy, preserving single
// sign-on) and trusting servers signed by the trust store's CAs.
func Dial(addr string, id *pki.Identity, ts *pki.TrustStore) (*Client, error) {
	cfg, err := pki.ClientTLSConfig(id, ts)
	if err != nil {
		return nil, err
	}
	return &Client{addr: addr, cfg: cfg, DialTimeout: 10 * time.Second}, nil
}

// Clone returns an unconnected client for the same address, identity
// and trust configuration — the building block for connection pools.
// Telemetry configuration (Obs, TraceCalls) carries over so pooled
// clones report into the same registry.
func (c *Client) Clone() *Client {
	return &Client{
		addr: c.addr, cfg: c.cfg,
		DialTimeout: c.DialTimeout, CallTimeout: c.CallTimeout,
		Obs: c.Obs, TraceCalls: c.TraceCalls,
		OfferCodecs: c.OfferCodecs,
	}
}

// dialLocked establishes the connection and starts its reader. Called
// with c.mu held.
func (c *Client) dialLocked() error {
	d := net.Dialer{Timeout: c.DialTimeout}
	raw, err := d.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("core: dial %s: %w", c.addr, err)
	}
	tconn := tls.Client(raw, c.cfg)
	ctx, cancel := context.WithTimeout(context.Background(), c.DialTimeout)
	defer cancel()
	if err := tconn.HandshakeContext(ctx); err != nil {
		raw.Close()
		return fmt.Errorf("core: tls handshake with %s: %w", c.addr, err)
	}
	cc := &clientConn{
		nc:      tconn,
		wc:      wire.NewConn(tconn),
		met:     c.metrics(),
		codec:   wire.JSON,
		wbuf:    &bytes.Buffer{},
		spare:   &bytes.Buffer{},
		pending: make(map[uint64]chan callResult),
	}
	cc.wcond = sync.NewCond(&cc.wmu)
	if err := c.negotiateLocked(cc); err != nil {
		tconn.Close()
		return err
	}
	c.conn = cc
	go c.readLoop(cc)
	return nil
}

// negotiateLocked runs the first-frame codec handshake on a fresh
// connection, before the reader starts and before any caller can see
// it — which is what makes the codec switch race-free: no other frame
// is in flight in either direction. The offer rides a Ping (allowed
// through the server's §3.2 gate pre-authorization); a seed server
// ignores the unknown field and answers a plain Ping, leaving the
// connection on the seed JSON codec. Called with c.mu held.
func (c *Client) negotiateLocked(cc *clientConn) error {
	if !offersNonJSON(c.OfferCodecs) {
		return nil
	}
	if c.DialTimeout > 0 {
		_ = cc.nc.SetDeadline(time.Now().Add(c.DialTimeout))
		defer func() { _ = cc.nc.SetDeadline(time.Time{}) }()
	}
	c.next++
	req := &wire.Request{ID: c.next, Op: OpPing, Codecs: c.OfferCodecs}
	if err := cc.wc.WriteRequest(req); err != nil {
		return fmt.Errorf("core: codec offer to %s: %w", c.addr, err)
	}
	resp, err := cc.wc.ReadResponse()
	if err != nil {
		return fmt.Errorf("core: codec offer to %s: %w", c.addr, err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("core: codec offer to %s: response for unknown request %d", c.addr, resp.ID)
	}
	if resp.Codec == "" {
		return nil // no agreement (seed server, or codec disabled): stay JSON
	}
	codec, ok := wire.CodecByName(resp.Codec)
	if !ok {
		return fmt.Errorf("core: server %s confirmed unknown codec %q", c.addr, resp.Codec)
	}
	// The server switched its read half right after our offer and its
	// write half right after this confirmation, so from the next frame
	// on both directions speak the negotiated codec.
	cc.wc.SetReadCodec(codec)
	cc.wc.SetWriteCodec(codec)
	cc.codec = codec
	return nil
}

// offersNonJSON reports whether a codec offer could change anything —
// i.e. names a codec other than the seed JSON one.
func offersNonJSON(offers []string) bool {
	for _, name := range offers {
		if name != wire.CodecJSON {
			return true
		}
	}
	return false
}

// readLoop demuxes responses to parked callers until the connection
// fails. An unmatched response ID is a protocol violation and fails the
// connection — the demux map must never be left guessing — unless the
// ID belongs to a call abandoned at its deadline, whose late response
// is expected and silently dropped.
func (c *Client) readLoop(cc *clientConn) {
	for {
		resp, err := cc.wc.ReadResponse()
		if err != nil {
			c.fail(cc, fmt.Errorf("core: receive: %w", err))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		} else if _, late := cc.forgot[resp.ID]; late {
			delete(cc.forgot, resp.ID)
			cc.mu.Unlock()
			continue
		}
		cc.mu.Unlock()
		if !ok {
			c.fail(cc, fmt.Errorf("core: response for unknown request %d", resp.ID))
			return
		}
		ch <- callResult{resp: resp}
	}
}

// fail marks cc dead, fans the error out to every in-flight call and
// detaches cc from the client so the next call redials. Idempotent:
// only the first error wins, and entries registered after it are
// refused at registration instead of stranded.
func (c *Client) fail(cc *clientConn, err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	failed := cc.pending
	cc.pending = make(map[uint64]chan callResult)
	cc.mu.Unlock()
	cc.nc.Close()
	c.mu.Lock()
	if c.conn == cc {
		c.conn = nil
	}
	c.mu.Unlock()
	for _, ch := range failed {
		ch <- callResult{err: err}
	}
}

// register ensures a live connection and claims an in-flight slot for a
// fresh request ID.
func (c *Client) register() (*clientConn, uint64, chan callResult, error) {
	c.mu.Lock()
	if c.conn == nil {
		if err := c.dialLocked(); err != nil {
			c.mu.Unlock()
			return nil, 0, nil, err
		}
	}
	cc := c.conn
	c.next++
	id := c.next
	c.mu.Unlock()
	ch := make(chan callResult, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, 0, nil, err
	}
	cc.pending[id] = ch
	cc.mu.Unlock()
	return cc, id, ch, nil
}

// Close tears down the connection, failing any in-flight calls.
func (c *Client) Close() error {
	c.mu.Lock()
	cc := c.conn
	c.conn = nil
	c.mu.Unlock()
	if cc == nil {
		return nil
	}
	c.fail(cc, errors.New("core: client closed"))
	return nil
}

// callDeadline resolves the effective per-call budget: an explicit
// override wins, else the client default, else DefaultCallTimeout.
// Negative anywhere means "no deadline".
func (c *Client) callDeadline(override time.Duration) time.Duration {
	d := override
	if d == 0 {
		d = c.CallTimeout
	}
	if d == 0 {
		d = DefaultCallTimeout
	}
	if d < 0 {
		return 0
	}
	return d
}

// call performs one pipelined request/response exchange. A transport
// error fails every call in flight on the connection (next call
// redials).
func (c *Client) call(op string, in, out any) error {
	return c.callWithTimeout(op, in, out, 0)
}

// callWithTimeout is call with an explicit deadline override (zero:
// client default; negative: none). On timeout the call fails alone
// with ErrCallTimeout: its demux entry becomes a tombstone so the late
// response is dropped rather than wedging or killing the connection.
func (c *Client) callWithTimeout(op string, in, out any, timeout time.Duration) error {
	return c.callTraced(op, in, out, timeout, "")
}

// callTraced is callWithTimeout with an explicit trace ID. Empty trace
// with TraceCalls set stamps a fresh ID; a non-empty trace — how
// RoutedClient pins one ID per logical operation across retries and
// shard redirects — is carried verbatim.
func (c *Client) callTraced(op string, in, out any, timeout time.Duration, trace string) error {
	met := c.metrics()
	met.inflight.Inc()
	start := time.Now()
	defer func() {
		met.inflight.Dec()
		met.latencyFor(op).ObserveDuration(time.Since(start))
	}()
	d := c.callDeadline(timeout)
	cc, id, ch, err := c.register()
	if err != nil {
		return err
	}
	// Encode the body after the connection is known: a negotiated
	// connection uses the binary form for hot-op payloads, a seed
	// connection the JSON form, byte-identical to before.
	var body []byte
	if in != nil {
		raw, err := wire.EncodeWith(cc.codec, in)
		if err != nil {
			// Nothing was queued: withdraw this call's in-flight entry
			// and leave the connection alone.
			cc.mu.Lock()
			delete(cc.pending, id)
			cc.mu.Unlock()
			return err
		}
		body = raw
	}
	if trace == "" && c.TraceCalls {
		trace = obs.NewTraceID()
	}
	req := &wire.Request{ID: id, Op: op, Trace: trace, Body: body}
	if d > 0 {
		if ms := int64(d / time.Millisecond); ms > 0 {
			req.DeadlineMS = ms
		} else {
			req.DeadlineMS = 1
		}
	}
	if err := cc.send(req); err != nil {
		var local *errNotSent
		if errors.As(err, &local) {
			// Never queued: withdraw this call's in-flight entry and
			// leave the connection (and its sibling calls) alone.
			cc.mu.Lock()
			delete(cc.pending, id)
			cc.mu.Unlock()
			return fmt.Errorf("core: send %s: %w", op, local.err)
		}
		// A partial batch may be on the wire: the whole connection is
		// compromised, not just this call.
		c.fail(cc, fmt.Errorf("core: send %s: %w", op, err))
		return fmt.Errorf("core: send %s: %w", op, err)
	}
	finish := func(res callResult) error {
		if res.err != nil {
			return fmt.Errorf("core: %s: %w", op, res.err)
		}
		if !res.resp.OK {
			return &RemoteError{Code: res.resp.Code, Message: res.resp.Error}
		}
		if out != nil {
			return wire.Decode(res.resp.Body, out)
		}
		return nil
	}
	if d <= 0 {
		return finish(<-ch)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case res := <-ch:
		return finish(res)
	case <-timer.C:
	}
	// Deadline hit. If the demux entry is still ours, abandon the call:
	// leave a tombstone so the reader drops the response if it ever
	// arrives. If it is gone, the response (or a connection failure)
	// won the race and is already in the channel.
	cc.mu.Lock()
	if _, inFlight := cc.pending[id]; !inFlight {
		cc.mu.Unlock()
		return finish(<-ch)
	}
	delete(cc.pending, id)
	if cc.forgot == nil {
		cc.forgot = make(map[uint64]struct{})
	}
	cc.forgot[id] = struct{}{}
	overflow := len(cc.forgot) > forgottenMax
	cc.mu.Unlock()
	if overflow {
		c.fail(cc, fmt.Errorf("core: %d abandoned calls unanswered; connection presumed dead", forgottenMax))
	}
	met.timeouts.Inc()
	return fmt.Errorf("core: %s: %w (after %v)", op, ErrCallTimeout, d)
}

// Call invokes an arbitrary (e.g. custom-registered) operation: the
// client side of the §3.2 payment-scheme extension point.
func (c *Client) Call(op string, in, out any) error { return c.call(op, in, out) }

// CallWithTimeout is Call with an explicit deadline override for this
// one exchange (zero: client default; negative: no deadline).
func (c *Client) CallWithTimeout(op string, in, out any, timeout time.Duration) error {
	return c.callWithTimeout(op, in, out, timeout)
}

// MetricsSnapshot fetches the server's telemetry snapshot
// (administrator caller; primaries and read-only replicas answer
// alike).
func (c *Client) MetricsSnapshot() (*MetricsSnapshotResponse, error) {
	var out MetricsSnapshotResponse
	if err := c.call(OpMetrics, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReplicaStatus reports the server's replication role, position and
// staleness (zero staleness on a primary).
func (c *Client) ReplicaStatus() (*ReplicaStatusResponse, error) {
	var out ReplicaStatusResponse
	if err := c.call(OpReplicaStatus, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardMap fetches the server's shard placement parameters: ring shape
// on a primary, ring shape plus own shard index on a shard replica.
func (c *Client) ShardMap() (*ShardMapResponse, error) {
	var out ShardMapResponse
	if err := c.call(OpShardMap, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ping checks connectivity and returns the bank's subject name.
func (c *Client) Ping() (string, error) {
	var out map[string]string
	if err := c.call(OpPing, nil, &out); err != nil {
		return "", err
	}
	return out["bank"], nil
}

// CreateAccount opens an account for the authenticated subject.
func (c *Client) CreateAccount(org string, cur currency.Code) (*accounts.Account, error) {
	var out CreateAccountResponse
	if err := c.call(OpCreateAccount, &CreateAccountRequest{OrganizationName: org, Currency: cur}, &out); err != nil {
		return nil, err
	}
	return &out.Account, nil
}

// AccountDetails fetches an account record.
func (c *Client) AccountDetails(id accounts.ID) (*accounts.Account, error) {
	var out AccountDetailsResponse
	if err := c.call(OpAccountDetails, &AccountDetailsRequest{AccountID: id}, &out); err != nil {
		return nil, err
	}
	return &out.Account, nil
}

// UpdateAccount amends certificate/organization names.
func (c *Client) UpdateAccount(id accounts.ID, certName, orgName string) (*accounts.Account, error) {
	var out AccountDetailsResponse
	req := &UpdateAccountRequest{AccountID: id, CertificateName: certName, OrganizationName: orgName}
	if err := c.call(OpUpdateAccount, req, &out); err != nil {
		return nil, err
	}
	return &out.Account, nil
}

// AccountStatement fetches transactions in [start, end].
func (c *Client) AccountStatement(id accounts.ID, start, end time.Time) (*accounts.Statement, error) {
	var out AccountStatementResponse
	if err := c.call(OpAccountStatement, &AccountStatementRequest{AccountID: id, Start: start, End: end}, &out); err != nil {
		return nil, err
	}
	return &out.Statement, nil
}

// Traced read variants: identical to their namesakes but carrying an
// explicit trace ID, so RoutedClient can pin one logical trace across
// replica attempts, wrong_shard redirects and the primary fallback.

func (c *Client) accountDetailsTraced(id accounts.ID, trace string) (*accounts.Account, error) {
	var out AccountDetailsResponse
	if err := c.callTraced(OpAccountDetails, &AccountDetailsRequest{AccountID: id}, &out, 0, trace); err != nil {
		return nil, err
	}
	return &out.Account, nil
}

func (c *Client) accountStatementTraced(id accounts.ID, start, end time.Time, trace string) (*accounts.Statement, error) {
	var out AccountStatementResponse
	if err := c.callTraced(OpAccountStatement, &AccountStatementRequest{AccountID: id, Start: start, End: end}, &out, 0, trace); err != nil {
		return nil, err
	}
	return &out.Statement, nil
}

func (c *Client) adminListAccountsTraced(trace string) ([]accounts.Account, error) {
	var out AdminAccountsResponse
	if err := c.callTraced(OpAdminAccounts, nil, &out, 0, trace); err != nil {
		return nil, err
	}
	return out.Accounts, nil
}

// CheckFunds locks amount as a payment guarantee.
func (c *Client) CheckFunds(id accounts.ID, amount currency.Amount) error {
	var out ConfirmationResponse
	return c.call(OpCheckFunds, &CheckFundsRequest{AccountID: id, Amount: amount}, &out)
}

// NewIdempotencyKey generates a fresh random idempotency token for a
// keyed mutation. One key identifies one intended mutation: reuse the
// same key across retries of the same transfer, never across distinct
// transfers.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; an unkeyed request
		// (no dedup, seed behavior) beats a panic in a payment path.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// DirectTransfer performs a pay-before-use transfer, returning the
// signed receipt. A fresh idempotency key is attached so the server
// records the mutation in op_dedup; callers that may retry after an
// ambiguous failure should use DirectTransferKeyed to control the key.
func (c *Client) DirectTransfer(from, to accounts.ID, amount currency.Amount, recipientAddr string) (*DirectTransferResponse, error) {
	return c.DirectTransferKeyed(NewIdempotencyKey(), from, to, amount, recipientAddr)
}

// DirectTransferKeyed is DirectTransfer with a caller-supplied
// idempotency key: repeating the call with the same key replays the
// recorded outcome instead of moving money twice, which is what makes
// retry-after-ambiguous-failure safe.
func (c *Client) DirectTransferKeyed(key string, from, to accounts.ID, amount currency.Amount, recipientAddr string) (*DirectTransferResponse, error) {
	var out DirectTransferResponse
	req := &DirectTransferRequest{FromAccountID: from, ToAccountID: to, Amount: amount, RecipientAddress: recipientAddr, IdempotencyKey: key}
	if err := c.call(OpDirectTransfer, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RequestCheque obtains a GridCheque made out to payeeCert, locking
// amount.
func (c *Client) RequestCheque(id accounts.ID, amount currency.Amount, payeeCert string, ttl time.Duration) (*payment.SignedCheque, error) {
	var out RequestChequeResponse
	req := &RequestChequeRequest{AccountID: id, Amount: amount, PayeeCert: payeeCert, TTL: ttl}
	if err := c.call(OpRequestCheque, req, &out); err != nil {
		return nil, err
	}
	return &out.Cheque, nil
}

// RedeemCheque settles a cheque claim (provider side).
func (c *Client) RedeemCheque(cheque *payment.SignedCheque, claim *payment.ChequeClaim) (*RedeemChequeResponse, error) {
	var out RedeemChequeResponse
	req := &RedeemChequeRequest{Cheque: *cheque, Claim: *claim}
	if err := c.call(OpRedeemCheque, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RequestChain obtains a GridHash chain: the signed commitment plus the
// secret seed.
func (c *Client) RequestChain(id accounts.ID, payeeCert string, length int, perWord currency.Amount, ttl time.Duration) (*payment.Chain, *payment.SignedChain, error) {
	var out RequestChainResponse
	req := &RequestChainRequest{AccountID: id, PayeeCert: payeeCert, Length: length, PerWord: perWord, TTL: ttl}
	if err := c.call(OpRequestChain, req, &out); err != nil {
		return nil, nil, err
	}
	chain := &payment.Chain{Commitment: out.Chain.Commitment, Seed: out.Seed}
	if err := chain.Rederive(); err != nil {
		return nil, nil, fmt.Errorf("core: server returned inconsistent chain: %w", err)
	}
	return chain, &out.Chain, nil
}

// RedeemChain settles a chain claim incrementally (provider side).
func (c *Client) RedeemChain(chain *payment.SignedChain, claim *payment.ChainClaim) (*RedeemChainResponse, error) {
	var out RedeemChainResponse
	req := &RedeemChainRequest{Chain: *chain, Claim: *claim}
	if err := c.call(OpRedeemChain, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReleaseCheque releases an expired cheque's lock (drawer side).
func (c *Client) ReleaseCheque(serial string) (currency.Amount, error) {
	var out ReleaseResponse
	if err := c.call(OpReleaseCheque, &ReleaseRequest{Serial: serial}, &out); err != nil {
		return 0, err
	}
	return out.Released, nil
}

// ReleaseChain releases an expired chain's remaining lock (drawer side).
func (c *Client) ReleaseChain(serial string) (currency.Amount, error) {
	var out ReleaseResponse
	if err := c.call(OpReleaseChain, &ReleaseRequest{Serial: serial}, &out); err != nil {
		return 0, err
	}
	return out.Released, nil
}

// --- Admin client (§5.2.1) --------------------------------------------------

// AdminDeposit credits an account (administrator caller).
func (c *Client) AdminDeposit(id accounts.ID, amount currency.Amount) error {
	var out ConfirmationResponse
	return c.call(OpAdminDeposit, &AdminAmountRequest{AccountID: id, Amount: amount}, &out)
}

// AdminWithdraw debits an account (administrator caller).
func (c *Client) AdminWithdraw(id accounts.ID, amount currency.Amount) error {
	var out ConfirmationResponse
	return c.call(OpAdminWithdraw, &AdminAmountRequest{AccountID: id, Amount: amount}, &out)
}

// AdminChangeCreditLimit sets a credit limit (administrator caller).
func (c *Client) AdminChangeCreditLimit(id accounts.ID, limit currency.Amount) error {
	var out ConfirmationResponse
	return c.call(OpAdminCreditLimit, &AdminAmountRequest{AccountID: id, Amount: limit}, &out)
}

// AdminCancelTransfer reverses a transfer (administrator caller).
func (c *Client) AdminCancelTransfer(txID uint64) error {
	var out ConfirmationResponse
	return c.call(OpAdminCancel, &AdminCancelRequest{TransactionID: txID}, &out)
}

// AdminCloseAccount closes an account (administrator caller).
func (c *Client) AdminCloseAccount(id, transferTo accounts.ID) error {
	var out ConfirmationResponse
	return c.call(OpAdminClose, &AdminCloseRequest{AccountID: id, TransferTo: transferTo}, &out)
}

// AdminListAccounts lists all accounts (administrator caller).
func (c *Client) AdminListAccounts() ([]accounts.Account, error) {
	var out AdminAccountsResponse
	if err := c.call(OpAdminAccounts, nil, &out); err != nil {
		return nil, err
	}
	return out.Accounts, nil
}
