package core

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/pki"
)

// benchWire stands up a live TLS server plus one pipelined client and
// a funded account population for wire-layer benchmarks.
type benchWire struct {
	client *Client
	payers []accounts.ID
	payees []accounts.ID
}

func newBenchWire(b *testing.B, journal db.Journal, pairs int) *benchWire {
	b.Helper()
	ca, err := pki.NewCA("Bench CA", "VO-B", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	ts := pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-B", IsServer: true})
	if err != nil {
		b.Fatal(err)
	}
	// The benchmark client dials as an admin: it may then drive
	// transfers from any of the per-pair accounts below.
	userID, err := ca.Issue(pki.IssueOptions{CommonName: "bench-admin", Organization: "VO-B"})
	if err != nil {
		b.Fatal(err)
	}
	store, err := db.Open(journal)
	if err != nil {
		b.Fatal(err)
	}
	bank, err := NewBank(store, BankConfig{Identity: bankID, Trust: ts, Admins: []string{userID.SubjectName()}})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(bank, bankID)
	if err != nil {
		b.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })

	bw := &benchWire{}
	mgr := bank.Manager()
	for i := 0; i < pairs; i++ {
		payer, err := mgr.CreateAccount(fmt.Sprintf("CN=bench-payer-%d", i), "VO-B", "")
		if err != nil {
			b.Fatal(err)
		}
		if err := mgr.Admin().Deposit(payer.AccountID, currency.FromG(1_000_000)); err != nil {
			b.Fatal(err)
		}
		payee, err := mgr.CreateAccount(fmt.Sprintf("CN=bench-payee-%d", i), "VO-B", "")
		if err != nil {
			b.Fatal(err)
		}
		bw.payers = append(bw.payers, payer.AccountID)
		bw.payees = append(bw.payees, payee.AccountID)
	}
	c, err := Dial(ln.Addr().String(), userID, ts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	bw.client = c
	return bw
}

// BenchmarkParallelPipelinedPing: many callers multiplexing the
// cheapest round trip over ONE connection.
func BenchmarkParallelPipelinedPing(b *testing.B) {
	bw := newBenchWire(b, nil, 1)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := bw.client.Ping(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelPipelinedTransferDurable: concurrent fsync-durable
// transfers multiplexed over ONE connection — the path where pipelining
// lets callers share the group-commit WAL flush.
func BenchmarkParallelPipelinedTransferDurable(b *testing.B) {
	dir := b.TempDir()
	j, err := db.OpenFileJournal(filepath.Join(dir, "bench.wal"), true)
	if err != nil {
		b.Fatal(err)
	}
	defer os.Remove(filepath.Join(dir, "bench.wal"))
	const pairs = 32
	bw := newBenchWire(b, j, pairs)
	var slot atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(slot.Add(1)) % pairs
		for pb.Next() {
			if _, err := bw.client.DirectTransfer(bw.payers[i], bw.payees[i], currency.FromMicro(1), ""); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSerialPing is the single-caller round-trip baseline — the
// regression guard for pipelining overhead.
func BenchmarkSerialPing(b *testing.B) {
	bw := newBenchWire(b, nil, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bw.client.Ping(); err != nil {
			b.Fatal(err)
		}
	}
}
