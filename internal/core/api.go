// Package core is GridBank itself: the paper's primary contribution. It
// composes the Accounts Layer (internal/accounts), the Payment Protocol
// Layer (internal/payment) and the Security Layer (internal/pki +
// internal/wire) into the GridBank server of Figure 3, and provides the
// client side — the GridBank Payment Module (GBPM) — of Figure 1.
//
// The Bank type implements the full §5.2 GridBank API and §5.2.1 Admin
// API against an authenticated caller subject; Server exposes it over
// mutually-authenticated TLS with the §3.2 authorization gate ("only
// clients with existing account or administrator privilege are authorized
// and connected"); Client is the GBPM.
package core

import (
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/obs"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

// Operation names carried in wire.Request.Op. They map one-to-one onto
// the §5.2 API and §5.2.1 Admin API.
const (
	OpPing             = "Ping"
	OpCreateAccount    = "CreateAccount"    // §5.2 Create New Account
	OpAccountDetails   = "AccountDetails"   // §5.2 Request Account Details / Check Balance
	OpUpdateAccount    = "UpdateAccount"    // §5.2 Update Account Details
	OpAccountStatement = "AccountStatement" // §5.2 Request Account Statement
	OpCheckFunds       = "CheckFunds"       // §5.2 Perform Funds Availability Check
	OpDirectTransfer   = "DirectTransfer"   // §5.2 Request Direct Transfer (pay-before-use)
	OpRequestCheque    = "RequestCheque"    // §5.2 Request GridCheque
	OpRedeemCheque     = "RedeemCheque"     // §5.2 Redeem GridCheque
	OpRequestChain     = "RequestChain"     // §5.2 Request GridHash chain
	OpRedeemChain      = "RedeemChain"      // §5.2 Redeem GridHash chain
	OpReleaseCheque    = "ReleaseCheque"    // release an expired unredeemed cheque's lock
	OpReleaseChain     = "ReleaseChain"     // release an expired chain's remaining lock

	OpAdminDeposit     = "Admin.Deposit"           // §5.2.1 Deposit funds
	OpAdminWithdraw    = "Admin.Withdraw"          // §5.2.1 Withdraw
	OpAdminCreditLimit = "Admin.ChangeCreditLimit" // §5.2.1 Change credit limit
	OpAdminCancel      = "Admin.CancelTransfer"    // §5.2.1 Cancel Transfer
	OpAdminClose       = "Admin.CloseAccount"      // §5.2.1 Close account
	OpAdminAccounts    = "Admin.ListAccounts"      // operational visibility

	OpReplicaStatus = "Replica.Status"   // replication role, position and staleness
	OpShardMap      = "Shard.Map"        // shard count + vnodes for client-side placement
	OpMetrics       = "Metrics.Snapshot" // admin-only telemetry snapshot (primaries and replicas)
)

// Stable error codes returned in wire.Response.Code. The canonical
// definitions (values and semantics) live in the wire package — the
// single home of the wire error vocabulary — and are re-exported here
// so existing core-based call sites compile unchanged.
const (
	CodeOK           = wire.CodeOK
	CodeDenied       = wire.CodeDenied
	CodeNotFound     = wire.CodeNotFound
	CodeInsufficient = wire.CodeInsufficient
	CodeInvalid      = wire.CodeInvalid
	CodeDuplicate    = wire.CodeDuplicate
	CodeExpired      = wire.CodeExpired
	CodeConflict     = wire.CodeConflict
	CodeInternal     = wire.CodeInternal
	// CodeReadOnly marks a mutation sent to a read replica; the error
	// message names the primary's address to retry against.
	CodeReadOnly = wire.CodeReadOnly
	// CodeUnavailable marks a replica that cannot serve yet (still
	// bootstrapping from the primary).
	CodeUnavailable = wire.CodeUnavailable
	// CodeWrongShard marks a read sent to a replica that does not hold
	// the account's shard — the client's shard map is stale (or it
	// picked the wrong pool member); refresh via Shard.Map and retry.
	CodeWrongShard = wire.CodeWrongShard
	// CodeDeadlineExceeded marks a request shed by the server because
	// the caller's deadline_ms budget had already elapsed when a
	// dispatch slot came free — the caller is gone, so the work is not
	// done. Safe to retry (nothing executed).
	CodeDeadlineExceeded = wire.CodeDeadlineExceeded
)

// CreateAccountRequest opens an account for the authenticated caller. The
// certificate name is *not* a parameter: it is taken from the verified
// peer chain (§5.2: "Certificate is checked for authenticity; if
// legitimate, then Certificate Name is extracted").
type CreateAccountRequest struct {
	OrganizationName string        `json:"organization_name,omitempty"`
	Currency         currency.Code `json:"currency,omitempty"` // default G$
}

// CreateAccountResponse returns the new AccountID.
type CreateAccountResponse struct {
	Account accounts.Account `json:"account"`
}

// AccountDetailsRequest fetches an ACCOUNT record.
type AccountDetailsRequest struct {
	AccountID accounts.ID `json:"account_id"`
}

// AccountDetailsResponse carries the record.
type AccountDetailsResponse struct {
	Account accounts.Account `json:"account"`
}

// UpdateAccountRequest amends the mutable fields (§5.2: "Only
// CertificateName and OrganizationName can be modified").
type UpdateAccountRequest struct {
	AccountID        accounts.ID `json:"account_id"`
	CertificateName  string      `json:"certificate_name"`
	OrganizationName string      `json:"organization_name"`
}

// AccountStatementRequest asks for transactions in [Start, End].
type AccountStatementRequest struct {
	AccountID accounts.ID `json:"account_id"`
	Start     time.Time   `json:"start"`
	End       time.Time   `json:"end"`
}

// AccountStatementResponse carries the statement.
type AccountStatementResponse struct {
	Statement accounts.Statement `json:"statement"`
}

// CheckFundsRequest locks Amount as a payment guarantee (§5.2, §3.4).
type CheckFundsRequest struct {
	AccountID accounts.ID     `json:"account_id"`
	Amount    currency.Amount `json:"amount"`
}

// ConfirmationResponse is the generic positive acknowledgement, signed by
// the bank when Receipt is non-nil so the recipient can prove the
// confirmation to third parties.
type ConfirmationResponse struct {
	Confirmed bool        `json:"confirmed"`
	Receipt   *pki.Signed `json:"receipt,omitempty"`
}

// DirectTransferRequest is the pay-before-use funds transfer (§3.1): "GSC
// establishes secure connection with GridBank to provide account details
// of GSC and GSP as well as amount and URL of GSP."
type DirectTransferRequest struct {
	FromAccountID accounts.ID     `json:"from_account_id"`
	ToAccountID   accounts.ID     `json:"to_account_id"`
	Amount        currency.Amount `json:"amount"`
	// RecipientAddress, when set, asks the bank to push the signed
	// confirmation to the GSP's address over another secure channel.
	RecipientAddress string `json:"recipient_address,omitempty"`
	// IdempotencyKey, when set, makes the transfer idempotent: the bank
	// records the key in an op_dedup marker inside the same ledger
	// transaction as the transfer, and a repeat request with the same
	// key replays the recorded outcome instead of moving money twice.
	// Clients retrying after an ambiguous failure (timeout, dropped
	// connection) MUST reuse the original key. Replay protection lasts
	// for the bank's dedup TTL.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// BatchReceipt opts into amortized receipt signing: the response
	// carries a BatchProof (one bank signature shared by every transfer
	// in the batch window) instead of an individual Receipt. Verify with
	// VerifyBatchReceipt.
	BatchReceipt bool `json:"batch_receipt,omitempty"`
}

// TransferReceipt is the payload of the signed confirmation.
type TransferReceipt struct {
	TransactionID uint64          `json:"transaction_id"`
	Drawer        accounts.ID     `json:"drawer"`
	Recipient     accounts.ID     `json:"recipient"`
	Amount        currency.Amount `json:"amount"`
	Currency      currency.Code   `json:"currency"`
	Date          time.Time       `json:"date"`
}

// ReceiptContext domain-separates transfer receipts.
const ReceiptContext = "gridbank/receipt/v1"

// DirectTransferResponse returns the transfer record and signed receipt.
// Exactly one of Receipt and BatchProof is set: BatchProof answers
// requests that opted into batched receipt signing.
type DirectTransferResponse struct {
	TransactionID uint64             `json:"transaction_id"`
	Receipt       *pki.Signed        `json:"receipt,omitempty"`
	BatchProof    *BatchReceiptProof `json:"batch_proof,omitempty"`
}

// RequestChequeRequest asks the bank for a GridCheque made out to
// PayeeCert, locking Amount (§5.2 Request GridCheque; §3.4 guarantee).
type RequestChequeRequest struct {
	AccountID accounts.ID     `json:"account_id"`
	Amount    currency.Amount `json:"amount"`
	PayeeCert string          `json:"payee_cert"`
	TTL       time.Duration   `json:"ttl,omitempty"` // default 24h
}

// RequestChequeResponse carries the signed cheque.
type RequestChequeResponse struct {
	Cheque payment.SignedCheque `json:"cheque"`
}

// RedeemChequeRequest is submitted by the GSP with the usage evidence
// (§5.2 Redeem GridCheque: Input GridCheque, Resource Usage Record).
type RedeemChequeRequest struct {
	Cheque payment.SignedCheque `json:"cheque"`
	Claim  payment.ChequeClaim  `json:"claim"`
}

// RedeemChequeResponse confirms settlement.
type RedeemChequeResponse struct {
	TransactionID uint64          `json:"transaction_id"`
	Paid          currency.Amount `json:"paid"`
	Released      currency.Amount `json:"released"` // unspent lock returned to drawer
}

// RequestChainRequest asks for a GridHash chain (§5.2): Length words of
// PerWord value each, locking Length×PerWord.
type RequestChainRequest struct {
	AccountID accounts.ID     `json:"account_id"`
	PayeeCert string          `json:"payee_cert"`
	Length    int             `json:"length"`
	PerWord   currency.Amount `json:"per_word"`
	TTL       time.Duration   `json:"ttl,omitempty"` // default 24h
}

// RequestChainResponse returns the signed commitment plus the secret seed
// (over the encrypted channel, to the account owner only).
type RequestChainResponse struct {
	Chain payment.SignedChain `json:"chain"`
	Seed  []byte              `json:"seed"`
}

// RedeemChainRequest redeems a chain up to Claim.Index (incremental:
// repeated redemptions pay only the delta).
type RedeemChainRequest struct {
	Chain payment.SignedChain `json:"chain"`
	Claim payment.ChainClaim  `json:"claim"`
}

// RedeemChainResponse confirms the incremental payout.
type RedeemChainResponse struct {
	TransactionID uint64          `json:"transaction_id,omitempty"` // 0 when delta was zero
	Paid          currency.Amount `json:"paid"`
	IndexNow      int             `json:"index_now"`
}

// ReleaseRequest releases the remaining lock of an expired instrument
// back to the drawer.
type ReleaseRequest struct {
	Serial string `json:"serial"`
}

// ReleaseResponse reports the amount returned to the available balance.
type ReleaseResponse struct {
	Released currency.Amount `json:"released"`
}

// AdminAmountRequest covers deposit / withdraw / credit-limit ops.
type AdminAmountRequest struct {
	AccountID accounts.ID     `json:"account_id"`
	Amount    currency.Amount `json:"amount"`
}

// AdminCancelRequest reverses a transfer.
type AdminCancelRequest struct {
	TransactionID uint64 `json:"transaction_id"`
}

// AdminCloseRequest closes an account, sweeping the balance to TransferTo.
type AdminCloseRequest struct {
	AccountID  accounts.ID `json:"account_id"`
	TransferTo accounts.ID `json:"transfer_to,omitempty"`
}

// AdminAccountsResponse lists all accounts.
type AdminAccountsResponse struct {
	Accounts []accounts.Account `json:"accounts"`
}

// Replica roles reported by Replica.Status.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// ReplicaStatusResponse reports a server's replication position. A
// primary is its own head (zero staleness); a replica reports how far
// its applied sequence trails the primary's and how long ago it was
// last observed caught up — the number read-routing clients compare
// against their max-staleness bound.
type ReplicaStatusResponse struct {
	Role       string `json:"role"` // RolePrimary or RoleReplica
	AppliedSeq uint64 `json:"applied_seq"`
	HeadSeq    uint64 `json:"head_seq"`
	// StaleFor is how long the server's state may trail the primary
	// (zero on the primary; bounded by the replication heartbeat on a
	// healthy replica).
	StaleFor time.Duration `json:"stale_for"`
	// PrimaryAddr is where mutations must go (replicas only).
	PrimaryAddr string `json:"primary_addr,omitempty"`
}

// ShardMapResponse is the Shard.Map answer: everything a client needs
// to compute account→shard placement locally. The ring is a pure
// function of (Shards, Vnodes), so shipping the two numbers ships the
// whole map.
type ShardMapResponse struct {
	// Shards is the shard count (1 = unsharded).
	Shards int `json:"shards"`
	// Vnodes is the virtual-node count per shard on the placement ring.
	Vnodes int `json:"vnodes"`
	// ShardIndex is the answering server's own shard: −1 on a primary
	// (it serves every shard), the followed shard on a replica.
	ShardIndex int `json:"shard_index"`
	// PrimaryAddr is where mutations and unroutable reads go (replicas
	// only).
	PrimaryAddr string `json:"primary_addr,omitempty"`
}

// MetricsSnapshotResponse is the Metrics.Snapshot answer: the server's
// telemetry registry at the moment of the call (admin-only; served by
// primaries and read-only replicas alike). Enabled is false when the
// process runs without a registry — the snapshot is then empty rather
// than an error, so fleet-wide scrapes degrade gracefully.
type MetricsSnapshotResponse struct {
	Enabled  bool         `json:"enabled"`
	Snapshot obs.Snapshot `json:"snapshot"`
}
