package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// testWorld is a complete in-process GridBank deployment: CA, bank,
// consumer and provider identities, and their accounts.
type testWorld struct {
	ca        *pki.CA
	ts        *pki.TrustStore
	bank      *Bank
	bankID    *pki.Identity
	alice     *pki.Identity // consumer
	gsp       *pki.Identity // provider
	admin     *pki.Identity
	aliceAcct *accounts.Account
	gspAcct   *accounts.Account
	clock     *fakeClock
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	ca, err := pki.NewCA("Test Grid CA", "VO-A", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cn string) *pki.Identity {
		id, err := ca.Issue(pki.IssueOptions{CommonName: cn, Organization: "VO-A"})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	bankID := mk("gridbank")
	alice := mk("alice")
	gsp := mk("gsp1")
	admin := mk("banker")
	ts := pki.NewTrustStore(ca.Certificate())
	clock := &fakeClock{t: time.Now()}
	bank, err := NewBank(db.MustOpenMemory(), BankConfig{
		Identity: bankID,
		Trust:    ts,
		Admins:   []string{admin.SubjectName()},
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &testWorld{ca: ca, ts: ts, bank: bank, bankID: bankID, alice: alice, gsp: gsp, admin: admin, clock: clock}
	ar, err := bank.CreateAccount(alice.SubjectName(), &CreateAccountRequest{OrganizationName: "VO-A"})
	if err != nil {
		t.Fatal(err)
	}
	w.aliceAcct = &ar.Account
	gr, err := bank.CreateAccount(gsp.SubjectName(), &CreateAccountRequest{OrganizationName: "VO-A"})
	if err != nil {
		t.Fatal(err)
	}
	w.gspAcct = &gr.Account
	if _, err := bank.AdminDeposit(admin.SubjectName(), &AdminAmountRequest{AccountID: w.aliceAcct.AccountID, Amount: currency.FromG(1000)}); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *testWorld) balance(t *testing.T, id accounts.ID) (avail, locked currency.Amount) {
	t.Helper()
	a, err := w.bank.Manager().Details(id)
	if err != nil {
		t.Fatal(err)
	}
	return a.AvailableBalance, a.LockedBalance
}

func TestAuthorizeGate(t *testing.T) {
	w := newTestWorld(t)
	if err := w.bank.Authorize(w.alice.SubjectName()); err != nil {
		t.Errorf("account holder refused: %v", err)
	}
	if err := w.bank.Authorize(w.admin.SubjectName()); err != nil {
		t.Errorf("admin refused: %v", err)
	}
	if err := w.bank.Authorize("CN=stranger,O=VO-A"); !errors.Is(err, ErrUnknownSubject) {
		t.Errorf("stranger admitted: %v", err)
	}
}

func TestOwnershipEnforcement(t *testing.T) {
	w := newTestWorld(t)
	// gsp cannot read alice's account.
	if _, err := w.bank.AccountDetails(w.gsp.SubjectName(), &AccountDetailsRequest{AccountID: w.aliceAcct.AccountID}); !errors.Is(err, ErrDenied) {
		t.Errorf("cross-account details err = %v", err)
	}
	// admin can.
	if _, err := w.bank.AccountDetails(w.admin.SubjectName(), &AccountDetailsRequest{AccountID: w.aliceAcct.AccountID}); err != nil {
		t.Errorf("admin details err = %v", err)
	}
	// gsp cannot transfer out of alice's account.
	if _, err := w.bank.DirectTransfer(w.gsp.SubjectName(), &DirectTransferRequest{
		FromAccountID: w.aliceAcct.AccountID, ToAccountID: w.gspAcct.AccountID, Amount: currency.FromG(1),
	}); !errors.Is(err, ErrDenied) {
		t.Errorf("theft err = %v", err)
	}
	// Non-admin cannot use admin ops.
	if _, err := w.bank.AdminDeposit(w.alice.SubjectName(), &AdminAmountRequest{AccountID: w.aliceAcct.AccountID, Amount: currency.FromG(1)}); !errors.Is(err, ErrDenied) {
		t.Errorf("non-admin deposit err = %v", err)
	}
	if _, err := w.bank.AdminListAccounts(w.alice.SubjectName()); !errors.Is(err, ErrDenied) {
		t.Errorf("non-admin list err = %v", err)
	}
}

func TestDirectTransferWithReceipt(t *testing.T) {
	w := newTestWorld(t)
	var notified []string
	w.bank.notify = func(addr string, receipt *pki.Signed) { notified = append(notified, addr) }
	resp, err := w.bank.DirectTransfer(w.alice.SubjectName(), &DirectTransferRequest{
		FromAccountID:    w.aliceAcct.AccountID,
		ToAccountID:      w.gspAcct.AccountID,
		Amount:           currency.FromG(10),
		RecipientAddress: "gsp1.example:7777",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receipt verifies against the bank and decodes to the transfer facts.
	var rcpt TransferReceipt
	signer, err := resp.Receipt.Verify(w.ts, ReceiptContext, time.Now(), &rcpt)
	if err != nil {
		t.Fatal(err)
	}
	if signer != w.bankID.SubjectName() {
		t.Errorf("receipt signer = %q", signer)
	}
	if rcpt.Amount != currency.FromG(10) || rcpt.Drawer != w.aliceAcct.AccountID || rcpt.Recipient != w.gspAcct.AccountID {
		t.Errorf("receipt = %+v", rcpt)
	}
	if len(notified) != 1 || notified[0] != "gsp1.example:7777" {
		t.Errorf("notifications = %v", notified)
	}
	avail, _ := w.balance(t, w.gspAcct.AccountID)
	if avail != currency.FromG(10) {
		t.Errorf("gsp balance = %s", avail)
	}
}

func TestChequeLifecycle(t *testing.T) {
	w := newTestWorld(t)
	// Issue: locks the limit.
	resp, err := w.bank.RequestCheque(w.alice.SubjectName(), &RequestChequeRequest{
		AccountID: w.aliceAcct.AccountID, Amount: currency.FromG(100), PayeeCert: w.gsp.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	avail, locked := w.balance(t, w.aliceAcct.AccountID)
	if avail != currency.FromG(900) || locked != currency.FromG(100) {
		t.Fatalf("after issue: %s/%s", avail, locked)
	}
	// GSP verifies the cheque independently (client-side check).
	if _, err := payment.VerifyCheque(&resp.Cheque, w.ts, w.gsp.SubjectName(), time.Now()); err != nil {
		t.Fatalf("GSP-side verify: %v", err)
	}
	// Redeem 60 of the 100.
	red, err := w.bank.RedeemCheque(w.gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: resp.Cheque,
		Claim:  payment.ChequeClaim{Serial: resp.Cheque.Cheque.Serial, Amount: currency.FromG(60), RUR: []byte(`{"job":"j1"}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if red.Paid != currency.FromG(60) || red.Released != currency.FromG(40) {
		t.Fatalf("redeem = %+v", red)
	}
	avail, locked = w.balance(t, w.aliceAcct.AccountID)
	if avail != currency.FromG(940) || !locked.IsZero() {
		t.Fatalf("after redeem: %s/%s", avail, locked)
	}
	gspAvail, _ := w.balance(t, w.gspAcct.AccountID)
	if gspAvail != currency.FromG(60) {
		t.Fatalf("gsp paid %s", gspAvail)
	}
	// The RUR evidence is stored on the transfer.
	tr, err := w.bank.Manager().GetTransfer(red.TransactionID)
	if err != nil || string(tr.ResourceUsageRecord) != `{"job":"j1"}` {
		t.Fatalf("evidence = %+v, %v", tr, err)
	}
	// Double redemption refused.
	if _, err := w.bank.RedeemCheque(w.gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: resp.Cheque,
		Claim:  payment.ChequeClaim{Serial: resp.Cheque.Cheque.Serial, Amount: currency.FromG(1)},
	}); !errors.Is(err, ErrAlreadyRedeemed) {
		t.Fatalf("double redeem err = %v", err)
	}
}

func TestChequeWrongPayeeAndForgery(t *testing.T) {
	w := newTestWorld(t)
	resp, err := w.bank.RequestCheque(w.alice.SubjectName(), &RequestChequeRequest{
		AccountID: w.aliceAcct.AccountID, Amount: currency.FromG(10), PayeeCert: w.gsp.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A different provider cannot redeem it — "made out to GSP so no one
	// else can redeem it" (§3.1).
	thief, err := w.ca.Issue(pki.IssueOptions{CommonName: "thief", Organization: "VO-A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank.CreateAccount(thief.SubjectName(), &CreateAccountRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank.RedeemCheque(thief.SubjectName(), &RedeemChequeRequest{
		Cheque: resp.Cheque,
		Claim:  payment.ChequeClaim{Serial: resp.Cheque.Cheque.Serial, Amount: currency.FromG(1)},
	}); !errors.Is(err, payment.ErrWrongPayee) {
		t.Fatalf("wrong payee err = %v", err)
	}
	// A self-signed "cheque" is refused (no bank signature).
	forgedCheque := resp.Cheque.Cheque
	forgedCheque.Limit = currency.FromG(10000)
	env, err := pki.Sign(w.gsp, payment.ContextCheque, forgedCheque)
	if err != nil {
		t.Fatal(err)
	}
	// Note: gsp's cert chains to the trusted CA, so the signature itself
	// verifies — but the claim then exceeds the *stored* row for the
	// serial... actually the row lookup uses the forged serial; to be
	// thorough the forged cheque keeps the same serial but a higher
	// limit, and redemption must still fail because the signed payload
	// diverges from the bank-issued row state. The bank detects this by
	// checking the signer is the bank itself? No: any trusted signer
	// passes VerifyCheque. The protection is that RedeemCheque pays from
	// *locked* funds only: the forged limit cannot unlock more than was
	// locked at issue. Claim 10000 fails on insufficient locked funds.
	forged := payment.SignedCheque{Cheque: forgedCheque, Envelope: env}
	_, err = w.bank.RedeemCheque(w.gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: forged,
		Claim:  payment.ChequeClaim{Serial: forgedCheque.Serial, Amount: currency.FromG(10000)},
	})
	if err == nil {
		t.Fatal("forged cheque redeemed")
	}
}

func TestChequeReleaseAfterExpiry(t *testing.T) {
	w := newTestWorld(t)
	resp, err := w.bank.RequestCheque(w.alice.SubjectName(), &RequestChequeRequest{
		AccountID: w.aliceAcct.AccountID, Amount: currency.FromG(50), PayeeCert: w.gsp.SubjectName(), TTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	serial := resp.Cheque.Cheque.Serial
	// Too early.
	if _, err := w.bank.ReleaseCheque(w.alice.SubjectName(), &ReleaseRequest{Serial: serial}); !errors.Is(err, ErrNotExpired) {
		t.Fatalf("early release err = %v", err)
	}
	// Wrong caller.
	w.clock.Advance(2 * time.Hour)
	if _, err := w.bank.ReleaseCheque(w.gsp.SubjectName(), &ReleaseRequest{Serial: serial}); !errors.Is(err, ErrDenied) {
		t.Fatalf("foreign release err = %v", err)
	}
	// Drawer releases after expiry.
	rel, err := w.bank.ReleaseCheque(w.alice.SubjectName(), &ReleaseRequest{Serial: serial})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Released != currency.FromG(50) {
		t.Fatalf("released = %s", rel.Released)
	}
	avail, locked := w.balance(t, w.aliceAcct.AccountID)
	if avail != currency.FromG(1000) || !locked.IsZero() {
		t.Fatalf("after release: %s/%s", avail, locked)
	}
	// Expired cheque can no longer be redeemed.
	if _, err := w.bank.RedeemCheque(w.gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: resp.Cheque,
		Claim:  payment.ChequeClaim{Serial: serial, Amount: currency.FromG(1)},
	}); !errors.Is(err, payment.ErrExpired) {
		t.Fatalf("expired redeem err = %v", err)
	}
	// Double release refused.
	if _, err := w.bank.ReleaseCheque(w.alice.SubjectName(), &ReleaseRequest{Serial: serial}); !errors.Is(err, ErrAlreadyRedeemed) {
		t.Fatalf("double release err = %v", err)
	}
	if _, err := w.bank.ReleaseCheque(w.alice.SubjectName(), &ReleaseRequest{Serial: "nope"}); !errors.Is(err, ErrUnknownSerial) {
		t.Fatalf("unknown serial err = %v", err)
	}
}

func TestChainLifecyclePayAsYouGo(t *testing.T) {
	w := newTestWorld(t)
	perWord := currency.MustParse("0.01")
	resp, err := w.bank.RequestChain(w.alice.SubjectName(), &RequestChainRequest{
		AccountID: w.aliceAcct.AccountID, PayeeCert: w.gsp.SubjectName(), Length: 100, PerWord: perWord,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, locked := w.balance(t, w.aliceAcct.AccountID)
	if locked != currency.FromG(1) { // 100 × 0.01
		t.Fatalf("locked = %s", locked)
	}
	chain := &payment.Chain{Commitment: resp.Chain.Commitment, Seed: resp.Seed}
	// GSP verifies the commitment once...
	if _, _, err := payment.VerifyChain(&resp.Chain, w.ts, w.gsp.SubjectName(), time.Now()); err != nil {
		t.Fatal(err)
	}
	// ...then accepts words 1..40 as service streams (simulated), and
	// redeems in two batches: at 25 and at 40.
	w25, err := chain.Word(25)
	if err != nil {
		t.Fatal(err)
	}
	red1, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 25, Word: w25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if red1.Paid != currency.MustParse("0.25") || red1.IndexNow != 25 {
		t.Fatalf("batch1 = %+v", red1)
	}
	w40, _ := chain.Word(40)
	red2, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 40, Word: w40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if red2.Paid != currency.MustParse("0.15") || red2.IndexNow != 40 {
		t.Fatalf("batch2 = %+v", red2)
	}
	// Replay of batch1's word refused (stale index).
	if _, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 25, Word: w25},
	}); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("replay err = %v", err)
	}
	gspAvail, _ := w.balance(t, w.gspAcct.AccountID)
	if gspAvail != currency.MustParse("0.4") {
		t.Fatalf("gsp total = %s", gspAvail)
	}
	// Drawer releases the remaining 60 words after expiry.
	w.clock.Advance(25 * time.Hour)
	rel, err := w.bank.ReleaseChain(w.alice.SubjectName(), &ReleaseRequest{Serial: chain.Commitment.Serial})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Released != currency.MustParse("0.6") {
		t.Fatalf("released = %s", rel.Released)
	}
	avail, locked := w.balance(t, w.aliceAcct.AccountID)
	if locked != 0 || avail != currency.MustParse("999.6") {
		t.Fatalf("final alice: %s/%s", avail, locked)
	}
}

func TestChainFullRedemptionMarksRedeemed(t *testing.T) {
	w := newTestWorld(t)
	resp, err := w.bank.RequestChain(w.alice.SubjectName(), &RequestChainRequest{
		AccountID: w.aliceAcct.AccountID, PayeeCert: w.gsp.SubjectName(), Length: 5, PerWord: currency.FromG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	chain := &payment.Chain{Commitment: resp.Chain.Commitment, Seed: resp.Seed}
	w5, _ := chain.Word(5)
	red, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 5, Word: w5},
	})
	if err != nil || red.Paid != currency.FromG(5) {
		t.Fatalf("full redeem = %+v, %v", red, err)
	}
	// Fully redeemed chains cannot be released even after expiry.
	w.clock.Advance(25 * time.Hour)
	if _, err := w.bank.ReleaseChain(w.alice.SubjectName(), &ReleaseRequest{Serial: chain.Commitment.Serial}); !errors.Is(err, ErrAlreadyRedeemed) {
		t.Fatalf("release of redeemed chain err = %v", err)
	}
}

func TestChainForgedWordRefused(t *testing.T) {
	w := newTestWorld(t)
	resp, err := w.bank.RequestChain(w.alice.SubjectName(), &RequestChainRequest{
		AccountID: w.aliceAcct.AccountID, PayeeCert: w.gsp.SubjectName(), Length: 10, PerWord: currency.FromG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	fake := make([]byte, 32)
	if _, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
		Chain: resp.Chain,
		Claim: payment.ChainClaim{Serial: resp.Chain.Commitment.Serial, Index: 3, Word: fake},
	}); !errors.Is(err, payment.ErrBadWord) {
		t.Fatalf("forged word err = %v", err)
	}
}

func TestInsufficientFundsForInstruments(t *testing.T) {
	w := newTestWorld(t)
	if _, err := w.bank.RequestCheque(w.alice.SubjectName(), &RequestChequeRequest{
		AccountID: w.aliceAcct.AccountID, Amount: currency.FromG(5000), PayeeCert: w.gsp.SubjectName(),
	}); !errors.Is(err, accounts.ErrInsufficient) {
		t.Fatalf("oversized cheque err = %v", err)
	}
	if _, err := w.bank.RequestChain(w.alice.SubjectName(), &RequestChainRequest{
		AccountID: w.aliceAcct.AccountID, PayeeCert: w.gsp.SubjectName(), Length: 5000, PerWord: currency.FromG(1),
	}); !errors.Is(err, accounts.ErrInsufficient) {
		t.Fatalf("oversized chain err = %v", err)
	}
	// Failed issuance leaves nothing locked.
	_, locked := w.balance(t, w.aliceAcct.AccountID)
	if !locked.IsZero() {
		t.Fatalf("lock leaked: %s", locked)
	}
}

func TestConcurrentChequeIssueRespectsBudget(t *testing.T) {
	w := newTestWorld(t)
	// 1000 G$ available; 15 concurrent 100 G$ cheques: exactly 10 must
	// succeed (§3.4 guarantee under concurrency).
	var wg sync.WaitGroup
	var mu sync.Mutex
	okCount := 0
	for i := 0; i < 15; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := w.bank.RequestCheque(w.alice.SubjectName(), &RequestChequeRequest{
				AccountID: w.aliceAcct.AccountID, Amount: currency.FromG(100), PayeeCert: w.gsp.SubjectName(),
			})
			if err == nil {
				mu.Lock()
				okCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if okCount != 10 {
		t.Fatalf("%d cheques issued against a 1000 budget", okCount)
	}
	avail, locked := w.balance(t, w.aliceAcct.AccountID)
	if !avail.IsZero() || locked != currency.FromG(1000) {
		t.Fatalf("after concurrent issue: %s/%s", avail, locked)
	}
}

func TestErrorCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, CodeOK},
		{ErrDenied, CodeDenied},
		{ErrUnknownSubject, CodeDenied},
		{accounts.ErrNotFound, CodeNotFound},
		{ErrUnknownSerial, CodeNotFound},
		{accounts.ErrInsufficient, CodeInsufficient},
		{accounts.ErrDuplicateIdentity, CodeDuplicate},
		{payment.ErrExpired, CodeExpired},
		{ErrAlreadyRedeemed, CodeConflict},
		{ErrStaleIndex, CodeConflict},
		{ErrNotExpired, CodeConflict},
		{payment.ErrWrongPayee, CodeInvalid},
		{payment.ErrBadWord, CodeInvalid},
		{pki.ErrBadSignature, CodeInvalid},
		{db.ErrStorageFailed, CodeUnavailable},
		{fmt.Errorf("journal flush failed: %w: %w", db.ErrStorageFailed, errors.New("fsync: EIO")), CodeUnavailable},
		{errors.New("anything else"), CodeInternal},
	}
	for _, c := range cases {
		if got := ErrorCode(c.err); got != c.want {
			t.Errorf("ErrorCode(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestBankConfigValidation(t *testing.T) {
	if _, err := NewBank(db.MustOpenMemory(), BankConfig{}); err == nil {
		t.Error("bank without identity accepted")
	}
}
