package core

import (
	"net"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/shard"
)

// TestShardReplicaWrongShardRedirectAndMapRefresh drives the stale-
// shard-map flow end to end over the real wire: a sharded primary
// behind a TLS server, two shard replicas serving frozen snapshots of
// their shards (frozen so the balance an answer carries proves whether
// a replica or the primary served it), and a routed client whose map
// claims the wrong replica owns the account. The wrong replica's
// wrong_shard redirect must refresh the map and retry transparently.
func TestShardReplicaWrongShardRedirectAndMapRefresh(t *testing.T) {
	ca, err := pki.NewCA("Shard CA", "VO-SH", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-SH", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	const nShards = 3
	stores := make([]*db.Store, nShards)
	for i := range stores {
		stores[i] = db.MustOpenMemory()
	}
	led, err := shard.New(stores, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const admin = "CN=shard-admin"
	bank, err := NewBankWithLedger(led, BankConfig{Identity: bankID, Trust: trust, Admins: []string{admin}})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := ca.Issue(pki.IssueOptions{CommonName: "alice", Organization: "VO-SH"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := bank.CreateAccount(alice.SubjectName(), &CreateAccountRequest{OrganizationName: "VO-SH"})
	if err != nil {
		t.Fatal(err)
	}
	acct := resp.Account.AccountID
	if _, err := bank.AdminDeposit(admin, &AdminAmountRequest{AccountID: acct, Amount: currency.FromG(75)}); err != nil {
		t.Fatal(err)
	}
	acctShard := led.ShardFor(acct)
	otherShard := (acctShard + 1) % nShards
	_, vnodes := led.ShardTopology()

	// Primary TLS server.
	srv, err := NewServer(bank, bankID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	primaryAddr := ln.Addr().String()

	// Two shard replicas over FROZEN snapshots of their shards, taken
	// before the next deposit: a read answered with the frozen balance
	// provably came from a replica, not the primary.
	startReplica := func(shardIdx int) string {
		t.Helper()
		sn, err := stores[shardIdx].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		frozen, err := db.OpenFromSnapshot(sn, nil)
		if err != nil {
			t.Fatal(err)
		}
		src := &staticSource{store: frozen, seq: frozen.CurrentSeq(), addr: primaryAddr}
		repID, err := ca.Issue(pki.IssueOptions{CommonName: "rep", Organization: "VO-SH", IsServer: true})
		if err != nil {
			t.Fatal(err)
		}
		ro, err := NewReadOnlyBank(src, ReadOnlyBankConfig{
			Identity: repID, Trust: trust,
			Shard: &ShardInfo{Index: shardIdx, Count: nShards, Vnodes: vnodes},
		})
		if err != nil {
			t.Fatal(err)
		}
		rsrv, err := NewReadOnlyServer(ro, repID)
		if err != nil {
			t.Fatal(err)
		}
		rsrv.Logf = func(string, ...any) {}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go rsrv.Serve(rln)
		t.Cleanup(func() { rsrv.Close() })
		return rln.Addr().String()
	}
	wrongAddr := startReplica(otherShard) // does NOT hold alice's account
	rightAddr := startReplica(acctShard)  // holds it, frozen at 75 G$

	// The primary moves on: live balance 100, frozen replicas say 75.
	if _, err := bank.AdminDeposit(admin, &AdminAmountRequest{AccountID: acct, Amount: currency.FromG(25)}); err != nil {
		t.Fatal(err)
	}

	dial := func(addr string) *Client {
		t.Helper()
		c, err := Dial(addr, alice, trust)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	// Direct read against the wrong shard's replica: a typed redirect,
	// not a not_found masquerading as truth. (The replica admits the
	// session even though alice's account is not in its slice — the
	// sharded §3.2 gate cannot see other shards.)
	wrongCli := dial(wrongAddr)
	if _, err := wrongCli.AccountDetails(acct); !IsRemoteCode(err, CodeWrongShard) {
		t.Fatalf("read on wrong shard = %v, want code %q", err, CodeWrongShard)
	}
	// And its ShardMap names its own shard, for clients to re-pool.
	m, err := wrongCli.ShardMap()
	if err != nil || m.ShardIndex != otherShard || m.Shards != nShards {
		t.Fatalf("wrong replica ShardMap = %+v, %v", m, err)
	}

	// A routed client with a STALE shard map: it believes the wrong
	// replica holds alice's shard (as after a reshard the client has
	// not heard about). The wrong replica's redirect must trigger a
	// transparent map refresh and a retry that lands on the right
	// replica — proven by the frozen 75 G$ answer (the primary would
	// say 100).
	routed, err := NewRoutedClient(dial(primaryAddr), []*Client{dial(wrongAddr), dial(rightAddr)}, RouteOptions{
		MaxStaleness:   time.Hour, // frozen replicas never go stale in this test
		StatusInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	staleRing, err := shard.NewRing(nShards, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	routed.mu.Lock()
	routed.mapOnce = true
	routed.ring = staleRing
	// Poisoned pool assignment: replica 0 (actually otherShard) is
	// claimed to serve alice's shard.
	routed.repShard = []int{acctShard, otherShard}
	routed.mu.Unlock()

	a, err := routed.AccountDetails(acct)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != currency.FromG(75) {
		t.Fatalf("routed read = %v; want the frozen replica's 75 G$ (100 means the primary served it, i.e. no retry happened)", a.AvailableBalance)
	}

	// The refresh corrected the client's pool map.
	routed.mu.Lock()
	fixed := append([]int(nil), routed.repShard...)
	routed.mu.Unlock()
	if fixed[0] != otherShard || fixed[1] != acctShard {
		t.Fatalf("shard map not refreshed: %v", fixed)
	}

	// Subsequent reads route straight to the right replica.
	a, err = routed.AccountDetails(acct)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != currency.FromG(75) {
		t.Fatalf("post-refresh routed read = %v, want 75 G$", a.AvailableBalance)
	}
}
