package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/rur"
	"gridbank/internal/usage"
)

// attachPipeline wires a settlement pipeline into the world's bank.
func attachPipeline(t *testing.T, w *testWorld, cfg usage.Config) *usage.Pipeline {
	t.Helper()
	cfg.Ledger = usage.WrapManager(w.bank.Manager())
	cfg.Spool = db.MustOpenMemory()
	cfg.Now = w.clock.Now
	p, err := usage.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	w.bank.SetUsage(p)
	return p
}

func usageSubmission(t *testing.T, w *testWorld, id string, cpuSec int64) usage.Submission {
	t.Helper()
	now := w.clock.Now()
	rec := &rur.Record{
		User:     rur.UserDetails{CertificateName: w.alice.SubjectName()},
		Job:      rur.JobDetails{JobID: id, Application: "wire", Start: now.Add(-time.Hour), End: now},
		Resource: rur.ResourceDetails{Host: "h", CertificateName: w.gsp.SubjectName(), LocalJobID: "pid"},
	}
	rec.SetQuantity(rur.ItemCPU, cpuSec)
	raw, err := rur.Encode(rec, rur.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[rur.Item]currency.Rate{rur.ItemCPU: currency.PerHour(currency.Scale)}
	for _, item := range rur.AllItems {
		if _, ok := rates[item]; !ok {
			rates[item] = currency.ZeroRate
		}
	}
	return usage.Submission{
		ID:        id,
		Drawer:    w.aliceAcct.AccountID,
		Recipient: w.gspAcct.AccountID,
		RUR:       raw,
		Rates:     &rur.RateCard{Provider: w.gsp.SubjectName(), Currency: currency.GridDollar, Rates: rates},
	}
}

// TestUsageOpsOverTLS drives Usage.Submit / Usage.Status / Usage.Drain
// through the real server and client: the first wire path from the
// paper's metering front door to the ledger.
func TestUsageOpsOverTLS(t *testing.T) {
	lw := newLiveWorld(t)
	attachPipeline(t, lw.testWorld, usage.Config{Workers: 1, RetryInterval: time.Millisecond})
	gsp := lw.client(t, lw.gsp)
	admin := lw.client(t, lw.admin)

	var subs []usage.Submission
	for i := 0; i < 10; i++ {
		subs = append(subs, usageSubmission(t, lw.testWorld, fmt.Sprintf("wire-%02d", i), 3600))
	}
	res, err := gsp.UsageSubmit(subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 10 {
		t.Fatalf("submit = %+v", res)
	}
	st, err := admin.UsageDrain(10 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st.Settled != 10 || st.Pending != 0 {
		t.Fatalf("drain stats = %+v", st)
	}
	if st, err = gsp.UsageStatus(); err != nil || st.Settled != 10 {
		t.Fatalf("status = %+v, %v", st, err)
	}
	avail, _ := lw.balance(t, lw.gspAcct.AccountID)
	if want := currency.FromG(10); avail != want {
		t.Errorf("gsp balance = %s, want %s", avail, want)
	}
	// Idempotent re-submission over the wire.
	if res, err = gsp.UsageSubmit(subs[:3]); err != nil || res.Duplicates != 3 || res.Accepted != 0 {
		t.Fatalf("resubmit = %+v, %v", res, err)
	}
}

// TestUsageAuthorization pins the trust model: a caller may only submit
// charges crediting accounts it owns; draining is admin-only; and a
// server without a pipeline answers "unavailable".
func TestUsageAuthorization(t *testing.T) {
	lw := newLiveWorld(t)
	attachPipeline(t, lw.testWorld, usage.Config{Workers: -1})
	alice := lw.client(t, lw.alice)
	gsp := lw.client(t, lw.gsp)

	sub := usageSubmission(t, lw.testWorld, "auth-1", 3600)
	// Alice (the drawer) must not be able to push charges crediting the
	// GSP's account.
	if _, err := alice.UsageSubmit([]usage.Submission{sub}); !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("foreign-recipient submit err = %v, want %s", err, CodeDenied)
	}
	// Drain requires admin.
	if _, err := gsp.UsageDrain(time.Second); !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("non-admin drain err = %v, want %s", err, CodeDenied)
	}
	// Unknown recipient account fails the batch.
	bad := sub
	bad.Recipient = "01-0001-09999999"
	if _, err := gsp.UsageSubmit([]usage.Submission{bad}); !IsRemoteCode(err, CodeNotFound) {
		t.Fatalf("unknown-recipient err = %v, want %s", err, CodeNotFound)
	}
	// The RUR evidence must name the drawer's certificate holder as the
	// consumer: a fabricated record naming someone else is refused.
	forged := usageSubmission(t, lw.testWorld, "auth-forged", 3600)
	rec, err := rur.Decode(forged.RUR)
	if err != nil {
		t.Fatal(err)
	}
	rec.User.CertificateName = "CN=not-alice,O=VO-A"
	if forged.RUR, err = rur.Encode(rec, rur.FormatJSON); err != nil {
		t.Fatal(err)
	}
	if _, err := gsp.UsageSubmit([]usage.Submission{forged}); !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("forged-consumer err = %v, want %s", err, CodeDenied)
	}
	// ... and the caller as the provider.
	wrongGSP := usageSubmission(t, lw.testWorld, "auth-wrong-gsp", 3600)
	if rec, err = rur.Decode(wrongGSP.RUR); err != nil {
		t.Fatal(err)
	}
	rec.Resource.CertificateName = "CN=other-gsp,O=VO-A"
	if wrongGSP.RUR, err = rur.Encode(rec, rur.FormatJSON); err != nil {
		t.Fatal(err)
	}
	if _, err := gsp.UsageSubmit([]usage.Submission{wrongGSP}); !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("wrong-provider err = %v, want %s", err, CodeDenied)
	}
}

func TestUsageDisabledAndOverloadedCodes(t *testing.T) {
	lw := newLiveWorld(t)
	gsp := lw.client(t, lw.gsp)
	// No pipeline attached: unavailable.
	if _, err := gsp.UsageStatus(); !IsRemoteCode(err, CodeUnavailable) {
		t.Fatalf("disabled status err = %v, want %s", err, CodeUnavailable)
	}
	// Tiny queue: overload surfaces as the stable wire code.
	attachPipeline(t, lw.testWorld, usage.Config{Workers: -1, MaxPending: 1})
	if _, err := gsp.UsageSubmit([]usage.Submission{
		usageSubmission(t, lw.testWorld, "ov-1", 36),
		usageSubmission(t, lw.testWorld, "ov-2", 36),
	}); !IsRemoteCode(err, CodeOverloaded) {
		t.Fatalf("overload err = %v, want %s", err, CodeOverloaded)
	}
	// And the typed error maps back through ErrorCode directly.
	if got := ErrorCode(fmt.Errorf("wrapped: %w", usage.ErrOverloaded)); got != CodeOverloaded {
		t.Errorf("ErrorCode(ErrOverloaded) = %q", got)
	}
	if got := ErrorCode(errors.New("boom")); got != CodeInternal {
		t.Errorf("ErrorCode(other) = %q", got)
	}
}
