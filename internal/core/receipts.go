package core

import (
	"fmt"
	"sync"
	"time"

	"gridbank/internal/pki"
)

// ReceiptBatchContext domain-separates batched transfer receipts.
const ReceiptBatchContext = "gridbank/receipt-batch/v1"

// ReceiptBatch is the payload of one batched receipt signature: many
// transfer receipts under a single bank signature. A transfer's proof is
// the envelope plus its index into Receipts.
type ReceiptBatch struct {
	Receipts []TransferReceipt `json:"receipts"`
}

// BatchReceiptProof proves one transfer out of a signed batch.
type BatchReceiptProof struct {
	Envelope *pki.Signed `json:"envelope"`
	Index    int         `json:"index"`
}

// VerifyBatchReceipt verifies the batch envelope against the trust store
// and returns the receipt at the proof's index plus the signer subject.
func VerifyBatchReceipt(proof *BatchReceiptProof, ts *pki.TrustStore, now time.Time) (*TransferReceipt, string, error) {
	if proof == nil || proof.Envelope == nil {
		return nil, "", fmt.Errorf("core: empty batch receipt proof")
	}
	var batch ReceiptBatch
	signer, err := proof.Envelope.Verify(ts, ReceiptBatchContext, now, &batch)
	if err != nil {
		return nil, "", err
	}
	if proof.Index < 0 || proof.Index >= len(batch.Receipts) {
		return nil, "", fmt.Errorf("core: batch receipt index %d out of range (%d receipts)", proof.Index, len(batch.Receipts))
	}
	return &batch.Receipts[proof.Index], signer, nil
}

// Receipt batcher tuning: how long the leader waits for followers to
// pile on, and how many receipts one signature may cover.
const (
	receiptBatchWindow = time.Millisecond
	receiptBatchMax    = 256
)

// receiptGroup is one in-flight signing batch. The first caller to open
// a group is its leader: it waits the batch window, seals the group,
// signs once, and wakes the followers.
type receiptGroup struct {
	receipts []TransferReceipt
	done     chan struct{}
	env      *pki.Signed
	err      error
}

// receiptBatcher amortizes ECDSA receipt signing across concurrent
// DirectTransfer calls: instead of one signature per transfer, callers
// that opt in share a group-commit leader that signs one ReceiptBatch
// covering everyone who arrived inside the window. The same pattern the
// db journal uses for fsyncs, applied to signatures.
type receiptBatcher struct {
	id  *pki.Identity
	now func() time.Time

	mu  sync.Mutex
	cur *receiptGroup
}

func newReceiptBatcher(id *pki.Identity, now func() time.Time) *receiptBatcher {
	return &receiptBatcher{id: id, now: now}
}

// sign enrolls the receipt in the current batch and blocks until the
// batch signature exists, returning the proof for this receipt.
func (rb *receiptBatcher) sign(r TransferReceipt) (*BatchReceiptProof, error) {
	rb.mu.Lock()
	g := rb.cur
	leader := false
	if g == nil {
		g = &receiptGroup{done: make(chan struct{})}
		rb.cur = g
		leader = true
	}
	idx := len(g.receipts)
	g.receipts = append(g.receipts, r)
	if !leader && len(g.receipts) >= receiptBatchMax {
		// Full: detach so the next caller opens a fresh group. The
		// leader still signs this one after its window.
		rb.cur = nil
	}
	rb.mu.Unlock()

	if leader {
		time.Sleep(receiptBatchWindow)
		rb.mu.Lock()
		if rb.cur == g {
			rb.cur = nil // seal: no further appends possible
		}
		rb.mu.Unlock()
		g.env, g.err = pki.Sign(rb.id, ReceiptBatchContext, ReceiptBatch{Receipts: g.receipts})
		close(g.done)
	} else {
		<-g.done
	}
	if g.err != nil {
		return nil, g.err
	}
	return &BatchReceiptProof{Envelope: g.env, Index: idx}, nil
}
