package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// TestRedemptionSurvivesRestart: the double-spend registry is durable —
// a cheque redeemed before a crash cannot be redeemed again after
// journal replay, and locked funds state is intact.
func TestRedemptionSurvivesRestart(t *testing.T) {
	ca, err := pki.NewCA("CA", "VO", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bankID, _ := ca.Issue(pki.IssueOptions{CommonName: "bank"})
	alice, _ := ca.Issue(pki.IssueOptions{CommonName: "alice"})
	gsp, _ := ca.Issue(pki.IssueOptions{CommonName: "gsp"})
	ts := pki.NewTrustStore(ca.Certificate())
	journal := db.NewMemJournal()

	store1, _ := db.Open(journal)
	bank1, err := NewBank(store1, BankConfig{Identity: bankID, Trust: ts, Admins: []string{"CN=root"}})
	if err != nil {
		t.Fatal(err)
	}
	aAcct, err := bank1.CreateAccount(alice.SubjectName(), &CreateAccountRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank1.CreateAccount(gsp.SubjectName(), &CreateAccountRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bank1.AdminDeposit("CN=root", &AdminAmountRequest{AccountID: aAcct.Account.AccountID, Amount: currency.FromG(100)}); err != nil {
		t.Fatal(err)
	}
	// Two cheques: one redeemed pre-crash, one left outstanding.
	redeemed, err := bank1.RequestCheque(alice.SubjectName(), &RequestChequeRequest{
		AccountID: aAcct.Account.AccountID, Amount: currency.FromG(30), PayeeCert: gsp.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	outstanding, err := bank1.RequestCheque(alice.SubjectName(), &RequestChequeRequest{
		AccountID: aAcct.Account.AccountID, Amount: currency.FromG(20), PayeeCert: gsp.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank1.RedeemCheque(gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: redeemed.Cheque,
		Claim:  payment.ChequeClaim{Serial: redeemed.Cheque.Cheque.Serial, Amount: currency.FromG(30)},
	}); err != nil {
		t.Fatal(err)
	}

	// Crash: rebuild everything from the journal.
	store2, err := db.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	bank2, err := NewBank(store2, BankConfig{Identity: bankID, Trust: ts})
	if err != nil {
		t.Fatal(err)
	}
	// The pre-crash redemption is remembered.
	if _, err := bank2.RedeemCheque(gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: redeemed.Cheque,
		Claim:  payment.ChequeClaim{Serial: redeemed.Cheque.Cheque.Serial, Amount: currency.FromG(1)},
	}); !errors.Is(err, ErrAlreadyRedeemed) {
		t.Fatalf("post-restart double redeem err = %v", err)
	}
	// The outstanding cheque's lock survived and it redeems normally.
	a, err := bank2.Manager().Details(aAcct.Account.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if a.LockedBalance != currency.FromG(20) {
		t.Fatalf("post-restart lock = %s", a.LockedBalance)
	}
	red, err := bank2.RedeemCheque(gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: outstanding.Cheque,
		Claim:  payment.ChequeClaim{Serial: outstanding.Cheque.Cheque.Serial, Amount: currency.FromG(20)},
	})
	if err != nil || red.Paid != currency.FromG(20) {
		t.Fatalf("post-restart redeem = %+v, %v", red, err)
	}
	total, err := bank2.Manager().TotalBalance()
	if err != nil || total != currency.FromG(100) {
		t.Fatalf("post-restart total = %s, %v", total, err)
	}
}

// TestChainIncrementalRedemptionProperty: for any increasing sequence of
// claim indices, the total paid equals finalIndex × perWord and the
// drawer's lock shrinks in step. (Property-style over random batch
// plans.)
func TestChainIncrementalRedemptionProperty(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		w := newTestWorld(t)
		const length = 60
		perWord := currency.MustParse("0.1")
		resp, err := w.bank.RequestChain(w.alice.SubjectName(), &RequestChainRequest{
			AccountID: w.aliceAcct.AccountID, PayeeCert: w.gsp.SubjectName(),
			Length: length, PerWord: perWord,
		})
		if err != nil {
			t.Fatal(err)
		}
		chain := &payment.Chain{Commitment: resp.Chain.Commitment, Seed: resp.Seed}
		// Random increasing batch boundaries.
		var indices []int
		cur := 0
		for cur < length {
			cur += 1 + rng.Intn(20)
			if cur > length {
				cur = length
			}
			indices = append(indices, cur)
		}
		var paid currency.Amount
		for _, idx := range indices {
			word, err := chain.Word(idx)
			if err != nil {
				t.Fatal(err)
			}
			red, err := w.bank.RedeemChain(w.gsp.SubjectName(), &RedeemChainRequest{
				Chain: resp.Chain,
				Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: idx, Word: word},
			})
			if err != nil {
				t.Fatalf("trial %d idx %d: %v", trial, idx, err)
			}
			paid = paid.MustAdd(red.Paid)
		}
		final := indices[len(indices)-1]
		want, err := perWord.MulInt(int64(final))
		if err != nil {
			t.Fatal(err)
		}
		if paid != want {
			t.Fatalf("trial %d: paid %s, want %s (batches %v)", trial, paid, want, indices)
		}
		gspAvail, _ := w.balance(t, w.gspAcct.AccountID)
		if gspAvail != want {
			t.Fatalf("trial %d: gsp balance %s, want %s", trial, gspAvail, want)
		}
		// Lock shrank exactly by what was paid.
		_, locked := w.balance(t, w.aliceAcct.AccountID)
		total, _ := perWord.MulInt(length)
		if locked != total.MustSub(want) {
			t.Fatalf("trial %d: locked %s", trial, locked)
		}
	}
}
