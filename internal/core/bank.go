package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/micropay"
	"gridbank/internal/obs"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// Instrument state tables. (Chain rows live in micropay.TableChains on
// the drawer's shard store, owned by the chain redeemer.)
const (
	tableCheques = "cheques"
	tableAdmins  = "admins"
)

// Instrument states.
const (
	stateOutstanding = "outstanding"
	stateRedeemed    = "redeemed"
	stateReleased    = "released"
)

// Errors specific to the bank layer.
var (
	ErrDenied          = errors.New("core: caller not authorized for this operation")
	ErrUnknownSubject  = errors.New("core: subject has no account and is not an administrator")
	ErrUnknownSerial   = errors.New("core: unknown instrument serial")
	ErrAlreadyRedeemed = errors.New("core: instrument already redeemed")
	ErrNotExpired      = errors.New("core: instrument not yet expired")
	ErrStaleIndex      = errors.New("core: chain index not beyond redeemed position")
)

type chequeRow struct {
	Cheque   payment.Cheque  `json:"cheque"`
	State    string          `json:"state"`
	Redeemed currency.Amount `json:"redeemed"`
}

// Notifier delivers a signed transfer confirmation to a GSP address, for
// the pay-before-use flow's "confirmation sent to the specified URL of
// the GSP via another secure channel" (§3.1). Implementations must be
// non-blocking or fast; delivery is best-effort and the receipt is also
// returned to the caller.
type Notifier func(address string, receipt *pki.Signed)

// Bank is the GridBank server core: the §5.2 API implemented over the
// accounts ledger with instrument registries for double-spend prevention.
// All methods take the authenticated caller subject (the base certificate
// name from the Security Layer) and enforce ownership/admin authorization.
type Bank struct {
	led Ledger
	// mgr is the metadata store's accounts manager: the whole ledger
	// for a single-store bank, shard 0's manager for a sharded one.
	// Kept for tooling that wants direct manager access; dispatch goes
	// through led.
	mgr *accounts.Manager
	id  *pki.Identity
	ts  *pki.TrustStore
	now func() time.Time

	notify Notifier

	// usage is the attached settlement pipeline (nil until SetUsage);
	// usageMu guards the attach-vs-dispatch race during wiring.
	usageMu sync.RWMutex
	usage   UsageEngine

	// micropay is the attached streaming chain-redemption pipeline (nil
	// until SetMicropay); micropayMu mirrors usageMu.
	micropayMu sync.RWMutex
	micropay   MicropayEngine

	// chains owns every GridHash chain state transition: the chain row
	// advance and the money movement commit in one store transaction on
	// the drawer's shard (see micropay.Redeemer). Shared with the
	// streaming pipeline so both paths serialize per serial.
	chains *micropay.Redeemer

	// receipts amortizes ECDSA receipt signing for DirectTransfer
	// callers that opt into batched receipts.
	receipts *receiptBatcher

	// instr serializes instrument check-then-act sequences (issue,
	// redeem, release), keyed by instrument serial. Ledger atomicity
	// lives in the db transaction layer; this lock closes the gap
	// between reading an instrument row and writing its new state plus
	// the ledger effect. Striping by serial lets redemptions against
	// different instruments (hence different drawer accounts) proceed
	// in parallel instead of queueing bank-wide.
	instr stripedLock

	// dedupTTL bounds op_dedup idempotency-marker retention; lastSweep
	// (unix nanos) CAS-claims the periodic sweep so exactly one keyed
	// mutation per interval pays the scan.
	dedupTTL  time.Duration
	lastSweep atomic.Int64

	// obsReg is the process telemetry registry Metrics.Snapshot serves
	// (nil = observability disabled; the op answers Enabled=false).
	obsReg *obs.Registry
}

// BankConfig configures a Bank.
type BankConfig struct {
	// Identity is the bank's signing identity (cheques, chain
	// commitments, receipts).
	Identity *pki.Identity
	// Trust is the CA set for verifying clients and instruments.
	Trust *pki.TrustStore
	// Admins lists administrator certificate names bootstrapped into the
	// admin table (§3.2 "administrator tables").
	Admins []string
	// Now supplies time; defaults to time.Now.
	Now func() time.Time
	// Notifier delivers direct-transfer confirmations; optional.
	Notifier Notifier
	// Bank and Branch numbers for issued account IDs.
	Bank   string
	Branch string
	// DedupTTL bounds how long op_dedup idempotency markers are kept
	// (the replay-protection window for keyed mutations). Zero selects
	// DefaultDedupTTL; negative disables the sweep (markers kept
	// forever).
	DedupTTL time.Duration
	// Obs is the process telemetry registry the Metrics.Snapshot op
	// serves. Optional; nil answers Enabled=false with an empty
	// snapshot.
	Obs *obs.Registry
}

// DefaultDedupTTL is the idempotency-marker retention when
// BankConfig.DedupTTL is zero: far longer than any sane retry horizon,
// short enough to bound the op_dedup table.
const DefaultDedupTTL = 24 * time.Hour

// NewBank assembles a bank over a single store.
func NewBank(store *db.Store, cfg BankConfig) (*Bank, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	mgr, err := accounts.NewManager(store, accounts.Config{Bank: cfg.Bank, Branch: cfg.Branch, Now: cfg.Now})
	if err != nil {
		return nil, err
	}
	return NewBankWithLedger(managerLedger{mgr}, cfg)
}

// NewBankWithLedger assembles a bank over an arbitrary Ledger — the
// sharded dispatch path. The ledger's clock must match cfg.Now (the
// deployment layer passes the same function to both).
func NewBankWithLedger(led Ledger, cfg BankConfig) (*Bank, error) {
	if cfg.Identity == nil || cfg.Trust == nil {
		return nil, errors.New("core: bank requires an identity and a trust store")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	for _, t := range []string{tableCheques, tableAdmins} {
		if err := led.Store().EnsureTable(t); err != nil {
			return nil, err
		}
	}
	if cfg.DedupTTL == 0 {
		cfg.DedupTTL = DefaultDedupTTL
	}
	b := &Bank{led: led, id: cfg.Identity, ts: cfg.Trust, now: cfg.Now, notify: cfg.Notifier, dedupTTL: cfg.DedupTTL, obsReg: cfg.Obs}
	b.lastSweep.Store(cfg.Now().UnixNano())
	red, err := micropay.NewRedeemer(led, cfg.Now)
	if err != nil {
		return nil, err
	}
	b.chains = red
	b.receipts = newReceiptBatcher(cfg.Identity, cfg.Now)
	if mm, ok := led.(interface{ MetaManager() *accounts.Manager }); ok {
		b.mgr = mm.MetaManager()
	} else if ml, ok := led.(managerLedger); ok {
		b.mgr = ml.Manager
	}
	for _, admin := range cfg.Admins {
		if err := b.addAdmin(admin); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Manager exposes the underlying ledger (examples, experiments, tests).
func (b *Bank) Manager() *accounts.Manager { return b.mgr }

// Ledger exposes the dispatch surface the bank routes through (the
// sharded ledger in a sharded deployment).
func (b *Bank) Ledger() Ledger { return b.led }

// ChainRedeemer exposes the bank's chain redemption engine, for wiring
// the streaming micropay pipeline over the same per-serial locks.
func (b *Bank) ChainRedeemer() *micropay.Redeemer { return b.chains }

// ShardMap reports the deployment's placement parameters. The primary
// serves every shard itself (ShardIndex −1): clients use the map to
// route replica reads, not primary traffic.
func (b *Bank) ShardMap() (*ShardMapResponse, error) {
	shards, vnodes := b.led.ShardTopology()
	return &ShardMapResponse{Shards: shards, Vnodes: vnodes, ShardIndex: -1}, nil
}

// Identity returns the bank's signing identity.
func (b *Bank) Identity() *pki.Identity { return b.id }

// Trust returns the bank's trust store.
func (b *Bank) Trust() *pki.TrustStore { return b.ts }

// Now returns the bank's current time (the injected clock in
// simulations, wall clock otherwise).
func (b *Bank) Now() time.Time { return b.now() }

// MetricsSnapshot answers the Metrics.Snapshot op: the process
// telemetry registry at this instant, admin-only (telemetry names
// subjects and ops — operational data, not for arbitrary account
// holders). With no registry attached it reports Enabled=false rather
// than erroring, so a fleet scrape tolerates mixed configurations.
func (b *Bank) MetricsSnapshot(caller string) (*MetricsSnapshotResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	return &MetricsSnapshotResponse{
		Enabled:  b.obsReg != nil,
		Snapshot: b.obsReg.SnapshotAt(b.now()),
	}, nil
}

// SetObs attaches (or replaces) the telemetry registry served by
// Metrics.Snapshot. Wiring-time only, not concurrency-safe with
// serving.
func (b *Bank) SetObs(reg *obs.Registry) { b.obsReg = reg }

// ReplicaStatus reports this server's replication role: a primary is
// its own head, with zero staleness. Answering the same op as replicas
// lets read-routing clients treat every endpoint uniformly.
func (b *Bank) ReplicaStatus() (*ReplicaStatusResponse, error) {
	seq := b.led.Store().CurrentSeq()
	return &ReplicaStatusResponse{Role: RolePrimary, AppliedSeq: seq, HeadSeq: seq}, nil
}

func (b *Bank) addAdmin(subject string) error {
	if subject == "" {
		return errors.New("core: empty admin subject")
	}
	return b.led.Store().Update(func(tx *db.Tx) error {
		return tx.Put(tableAdmins, subject, []byte("1"))
	})
}

// IsAdmin reports whether the subject is in the administrator table.
func (b *Bank) IsAdmin(subject string) bool {
	_, err := b.led.Store().Get(tableAdmins, subject)
	return err == nil
}

// Authorize implements the §3.2 connection gate: a subject may hold a
// session if it has an account or administrator privilege. Unknown
// subjects are refused — "this provides a mechanism to limit
// denial-of-service attacks" — except that the server layer admits them
// for the single CreateAccount operation (you cannot have an account
// before you open one).
func (b *Bank) Authorize(subject string) error {
	if b.IsAdmin(subject) {
		return nil
	}
	if _, err := b.led.FindByCertificate(subject, ""); err == nil {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrUnknownSubject, subject)
}

// requireOwner returns the account if the caller owns it or is an admin.
func (b *Bank) requireOwner(caller string, id accounts.ID) (*accounts.Account, error) {
	a, err := b.led.Details(id)
	if err != nil {
		return nil, err
	}
	if a.CertificateName != caller && !b.IsAdmin(caller) {
		return nil, fmt.Errorf("%w: %s does not own %s", ErrDenied, caller, id)
	}
	return a, nil
}

// CreateAccount implements §5.2 Create New Account for the authenticated
// caller.
func (b *Bank) CreateAccount(caller string, req *CreateAccountRequest) (*CreateAccountResponse, error) {
	a, err := b.led.CreateAccount(caller, req.OrganizationName, req.Currency)
	if err != nil {
		return nil, err
	}
	return &CreateAccountResponse{Account: *a}, nil
}

// AccountDetails implements §5.2 Request Account Details / Check Balance.
func (b *Bank) AccountDetails(caller string, req *AccountDetailsRequest) (*AccountDetailsResponse, error) {
	a, err := b.requireOwner(caller, req.AccountID)
	if err != nil {
		return nil, err
	}
	return &AccountDetailsResponse{Account: *a}, nil
}

// UpdateAccount implements §5.2 Update Account Details.
func (b *Bank) UpdateAccount(caller string, req *UpdateAccountRequest) (*AccountDetailsResponse, error) {
	if _, err := b.requireOwner(caller, req.AccountID); err != nil {
		return nil, err
	}
	a, err := b.led.UpdateDetails(req.AccountID, req.CertificateName, req.OrganizationName)
	if err != nil {
		return nil, err
	}
	return &AccountDetailsResponse{Account: *a}, nil
}

// AccountStatement implements §5.2 Request Account Statement.
func (b *Bank) AccountStatement(caller string, req *AccountStatementRequest) (*AccountStatementResponse, error) {
	if _, err := b.requireOwner(caller, req.AccountID); err != nil {
		return nil, err
	}
	st, err := b.led.Statement(req.AccountID, req.Start, req.End)
	if err != nil {
		return nil, err
	}
	return &AccountStatementResponse{Statement: *st}, nil
}

// CheckFunds implements §5.2 Perform Funds Availability Check.
func (b *Bank) CheckFunds(caller string, req *CheckFundsRequest) (*ConfirmationResponse, error) {
	if _, err := b.requireOwner(caller, req.AccountID); err != nil {
		return nil, err
	}
	if err := b.led.CheckFunds(req.AccountID, req.Amount); err != nil {
		return nil, err
	}
	return &ConfirmationResponse{Confirmed: true}, nil
}

// DirectTransfer implements the pay-before-use policy (§3.1, §5.2).
func (b *Bank) DirectTransfer(caller string, req *DirectTransferRequest) (*DirectTransferResponse, error) {
	from, err := b.requireOwner(caller, req.FromAccountID)
	if err != nil {
		return nil, err
	}
	if req.IdempotencyKey != "" {
		b.maybeSweepDedup()
	}
	tr, err := b.led.Transfer(req.FromAccountID, req.ToAccountID, req.Amount, accounts.TransferOptions{DedupKey: req.IdempotencyKey})
	if err != nil {
		return nil, err
	}
	rcpt := TransferReceipt{
		TransactionID: tr.TransactionID,
		Drawer:        tr.DrawerAccountID,
		Recipient:     tr.RecipientAccountID,
		Amount:        tr.Amount,
		Currency:      from.Currency,
		Date:          tr.Date,
	}
	if req.BatchReceipt {
		// Amortized signing: one bank signature covers every concurrent
		// opt-in transfer inside the batch window.
		proof, err := b.receipts.sign(rcpt)
		if err != nil {
			return nil, err
		}
		if req.RecipientAddress != "" && b.notify != nil {
			b.notify(req.RecipientAddress, proof.Envelope)
		}
		return &DirectTransferResponse{TransactionID: tr.TransactionID, BatchProof: proof}, nil
	}
	receipt, err := pki.Sign(b.id, ReceiptContext, rcpt)
	if err != nil {
		return nil, err
	}
	if req.RecipientAddress != "" && b.notify != nil {
		b.notify(req.RecipientAddress, receipt)
	}
	return &DirectTransferResponse{TransactionID: tr.TransactionID, Receipt: receipt}, nil
}

// maybeSweepDedup lazily garbage-collects expired idempotency markers:
// every dedupTTL/4, the first keyed mutation to notice CAS-claims the
// interval and runs the sweep on its own goroutine's time. Losing the
// CAS means another caller is sweeping; sweep errors are dropped (the
// next interval retries, and an unswept marker is only storage, never
// incorrectness).
func (b *Bank) maybeSweepDedup() {
	ttl := b.dedupTTL
	if ttl <= 0 {
		return
	}
	now := b.now()
	last := b.lastSweep.Load()
	if now.Sub(time.Unix(0, last)) < ttl/4 {
		return
	}
	if !b.lastSweep.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	_, _ = b.led.SweepDedup(now.Add(-ttl))
}

// RequestCheque implements §5.2 Request GridCheque: lock the amount
// (§3.4 payment guarantee), persist the serial, sign and return.
func (b *Bank) RequestCheque(caller string, req *RequestChequeRequest) (*RequestChequeResponse, error) {
	acct, err := b.requireOwner(caller, req.AccountID)
	if err != nil {
		return nil, err
	}
	if req.PayeeCert == "" {
		return nil, errors.New("core: cheque requires a payee certificate name")
	}
	ttl := req.TTL
	if ttl <= 0 {
		ttl = 24 * time.Hour
	}
	serial, err := payment.NewSerial()
	if err != nil {
		return nil, err
	}
	now := b.now()
	cheque := payment.Cheque{
		Serial:          serial,
		DrawerAccountID: req.AccountID,
		DrawerCert:      acct.CertificateName,
		PayeeCert:       req.PayeeCert,
		Limit:           req.Amount,
		Currency:        acct.Currency,
		IssuedAt:        now,
		Expires:         now.Add(ttl),
	}
	if err := cheque.Validate(); err != nil {
		return nil, err
	}
	mu := b.instr.of(cheque.Serial)
	mu.Lock()
	defer mu.Unlock()
	if err := b.led.CheckFunds(req.AccountID, req.Amount); err != nil {
		return nil, err
	}
	signed, err := payment.IssueCheque(b.id, cheque)
	if err != nil {
		b.rollbackLock(req.AccountID, req.Amount)
		return nil, err
	}
	if err := b.putChequeRow(&chequeRow{Cheque: cheque, State: stateOutstanding}); err != nil {
		b.rollbackLock(req.AccountID, req.Amount)
		return nil, err
	}
	return &RequestChequeResponse{Cheque: *signed}, nil
}

// rollbackLock undoes a CheckFunds lock after a failed issue step.
func (b *Bank) rollbackLock(id accounts.ID, amount currency.Amount) {
	// Best effort: the lock row plus instrument absence keeps the ledger
	// consistent even if this fails (funds merely stay locked).
	_ = b.led.Unlock(id, amount)
}

func (b *Bank) putChequeRow(row *chequeRow) error {
	raw, err := json.Marshal(row)
	if err != nil {
		return err
	}
	return b.led.Store().Update(func(tx *db.Tx) error {
		return tx.Put(tableCheques, row.Cheque.Serial, raw)
	})
}

func (b *Bank) getChequeRow(serial string) (*chequeRow, error) {
	raw, err := b.led.Store().Get(tableCheques, serial)
	if errors.Is(err, db.ErrNoRecord) {
		return nil, fmt.Errorf("%w: cheque %s", ErrUnknownSerial, serial)
	}
	if err != nil {
		return nil, err
	}
	var row chequeRow
	if err := json.Unmarshal(raw, &row); err != nil {
		return nil, fmt.Errorf("core: corrupt cheque row: %w", err)
	}
	return &row, nil
}

// RedeemCheque implements §5.2 Redeem GridCheque. The caller must be the
// payee named on the cheque; the claim amount is paid from the drawer's
// locked funds, the unspent remainder of the lock is released, and the
// serial is marked redeemed (double-spend prevention). The RUR travels
// into the TRANSFER record as evidence.
func (b *Bank) RedeemCheque(caller string, req *RedeemChequeRequest) (*RedeemChequeResponse, error) {
	sc := req.Cheque
	if _, err := payment.VerifyCheque(&sc, b.ts, caller, b.now()); err != nil {
		return nil, err
	}
	cheque := sc.Cheque
	if err := cheque.ValidateClaim(&req.Claim); err != nil {
		return nil, err
	}
	payeeAcct, err := b.led.FindByCertificate(caller, cheque.Currency)
	if err != nil {
		return nil, fmt.Errorf("core: payee has no %s account: %w", cheque.Currency, err)
	}
	mu := b.instr.of(cheque.Serial)
	mu.Lock()
	defer mu.Unlock()
	row, err := b.getChequeRow(cheque.Serial)
	if err != nil {
		return nil, err
	}
	if row.State != stateOutstanding {
		return nil, fmt.Errorf("%w: cheque %s is %s", ErrAlreadyRedeemed, cheque.Serial, row.State)
	}
	tr, err := b.led.Transfer(cheque.DrawerAccountID, payeeAcct.AccountID, req.Claim.Amount,
		accounts.TransferOptions{FromLocked: true, RUR: req.Claim.RUR})
	if err != nil {
		return nil, err
	}
	released := cheque.Limit.MustSub(req.Claim.Amount)
	if released.IsPositive() {
		if err := b.led.Unlock(cheque.DrawerAccountID, released); err != nil {
			return nil, fmt.Errorf("core: releasing cheque remainder: %w", err)
		}
	}
	row.State = stateRedeemed
	row.Redeemed = req.Claim.Amount
	if err := b.putChequeRow(row); err != nil {
		return nil, err
	}
	return &RedeemChequeResponse{TransactionID: tr.TransactionID, Paid: req.Claim.Amount, Released: released}, nil
}

// RedeemChequeInterbank settles a cheque claim presented by a
// correspondent branch on behalf of a payee banked at that branch (§6:
// "if a GSC is from one VO and GSP is from another, then their respective
// servers will need to define protocols for settling accounts between the
// branches"). The claim is paid from the drawer's locked funds into the
// correspondent's vostro account at this bank; the correspondent credits
// the payee on its own books. The caller must own the vostro account.
// The usual payee-identity check is replaced by the correspondent's
// attestation — it verified the payee on its side before forwarding.
func (b *Bank) RedeemChequeInterbank(correspondent string, vostro accounts.ID, req *RedeemChequeRequest) (*RedeemChequeResponse, error) {
	vAcct, err := b.led.Details(vostro)
	if err != nil {
		return nil, err
	}
	if vAcct.CertificateName != correspondent {
		return nil, fmt.Errorf("%w: vostro %s is not owned by %s", ErrDenied, vostro, correspondent)
	}
	sc := req.Cheque
	// Payee filter "" — the correspondent vouches for the payee.
	if _, err := payment.VerifyCheque(&sc, b.ts, "", b.now()); err != nil {
		return nil, err
	}
	cheque := sc.Cheque
	if err := cheque.ValidateClaim(&req.Claim); err != nil {
		return nil, err
	}
	mu := b.instr.of(cheque.Serial)
	mu.Lock()
	defer mu.Unlock()
	row, err := b.getChequeRow(cheque.Serial)
	if err != nil {
		return nil, err
	}
	if row.State != stateOutstanding {
		return nil, fmt.Errorf("%w: cheque %s is %s", ErrAlreadyRedeemed, cheque.Serial, row.State)
	}
	tr, err := b.led.Transfer(cheque.DrawerAccountID, vostro, req.Claim.Amount,
		accounts.TransferOptions{FromLocked: true, RUR: req.Claim.RUR})
	if err != nil {
		return nil, err
	}
	released := cheque.Limit.MustSub(req.Claim.Amount)
	if released.IsPositive() {
		if err := b.led.Unlock(cheque.DrawerAccountID, released); err != nil {
			return nil, fmt.Errorf("core: releasing cheque remainder: %w", err)
		}
	}
	row.State = stateRedeemed
	row.Redeemed = req.Claim.Amount
	if err := b.putChequeRow(row); err != nil {
		return nil, err
	}
	return &RedeemChequeResponse{TransactionID: tr.TransactionID, Paid: req.Claim.Amount, Released: released}, nil
}

// ReleaseCheque returns an expired, unredeemed cheque's locked funds to
// the drawer. Only the drawer (or an admin) may release, and only after
// expiry — before that the payee still holds a valid guarantee.
func (b *Bank) ReleaseCheque(caller string, req *ReleaseRequest) (*ReleaseResponse, error) {
	mu := b.instr.of(req.Serial)
	mu.Lock()
	defer mu.Unlock()
	row, err := b.getChequeRow(req.Serial)
	if err != nil {
		return nil, err
	}
	if row.Cheque.DrawerCert != caller && !b.IsAdmin(caller) {
		return nil, fmt.Errorf("%w: %s is not the drawer", ErrDenied, caller)
	}
	if row.State != stateOutstanding {
		return nil, fmt.Errorf("%w: cheque %s is %s", ErrAlreadyRedeemed, req.Serial, row.State)
	}
	if b.now().Before(row.Cheque.Expires) {
		return nil, fmt.Errorf("%w: expires %v", ErrNotExpired, row.Cheque.Expires)
	}
	if err := b.led.Unlock(row.Cheque.DrawerAccountID, row.Cheque.Limit); err != nil {
		return nil, err
	}
	row.State = stateReleased
	if err := b.putChequeRow(row); err != nil {
		return nil, err
	}
	return &ReleaseResponse{Released: row.Cheque.Limit}, nil
}

// RequestChain implements §5.2 Request GridHash chain: the bank generates
// the chain, locks its full value, signs the commitment and returns the
// seed to the consumer (pay-as-you-go, §3.1).
func (b *Bank) RequestChain(caller string, req *RequestChainRequest) (*RequestChainResponse, error) {
	acct, err := b.requireOwner(caller, req.AccountID)
	if err != nil {
		return nil, err
	}
	if req.PayeeCert == "" {
		return nil, errors.New("core: chain requires a payee certificate name")
	}
	ttl := req.TTL
	if ttl <= 0 {
		ttl = 24 * time.Hour
	}
	chain, err := payment.NewChain(req.AccountID, acct.CertificateName, req.PayeeCert,
		req.Length, req.PerWord, acct.Currency, b.now(), ttl)
	if err != nil {
		return nil, err
	}
	total, err := chain.Commitment.Total()
	if err != nil {
		return nil, err
	}
	mu := b.instr.of(chain.Commitment.Serial)
	mu.Lock()
	defer mu.Unlock()
	if err := b.led.CheckFunds(req.AccountID, total); err != nil {
		return nil, err
	}
	signed, err := payment.IssueChain(b.id, chain.Commitment)
	if err != nil {
		b.rollbackLock(req.AccountID, total)
		return nil, err
	}
	if err := b.chains.Put(&micropay.ChainRow{Commitment: chain.Commitment, State: micropay.StateOutstanding}); err != nil {
		b.rollbackLock(req.AccountID, total)
		return nil, err
	}
	return &RequestChainResponse{Chain: *signed, Seed: chain.Seed}, nil
}

// chainErr translates redemption-layer chain errors to the bank's wire
// errors.
func chainErr(serial string, err error) error {
	switch {
	case errors.Is(err, micropay.ErrUnknownChain):
		return fmt.Errorf("%w: chain %s", ErrUnknownSerial, serial)
	case errors.Is(err, micropay.ErrStaleIndex):
		return fmt.Errorf("%w: %v", ErrStaleIndex, err)
	case errors.Is(err, micropay.ErrChainState):
		return fmt.Errorf("%w: %v", ErrAlreadyRedeemed, err)
	}
	return err
}

// RedeemChain implements §5.2 Redeem GridHash chain, incrementally: a
// claim at index i pays (i − redeemedSoFar) × PerWord from the drawer's
// locked funds. GSPs may batch (redeem every N words) or redeem once at
// the end; both fall out of the same delta rule. The payout and the
// chain row advance commit in one ledger transaction (cross-shard: under
// a write-ahead pinned transaction ID), so a crash can never replay a
// paid delta.
//
// Every authorization field — drawer account, currency, expiry — is
// taken from the signature-verified payload VerifyChain returns, never
// from the request's unverified wrapper. The claim's preimage is checked
// incrementally against the last redeemed word, O(delta) hashes.
func (b *Bank) RedeemChain(caller string, req *RedeemChainRequest) (*RedeemChainResponse, error) {
	cc, err := b.verifiedChain(&req.Chain, caller)
	if err != nil {
		return nil, err
	}
	if req.Claim.Serial != cc.Serial {
		return nil, fmt.Errorf("payment: claim serial %q does not match chain %q", req.Claim.Serial, cc.Serial)
	}
	payeeAcct, err := b.led.FindByCertificate(caller, cc.Currency)
	if err != nil {
		return nil, fmt.Errorf("core: payee has no %s account: %w", cc.Currency, err)
	}
	out, err := b.chains.Redeem(cc.Serial, payeeAcct.AccountID, req.Claim.Index, req.Claim.Word, req.Claim.RUR)
	if err != nil {
		return nil, chainErr(cc.Serial, err)
	}
	return &RedeemChainResponse{TransactionID: out.TxID, Paid: out.Paid, IndexNow: out.Index}, nil
}

// verifiedChain verifies a presented chain and returns the
// signature-verified commitment payload.
func (b *Bank) verifiedChain(sc *payment.SignedChain, payeeCert string) (*payment.ChainCommitment, error) {
	_, cc, err := payment.VerifyChain(sc, b.ts, payeeCert, b.now())
	if err != nil {
		return nil, err
	}
	return cc, nil
}

// ReleaseChain returns the unredeemed remainder of an expired chain's
// lock to the drawer. The caller/state/expiry gate runs under the same
// per-serial lock as redemption, and the unlock commits atomically with
// the row's flip to released — a concurrently in-flight redemption
// either lands entirely before the release (and shrinks the remainder)
// or is refused entirely after it.
func (b *Bank) ReleaseChain(caller string, req *ReleaseRequest) (*ReleaseResponse, error) {
	out, err := b.chains.Release(req.Serial, func(row *micropay.ChainRow) error {
		if row.Commitment.DrawerCert != caller && !b.IsAdmin(caller) {
			return fmt.Errorf("%w: %s is not the drawer", ErrDenied, caller)
		}
		if row.State != micropay.StateOutstanding {
			return fmt.Errorf("%w: chain %s is %s", ErrAlreadyRedeemed, req.Serial, row.State)
		}
		if b.now().Before(row.Commitment.Expires) {
			return fmt.Errorf("%w: expires %v", ErrNotExpired, row.Commitment.Expires)
		}
		return nil
	})
	if err != nil {
		return nil, chainErr(req.Serial, err)
	}
	return &ReleaseResponse{Released: out.Paid}, nil
}

// --- Admin API (§5.2.1) ----------------------------------------------------

func (b *Bank) requireAdmin(caller string) error {
	if !b.IsAdmin(caller) {
		return fmt.Errorf("%w: %s is not an administrator", ErrDenied, caller)
	}
	return nil
}

// AdminDeposit credits an account with externally received funds.
func (b *Bank) AdminDeposit(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	if err := b.led.Deposit(req.AccountID, req.Amount); err != nil {
		return nil, err
	}
	return &ConfirmationResponse{Confirmed: true}, nil
}

// AdminWithdraw debits an account for external payout.
func (b *Bank) AdminWithdraw(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	if err := b.led.Withdraw(req.AccountID, req.Amount); err != nil {
		return nil, err
	}
	return &ConfirmationResponse{Confirmed: true}, nil
}

// AdminChangeCreditLimit sets an account's credit limit.
func (b *Bank) AdminChangeCreditLimit(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	if err := b.led.ChangeCreditLimit(req.AccountID, req.Amount); err != nil {
		return nil, err
	}
	return &ConfirmationResponse{Confirmed: true}, nil
}

// AdminCancelTransfer reverses a transfer.
func (b *Bank) AdminCancelTransfer(caller string, req *AdminCancelRequest) (*ConfirmationResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	if err := b.led.CancelTransfer(req.TransactionID); err != nil {
		return nil, err
	}
	return &ConfirmationResponse{Confirmed: true}, nil
}

// AdminCloseAccount closes an account.
func (b *Bank) AdminCloseAccount(caller string, req *AdminCloseRequest) (*ConfirmationResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	if err := b.led.CloseAccount(req.AccountID, req.TransferTo); err != nil {
		return nil, err
	}
	return &ConfirmationResponse{Confirmed: true}, nil
}

// AdminListAccounts lists all accounts.
func (b *Bank) AdminListAccounts(caller string) (*AdminAccountsResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	accts, err := b.led.Accounts()
	if err != nil {
		return nil, err
	}
	return &AdminAccountsResponse{Accounts: accts}, nil
}
