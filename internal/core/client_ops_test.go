package core

import (
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/payment"
)

// TestAllClientOpsOverWire drives every remaining §5.2/§5.2.1 operation
// through the TLS client, completing wire coverage of the API surface.
func TestAllClientOpsOverWire(t *testing.T) {
	lw := newLiveWorld(t)
	alice := lw.client(t, lw.alice)
	gsp := lw.client(t, lw.gsp)
	admin := lw.client(t, lw.admin)

	// UpdateAccount (§5.2: only CertificateName and OrganizationName).
	upd, err := alice.UpdateAccount(lw.aliceAcct.AccountID, lw.alice.SubjectName(), "Renamed Org")
	if err != nil {
		t.Fatal(err)
	}
	if upd.OrganizationName != "Renamed Org" {
		t.Fatalf("update = %+v", upd)
	}

	// CheckFunds locks over the wire.
	if err := alice.CheckFunds(lw.aliceAcct.AccountID, currency.FromG(100)); err != nil {
		t.Fatal(err)
	}
	a, err := alice.AccountDetails(lw.aliceAcct.AccountID)
	if err != nil || a.LockedBalance != currency.FromG(100) {
		t.Fatalf("lock over wire: %+v, %v", a, err)
	}

	// Release flows over the wire: issue a short cheque, expire it,
	// release.
	cheque, err := alice.RequestCheque(lw.aliceAcct.AccountID, currency.FromG(10), lw.gsp.SubjectName(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lw.clock.Advance(time.Hour)
	released, err := alice.ReleaseCheque(cheque.Cheque.Serial)
	if err != nil || released != currency.FromG(10) {
		t.Fatalf("release cheque = %s, %v", released, err)
	}
	chain, signed, err := alice.RequestChain(lw.aliceAcct.AccountID, lw.gsp.SubjectName(), 10, currency.FromG(1), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	_ = signed
	lw.clock.Advance(time.Hour)
	releasedChain, err := alice.ReleaseChain(chain.Commitment.Serial)
	if err != nil || releasedChain != currency.FromG(10) {
		t.Fatalf("release chain = %s, %v", releasedChain, err)
	}

	// Admin: credit limit, cancel, withdraw, close — all over the wire.
	if err := admin.AdminChangeCreditLimit(lw.gspAcct.AccountID, currency.FromG(5)); err != nil {
		t.Fatal(err)
	}
	dt, err := alice.DirectTransfer(lw.aliceAcct.AccountID, lw.gspAcct.AccountID, currency.FromG(7), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.AdminCancelTransfer(dt.TransactionID); err != nil {
		t.Fatal(err)
	}
	g, _ := gsp.AccountDetails(lw.gspAcct.AccountID)
	if !g.AvailableBalance.IsZero() {
		t.Fatalf("cancel did not restore: %s", g.AvailableBalance)
	}
	if err := admin.AdminWithdraw(lw.aliceAcct.AccountID, currency.FromG(1)); err != nil {
		t.Fatal(err)
	}
	// Close gsp's empty account, sweeping to alice (nothing to sweep).
	if err := admin.AdminChangeCreditLimit(lw.gspAcct.AccountID, 0); err != nil {
		t.Fatal(err)
	}
	if err := admin.AdminCloseAccount(lw.gspAcct.AccountID, lw.aliceAcct.AccountID); err != nil {
		t.Fatal(err)
	}
	accts, err := admin.AdminListAccounts()
	if err != nil {
		t.Fatal(err)
	}
	var closed bool
	for _, acct := range accts {
		if acct.AccountID == lw.gspAcct.AccountID && acct.Closed {
			closed = true
		}
	}
	if !closed {
		t.Fatal("account not closed over wire")
	}
}

// TestWireErrorsCarryCodes checks the stable error codes across a
// sampling of failure classes, end to end.
func TestWireErrorsCarryCodes(t *testing.T) {
	lw := newLiveWorld(t)
	alice := lw.client(t, lw.alice)
	gsp := lw.client(t, lw.gsp)

	if _, err := alice.AccountDetails("99-9999-99999999"); !IsRemoteCode(err, CodeNotFound) {
		t.Errorf("not-found code: %v", err)
	}
	if _, err := alice.DirectTransfer(lw.aliceAcct.AccountID, lw.gspAcct.AccountID, currency.FromG(999999), ""); !IsRemoteCode(err, CodeInsufficient) {
		t.Errorf("insufficient code: %v", err)
	}
	if _, err := alice.CreateAccount("", currency.GridDollar); !IsRemoteCode(err, CodeDuplicate) {
		t.Errorf("duplicate code: %v", err)
	}
	// Conflict: double redemption.
	cheque, err := alice.RequestCheque(lw.aliceAcct.AccountID, currency.FromG(5), lw.gsp.SubjectName(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	claim := &payment.ChequeClaim{Serial: cheque.Cheque.Serial, Amount: currency.FromG(5)}
	if _, err := gsp.RedeemCheque(cheque, claim); err != nil {
		t.Fatal(err)
	}
	if _, err := gsp.RedeemCheque(cheque, claim); !IsRemoteCode(err, CodeConflict) {
		t.Errorf("conflict code: %v", err)
	}
	// Invalid: zero-amount transfer.
	if _, err := alice.DirectTransfer(lw.aliceAcct.AccountID, lw.gspAcct.AccountID, 0, ""); !IsRemoteCode(err, CodeInvalid) {
		t.Errorf("invalid code: %v", err)
	}
}
