package core

import (
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/db"
	"gridbank/internal/micropay"
	"gridbank/internal/obs"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/usage"
	"gridbank/internal/wire"
)

// API is the operation surface Server dispatches to. Two
// implementations exist: *Bank, the primary, which serves everything;
// and *ReadOnlyBank, a WAL-shipped replica, which serves the query
// subset of §5.2 and answers every mutation with a redirect-to-primary
// error. The server layer — connection gate, TLS, framing, custom op
// registry — is identical over both.
type API interface {
	Identity() *pki.Identity
	Trust() *pki.TrustStore
	Authorize(subject string) error

	CreateAccount(caller string, req *CreateAccountRequest) (*CreateAccountResponse, error)
	AccountDetails(caller string, req *AccountDetailsRequest) (*AccountDetailsResponse, error)
	UpdateAccount(caller string, req *UpdateAccountRequest) (*AccountDetailsResponse, error)
	AccountStatement(caller string, req *AccountStatementRequest) (*AccountStatementResponse, error)
	CheckFunds(caller string, req *CheckFundsRequest) (*ConfirmationResponse, error)
	DirectTransfer(caller string, req *DirectTransferRequest) (*DirectTransferResponse, error)
	RequestCheque(caller string, req *RequestChequeRequest) (*RequestChequeResponse, error)
	RedeemCheque(caller string, req *RedeemChequeRequest) (*RedeemChequeResponse, error)
	RequestChain(caller string, req *RequestChainRequest) (*RequestChainResponse, error)
	RedeemChain(caller string, req *RedeemChainRequest) (*RedeemChainResponse, error)
	ReleaseCheque(caller string, req *ReleaseRequest) (*ReleaseResponse, error)
	ReleaseChain(caller string, req *ReleaseRequest) (*ReleaseResponse, error)

	AdminDeposit(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error)
	AdminWithdraw(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error)
	AdminChangeCreditLimit(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error)
	AdminCancelTransfer(caller string, req *AdminCancelRequest) (*ConfirmationResponse, error)
	AdminCloseAccount(caller string, req *AdminCloseRequest) (*ConfirmationResponse, error)
	AdminListAccounts(caller string) (*AdminAccountsResponse, error)

	UsageSubmit(caller string, req *UsageSubmitRequest) (*UsageSubmitResponse, error)
	UsageStatus(caller string) (*UsageStatusResponse, error)
	UsageDrain(caller string, req *UsageDrainRequest) (*UsageDrainResponse, error)

	MicropaySubmit(caller string, req *MicropaySubmitRequest) (*MicropaySubmitResponse, error)
	MicropayStatus(caller string) (*MicropayStatusResponse, error)
	MicropayDrain(caller string, req *MicropayDrainRequest) (*MicropayDrainResponse, error)

	MetricsSnapshot(caller string) (*MetricsSnapshotResponse, error)

	ReplicaStatus() (*ReplicaStatusResponse, error)
	ShardMap() (*ShardMapResponse, error)
}

// Server limit defaults; override the exported fields before Serve.
const (
	// DefaultMaxInFlight is the per-connection concurrent-dispatch cap.
	DefaultMaxInFlight = 32
	// DefaultIdleTimeout is how long a connection may sit with no
	// inbound traffic and no executing requests before the server drops
	// it.
	DefaultIdleTimeout = 5 * time.Minute
	// DefaultWriteTimeout bounds each coalesced response flush.
	DefaultWriteTimeout = time.Minute

	// coalesceBytes caps how much queued response data one flush
	// gathers into a single write (syscall/TLS-record amortization).
	coalesceBytes = 64 << 10
	// writerBufMax is the writer's scratch-buffer retention cap: a
	// single giant response should not pin its allocation for the
	// connection's lifetime.
	writerBufMax = 256 << 10
)

// Server exposes a bank API over mutually-authenticated TLS using the
// wire protocol. Per §3.2, a connection is only retained if the
// authenticated subject has an account or administrator privilege;
// unknown subjects may execute exactly one operation — CreateAccount —
// and anything else closes the connection ("clients simply cannot send
// any requests before a connection is established").
//
// Connections are multiplexed: each request dispatches on its own
// goroutine (bounded by MaxInFlight) and responses return as they
// complete, matched to requests by ID — a slow durable op does not
// head-of-line-block a cheap read behind it, and concurrent requests on
// one connection reach the group-commit WAL together. Responses for
// different IDs may therefore arrive in any order; each ID gets exactly
// one response.
type Server struct {
	bank API
	cfg  *tls.Config

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	handlers map[string]OpHandler

	// Logf logs connection-level events; defaults to log.Printf. Tests
	// silence it.
	Logf func(format string, args ...any)

	// MaxInFlight caps concurrently executing requests per connection;
	// further reads wait until a slot frees (backpressure, not an
	// error). 0 means DefaultMaxInFlight. Set before Serve.
	MaxInFlight int
	// MaxConns caps concurrent connections: the accept gate closes
	// excess connections immediately (DoS hygiene, §3.2). 0 means
	// unlimited. Set before Serve.
	MaxConns int
	// IdleTimeout drops a connection with no inbound traffic and no
	// in-flight requests — the main server no longer blocks forever on
	// dead peers. 0 means DefaultIdleTimeout; negative disables. Set
	// before Serve.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response flush; a wedged peer errors the
	// connection out instead of pinning its writer. 0 means
	// DefaultWriteTimeout; negative disables. Set before Serve.
	WriteTimeout time.Duration
	// WireCodecs lists the codec names the server accepts in the
	// first-frame negotiation (see wire.Codec). Nil accepts every
	// supported codec (bin1 and json); [wire.CodecJSON] pins the server
	// to the seed format, refusing binary offers — clients then stay on
	// JSON, exactly as if they had never offered. Connections that never
	// offer are untouched either way. Set before Serve.
	WireCodecs []string

	// Obs instruments the server (per-op latency, queue wait, in-flight,
	// write-batch sizes, deadline sheds — see README "Observability" for
	// the metric names). Nil disables instrumentation entirely; the hot
	// path then touches only nil no-op handles. Set before Serve.
	Obs *obs.Registry
	// SlowOpLog, when set, receives one structured line per request span
	// whose queue wait + handler latency reaches SlowOpThreshold,
	// carrying the full timing breakdown and the caller's trace ID. Nil
	// disables. Set before Serve.
	SlowOpLog *obs.Logger
	// SlowOpThreshold is the slow-op bar; 0 with SlowOpLog set logs
	// every span. Set before Serve.
	SlowOpThreshold time.Duration
	// OnSpan, when set, observes every completed request span after
	// dispatch (test hooks, custom sinks). It runs on the dispatch
	// goroutine — keep it cheap. Set before Serve.
	OnSpan func(Span)

	metOnce sync.Once
	met     *serverMetrics
}

// Span is the per-request timing record the server threads through
// dispatch: how long the request waited behind MaxInFlight, how long
// the handler ran, and how it ended. Trace is the client-stamped wire
// trace ID (empty for untraced callers).
type Span struct {
	Trace     string
	Op        string
	Subject   string
	QueueWait time.Duration
	Handler   time.Duration
	OK        bool
	Code      string
}

// serverMetrics holds pre-resolved instrument handles so the dispatch
// hot path never takes the registry lock for built-in ops. Nil (obs
// disabled) short-circuits every method via nil-safe handles.
type serverMetrics struct {
	requests     *obs.Counter
	errors       *obs.Counter
	inflight     *obs.Gauge
	queueWait    *obs.Histogram
	deadlineShed *obs.Counter
	writeBatch   *obs.Histogram
	slowOps      *obs.Counter
	opLatency    map[string]*obs.Histogram

	reg *obs.Registry // fallback for custom-registered ops
	mu  sync.RWMutex
}

func (m *serverMetrics) latencyFor(op string) *obs.Histogram {
	if m.reg == nil {
		return nil
	}
	m.mu.RLock()
	h := m.opLatency[op]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	h = m.reg.Histogram("server.op." + op + ".latency")
	m.mu.Lock()
	m.opLatency[op] = h
	m.mu.Unlock()
	return h
}

// metrics lazily resolves the server's instrument handles. Always
// non-nil; with Obs unset every handle inside is a nil no-op, so
// instrumented paths never branch on "observability off".
func (s *Server) metrics() *serverMetrics {
	s.metOnce.Do(func() {
		m := &serverMetrics{opLatency: make(map[string]*obs.Histogram), reg: s.Obs}
		if s.Obs != nil {
			m.requests = s.Obs.Counter("server.requests")
			m.errors = s.Obs.Counter("server.errors")
			m.inflight = s.Obs.Gauge("server.inflight")
			m.queueWait = s.Obs.Histogram("server.queue_wait")
			m.deadlineShed = s.Obs.Counter("server.deadline_shed")
			m.writeBatch = s.Obs.Histogram("server.write_batch")
			m.slowOps = s.Obs.Counter("server.slow_ops")
			for _, op := range builtinOps {
				m.opLatency[op] = s.Obs.Histogram("server.op." + op + ".latency")
			}
		}
		s.met = m
	})
	return s.met
}

// observedDispatch wraps dispatch in a request span: queue wait is the
// time since the frame was read (semaphore wait plus scheduling),
// handler latency is the dispatch itself, and the outcome code is the
// response's. The span feeds the per-op metrics, OnSpan, and — past
// SlowOpThreshold — the slow-op log.
func (s *Server) observedDispatch(subject string, req *wire.Request, arrived time.Time) *wire.Response {
	met := s.metrics()
	queueWait := time.Since(arrived)
	start := arrived.Add(queueWait)
	resp := s.dispatch(subject, req)
	handler := time.Since(start)
	met.requests.Inc()
	met.queueWait.ObserveDuration(queueWait)
	met.latencyFor(req.Op).ObserveDuration(handler)
	code := resp.Code
	if resp.OK && code == "" {
		code = "ok" // CodeOK is the empty string; spans want a greppable token
	}
	if !resp.OK {
		met.errors.Inc()
	}
	s.finishSpan(Span{
		Trace:     req.Trace,
		Op:        req.Op,
		Subject:   subject,
		QueueWait: queueWait,
		Handler:   handler,
		OK:        resp.OK,
		Code:      code,
	})
	return resp
}

// finishSpan fans a completed span out to OnSpan and the slow-op log.
func (s *Server) finishSpan(span Span) {
	if s.OnSpan != nil {
		s.OnSpan(span)
	}
	if s.SlowOpLog == nil || span.QueueWait+span.Handler < s.SlowOpThreshold {
		return
	}
	s.metrics().slowOps.Inc()
	s.SlowOpLog.Warn("slow op",
		"trace", span.Trace,
		"op", span.Op,
		"subject", span.Subject,
		"queue_wait_us", span.QueueWait.Microseconds(),
		"handler_us", span.Handler.Microseconds(),
		"ok", span.OK,
		"code", span.Code,
	)
}

// OpHandler serves one custom operation: the §3.2 extension point
// ("any other payment scheme that defines its own data structures and
// communication protocol can be added without need to modify GB Accounts
// or GB Security modules"). The handler receives the authenticated
// caller subject and the raw request body, and returns a JSON-encodable
// result or an error (mapped to a wire code by ErrorCode).
type OpHandler func(subject string, body []byte) (any, error)

// NewServer builds a TLS server for the bank using its identity and
// trust store.
func NewServer(bank *Bank, serverIdentity *pki.Identity) (*Server, error) {
	return newServer(bank, serverIdentity)
}

// NewReadOnlyServer builds a TLS server for a replica's read-only bank:
// the same gate, transport and wire protocol as a primary, but queries
// are answered from the replica's store and mutations redirect to the
// primary.
func NewReadOnlyServer(bank *ReadOnlyBank, serverIdentity *pki.Identity) (*Server, error) {
	return newServer(bank, serverIdentity)
}

func newServer(bank API, serverIdentity *pki.Identity) (*Server, error) {
	cfg, err := pki.ServerTLSConfig(serverIdentity, bank.Trust())
	if err != nil {
		return nil, err
	}
	return &Server{
		bank:     bank,
		cfg:      cfg,
		conns:    make(map[net.Conn]struct{}),
		handlers: make(map[string]OpHandler),
		Logf:     log.Printf,
	}, nil
}

// RegisterOp installs a custom operation handler. Built-in operation
// names cannot be overridden; registration after serving has begun is
// safe. Custom ops run behind the same security layer and connection
// gate as built-ins.
func (s *Server) RegisterOp(name string, h OpHandler) error {
	if name == "" || h == nil {
		return errors.New("core: RegisterOp requires a name and handler")
	}
	if isBuiltinOp(name) {
		return fmt.Errorf("core: operation %q is built in", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handlers[name]; ok {
		return fmt.Errorf("core: operation %q already registered", name)
	}
	s.handlers[name] = h
	return nil
}

// builtinOps lists every built-in operation name — the RegisterOp
// collision check and the pre-resolved per-op latency histograms both
// derive from it.
var builtinOps = []string{
	OpPing, OpCreateAccount, OpAccountDetails, OpUpdateAccount, OpAccountStatement,
	OpCheckFunds, OpDirectTransfer, OpRequestCheque, OpRedeemCheque, OpRequestChain,
	OpRedeemChain, OpReleaseCheque, OpReleaseChain, OpAdminDeposit, OpAdminWithdraw,
	OpAdminCreditLimit, OpAdminCancel, OpAdminClose, OpAdminAccounts, OpReplicaStatus,
	OpShardMap, OpUsageSubmit, OpUsageStatus, OpUsageDrain, OpMetrics,
	OpMicropaySubmit, OpMicropayStatus, OpMicropayDrain,
}

func isBuiltinOp(name string) bool {
	for _, op := range builtinOps {
		if op == name {
			return true
		}
	}
	return false
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("core: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		// Register (and wg.Add) under the same lock Close holds while
		// tearing down, so a conn accepted during Close is dropped here
		// instead of leaking an untracked handler.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
			s.mu.Unlock()
			conn.Close()
			s.Logf("gridbank: connection from %s refused: at max-connections cap %d", conn.RemoteAddr(), s.MaxConns)
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address, once serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// maxInFlightCap resolves the per-connection dispatch cap.
func (s *Server) maxInFlightCap() int {
	if s.MaxInFlight > 0 {
		return s.MaxInFlight
	}
	return DefaultMaxInFlight
}

// acceptCodecs resolves the codec accept-list for negotiation.
func (s *Server) acceptCodecs() []string {
	if s.WireCodecs != nil {
		return s.WireCodecs
	}
	return []string{wire.CodecBin1, wire.CodecJSON}
}

// idleTimeoutCap resolves the idle-connection timeout (0 = disabled).
func (s *Server) idleTimeoutCap() time.Duration {
	switch {
	case s.IdleTimeout < 0:
		return 0
	case s.IdleTimeout == 0:
		return DefaultIdleTimeout
	default:
		return s.IdleTimeout
	}
}

// writeTimeoutCap resolves the per-flush write deadline (0 = disabled).
func (s *Server) writeTimeoutCap() time.Duration {
	switch {
	case s.WriteTimeout < 0:
		return 0
	case s.WriteTimeout == 0:
		return DefaultWriteTimeout
	default:
		return s.WriteTimeout
	}
}

// handleConn serves one multiplexed connection: a read loop dispatching
// each request on a bounded worker pool, a single writer goroutine
// coalescing queued responses into batched frame writes, and an idle
// watchdog that drops dead peers.
func (s *Server) handleConn(raw net.Conn) {
	defer raw.Close()
	idle := s.idleTimeoutCap()
	tconn := tls.Server(raw, s.cfg)
	if idle > 0 {
		// A dead peer must not pin the handshake forever either.
		_ = raw.SetDeadline(time.Now().Add(idle))
	}
	if err := tconn.HandshakeContext(context.Background()); err != nil {
		s.Logf("gridbank: handshake from %s failed: %v", raw.RemoteAddr(), err)
		return
	}
	if idle > 0 {
		_ = raw.SetDeadline(time.Time{})
	}
	subject, err := pki.PeerSubject(s.bank.Trust(), tconn.ConnectionState())
	if err != nil {
		s.Logf("gridbank: peer verification from %s failed: %v", raw.RemoteAddr(), err)
		return
	}
	known := s.bank.Authorize(subject) == nil
	conn := wire.NewConn(tconn)
	met := s.metrics()

	maxInFlight := s.maxInFlightCap()
	// Capacity covers every dispatcher plus the read loop's own gate
	// responses, so queuing a response never blocks while the writer is
	// mid-flush.
	writeCh := make(chan *wire.Response, maxInFlight+1)
	sem := make(chan struct{}, maxInFlight)
	var inflight atomic.Int64
	var lastActive atomic.Int64
	lastActive.Store(time.Now().UnixNano())

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop(tconn, writeCh, &lastActive)
	}()
	if idle > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := idle / 4
			if tick < time.Millisecond {
				tick = time.Millisecond
			}
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// Idle means no inbound traffic, nothing executing
					// and nothing recently flushed — a parked-but-live
					// client mid-request is never idle.
					if inflight.Load() == 0 &&
						time.Since(time.Unix(0, lastActive.Load())) > idle {
						tconn.Close() // unblocks the read loop with ErrClosed
						return
					}
				}
			}
		}()
	}

	var dispatches sync.WaitGroup
	negotiated := false
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("gridbank: read from %s (%s): %v", raw.RemoteAddr(), subject, err)
			}
			break
		}
		lastActive.Store(time.Now().UnixNano())
		// First-frame codec negotiation: a request carrying an offer (in
		// practice the client's dial-time Ping) gets the server's pick
		// stamped into its response, and the read side switches right
		// here — the client sends nothing further until it has seen the
		// confirmation, so the next frame is already in the agreed
		// codec. One shot per connection; no agreement means the offer
		// field is simply ignored and the connection stays on JSON.
		var confirm string
		if !negotiated && len(req.Codecs) > 0 {
			negotiated = true
			if c, ok := wire.NegotiateCodec(req.Codecs, s.acceptCodecs()); ok {
				confirm = c.Name()
				conn.SetReadCodec(c)
			}
		}
		// §3.2 gate: unknown subjects may only open an account, and get
		// the seed's strictly serial semantics — nothing read after a
		// deny is ever dispatched, and a CreateAccount completes before
		// the next request is even read.
		if !known {
			if req.Op != OpCreateAccount && req.Op != OpPing {
				writeCh <- &wire.Response{
					ID: req.ID, OK: false, Code: CodeDenied,
					Error: fmt.Sprintf("subject %s has no account; connection refused", subject),
				}
				break // drop the connection, as the paper prescribes
			}
			resp := s.observedDispatch(subject, req, time.Now())
			if req.Op == OpCreateAccount && resp.OK {
				known = true
			}
			resp.Codec = confirm
			writeCh <- resp
			continue
		}
		arrived := time.Now()
		sem <- struct{}{} // backpressure: cap in-flight work per connection
		inflight.Add(1)
		met.inflight.Inc()
		dispatches.Add(1)
		go func(req *wire.Request, confirm string) {
			defer dispatches.Done()
			// Shed work whose caller has already given up: deadline_ms is
			// the caller's remaining budget at send time, so if more than
			// that elapsed while the request sat behind the semaphore and
			// scheduler, executing it burns ledger work and a MaxInFlight
			// slot on an answer nobody is waiting for.
			var resp *wire.Response
			if req.DeadlineMS > 0 && time.Since(arrived) > time.Duration(req.DeadlineMS)*time.Millisecond {
				resp = &wire.Response{
					ID: req.ID, OK: false, Code: CodeDeadlineExceeded,
					Error: fmt.Sprintf("request shed: caller deadline of %dms elapsed before dispatch", req.DeadlineMS),
				}
				met.deadlineShed.Inc()
				s.finishSpan(Span{
					Trace: req.Trace, Op: req.Op, Subject: subject,
					QueueWait: time.Since(arrived), OK: false, Code: CodeDeadlineExceeded,
				})
			} else {
				resp = s.observedDispatch(subject, req, arrived)
			}
			resp.Codec = confirm
			inflight.Add(-1)
			met.inflight.Dec()
			lastActive.Store(time.Now().UnixNano())
			// Queue before releasing the slot: a peer that sends but
			// stops reading stalls the writer, and the semaphore must
			// then stop the read loop from admitting more work — the
			// connection's memory stays bounded by MaxInFlight.
			writeCh <- resp
			<-sem
		}(req, confirm)
	}
	// Drain: let in-flight requests finish and their responses flush
	// (the client may have half-closed after pipelining), then release
	// the writer.
	dispatches.Wait()
	close(writeCh)
	<-writerDone
}

// writeLoop is the connection's single writer: it drains queued
// responses, coalescing bursts into one buffered write — one syscall
// and one TLS record carrying many frames, the group-commit trick at
// the network layer. After a write failure it keeps draining so
// dispatchers never block on a dead connection.
func (s *Server) writeLoop(nc net.Conn, ch <-chan *wire.Response, lastActive *atomic.Int64) {
	dw := &wire.DeadlineWriter{Conn: nc, Timeout: s.writeTimeoutCap()}
	var buf bytes.Buffer
	var failed, closed bool
	codec := wire.Codec(wire.JSON)
	// frame appends a response; one that cannot be framed (in practice:
	// a body past MaxFrame) is replaced by a small typed error so the
	// caller parked on that ID hears back instead of waiting forever. A
	// response confirming a codec negotiation switches the writer for
	// every frame after it — mid-batch is fine, frames are delimited.
	frame := func(resp *wire.Response) {
		if err := codec.AppendFrame(&buf, resp); err != nil {
			s.Logf("gridbank: response %d unsendable: %v", resp.ID, err)
			fallback := &wire.Response{
				ID: resp.ID, OK: false, Code: CodeInternal,
				Error: fmt.Sprintf("response unsendable: %v", err),
			}
			if err := codec.AppendFrame(&buf, fallback); err != nil {
				// Even the error frame failed — the connection's stream
				// state is unknowable; drop it.
				failed = true
				nc.Close()
			}
			return
		}
		if resp.Codec != "" {
			if c, ok := wire.CodecByName(resp.Codec); ok {
				codec = c
			}
		}
	}
	met := s.metrics()
	for resp := range ch {
		if failed {
			continue
		}
		buf.Reset()
		frame(resp)
		batch := int64(1)
	coalesce:
		for !failed && buf.Len() > 0 && buf.Len() < coalesceBytes {
			select {
			case more, ok := <-ch:
				if !ok {
					closed = true
					break coalesce
				}
				frame(more)
				batch++
			default:
				break coalesce
			}
		}
		if !failed && buf.Len() > 0 {
			met.writeBatch.Observe(batch)
			if _, err := dw.Write(buf.Bytes()); err != nil {
				failed = true
				nc.Close() // the connection is dead; unblock the read loop
			} else {
				lastActive.Store(time.Now().UnixNano())
			}
		}
		if buf.Cap() > writerBufMax {
			buf = bytes.Buffer{} // release a one-off giant flush
		}
		if closed {
			return
		}
	}
}

// dispatch routes one request to the bank API.
func (s *Server) dispatch(subject string, req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	var body any
	var err error
	switch req.Op {
	case OpPing:
		body = map[string]string{"bank": s.bank.Identity().SubjectName()}
	case OpCreateAccount:
		var r CreateAccountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.CreateAccount(subject, &r)
		}
	case OpAccountDetails:
		var r AccountDetailsRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AccountDetails(subject, &r)
		}
	case OpUpdateAccount:
		var r UpdateAccountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.UpdateAccount(subject, &r)
		}
	case OpAccountStatement:
		var r AccountStatementRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AccountStatement(subject, &r)
		}
	case OpCheckFunds:
		var r CheckFundsRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.CheckFunds(subject, &r)
		}
	case OpDirectTransfer:
		var r DirectTransferRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.DirectTransfer(subject, &r)
		}
	case OpRequestCheque:
		var r RequestChequeRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.RequestCheque(subject, &r)
		}
	case OpRedeemCheque:
		var r RedeemChequeRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.RedeemCheque(subject, &r)
		}
	case OpRequestChain:
		var r RequestChainRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.RequestChain(subject, &r)
		}
	case OpRedeemChain:
		var r RedeemChainRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.RedeemChain(subject, &r)
		}
	case OpReleaseCheque:
		var r ReleaseRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.ReleaseCheque(subject, &r)
		}
	case OpReleaseChain:
		var r ReleaseRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.ReleaseChain(subject, &r)
		}
	case OpAdminDeposit:
		var r AdminAmountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminDeposit(subject, &r)
		}
	case OpAdminWithdraw:
		var r AdminAmountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminWithdraw(subject, &r)
		}
	case OpAdminCreditLimit:
		var r AdminAmountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminChangeCreditLimit(subject, &r)
		}
	case OpAdminCancel:
		var r AdminCancelRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminCancelTransfer(subject, &r)
		}
	case OpAdminClose:
		var r AdminCloseRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminCloseAccount(subject, &r)
		}
	case OpAdminAccounts:
		body, err = s.bank.AdminListAccounts(subject)
	case OpUsageSubmit:
		var r UsageSubmitRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.UsageSubmit(subject, &r)
		}
	case OpUsageStatus:
		body, err = s.bank.UsageStatus(subject)
	case OpUsageDrain:
		var r UsageDrainRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.UsageDrain(subject, &r)
		}
	case OpMicropaySubmit:
		var r MicropaySubmitRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.MicropaySubmit(subject, &r)
		}
	case OpMicropayStatus:
		body, err = s.bank.MicropayStatus(subject)
	case OpMicropayDrain:
		var r MicropayDrainRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.MicropayDrain(subject, &r)
		}
	case OpMetrics:
		body, err = s.bank.MetricsSnapshot(subject)
	case OpReplicaStatus:
		body, err = s.bank.ReplicaStatus()
	case OpShardMap:
		body, err = s.bank.ShardMap()
	default:
		s.mu.Lock()
		h, ok := s.handlers[req.Op]
		s.mu.Unlock()
		if ok {
			body, err = h(subject, req.Body)
		} else {
			err = fmt.Errorf("core: unknown operation %q", req.Op)
		}
	}
	if err != nil {
		resp.OK = false
		resp.Error = err.Error()
		resp.Code = ErrorCode(err)
		return resp
	}
	raw, err := wire.Encode(body)
	if err != nil {
		resp.OK = false
		resp.Error = "internal encoding error"
		resp.Code = CodeInternal
		return resp
	}
	resp.OK = true
	resp.Body = raw
	return resp
}

// ErrorCode maps an error to a stable wire code.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrReadOnly):
		return CodeReadOnly
	case errors.Is(err, ErrReplicaNotReady), errors.Is(err, ErrUsageDisabled),
		errors.Is(err, ErrMicropayDisabled), errors.Is(err, db.ErrStorageFailed):
		// A storage-failed store is fail-stopped: the write was refused
		// before any ack, so the caller may safely retry against a
		// restarted (journal-recovered) instance.
		return CodeUnavailable
	case errors.Is(err, usage.ErrOverloaded), errors.Is(err, micropay.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrWrongShard):
		return CodeWrongShard
	case errors.Is(err, ErrDenied), errors.Is(err, ErrUnknownSubject):
		return CodeDenied
	case errors.Is(err, accounts.ErrNotFound), errors.Is(err, ErrUnknownSerial),
		errors.Is(err, accounts.ErrNoSuchTransfer):
		return CodeNotFound
	case errors.Is(err, accounts.ErrInsufficient), errors.Is(err, accounts.ErrInsufficientLock):
		return CodeInsufficient
	case errors.Is(err, accounts.ErrDuplicateIdentity):
		return CodeDuplicate
	case errors.Is(err, payment.ErrExpired):
		return CodeExpired
	case errors.Is(err, ErrAlreadyRedeemed), errors.Is(err, ErrStaleIndex),
		errors.Is(err, ErrNotExpired), errors.Is(err, accounts.ErrAlreadyCancelled):
		return CodeConflict
	case errors.Is(err, accounts.ErrBadAmount), errors.Is(err, accounts.ErrCurrencyMismatch),
		errors.Is(err, accounts.ErrClosed), errors.Is(err, accounts.ErrNotEmpty),
		errors.Is(err, payment.ErrWrongPayee), errors.Is(err, payment.ErrOverLimit),
		errors.Is(err, payment.ErrBadWord), errors.Is(err, payment.ErrBadIndex),
		errors.Is(err, pki.ErrBadSignature), errors.Is(err, pki.ErrUntrusted),
		errors.Is(err, pki.ErrExpired):
		return CodeInvalid
	default:
		return CodeInternal
	}
}
