package core

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"gridbank/internal/accounts"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/usage"
	"gridbank/internal/wire"
)

// API is the operation surface Server dispatches to. Two
// implementations exist: *Bank, the primary, which serves everything;
// and *ReadOnlyBank, a WAL-shipped replica, which serves the query
// subset of §5.2 and answers every mutation with a redirect-to-primary
// error. The server layer — connection gate, TLS, framing, custom op
// registry — is identical over both.
type API interface {
	Identity() *pki.Identity
	Trust() *pki.TrustStore
	Authorize(subject string) error

	CreateAccount(caller string, req *CreateAccountRequest) (*CreateAccountResponse, error)
	AccountDetails(caller string, req *AccountDetailsRequest) (*AccountDetailsResponse, error)
	UpdateAccount(caller string, req *UpdateAccountRequest) (*AccountDetailsResponse, error)
	AccountStatement(caller string, req *AccountStatementRequest) (*AccountStatementResponse, error)
	CheckFunds(caller string, req *CheckFundsRequest) (*ConfirmationResponse, error)
	DirectTransfer(caller string, req *DirectTransferRequest) (*DirectTransferResponse, error)
	RequestCheque(caller string, req *RequestChequeRequest) (*RequestChequeResponse, error)
	RedeemCheque(caller string, req *RedeemChequeRequest) (*RedeemChequeResponse, error)
	RequestChain(caller string, req *RequestChainRequest) (*RequestChainResponse, error)
	RedeemChain(caller string, req *RedeemChainRequest) (*RedeemChainResponse, error)
	ReleaseCheque(caller string, req *ReleaseRequest) (*ReleaseResponse, error)
	ReleaseChain(caller string, req *ReleaseRequest) (*ReleaseResponse, error)

	AdminDeposit(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error)
	AdminWithdraw(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error)
	AdminChangeCreditLimit(caller string, req *AdminAmountRequest) (*ConfirmationResponse, error)
	AdminCancelTransfer(caller string, req *AdminCancelRequest) (*ConfirmationResponse, error)
	AdminCloseAccount(caller string, req *AdminCloseRequest) (*ConfirmationResponse, error)
	AdminListAccounts(caller string) (*AdminAccountsResponse, error)

	UsageSubmit(caller string, req *UsageSubmitRequest) (*UsageSubmitResponse, error)
	UsageStatus(caller string) (*UsageStatusResponse, error)
	UsageDrain(caller string, req *UsageDrainRequest) (*UsageDrainResponse, error)

	ReplicaStatus() (*ReplicaStatusResponse, error)
	ShardMap() (*ShardMapResponse, error)
}

// Server exposes a bank API over mutually-authenticated TLS using the
// wire protocol. Per §3.2, a connection is only retained if the
// authenticated subject has an account or administrator privilege;
// unknown subjects may execute exactly one operation — CreateAccount —
// and anything else closes the connection ("clients simply cannot send
// any requests before a connection is established").
type Server struct {
	bank API
	cfg  *tls.Config

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	handlers map[string]OpHandler

	// Logf logs connection-level events; defaults to log.Printf. Tests
	// silence it.
	Logf func(format string, args ...any)
}

// OpHandler serves one custom operation: the §3.2 extension point
// ("any other payment scheme that defines its own data structures and
// communication protocol can be added without need to modify GB Accounts
// or GB Security modules"). The handler receives the authenticated
// caller subject and the raw request body, and returns a JSON-encodable
// result or an error (mapped to a wire code by ErrorCode).
type OpHandler func(subject string, body []byte) (any, error)

// NewServer builds a TLS server for the bank using its identity and
// trust store.
func NewServer(bank *Bank, serverIdentity *pki.Identity) (*Server, error) {
	return newServer(bank, serverIdentity)
}

// NewReadOnlyServer builds a TLS server for a replica's read-only bank:
// the same gate, transport and wire protocol as a primary, but queries
// are answered from the replica's store and mutations redirect to the
// primary.
func NewReadOnlyServer(bank *ReadOnlyBank, serverIdentity *pki.Identity) (*Server, error) {
	return newServer(bank, serverIdentity)
}

func newServer(bank API, serverIdentity *pki.Identity) (*Server, error) {
	cfg, err := pki.ServerTLSConfig(serverIdentity, bank.Trust())
	if err != nil {
		return nil, err
	}
	return &Server{
		bank:     bank,
		cfg:      cfg,
		conns:    make(map[net.Conn]struct{}),
		handlers: make(map[string]OpHandler),
		Logf:     log.Printf,
	}, nil
}

// RegisterOp installs a custom operation handler. Built-in operation
// names cannot be overridden; registration after serving has begun is
// safe. Custom ops run behind the same security layer and connection
// gate as built-ins.
func (s *Server) RegisterOp(name string, h OpHandler) error {
	if name == "" || h == nil {
		return errors.New("core: RegisterOp requires a name and handler")
	}
	if isBuiltinOp(name) {
		return fmt.Errorf("core: operation %q is built in", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handlers[name]; ok {
		return fmt.Errorf("core: operation %q already registered", name)
	}
	s.handlers[name] = h
	return nil
}

func isBuiltinOp(name string) bool {
	switch name {
	case OpPing, OpCreateAccount, OpAccountDetails, OpUpdateAccount, OpAccountStatement,
		OpCheckFunds, OpDirectTransfer, OpRequestCheque, OpRedeemCheque, OpRequestChain,
		OpRedeemChain, OpReleaseCheque, OpReleaseChain, OpAdminDeposit, OpAdminWithdraw,
		OpAdminCreditLimit, OpAdminCancel, OpAdminClose, OpAdminAccounts, OpReplicaStatus,
		OpShardMap, OpUsageSubmit, OpUsageStatus, OpUsageDrain:
		return true
	}
	return false
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("core: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		// Register (and wg.Add) under the same lock Close holds while
		// tearing down, so a conn accepted during Close is dropped here
		// instead of leaking an untracked handler.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address, once serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handleConn(raw net.Conn) {
	defer raw.Close()
	tconn := tls.Server(raw, s.cfg)
	if err := tconn.HandshakeContext(context.Background()); err != nil {
		s.Logf("gridbank: handshake from %s failed: %v", raw.RemoteAddr(), err)
		return
	}
	subject, err := pki.PeerSubject(s.bank.Trust(), tconn.ConnectionState())
	if err != nil {
		s.Logf("gridbank: peer verification from %s failed: %v", raw.RemoteAddr(), err)
		return
	}
	known := s.bank.Authorize(subject) == nil
	conn := wire.NewConn(tconn)
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("gridbank: read from %s (%s): %v", raw.RemoteAddr(), subject, err)
			}
			return
		}
		// §3.2 gate: unknown subjects may only open an account.
		if !known && req.Op != OpCreateAccount && req.Op != OpPing {
			_ = conn.WriteResponse(&wire.Response{
				ID: req.ID, OK: false, Code: CodeDenied,
				Error: fmt.Sprintf("subject %s has no account; connection refused", subject),
			})
			return // drop the connection, as the paper prescribes
		}
		resp := s.dispatch(subject, req)
		if req.Op == OpCreateAccount && resp.OK {
			known = true
		}
		if err := conn.WriteResponse(resp); err != nil {
			return
		}
	}
}

// dispatch routes one request to the bank API.
func (s *Server) dispatch(subject string, req *wire.Request) *wire.Response {
	resp := &wire.Response{ID: req.ID}
	var body any
	var err error
	switch req.Op {
	case OpPing:
		body = map[string]string{"bank": s.bank.Identity().SubjectName()}
	case OpCreateAccount:
		var r CreateAccountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.CreateAccount(subject, &r)
		}
	case OpAccountDetails:
		var r AccountDetailsRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AccountDetails(subject, &r)
		}
	case OpUpdateAccount:
		var r UpdateAccountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.UpdateAccount(subject, &r)
		}
	case OpAccountStatement:
		var r AccountStatementRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AccountStatement(subject, &r)
		}
	case OpCheckFunds:
		var r CheckFundsRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.CheckFunds(subject, &r)
		}
	case OpDirectTransfer:
		var r DirectTransferRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.DirectTransfer(subject, &r)
		}
	case OpRequestCheque:
		var r RequestChequeRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.RequestCheque(subject, &r)
		}
	case OpRedeemCheque:
		var r RedeemChequeRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.RedeemCheque(subject, &r)
		}
	case OpRequestChain:
		var r RequestChainRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.RequestChain(subject, &r)
		}
	case OpRedeemChain:
		var r RedeemChainRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.RedeemChain(subject, &r)
		}
	case OpReleaseCheque:
		var r ReleaseRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.ReleaseCheque(subject, &r)
		}
	case OpReleaseChain:
		var r ReleaseRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.ReleaseChain(subject, &r)
		}
	case OpAdminDeposit:
		var r AdminAmountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminDeposit(subject, &r)
		}
	case OpAdminWithdraw:
		var r AdminAmountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminWithdraw(subject, &r)
		}
	case OpAdminCreditLimit:
		var r AdminAmountRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminChangeCreditLimit(subject, &r)
		}
	case OpAdminCancel:
		var r AdminCancelRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminCancelTransfer(subject, &r)
		}
	case OpAdminClose:
		var r AdminCloseRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.AdminCloseAccount(subject, &r)
		}
	case OpAdminAccounts:
		body, err = s.bank.AdminListAccounts(subject)
	case OpUsageSubmit:
		var r UsageSubmitRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.UsageSubmit(subject, &r)
		}
	case OpUsageStatus:
		body, err = s.bank.UsageStatus(subject)
	case OpUsageDrain:
		var r UsageDrainRequest
		if err = wire.Decode(req.Body, &r); err == nil {
			body, err = s.bank.UsageDrain(subject, &r)
		}
	case OpReplicaStatus:
		body, err = s.bank.ReplicaStatus()
	case OpShardMap:
		body, err = s.bank.ShardMap()
	default:
		s.mu.Lock()
		h, ok := s.handlers[req.Op]
		s.mu.Unlock()
		if ok {
			body, err = h(subject, req.Body)
		} else {
			err = fmt.Errorf("core: unknown operation %q", req.Op)
		}
	}
	if err != nil {
		resp.OK = false
		resp.Error = err.Error()
		resp.Code = ErrorCode(err)
		return resp
	}
	raw, err := wire.Encode(body)
	if err != nil {
		resp.OK = false
		resp.Error = "internal encoding error"
		resp.Code = CodeInternal
		return resp
	}
	resp.OK = true
	resp.Body = raw
	return resp
}

// ErrorCode maps an error to a stable wire code.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrReadOnly):
		return CodeReadOnly
	case errors.Is(err, ErrReplicaNotReady), errors.Is(err, ErrUsageDisabled):
		return CodeUnavailable
	case errors.Is(err, usage.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrWrongShard):
		return CodeWrongShard
	case errors.Is(err, ErrDenied), errors.Is(err, ErrUnknownSubject):
		return CodeDenied
	case errors.Is(err, accounts.ErrNotFound), errors.Is(err, ErrUnknownSerial),
		errors.Is(err, accounts.ErrNoSuchTransfer):
		return CodeNotFound
	case errors.Is(err, accounts.ErrInsufficient), errors.Is(err, accounts.ErrInsufficientLock):
		return CodeInsufficient
	case errors.Is(err, accounts.ErrDuplicateIdentity):
		return CodeDuplicate
	case errors.Is(err, payment.ErrExpired):
		return CodeExpired
	case errors.Is(err, ErrAlreadyRedeemed), errors.Is(err, ErrStaleIndex),
		errors.Is(err, ErrNotExpired), errors.Is(err, accounts.ErrAlreadyCancelled):
		return CodeConflict
	case errors.Is(err, accounts.ErrBadAmount), errors.Is(err, accounts.ErrCurrencyMismatch),
		errors.Is(err, accounts.ErrClosed), errors.Is(err, accounts.ErrNotEmpty),
		errors.Is(err, payment.ErrWrongPayee), errors.Is(err, payment.ErrOverLimit),
		errors.Is(err, payment.ErrBadWord), errors.Is(err, payment.ErrBadIndex),
		errors.Is(err, pki.ErrBadSignature), errors.Is(err, pki.ErrUntrusted),
		errors.Is(err, pki.ErrExpired):
		return CodeInvalid
	default:
		return CodeInternal
	}
}
