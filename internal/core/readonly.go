package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/db"
	"gridbank/internal/obs"
	"gridbank/internal/pki"
	"gridbank/internal/shard"
)

// Read-only mode errors.
var (
	// ErrReadOnly rejects mutations on a replica; the message carries
	// the primary's address for the client to retry against.
	ErrReadOnly = errors.New("core: read-only replica")
	// ErrReplicaNotReady rejects queries before the replica's first
	// bootstrap completes.
	ErrReplicaNotReady = errors.New("core: replica not yet bootstrapped")
	// ErrWrongShard rejects reads for accounts outside the replica's
	// shard: the client's shard map is stale or it routed wrongly. The
	// message carries the replica's placement parameters so clients can
	// refresh and retry.
	ErrWrongShard = errors.New("core: account not on this replica's shard")
)

// ReplicaSource supplies a ReadOnlyBank with replicated state. It is
// the follower half of internal/replica, seen through a narrow
// interface so core stays independent of the replication transport
// (tests substitute in-process sources).
//
// Store may return a different pointer over time — the follower swaps
// its store wholesale on re-bootstrap — so it is fetched per use.
type ReplicaSource interface {
	// Store returns the current replicated store, or nil before the
	// first bootstrap.
	Store() *db.Store
	// Progress reports applied/head sequences and how long the state
	// may have trailed the primary.
	Progress() (appliedSeq, headSeq uint64, staleFor time.Duration, err error)
	// PrimaryAddr is the primary's client-facing address, for redirects.
	PrimaryAddr() string
}

// ShardInfo pins a replica to one shard of a sharded deployment: the
// replica mirrors shard Index's store and can only answer for accounts
// that hash there under the (Count, Vnodes) ring.
type ShardInfo struct {
	Index  int
	Count  int
	Vnodes int // 0 = shard.DefaultVnodes
}

// ReadOnlyBankConfig configures a ReadOnlyBank.
type ReadOnlyBankConfig struct {
	// Identity is the replica server's signing/TLS identity. Required.
	Identity *pki.Identity
	// Trust is the CA set for verifying clients. Required.
	Trust *pki.TrustStore
	// PrimaryAddr overrides the source's advertised primary address in
	// redirect errors (optional).
	PrimaryAddr string
	// Shard, when set with Count > 1, marks this replica as mirroring
	// one shard of a sharded deployment: reads for accounts on other
	// shards answer wrong_shard instead of not_found, and the §3.2
	// connection gate admits subjects it cannot see locally (their
	// accounts may live on other shards; per-operation ownership checks
	// still apply).
	Shard *ShardInfo
	// Obs is the replica process's telemetry registry served by
	// Metrics.Snapshot (replicas answer it exactly like primaries, so
	// one admin scrape covers the whole fleet). Optional.
	Obs *obs.Registry
}

// roState pairs a replicated store with the accounts manager built over
// it. Rebuilt whenever the source swaps stores (re-bootstrap): the
// manager's secondary index and schema live per store.
type roState struct {
	store *db.Store
	mgr   *accounts.Manager
}

// ReadOnlyBank answers the query subset of the §5.2 API — balance
// checks, account details, statements, account listing, authorization
// lookups — from a replica's store, and rejects every mutation with a
// redirect-to-primary error. It implements the same API surface the
// Server dispatches to, so a replica is wire-compatible with a primary
// for reads.
type ReadOnlyBank struct {
	src  ReplicaSource
	id   *pki.Identity
	ts   *pki.TrustStore
	cfg  ReadOnlyBankConfig
	ring *shard.Ring // non-nil only for a shard replica (Count > 1)

	state atomic.Pointer[roState]
	mgrMu sync.Mutex // serializes manager construction on store swap
}

// NewReadOnlyBank assembles a read-only bank over a replica source.
func NewReadOnlyBank(src ReplicaSource, cfg ReadOnlyBankConfig) (*ReadOnlyBank, error) {
	if src == nil {
		return nil, errors.New("core: read-only bank requires a replica source")
	}
	if cfg.Identity == nil || cfg.Trust == nil {
		return nil, errors.New("core: read-only bank requires an identity and a trust store")
	}
	b := &ReadOnlyBank{src: src, id: cfg.Identity, ts: cfg.Trust, cfg: cfg}
	if s := cfg.Shard; s != nil && s.Count > 1 {
		if s.Index < 0 || s.Index >= s.Count {
			return nil, fmt.Errorf("core: shard index %d out of range [0,%d)", s.Index, s.Count)
		}
		ring, err := shard.NewRing(s.Count, s.Vnodes)
		if err != nil {
			return nil, err
		}
		b.ring = ring
	}
	return b, nil
}

// checkShard rejects reads for accounts outside this replica's shard.
func (b *ReadOnlyBank) checkShard(id accounts.ID) error {
	if b.ring == nil {
		return nil
	}
	if owner := b.ring.ShardFor(string(id)); owner != b.cfg.Shard.Index {
		return fmt.Errorf("%w: %s lives on shard %d, this replica serves shard %d of %d",
			ErrWrongShard, id, owner, b.cfg.Shard.Index, b.cfg.Shard.Count)
	}
	return nil
}

// Identity returns the replica's identity.
func (b *ReadOnlyBank) Identity() *pki.Identity { return b.id }

// Trust returns the replica's trust store.
func (b *ReadOnlyBank) Trust() *pki.TrustStore { return b.ts }

// manager returns an accounts manager over the source's current store,
// rebuilding it (schema handles + by-certificate index) when the store
// was swapped by a re-bootstrap.
func (b *ReadOnlyBank) manager() (*accounts.Manager, error) {
	st := b.src.Store()
	if st == nil {
		return nil, ErrReplicaNotReady
	}
	if cur := b.state.Load(); cur != nil && cur.store == st {
		return cur.mgr, nil
	}
	b.mgrMu.Lock()
	defer b.mgrMu.Unlock()
	if cur := b.state.Load(); cur != nil && cur.store == st {
		return cur.mgr, nil
	}
	mgr, err := accounts.NewManager(st, accounts.Config{})
	if err != nil {
		return nil, fmt.Errorf("core: replica manager: %w", err)
	}
	b.state.Store(&roState{store: st, mgr: mgr})
	return mgr, nil
}

// primaryAddr resolves the redirect target.
func (b *ReadOnlyBank) primaryAddr() string {
	if b.cfg.PrimaryAddr != "" {
		return b.cfg.PrimaryAddr
	}
	return b.src.PrimaryAddr()
}

// redirect is the uniform mutation rejection.
func (b *ReadOnlyBank) redirect(op string) error {
	if addr := b.primaryAddr(); addr != "" {
		return fmt.Errorf("%w: send %s to the primary at %s", ErrReadOnly, op, addr)
	}
	return fmt.Errorf("%w: %s requires the primary", ErrReadOnly, op)
}

// IsAdmin reports whether the subject is in the replicated admin table.
func (b *ReadOnlyBank) IsAdmin(subject string) bool {
	st := b.src.Store()
	if st == nil {
		return false
	}
	_, err := st.Get(tableAdmins, subject)
	return err == nil
}

// MetricsSnapshot answers Metrics.Snapshot on a replica: this
// process's own telemetry (follower staleness, local server load), not
// the primary's — the admin check runs against the replicated admin
// table, so the same credential works fleet-wide.
func (b *ReadOnlyBank) MetricsSnapshot(caller string) (*MetricsSnapshotResponse, error) {
	if !b.IsAdmin(caller) {
		return nil, fmt.Errorf("%w: %s is not an administrator", ErrDenied, caller)
	}
	return &MetricsSnapshotResponse{
		Enabled:  b.cfg.Obs != nil,
		Snapshot: b.cfg.Obs.Snapshot(),
	}, nil
}

// Authorize implements the §3.2 connection gate against replicated
// state: the same accounts and administrator tables the primary checks,
// shipped over the WAL. A shard replica only mirrors its own shard's
// slice of the account table, so it cannot refute an unknown subject —
// their account may live on any other shard — and admits the session;
// every operation still enforces ownership, so leniency here only
// weakens the DoS gate, never data access.
func (b *ReadOnlyBank) Authorize(subject string) error {
	if b.IsAdmin(subject) {
		return nil
	}
	mgr, err := b.manager()
	if err != nil {
		return err
	}
	if _, err := mgr.FindByCertificate(subject, ""); err == nil {
		return nil
	}
	if b.ring != nil {
		return nil // sharded: the full account table is not visible here
	}
	return fmt.Errorf("%w: %s", ErrUnknownSubject, subject)
}

// requireOwner mirrors the primary's ownership check.
func (b *ReadOnlyBank) requireOwner(caller string, id accounts.ID) (*accounts.Account, error) {
	if err := b.checkShard(id); err != nil {
		return nil, err
	}
	mgr, err := b.manager()
	if err != nil {
		return nil, err
	}
	a, err := mgr.Details(id)
	if err != nil {
		return nil, err
	}
	if a.CertificateName != caller && !b.IsAdmin(caller) {
		return nil, fmt.Errorf("%w: %s does not own %s", ErrDenied, caller, id)
	}
	return a, nil
}

// --- Query subset (served locally) -----------------------------------------

// AccountDetails implements §5.2 Request Account Details / Check
// Balance from the replica.
func (b *ReadOnlyBank) AccountDetails(caller string, req *AccountDetailsRequest) (*AccountDetailsResponse, error) {
	a, err := b.requireOwner(caller, req.AccountID)
	if err != nil {
		return nil, err
	}
	return &AccountDetailsResponse{Account: *a}, nil
}

// AccountStatement implements §5.2 Request Account Statement from the
// replica.
func (b *ReadOnlyBank) AccountStatement(caller string, req *AccountStatementRequest) (*AccountStatementResponse, error) {
	if _, err := b.requireOwner(caller, req.AccountID); err != nil {
		return nil, err
	}
	mgr, err := b.manager()
	if err != nil {
		return nil, err
	}
	st, err := mgr.Statement(req.AccountID, req.Start, req.End)
	if err != nil {
		return nil, err
	}
	return &AccountStatementResponse{Statement: *st}, nil
}

// AdminListAccounts lists all accounts from the replica (§5.2.1 is a
// read here; the paper's admin mutations stay on the primary). A shard
// replica holds only its shard's slice and must not pass it off as the
// whole bank, so it redirects instead of answering partially.
func (b *ReadOnlyBank) AdminListAccounts(caller string) (*AdminAccountsResponse, error) {
	if !b.IsAdmin(caller) {
		return nil, fmt.Errorf("%w: %s is not an administrator", ErrDenied, caller)
	}
	if b.ring != nil {
		return nil, fmt.Errorf("%w: account listing needs every shard; ask the primary", ErrWrongShard)
	}
	mgr, err := b.manager()
	if err != nil {
		return nil, err
	}
	accts, err := mgr.Accounts()
	if err != nil {
		return nil, err
	}
	return &AdminAccountsResponse{Accounts: accts}, nil
}

// ShardMap reports this replica's placement: its own shard index plus
// the ring parameters, so a routing client can both place accounts and
// learn which pool this replica belongs to.
func (b *ReadOnlyBank) ShardMap() (*ShardMapResponse, error) {
	resp := &ShardMapResponse{Shards: 1, Vnodes: shard.DefaultVnodes, ShardIndex: 0, PrimaryAddr: b.primaryAddr()}
	if s := b.cfg.Shard; s != nil && s.Count > 1 {
		resp.Shards = s.Count
		resp.ShardIndex = s.Index
		resp.Vnodes = s.Vnodes
		if resp.Vnodes == 0 {
			resp.Vnodes = shard.DefaultVnodes
		}
	}
	return resp, nil
}

// ReplicaStatus reports the replica's position and staleness.
func (b *ReadOnlyBank) ReplicaStatus() (*ReplicaStatusResponse, error) {
	applied, head, staleFor, err := b.src.Progress()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrReplicaNotReady, err)
	}
	return &ReplicaStatusResponse{
		Role:        RoleReplica,
		AppliedSeq:  applied,
		HeadSeq:     head,
		StaleFor:    staleFor,
		PrimaryAddr: b.primaryAddr(),
	}, nil
}

// --- Mutations (redirected) -------------------------------------------------

// CreateAccount redirects to the primary.
func (b *ReadOnlyBank) CreateAccount(string, *CreateAccountRequest) (*CreateAccountResponse, error) {
	return nil, b.redirect(OpCreateAccount)
}

// UpdateAccount redirects to the primary.
func (b *ReadOnlyBank) UpdateAccount(string, *UpdateAccountRequest) (*AccountDetailsResponse, error) {
	return nil, b.redirect(OpUpdateAccount)
}

// CheckFunds redirects to the primary: it locks funds (§3.4), which is
// a mutation even though the paper files it under availability checks.
func (b *ReadOnlyBank) CheckFunds(string, *CheckFundsRequest) (*ConfirmationResponse, error) {
	return nil, b.redirect(OpCheckFunds)
}

// DirectTransfer redirects to the primary.
func (b *ReadOnlyBank) DirectTransfer(string, *DirectTransferRequest) (*DirectTransferResponse, error) {
	return nil, b.redirect(OpDirectTransfer)
}

// RequestCheque redirects to the primary.
func (b *ReadOnlyBank) RequestCheque(string, *RequestChequeRequest) (*RequestChequeResponse, error) {
	return nil, b.redirect(OpRequestCheque)
}

// RedeemCheque redirects to the primary.
func (b *ReadOnlyBank) RedeemCheque(string, *RedeemChequeRequest) (*RedeemChequeResponse, error) {
	return nil, b.redirect(OpRedeemCheque)
}

// RequestChain redirects to the primary.
func (b *ReadOnlyBank) RequestChain(string, *RequestChainRequest) (*RequestChainResponse, error) {
	return nil, b.redirect(OpRequestChain)
}

// RedeemChain redirects to the primary.
func (b *ReadOnlyBank) RedeemChain(string, *RedeemChainRequest) (*RedeemChainResponse, error) {
	return nil, b.redirect(OpRedeemChain)
}

// ReleaseCheque redirects to the primary.
func (b *ReadOnlyBank) ReleaseCheque(string, *ReleaseRequest) (*ReleaseResponse, error) {
	return nil, b.redirect(OpReleaseCheque)
}

// ReleaseChain redirects to the primary.
func (b *ReadOnlyBank) ReleaseChain(string, *ReleaseRequest) (*ReleaseResponse, error) {
	return nil, b.redirect(OpReleaseChain)
}

// AdminDeposit redirects to the primary.
func (b *ReadOnlyBank) AdminDeposit(string, *AdminAmountRequest) (*ConfirmationResponse, error) {
	return nil, b.redirect(OpAdminDeposit)
}

// AdminWithdraw redirects to the primary.
func (b *ReadOnlyBank) AdminWithdraw(string, *AdminAmountRequest) (*ConfirmationResponse, error) {
	return nil, b.redirect(OpAdminWithdraw)
}

// AdminChangeCreditLimit redirects to the primary.
func (b *ReadOnlyBank) AdminChangeCreditLimit(string, *AdminAmountRequest) (*ConfirmationResponse, error) {
	return nil, b.redirect(OpAdminCreditLimit)
}

// AdminCancelTransfer redirects to the primary.
func (b *ReadOnlyBank) AdminCancelTransfer(string, *AdminCancelRequest) (*ConfirmationResponse, error) {
	return nil, b.redirect(OpAdminCancel)
}

// AdminCloseAccount redirects to the primary.
func (b *ReadOnlyBank) AdminCloseAccount(string, *AdminCloseRequest) (*ConfirmationResponse, error) {
	return nil, b.redirect(OpAdminClose)
}

var _ API = (*ReadOnlyBank)(nil)
var _ API = (*Bank)(nil)
