package core

import (
	"errors"
	"sync"
	"time"

	"gridbank/internal/accounts"
)

// RouteOptions tune a RoutedClient's read policy.
type RouteOptions struct {
	// MaxStaleness is the staleness bound: a replica whose state may
	// trail the primary by more than this is skipped and the read goes
	// to the primary. Default 2s.
	MaxStaleness time.Duration
	// StatusInterval is how long a replica's staleness probe is cached
	// before re-checking. Default 250ms.
	StatusInterval time.Duration
}

// routeState caches one replica's last staleness probe.
type routeState struct {
	lastCheck time.Time
	usable    bool
}

// RoutedClient is the read-routing GridBank Payment Module: queries
// (balance checks, statements) spread round-robin across read replicas
// whose staleness is within bound, while every mutation — and any read
// no usable replica can serve — goes to the primary. It embeds the
// primary *Client, so the full §5.2/§5.2.1 client API is available;
// only the query methods are overridden with routing.
//
// Fallback is transparent: a replica that fails, is still
// bootstrapping, or answers with a read-only redirect costs one extra
// round trip to the primary, never an error the caller sees.
type RoutedClient struct {
	*Client // the primary: mutations and read fallback

	replicas []*Client
	opts     RouteOptions

	mu     sync.Mutex
	next   int
	states []routeState
}

// NewRoutedClient builds a routing client over a primary connection and
// any number of replica connections. With no replicas it degrades to
// the plain primary client.
func NewRoutedClient(primary *Client, replicas []*Client, opts RouteOptions) (*RoutedClient, error) {
	if primary == nil {
		return nil, errors.New("core: routed client requires a primary client")
	}
	if opts.MaxStaleness <= 0 {
		opts.MaxStaleness = 2 * time.Second
	}
	if opts.StatusInterval <= 0 {
		opts.StatusInterval = 250 * time.Millisecond
	}
	return &RoutedClient{
		Client:   primary,
		replicas: replicas,
		opts:     opts,
		states:   make([]routeState, len(replicas)),
	}, nil
}

// Primary returns the underlying primary client.
func (r *RoutedClient) Primary() *Client { return r.Client }

// Close tears down the primary and every replica connection.
func (r *RoutedClient) Close() error {
	err := r.Client.Close()
	for _, c := range r.replicas {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// probe asks a replica for its staleness and compares it to the bound.
func (r *RoutedClient) probe(c *Client) bool {
	st, err := c.ReplicaStatus()
	if err != nil {
		return false
	}
	return st.Role == RolePrimary || st.StaleFor <= r.opts.MaxStaleness
}

// readTarget picks the next usable replica (round-robin), refreshing
// cached staleness probes as they expire; with none usable it returns
// the primary.
func (r *RoutedClient) readTarget() *Client {
	n := len(r.replicas)
	for i := 0; i < n; i++ {
		r.mu.Lock()
		idx := r.next % n
		r.next++
		st := r.states[idx]
		r.mu.Unlock()
		c := r.replicas[idx]
		usable := st.usable
		if time.Since(st.lastCheck) > r.opts.StatusInterval {
			usable = r.probe(c)
			r.mu.Lock()
			r.states[idx] = routeState{lastCheck: time.Now(), usable: usable}
			r.mu.Unlock()
		}
		if usable {
			return c
		}
	}
	return r.Client
}

// fallbackWorthy classifies replica-read failures that the primary can
// absorb: transport errors, a replica mid-bootstrap, or a redirect.
// Business errors (denied, not found) propagate — they would answer the
// same on the primary, modulo the staleness the caller signed up for.
func fallbackWorthy(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code == CodeReadOnly || re.Code == CodeUnavailable || re.Code == CodeInternal
	}
	return true // transport-level failure
}

// AccountDetails routes §5.2 Check Balance through a replica within the
// staleness bound, falling back to the primary.
func (r *RoutedClient) AccountDetails(id accounts.ID) (*accounts.Account, error) {
	c := r.readTarget()
	if c == r.Client {
		return r.Client.AccountDetails(id)
	}
	a, err := c.AccountDetails(id)
	if err != nil && fallbackWorthy(err) {
		return r.Client.AccountDetails(id)
	}
	return a, err
}

// AccountStatement routes §5.2 Request Account Statement through a
// replica within the staleness bound, falling back to the primary.
func (r *RoutedClient) AccountStatement(id accounts.ID, start, end time.Time) (*accounts.Statement, error) {
	c := r.readTarget()
	if c == r.Client {
		return r.Client.AccountStatement(id, start, end)
	}
	st, err := c.AccountStatement(id, start, end)
	if err != nil && fallbackWorthy(err) {
		return r.Client.AccountStatement(id, start, end)
	}
	return st, err
}

// AdminListAccounts routes the account listing through a replica within
// the staleness bound, falling back to the primary.
func (r *RoutedClient) AdminListAccounts() ([]accounts.Account, error) {
	c := r.readTarget()
	if c == r.Client {
		return r.Client.AdminListAccounts()
	}
	as, err := c.AdminListAccounts()
	if err != nil && fallbackWorthy(err) {
		return r.Client.AdminListAccounts()
	}
	return as, err
}
