package core

import (
	"errors"
	"sync"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/shard"
)

// RouteOptions tune a RoutedClient's read policy.
type RouteOptions struct {
	// MaxStaleness is the staleness bound: a replica whose state may
	// trail the primary by more than this is skipped and the read goes
	// to the primary. Default 2s.
	MaxStaleness time.Duration
	// StatusInterval is how long a replica's staleness probe is cached
	// before re-checking. Default 250ms.
	StatusInterval time.Duration
}

// routeState caches one replica's last staleness probe.
type routeState struct {
	lastCheck time.Time
	usable    bool
}

// RoutedClient is the read-routing GridBank Payment Module: queries
// (balance checks, statements) spread across read replicas whose
// staleness is within bound, while every mutation — and any read no
// usable replica can serve — goes to the primary. It embeds the
// primary *Client, so the full §5.2/§5.2.1 client API is available;
// only the query methods are overridden with routing.
//
// Sharded deployments add a placement dimension: the client fetches
// the shard map (Shard.Map) from the primary, computes each account's
// shard locally, and routes its reads only to replicas following that
// shard. The map is cached; a replica answering wrong_shard (the map
// went stale — e.g. the client connected before a reshard) triggers a
// transparent refresh-and-retry, with the primary as the final
// fallback. Fallback is always transparent: a replica that fails, is
// still bootstrapping, answers read-only, or holds the wrong shard
// costs extra round trips, never an error the caller sees.
type RoutedClient struct {
	*Client // the primary: mutations and read fallback

	replicas []*Client
	opts     RouteOptions

	mu       sync.Mutex
	next     int
	states   []routeState
	ring     *shard.Ring // nil until the map is loaded, and for 1-shard maps
	repShard []int       // per-replica shard index; -1 = not yet probed
	mapOnce  bool        // first map load done
}

// NewRoutedClient builds a routing client over a primary connection and
// any number of replica connections. With no replicas it degrades to
// the plain primary client.
func NewRoutedClient(primary *Client, replicas []*Client, opts RouteOptions) (*RoutedClient, error) {
	if primary == nil {
		return nil, errors.New("core: routed client requires a primary client")
	}
	if opts.MaxStaleness <= 0 {
		opts.MaxStaleness = 2 * time.Second
	}
	if opts.StatusInterval <= 0 {
		opts.StatusInterval = 250 * time.Millisecond
	}
	rc := &RoutedClient{
		Client:   primary,
		replicas: replicas,
		opts:     opts,
		states:   make([]routeState, len(replicas)),
		repShard: make([]int, len(replicas)),
	}
	for i := range rc.repShard {
		rc.repShard[i] = -1
	}
	return rc, nil
}

// Primary returns the underlying primary client.
func (r *RoutedClient) Primary() *Client { return r.Client }

// Close tears down the primary and every replica connection.
func (r *RoutedClient) Close() error {
	err := r.Client.Close()
	for _, c := range r.replicas {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// loadMap fetches the shard map from the primary (once, or again when
// force) and probes each replica for its shard index. Failures degrade
// to unsharded routing — the primary can always serve everything.
func (r *RoutedClient) loadMap(force bool) {
	r.mu.Lock()
	done := r.mapOnce
	r.mu.Unlock()
	if done && !force {
		return
	}
	var ring *shard.Ring
	if m, err := r.Client.ShardMap(); err == nil && m.Shards > 1 {
		if rg, err := shard.NewRing(m.Shards, m.Vnodes); err == nil {
			ring = rg
		}
	}
	idx := make([]int, len(r.replicas))
	for i, c := range r.replicas {
		idx[i] = -1
		if ring == nil {
			continue // unsharded: every replica serves every account
		}
		if m, err := c.ShardMap(); err == nil {
			idx[i] = m.ShardIndex
		}
	}
	r.mu.Lock()
	r.ring = ring
	r.repShard = idx
	r.mapOnce = true
	r.mu.Unlock()
}

// probe asks a replica for its staleness and compares it to the bound.
func (r *RoutedClient) probe(c *Client) bool {
	st, err := c.ReplicaStatus()
	if err != nil {
		return false
	}
	return st.Role == RolePrimary || st.StaleFor <= r.opts.MaxStaleness
}

// usable returns whether replica idx is within the staleness bound,
// refreshing its cached probe as needed.
func (r *RoutedClient) usable(idx int) bool {
	r.mu.Lock()
	st := r.states[idx]
	r.mu.Unlock()
	ok := st.usable
	if time.Since(st.lastCheck) > r.opts.StatusInterval {
		ok = r.probe(r.replicas[idx])
		r.mu.Lock()
		r.states[idx] = routeState{lastCheck: time.Now(), usable: ok}
		r.mu.Unlock()
	}
	return ok
}

// readTargetFor picks the next usable replica for an account-scoped
// read (round-robin within the account's shard pool when sharded);
// with none usable it returns the primary.
func (r *RoutedClient) readTargetFor(id accounts.ID) *Client {
	n := len(r.replicas)
	if n == 0 {
		return r.Client
	}
	r.loadMap(false)
	r.mu.Lock()
	ring := r.ring
	owner := -1
	if ring != nil {
		owner = ring.ShardFor(string(id))
	}
	r.mu.Unlock()
	for i := 0; i < n; i++ {
		r.mu.Lock()
		idx := r.next % n
		r.next++
		repShard := r.repShard[idx]
		r.mu.Unlock()
		if owner >= 0 && repShard != owner {
			continue
		}
		if r.usable(idx) {
			return r.replicas[idx]
		}
	}
	return r.Client
}

// readTargetAny picks any usable replica — for reads that are not
// account-scoped. On a sharded deployment every replica holds a partial
// view, so such reads go straight to the primary.
func (r *RoutedClient) readTargetAny() *Client {
	n := len(r.replicas)
	if n == 0 {
		return r.Client
	}
	r.loadMap(false)
	r.mu.Lock()
	sharded := r.ring != nil
	r.mu.Unlock()
	if sharded {
		return r.Client
	}
	for i := 0; i < n; i++ {
		r.mu.Lock()
		idx := r.next % n
		r.next++
		r.mu.Unlock()
		if r.usable(idx) {
			return r.replicas[idx]
		}
	}
	return r.Client
}

// fallbackWorthy classifies replica-read failures that the primary can
// absorb: transport errors, a replica mid-bootstrap, a redirect, or a
// shard miss. Business errors (denied, not found) propagate — they
// would answer the same on the primary, modulo the staleness the caller
// signed up for.
func fallbackWorthy(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code == CodeReadOnly || re.Code == CodeUnavailable || re.Code == CodeInternal ||
			re.Code == CodeWrongShard
	}
	return true // transport-level failure
}

// isWrongShard reports a stale-shard-map signal.
func isWrongShard(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == CodeWrongShard
}

// routedRead runs an account-scoped read with the full routing policy:
// shard-pool replica first; on a wrong_shard answer refresh the map and
// retry the re-computed target once; on any fallback-worthy failure
// finish on the primary.
func routedRead[T any](r *RoutedClient, id accounts.ID, op func(c *Client) (T, error)) (T, error) {
	c := r.readTargetFor(id)
	if c == r.Client {
		return op(r.Client)
	}
	v, err := op(c)
	if err == nil || !fallbackWorthy(err) {
		return v, err
	}
	if isWrongShard(err) {
		// The map moved under us (or this replica changed shards):
		// refresh and retry the freshly computed owner before giving up
		// and paying the primary round trip.
		r.loadMap(true)
		if c2 := r.readTargetFor(id); c2 != c && c2 != r.Client {
			if v2, err2 := op(c2); err2 == nil || !fallbackWorthy(err2) {
				return v2, err2
			}
		}
	}
	return op(r.Client)
}

// AccountDetails routes §5.2 Check Balance through a replica of the
// account's shard within the staleness bound, falling back to the
// primary.
func (r *RoutedClient) AccountDetails(id accounts.ID) (*accounts.Account, error) {
	return routedRead(r, id, func(c *Client) (*accounts.Account, error) {
		return c.AccountDetails(id)
	})
}

// AccountStatement routes §5.2 Request Account Statement through a
// replica of the account's shard within the staleness bound, falling
// back to the primary.
func (r *RoutedClient) AccountStatement(id accounts.ID, start, end time.Time) (*accounts.Statement, error) {
	return routedRead(r, id, func(c *Client) (*accounts.Statement, error) {
		return c.AccountStatement(id, start, end)
	})
}

// AdminListAccounts routes the account listing through a replica within
// the staleness bound (primary-only on sharded deployments, where no
// single replica holds the whole bank), falling back to the primary.
func (r *RoutedClient) AdminListAccounts() ([]accounts.Account, error) {
	c := r.readTargetAny()
	if c == r.Client {
		return r.Client.AdminListAccounts()
	}
	as, err := c.AdminListAccounts()
	if err != nil && fallbackWorthy(err) {
		return r.Client.AdminListAccounts()
	}
	return as, err
}
