package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/obs"
	"gridbank/internal/shard"
	"gridbank/internal/wire"
)

// RetryPolicy governs RoutedClient's automatic retries. Only safe
// calls are retried: idempotent reads and mutations carrying an
// idempotency key (DirectTransferKeyed and friends) — a retried keyed
// mutation replays server-side instead of executing twice. Retryable
// failures are transport errors (connection lost, call deadline — the
// op may or may not have run, which is exactly what the key makes
// safe) and the explicitly-transient codes overloaded, unavailable and
// deadline_exceeded. Business errors never retry.
//
// The token-bucket budget bounds retry amplification under a real
// outage: every retry spends one token, every success earns
// BudgetRatio, so sustained failure degrades to roughly BudgetRatio
// extra load instead of multiplying the storm by MaxAttempts.
type RetryPolicy struct {
	// MaxAttempts is the total attempts including the first. Default 4.
	MaxAttempts int
	// BaseBackoff is the first retry's delay; each subsequent retry
	// doubles it (full jitter in [d/2, d]). Default 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 1s.
	MaxBackoff time.Duration
	// BudgetRatio is the retry tokens earned per successful call.
	// Default 0.1 (≤10% retry amplification under sustained failure).
	BudgetRatio float64
	// BudgetBurst caps banked tokens (and is the initial balance).
	// Default 10.
	BudgetBurst float64
	// Disabled switches retries off entirely (single attempt).
	Disabled bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.BudgetRatio <= 0 {
		p.BudgetRatio = 0.1
	}
	if p.BudgetBurst <= 0 {
		p.BudgetBurst = 10
	}
	return p
}

// RouteOptions tune a RoutedClient's read policy.
type RouteOptions struct {
	// MaxStaleness is the staleness bound: a replica whose state may
	// trail the primary by more than this is skipped and the read goes
	// to the primary. Default 2s.
	MaxStaleness time.Duration
	// StatusInterval is how long a replica's staleness probe is cached
	// before re-checking. Default 250ms.
	StatusInterval time.Duration
	// Conns is the per-endpoint connection pool size for routed reads.
	// Each client is already pipelined (concurrent calls multiplex over
	// one connection), so 1 suffices for correctness; a small pool adds
	// parallel TLS records and read loops under heavy fan-in. Extra
	// connections are dialed lazily on first use. Default 1.
	Conns int
	// Retry is the retry policy for retry-safe calls (zero value:
	// defaults; set Retry.Disabled for single attempts).
	Retry RetryPolicy
	// BreakerThreshold is the consecutive endpoint-fault count that
	// opens an endpoint's circuit. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// admitting probes again. Default 1s.
	BreakerCooldown time.Duration
	// Obs instruments the routed client (committed retries, breaker
	// state transitions, degraded reads, shard-map refreshes). Nil
	// disables.
	Obs *obs.Registry
	// TraceCalls stamps each logical routed operation with one fresh
	// trace ID, carried across every retry, replica attempt and
	// wrong_shard redirect that operation makes — so server-side spans
	// from all attempts correlate. Also implied by the primary client's
	// own TraceCalls.
	TraceCalls bool
}

// breaker is a per-endpoint circuit breaker. Consecutive endpoint
// faults (transport failures, unavailable) past the threshold open the
// circuit: calls are refused locally for the cooldown, shielding a
// struggling endpoint from pile-on and giving callers an instant
// answer instead of N timeouts. After the cooldown, calls are admitted
// again; the first recorded outcome either closes the circuit or
// re-arms the cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration

	// opened/closed count state transitions across all endpoints
	// sharing the registry (nil = uninstrumented).
	opened *obs.Counter
	closed *obs.Counter

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails < b.threshold || !time.Now().Before(b.openUntil)
}

func (b *breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := b.fails >= b.threshold
	if err == nil || !endpointFault(err) {
		b.fails = 0
		if wasOpen {
			b.closed.Inc()
		}
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
		if !wasOpen {
			b.opened.Inc()
		}
	}
}

// endpoint is one server address's connection pool: the caller-provided
// client plus Conns-1 lazily-dialed clones, picked round-robin, with a
// circuit breaker tracking the address's health.
type endpoint struct {
	cs   []*Client
	next atomic.Uint32
	br   *breaker
}

func newEndpoint(c *Client, conns int, br *breaker) *endpoint {
	cs := []*Client{c}
	for len(cs) < conns {
		cs = append(cs, c.Clone())
	}
	return &endpoint{cs: cs, br: br}
}

// pick returns the endpoint's next pooled client.
func (e *endpoint) pick() *Client {
	if len(e.cs) == 1 {
		return e.cs[0]
	}
	return e.cs[int(e.next.Add(1))%len(e.cs)]
}

// base returns the caller-provided client (used for probes, so cached
// staleness state reflects one stable connection).
func (e *endpoint) base() *Client { return e.cs[0] }

func (e *endpoint) close() error {
	var err error
	for _, c := range e.cs {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// routeState caches one replica's last staleness probe.
type routeState struct {
	lastCheck time.Time
	usable    bool
}

// RoutedClient is the read-routing GridBank Payment Module: queries
// (balance checks, statements) spread across read replicas whose
// staleness is within bound, while every mutation — and any read no
// usable replica can serve — goes to the primary. It embeds the
// primary *Client, so the full §5.2/§5.2.1 client API is available;
// only the query methods are overridden with routing.
//
// Sharded deployments add a placement dimension: the client fetches
// the shard map (Shard.Map) from the primary, computes each account's
// shard locally, and routes its reads only to replicas following that
// shard. The map is cached; a replica answering wrong_shard (the map
// went stale — e.g. the client connected before a reshard) triggers a
// transparent refresh-and-retry, with the primary as the final
// fallback. Fallback is always transparent: a replica that fails, is
// still bootstrapping, answers read-only, or holds the wrong shard
// costs extra round trips, never an error the caller sees.
type RoutedClient struct {
	*Client // the primary: mutations and read fallback

	primary  *endpoint
	replicas []*endpoint
	opts     RouteOptions

	mu       sync.Mutex
	next     int
	states   []routeState
	ring     *shard.Ring // nil until the map is loaded, and for 1-shard maps
	repShard []int       // per-replica shard index; -1 = not yet probed
	mapOnce  bool        // first map load done

	// Retry budget (token bucket; see RetryPolicy).
	rmu     sync.Mutex
	rtokens float64

	// retries counts committed retries — attempts beyond each call's
	// first. Harnesses divide it by successful calls to measure retry
	// amplification.
	retries atomic.Int64

	// Telemetry handles (nil no-ops when opts.Obs is unset).
	mRetries    *obs.Counter
	mDegraded   *obs.Counter
	mWrongShard *obs.Counter
}

// newTrace mints the one trace ID a logical routed operation carries
// through every attempt it makes ("" = tracing off).
func (r *RoutedClient) newTrace() string {
	if r.opts.TraceCalls || r.Client.TraceCalls {
		return obs.NewTraceID()
	}
	return ""
}

// RetryCount reports how many retries this client has committed so far
// (attempts beyond each call's first).
func (r *RoutedClient) RetryCount() int64 { return r.retries.Load() }

// NewRoutedClient builds a routing client over a primary connection and
// any number of replica connections. With no replicas it degrades to
// the plain primary client. Each endpoint becomes a pool of
// opts.Conns pipelined connections (the provided client plus lazily
// dialed clones).
func NewRoutedClient(primary *Client, replicas []*Client, opts RouteOptions) (*RoutedClient, error) {
	if primary == nil {
		return nil, errors.New("core: routed client requires a primary client")
	}
	if opts.MaxStaleness <= 0 {
		opts.MaxStaleness = 2 * time.Second
	}
	if opts.StatusInterval <= 0 {
		opts.StatusInterval = 250 * time.Millisecond
	}
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = time.Second
	}
	opts.Retry = opts.Retry.withDefaults()
	newBreaker := func() *breaker {
		return &breaker{
			threshold: opts.BreakerThreshold, cooldown: opts.BreakerCooldown,
			opened: opts.Obs.Counter("routed.breaker.opened"),
			closed: opts.Obs.Counter("routed.breaker.closed"),
		}
	}
	rc := &RoutedClient{
		Client:      primary,
		primary:     newEndpoint(primary, opts.Conns, newBreaker()),
		opts:        opts,
		states:      make([]routeState, len(replicas)),
		repShard:    make([]int, len(replicas)),
		rtokens:     opts.Retry.BudgetBurst,
		mRetries:    opts.Obs.Counter("routed.retries"),
		mDegraded:   opts.Obs.Counter("routed.degraded_reads"),
		mWrongShard: opts.Obs.Counter("routed.wrong_shard_refresh"),
	}
	for _, c := range replicas {
		rc.replicas = append(rc.replicas, newEndpoint(c, opts.Conns, newBreaker()))
	}
	for i := range rc.repShard {
		rc.repShard[i] = -1
	}
	return rc, nil
}

// Primary returns the underlying primary client.
func (r *RoutedClient) Primary() *Client { return r.Client }

// Close tears down the primary and every replica connection, pooled
// clones included.
func (r *RoutedClient) Close() error {
	err := r.primary.close()
	for _, e := range r.replicas {
		if cerr := e.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// loadMap fetches the shard map from the primary (once, or again when
// force) and probes each replica for its shard index. Failures degrade
// to unsharded routing — the primary can always serve everything.
func (r *RoutedClient) loadMap(force bool) {
	r.mu.Lock()
	done := r.mapOnce
	r.mu.Unlock()
	if done && !force {
		return
	}
	var ring *shard.Ring
	if m, err := r.Client.ShardMap(); err == nil && m.Shards > 1 {
		if rg, err := shard.NewRing(m.Shards, m.Vnodes); err == nil {
			ring = rg
		}
	}
	idx := make([]int, len(r.replicas))
	for i, e := range r.replicas {
		idx[i] = -1
		if ring == nil {
			continue // unsharded: every replica serves every account
		}
		if m, err := e.base().ShardMap(); err == nil {
			idx[i] = m.ShardIndex
		}
	}
	r.mu.Lock()
	r.ring = ring
	r.repShard = idx
	r.mapOnce = true
	r.mu.Unlock()
}

// probe asks a replica for its staleness and compares it to the bound.
func (r *RoutedClient) probe(c *Client) bool {
	st, err := c.ReplicaStatus()
	if err != nil {
		return false
	}
	return st.Role == RolePrimary || st.StaleFor <= r.opts.MaxStaleness
}

// usable returns whether replica idx is within the staleness bound,
// refreshing its cached probe as needed.
func (r *RoutedClient) usable(idx int) bool {
	r.mu.Lock()
	st := r.states[idx]
	r.mu.Unlock()
	ok := st.usable
	if time.Since(st.lastCheck) > r.opts.StatusInterval {
		ok = r.probe(r.replicas[idx].base())
		r.mu.Lock()
		r.states[idx] = routeState{lastCheck: time.Now(), usable: ok}
		r.mu.Unlock()
	}
	return ok
}

// readTargetFor picks the next usable replica endpoint for an
// account-scoped read (round-robin within the account's shard pool
// when sharded); with none usable it reports primary=true with the
// primary endpoint.
func (r *RoutedClient) readTargetFor(id accounts.ID) (ep *endpoint, primary bool) {
	n := len(r.replicas)
	if n == 0 {
		return r.primary, true
	}
	r.loadMap(false)
	r.mu.Lock()
	ring := r.ring
	owner := -1
	if ring != nil {
		owner = ring.ShardFor(string(id))
	}
	r.mu.Unlock()
	for i := 0; i < n; i++ {
		r.mu.Lock()
		idx := r.next % n
		r.next++
		repShard := r.repShard[idx]
		r.mu.Unlock()
		if owner >= 0 && repShard != owner {
			continue
		}
		if r.usable(idx) {
			return r.replicas[idx], false
		}
	}
	return r.primary, true
}

// readTargetAny picks any usable replica endpoint — for reads that are
// not account-scoped. On a sharded deployment every replica holds a
// partial view, so such reads go straight to the primary.
func (r *RoutedClient) readTargetAny() (ep *endpoint, primary bool) {
	n := len(r.replicas)
	if n == 0 {
		return r.primary, true
	}
	r.loadMap(false)
	r.mu.Lock()
	sharded := r.ring != nil
	r.mu.Unlock()
	if sharded {
		return r.primary, true
	}
	for i := 0; i < n; i++ {
		r.mu.Lock()
		idx := r.next % n
		r.next++
		r.mu.Unlock()
		if r.usable(idx) {
			return r.replicas[idx], false
		}
	}
	return r.primary, true
}

// ErrCircuitOpen is returned when an endpoint's circuit breaker is
// rejecting calls and no alternative endpoint can serve the request.
var ErrCircuitOpen = errors.New("core: circuit open: endpoint recently failing, call refused locally")

// fallbackWorthy classifies replica-read failures that the primary can
// absorb: transport errors, a replica mid-bootstrap, a redirect, or a
// shard miss. Business errors (denied, not found) propagate — they
// would answer the same on the primary, modulo the staleness the caller
// signed up for.
func fallbackWorthy(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code == wire.CodeReadOnly || re.Code == wire.CodeUnavailable || re.Code == wire.CodeInternal ||
			re.Code == wire.CodeWrongShard
	}
	return true // transport-level failure
}

// retryableErr classifies failures worth retrying: transient server
// states (overloaded, unavailable, shed-at-deadline — the server did
// not execute) plus transport-level failures, where the outcome is
// unknown and only an idempotency key makes the retry safe — which is
// why retryMutate is reserved for keyed mutations. Business errors
// (denied, insufficient funds, …) are deterministic and never retried.
func retryableErr(err error) bool {
	if errors.Is(err, ErrCircuitOpen) {
		return true // backing off may outlive the cooldown
	}
	var re *RemoteError
	if errors.As(err, &re) {
		switch re.Code {
		case wire.CodeOverloaded, wire.CodeUnavailable, wire.CodeDeadlineExceeded:
			return true
		}
		return false
	}
	return true // transport failure or call timeout
}

// endpointFault classifies failures that indict the endpoint itself
// for circuit-breaking purposes: transport errors (dial, handshake,
// receive, call timeout) and a server that says it cannot serve
// (unavailable). An overloaded usage queue or a business error is a
// healthy endpoint answering, and a locally-refused call proves
// nothing new.
func endpointFault(err error) bool {
	if errors.Is(err, ErrCircuitOpen) {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code == wire.CodeUnavailable
	}
	return true
}

// earnRetryToken credits the retry budget after a success.
func (r *RoutedClient) earnRetryToken() {
	r.rmu.Lock()
	r.rtokens += r.opts.Retry.BudgetRatio
	if r.rtokens > r.opts.Retry.BudgetBurst {
		r.rtokens = r.opts.Retry.BudgetBurst
	}
	r.rmu.Unlock()
}

// takeRetryToken spends one token; false means the budget is exhausted
// and the retry must not happen (amplification guard).
func (r *RoutedClient) takeRetryToken() bool {
	r.rmu.Lock()
	defer r.rmu.Unlock()
	if r.rtokens < 1 {
		return false
	}
	r.rtokens--
	return true
}

// jitteredBackoff picks uniformly from [d/2, d]: full-jitter decorrelates
// retry waves from many clients hitting the same fault.
func jitteredBackoff(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// retryMutate runs one retry-safe primary call under the retry policy:
// exponential backoff with full jitter, budget-bounded, circuit-broken.
// Callers guarantee the op is idempotent or carries an idempotency key.
func (r *RoutedClient) retryMutate(op string, in, out any) error {
	pol := r.opts.Retry
	backoff := pol.BaseBackoff
	// One trace ID covers the whole logical mutation: every retry's
	// server-side span carries the same ID as the first attempt's.
	trace := r.newTrace()
	var err error
	for attempt := 1; ; attempt++ {
		if r.primary.br.allow() {
			err = r.primary.pick().callTraced(op, in, out, 0, trace)
			r.primary.br.record(err)
			if err == nil {
				r.earnRetryToken()
				return nil
			}
			if !retryableErr(err) {
				return err
			}
		} else {
			err = ErrCircuitOpen
		}
		if pol.Disabled || attempt >= pol.MaxAttempts || !r.takeRetryToken() {
			return err
		}
		r.retries.Add(1)
		r.mRetries.Inc()
		time.Sleep(jitteredBackoff(backoff))
		backoff *= 2
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// breakerCall runs op against ep's pool, feeding the outcome to the
// endpoint's breaker.
func breakerCall[T any](ep *endpoint, op func(c *Client) (T, error)) (T, error) {
	v, err := op(ep.pick())
	ep.br.record(err)
	return v, err
}

// isWrongShard reports a stale-shard-map signal.
func isWrongShard(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeWrongShard
}

// degradedReplica picks a reachable (breaker-allowed) replica for id,
// ignoring the staleness bound. Used only when the primary's circuit is
// open: a bounded-stale read is unobtainable then, and a stale replica
// answer beats no answer. Shard placement is still honored — a
// wrong-shard replica cannot serve the account at any staleness.
func (r *RoutedClient) degradedReplica(id accounts.ID) *endpoint {
	n := len(r.replicas)
	if n == 0 {
		return nil
	}
	r.loadMap(false)
	r.mu.Lock()
	owner := -1
	if r.ring != nil {
		owner = r.ring.ShardFor(string(id))
	}
	r.mu.Unlock()
	for i := 0; i < n; i++ {
		r.mu.Lock()
		idx := r.next % n
		r.next++
		repShard := r.repShard[idx]
		r.mu.Unlock()
		if owner >= 0 && repShard != owner {
			continue
		}
		if r.replicas[idx].br.allow() {
			return r.replicas[idx]
		}
	}
	return nil
}

// routedRead runs an account-scoped read with the full routing policy:
// shard-pool replica first; on a wrong_shard answer refresh the map and
// retry the re-computed target once; on any fallback-worthy failure
// finish on the primary. When the primary's circuit is open, reads
// degrade to the replica pool (graceful degradation) instead of
// erroring against an endpoint known to be failing.
func routedRead[T any](r *RoutedClient, id accounts.ID, op func(c *Client) (T, error)) (T, error) {
	ep, primary := r.readTargetFor(id)
	if primary && !r.primary.br.allow() {
		if alt := r.degradedReplica(id); alt != nil {
			ep, primary = alt, false
			r.mDegraded.Inc()
		}
	}
	if primary {
		return breakerCall(r.primary, op)
	}
	v, err := breakerCall(ep, op)
	if err == nil || !fallbackWorthy(err) {
		return v, err
	}
	if isWrongShard(err) {
		// The map moved under us (or this replica changed shards):
		// refresh and retry the freshly computed owner before giving up
		// and paying the primary round trip. Endpoints are compared —
		// not pooled connections — so the retry never re-asks the same
		// stale replica over a different connection.
		r.mWrongShard.Inc()
		r.loadMap(true)
		if ep2, p2 := r.readTargetFor(id); !p2 && ep2 != ep {
			if v2, err2 := breakerCall(ep2, op); err2 == nil || !fallbackWorthy(err2) {
				return v2, err2
			}
		}
	}
	if !r.primary.br.allow() {
		// Circuit open and every replica avenue exhausted: surface the
		// replica's failure rather than piling onto the primary.
		return v, err
	}
	return breakerCall(r.primary, op)
}

// AccountDetails routes §5.2 Check Balance through a replica of the
// account's shard within the staleness bound, falling back to the
// primary.
func (r *RoutedClient) AccountDetails(id accounts.ID) (*accounts.Account, error) {
	trace := r.newTrace()
	return routedRead(r, id, func(c *Client) (*accounts.Account, error) {
		return c.accountDetailsTraced(id, trace)
	})
}

// AccountStatement routes §5.2 Request Account Statement through a
// replica of the account's shard within the staleness bound, falling
// back to the primary.
func (r *RoutedClient) AccountStatement(id accounts.ID, start, end time.Time) (*accounts.Statement, error) {
	trace := r.newTrace()
	return routedRead(r, id, func(c *Client) (*accounts.Statement, error) {
		return c.accountStatementTraced(id, start, end, trace)
	})
}

// AdminListAccounts routes the account listing through a replica within
// the staleness bound (primary-only on sharded deployments, where no
// single replica holds the whole bank), falling back to the primary.
func (r *RoutedClient) AdminListAccounts() ([]accounts.Account, error) {
	trace := r.newTrace()
	list := func(c *Client) ([]accounts.Account, error) { return c.adminListAccountsTraced(trace) }
	ep, primary := r.readTargetAny()
	if primary {
		return breakerCall(r.primary, list)
	}
	as, err := breakerCall(ep, list)
	if err != nil && fallbackWorthy(err) {
		return breakerCall(r.primary, list)
	}
	return as, err
}

// DirectTransfer is the retrying, idempotent routed mutation: a fresh
// idempotency key is pinned once, then the identical request is retried
// under the retry policy — an ambiguous failure (timeout, dropped
// connection) replays server-side instead of double-spending.
func (r *RoutedClient) DirectTransfer(from, to accounts.ID, amount currency.Amount, recipientAddr string) (*DirectTransferResponse, error) {
	return r.DirectTransferKeyed(NewIdempotencyKey(), from, to, amount, recipientAddr)
}

// DirectTransferKeyed is DirectTransfer under a caller-chosen
// idempotency key (reuse the key to make your own retries safe across
// RoutedClient lifetimes).
func (r *RoutedClient) DirectTransferKeyed(key string, from, to accounts.ID, amount currency.Amount, recipientAddr string) (*DirectTransferResponse, error) {
	var out DirectTransferResponse
	req := &DirectTransferRequest{FromAccountID: from, ToAccountID: to, Amount: amount, RecipientAddress: recipientAddr, IdempotencyKey: key}
	if err := r.retryMutate(OpDirectTransfer, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
