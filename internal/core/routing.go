package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/shard"
)

// RouteOptions tune a RoutedClient's read policy.
type RouteOptions struct {
	// MaxStaleness is the staleness bound: a replica whose state may
	// trail the primary by more than this is skipped and the read goes
	// to the primary. Default 2s.
	MaxStaleness time.Duration
	// StatusInterval is how long a replica's staleness probe is cached
	// before re-checking. Default 250ms.
	StatusInterval time.Duration
	// Conns is the per-endpoint connection pool size for routed reads.
	// Each client is already pipelined (concurrent calls multiplex over
	// one connection), so 1 suffices for correctness; a small pool adds
	// parallel TLS records and read loops under heavy fan-in. Extra
	// connections are dialed lazily on first use. Default 1.
	Conns int
}

// endpoint is one server address's connection pool: the caller-provided
// client plus Conns-1 lazily-dialed clones, picked round-robin.
type endpoint struct {
	cs   []*Client
	next atomic.Uint32
}

func newEndpoint(c *Client, conns int) *endpoint {
	cs := []*Client{c}
	for len(cs) < conns {
		cs = append(cs, c.Clone())
	}
	return &endpoint{cs: cs}
}

// pick returns the endpoint's next pooled client.
func (e *endpoint) pick() *Client {
	if len(e.cs) == 1 {
		return e.cs[0]
	}
	return e.cs[int(e.next.Add(1))%len(e.cs)]
}

// base returns the caller-provided client (used for probes, so cached
// staleness state reflects one stable connection).
func (e *endpoint) base() *Client { return e.cs[0] }

func (e *endpoint) close() error {
	var err error
	for _, c := range e.cs {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// routeState caches one replica's last staleness probe.
type routeState struct {
	lastCheck time.Time
	usable    bool
}

// RoutedClient is the read-routing GridBank Payment Module: queries
// (balance checks, statements) spread across read replicas whose
// staleness is within bound, while every mutation — and any read no
// usable replica can serve — goes to the primary. It embeds the
// primary *Client, so the full §5.2/§5.2.1 client API is available;
// only the query methods are overridden with routing.
//
// Sharded deployments add a placement dimension: the client fetches
// the shard map (Shard.Map) from the primary, computes each account's
// shard locally, and routes its reads only to replicas following that
// shard. The map is cached; a replica answering wrong_shard (the map
// went stale — e.g. the client connected before a reshard) triggers a
// transparent refresh-and-retry, with the primary as the final
// fallback. Fallback is always transparent: a replica that fails, is
// still bootstrapping, answers read-only, or holds the wrong shard
// costs extra round trips, never an error the caller sees.
type RoutedClient struct {
	*Client // the primary: mutations and read fallback

	primary  *endpoint
	replicas []*endpoint
	opts     RouteOptions

	mu       sync.Mutex
	next     int
	states   []routeState
	ring     *shard.Ring // nil until the map is loaded, and for 1-shard maps
	repShard []int       // per-replica shard index; -1 = not yet probed
	mapOnce  bool        // first map load done
}

// NewRoutedClient builds a routing client over a primary connection and
// any number of replica connections. With no replicas it degrades to
// the plain primary client. Each endpoint becomes a pool of
// opts.Conns pipelined connections (the provided client plus lazily
// dialed clones).
func NewRoutedClient(primary *Client, replicas []*Client, opts RouteOptions) (*RoutedClient, error) {
	if primary == nil {
		return nil, errors.New("core: routed client requires a primary client")
	}
	if opts.MaxStaleness <= 0 {
		opts.MaxStaleness = 2 * time.Second
	}
	if opts.StatusInterval <= 0 {
		opts.StatusInterval = 250 * time.Millisecond
	}
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	rc := &RoutedClient{
		Client:   primary,
		primary:  newEndpoint(primary, opts.Conns),
		opts:     opts,
		states:   make([]routeState, len(replicas)),
		repShard: make([]int, len(replicas)),
	}
	for _, c := range replicas {
		rc.replicas = append(rc.replicas, newEndpoint(c, opts.Conns))
	}
	for i := range rc.repShard {
		rc.repShard[i] = -1
	}
	return rc, nil
}

// Primary returns the underlying primary client.
func (r *RoutedClient) Primary() *Client { return r.Client }

// Close tears down the primary and every replica connection, pooled
// clones included.
func (r *RoutedClient) Close() error {
	err := r.primary.close()
	for _, e := range r.replicas {
		if cerr := e.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// loadMap fetches the shard map from the primary (once, or again when
// force) and probes each replica for its shard index. Failures degrade
// to unsharded routing — the primary can always serve everything.
func (r *RoutedClient) loadMap(force bool) {
	r.mu.Lock()
	done := r.mapOnce
	r.mu.Unlock()
	if done && !force {
		return
	}
	var ring *shard.Ring
	if m, err := r.Client.ShardMap(); err == nil && m.Shards > 1 {
		if rg, err := shard.NewRing(m.Shards, m.Vnodes); err == nil {
			ring = rg
		}
	}
	idx := make([]int, len(r.replicas))
	for i, e := range r.replicas {
		idx[i] = -1
		if ring == nil {
			continue // unsharded: every replica serves every account
		}
		if m, err := e.base().ShardMap(); err == nil {
			idx[i] = m.ShardIndex
		}
	}
	r.mu.Lock()
	r.ring = ring
	r.repShard = idx
	r.mapOnce = true
	r.mu.Unlock()
}

// probe asks a replica for its staleness and compares it to the bound.
func (r *RoutedClient) probe(c *Client) bool {
	st, err := c.ReplicaStatus()
	if err != nil {
		return false
	}
	return st.Role == RolePrimary || st.StaleFor <= r.opts.MaxStaleness
}

// usable returns whether replica idx is within the staleness bound,
// refreshing its cached probe as needed.
func (r *RoutedClient) usable(idx int) bool {
	r.mu.Lock()
	st := r.states[idx]
	r.mu.Unlock()
	ok := st.usable
	if time.Since(st.lastCheck) > r.opts.StatusInterval {
		ok = r.probe(r.replicas[idx].base())
		r.mu.Lock()
		r.states[idx] = routeState{lastCheck: time.Now(), usable: ok}
		r.mu.Unlock()
	}
	return ok
}

// readTargetFor picks the next usable replica endpoint for an
// account-scoped read (round-robin within the account's shard pool
// when sharded); with none usable it reports primary=true with the
// primary endpoint.
func (r *RoutedClient) readTargetFor(id accounts.ID) (ep *endpoint, primary bool) {
	n := len(r.replicas)
	if n == 0 {
		return r.primary, true
	}
	r.loadMap(false)
	r.mu.Lock()
	ring := r.ring
	owner := -1
	if ring != nil {
		owner = ring.ShardFor(string(id))
	}
	r.mu.Unlock()
	for i := 0; i < n; i++ {
		r.mu.Lock()
		idx := r.next % n
		r.next++
		repShard := r.repShard[idx]
		r.mu.Unlock()
		if owner >= 0 && repShard != owner {
			continue
		}
		if r.usable(idx) {
			return r.replicas[idx], false
		}
	}
	return r.primary, true
}

// readTargetAny picks any usable replica endpoint — for reads that are
// not account-scoped. On a sharded deployment every replica holds a
// partial view, so such reads go straight to the primary.
func (r *RoutedClient) readTargetAny() (ep *endpoint, primary bool) {
	n := len(r.replicas)
	if n == 0 {
		return r.primary, true
	}
	r.loadMap(false)
	r.mu.Lock()
	sharded := r.ring != nil
	r.mu.Unlock()
	if sharded {
		return r.primary, true
	}
	for i := 0; i < n; i++ {
		r.mu.Lock()
		idx := r.next % n
		r.next++
		r.mu.Unlock()
		if r.usable(idx) {
			return r.replicas[idx], false
		}
	}
	return r.primary, true
}

// fallbackWorthy classifies replica-read failures that the primary can
// absorb: transport errors, a replica mid-bootstrap, a redirect, or a
// shard miss. Business errors (denied, not found) propagate — they
// would answer the same on the primary, modulo the staleness the caller
// signed up for.
func fallbackWorthy(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code == CodeReadOnly || re.Code == CodeUnavailable || re.Code == CodeInternal ||
			re.Code == CodeWrongShard
	}
	return true // transport-level failure
}

// isWrongShard reports a stale-shard-map signal.
func isWrongShard(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == CodeWrongShard
}

// routedRead runs an account-scoped read with the full routing policy:
// shard-pool replica first; on a wrong_shard answer refresh the map and
// retry the re-computed target once; on any fallback-worthy failure
// finish on the primary.
func routedRead[T any](r *RoutedClient, id accounts.ID, op func(c *Client) (T, error)) (T, error) {
	ep, primary := r.readTargetFor(id)
	if primary {
		return op(ep.pick())
	}
	v, err := op(ep.pick())
	if err == nil || !fallbackWorthy(err) {
		return v, err
	}
	if isWrongShard(err) {
		// The map moved under us (or this replica changed shards):
		// refresh and retry the freshly computed owner before giving up
		// and paying the primary round trip. Endpoints are compared —
		// not pooled connections — so the retry never re-asks the same
		// stale replica over a different connection.
		r.loadMap(true)
		if ep2, p2 := r.readTargetFor(id); !p2 && ep2 != ep {
			if v2, err2 := op(ep2.pick()); err2 == nil || !fallbackWorthy(err2) {
				return v2, err2
			}
		}
	}
	return op(r.primary.pick())
}

// AccountDetails routes §5.2 Check Balance through a replica of the
// account's shard within the staleness bound, falling back to the
// primary.
func (r *RoutedClient) AccountDetails(id accounts.ID) (*accounts.Account, error) {
	return routedRead(r, id, func(c *Client) (*accounts.Account, error) {
		return c.AccountDetails(id)
	})
}

// AccountStatement routes §5.2 Request Account Statement through a
// replica of the account's shard within the staleness bound, falling
// back to the primary.
func (r *RoutedClient) AccountStatement(id accounts.ID, start, end time.Time) (*accounts.Statement, error) {
	return routedRead(r, id, func(c *Client) (*accounts.Statement, error) {
		return c.AccountStatement(id, start, end)
	})
}

// AdminListAccounts routes the account listing through a replica within
// the staleness bound (primary-only on sharded deployments, where no
// single replica holds the whole bank), falling back to the primary.
func (r *RoutedClient) AdminListAccounts() ([]accounts.Account, error) {
	ep, primary := r.readTargetAny()
	if primary {
		return ep.pick().AdminListAccounts()
	}
	as, err := ep.pick().AdminListAccounts()
	if err != nil && fallbackWorthy(err) {
		return r.primary.pick().AdminListAccounts()
	}
	return as, err
}
