package core

import (
	"net"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// liveWorld spins up a real Server on a loopback listener.
type liveWorld struct {
	*testWorld
	server *Server
	addr   string
}

func newLiveWorld(t *testing.T) *liveWorld {
	t.Helper()
	return newLiveWorldWith(t, newTestWorld(t), nil)
}

// newLiveWorldWith starts a live server over w, letting the test tune
// limits (MaxInFlight, MaxConns, IdleTimeout, …) before serving.
func newLiveWorldWith(t *testing.T, w *testWorld, configure func(*Server)) *liveWorld {
	t.Helper()
	serverID, err := w.ca.Issue(pki.IssueOptions{CommonName: "gridbank-server", Organization: "VO-A", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(w.bank, serverID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	if configure != nil {
		configure(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &liveWorld{testWorld: w, server: srv, addr: ln.Addr().String()}
}

func (lw *liveWorld) client(t *testing.T, id *pki.Identity) *Client {
	t.Helper()
	c, err := Dial(lw.addr, id, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEndToEndOverTLS(t *testing.T) {
	lw := newLiveWorld(t)
	alice := lw.client(t, lw.alice)
	gsp := lw.client(t, lw.gsp)
	admin := lw.client(t, lw.admin)

	bankName, err := alice.Ping()
	if err != nil || bankName != lw.bankID.SubjectName() {
		t.Fatalf("Ping = %q, %v", bankName, err)
	}

	// Alice checks her balance over the wire.
	acct, err := alice.AccountDetails(lw.aliceAcct.AccountID)
	if err != nil || acct.AvailableBalance != currency.FromG(1000) {
		t.Fatalf("details = %+v, %v", acct, err)
	}

	// Full cheque round trip: request → GSP verify → redeem.
	cheque, err := alice.RequestCheque(lw.aliceAcct.AccountID, currency.FromG(200), lw.gsp.SubjectName(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := payment.VerifyCheque(cheque, lw.ts, lw.gsp.SubjectName(), time.Now()); err != nil {
		t.Fatalf("GSP-side cheque verify: %v", err)
	}
	red, err := gsp.RedeemCheque(cheque, &payment.ChequeClaim{
		Serial: cheque.Cheque.Serial, Amount: currency.FromG(150), RUR: []byte(`{"job":"wire"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if red.Paid != currency.FromG(150) || red.Released != currency.FromG(50) {
		t.Fatalf("redeem = %+v", red)
	}

	// Hash chain round trip over the wire.
	chain, signed, err := alice.RequestChain(lw.aliceAcct.AccountID, lw.gsp.SubjectName(), 50, currency.MustParse("0.1"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	w10, err := chain.Word(10)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := gsp.RedeemChain(signed, &payment.ChainClaim{Serial: chain.Commitment.Serial, Index: 10, Word: w10})
	if err != nil {
		t.Fatal(err)
	}
	if cred.Paid != currency.FromG(1) {
		t.Fatalf("chain paid = %s", cred.Paid)
	}

	// Direct transfer with receipt.
	dt, err := alice.DirectTransfer(lw.aliceAcct.AccountID, lw.gspAcct.AccountID, currency.FromG(5), "")
	if err != nil {
		t.Fatal(err)
	}
	var rcpt TransferReceipt
	if _, err := dt.Receipt.Verify(lw.ts, ReceiptContext, time.Now(), &rcpt); err != nil {
		t.Fatalf("receipt verify: %v", err)
	}

	// Statement reflects everything.
	st, err := alice.AccountStatement(lw.aliceAcct.AccountID, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Transactions) == 0 || len(st.Transfers) == 0 {
		t.Fatalf("statement empty: %+v", st)
	}

	// Admin ops over the wire.
	if err := admin.AdminDeposit(lw.gspAcct.AccountID, currency.FromG(3)); err != nil {
		t.Fatal(err)
	}
	accts, err := admin.AdminListAccounts()
	if err != nil || len(accts) != 2 {
		t.Fatalf("admin list = %d, %v", len(accts), err)
	}
	// Alice cannot call admin ops: remote denied code.
	if err := alice.AdminDeposit(lw.aliceAcct.AccountID, currency.FromG(1)); !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("non-admin remote deposit err = %v", err)
	}
}

func TestUnknownSubjectGate(t *testing.T) {
	lw := newLiveWorld(t)
	stranger, err := lw.ca.Issue(pki.IssueOptions{CommonName: "stranger", Organization: "VO-A"})
	if err != nil {
		t.Fatal(err)
	}
	c := lw.client(t, stranger)
	// Any op other than CreateAccount is refused and the connection is
	// dropped (§3.2 DoS gate).
	if _, err := c.AccountDetails(lw.aliceAcct.AccountID); !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("stranger op err = %v", err)
	}
	// A fresh connection can open an account, then operate.
	c2 := lw.client(t, stranger)
	acct, err := c2.CreateAccount("VO-A", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.AccountDetails(acct.AccountID); err != nil {
		t.Fatalf("post-create op err = %v", err)
	}
}

func TestUntrustedClientCannotConnect(t *testing.T) {
	lw := newLiveWorld(t)
	evilCA, err := pki.NewCA("Evil CA", "X", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := evilCA.Issue(pki.IssueOptions{CommonName: "mallory"})
	if err != nil {
		t.Fatal(err)
	}
	// Mallory trusts the real CA (to complete her side) but the server
	// must refuse her chain.
	c, err := Dial(lw.addr, mallory, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ping(); err == nil {
		t.Fatal("untrusted client completed a request")
	}
}

func TestProxyAuthenticationOverWire(t *testing.T) {
	lw := newLiveWorld(t)
	proxy, err := pki.NewProxy(lw.alice, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c := lw.client(t, proxy)
	// The proxy operates alice's account — single sign-on in action.
	acct, err := c.AccountDetails(lw.aliceAcct.AccountID)
	if err != nil {
		t.Fatalf("proxy op failed: %v", err)
	}
	if acct.CertificateName != lw.alice.SubjectName() {
		t.Errorf("account owner = %q", acct.CertificateName)
	}
}

func TestClientReconnectsAfterServerDrop(t *testing.T) {
	lw := newLiveWorld(t)
	c := lw.client(t, lw.alice)
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Force-drop all server conns; the client should redial transparently
	// on the next call (after one failed call).
	lw.server.mu.Lock()
	for conn := range lw.server.conns {
		conn.Close()
	}
	lw.server.mu.Unlock()
	// First call may fail (broken pipe), second must succeed.
	if _, err := c.Ping(); err != nil {
		if _, err2 := c.Ping(); err2 != nil {
			t.Fatalf("reconnect failed: %v / %v", err, err2)
		}
	}
}

func TestServerCloseIdempotentAndServeAfterClose(t *testing.T) {
	w := newTestWorld(t)
	serverID, err := w.ca.Issue(pki.IssueOptions{CommonName: "srv", Organization: "VO-A", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(w.bank, serverID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
	if srv.Addr() != nil {
		t.Error("Addr after close should be nil")
	}
}

func TestMoneyConservedOverWireWorkload(t *testing.T) {
	lw := newLiveWorld(t)
	alice := lw.client(t, lw.alice)
	gsp := lw.client(t, lw.gsp)
	before, err := lw.bank.Manager().TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		cheque, err := alice.RequestCheque(lw.aliceAcct.AccountID, currency.FromG(10), lw.gsp.SubjectName(), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gsp.RedeemCheque(cheque, &payment.ChequeClaim{
			Serial: cheque.Cheque.Serial, Amount: currency.FromG(7),
		}); err != nil {
			t.Fatal(err)
		}
	}
	after, err := lw.bank.Manager().TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("money not conserved over wire: %s -> %s", before, after)
	}
}

func TestBankPersistenceAcrossRestart(t *testing.T) {
	// A bank restarted on the same journal retains accounts, cheque
	// registries and admin table.
	ca, err := pki.NewCA("CA", "VO", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bankID, _ := ca.Issue(pki.IssueOptions{CommonName: "bank"})
	alice, _ := ca.Issue(pki.IssueOptions{CommonName: "alice"})
	gsp, _ := ca.Issue(pki.IssueOptions{CommonName: "gsp"})
	ts := pki.NewTrustStore(ca.Certificate())
	journal := db.NewMemJournal()

	store1, _ := db.Open(journal)
	bank1, err := NewBank(store1, BankConfig{Identity: bankID, Trust: ts, Admins: []string{"CN=root"}})
	if err != nil {
		t.Fatal(err)
	}
	aAcct, err := bank1.CreateAccount(alice.SubjectName(), &CreateAccountRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank1.CreateAccount(gsp.SubjectName(), &CreateAccountRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bank1.AdminDeposit("CN=root", &AdminAmountRequest{AccountID: aAcct.Account.AccountID, Amount: currency.FromG(100)}); err != nil {
		t.Fatal(err)
	}
	cheque, err := bank1.RequestCheque(alice.SubjectName(), &RequestChequeRequest{
		AccountID: aAcct.Account.AccountID, Amount: currency.FromG(40), PayeeCert: gsp.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": new store from the same journal.
	store2, err := db.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	bank2, err := NewBank(store2, BankConfig{Identity: bankID, Trust: ts})
	if err != nil {
		t.Fatal(err)
	}
	if !bank2.IsAdmin("CN=root") {
		t.Error("admin table lost on restart")
	}
	// The outstanding cheque can be redeemed against the restarted bank.
	red, err := bank2.RedeemCheque(gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: cheque.Cheque,
		Claim:  payment.ChequeClaim{Serial: cheque.Cheque.Cheque.Serial, Amount: currency.FromG(40)},
	})
	if err != nil || red.Paid != currency.FromG(40) {
		t.Fatalf("post-restart redeem = %+v, %v", red, err)
	}
}
