package core

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/micropay"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
	"gridbank/internal/usage"
	"gridbank/internal/wire"
)

// negotiatedClient dials lw as id with a codec offer, so the dial-time
// handshake runs before the first call.
func negotiatedClient(t *testing.T, lw *liveWorld, id *pki.Identity, offers []string) *Client {
	t.Helper()
	c, err := Dial(lw.addr, id, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	c.OfferCodecs = offers
	t.Cleanup(func() { c.Close() })
	return c
}

// connCodecName reports the codec the client's live connection settled
// on (in-package test hook).
func connCodecName(t *testing.T, c *Client) string {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		t.Fatal("client has no live connection")
	}
	return c.conn.codec.Name()
}

// TestNegotiatedBinarySessionEndToEnd runs real operations — including
// the binary-body hot paths and the JSON-fallback long tail — over a
// negotiated bin1 connection.
func TestNegotiatedBinarySessionEndToEnd(t *testing.T) {
	lw := newLiveWorld(t)
	alice := negotiatedClient(t, lw, lw.alice, []string{wire.CodecBin1, wire.CodecJSON})
	gsp := negotiatedClient(t, lw, lw.gsp, []string{wire.CodecBin1, wire.CodecJSON})

	if name, err := alice.Ping(); err != nil || name != lw.bankID.SubjectName() {
		t.Fatalf("Ping = %q, %v", name, err)
	}
	if got := connCodecName(t, alice); got != wire.CodecBin1 {
		t.Fatalf("negotiated codec = %q, want bin1", got)
	}

	// Binary-body hot paths: CheckFunds and DirectTransfer.
	if err := alice.CheckFunds(lw.aliceAcct.AccountID, currency.FromG(1)); err != nil {
		t.Fatalf("CheckFunds over bin1: %v", err)
	}
	rcpt, err := alice.DirectTransfer(lw.aliceAcct.AccountID, lw.gspAcct.AccountID, currency.FromG(10), "")
	if err != nil {
		t.Fatalf("DirectTransfer over bin1: %v", err)
	}
	if rcpt.TransactionID == 0 {
		t.Fatalf("transfer response = %+v", rcpt)
	}

	// JSON-fallback long tail under binary frames: full cheque flow.
	cheque, err := alice.RequestCheque(lw.aliceAcct.AccountID, currency.FromG(200), lw.gsp.SubjectName(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	red, err := gsp.RedeemCheque(cheque, &payment.ChequeClaim{
		Serial: cheque.Cheque.Serial, Amount: currency.FromG(150), RUR: []byte(`{"job":"bin1"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if red.Paid != currency.FromG(150) {
		t.Fatalf("redeem over bin1 = %+v", red)
	}

	// A fresh seed-style (offerless) client stays on JSON and sees the
	// exact same state the bin1 session sees — conservation across
	// codecs, not just within one.
	seed := lw.client(t, lw.alice)
	viaSeed, err := seed.AccountDetails(lw.aliceAcct.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if got := connCodecName(t, seed); got != wire.CodecJSON {
		t.Fatalf("offerless client codec = %q, want json", got)
	}
	viaBin, err := alice.AccountDetails(lw.aliceAcct.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaSeed, viaBin) {
		t.Fatalf("codec views diverge:\nseed: %+v\n bin: %+v", viaSeed, viaBin)
	}
	if viaSeed.AvailableBalance >= currency.FromG(1000) {
		t.Fatalf("spending not reflected: %s", viaSeed.AvailableBalance)
	}
}

// TestJSONPinnedServerKeepsOfferingClientsOnJSON: a server pinned to
// the seed codec answers offers by confirming json (or ignoring an
// offer with no overlap), and everything still works.
func TestJSONPinnedServerKeepsOfferingClientsOnJSON(t *testing.T) {
	lw := newLiveWorldWith(t, newTestWorld(t), func(s *Server) {
		s.WireCodecs = []string{wire.CodecJSON}
	})
	both := negotiatedClient(t, lw, lw.alice, []string{wire.CodecBin1, wire.CodecJSON})
	if _, err := both.Ping(); err != nil {
		t.Fatal(err)
	}
	if got := connCodecName(t, both); got != wire.CodecJSON {
		t.Fatalf("codec against pinned server = %q, want json", got)
	}
	if _, err := both.AccountDetails(lw.aliceAcct.AccountID); err != nil {
		t.Fatal(err)
	}

	// An offer with no overlap at all is simply ignored.
	binOnly := negotiatedClient(t, lw, lw.gsp, []string{wire.CodecBin1})
	if _, err := binOnly.Ping(); err != nil {
		t.Fatal(err)
	}
	if got := connCodecName(t, binOnly); got != wire.CodecJSON {
		t.Fatalf("codec after refused offer = %q, want json", got)
	}
}

// TestBinaryBodyRoundTrips pins every hot-path BinaryBody implementation
// to its JSON twin: encoding with the bin1 codec and decoding must yield
// exactly what a JSON round trip yields.
func TestBinaryBodyRoundTrips(t *testing.T) {
	cases := []wire.BinaryBody{
		&DirectTransferRequest{
			FromAccountID: "01-0001-00000001", ToAccountID: "01-0001-00000002",
			Amount: currency.FromG(42),
		},
		&DirectTransferRequest{
			FromAccountID: "01-0001-00000001", ToAccountID: "01-0001-00000002",
			Amount: 1, RecipientAddress: "gsp.example:7776", IdempotencyKey: "idem-1", BatchReceipt: true,
		},
		&CheckFundsRequest{AccountID: "01-0001-00000009", Amount: currency.FromG(7)},
		&UsageSubmitRequest{},
		&UsageSubmitRequest{Charges: []usage.Submission{
			{ID: "c1", Drawer: "01-0001-00000001", Recipient: "01-0001-00000002", RUR: []byte(`{"r":1}`)},
			{ID: "c2", Drawer: "01-0001-00000001", Recipient: "01-0001-00000002", Rates: &rur.RateCard{}},
		}},
		&MicropaySubmitRequest{Claims: []micropay.Claim{
			{Serial: "chain-1", Index: 3, Word: []byte{1, 2, 3}},
			{Serial: "chain-1", Index: 4, Word: []byte{4, 5, 6}, RUR: []byte(`{"tick":4}`)},
		}},
	}
	for _, in := range cases {
		// Binary round trip.
		raw, err := wire.EncodeBinaryBody(in)
		if err != nil {
			t.Fatalf("%T: encode binary: %v", in, err)
		}
		if raw[0] != wire.BinBodyMagic {
			t.Fatalf("%T: binary body missing magic", in)
		}
		viaBin := reflect.New(reflect.TypeOf(in).Elem()).Interface()
		if err := wire.Decode(raw, viaBin); err != nil {
			t.Fatalf("%T: decode binary: %v", in, err)
		}

		// JSON round trip of the same value.
		jraw, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		viaJSON := reflect.New(reflect.TypeOf(in).Elem()).Interface()
		if err := wire.Decode(jraw, viaJSON); err != nil {
			t.Fatalf("%T: decode json: %v", in, err)
		}

		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("%T codec divergence:\n bin: %+v\njson: %+v", in, viaBin, viaJSON)
		}
	}
}

// TestEncodeWithFallsBackToJSON: non-BinaryBody payloads encode as JSON
// even on a bin1 connection, and a JSON codec never emits binary.
func TestEncodeWithFallsBackToJSON(t *testing.T) {
	raw, err := wire.EncodeWith(wire.Bin1, &AccountDetailsRequest{AccountID: "01-0001-00000001"})
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != '{' {
		t.Fatalf("long-tail body under bin1 not JSON: % x", raw[:4])
	}
	raw, err = wire.EncodeWith(wire.JSON, &CheckFundsRequest{AccountID: "a", Amount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != '{' {
		t.Fatalf("BinaryBody under json codec not JSON: % x", raw[:4])
	}
}
