package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/micropay"
	"gridbank/internal/usage"
	"gridbank/internal/wire"
)

// Binary body forms for the hot-path request payloads. On a connection
// that negotiated the bin1 codec these replace the per-call JSON
// marshal of the four highest-volume ops (DirectTransfer, CheckFunds,
// Usage.Submit, Micropay.Submit); everything else rides the JSON
// fallback unchanged. Each type implements wire.BinaryBody; the tag
// byte namespaces the payload so a body routed to the wrong op fails
// typed. Tags are frozen — new bodies append, never renumber.
const (
	binTagDirectTransfer = 0x01
	binTagCheckFunds     = 0x02
	binTagUsageSubmit    = 0x03
	binTagMicropaySubmit = 0x04
	// 0x05 is the replica stream frame (internal/replica).
)

// Optional-field flags of the DirectTransferRequest binary form.
const (
	dtFlagRecipientAddr = 1 << 0
	dtFlagIdemKey       = 1 << 1
	dtFlagBatchReceipt  = 1 << 2
)

// BinaryBodyTag implements wire.BinaryBody.
func (r *DirectTransferRequest) BinaryBodyTag() byte { return binTagDirectTransfer }

// AppendBinaryBody implements wire.BinaryBody:
// flags:u8 from:str16 to:str16 amount:u64 [recipient:str16] [idem:str16].
func (r *DirectTransferRequest) AppendBinaryBody(buf *bytes.Buffer) error {
	var flags byte
	if r.RecipientAddress != "" {
		flags |= dtFlagRecipientAddr
	}
	if r.IdempotencyKey != "" {
		flags |= dtFlagIdemKey
	}
	if r.BatchReceipt {
		flags |= dtFlagBatchReceipt
	}
	buf.WriteByte(flags)
	if err := wire.AppendStr16(buf, string(r.FromAccountID)); err != nil {
		return err
	}
	if err := wire.AppendStr16(buf, string(r.ToAccountID)); err != nil {
		return err
	}
	wire.AppendU64(buf, uint64(r.Amount))
	if flags&dtFlagRecipientAddr != 0 {
		if err := wire.AppendStr16(buf, r.RecipientAddress); err != nil {
			return err
		}
	}
	if flags&dtFlagIdemKey != 0 {
		if err := wire.AppendStr16(buf, r.IdempotencyKey); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBinaryBody implements wire.BinaryBody.
func (r *DirectTransferRequest) DecodeBinaryBody(payload []byte) error {
	br := wire.NewBinReader(payload)
	flags := br.U8()
	*r = DirectTransferRequest{
		FromAccountID: accounts.ID(br.Str16()),
		ToAccountID:   accounts.ID(br.Str16()),
		Amount:        currency.Amount(br.U64()),
		BatchReceipt:  flags&dtFlagBatchReceipt != 0,
	}
	if flags&dtFlagRecipientAddr != 0 {
		r.RecipientAddress = br.Str16()
	}
	if flags&dtFlagIdemKey != 0 {
		r.IdempotencyKey = br.Str16()
	}
	return br.Close()
}

// BinaryBodyTag implements wire.BinaryBody.
func (r *CheckFundsRequest) BinaryBodyTag() byte { return binTagCheckFunds }

// AppendBinaryBody implements wire.BinaryBody: account:str16 amount:u64.
func (r *CheckFundsRequest) AppendBinaryBody(buf *bytes.Buffer) error {
	if err := wire.AppendStr16(buf, string(r.AccountID)); err != nil {
		return err
	}
	wire.AppendU64(buf, uint64(r.Amount))
	return nil
}

// DecodeBinaryBody implements wire.BinaryBody.
func (r *CheckFundsRequest) DecodeBinaryBody(payload []byte) error {
	br := wire.NewBinReader(payload)
	*r = CheckFundsRequest{
		AccountID: accounts.ID(br.Str16()),
		Amount:    currency.Amount(br.U64()),
	}
	return br.Close()
}

// BinaryBodyTag implements wire.BinaryBody.
func (r *UsageSubmitRequest) BinaryBodyTag() byte { return binTagUsageSubmit }

// AppendBinaryBody implements wire.BinaryBody:
// count:u32 × (id:str16 drawer:str16 recipient:str16 rur:blob32
// rates:blob32). The rate card travels as a nested JSON sub-blob: it
// is small, cold relative to the RUR bytes, and full of maps whose
// hand-rolled layout would buy nothing. A zero-length rates blob
// means a nil card (matching JSON null).
func (r *UsageSubmitRequest) AppendBinaryBody(buf *bytes.Buffer) error {
	wire.AppendU32(buf, uint32(len(r.Charges)))
	for i := range r.Charges {
		s := &r.Charges[i]
		if err := wire.AppendStr16(buf, s.ID); err != nil {
			return err
		}
		if err := wire.AppendStr16(buf, string(s.Drawer)); err != nil {
			return err
		}
		if err := wire.AppendStr16(buf, string(s.Recipient)); err != nil {
			return err
		}
		if err := wire.AppendBlob32(buf, s.RUR); err != nil {
			return err
		}
		var rates []byte
		if s.Rates != nil {
			b, err := json.Marshal(s.Rates)
			if err != nil {
				return fmt.Errorf("core: encode rate card: %w", err)
			}
			rates = b
		}
		if err := wire.AppendBlob32(buf, rates); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBinaryBody implements wire.BinaryBody.
func (r *UsageSubmitRequest) DecodeBinaryBody(payload []byte) error {
	br := wire.NewBinReader(payload)
	n := br.U32()
	*r = UsageSubmitRequest{}
	if err := br.Err(); err != nil {
		return err
	}
	if n > 0 {
		r.Charges = make([]usage.Submission, 0, min(int(n), 4096))
	}
	for i := uint32(0); i < n; i++ {
		s := usage.Submission{
			ID:        br.Str16(),
			Drawer:    accounts.ID(br.Str16()),
			Recipient: accounts.ID(br.Str16()),
			RUR:       br.Blob32(),
		}
		if rates := br.Blob32(); len(rates) != 0 {
			if err := json.Unmarshal(rates, &s.Rates); err != nil {
				return fmt.Errorf("core: decode rate card: %w", err)
			}
		}
		if err := br.Err(); err != nil {
			return err
		}
		r.Charges = append(r.Charges, s)
	}
	return br.Close()
}

// BinaryBodyTag implements wire.BinaryBody.
func (r *MicropaySubmitRequest) BinaryBodyTag() byte { return binTagMicropaySubmit }

// AppendBinaryBody implements wire.BinaryBody:
// count:u32 × (serial:str16 index:u64 word:blob32 rur:blob32).
func (r *MicropaySubmitRequest) AppendBinaryBody(buf *bytes.Buffer) error {
	wire.AppendU32(buf, uint32(len(r.Claims)))
	for i := range r.Claims {
		c := &r.Claims[i]
		if err := wire.AppendStr16(buf, c.Serial); err != nil {
			return err
		}
		wire.AppendU64(buf, uint64(int64(c.Index)))
		if err := wire.AppendBlob32(buf, c.Word); err != nil {
			return err
		}
		if err := wire.AppendBlob32(buf, c.RUR); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBinaryBody implements wire.BinaryBody.
func (r *MicropaySubmitRequest) DecodeBinaryBody(payload []byte) error {
	br := wire.NewBinReader(payload)
	n := br.U32()
	*r = MicropaySubmitRequest{}
	if err := br.Err(); err != nil {
		return err
	}
	if n > 0 {
		r.Claims = make([]micropay.Claim, 0, min(int(n), 4096))
	}
	for i := uint32(0); i < n; i++ {
		c := micropay.Claim{
			Serial: br.Str16(),
			Index:  int(int64(br.U64())),
			Word:   br.Blob32(),
			RUR:    br.Blob32(),
		}
		if err := br.Err(); err != nil {
			return err
		}
		r.Claims = append(r.Claims, c)
	}
	return br.Close()
}
