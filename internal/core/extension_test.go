package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// This file verifies the paper's modularity claim (§3.2): "Any other
// payment scheme that defines its own data structures and communication
// protocol can be added without need to modify GB Accounts or GB
// Security modules." promissoryScheme below is a complete novel payment
// scheme — bank-signed IOU notes redeemable once — built entirely on the
// server's RegisterOp extension point and the accounts layer's public
// operations. Neither internal/accounts nor internal/pki changes.

const promissoryContext = "ext/promissory/v1"

type promissoryNote struct {
	Serial string          `json:"serial"`
	Drawer accounts.ID     `json:"drawer"`
	Payee  string          `json:"payee"`
	Amount currency.Amount `json:"amount"`
}

type promissoryScheme struct {
	bank *Bank
	mu   sync.Mutex
	open map[string]promissoryNote // serial -> note (outstanding)
}

func (ps *promissoryScheme) issue(subject string, body []byte) (any, error) {
	var req struct {
		Account accounts.ID     `json:"account"`
		Payee   string          `json:"payee"`
		Amount  currency.Amount `json:"amount"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	acct, err := ps.bank.Manager().Details(req.Account)
	if err != nil {
		return nil, err
	}
	if acct.CertificateName != subject {
		return nil, fmt.Errorf("%w: not the account owner", ErrDenied)
	}
	serial, err := payment.NewSerial()
	if err != nil {
		return nil, err
	}
	// Reuse the §3.4 guarantee: lock the face value.
	if err := ps.bank.Manager().CheckFunds(req.Account, req.Amount); err != nil {
		return nil, err
	}
	note := promissoryNote{Serial: serial, Drawer: req.Account, Payee: req.Payee, Amount: req.Amount}
	signed, err := pki.Sign(ps.bank.Identity(), promissoryContext, note)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	ps.open[serial] = note
	ps.mu.Unlock()
	return map[string]any{"note": note, "envelope": signed}, nil
}

func (ps *promissoryScheme) redeem(subject string, body []byte) (any, error) {
	var req struct {
		Envelope *pki.Signed `json:"envelope"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	var note promissoryNote
	if _, err := req.Envelope.Verify(ps.bank.Trust(), promissoryContext, time.Now(), &note); err != nil {
		return nil, err
	}
	if note.Payee != subject {
		return nil, fmt.Errorf("%w: note payable to %s", ErrDenied, note.Payee)
	}
	payeeAcct, err := ps.bank.Manager().FindByCertificate(subject, "")
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	_, outstanding := ps.open[note.Serial]
	if outstanding {
		delete(ps.open, note.Serial)
	}
	ps.mu.Unlock()
	if !outstanding {
		return nil, fmt.Errorf("%w: note %s", ErrAlreadyRedeemed, note.Serial)
	}
	tr, err := ps.bank.Manager().Transfer(note.Drawer, payeeAcct.AccountID, note.Amount,
		accounts.TransferOptions{FromLocked: true})
	if err != nil {
		return nil, err
	}
	return map[string]any{"transaction_id": tr.TransactionID}, nil
}

func TestCustomPaymentSchemePluggability(t *testing.T) {
	lw := newLiveWorld(t)
	scheme := &promissoryScheme{bank: lw.bank, open: make(map[string]promissoryNote)}
	if err := lw.server.RegisterOp("Promissory.Issue", scheme.issue); err != nil {
		t.Fatal(err)
	}
	if err := lw.server.RegisterOp("Promissory.Redeem", scheme.redeem); err != nil {
		t.Fatal(err)
	}

	alice := lw.client(t, lw.alice)
	gsp := lw.client(t, lw.gsp)

	// Issue a 40 G$ note over the wire.
	var issued struct {
		Note     promissoryNote `json:"note"`
		Envelope *pki.Signed    `json:"envelope"`
	}
	err := alice.Call("Promissory.Issue", map[string]any{
		"account": lw.aliceAcct.AccountID,
		"payee":   lw.gsp.SubjectName(),
		"amount":  currency.FromG(40),
	}, &issued)
	if err != nil {
		t.Fatal(err)
	}
	// The lock landed on the ledger through the unmodified accounts layer.
	a, _ := lw.bank.Manager().Details(lw.aliceAcct.AccountID)
	if a.LockedBalance != currency.FromG(40) {
		t.Fatalf("locked = %s", a.LockedBalance)
	}
	// Redeem as the payee.
	var redeemed struct {
		TransactionID uint64 `json:"transaction_id"`
	}
	if err := gsp.Call("Promissory.Redeem", map[string]any{"envelope": issued.Envelope}, &redeemed); err != nil {
		t.Fatal(err)
	}
	if redeemed.TransactionID == 0 {
		t.Fatal("no settlement transaction")
	}
	g, _ := lw.bank.Manager().Details(lw.gspAcct.AccountID)
	if g.AvailableBalance != currency.FromG(40) {
		t.Fatalf("gsp balance = %s", g.AvailableBalance)
	}
	// Double redemption refused by the scheme's own registry.
	if err := gsp.Call("Promissory.Redeem", map[string]any{"envelope": issued.Envelope}, &redeemed); !IsRemoteCode(err, CodeConflict) {
		t.Fatalf("double redeem err = %v", err)
	}
	// A stranger cannot use the custom op either (connection gate).
	stranger, err := lw.ca.Issue(pki.IssueOptions{CommonName: "nobody", Organization: "VO-A"})
	if err != nil {
		t.Fatal(err)
	}
	sc := lw.client(t, stranger)
	if err := sc.Call("Promissory.Issue", map[string]any{}, nil); !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("gated custom op err = %v", err)
	}
}

func TestRegisterOpValidation(t *testing.T) {
	lw := newLiveWorld(t)
	if err := lw.server.RegisterOp("", nil); err == nil {
		t.Error("empty registration accepted")
	}
	if err := lw.server.RegisterOp(OpPing, func(string, []byte) (any, error) { return nil, nil }); err == nil {
		t.Error("built-in override accepted")
	}
	// Every dispatched op must be refused — a registration that dispatch
	// shadows would silently never run.
	for _, op := range []string{OpShardMap, OpReplicaStatus, OpUsageSubmit, OpUsageStatus, OpUsageDrain} {
		if err := lw.server.RegisterOp(op, func(string, []byte) (any, error) { return nil, nil }); err == nil {
			t.Errorf("built-in override of %s accepted", op)
		}
	}
	h := func(string, []byte) (any, error) { return "ok", nil }
	if err := lw.server.RegisterOp("X.Op", h); err != nil {
		t.Fatal(err)
	}
	if err := lw.server.RegisterOp("X.Op", h); err == nil {
		t.Error("duplicate registration accepted")
	}
}

// TestCrossSchemeReplayRefused: a chain commitment signed by the bank
// cannot be replayed as a cheque — the signature context separates
// instrument domains.
func TestCrossSchemeReplayRefused(t *testing.T) {
	w := newTestWorld(t)
	chainResp, err := w.bank.RequestChain(w.alice.SubjectName(), &RequestChainRequest{
		AccountID: w.aliceAcct.AccountID, PayeeCert: w.gsp.SubjectName(), Length: 10, PerWord: currency.FromG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	forged := payment.SignedCheque{
		Cheque: payment.Cheque{
			Serial:          chainResp.Chain.Commitment.Serial,
			DrawerAccountID: w.aliceAcct.AccountID,
			DrawerCert:      w.alice.SubjectName(),
			PayeeCert:       w.gsp.SubjectName(),
			Limit:           currency.FromG(10),
			Currency:        currency.GridDollar,
			IssuedAt:        chainResp.Chain.Commitment.IssuedAt,
			Expires:         chainResp.Chain.Commitment.Expires,
		},
		Envelope: chainResp.Chain.Envelope, // the *chain's* signature
	}
	_, err = w.bank.RedeemCheque(w.gsp.SubjectName(), &RedeemChequeRequest{
		Cheque: forged,
		Claim:  payment.ChequeClaim{Serial: forged.Cheque.Serial, Amount: currency.FromG(1)},
	})
	if !errors.Is(err, pki.ErrBadSignature) {
		t.Fatalf("cross-scheme replay err = %v", err)
	}
}

// TestExpiredProxyCannotConnect: single sign-on credentials stop working
// when the proxy lapses, without touching the user's identity.
func TestExpiredProxyCannotConnect(t *testing.T) {
	lw := newLiveWorld(t)
	proxy, err := pki.NewProxy(lw.alice, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	c, err := Dial(lw.addr, proxy, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ping(); err == nil {
		t.Fatal("expired proxy completed a request")
	}
	// The identity itself still works.
	c2 := lw.client(t, lw.alice)
	if _, err := c2.Ping(); err != nil {
		t.Fatalf("identity broken: %v", err)
	}
}
