package core

import (
	"errors"
	"time"

	"gridbank/internal/micropay"
)

// Micropayment operations: the wire surface of the streaming GridHash
// fast path (internal/micropay). Micropay.Submit is the pay-as-you-go
// front door at scale — a GSP streams chain-word claims in batches
// instead of presenting one RedeemChain call per tick — and
// Micropay.Status / Micropay.Drain are the operational window.
const (
	OpMicropaySubmit = "Micropay.Submit" // batch intake of chain claims
	OpMicropayStatus = "Micropay.Status" // pipeline queue depth and outcome counters
	OpMicropayDrain  = "Micropay.Drain"  // block until the queue settles (admin)
)

// ErrMicropayDisabled answers micropay operations on a server whose
// pipeline was not enabled.
var ErrMicropayDisabled = errors.New("core: micropay pipeline not enabled on this server")

// MicropayEngine is the pipeline surface the bank dispatches micropay
// operations to. *micropay.Pipeline implements it.
type MicropayEngine interface {
	Submit(payeeCert string, batch []micropay.Claim) (*micropay.SubmitResult, error)
	Status() *micropay.Stats
	Drain(timeout time.Duration) (*micropay.Stats, error)
}

var _ MicropayEngine = (*micropay.Pipeline)(nil)

// MicropaySubmitRequest offers a batch of chain claims for asynchronous
// redemption. The pipeline binds every claim to its chain's signed
// commitment: the caller must be the chain's payee (administrators may
// relay on anyone's behalf), the preimage must extend the accepted
// chain head, and the chain must be outstanding and unexpired.
type MicropaySubmitRequest struct {
	Claims []micropay.Claim `json:"claims"`
}

// MicropaySubmitResponse reports the intake outcome per batch.
type MicropaySubmitResponse struct {
	Result micropay.SubmitResult `json:"result"`
}

// MicropayStatusResponse reports the pipeline's observable state.
type MicropayStatusResponse struct {
	Stats micropay.Stats `json:"stats"`
}

// MicropayDrainRequest blocks until the pipeline settles everything
// pending, or Timeout elapses (default 30s).
type MicropayDrainRequest struct {
	Timeout time.Duration `json:"timeout,omitempty"`
}

// MicropayDrainResponse carries the post-drain stats.
type MicropayDrainResponse struct {
	Stats micropay.Stats `json:"stats"`
}

// SetMicropay attaches the streaming redemption pipeline the bank
// dispatches micropay operations to. Call during wiring, before the
// server takes traffic.
func (b *Bank) SetMicropay(eng MicropayEngine) {
	b.micropayMu.Lock()
	b.micropay = eng
	b.micropayMu.Unlock()
}

func (b *Bank) micropayEngine() (MicropayEngine, error) {
	b.micropayMu.RLock()
	eng := b.micropay
	b.micropayMu.RUnlock()
	if eng == nil {
		return nil, ErrMicropayDisabled
	}
	return eng, nil
}

// MicropaySubmit implements Micropay.Submit. Per-claim authorization
// lives in the pipeline, which compares the caller against each chain's
// signature-verified PayeeCert — the caller never presents the chain
// wrapper here, so there is nothing unverified to trust. Administrators
// bypass the payee binding (relay submission).
func (b *Bank) MicropaySubmit(caller string, req *MicropaySubmitRequest) (*MicropaySubmitResponse, error) {
	eng, err := b.micropayEngine()
	if err != nil {
		return nil, err
	}
	if len(req.Claims) == 0 {
		return &MicropaySubmitResponse{}, nil
	}
	payee := caller
	if b.IsAdmin(caller) {
		payee = "" // relay: the chain's own payee binding still routes the money
	}
	res, err := eng.Submit(payee, req.Claims)
	if err != nil {
		return nil, err
	}
	return &MicropaySubmitResponse{Result: *res}, nil
}

// MicropayStatus implements Micropay.Status for any authenticated
// subject.
func (b *Bank) MicropayStatus(string) (*MicropayStatusResponse, error) {
	eng, err := b.micropayEngine()
	if err != nil {
		return nil, err
	}
	return &MicropayStatusResponse{Stats: *eng.Status()}, nil
}

// MicropayDrain implements Micropay.Drain (administrators only — it
// blocks a server goroutine until the queue empties).
func (b *Bank) MicropayDrain(caller string, req *MicropayDrainRequest) (*MicropayDrainResponse, error) {
	if err := b.requireAdmin(caller); err != nil {
		return nil, err
	}
	eng, err := b.micropayEngine()
	if err != nil {
		return nil, err
	}
	st, err := eng.Drain(req.Timeout)
	if err != nil {
		return nil, err
	}
	return &MicropayDrainResponse{Stats: *st}, nil
}

// --- Read-only replica: micropay ops live on the primary ---------------------

// MicropaySubmit redirects to the primary (intake mutates the spool).
func (b *ReadOnlyBank) MicropaySubmit(string, *MicropaySubmitRequest) (*MicropaySubmitResponse, error) {
	return nil, b.redirect(OpMicropaySubmit)
}

// MicropayStatus redirects to the primary: the pipeline (and its queue)
// runs there, and spool tables are not part of the replicated ledger.
func (b *ReadOnlyBank) MicropayStatus(string) (*MicropayStatusResponse, error) {
	return nil, b.redirect(OpMicropayStatus)
}

// MicropayDrain redirects to the primary.
func (b *ReadOnlyBank) MicropayDrain(string, *MicropayDrainRequest) (*MicropayDrainResponse, error) {
	return nil, b.redirect(OpMicropayDrain)
}

// --- Client side -------------------------------------------------------------

// MicropaySubmit streams a batch of chain claims into the bank's
// redemption pipeline. On CodeOverloaded the caller backs off and
// resubmits — re-submission is idempotent per (serial, index).
func (c *Client) MicropaySubmit(claims []micropay.Claim) (*micropay.SubmitResult, error) {
	var out MicropaySubmitResponse
	if err := c.call(OpMicropaySubmit, &MicropaySubmitRequest{Claims: claims}, &out); err != nil {
		return nil, err
	}
	return &out.Result, nil
}

// MicropayStatus reports the redemption pipeline's state.
func (c *Client) MicropayStatus() (*micropay.Stats, error) {
	var out MicropayStatusResponse
	if err := c.call(OpMicropayStatus, nil, &out); err != nil {
		return nil, err
	}
	return &out.Stats, nil
}

// MicropayDrain blocks until the pipeline settles everything pending
// (administrator caller). The call's own deadline is stretched past the
// server-side drain window so a long legitimate drain is not cut off by
// the default CallTimeout.
func (c *Client) MicropayDrain(timeout time.Duration) (*micropay.Stats, error) {
	serverSide := timeout
	if serverSide <= 0 {
		serverSide = 30 * time.Second // the server's own default drain window
	}
	var out MicropayDrainResponse
	if err := c.callWithTimeout(OpMicropayDrain, &MicropayDrainRequest{Timeout: timeout}, &out, serverSide+30*time.Second); err != nil {
		return nil, err
	}
	return &out.Stats, nil
}

// --- Routed client -----------------------------------------------------------

// Micropay operations always run on the primary: intake mutates the
// spool and the pipeline state lives only there.

// MicropaySubmit submits a claim batch to the primary under the retry
// policy: overloaded backpressure is absorbed with backoff within the
// retry budget instead of surfacing as a hard error (re-submission is
// idempotent per (serial, index), so transport-ambiguous failures retry
// safely too).
func (r *RoutedClient) MicropaySubmit(claims []micropay.Claim) (*micropay.SubmitResult, error) {
	var out MicropaySubmitResponse
	if err := r.retryMutate(OpMicropaySubmit, &MicropaySubmitRequest{Claims: claims}, &out); err != nil {
		return nil, err
	}
	return &out.Result, nil
}

// MicropayStatus reads pipeline state from the primary.
func (r *RoutedClient) MicropayStatus() (*micropay.Stats, error) {
	return r.Client.MicropayStatus()
}

// MicropayDrain drains the primary's pipeline.
func (r *RoutedClient) MicropayDrain(timeout time.Duration) (*micropay.Stats, error) {
	return r.Client.MicropayDrain(timeout)
}
