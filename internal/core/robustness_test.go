package core

import (
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

// rawTLSConn opens an authenticated TLS connection to the live server so
// tests can speak malformed wire traffic beneath the Client layer.
func rawTLSConn(t *testing.T, lw *liveWorld, id *pki.Identity) *tls.Conn {
	t.Helper()
	cfg, err := pki.ClientTLSConfig(id, lw.ts)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.DialTimeout("tcp", lw.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn := tls.Client(raw, cfg)
	if err := conn.Handshake(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerRejectsMalformedBodies(t *testing.T) {
	lw := newLiveWorld(t)
	conn := rawTLSConn(t, lw, lw.alice)
	wc := wire.NewConn(conn)

	// Garbage JSON body for a typed op: clean error, connection stays up.
	if err := wc.WriteRequest(&wire.Request{ID: 1, Op: OpAccountDetails, Body: json.RawMessage(`{"account_id":42}`)}); err != nil {
		t.Fatal(err)
	}
	resp, err := wc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("malformed body accepted")
	}
	// Empty body for a typed op.
	if err := wc.WriteRequest(&wire.Request{ID: 2, Op: OpDirectTransfer}); err != nil {
		t.Fatal(err)
	}
	resp, err = wc.ReadResponse()
	if err != nil || resp.OK {
		t.Fatalf("empty body: %+v, %v", resp, err)
	}
	// The connection still serves valid requests afterwards.
	if err := wc.WriteRequest(&wire.Request{ID: 3, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	resp, err = wc.ReadResponse()
	if err != nil || !resp.OK {
		t.Fatalf("connection poisoned: %+v, %v", resp, err)
	}
}

func TestServerDropsOversizedFrames(t *testing.T) {
	lw := newLiveWorld(t)
	conn := rawTLSConn(t, lw, lw.alice)
	// Header advertising a frame beyond MaxFrame: the server must drop
	// the connection rather than allocate.
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection after an oversized frame header")
	}
}

func TestConcurrentClientsMixedWorkload(t *testing.T) {
	lw := newLiveWorld(t)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			id, err := lw.ca.Issue(pki.IssueOptions{CommonName: fmt.Sprintf("worker-%d", n), Organization: "VO-A"})
			if err != nil {
				errs <- err
				return
			}
			c, err := Dial(lw.addr, id, lw.ts)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			acct, err := c.CreateAccount("", "")
			if err != nil {
				errs <- err
				return
			}
			for k := 0; k < 20; k++ {
				if _, err := c.AccountDetails(acct.AccountID); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Ledger still consistent.
	if _, err := lw.bank.Manager().TotalBalance(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRedeemSingleWinner: many provider threads race to redeem
// one cheque; exactly one wins.
func TestConcurrentRedeemSingleWinner(t *testing.T) {
	w := newTestWorld(t)
	resp, err := w.bank.RequestCheque(w.alice.SubjectName(), &RequestChequeRequest{
		AccountID: w.aliceAcct.AccountID, Amount: currency.FromG(10), PayeeCert: w.gsp.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	wins := 0
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := w.bank.RedeemCheque(w.gsp.SubjectName(), &RedeemChequeRequest{
				Cheque: resp.Cheque,
				Claim:  paymentClaim(resp.Cheque.Cheque.Serial, currency.FromG(10)),
			})
			if err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d redemptions succeeded", wins)
	}
	gspAvail, _ := w.balance(t, w.gspAcct.AccountID)
	if gspAvail != currency.FromG(10) {
		t.Fatalf("gsp got %s", gspAvail)
	}
}

func paymentClaim(serial string, amount currency.Amount) payment.ChequeClaim {
	return payment.ChequeClaim{Serial: serial, Amount: amount}
}
