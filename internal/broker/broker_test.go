package broker

import (
	"errors"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/gridsim"
	"gridbank/internal/rur"
)

// rates builds a CPU+wallclock rate card with the given G$ per CPU-hour.
func rates(provider string, gPerCPUHour int64) *rur.RateCard {
	return &rur.RateCard{
		Provider: provider,
		Currency: currency.GridDollar,
		Rates: map[rur.Item]currency.Rate{
			rur.ItemCPU:       currency.PerHour(gPerCPUHour * currency.Scale),
			rur.ItemWallClock: currency.ZeroRate,
			rur.ItemMemory:    currency.ZeroRate,
			rur.ItemStorage:   currency.ZeroRate,
			rur.ItemNetwork:   currency.ZeroRate,
			rur.ItemSoftware:  currency.PerHour(gPerCPUHour * currency.Scale),
		},
	}
}

// testbed: a cheap slow resource and an expensive fast one — the classic
// DBC trade-off.
func testbed() []Candidate {
	return []Candidate{
		{Provider: "CN=cheap", Nodes: 4, RatingMIPS: 400, Rates: rates("CN=cheap", 1)},
		{Provider: "CN=fast", Nodes: 4, RatingMIPS: 1600, Rates: rates("CN=fast", 8)},
	}
}

func bag(n int, lengthMI int64) []gridsim.Job {
	return gridsim.Bag(gridsim.BagOptions{
		Owner: "CN=alice", N: n, MeanLengthMI: lengthMI, Seed: 7,
	})
}

func uniformBag(n int, lengthMI int64) []gridsim.Job {
	jobs := make([]gridsim.Job, n)
	for i := range jobs {
		jobs[i] = gridsim.Job{ID: jobID(i), Owner: "CN=alice", LengthMI: lengthMI}
	}
	return jobs
}

func jobID(i int) string { return string(rune('a'+i%26)) + "-job" }

func TestEstimateUsageAndCost(t *testing.T) {
	job := &gridsim.Job{ID: "j", Owner: "CN=a", LengthMI: 4000, MemoryMB: 100, InputMB: 5, OutputMB: 5, SoftwareFraction: 0.25}
	rec := EstimateUsage(job, 400) // 10 seconds
	if rec.Quantity(rur.ItemWallClock) != 10 {
		t.Errorf("wall = %d", rec.Quantity(rur.ItemWallClock))
	}
	if rec.Quantity(rur.ItemCPU) != 8 || rec.Quantity(rur.ItemSoftware) != 2 {
		t.Errorf("cpu split = %d/%d", rec.Quantity(rur.ItemCPU), rec.Quantity(rur.ItemSoftware))
	}
	if rec.Quantity(rur.ItemMemory) != 1000 || rec.Quantity(rur.ItemNetwork) != 10 {
		t.Errorf("mem/net = %d/%d", rec.Quantity(rur.ItemMemory), rec.Quantity(rur.ItemNetwork))
	}
	c := &Candidate{Provider: "CN=p", Nodes: 1, RatingMIPS: 400, Rates: rates("CN=p", 3600)}
	cost, err := EstimateCost(job, c)
	if err != nil {
		t.Fatal(err)
	}
	// 10 CPU-seconds at 3600 G$/h = 10 G$ (cpu+software combined).
	if cost != currency.FromG(10) {
		t.Errorf("cost = %s", cost)
	}
	// Sub-second jobs round up to one second.
	tiny := &gridsim.Job{ID: "t", Owner: "CN=a", LengthMI: 1}
	if rec := EstimateUsage(tiny, 1000); rec.Quantity(rur.ItemWallClock) != 1 {
		t.Error("sub-second estimate should clamp to 1s")
	}
}

func TestCostOptimalPrefersCheap(t *testing.T) {
	// 8 jobs × 4000 MI. Cheap: 10s each, 4 nodes → 2 waves → 20s
	// makespan. Deadline 60s is generous, so everything lands cheap.
	plan, err := Schedule(uniformBag(8, 4000), testbed(), QoS{Deadline: 60 * time.Second, Budget: currency.FromG(1000)}, CostOptimal)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Provider != "CN=cheap" {
			t.Fatalf("cost-opt used %s", a.Provider)
		}
	}
	if plan.Makespan != 20*time.Second {
		t.Errorf("makespan = %v", plan.Makespan)
	}
}

func TestCostOptimalSpillsToFastUnderTightDeadline(t *testing.T) {
	// Same bag, deadline 10s: cheap can only run one 10s wave (4 jobs);
	// the rest must go to the fast (2.5s) resource.
	plan, err := Schedule(uniformBag(8, 4000), testbed(), QoS{Deadline: 10 * time.Second, Budget: currency.FromG(1000)}, CostOptimal)
	if err != nil {
		t.Fatal(err)
	}
	byP := plan.ByProvider()
	if len(byP["CN=cheap"]) != 4 || len(byP["CN=fast"]) != 4 {
		t.Fatalf("split = cheap:%d fast:%d", len(byP["CN=cheap"]), len(byP["CN=fast"]))
	}
	if plan.Makespan > 10*time.Second {
		t.Errorf("makespan = %v", plan.Makespan)
	}
}

func TestDeadlineInfeasible(t *testing.T) {
	// 2.5s is the fastest possible single job; 1s deadline is impossible.
	_, err := Schedule(uniformBag(1, 4000), testbed(), QoS{Deadline: time.Second, Budget: currency.FromG(1000)}, CostOptimal)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v", err)
	}
}

func TestTimeOptimalPrefersFastWithinBudget(t *testing.T) {
	// Large budget: everything goes to the fast resource.
	plan, err := Schedule(uniformBag(8, 4000), testbed(), QoS{Deadline: time.Hour, Budget: currency.FromG(1000)}, TimeOptimal)
	if err != nil {
		t.Fatal(err)
	}
	byP := plan.ByProvider()
	if len(byP["CN=fast"]) != 8 {
		t.Fatalf("time-opt split = %v", planSummary(plan))
	}
	if plan.Makespan != 5*time.Second { // two 2.5s waves
		t.Errorf("makespan = %v", plan.Makespan)
	}
}

func TestTimeOptimalFallsBackUnderBudgetPressure(t *testing.T) {
	// Fast costs 8 G$/CPU-h; a 4000MI job = 2.5s ≈ 0.00556 G$ fast,
	// 10s at 1 G$/h ≈ 0.00278 cheap. Budget enough for ~4 fast jobs
	// forces the remainder cheap.
	jobs := uniformBag(8, 4000)
	tb := testbed()
	fastCost, _ := EstimateCost(&jobs[0], &tb[1])
	cheapCost, _ := EstimateCost(&jobs[0], &tb[0])
	// Budget covers 7 fast jobs plus 1 cheap job — strictly less than
	// the all-fast plan, so at least one job must fall back to the
	// cheap resource.
	budget, _ := fastCost.MulInt(7)
	budget = budget.MustAdd(cheapCost)
	plan, err := Schedule(jobs, tb, QoS{Deadline: time.Hour, Budget: budget}, TimeOptimal)
	if err != nil {
		t.Fatal(err)
	}
	byP := plan.ByProvider()
	if len(byP["CN=cheap"]) == 0 {
		t.Fatalf("no fallback to cheap: %v", planSummary(plan))
	}
	if len(byP["CN=fast"]) == 0 {
		t.Fatalf("budget headroom unused: %v", planSummary(plan))
	}
	if plan.TotalCost.Cmp(budget) > 0 {
		t.Errorf("cost %s > budget %s", plan.TotalCost, budget)
	}
	// The budget-constrained makespan is necessarily no better than the
	// unconstrained (all-fast) one.
	unconstrained, err := Schedule(jobs, tb, QoS{Deadline: time.Hour, Budget: currency.FromG(1000)}, TimeOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Makespan < unconstrained.Makespan {
		t.Errorf("constrained makespan %v beat unconstrained %v", plan.Makespan, unconstrained.Makespan)
	}
}

func TestBudgetInfeasible(t *testing.T) {
	_, err := Schedule(uniformBag(4, 4000), testbed(), QoS{Deadline: time.Hour, Budget: currency.FromMicro(1)}, TimeOptimal)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v", err)
	}
	// Cost strategies also refuse when even the cheapest plan exceeds
	// budget.
	_, err = Schedule(uniformBag(4, 4000), testbed(), QoS{Deadline: time.Hour, Budget: currency.FromMicro(1)}, CostOptimal)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("cost-opt err = %v", err)
	}
}

func TestCostTimeBreaksTiesTowardSpeed(t *testing.T) {
	// Two resources with identical prices but different speeds: cost-time
	// must prefer the faster one; plain cost-opt is indifferent (stable
	// order keeps the first).
	cands := []Candidate{
		{Provider: "CN=slow", Nodes: 2, RatingMIPS: 400, Rates: rates("CN=slow", 2)},
		{Provider: "CN=quick", Nodes: 2, RatingMIPS: 1600, Rates: rates("CN=quick", 2)},
	}
	// NOTE: identical G$/CPU-hour means the *slow* resource costs MORE
	// per job (more CPU-seconds), so to make a true cost tie, price the
	// quick one 4× per hour.
	cands[1].Rates = rates("CN=quick", 8)
	plan, err := Schedule(uniformBag(2, 4000), cands, QoS{Deadline: time.Hour, Budget: currency.FromG(100)}, CostTime)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Provider != "CN=quick" {
			t.Fatalf("cost-time chose %s (plan %v)", a.Provider, planSummary(plan))
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := Schedule(bag(1, 100), nil, QoS{Deadline: time.Hour, Budget: currency.FromG(1)}, CostOptimal); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("no candidates err = %v", err)
	}
	if _, err := Schedule(bag(1, 100), testbed(), QoS{}, CostOptimal); !errors.Is(err, ErrBadConstraint) {
		t.Errorf("no QoS err = %v", err)
	}
	badCand := []Candidate{{Provider: "", Nodes: 1, RatingMIPS: 1, Rates: rates("x", 1)}}
	if _, err := Schedule(bag(1, 100), badCand, QoS{Deadline: time.Hour, Budget: currency.FromG(1)}, CostOptimal); err == nil {
		t.Error("bad candidate accepted")
	}
	noRates := []Candidate{{Provider: "CN=x", Nodes: 1, RatingMIPS: 100}}
	if _, err := Schedule(bag(1, 100), noRates, QoS{Deadline: time.Hour, Budget: currency.FromG(1)}, CostOptimal); err == nil {
		t.Error("rateless candidate accepted")
	}
	badJob := []gridsim.Job{{ID: "", Owner: "CN=a", LengthMI: 1}}
	if _, err := Schedule(badJob, testbed(), QoS{Deadline: time.Hour, Budget: currency.FromG(1)}, CostOptimal); err == nil {
		t.Error("bad job accepted")
	}
}

func TestPlanAccessors(t *testing.T) {
	plan, err := Schedule(uniformBag(4, 4000), testbed(), QoS{Deadline: time.Hour, Budget: currency.FromG(100)}, CostOptimal)
	if err != nil {
		t.Fatal(err)
	}
	var total currency.Amount
	for provider, as := range plan.ByProvider() {
		c := plan.CostOf(provider)
		var sum currency.Amount
		for _, a := range as {
			sum = sum.MustAdd(a.EstCost)
		}
		if c != sum {
			t.Errorf("CostOf(%s) = %s, want %s", provider, c, sum)
		}
		total = total.MustAdd(sum)
	}
	if total != plan.TotalCost {
		t.Errorf("total mismatch: %s vs %s", total, plan.TotalCost)
	}
}

// TestPlanExecutesOnSimulatorWithinEstimates closes the loop: a plan's
// estimated makespan is achieved when the jobs actually run on gridsim.
func TestPlanExecutesOnSimulatorWithinEstimates(t *testing.T) {
	jobs := uniformBag(8, 4000)
	plan, err := Schedule(jobs, testbed(), QoS{Deadline: 10 * time.Second, Budget: currency.FromG(100)}, CostOptimal)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	sim := gridsim.New(start)
	for _, c := range testbed() {
		if _, err := sim.AddResource(gridsim.ResourceConfig{
			Provider: c.Provider, Nodes: c.Nodes, RatingMIPS: c.RatingMIPS,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var latest time.Time
	for _, a := range plan.Assignments {
		r, ok := sim.Resource(a.Provider)
		if !ok {
			t.Fatal("missing resource")
		}
		if err := r.Submit(a.Job, func(res gridsim.JobResult) {
			if res.End.After(latest) {
				latest = res.End
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	actual := latest.Sub(start)
	if actual > plan.Makespan {
		t.Fatalf("actual makespan %v exceeds planned %v", actual, plan.Makespan)
	}
}

func planSummary(p *Plan) map[string]int {
	out := map[string]int{}
	for _, a := range p.Assignments {
		out[a.Provider]++
	}
	return out
}
