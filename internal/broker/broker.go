// Package broker implements the Grid Resource Broker (GRB) of Figure 1 —
// in the paper's prototype, the Nimrod-G resource broker. The GRB accepts
// "application processing requirements along with QoS requirements (e.g.,
// deadline and budget)", discovers candidate GSPs, uses each GSP's
// negotiated rates to estimate cost, and schedules jobs with Nimrod-G's
// deadline-and-budget-constrained (DBC) algorithms: cost-optimal,
// time-optimal, and cost-time.
//
// Scheduling here is planning: the broker builds a Plan (job→resource
// assignments with estimated start/finish/cost) with list scheduling over
// each resource's node slots. Execution against the simulator and payment
// through GridBank are composed by the caller (see examples and the
// experiment harness), keeping the broker free of bank and simulator
// dependencies.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/gridsim"
	"gridbank/internal/rur"
)

// Strategy selects a DBC scheduling algorithm.
type Strategy string

// The Nimrod-G DBC strategies.
const (
	// CostOptimal minimizes spend subject to the deadline.
	CostOptimal Strategy = "cost"
	// TimeOptimal minimizes completion time subject to the budget.
	TimeOptimal Strategy = "time"
	// CostTime minimizes spend subject to the deadline, breaking cost
	// ties toward faster completion.
	CostTime Strategy = "cost-time"
)

// Errors.
var (
	ErrNoCandidates  = errors.New("broker: no candidate resources")
	ErrDeadline      = errors.New("broker: cannot meet deadline")
	ErrBudget        = errors.New("broker: cannot meet budget")
	ErrBadConstraint = errors.New("broker: malformed QoS constraints")
)

// Candidate is a schedulable resource: its capacity plus the rate card
// the broker negotiated with its Grid Trade Server.
type Candidate struct {
	Provider   string
	Nodes      int
	RatingMIPS int
	// Rates is the negotiated (or posted) rate card used for cost
	// estimation and later for GBCM pricing — the same record, so
	// estimates and charges agree.
	Rates *rur.RateCard
	// AgreementID ties the plan back to the GTS agreement.
	AgreementID string
}

func (c *Candidate) validate() error {
	if c.Provider == "" || c.Nodes <= 0 || c.RatingMIPS <= 0 {
		return fmt.Errorf("broker: bad candidate %+v", c)
	}
	if c.Rates == nil {
		return fmt.Errorf("broker: candidate %s has no rates", c.Provider)
	}
	return c.Rates.Validate()
}

// QoS carries the user's constraints (§2: "deadline and budget").
type QoS struct {
	// Deadline is the latest acceptable completion, as a duration from
	// the schedule start.
	Deadline time.Duration
	// Budget bounds total spend across all jobs.
	Budget currency.Amount
}

// Assignment is one planned job placement.
type Assignment struct {
	Job       gridsim.Job
	Provider  string
	EstStart  time.Duration // offset from schedule start
	EstFinish time.Duration
	EstCost   currency.Amount
}

// Plan is a complete schedule.
type Plan struct {
	Strategy    Strategy
	Assignments []Assignment
	// Makespan is the latest estimated finish.
	Makespan time.Duration
	// TotalCost is the summed estimated cost.
	TotalCost currency.Amount
}

// EstimateUsage predicts the RUR a job will generate on a resource —
// the same conversion the meter performs, applied to predicted raw usage.
// Broker estimates and GBCM charges therefore use one formula, so a plan
// that fits the budget yields charges that fit the budget (modulo
// workload jitter).
func EstimateUsage(job *gridsim.Job, ratingMIPS int) *rur.Record {
	sec := job.LengthMI / int64(ratingMIPS)
	if sec < 1 {
		sec = 1
	}
	sysSec := int64(float64(sec) * job.SoftwareFraction)
	rec := &rur.Record{
		User: rur.UserDetails{CertificateName: job.Owner},
		Job:  rur.JobDetails{JobID: job.ID, Application: job.Application},
	}
	rec.SetQuantity(rur.ItemCPU, sec-sysSec)
	rec.SetQuantity(rur.ItemWallClock, sec)
	rec.SetQuantity(rur.ItemMemory, job.MemoryMB*sec)
	rec.SetQuantity(rur.ItemStorage, job.StorageMB*sec)
	rec.SetQuantity(rur.ItemNetwork, job.InputMB+job.OutputMB)
	rec.SetQuantity(rur.ItemSoftware, sysSec)
	return rec
}

// EstimateCost prices a job on a candidate.
func EstimateCost(job *gridsim.Job, c *Candidate) (currency.Amount, error) {
	rec := EstimateUsage(job, c.RatingMIPS)
	// Pricing requires identified parties; fill placeholders when the
	// job/candidate omit them (estimation only).
	if rec.User.CertificateName == "" {
		rec.User.CertificateName = "CN=estimate"
	}
	rec.Resource.CertificateName = c.Provider
	st, err := rur.Price(rec, c.Rates)
	if err != nil {
		return 0, err
	}
	return st.Total, nil
}

// execTime is the job's run time on the candidate.
func execTime(job *gridsim.Job, c *Candidate) time.Duration {
	sec := float64(job.LengthMI) / float64(c.RatingMIPS)
	d := time.Duration(sec * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// resourceState tracks per-node availability during list scheduling.
type resourceState struct {
	cand  *Candidate
	nodes []time.Duration // next-free time per node, as offset
}

func (rs *resourceState) earliestNode() (idx int, free time.Duration) {
	idx = 0
	free = rs.nodes[0]
	for i, f := range rs.nodes[1:] {
		if f < free {
			idx, free = i+1, f
		}
	}
	return idx, free
}

// Schedule plans a bag of jobs over the candidates under the given QoS
// with the chosen strategy.
func Schedule(jobs []gridsim.Job, candidates []Candidate, qos QoS, strategy Strategy) (*Plan, error) {
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	if qos.Deadline <= 0 || !qos.Budget.IsPositive() {
		return nil, fmt.Errorf("%w: deadline %v, budget %s", ErrBadConstraint, qos.Deadline, qos.Budget)
	}
	for i := range candidates {
		if err := candidates[i].validate(); err != nil {
			return nil, err
		}
	}
	states := make([]*resourceState, len(candidates))
	for i := range candidates {
		states[i] = &resourceState{cand: &candidates[i], nodes: make([]time.Duration, candidates[i].Nodes)}
	}
	// Schedule longest jobs first: classic list-scheduling heuristic,
	// reduces makespan fragmentation.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].LengthMI > jobs[order[b]].LengthMI })

	plan := &Plan{Strategy: strategy}
	spent := currency.Amount(0)
	for _, ji := range order {
		job := jobs[ji]
		if err := job.Validate(); err != nil {
			return nil, err
		}
		type option struct {
			state  *resourceState
			node   int
			start  time.Duration
			finish time.Duration
			cost   currency.Amount
		}
		var opts []option
		for _, rs := range states {
			node, free := rs.earliestNode()
			dur := execTime(&job, rs.cand)
			cost, err := EstimateCost(&job, rs.cand)
			if err != nil {
				return nil, err
			}
			opts = append(opts, option{state: rs, node: node, start: free, finish: free + dur, cost: cost})
		}
		// Filter by the binding constraint, then order by the objective.
		var feasible []option
		for _, o := range opts {
			within, err := spent.Add(o.cost)
			if err != nil {
				return nil, err
			}
			switch strategy {
			case TimeOptimal:
				if within.Cmp(qos.Budget) <= 0 {
					feasible = append(feasible, o)
				}
			default: // CostOptimal, CostTime: deadline is the constraint
				if o.finish <= qos.Deadline {
					feasible = append(feasible, o)
				}
			}
		}
		if len(feasible) == 0 {
			if strategy == TimeOptimal {
				return nil, fmt.Errorf("%w: job %s (spent %s of %s)", ErrBudget, job.ID, spent, qos.Budget)
			}
			return nil, fmt.Errorf("%w: job %s", ErrDeadline, job.ID)
		}
		sort.SliceStable(feasible, func(a, b int) bool {
			fa, fb := feasible[a], feasible[b]
			switch strategy {
			case TimeOptimal:
				if fa.finish != fb.finish {
					return fa.finish < fb.finish
				}
				return fa.cost.Cmp(fb.cost) < 0
			case CostTime:
				if c := fa.cost.Cmp(fb.cost); c != 0 {
					return c < 0
				}
				return fa.finish < fb.finish
			default: // CostOptimal
				if c := fa.cost.Cmp(fb.cost); c != 0 {
					return c < 0
				}
				return fa.start < fb.start
			}
		})
		best := feasible[0]
		best.state.nodes[best.node] = best.finish
		spent = spent.MustAdd(best.cost)
		plan.Assignments = append(plan.Assignments, Assignment{
			Job:       job,
			Provider:  best.state.cand.Provider,
			EstStart:  best.start,
			EstFinish: best.finish,
			EstCost:   best.cost,
		})
		if best.finish > plan.Makespan {
			plan.Makespan = best.finish
		}
	}
	plan.TotalCost = spent
	// Post-check the non-binding constraint.
	switch strategy {
	case TimeOptimal:
		if plan.Makespan > qos.Deadline {
			return nil, fmt.Errorf("%w: makespan %v > %v", ErrDeadline, plan.Makespan, qos.Deadline)
		}
	default:
		if plan.TotalCost.Cmp(qos.Budget) > 0 {
			return nil, fmt.Errorf("%w: cost %s > %s", ErrBudget, plan.TotalCost, qos.Budget)
		}
	}
	return plan, nil
}

// ByProvider groups a plan's jobs per provider, in assignment order.
func (p *Plan) ByProvider() map[string][]Assignment {
	out := make(map[string][]Assignment)
	for _, a := range p.Assignments {
		out[a.Provider] = append(out[a.Provider], a)
	}
	return out
}

// CostOf sums the estimated cost of the assignments on one provider.
func (p *Plan) CostOf(provider string) currency.Amount {
	var sum currency.Amount
	for _, a := range p.Assignments {
		if a.Provider == provider {
			sum = sum.MustAdd(a.EstCost)
		}
	}
	return sum
}
