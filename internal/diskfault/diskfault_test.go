package diskfault

import (
	"errors"
	"io"
	"os"
	"syscall"
	"testing"
)

func TestWriteSyncCrashDurability(t *testing.T) {
	d := New(Config{Seed: 1})
	f, err := d.OpenFile("/data/ledger.wal", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("synced;"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("unsynced;"))
	d.Crash()
	if got := string(d.Bytes("/data/ledger.wal")); got != "synced;" {
		t.Fatalf("after crash: %q, want only the synced prefix", got)
	}
	// The old handle is stale; a reopened one reads the survivor.
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("stale handle should fail after crash")
	}
	g, err := d.OpenFile("/data/ledger.wal", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(g)
	if string(b) != "synced;" {
		t.Fatalf("reopened read: %q", b)
	}
}

func TestFsyncgateLostPages(t *testing.T) {
	d := New(Config{Seed: 1})
	d.AddRule(Rule{PathSuffix: ".wal", Op: OpSync, Nth: 2, Err: ErrIO})
	f, _ := d.OpenFile("/d/a.wal", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	f.Write([]byte("first;"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("doomed;"))
	if err := f.Sync(); err == nil {
		t.Fatal("second sync should fail")
	}
	// The fsyncgate trap: pages dropped but marked clean — the retry
	// "succeeds", reads still see the bytes...
	if err := f.Sync(); err != nil {
		t.Fatalf("retried sync should falsely succeed: %v", err)
	}
	if got := string(d.Bytes("/d/a.wal")); got != "first;doomed;" {
		t.Fatalf("visible: %q", got)
	}
	// ...but they were never durable.
	d.Crash()
	if got := string(d.Bytes("/d/a.wal")); got != "first;" {
		t.Fatalf("after crash: %q, want lost pages gone", got)
	}
}

func TestRenameVolatileUntilSyncDir(t *testing.T) {
	d := New(Config{Seed: 1})
	d.SetBytes("/d/old.ckpt", []byte("previous"))
	f, _ := d.OpenFile("/d/new.tmp", os.O_CREATE|os.O_WRONLY, 0o600)
	f.Write([]byte("fresh"))
	f.Sync()
	f.Close()
	if err := d.Rename("/d/new.tmp", "/d/old.ckpt"); err != nil {
		t.Fatal(err)
	}
	if got := string(d.Bytes("/d/old.ckpt")); got != "fresh" {
		t.Fatalf("rename not visible: %q", got)
	}
	// Crash before SyncDir: the rename is undone.
	d.Crash()
	if got := string(d.Bytes("/d/old.ckpt")); got != "previous" {
		t.Fatalf("rename survived crash without dir sync: %q", got)
	}
	if got := string(d.Bytes("/d/new.tmp")); got != "fresh" {
		t.Fatalf("tmp should be back: %q", got)
	}
	// Redo with the dir-fsync: now it sticks.
	if err := d.Rename("/d/new.tmp", "/d/old.ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := d.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got := string(d.Bytes("/d/old.ckpt")); got != "fresh" {
		t.Fatalf("dir-synced rename lost in crash: %q", got)
	}
	if d.Bytes("/d/new.tmp") != nil {
		t.Fatal("tmp should be gone after durable rename")
	}
}

func TestUnsyncedTruncateRevertsOnCrash(t *testing.T) {
	d := New(Config{Seed: 1})
	f, _ := d.OpenFile("/d/j.wal", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	f.Write([]byte("history"))
	f.Sync()
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got := string(d.Bytes("/d/j.wal")); got != "history" {
		t.Fatalf("unsynced truncate should revert: %q", got)
	}
}

func TestShortWriteAndENOSPC(t *testing.T) {
	d := New(Config{Seed: 1})
	d.AddRule(Rule{Op: OpWrite, Nth: 2, Err: ErrNoSpace, ShortBytes: 3})
	f, _ := d.OpenFile("/d/j.wal", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if n != 3 {
		t.Fatalf("short write landed %d bytes, want 3", n)
	}
	if got := string(d.Bytes("/d/j.wal")); got != "aaaabbb" {
		t.Fatalf("visible after short write: %q", got)
	}
}

func TestStickyRule(t *testing.T) {
	d := New(Config{Seed: 1})
	d.AddRule(Rule{Op: OpSync, Nth: 1, Err: ErrIO, Sticky: true})
	f, _ := d.OpenFile("/d/j.wal", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	for i := 0; i < 3; i++ {
		if err := f.Sync(); err == nil {
			t.Fatalf("sync %d: sticky rule should keep firing", i)
		}
	}
}

func TestCorruptFlipsDurableByte(t *testing.T) {
	d := New(Config{Seed: 1})
	d.SetBytes("/d/x.ckpt", []byte("abc"))
	if !d.Corrupt("/d/x.ckpt", 1, 0xFF) {
		t.Fatal("offset should exist")
	}
	if got := d.Bytes("/d/x.ckpt"); got[1] == 'b' {
		t.Fatal("visible byte not flipped")
	}
	d.Crash()
	if got := d.Bytes("/d/x.ckpt"); got[1] == 'b' {
		t.Fatal("durable byte not flipped")
	}
	if d.Corrupt("/d/x.ckpt", 99, 0xFF) {
		t.Fatal("out-of-range offset should report false")
	}
}

func TestSeededModeIsDeterministic(t *testing.T) {
	run := func(seed uint64) (string, int) {
		d := New(Config{Seed: seed, PWriteErr: 0.3, TornCrash: true})
		f, _ := d.OpenFile("/d/j.wal", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
		for i := 0; i < 20; i++ {
			f.Write([]byte("entry-payload;"))
			f.Sync()
		}
		f.Write([]byte("tail-never-synced"))
		d.Crash()
		return string(d.Bytes("/d/j.wal")), d.InjectedWriteErrs
	}
	a1, e1 := run(7)
	a2, e2 := run(7)
	if a1 != a2 || e1 != e2 {
		t.Fatalf("same seed diverged: %d/%d errs", e1, e2)
	}
	b1, f1 := run(8)
	if a1 == b1 && e1 == f1 {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}
