// Package diskfault is a deterministic fault-injecting filesystem — the
// disk-side twin of internal/netsim. It implements db.FS over an
// in-memory disk with an explicit durability model, so every durability
// seam in the storage layer (group-commit flush, checkpoint write, the
// publishing rename, dir-fsync, Compact, spool WALs) can be killed and
// corrupted reproducibly from a seed.
//
// # Durability model
//
// Every file carries two byte images: the visible content (what reads
// return — the page cache) and the durable content (what survives
// Crash). Write extends only the visible image; Sync promotes visible
// to durable. Crash reverts every file to its durable image, optionally
// retaining a seeded-random prefix of the unsynced suffix (a torn
// write).
//
// A failed Sync models the fsyncgate kernel behaviour: the dirty pages
// are dropped but marked clean, so the unsynced bytes stay visible —
// reads still return them, and a retried Sync "succeeds" — yet they
// can never become durable. Once a file's sync has failed, nothing
// written to it is ever promoted again; only fail-stop callers survive
// this, which is exactly the discipline the db layer must prove.
//
// Directory metadata follows the same rules: Rename and Remove are
// visible immediately but stay volatile until SyncDir on the parent
// directory; a Crash before the dir-sync undoes them. File creation is
// durable immediately (a simplification — the files the db layer
// creates are either swept or rewritten at boot, so staged creation
// would add model complexity without adding coverage).
//
// # Fault injection
//
// Faults fire from scripted Rules (match a path suffix + operation,
// trigger on the Nth call, optionally sticky) or probabilistically from
// seeded per-(path,op,call#) coin flips, netsim-style — the same seed
// always yields the same fault schedule. Post-crash bit-rot is applied
// explicitly with Corrupt.
package diskfault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"gridbank/internal/db"
)

// Op classifies the filesystem operation a Rule matches.
type Op string

const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpSyncDir  Op = "syncdir"
)

// ErrInjected tags every error the disk injects, so tests can tell an
// injected fault from a genuine model error (e.g. open after crash).
var ErrInjected = errors.New("diskfault: injected")

// ErrNoSpace is the injected disk-full error; errors.Is matches
// syscall.ENOSPC, like a real short write on a full volume.
var ErrNoSpace = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// ErrIO is the injected generic I/O error.
var ErrIO = fmt.Errorf("%w: %w", ErrInjected, syscall.EIO)

// Rule is a scripted fault: on the Nth matching call (1-based; 0 means
// every call), the operation fails with Err. ShortBytes>0 on a write
// rule makes the write land that many bytes before failing (a short
// write — the visible image keeps the prefix). Sticky rules keep firing
// on every later matching call once triggered.
type Rule struct {
	// PathSuffix matches operations whose cleaned path ends with it
	// (empty matches every path). For OpRename it matches the old path.
	PathSuffix string
	// Op is the operation class to fail.
	Op Op
	// Nth is the 1-based matching call to fail (0 = every call).
	Nth int
	// Err is returned to the caller. Required.
	Err error
	// ShortBytes, for OpWrite: bytes written before the error.
	ShortBytes int
	// Sticky keeps the rule firing on every matching call after Nth.
	Sticky bool

	seen  int
	fired bool
}

// Config seeds the probabilistic fault mode. All probabilities are per
// matching call, in [0,1]; zero disables that class. Scripted rules fire
// independently of Config.
type Config struct {
	// Seed drives every probabilistic decision and torn-write length.
	Seed uint64
	// PWriteErr is the chance a Write fails with ErrNoSpace (short
	// writes included: a seeded fraction of the buffer lands first).
	PWriteErr float64
	// PSyncErr is the chance a Sync fails with ErrIO.
	PSyncErr float64
	// PSyncDirErr is the chance a SyncDir fails with ErrIO.
	PSyncDirErr float64
	// TornCrash, when true, makes Crash retain a seeded-random prefix
	// of each file's unsynced suffix instead of dropping it whole.
	TornCrash bool
}

// Disk is the in-memory fault-injecting filesystem. It implements
// db.FS. All methods are safe for concurrent use.
type Disk struct {
	cfg Config

	mu      sync.Mutex
	files   map[string]*fileState
	pending []pendingOp // volatile metadata ops, oldest first
	rules   []*Rule
	calls   map[string]uint64 // per-(path,op) call counter for seeding
	crashes int
	clock   int64 // logical mod-time, bumped per mutation

	// Stats, for harness assertions and BENCH output.
	InjectedWriteErrs   int
	InjectedSyncErrs    int
	InjectedSyncDirErrs int
}

type fileState struct {
	visible  []byte
	durable  []byte
	syncDead bool // a Sync failed: nothing promotes ever again
	modTime  int64
	epoch    int // bumped on Crash; stale handles error out
}

// pendingOp records a not-yet-dir-synced rename or remove so Crash can
// undo it.
type pendingOp struct {
	dir string
	// rename: oldpath+newpath set, clobbered is newpath's prior state
	// (nil if none). remove: oldpath set, clobbered is the removed file.
	op        Op
	oldpath   string
	newpath   string
	moved     *fileState
	clobbered *fileState
}

// New returns an empty disk with the given config.
func New(cfg Config) *Disk {
	return &Disk{
		cfg:   cfg,
		files: make(map[string]*fileState),
		calls: make(map[string]uint64),
	}
}

// AddRule registers a scripted fault. Returns the disk for chaining.
func (d *Disk) AddRule(r Rule) *Disk {
	if r.Err == nil {
		panic("diskfault: Rule.Err is required")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rules = append(d.rules, &r)
	return d
}

// ClearRules drops all scripted rules (fired or not).
func (d *Disk) ClearRules() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rules = nil
}

// fault consults scripted rules then the seeded probabilistic mode.
// Caller holds d.mu. Returns the injected error (nil = no fault) and,
// for writes, how many bytes should land first.
func (d *Disk) fault(path string, op Op, p float64, perr error) (error, int) {
	for _, r := range d.rules {
		if r.Op != op {
			continue
		}
		if r.PathSuffix != "" && !strings.HasSuffix(path, r.PathSuffix) {
			continue
		}
		r.seen++
		if r.fired && r.Sticky {
			return r.Err, r.ShortBytes
		}
		if r.Nth == 0 || r.seen == r.Nth {
			r.fired = true
			return r.Err, r.ShortBytes
		}
	}
	if p > 0 {
		key := path + "|" + string(op)
		d.calls[key]++
		u := splitmix64(d.cfg.Seed ^ hash64(key) ^ d.calls[key]*0x9e3779b97f4a7c15)
		if float64(u>>11)/(1<<53) < p {
			short := 0
			if op == OpWrite {
				short = int(splitmix64(u) % 64)
			}
			return perr, short
		}
	}
	return nil, 0
}

// OpenFile implements db.FS.
func (d *Disk) OpenFile(name string, flag int, perm os.FileMode) (db.File, error) {
	name = filepath.Clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err, _ := d.fault(name, OpOpen, 0, nil); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f := d.files[name]
	if f == nil {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		f = &fileState{modTime: d.tick()}
		// Creation is durable immediately (see package doc).
		d.files[name] = f
	} else if flag&os.O_TRUNC != 0 {
		f.visible = nil
		f.modTime = d.tick()
	}
	return &handle{d: d, f: f, name: name, epoch: f.epoch, append_: flag&os.O_APPEND != 0}, nil
}

// Rename implements db.FS: visible immediately, volatile until SyncDir.
func (d *Disk) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err, _ := d.fault(oldpath, OpRename, 0, nil); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	f := d.files[oldpath]
	if f == nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	d.pending = append(d.pending, pendingOp{
		dir: filepath.Dir(newpath), op: OpRename,
		oldpath: oldpath, newpath: newpath,
		moved: f, clobbered: d.files[newpath],
	})
	delete(d.files, oldpath)
	d.files[newpath] = f
	f.modTime = d.tick()
	return nil
}

// Remove implements db.FS: visible immediately, volatile until SyncDir.
func (d *Disk) Remove(name string) error {
	name = filepath.Clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err, _ := d.fault(name, OpRemove, 0, nil); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	f := d.files[name]
	if f == nil {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	d.pending = append(d.pending, pendingOp{
		dir: filepath.Dir(name), op: OpRemove, oldpath: name, clobbered: f,
	})
	delete(d.files, name)
	return nil
}

// Stat implements db.FS.
func (d *Disk) Stat(name string) (os.FileInfo, error) {
	name = filepath.Clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return fileInfo{name: filepath.Base(name), size: int64(len(f.visible)), mod: f.modTime}, nil
}

// ReadDir implements db.FS.
func (d *Disk) ReadDir(name string) ([]os.DirEntry, error) {
	name = filepath.Clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []os.DirEntry
	for p, f := range d.files {
		if filepath.Dir(p) == name {
			out = append(out, dirEntry{fileInfo{name: filepath.Base(p), size: int64(len(f.visible)), mod: f.modTime}})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// SyncDir implements db.FS: makes pending renames/removes in dir
// durable. On injected failure the ops stay volatile — a Crash still
// undoes them, exactly like a real dir-fsync failure.
func (d *Disk) SyncDir(dir string) error {
	dir = filepath.Clean(dir)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err, _ := d.fault(dir, OpSyncDir, d.cfg.PSyncDirErr, ErrIO); err != nil {
		d.InjectedSyncDirErrs++
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	kept := d.pending[:0]
	for _, op := range d.pending {
		if op.dir != dir {
			kept = append(kept, op)
		}
	}
	d.pending = kept
	return nil
}

// Crash simulates power loss: every file reverts to its durable image
// (with TornCrash, plus a seeded-random prefix of the unsynced suffix),
// volatile metadata ops are undone newest-first, and every open handle
// goes stale. The disk itself stays usable — reopen files to "reboot".
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashes++
	for i := len(d.pending) - 1; i >= 0; i-- {
		op := d.pending[i]
		switch op.op {
		case OpRename:
			if d.files[op.newpath] == op.moved {
				delete(d.files, op.newpath)
			}
			if op.clobbered != nil {
				d.files[op.newpath] = op.clobbered
			}
			d.files[op.oldpath] = op.moved
		case OpRemove:
			d.files[op.oldpath] = op.clobbered
		}
	}
	d.pending = nil
	for path, f := range d.files {
		// Base state is the durable image (this also undoes an unsynced
		// truncate). With TornCrash, a seeded-random prefix of the
		// unsynced appended suffix survives — a torn write.
		vis := append([]byte(nil), f.durable...)
		if d.cfg.TornCrash && len(f.visible) > len(f.durable) {
			u := splitmix64(d.cfg.Seed ^ hash64(path) ^ uint64(d.crashes)*0x2545f4914f6cdd1d)
			extra := int(u % uint64(len(f.visible)-len(f.durable)+1))
			vis = append(vis, f.visible[len(f.durable):len(f.durable)+extra]...)
		}
		f.visible = vis
		f.syncDead = false
		f.epoch++
	}
}

// Corrupt XORs the byte at offset in path's images (visible and
// durable) with xor — at-rest bit rot. It reports whether the offset
// existed in the durable image.
func (d *Disk) Corrupt(path string, offset int64, xor byte) bool {
	path = filepath.Clean(path)
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[path]
	if f == nil {
		return false
	}
	if offset >= 0 && offset < int64(len(f.visible)) {
		f.visible[offset] ^= xor
	}
	if offset < 0 || offset >= int64(len(f.durable)) {
		return false
	}
	f.durable[offset] ^= xor
	return true
}

// Bytes returns a copy of path's visible content (nil if absent).
func (d *Disk) Bytes(path string) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[filepath.Clean(path)]
	if f == nil {
		return nil
	}
	return append([]byte(nil), f.visible...)
}

// Durable returns a copy of path's durable content (nil if absent).
func (d *Disk) Durable(path string) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[filepath.Clean(path)]
	if f == nil {
		return nil
	}
	return append([]byte(nil), f.durable...)
}

// SetBytes installs content for path, visible and durable — for
// seeding fixtures (e.g. a legacy checkpoint image) without going
// through the write path.
func (d *Disk) SetBytes(path string, b []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[filepath.Clean(path)] = &fileState{
		visible: append([]byte(nil), b...),
		durable: append([]byte(nil), b...),
		modTime: d.tick(),
	}
}

// Paths lists every existing file path, sorted.
func (d *Disk) Paths() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Crashes reports how many times Crash has been called.
func (d *Disk) Crashes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashes
}

func (d *Disk) tick() int64 {
	d.clock++
	return d.clock
}

// handle is an open-file view. It goes stale when the disk crashes.
type handle struct {
	d       *Disk
	f       *fileState
	name    string
	epoch   int
	append_ bool
	pos     int64
	closed  bool
}

var errStaleHandle = errors.New("diskfault: file handle lost in crash")

// check validates the handle under d.mu.
func (h *handle) check() error {
	if h.closed {
		return os.ErrClosed
	}
	if h.epoch != h.f.epoch {
		return errStaleHandle
	}
	return nil
}

func (h *handle) Write(p []byte) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	injected, short := h.d.fault(h.name, OpWrite, h.d.cfg.PWriteErr, ErrNoSpace)
	n := len(p)
	if injected != nil {
		h.d.InjectedWriteErrs++
		n = short
		if n > len(p) {
			n = len(p)
		}
	}
	if h.append_ {
		h.pos = int64(len(h.f.visible))
	}
	end := h.pos + int64(n)
	for int64(len(h.f.visible)) < end {
		h.f.visible = append(h.f.visible, 0)
	}
	copy(h.f.visible[h.pos:end], p[:n])
	h.pos = end
	h.f.modTime = h.d.tick()
	if injected != nil {
		return n, injected
	}
	return n, nil
}

func (h *handle) Read(p []byte) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if h.pos >= int64(len(h.f.visible)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.visible[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if off >= int64(len(h.f.visible)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.visible[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *handle) Seek(offset int64, whence int) (int64, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		h.pos = offset
	case io.SeekCurrent:
		h.pos += offset
	case io.SeekEnd:
		h.pos = int64(len(h.f.visible)) + offset
	}
	if h.pos < 0 {
		return 0, errors.New("diskfault: negative seek")
	}
	return h.pos, nil
}

// Sync promotes the visible image to durable — unless a previous Sync
// on this file failed, in which case it "succeeds" without promoting
// anything (the fsyncgate trap: the pages were dropped and marked
// clean, so a retried fsync has nothing to write).
func (h *handle) Sync() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if err, _ := h.d.fault(h.name, OpSync, h.d.cfg.PSyncErr, ErrIO); err != nil {
		h.d.InjectedSyncErrs++
		h.f.syncDead = true
		return &os.PathError{Op: "sync", Path: h.name, Err: err}
	}
	if h.f.syncDead {
		return nil // falsely clean: nothing promotes
	}
	h.f.durable = append(h.f.durable[:0], h.f.visible...)
	return nil
}

func (h *handle) Truncate(size int64) error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if err, _ := h.d.fault(h.name, OpTruncate, 0, nil); err != nil {
		return &os.PathError{Op: "truncate", Path: h.name, Err: err}
	}
	if size < 0 {
		return errors.New("diskfault: negative truncate")
	}
	for int64(len(h.f.visible)) < size {
		h.f.visible = append(h.f.visible, 0)
	}
	h.f.visible = h.f.visible[:size]
	// Truncation is inode metadata: like writes it becomes durable at
	// the next successful Sync, not before.
	h.f.modTime = h.d.tick()
	return nil
}

func (h *handle) Stat() (os.FileInfo, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if err := h.check(); err != nil {
		return nil, err
	}
	return fileInfo{name: filepath.Base(h.name), size: int64(len(h.f.visible)), mod: h.f.modTime}, nil
}

func (h *handle) Close() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

// fileInfo is the os.FileInfo for in-memory files. Mod times are a
// logical clock anchored at a fixed epoch, keeping runs deterministic.
type fileInfo struct {
	name string
	size int64
	mod  int64
}

func (fi fileInfo) Name() string      { return fi.name }
func (fi fileInfo) Size() int64       { return fi.size }
func (fi fileInfo) Mode() fs.FileMode { return 0o600 }
func (fi fileInfo) ModTime() time.Time {
	return time.Unix(1700000000, 0).Add(time.Duration(fi.mod) * time.Millisecond)
}
func (fi fileInfo) IsDir() bool      { return false }
func (fi fileInfo) Sys() interface{} { return nil }

type dirEntry struct{ fi fileInfo }

func (e dirEntry) Name() string               { return e.fi.name }
func (e dirEntry) IsDir() bool                { return false }
func (e dirEntry) Type() fs.FileMode          { return 0 }
func (e dirEntry) Info() (fs.FileInfo, error) { return e.fi, nil }

// splitmix64 is the same mixing function netsim uses for deterministic
// per-stream randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash64 is FNV-1a, for folding paths into the seed stream.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
