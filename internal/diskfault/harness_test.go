package diskfault_test

// The storage-fault harness: a sharded ledger + usage pipeline +
// micropay pipeline deployment run entirely over a diskfault Disk, so
// every durability seam — shard WAL flushes, spool WALs, checkpoint
// writes, the publishing rename, dir-fsync, Compact — can be killed or
// corrupted deterministically, the whole node crashed, and the rebooted
// deployment checked for the three invariants that define storage
// fault tolerance here:
//
//  1. conservation — not a micro-G$ created or destroyed, ever;
//  2. exactly-once — every charge settles once and every chain word
//     credits once, across any number of crashes and resubmissions;
//  3. typed refusal — every error a fault surfaces is either the
//     injected fault itself (maintenance paths) or ErrStorageFailed
//     (commit paths); silence is never an acceptable outcome.
//
// Everything runs from seeds: a failing schedule replays byte-for-byte
// from the seed named in the failure message.

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/diskfault"
	"gridbank/internal/micropay"
	"gridbank/internal/payment"
	"gridbank/internal/rur"
	"gridbank/internal/shard"
	"gridbank/internal/usage"
	"gridbank/internal/wire"
)

var harnessEpoch = time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)

const nShards = 2

func shardWal(i int) string  { return fmt.Sprintf("/data/ledger-%d.wal", i) }
func shardCkpt(i int) string { return fmt.Sprintf("/data/ledger-%d.ckpt", i) }

// world is one simulated gridbankd node: sharded ledger, usage and
// micropay pipelines, every store on the same fault-injected disk,
// using the exact file layout gridbankd's data dir uses.
type world struct {
	t *testing.T
	d *diskfault.Disk

	stores   []*db.Store
	journals []db.Journal
	led      *shard.Ledger

	spoolU, spoolM   *db.Store
	spoolUJ, spoolMJ db.Journal
	upipe            *usage.Pipeline
	red              *micropay.Redeemer
	mpipe            *micropay.Pipeline

	drawer  accounts.ID
	xferTo  accounts.ID // cross-shard from drawer: transfers exercise 2PC
	usageTo accounts.ID
	payee   accounts.ID
	total   currency.Amount
}

func nowFixed() time.Time { return harnessEpoch }

// boot (re)builds the whole node from the disk: journals reopen (torn
// tails settle), checkpoints verify and fall back, shard.New runs 2PC
// recovery, the pipelines requeue whatever their spools held.
func (w *world) boot() error {
	w.stores = make([]*db.Store, nShards)
	w.journals = make([]db.Journal, nShards)
	for i := 0; i < nShards; i++ {
		j, err := db.OpenFileJournalCodecFS(w.d, shardWal(i), true, wire.CodecJSON)
		if err != nil {
			return fmt.Errorf("shard %d journal: %w", i, err)
		}
		st, _, err := db.OpenWithCheckpointFS(w.d, shardCkpt(i), j)
		if err != nil {
			return fmt.Errorf("shard %d store: %w", i, err)
		}
		w.journals[i], w.stores[i] = j, st
	}
	led, err := shard.New(w.stores, shard.Config{Now: nowFixed})
	if err != nil {
		return err
	}
	w.led = led

	openSpool := func(name string) (*db.Store, db.Journal, error) {
		j, err := db.OpenFileJournalCodecFS(w.d, "/data/"+name+".wal", true, wire.CodecJSON)
		if err != nil {
			return nil, nil, fmt.Errorf("%s journal: %w", name, err)
		}
		st, _, err := db.OpenWithCheckpointFS(w.d, "/data/"+name+".ckpt", j)
		if err != nil {
			return nil, nil, fmt.Errorf("%s store: %w", name, err)
		}
		return st, j, nil
	}
	if w.spoolU, w.spoolUJ, err = openSpool("usage"); err != nil {
		return err
	}
	if w.upipe, err = usage.New(usage.Config{
		Ledger:  usage.WrapSharded(led),
		Spool:   w.spoolU,
		Workers: -1, // deterministic: settlement only via SettleOnce/Drain
		Now:     nowFixed,
	}); err != nil {
		return err
	}
	if w.red, err = micropay.NewRedeemer(usage.WrapSharded(led), nowFixed); err != nil {
		return err
	}
	if w.spoolM, w.spoolMJ, err = openSpool("micropay"); err != nil {
		return err
	}
	if w.mpipe, err = micropay.New(micropay.Config{
		Redeemer:    w.red,
		FindAccount: led.FindByCertificate,
		Spool:       w.spoolM,
		Workers:     -1,
		Now:         nowFixed,
	}); err != nil {
		return err
	}
	return nil
}

// reboot models power loss + restart: the disk drops everything
// volatile (with a torn tail if so configured) and the node rebuilds
// from what was durable.
func (w *world) reboot() error {
	w.shutdown()
	w.d.Crash()
	return w.boot()
}

// shutdown drops the current process generation. Errors are ignored:
// the process is "dying", and poisoned stores refuse cleanly anyway.
func (w *world) shutdown() {
	if w.upipe != nil {
		w.upipe.Close()
	}
	if w.mpipe != nil {
		w.mpipe.Close()
	}
	for _, s := range w.stores {
		if s != nil {
			s.Close()
		}
	}
	if w.spoolU != nil {
		w.spoolU.Close()
	}
	if w.spoolM != nil {
		w.spoolM.Close()
	}
}

// maintenance is gridbankd's startup checkpoint+compact pass: every
// store checkpoints and its journal compacts. First error wins.
func (w *world) maintenance() error {
	type pair struct {
		s    *db.Store
		j    db.Journal
		ckpt string
	}
	pairs := make([]pair, 0, nShards+2)
	for i := 0; i < nShards; i++ {
		pairs = append(pairs, pair{w.stores[i], w.journals[i], shardCkpt(i)})
	}
	pairs = append(pairs,
		pair{w.spoolU, w.spoolUJ, "/data/usage.ckpt"},
		pair{w.spoolM, w.spoolMJ, "/data/micropay.ckpt"})
	for _, p := range pairs {
		if _, err := p.s.CheckpointFS(w.d, p.ckpt); err != nil {
			return err
		}
		if err := p.j.(db.CompactableJournal).Compact(); err != nil {
			return err
		}
	}
	return nil
}

// newWorld builds a funded deployment (clean disk, no faults armed).
func newWorld(t *testing.T, d *diskfault.Disk) *world {
	t.Helper()
	w := &world{t: t, d: d}
	if err := w.boot(); err != nil {
		t.Fatalf("initial boot: %v", err)
	}
	drawer, err := w.led.CreateAccount("CN=alice", "VO-X", "")
	if err != nil {
		t.Fatal(err)
	}
	w.drawer = drawer.AccountID
	ds := w.led.ShardFor(w.drawer)
	for i := 0; w.xferTo == "" || w.usageTo == ""; i++ {
		if i > 10000 {
			t.Fatal("could not place partner accounts")
		}
		a, err := w.led.CreateAccount(fmt.Sprintf("CN=partner-%d", i), "VO-X", "")
		if err != nil {
			t.Fatal(err)
		}
		if w.led.ShardFor(a.AccountID) != ds {
			if w.xferTo == "" {
				w.xferTo = a.AccountID // cross-shard: transfers run 2PC
			}
		} else if w.usageTo == "" {
			w.usageTo = a.AccountID
		}
	}
	p, err := w.led.CreateAccount("CN=payee", "VO-X", "")
	if err != nil {
		t.Fatal(err)
	}
	w.payee = p.AccountID
	if err := w.led.Deposit(w.drawer, currency.FromG(10000)); err != nil {
		t.Fatal(err)
	}
	if w.total, err = w.led.TotalBalance(); err != nil {
		t.Fatal(err)
	}
	return w
}

// assertConverged checks conservation and full 2PC resolution after a
// reboot. Returned (not fataled) so soak failures can name their seed.
func (w *world) assertConverged() error {
	esc, err := w.led.PendingEscrow()
	if err != nil {
		return err
	}
	if !esc.IsZero() {
		return fmt.Errorf("escrow %v left after recovery", esc)
	}
	total, err := w.led.TotalBalance()
	if err != nil {
		return err
	}
	if total != w.total {
		return fmt.Errorf("conservation violated: %v -> %v", w.total, total)
	}
	return nil
}

// storageTyped reports whether err carries the contract the harness
// accepts from an injected fault: the typed fail-stop error on commit
// paths, or the injected fault itself on maintenance paths.
func storageTyped(err error) bool {
	return errors.Is(err, db.ErrStorageFailed) || errors.Is(err, diskfault.ErrInjected)
}

// chainFixture is one payment chain under test.
type chainFixture struct {
	ch      *payment.Chain
	perWord currency.Amount
	next    int // next index to claim
}

func issueChain(t *testing.T, w *world, tag string, length int) *chainFixture {
	t.Helper()
	perWord := currency.FromG(1)
	ch, err := payment.NewChain(w.drawer, "CN=alice", "CN=payee", length, perWord,
		currency.GridDollar, harnessEpoch, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	total, err := ch.Commitment.Total()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.led.CheckFunds(w.drawer, total); err != nil {
		t.Fatal(err)
	}
	if err := w.red.Put(&micropay.ChainRow{Commitment: ch.Commitment, State: micropay.StateOutstanding}); err != nil {
		t.Fatal(err)
	}
	_ = tag
	return &chainFixture{ch: ch, perWord: perWord, next: 1}
}

func flatRates() *rur.RateCard {
	rates := map[rur.Item]currency.Rate{rur.ItemCPU: currency.PerHour(currency.Scale)}
	for _, item := range rur.AllItems {
		if _, ok := rates[item]; !ok {
			rates[item] = currency.ZeroRate
		}
	}
	return &rur.RateCard{Provider: "CN=provider", Currency: currency.GridDollar, Rates: rates}
}

// encodedRUR builds a record worth exactly 1 G$ under flatRates.
func encodedRUR(t *testing.T, jobID string) []byte {
	t.Helper()
	rec := &rur.Record{
		User:     rur.UserDetails{CertificateName: "CN=alice"},
		Job:      rur.JobDetails{JobID: jobID, Application: "sim", Start: harnessEpoch, End: harnessEpoch.Add(time.Hour)},
		Resource: rur.ResourceDetails{Host: "h", CertificateName: "CN=provider", LocalJobID: "pid"},
	}
	rec.SetQuantity(rur.ItemCPU, 3600)
	raw, err := rur.Encode(rec, rur.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func (w *world) submitCharge(id string) error {
	_, err := w.upipe.Submit([]usage.Submission{{
		ID: id, Drawer: w.drawer, Recipient: w.usageTo,
		RUR: encodedRUR(w.t, id), Rates: flatRates(),
	}})
	return err
}

// TestEveryDurabilityBoundaryFailStop is the deterministic matrix: one
// scripted fault per durability seam, traffic driven into it, then a
// crash and reboot with the three invariants checked. WAL seams must
// surface ErrStorageFailed and poison only their own component;
// checkpoint seams must fail the maintenance pass without poisoning
// the live store.
func TestEveryDurabilityBoundaryFailStop(t *testing.T) {
	cases := []struct {
		name string
		rule diskfault.Rule
		// wal: the fault lands on a commit path and must produce at
		// least one ErrStorageFailed. Otherwise it lands on the
		// checkpoint path: maintenance fails, stores stay healthy.
		wal bool
	}{
		{"shard0-wal-write-enospc", diskfault.Rule{PathSuffix: "ledger-0.wal", Op: diskfault.OpWrite, Nth: 1, Err: diskfault.ErrNoSpace, Sticky: true}, true},
		{"shard0-wal-fsync", diskfault.Rule{PathSuffix: "ledger-0.wal", Op: diskfault.OpSync, Nth: 1, Err: diskfault.ErrIO, Sticky: true}, true},
		{"shard1-wal-fsync", diskfault.Rule{PathSuffix: "ledger-1.wal", Op: diskfault.OpSync, Nth: 1, Err: diskfault.ErrIO, Sticky: true}, true},
		{"usage-spool-write-short", diskfault.Rule{PathSuffix: "usage.wal", Op: diskfault.OpWrite, Nth: 1, Err: diskfault.ErrNoSpace, ShortBytes: 7, Sticky: true}, true},
		{"usage-spool-fsync", diskfault.Rule{PathSuffix: "usage.wal", Op: diskfault.OpSync, Nth: 1, Err: diskfault.ErrIO, Sticky: true}, true},
		{"micropay-spool-fsync", diskfault.Rule{PathSuffix: "micropay.wal", Op: diskfault.OpSync, Nth: 1, Err: diskfault.ErrIO, Sticky: true}, true},
		{"checkpoint-write", diskfault.Rule{PathSuffix: "ledger-0.ckpt.tmp", Op: diskfault.OpWrite, Nth: 1, Err: diskfault.ErrNoSpace}, false},
		{"checkpoint-fsync", diskfault.Rule{PathSuffix: "ledger-0.ckpt.tmp", Op: diskfault.OpSync, Nth: 1, Err: diskfault.ErrIO}, false},
		{"checkpoint-rename", diskfault.Rule{PathSuffix: "ledger-0.ckpt.tmp", Op: diskfault.OpRename, Nth: 1, Err: diskfault.ErrIO}, false},
		{"checkpoint-dir-fsync", diskfault.Rule{PathSuffix: "/data", Op: diskfault.OpSyncDir, Nth: 1, Err: diskfault.ErrIO}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := diskfault.New(diskfault.Config{Seed: 0xD15C, TornCrash: true})
			w := newWorld(t, d)
			chain := issueChain(t, w, "c", 8)

			// Clean warm-up traffic: an acked prefix the reboot must keep.
			if _, err := w.led.Transfer(w.drawer, w.xferTo, currency.FromG(1), accounts.TransferOptions{}); err != nil {
				t.Fatal(err)
			}
			if err := w.submitCharge("warm-0"); err != nil {
				t.Fatal(err)
			}
			if _, err := w.upipe.SettleOnce(); err != nil {
				t.Fatal(err)
			}
			word1, err := chain.ch.Word(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.mpipe.Submit("CN=payee", []micropay.Claim{{Serial: chain.ch.Commitment.Serial, Index: 1, Word: word1}}); err != nil {
				t.Fatal(err)
			}
			if _, err := w.mpipe.SettleOnce(); err != nil {
				t.Fatal(err)
			}
			chain.next = 2

			d.AddRule(tc.rule)

			// Drive every kind of traffic into the armed fault.
			var faultErrs []error
			note := func(err error) {
				if err == nil {
					return
				}
				if !storageTyped(err) {
					t.Fatalf("fault surfaced untyped: %v", err)
				}
				faultErrs = append(faultErrs, err)
			}
			_, err = w.led.Transfer(w.drawer, w.xferTo, currency.FromG(1), accounts.TransferOptions{})
			note(err)
			note(w.submitCharge("doomed-0"))
			_, err = w.upipe.SettleOnce()
			note(err)
			word2, err := chain.ch.Word(2)
			if err != nil {
				t.Fatal(err)
			}
			_, err = w.mpipe.Submit("CN=payee", []micropay.Claim{{Serial: chain.ch.Commitment.Serial, Index: 2, Word: word2}})
			note(err)
			_, err = w.mpipe.SettleOnce()
			note(err)
			mErr := w.maintenance()
			if tc.wal {
				if len(faultErrs) == 0 && mErr == nil {
					t.Fatal("no operation surfaced the injected WAL fault")
				}
				if mErr != nil && !storageTyped(mErr) {
					t.Fatalf("maintenance error untyped: %v", mErr)
				}
			} else {
				if mErr == nil {
					t.Fatal("maintenance should fail under checkpoint fault")
				}
				if !errors.Is(mErr, diskfault.ErrInjected) {
					t.Fatalf("maintenance error = %v; want the injected fault", mErr)
				}
				// A checkpoint failure must NOT poison the live store.
				if _, err := w.led.Transfer(w.drawer, w.xferTo, currency.FromG(1), accounts.TransferOptions{}); err != nil {
					t.Fatalf("store poisoned by checkpoint failure: %v", err)
				}
			}

			// Power loss, reboot, invariants.
			d.ClearRules()
			if err := w.reboot(); err != nil {
				t.Fatalf("reboot: %v", err)
			}
			if err := w.assertConverged(); err != nil {
				t.Fatal(err)
			}
			// Exactly-once: resubmit everything ever submitted, drain, and
			// check the recipient saw each charge precisely once.
			for _, id := range []string{"warm-0", "doomed-0"} {
				if err := w.submitCharge(id); err != nil {
					t.Fatalf("resubmit %s: %v", id, err)
				}
			}
			if _, err := w.upipe.Drain(5 * time.Second); err != nil {
				t.Fatalf("usage drain: %v", err)
			}
			a, err := w.led.Details(w.usageTo)
			if err != nil {
				t.Fatal(err)
			}
			if a.AvailableBalance != currency.FromG(2) {
				t.Fatalf("usage recipient = %s; want exactly 2 G$ (one per distinct charge)", a.AvailableBalance)
			}
			if _, err := w.mpipe.Drain(5 * time.Second); err != nil {
				t.Fatalf("micropay drain: %v", err)
			}
			row, err := w.red.Get(chain.ch.Commitment.Serial)
			if err != nil {
				t.Fatal(err)
			}
			pa, err := w.led.Details(w.payee)
			if err != nil {
				t.Fatal(err)
			}
			if want := currency.FromMicro(chain.perWord.Micro() * int64(row.RedeemedIndex)); pa.AvailableBalance != want {
				t.Fatalf("payee = %s; want %s (perWord × redeemed index %d: each word exactly once)",
					pa.AvailableBalance, want, row.RedeemedIndex)
			}
			if err := w.assertConverged(); err != nil {
				t.Fatal(err)
			}
			us := w.upipe.Status()
			ms := w.mpipe.Status()
			if us.Failed != 0 || ms.Failed != 0 {
				t.Fatalf("storage faults parked terminal: usage %d, micropay %d", us.Failed, ms.Failed)
			}
		})
	}
}

// TestHarnessTypedRefusalOnUnrecoverableCorruption: when a shard's only
// checkpoint generation rots after its journal was compacted, the node
// must refuse to boot with ErrNoIntactHistory — never serve silently
// rolled-back balances.
func TestHarnessTypedRefusalOnUnrecoverableCorruption(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 77})
	w := newWorld(t, d)
	if err := w.maintenance(); err != nil {
		t.Fatal(err)
	}
	// Second maintenance pass compacts past the only intact span the
	// first checkpoint's generation could bridge.
	if _, err := w.led.Transfer(w.drawer, w.xferTo, currency.FromG(1), accounts.TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := w.maintenance(); err != nil {
		t.Fatal(err)
	}
	w.shutdown()
	d.Crash()
	if !d.Corrupt(shardCkpt(0), 40, 0xFF) {
		t.Fatal("corrupt missed")
	}
	err := w.boot()
	if !errors.Is(err, db.ErrNoIntactHistory) {
		t.Fatalf("boot = %v; want ErrNoIntactHistory", err)
	}
}

// soakSeeds returns the seed list: GRIDBANK_DISKFAULT_SEEDS (comma
// separated) or a small default for the ordinary test run. CI's soak
// step passes a wider list.
func soakSeeds(t *testing.T) []uint64 {
	env := os.Getenv("GRIDBANK_DISKFAULT_SEEDS")
	if env == "" {
		return []uint64{1, 2, 3}
	}
	var seeds []uint64
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("GRIDBANK_DISKFAULT_SEEDS: %v", err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestDiskfaultSeededSoak runs randomized rounds per seed: arm a
// seeded-random fault, drive mixed traffic (2PC transfers, usage
// settlement, micropay redemption, checkpoint+compact maintenance),
// crash with torn tails, reboot, and assert convergence — then a final
// clean phase proves exactly-once end-to-end. Every failure names its
// seed; GRIDBANK_DISKFAULT_SEEDS replays or widens the schedule.
func TestDiskfaultSeededSoak(t *testing.T) {
	targets := []struct {
		suffix string
		op     diskfault.Op
	}{
		{"ledger-0.wal", diskfault.OpWrite},
		{"ledger-0.wal", diskfault.OpSync},
		{"ledger-1.wal", diskfault.OpSync},
		{"usage.wal", diskfault.OpSync},
		{"usage.wal", diskfault.OpWrite},
		{"micropay.wal", diskfault.OpSync},
		{"ledger-0.ckpt.tmp", diskfault.OpWrite},
		{"ledger-1.ckpt.tmp", diskfault.OpSync},
		{"usage.ckpt.tmp", diskfault.OpRename},
		{"/data", diskfault.OpSyncDir},
	}
	for _, seed := range soakSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fail := func(format string, args ...any) {
				t.Helper()
				t.Fatalf("seed %d: %s", seed, fmt.Sprintf(format, args...))
			}
			d := diskfault.New(diskfault.Config{Seed: seed, TornCrash: true})
			w := newWorld(t, d)
			chains := []*chainFixture{issueChain(t, w, "a", 12), issueChain(t, w, "b", 12)}
			var chargeIDs []string

			const rounds = 4
			for round := 0; round < rounds; round++ {
				rng := splitmix(seed*1000003 + uint64(round))
				tgt := targets[rng%uint64(len(targets))]
				rule := diskfault.Rule{
					PathSuffix: tgt.suffix,
					Op:         tgt.op,
					Nth:        1 + int(splitmix(rng)%4),
					Err:        diskfault.ErrIO,
					Sticky:     splitmix(rng+1)%2 == 0,
				}
				if tgt.op == diskfault.OpWrite {
					rule.Err = diskfault.ErrNoSpace
					rule.ShortBytes = int(splitmix(rng+2) % 16)
				}
				d.AddRule(rule)

				note := func(err error) {
					if err != nil && !storageTyped(err) {
						fail("round %d (%s/%s): untyped fault error: %v", round, tgt.suffix, tgt.op, err)
					}
				}
				for k := 0; k < 3; k++ {
					_, err := w.led.Transfer(w.drawer, w.xferTo, currency.FromG(1), accounts.TransferOptions{})
					note(err)
				}
				for k := 0; k < 3; k++ {
					id := fmt.Sprintf("charge-%d-%d-%d", seed, round, k)
					chargeIDs = append(chargeIDs, id)
					note(w.submitCharge(id))
				}
				_, err := w.upipe.SettleOnce()
				note(err)
				for _, c := range chains {
					if c.next > c.ch.Commitment.Length {
						continue
					}
					word, werr := c.ch.Word(c.next)
					if werr != nil {
						fail("word: %v", werr)
					}
					_, err := w.mpipe.Submit("CN=payee", []micropay.Claim{{Serial: c.ch.Commitment.Serial, Index: c.next, Word: word}})
					note(err)
					c.next++
				}
				_, err = w.mpipe.SettleOnce()
				note(err)
				note(w.maintenance())

				d.ClearRules()
				if err := w.reboot(); err != nil {
					fail("round %d reboot: %v", round, err)
				}
				if err := w.assertConverged(); err != nil {
					fail("round %d: %v", round, err)
				}
			}

			// Final clean phase: resubmit every charge ever issued (the
			// idempotency key dedupes survivors), drain both pipelines, and
			// verify exactly-once by balance arithmetic.
			for _, id := range chargeIDs {
				if err := w.submitCharge(id); err != nil {
					fail("final resubmit %s: %v", id, err)
				}
			}
			if _, err := w.upipe.Drain(10 * time.Second); err != nil {
				fail("usage drain: %v", err)
			}
			a, err := w.led.Details(w.usageTo)
			if err != nil {
				fail("details: %v", err)
			}
			if want := currency.FromG(int64(len(chargeIDs))); a.AvailableBalance != want {
				fail("usage recipient %s; want %s — a charge settled zero or multiple times", a.AvailableBalance, want)
			}
			if _, err := w.mpipe.Drain(10 * time.Second); err != nil {
				fail("micropay drain: %v", err)
			}
			var payeeWant int64
			for _, c := range chains {
				row, err := w.red.Get(c.ch.Commitment.Serial)
				if err != nil {
					fail("chain row: %v", err)
				}
				payeeWant += c.perWord.Micro() * int64(row.RedeemedIndex)
			}
			pa, err := w.led.Details(w.payee)
			if err != nil {
				fail("details: %v", err)
			}
			if pa.AvailableBalance != currency.FromMicro(payeeWant) {
				fail("payee %s; want %s — a chain word credited zero or multiple times",
					pa.AvailableBalance, currency.FromMicro(payeeWant))
			}
			if err := w.assertConverged(); err != nil {
				fail("final: %v", err)
			}
			us, ms := w.upipe.Status(), w.mpipe.Status()
			if us.Failed != 0 || ms.Failed != 0 {
				fail("storage faults parked terminal: usage %d, micropay %d", us.Failed, ms.Failed)
			}
		})
	}
}
