// Package currency implements fixed-point Grid currency ("Grid dollars",
// G$) arithmetic for GridBank.
//
// The paper stores balances as MySQL FLOAT columns. Floating-point money is
// a well-known accounting hazard (non-associative addition, representation
// error accumulating over millions of micro-payments), so this
// implementation uses a fixed-point representation: an Amount is an int64
// count of micro-credits (1 G$ == 1_000_000 µG$). Six decimal digits of
// fraction comfortably exceeds the precision of the paper's FLOAT columns,
// so every value the paper can represent is representable here.
package currency

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Scale is the number of micro-credits in one whole Grid dollar.
const Scale = 1_000_000

// Amount is a quantity of Grid currency in micro-credits (µG$).
// The zero value is zero G$. Amount is a value type and is safe to copy.
type Amount int64

// Common errors returned by currency operations.
var (
	ErrOverflow  = errors.New("currency: amount overflow")
	ErrBadFormat = errors.New("currency: malformed amount")
)

// Limits of the representable range.
const (
	MaxAmount Amount = 1<<63 - 1
	MinAmount Amount = -1 << 63
)

// FromG returns the Amount representing whole Grid dollars.
// It panics if g overflows the representable range; use Mul for
// checked arithmetic on untrusted inputs.
func FromG(g int64) Amount {
	a, err := mulCheck(g, Scale)
	if err != nil {
		panic(fmt.Sprintf("currency.FromG(%d): %v", g, err))
	}
	return Amount(a)
}

// FromMicro returns the Amount for a raw micro-credit count.
func FromMicro(micro int64) Amount { return Amount(micro) }

// Micro returns the raw micro-credit count.
func (a Amount) Micro() int64 { return int64(a) }

// G returns the amount as a float64 number of Grid dollars. This is for
// display and statistics only; accounting code must stay in Amount.
func (a Amount) G() float64 { return float64(a) / Scale }

// IsZero reports whether the amount is exactly zero.
func (a Amount) IsZero() bool { return a == 0 }

// IsNegative reports whether the amount is below zero.
func (a Amount) IsNegative() bool { return a < 0 }

// IsPositive reports whether the amount is above zero.
func (a Amount) IsPositive() bool { return a > 0 }

// Neg returns -a. It returns ErrOverflow for MinAmount, whose negation is
// not representable.
func (a Amount) Neg() (Amount, error) {
	if a == MinAmount {
		return 0, ErrOverflow
	}
	return -a, nil
}

// Abs returns the absolute value of a, saturating at MaxAmount for
// MinAmount.
func (a Amount) Abs() Amount {
	if a == MinAmount {
		return MaxAmount
	}
	if a < 0 {
		return -a
	}
	return a
}

// Add returns a+b with overflow checking.
func (a Amount) Add(b Amount) (Amount, error) {
	s := a + b
	// Overflow iff operands share a sign and the sum's sign differs.
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, ErrOverflow
	}
	return s, nil
}

// Sub returns a-b with overflow checking.
func (a Amount) Sub(b Amount) (Amount, error) {
	if b == MinAmount {
		if a < 0 {
			return a - b, nil
		}
		return 0, ErrOverflow
	}
	return a.Add(-b)
}

// MustAdd is Add for amounts the caller knows cannot overflow (e.g. values
// already validated against account limits). It panics on overflow.
func (a Amount) MustAdd(b Amount) Amount {
	s, err := a.Add(b)
	if err != nil {
		panic(fmt.Sprintf("currency: %d + %d overflows", a, b))
	}
	return s
}

// MustSub is Sub with a panic on overflow.
func (a Amount) MustSub(b Amount) Amount {
	s, err := a.Sub(b)
	if err != nil {
		panic(fmt.Sprintf("currency: %d - %d overflows", a, b))
	}
	return s
}

// MulInt returns a*n with overflow checking.
func (a Amount) MulInt(n int64) (Amount, error) {
	v, err := mulCheck(int64(a), n)
	return Amount(v), err
}

// Cmp compares a and b, returning -1, 0 or +1.
func (a Amount) Cmp(b Amount) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func mulCheck(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	p := a * b
	if p/b != a {
		return 0, ErrOverflow
	}
	return p, nil
}

// String renders the amount as a decimal G$ value, e.g. "12.5",
// "-0.000001", "3". Trailing fractional zeros are trimmed.
func (a Amount) String() string {
	neg := a < 0
	abs := uint64(a)
	if neg {
		abs = uint64(-(a + 1)) + 1 // handles MinAmount
	}
	whole := abs / Scale
	frac := abs % Scale
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	b.WriteString(strconv.FormatUint(whole, 10))
	if frac != 0 {
		f := fmt.Sprintf("%06d", frac)
		f = strings.TrimRight(f, "0")
		b.WriteByte('.')
		b.WriteString(f)
	}
	return b.String()
}

// Parse converts a decimal G$ string (as produced by String, optionally
// with a leading '+') into an Amount. At most six fractional digits are
// accepted; more precision than a micro-credit is rejected rather than
// silently rounded, because silent rounding in a payment system is a bug.
func Parse(s string) (Amount, error) {
	orig := s
	if s == "" {
		return 0, fmt.Errorf("%w: empty string", ErrBadFormat)
	}
	neg := false
	switch s[0] {
	case '-':
		neg = true
		s = s[1:]
	case '+':
		s = s[1:]
	}
	if s == "" || s == "." {
		return 0, fmt.Errorf("%w: %q", ErrBadFormat, orig)
	}
	wholeStr, fracStr, hasFrac := strings.Cut(s, ".")
	if hasFrac && fracStr == "" {
		return 0, fmt.Errorf("%w: %q has trailing dot", ErrBadFormat, orig)
	}
	if len(fracStr) > 6 {
		return 0, fmt.Errorf("%w: %q has more than 6 fractional digits", ErrBadFormat, orig)
	}
	var whole uint64
	if wholeStr != "" {
		var err error
		whole, err = strconv.ParseUint(wholeStr, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %q", ErrBadFormat, orig)
		}
	}
	var frac uint64
	if fracStr != "" {
		var err error
		frac, err = strconv.ParseUint(fracStr, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %q", ErrBadFormat, orig)
		}
		for i := len(fracStr); i < 6; i++ {
			frac *= 10
		}
	}
	const maxAbs = uint64(1<<63 - 1)
	if whole > maxAbs/Scale {
		return 0, ErrOverflow
	}
	abs := whole*Scale + frac
	if !neg && abs > maxAbs {
		return 0, ErrOverflow
	}
	if neg && abs > maxAbs+1 {
		return 0, ErrOverflow
	}
	if neg {
		if abs == maxAbs+1 {
			return MinAmount, nil
		}
		return -Amount(abs), nil
	}
	return Amount(abs), nil
}

// MustParse is Parse for literals in tests and examples; it panics on error.
func MustParse(s string) Amount {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// MarshalText implements encoding.TextMarshaler using the String format, so
// amounts embed naturally in JSON/XML wire messages as decimal strings
// rather than lossy floats.
func (a Amount) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Amount) UnmarshalText(b []byte) error {
	v, err := Parse(string(b))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Code identifies a currency unit, e.g. "G$" (the default Grid dollar),
// "USD", "AUD". The paper's ACCOUNT record carries a Currency column; a
// GridBank branch settles only like-currency transfers, and cross-currency
// conversion is the job of the branch settlement layer.
type Code string

// GridDollar is the default Grid currency.
const GridDollar Code = "G$"

// Valid reports whether the code is well formed: 1..10 printable
// non-space characters (the paper's VARCHAR(10)).
func (c Code) Valid() bool {
	if len(c) == 0 || len(c) > 10 {
		return false
	}
	for _, r := range c {
		if r <= ' ' || r > '~' {
			return false
		}
	}
	return true
}
