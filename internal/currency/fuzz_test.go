package currency

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics, and that anything it accepts
// round-trips exactly through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"0", "1", "-1", "+2.5", ".5", "-.5", "123.456789",
		"9223372036854.775807", "-9223372036854.775808",
		"", ".", "-", "1.", "1.0000001", "1e6", "0x10", "99999999999999",
		strings.Repeat("9", 40), "1..2", "٣", "1.2.3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(a.String())
		if err != nil {
			t.Fatalf("Parse(%q)=%d but String %q does not reparse: %v", s, a, a.String(), err)
		}
		if back != a {
			t.Fatalf("round trip %q: %d -> %q -> %d", s, a, a.String(), back)
		}
	})
}

// FuzzRateCharge checks Charge never panics and never returns a negative
// charge for non-negative inputs.
func FuzzRateCharge(f *testing.F) {
	f.Add(int64(1_000_000), int64(3600), int64(7200))
	f.Add(int64(1), int64(1), int64(1))
	f.Add(int64(0), int64(2), int64(100))
	f.Add(int64(1<<62), int64(3), int64(1<<62))
	f.Fuzz(func(t *testing.T, price, unit, usage int64) {
		r := Rate{MicroPerUnit: price, Unit: unit}
		got, err := r.Charge(usage)
		if err != nil {
			return
		}
		if got.IsNegative() {
			t.Fatalf("Charge(%d) with %+v = %d (negative)", usage, r, got)
		}
	})
}
