package currency

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFromG(t *testing.T) {
	if got := FromG(3); got != 3*Scale {
		t.Fatalf("FromG(3) = %d, want %d", got, 3*Scale)
	}
	if got := FromG(-7); got != -7*Scale {
		t.Fatalf("FromG(-7) = %d, want %d", got, -7*Scale)
	}
	if got := FromG(0); got != 0 {
		t.Fatalf("FromG(0) = %d, want 0", got)
	}
}

func TestFromGPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromG(max) did not panic")
		}
	}()
	FromG(math.MaxInt64)
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		in   Amount
		want string
	}{
		{0, "0"},
		{FromG(1), "1"},
		{FromG(-1), "-1"},
		{FromMicro(1), "0.000001"},
		{FromMicro(-1), "-0.000001"},
		{FromMicro(1_500_000), "1.5"},
		{FromMicro(1_050_000), "1.05"},
		{FromMicro(123_456_789), "123.456789"},
		{FromMicro(1_000_001), "1.000001"},
		{MaxAmount, "9223372036854.775807"},
		{MinAmount, "-9223372036854.775808"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Amount(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Amount
	}{
		{"0", 0},
		{"1", FromG(1)},
		{"-1", FromG(-1)},
		{"+2.5", FromMicro(2_500_000)},
		{"0.000001", FromMicro(1)},
		{"-0.000001", FromMicro(-1)},
		{".5", FromMicro(500_000)},
		{"-.5", FromMicro(-500_000)},
		{"123.456789", FromMicro(123_456_789)},
		{"9223372036854.775807", MaxAmount},
		{"-9223372036854.775808", MinAmount},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"", ".", "-", "+", "1.", "1.0000001", "abc", "1e6", "1,5",
		"--1", "1.2.3", "0x10", " 1", "1 ",
		"9223372036854.775808",  // MaxAmount+1
		"-9223372036854.775809", // MinAmount-1
		"99999999999999",        // whole overflow
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(micro int64) bool {
		a := FromMicro(micro)
		back, err := Parse(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubProperties(t *testing.T) {
	// a+b-b == a whenever both operations succeed.
	f := func(a, b int64) bool {
		x, y := FromMicro(a), FromMicro(b)
		s, err := x.Add(y)
		if err != nil {
			return true // overflow is allowed to fail
		}
		back, err := s.Sub(y)
		return err == nil && back == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddOverflow(t *testing.T) {
	if _, err := MaxAmount.Add(1); err != ErrOverflow {
		t.Errorf("MaxAmount+1: err=%v, want ErrOverflow", err)
	}
	if _, err := MinAmount.Add(-1); err != ErrOverflow {
		t.Errorf("MinAmount-1: err=%v, want ErrOverflow", err)
	}
	if _, err := MaxAmount.Sub(MinAmount); err != ErrOverflow {
		t.Errorf("Max-Min: err=%v, want ErrOverflow", err)
	}
	if s, err := MaxAmount.Add(MinAmount); err != nil || s != -1 {
		t.Errorf("Max+Min = %d,%v want -1,nil", s, err)
	}
	if s, err := FromG(-1).Sub(MinAmount); err != nil {
		t.Errorf("-1G - Min: unexpected err %v (s=%d)", err, s)
	}
}

func TestNegAbs(t *testing.T) {
	if n, err := FromG(5).Neg(); err != nil || n != FromG(-5) {
		t.Errorf("Neg(5) = %d,%v", n, err)
	}
	if _, err := MinAmount.Neg(); err != ErrOverflow {
		t.Errorf("Neg(Min): err=%v, want ErrOverflow", err)
	}
	if MinAmount.Abs() != MaxAmount {
		t.Error("Abs(Min) should saturate to Max")
	}
	if FromG(-3).Abs() != FromG(3) {
		t.Error("Abs(-3) != 3")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd overflow did not panic")
		}
	}()
	MaxAmount.MustAdd(1)
}

func TestMustSubPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSub overflow did not panic")
		}
	}()
	MinAmount.MustSub(1)
}

func TestMulInt(t *testing.T) {
	if v, err := FromG(2).MulInt(3); err != nil || v != FromG(6) {
		t.Errorf("2*3 = %v,%v", v, err)
	}
	if _, err := MaxAmount.MulInt(2); err != ErrOverflow {
		t.Errorf("Max*2: err=%v, want ErrOverflow", err)
	}
	if v, err := FromG(5).MulInt(0); err != nil || v != 0 {
		t.Errorf("5*0 = %v,%v", v, err)
	}
}

func TestCmpAndPredicates(t *testing.T) {
	if FromG(1).Cmp(FromG(2)) != -1 || FromG(2).Cmp(FromG(1)) != 1 || FromG(1).Cmp(FromG(1)) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if !Amount(0).IsZero() || Amount(1).IsZero() {
		t.Error("IsZero wrong")
	}
	if !Amount(-1).IsNegative() || Amount(1).IsNegative() {
		t.Error("IsNegative wrong")
	}
	if !Amount(1).IsPositive() || Amount(-1).IsPositive() || Amount(0).IsPositive() {
		t.Error("IsPositive wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	type wrap struct {
		A Amount `json:"a"`
	}
	in := wrap{A: FromMicro(12_345_678)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"a":"12.345678"}` {
		t.Fatalf("marshal = %s", b)
	}
	var out wrap
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A {
		t.Fatalf("round trip %d != %d", out.A, in.A)
	}
	var bad wrap
	if err := json.Unmarshal([]byte(`{"a":"1e9"}`), &bad); err == nil {
		t.Fatal("unmarshal of float-notation amount should fail")
	}
}

func TestCodeValid(t *testing.T) {
	good := []Code{GridDollar, "USD", "AUD", "GridDollar"}
	for _, c := range good {
		if !c.Valid() {
			t.Errorf("Code(%q) should be valid", c)
		}
	}
	bad := []Code{"", "ELEVENCHARSX", "A B", "A\tB", Code("é")}
	for _, c := range bad {
		if c.Valid() {
			t.Errorf("Code(%q) should be invalid", c)
		}
	}
}

func TestRateCharge(t *testing.T) {
	// 1 G$/CPU-hour, 30 minutes of CPU => 0.5 G$.
	r := PerHour(Scale)
	got, err := r.Charge(1800)
	if err != nil || got != FromMicro(500_000) {
		t.Fatalf("30min at 1G$/h = %v,%v want 0.5", got, err)
	}
	// 2 G$/MB, 10 MB => 20 G$.
	r = PerMB(2 * Scale)
	got, err = r.Charge(10)
	if err != nil || got != FromG(20) {
		t.Fatalf("10MB at 2G$/MB = %v,%v want 20", got, err)
	}
	// Rounding: 1 µG$/hour for 1 second rounds to 0 (0.000277... µ).
	r = PerHour(1)
	got, err = r.Charge(1)
	if err != nil || got != 0 {
		t.Fatalf("tiny charge = %v,%v want 0", got, err)
	}
	// Half rounds away from zero: 1 µG$ per 2 units, 1 unit => 0.5 => 1.
	r = Rate{MicroPerUnit: 1, Unit: 2}
	got, err = r.Charge(1)
	if err != nil || got != 1 {
		t.Fatalf("half-round = %v,%v want 1", got, err)
	}
}

func TestRateChargeErrors(t *testing.T) {
	if _, err := PerMB(1).Charge(-1); err == nil {
		t.Error("negative usage accepted")
	}
	if _, err := (Rate{MicroPerUnit: -1, Unit: 1}).Charge(1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := (Rate{MicroPerUnit: 1, Unit: 0}).Charge(1); err == nil {
		t.Error("zero unit accepted")
	}
	if _, err := (Rate{MicroPerUnit: math.MaxInt64, Unit: 1}).Charge(math.MaxInt64); err == nil {
		t.Error("overflowing charge accepted")
	}
}

func TestRateChargeBigUsageSlowPath(t *testing.T) {
	// usage * price overflows int64, but the true charge fits: exercise
	// the split path. price 1000 µ per unit 3600, usage 2^53.
	r := Rate{MicroPerUnit: 1_000_000, Unit: 3600}
	usage := int64(1) << 53
	got, err := r.Charge(usage)
	if err != nil {
		t.Fatalf("slow path errored: %v", err)
	}
	want := float64(usage) / 3600 * 1_000_000
	if diff := math.Abs(float64(got) - want); diff > 1 {
		t.Fatalf("slow path charge %d, want ~%f", got, want)
	}
}

func TestRateChargeMatchesFloat(t *testing.T) {
	f := func(usage uint32, price uint16, unitSel uint8) bool {
		units := []int64{1, 60, 3600, 1024}
		r := Rate{MicroPerUnit: int64(price), Unit: units[int(unitSel)%len(units)]}
		got, err := r.Charge(int64(usage))
		if err != nil {
			return false
		}
		want := float64(usage) * float64(price) / float64(r.Unit)
		return math.Abs(float64(got)-want) <= 0.5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChargeDuration(t *testing.T) {
	// 3600 G$/hour for 1ms = 0.001 G$.
	r := PerHour(3600 * Scale)
	got, err := r.ChargeDuration(time.Millisecond)
	if err != nil || got != FromMicro(1000) {
		t.Fatalf("1ms at 3600G$/h = %v,%v want 0.001", got, err)
	}
	if _, err := r.ChargeDuration(-time.Second); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestRateScale(t *testing.T) {
	r := PerMB(1000)
	up := r.Scale(3, 2)
	if up.MicroPerUnit != 1500 {
		t.Errorf("scale 3/2 = %d, want 1500", up.MicroPerUnit)
	}
	down := r.Scale(1, 2)
	if down.MicroPerUnit != 500 {
		t.Errorf("scale 1/2 = %d, want 500", down.MicroPerUnit)
	}
	same := r.Scale(1, 0)
	if same != r {
		t.Error("zero denominator should be identity")
	}
	neg := r.Scale(-1, 1)
	if neg.MicroPerUnit != 0 {
		t.Error("negative scaling should clamp to zero")
	}
}

func TestRateConstructorsAndString(t *testing.T) {
	if PerSecond(5).Unit != 1 || PerMBHour(5).Unit != 3600 {
		t.Error("constructor units wrong")
	}
	if !ZeroRate.IsZero() {
		t.Error("ZeroRate should be zero")
	}
	if s := PerMB(2 * Scale).String(); s != "2 G$/u1" {
		t.Errorf("String() = %q", s)
	}
	if g := PerMB(2 * Scale).PerUnitG(); g != 2 {
		t.Errorf("PerUnitG = %f", g)
	}
	if g := (Rate{1, 0}).PerUnitG(); !math.IsNaN(g) {
		t.Errorf("PerUnitG with zero unit = %f, want NaN", g)
	}
}
