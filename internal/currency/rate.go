package currency

import (
	"fmt"
	"math"
	"time"
)

// Rate is a price per unit of some metered quantity, expressed in
// micro-credits per scaled unit. Rates multiply resource usage into
// charges; they are the "G$ per CPU hour", "G$ per MB*hour" and
// "G$ per MB" quantities of §2.1 of the paper.
//
// A Rate keeps a numerator (micro-credits) and unit divisor so that
// charge computation is integer arithmetic with a single final division,
// avoiding cumulative rounding across chargeable items.
type Rate struct {
	// MicroPerUnit is the price of one Unit, in micro-credits.
	MicroPerUnit int64 `json:"micro_per_unit"`
	// Unit is the divisor of the raw measured quantity. E.g. a rate in
	// G$/CPU-hour over usage measured in seconds has Unit = 3600.
	Unit int64 `json:"unit"`
}

// ZeroRate charges nothing regardless of usage.
var ZeroRate = Rate{MicroPerUnit: 0, Unit: 1}

// PerHour builds a Rate of a µG$ per hour, for usage measured in seconds.
func PerHour(microPerHour int64) Rate { return Rate{MicroPerUnit: microPerHour, Unit: 3600} }

// PerMB builds a Rate of a µG$ per megabyte, for usage measured in MB.
func PerMB(microPerMB int64) Rate { return Rate{MicroPerUnit: microPerMB, Unit: 1} }

// PerMBHour builds a Rate of a µG$ per MB*hour, for usage measured in
// MB*seconds.
func PerMBHour(microPerMBHour int64) Rate {
	return Rate{MicroPerUnit: microPerMBHour, Unit: 3600}
}

// PerSecond builds a Rate of a µG$ per second, for usage measured in
// seconds.
func PerSecond(microPerSecond int64) Rate { return Rate{MicroPerUnit: microPerSecond, Unit: 1} }

// Valid reports whether the rate is well formed (non-negative price,
// positive unit).
func (r Rate) Valid() bool { return r.MicroPerUnit >= 0 && r.Unit > 0 }

// IsZero reports whether the rate charges nothing.
func (r Rate) IsZero() bool { return r.MicroPerUnit == 0 }

// Charge computes usage*rate, rounding half away from zero to the nearest
// micro-credit. usage is the raw measured quantity in the rate's base
// measurement unit (seconds, MB, MB-seconds...). Negative usage is
// rejected: meters never report negative consumption, so a negative value
// indicates a corrupted or adversarial record.
func (r Rate) Charge(usage int64) (Amount, error) {
	if usage < 0 {
		return 0, fmt.Errorf("currency: negative usage %d", usage)
	}
	if !r.Valid() {
		return 0, fmt.Errorf("currency: invalid rate %+v", r)
	}
	if usage == 0 || r.MicroPerUnit == 0 {
		return 0, nil
	}
	// Try fast integer path first.
	if p := usage * r.MicroPerUnit; p/r.MicroPerUnit == usage {
		return Amount((p + r.Unit/2) / r.Unit), nil
	}
	// Slow path: split usage into unit-multiples to keep products small.
	q, rem := usage/r.Unit, usage%r.Unit
	whole, err := mulCheck(q, r.MicroPerUnit)
	if err != nil {
		return 0, ErrOverflow
	}
	fracNum, err := mulCheck(rem, r.MicroPerUnit)
	if err != nil {
		return 0, ErrOverflow
	}
	frac := (fracNum + r.Unit/2) / r.Unit
	total, err := Amount(whole).Add(Amount(frac))
	if err != nil {
		return 0, err
	}
	return total, nil
}

// ChargeDuration computes the price of a duration at this per-second-based
// rate; it is a convenience for wall-clock and CPU-time items.
func (r Rate) ChargeDuration(d time.Duration) (Amount, error) {
	if d < 0 {
		return 0, fmt.Errorf("currency: negative duration %v", d)
	}
	// Charge at millisecond granularity for sub-second accuracy: scale
	// numerator and unit by 1000.
	ms := int64(d / time.Millisecond)
	scaled := Rate{MicroPerUnit: r.MicroPerUnit, Unit: r.Unit * 1000}
	return scaled.Charge(ms)
}

// PerUnitG returns the rate as float G$ per unit, for display.
func (r Rate) PerUnitG() float64 {
	if r.Unit == 0 {
		return math.NaN()
	}
	return float64(r.MicroPerUnit) / Scale
}

// Scale returns a rate multiplied by num/den, rounding to the nearest
// micro-credit. It is used by pricing engines adjusting posted prices in
// response to demand. Negative results are clamped to zero (prices never
// go negative).
func (r Rate) Scale(num, den int64) Rate {
	if den == 0 {
		return r
	}
	p := float64(r.MicroPerUnit) * float64(num) / float64(den)
	if p < 0 {
		p = 0
	}
	if p > float64(math.MaxInt64) {
		p = float64(math.MaxInt64)
	}
	return Rate{MicroPerUnit: int64(p + 0.5), Unit: r.Unit}
}

// String renders e.g. "0.25 G$/u3600" — price in G$ per Unit of usage.
func (r Rate) String() string {
	return fmt.Sprintf("%s G$/u%d", Amount(r.MicroPerUnit).String(), r.Unit)
}
