package rur

import "testing"

// FuzzDecode checks that arbitrary bytes never panic the record decoder,
// and that anything accepted re-encodes.
func FuzzDecode(f *testing.F) {
	good, _ := Encode(sampleRecord(), FormatJSON)
	f.Add(good)
	xml, _ := Encode(sampleRecord(), FormatXML)
	f.Add(xml)
	f.Add([]byte("{"))
	f.Add([]byte("<UsageRecord>"))
	f.Add([]byte("   "))
	f.Add([]byte(`{"usage":[{"item":"cpu","quantity":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := Encode(rec, FormatJSON); err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
	})
}
