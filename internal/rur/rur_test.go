package rur

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gridbank/internal/currency"
)

func sampleRecord() *Record {
	start := time.Date(2026, 6, 1, 10, 0, 0, 0, time.UTC)
	return &Record{
		User:     UserDetails{Host: "client.vo-a.example", CertificateName: "CN=alice,O=VO-A"},
		Job:      JobDetails{JobID: "job-42", Application: "nimrod-sweep", Start: start, End: start.Add(2 * time.Hour)},
		Resource: ResourceDetails{Host: "gsp1.vo-a.example", CertificateName: "CN=gsp1,O=VO-A", HostType: "Cray", LocalJobID: "pid-9917"},
		Usage: []Usage{
			{ItemCPU, 5400},
			{ItemWallClock, 7200},
			{ItemMemory, 512 * 7200},
			{ItemStorage, 100 * 7200},
			{ItemNetwork, 250},
			{ItemSoftware, 30},
		},
	}
}

func sampleRateCard() *RateCard {
	return &RateCard{
		Provider: "CN=gsp1,O=VO-A",
		Currency: currency.GridDollar,
		Rates: map[Item]currency.Rate{
			ItemCPU:       currency.PerHour(2 * currency.Scale),       // 2 G$/CPU-hour
			ItemWallClock: currency.PerHour(currency.Scale / 10),      // 0.1 G$/hour
			ItemMemory:    currency.PerMBHour(currency.Scale / 1000),  // 0.001 G$/MB-hour
			ItemStorage:   currency.PerMBHour(currency.Scale / 10000), // 0.0001 G$/MB-hour
			ItemNetwork:   currency.PerMB(currency.Scale / 100),       // 0.01 G$/MB
			ItemSoftware:  currency.PerHour(10 * currency.Scale),      // 10 G$/hour of system CPU
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleRecord().Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Record)
		want   error
	}{
		{"no consumer", func(r *Record) { r.User.CertificateName = "" }, ErrNoConsumer},
		{"no provider", func(r *Record) { r.Resource.CertificateName = "" }, ErrNoProvider},
		{"inverted interval", func(r *Record) { r.Job.End = r.Job.Start.Add(-time.Second) }, ErrBadInterval},
		{"negative usage", func(r *Record) { r.Usage[0].Quantity = -1 }, ErrNegativeUsage},
		{"duplicate item", func(r *Record) { r.Usage = append(r.Usage, Usage{ItemCPU, 1}) }, ErrDuplicateItem},
		{"unknown item", func(r *Record) { r.Usage = append(r.Usage, Usage{"quantum", 1}) }, ErrUnknownItem},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := sampleRecord()
			c.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("mutated record accepted")
			}
			if !strings.Contains(err.Error(), c.want.Error()) {
				t.Fatalf("err = %v, want wrapping %v", err, c.want)
			}
		})
	}
}

func TestQuantityAccessors(t *testing.T) {
	r := sampleRecord()
	if q := r.Quantity(ItemCPU); q != 5400 {
		t.Errorf("Quantity(cpu) = %d", q)
	}
	if q := r.Quantity("absent"); q != 0 {
		t.Errorf("Quantity(absent) = %d, want 0", q)
	}
	r.SetQuantity(ItemCPU, 10)
	if q := r.Quantity(ItemCPU); q != 10 {
		t.Errorf("after SetQuantity: %d", q)
	}
	n := len(r.Usage)
	r.SetQuantity(ItemCPU, 20) // replace, not append
	if len(r.Usage) != n {
		t.Error("SetQuantity appended a duplicate line")
	}
	if r.Duration() != 2*time.Hour {
		t.Errorf("Duration = %v", r.Duration())
	}
}

func TestClone(t *testing.T) {
	r := sampleRecord()
	cp := r.Clone()
	cp.SetQuantity(ItemCPU, 1)
	cp.User.CertificateName = "CN=mallory"
	if r.Quantity(ItemCPU) == 1 || r.User.CertificateName == "CN=mallory" {
		t.Fatal("Clone shares state with original")
	}
}

func TestMerge(t *testing.T) {
	r1 := sampleRecord()
	r2 := sampleRecord()
	r2.Job.Start = r1.Job.Start.Add(-time.Hour)
	r2.Job.End = r1.Job.End.Add(time.Hour)
	r2.Usage = []Usage{{ItemCPU, 600}, {ItemNetwork, 50}}
	if err := r1.Merge(r2); err != nil {
		t.Fatal(err)
	}
	if got := r1.Quantity(ItemCPU); got != 6000 {
		t.Errorf("merged cpu = %d, want 6000", got)
	}
	if got := r1.Quantity(ItemNetwork); got != 300 {
		t.Errorf("merged net = %d, want 300", got)
	}
	if !r1.Job.Start.Equal(r2.Job.Start) || !r1.Job.End.Equal(r2.Job.End) {
		t.Error("merge did not widen job interval")
	}
}

func TestMergeRejectsMismatch(t *testing.T) {
	r1, r2 := sampleRecord(), sampleRecord()
	r2.User.CertificateName = "CN=bob"
	if err := r1.Merge(r2); err == nil {
		t.Error("merge across consumers accepted")
	}
	r3 := sampleRecord()
	r3.Job.JobID = "other-job"
	if err := r1.Merge(r3); err == nil {
		t.Error("merge across jobs accepted")
	}
}

func TestEncodeDecodeJSON(t *testing.T) {
	r := sampleRecord()
	b, err := Encode(r, FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	assertRecordsEqual(t, r, back)
}

func TestEncodeDecodeXML(t *testing.T) {
	r := sampleRecord()
	b, err := Encode(r, FormatXML)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "<?xml") {
		t.Error("XML encoding missing header")
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	assertRecordsEqual(t, r, back)
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty decode accepted")
	}
	if _, err := Decode([]byte("   \n")); err == nil {
		t.Error("whitespace decode accepted")
	}
	if _, err := Decode([]byte("<broken")); err == nil {
		t.Error("broken xml accepted")
	}
	if _, err := Decode([]byte("{broken")); err == nil {
		t.Error("broken json accepted")
	}
	if _, err := Encode(sampleRecord(), Format("yaml")); err == nil {
		t.Error("unknown format accepted")
	}
}

func assertRecordsEqual(t *testing.T, a, b *Record) {
	t.Helper()
	if a.User != b.User || a.Resource != b.Resource {
		t.Fatalf("party details differ: %+v vs %+v", a, b)
	}
	if a.Job.JobID != b.Job.JobID || !a.Job.Start.Equal(b.Job.Start) || !a.Job.End.Equal(b.Job.End) {
		t.Fatalf("job details differ: %+v vs %+v", a.Job, b.Job)
	}
	if len(a.Usage) != len(b.Usage) {
		t.Fatalf("usage lines differ: %v vs %v", a.Usage, b.Usage)
	}
	for i := range a.Usage {
		if a.Usage[i] != b.Usage[i] {
			t.Fatalf("usage line %d differs: %v vs %v", i, a.Usage[i], b.Usage[i])
		}
	}
}

func TestPriceTotalsMatchPaperFormula(t *testing.T) {
	// 2 G$/CPU-h * 1.5h = 3; 0.1 G$/h * 2h = 0.2; 0.001 G$/MB-h * 512MB*2h
	// = 1.024; 0.0001 * 100*2 = 0.02; 0.01 G$/MB * 250MB = 2.5;
	// 10 G$/h * 30s = 0.083333 (rounded). Total = 6.827333.
	st, err := Price(sampleRecord(), sampleRateCard())
	if err != nil {
		t.Fatal(err)
	}
	want := currency.MustParse("6.827333")
	if st.Total != want {
		t.Fatalf("total = %s, want %s (lines: %+v)", st.Total, want, st.Lines)
	}
	if st.Currency != currency.GridDollar {
		t.Errorf("currency = %q", st.Currency)
	}
	if len(st.Lines) != 6 {
		t.Errorf("expected 6 priced lines, got %d", len(st.Lines))
	}
}

func TestPriceConformance(t *testing.T) {
	rec := sampleRecord()
	rc := sampleRateCard()
	delete(rc.Rates, ItemNetwork)
	if _, err := Price(rec, rc); err == nil {
		t.Fatal("non-conforming record (usage without rate) accepted")
	}
	// Zero-quantity unrated usage is fine.
	rec.SetQuantity(ItemNetwork, 0)
	if _, err := Price(rec, rc); err != nil {
		t.Fatalf("zero-usage unrated item rejected: %v", err)
	}
	// A rate with no usage contributes nothing.
	rec2 := sampleRecord()
	rec2.Usage = []Usage{{ItemCPU, 3600}}
	st, err := Price(rec2, sampleRateCard())
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != currency.FromG(2) {
		t.Fatalf("cpu-only total = %s, want 2", st.Total)
	}
}

func TestPriceRejectsInvalidInputs(t *testing.T) {
	bad := sampleRecord()
	bad.User.CertificateName = ""
	if _, err := Price(bad, sampleRateCard()); err == nil {
		t.Error("invalid record accepted")
	}
	rc := sampleRateCard()
	rc.Provider = ""
	if _, err := Price(sampleRecord(), rc); err == nil {
		t.Error("invalid rate card accepted")
	}
	rc2 := sampleRateCard()
	rc2.Currency = ""
	if _, err := Price(sampleRecord(), rc2); err == nil {
		t.Error("invalid currency accepted")
	}
	rc3 := sampleRateCard()
	rc3.Rates["bogus"] = currency.PerMB(1)
	if _, err := Price(sampleRecord(), rc3); err == nil {
		t.Error("unknown rate item accepted")
	}
	rc4 := sampleRateCard()
	rc4.Rates[ItemCPU] = currency.Rate{MicroPerUnit: -5, Unit: 1}
	if _, err := Price(sampleRecord(), rc4); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestPricePropertyMonotone(t *testing.T) {
	// More usage never costs less.
	rc := sampleRateCard()
	f := func(a, b uint16) bool {
		lo, hi := int64(a), int64(a)+int64(b)
		r1, r2 := sampleRecord(), sampleRecord()
		r1.SetQuantity(ItemCPU, lo)
		r2.SetQuantity(ItemCPU, hi)
		s1, err1 := Price(r1, rc)
		s2, err2 := Price(r2, rc)
		return err1 == nil && err2 == nil && s2.Total >= s1.Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestItemHelpers(t *testing.T) {
	for _, it := range AllItems {
		if !it.Known() {
			t.Errorf("AllItems contains unknown item %q", it)
		}
		if it.UnitName() == "?" {
			t.Errorf("item %q lacks a unit name", it)
		}
	}
	if Item("nope").Known() {
		t.Error("bogus item Known")
	}
	if Item("nope").UnitName() != "?" {
		t.Error("bogus item unit")
	}
}

func TestRateCardRateAccessor(t *testing.T) {
	rc := sampleRateCard()
	if _, ok := rc.Rate(ItemCPU); !ok {
		t.Error("Rate(cpu) missing")
	}
	if _, ok := rc.Rate("absent"); ok {
		t.Error("Rate(absent) present")
	}
}
