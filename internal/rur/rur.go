// Package rur implements the Resource Usage Record of §5.1 of the GridBank
// paper, following the Global Grid Forum usage-record structure the paper
// references: user details, job details, resource details, and one metered
// line per chargeable item (CPU, wall clock, memory, storage, network,
// software service).
//
// The paper deliberately leaves the on-disk format open ("whatever format
// is chosen (e.g. XML), GridBank stores RUR in binary format") so that Grid
// sites can define their own records and the Grid Resource Meter translates
// between formats. This package provides the canonical record, an XML
// encoding (the GGF direction), a compact JSON encoding, and the
// translation entry points the meter uses.
package rur

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"time"

	"gridbank/internal/currency"
)

// Item identifies one chargeable item category from §2.1 of the paper.
type Item string

// The chargeable items enumerated by the paper: processors (user CPU
// time), main memory, secondary storage, I/O channels (networking), and
// software libraries (system CPU time); wall-clock time appears in the RUR
// item list of §5.1.
const (
	ItemCPU       Item = "cpu"       // user CPU time, seconds
	ItemWallClock Item = "wallclock" // elapsed wall-clock time, seconds
	ItemMemory    Item = "memory"    // main memory, MB*seconds
	ItemStorage   Item = "storage"   // secondary storage, MB*seconds
	ItemNetwork   Item = "network"   // total network traffic, MB
	ItemSoftware  Item = "software"  // software/system CPU time, seconds
)

// AllItems lists every chargeable item in canonical order. Rates records
// and RURs must agree item-by-item (§2.1: "for every chargeable item in
// the rates record there must be a corresponding item in the RUR").
var AllItems = []Item{ItemCPU, ItemWallClock, ItemMemory, ItemStorage, ItemNetwork, ItemSoftware}

// Known reports whether the item is one of the paper's chargeable items.
func (i Item) Known() bool {
	switch i {
	case ItemCPU, ItemWallClock, ItemMemory, ItemStorage, ItemNetwork, ItemSoftware:
		return true
	}
	return false
}

// UnitName returns the measurement unit of the raw usage figure for the
// item, for display in statements and experiment tables.
func (i Item) UnitName() string {
	switch i {
	case ItemCPU, ItemWallClock, ItemSoftware:
		return "s"
	case ItemMemory, ItemStorage:
		return "MB·s"
	case ItemNetwork:
		return "MB"
	default:
		return "?"
	}
}

// Usage is one metered line of a record: the quantity consumed for one
// chargeable item, in the item's base unit.
type Usage struct {
	Item     Item  `json:"item" xml:"item,attr"`
	Quantity int64 `json:"quantity" xml:"quantity,attr"`
}

// UserDetails identifies the Grid Service Consumer on whose behalf the job
// ran.
type UserDetails struct {
	Host            string `json:"host" xml:"Host"`                        // host name / IP the job was submitted from
	CertificateName string `json:"certificate_name" xml:"CertificateName"` // Grid-wide unique ID of the GSC
}

// JobDetails describes the job the usage was accrued by.
type JobDetails struct {
	JobID       string    `json:"job_id" xml:"JobID"`            // global Grid job ID
	Application string    `json:"application" xml:"Application"` // application name
	Start       time.Time `json:"start" xml:"Start"`
	End         time.Time `json:"end" xml:"End"`
}

// ResourceDetails describes the resource that provided the service.
type ResourceDetails struct {
	Host            string `json:"host" xml:"Host"`
	CertificateName string `json:"certificate_name" xml:"CertificateName"` // Grid-wide unique ID of the GSP
	HostType        string `json:"host_type,omitempty" xml:"HostType,omitempty"`
	LocalJobID      string `json:"local_job_id" xml:"LocalJobID"` // local OS process id, to settle disputes
}

// Record is the standard OS-independent Resource Usage Record produced by
// the Grid Resource Meter's conversion unit (§2.1) and stored by GridBank
// as transaction evidence (§5.1).
type Record struct {
	User     UserDetails     `json:"user" xml:"User"`
	Job      JobDetails      `json:"job" xml:"Job"`
	Resource ResourceDetails `json:"resource" xml:"Resource"`
	Usage    []Usage         `json:"usage" xml:"Usage>Line"`
}

// Validation errors.
var (
	ErrNoConsumer    = errors.New("rur: missing consumer certificate name")
	ErrNoProvider    = errors.New("rur: missing provider certificate name")
	ErrBadInterval   = errors.New("rur: job end precedes start")
	ErrNegativeUsage = errors.New("rur: negative usage quantity")
	ErrDuplicateItem = errors.New("rur: duplicate usage item")
	ErrUnknownItem   = errors.New("rur: unknown usage item")
)

// Validate checks structural invariants that every record must satisfy
// before it can be priced or stored: both parties identified, a
// non-inverted job interval, and non-negative, non-duplicated usage lines
// limited to known chargeable items.
func (r *Record) Validate() error {
	if r.User.CertificateName == "" {
		return ErrNoConsumer
	}
	if r.Resource.CertificateName == "" {
		return ErrNoProvider
	}
	if r.Job.End.Before(r.Job.Start) {
		return fmt.Errorf("%w: start %v end %v", ErrBadInterval, r.Job.Start, r.Job.End)
	}
	seen := make(map[Item]bool, len(r.Usage))
	for _, u := range r.Usage {
		if !u.Item.Known() {
			return fmt.Errorf("%w: %q", ErrUnknownItem, u.Item)
		}
		if u.Quantity < 0 {
			return fmt.Errorf("%w: %s=%d", ErrNegativeUsage, u.Item, u.Quantity)
		}
		if seen[u.Item] {
			return fmt.Errorf("%w: %q", ErrDuplicateItem, u.Item)
		}
		seen[u.Item] = true
	}
	return nil
}

// Quantity returns the usage quantity recorded for the item, or 0 if the
// record has no line for it.
func (r *Record) Quantity(item Item) int64 {
	for _, u := range r.Usage {
		if u.Item == item {
			return u.Quantity
		}
	}
	return 0
}

// SetQuantity adds or replaces the usage line for an item.
func (r *Record) SetQuantity(item Item, q int64) {
	for i := range r.Usage {
		if r.Usage[i].Item == item {
			r.Usage[i].Quantity = q
			return
		}
	}
	r.Usage = append(r.Usage, Usage{Item: item, Quantity: q})
}

// Duration returns the job's wall-clock interval length.
func (r *Record) Duration() time.Duration { return r.Job.End.Sub(r.Job.Start) }

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	cp := *r
	cp.Usage = append([]Usage(nil), r.Usage...)
	return &cp
}

// Merge aggregates another record's usage into r. The paper's GRM "might
// choose to aggregate individual records into the standard RUR to reflect
// the charge for the combined GSP's service" (§2.1): a multi-resource
// provider meters each internal resource separately and presents one
// combined record to GridBank. The job interval widens to cover both
// records; usage quantities add item-wise.
func (r *Record) Merge(other *Record) error {
	if other.User.CertificateName != r.User.CertificateName {
		return fmt.Errorf("rur: cannot merge records for different consumers %q and %q",
			r.User.CertificateName, other.User.CertificateName)
	}
	if other.Job.JobID != r.Job.JobID {
		return fmt.Errorf("rur: cannot merge records for different jobs %q and %q",
			r.Job.JobID, other.Job.JobID)
	}
	for _, u := range other.Usage {
		r.SetQuantity(u.Item, r.Quantity(u.Item)+u.Quantity)
	}
	if other.Job.Start.Before(r.Job.Start) {
		r.Job.Start = other.Job.Start
	}
	if other.Job.End.After(r.Job.End) {
		r.Job.End = other.Job.End
	}
	return nil
}

// Format identifies a serialization of a Record. GridBank itself treats the
// record as an opaque blob (§5.1 NOTE); the meter translates between
// formats.
type Format string

// Supported encodings.
const (
	FormatJSON Format = "json"
	FormatXML  Format = "xml"
)

// Encode serializes the record in the requested format.
func Encode(r *Record, f Format) ([]byte, error) {
	switch f {
	case FormatJSON:
		return json.Marshal(r)
	case FormatXML:
		var buf bytes.Buffer
		buf.WriteString(xml.Header)
		enc := xml.NewEncoder(&buf)
		enc.Indent("", "  ")
		if err := enc.Encode(r); err != nil {
			return nil, err
		}
		if err := enc.Flush(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("rur: unknown format %q", f)
	}
}

// Decode parses a record previously produced by Encode. It sniffs the
// format: XML documents start with '<', everything else is treated as
// JSON. This is the translation hook the paper assigns to the Grid
// Resource Meter ("can then perform translations from one record format
// into another").
func Decode(b []byte) (*Record, error) {
	trimmed := bytes.TrimLeft(b, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, errors.New("rur: empty record")
	}
	var r Record
	if trimmed[0] == '<' {
		if err := xml.Unmarshal(trimmed, &r); err != nil {
			return nil, fmt.Errorf("rur: xml decode: %w", err)
		}
		return &r, nil
	}
	if err := json.Unmarshal(trimmed, &r); err != nil {
		return nil, fmt.Errorf("rur: json decode: %w", err)
	}
	return &r, nil
}

// XMLName gives the XML document element the GGF-ish name UsageRecord.
func (Record) XMLName() xml.Name { return xml.Name{Local: "UsageRecord"} }

// RateCard is the service-rates record generated by the Grid Trade Server
// (§2.1): one price per chargeable item plus the currency the prices are
// quoted in. A RateCard and a Record "must conform to each other": pricing
// fails if the record contains a non-zero usage line with no corresponding
// rate.
type RateCard struct {
	Provider string                 `json:"provider"`           // GSP certificate name the rates are quoted by
	Consumer string                 `json:"consumer,omitempty"` // GSC the quote is for ("" = posted price)
	Currency currency.Code          `json:"currency"`
	Rates    map[Item]currency.Rate `json:"rates"`
	Expires  time.Time              `json:"expires,omitempty"`
}

// Validate checks the rate card is well formed.
func (rc *RateCard) Validate() error {
	if rc.Provider == "" {
		return errors.New("rur: rate card missing provider")
	}
	if !rc.Currency.Valid() {
		return fmt.Errorf("rur: rate card has invalid currency %q", rc.Currency)
	}
	for item, rate := range rc.Rates {
		if !item.Known() {
			return fmt.Errorf("%w in rate card: %q", ErrUnknownItem, item)
		}
		if !rate.Valid() {
			return fmt.Errorf("rur: invalid rate for %s: %+v", item, rate)
		}
	}
	return nil
}

// Rate returns the rate for an item, defaulting to free for absent items
// only when the record's usage for that item is zero — callers should use
// Price, which enforces conformance.
func (rc *RateCard) Rate(item Item) (currency.Rate, bool) {
	r, ok := rc.Rates[item]
	return r, ok
}

// LineCharge is one priced line of a cost calculation: the usage, the rate
// applied, and the resulting charge.
type LineCharge struct {
	Item     Item            `json:"item"`
	Quantity int64           `json:"quantity"`
	Rate     currency.Rate   `json:"rate"`
	Charge   currency.Amount `json:"charge"`
}

// CostStatement is the full cost calculation the GridBank Charging Module
// produces from a record and a rate card (§2.1): per-item charges plus the
// total, ready to be signed by the GSP for non-repudiation.
type CostStatement struct {
	Lines    []LineCharge    `json:"lines"`
	Total    currency.Amount `json:"total"`
	Currency currency.Code   `json:"currency"`
}

// Price computes the total service cost: "the total charge is calculated
// by multiplying rate by usage for each item and then adding up individual
// charges" (§2.1). Conformance rule: a non-zero usage line whose item has
// no rate is an error (the GSP metered something it never quoted a price
// for), while a rated item with no usage line simply contributes zero.
func Price(rec *Record, rc *RateCard) (*CostStatement, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	st := &CostStatement{Currency: rc.Currency}
	var total currency.Amount
	for _, u := range rec.Usage {
		rate, ok := rc.Rates[u.Item]
		if !ok {
			if u.Quantity == 0 {
				continue
			}
			return nil, fmt.Errorf("rur: usage item %q has no corresponding rate (records must conform)", u.Item)
		}
		ch, err := rate.Charge(u.Quantity)
		if err != nil {
			return nil, fmt.Errorf("rur: pricing %s: %w", u.Item, err)
		}
		st.Lines = append(st.Lines, LineCharge{Item: u.Item, Quantity: u.Quantity, Rate: rate, Charge: ch})
		total, err = total.Add(ch)
		if err != nil {
			return nil, fmt.Errorf("rur: total overflow: %w", err)
		}
	}
	st.Total = total
	return st, nil
}
