package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int(l))
	}
}

// Logger is a leveled key=value logger. One logger replaces the ad-hoc
// Logf hooks that used to be scattered across the usage pipeline, the
// chaos harness, and the experiments — so a chaos-soak failure and a
// slow-op trace render in the same greppable format (seed=… trace=…).
//
// With derives child loggers that stamp fixed context pairs on every
// line. A nil *Logger discards everything, so components hold a plain
// field and "quiet" is the zero value.
type Logger struct {
	mu  *sync.Mutex
	out io.Writer
	min Level
	ctx string // pre-rendered " key=value" suffix from With
	now func() time.Time
}

// NewLogger writes lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, out: w, min: min, now: time.Now}
}

// WithClock returns a copy using now for timestamps (simulations,
// deterministic tests). Nil-safe.
func (l *Logger) WithClock(now func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	cp := *l
	cp.now = now
	return &cp
}

// With returns a child logger that appends the given key/value pairs
// to every line it emits. Pairs render once, here, not per line.
// Nil-safe: With on a nil logger stays nil.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	cp := *l
	var b strings.Builder
	b.WriteString(l.ctx)
	appendPairs(&b, kv)
	cp.ctx = b.String()
	return &cp
}

// Enabled reports whether lines at lv would be written.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(lv.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	b.WriteString(l.ctx)
	appendPairs(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.out, b.String())
}

// appendPairs renders kv as " key=value" pairs. A trailing odd value
// renders under the key "arg" rather than being dropped.
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		if i+1 >= len(kv) {
			b.WriteString("arg=")
			b.WriteString(formatValue(kv[i]))
			return
		}
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(formatValue(kv[i+1]))
	}
}

func formatValue(v any) string {
	s := fmt.Sprint(v)
	if strings.ContainsAny(s, " \t\n\"=") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}
