// Package obs is GridBank's zero-dependency telemetry layer: atomic
// counters, gauges, and sharded fixed-bucket latency histograms behind
// a named Registry with a deterministic Snapshot, plus trace-ID
// generation for wire-propagated request tracing and a leveled
// structured logger shared by the slow-op log and the chaos harness.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Registry or *Logger are no-ops, so instrumented code
// holds plain handles and "observability off" is just a nil registry —
// no branches, no interface indirection on the hot path.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depth, in-flight
// requests, applied sequence).
type Gauge struct{ v atomic.Int64 }

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one. No-op on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. No-op on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry names and owns a process's instruments. Get-or-create
// lookups take an RWMutex read lock only; instrumented code resolves
// handles once at construction and the hot path never touches the
// registry again.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gfuncs   map[string]func(now time.Time) int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gfuncs:   make(map[string]func(now time.Time) int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: fn is sampled at snapshot time
// with the snapshot's timestamp, so derived values (ages, lags) stay
// live without a background updater and stay deterministic under an
// injected clock. Re-registering a name replaces the callback. Names
// share the gauge namespace and must not collide with Gauge names.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func(now time.Time) int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gfuncs[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, with
// deterministic ordering: instruments sort by name within their kind.
type Snapshot struct {
	TakenAt  time.Time       `json:"taken_at"`
	Counters []CounterStat   `json:"counters,omitempty"`
	Gauges   []GaugeStat     `json:"gauges,omitempty"`
	Hists    []HistogramStat `json:"histograms,omitempty"`
}

// CounterStat is one counter in a Snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeStat is one gauge in a Snapshot.
type GaugeStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot copies every instrument. The result is deterministic for a
// quiescent registry: same instruments, same order, same values. A nil
// registry snapshots empty. now stamps TakenAt; pass the zero value to
// use time.Now.
func (r *Registry) Snapshot() Snapshot { return r.SnapshotAt(time.Now()) }

// SnapshotAt is Snapshot with an injected timestamp (simulated clocks,
// deterministic tests).
func (r *Registry) SnapshotAt(now time.Time) Snapshot {
	s := Snapshot{TakenAt: now}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s.Counters = make([]CounterStat, 0, len(r.counters))
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterStat{Name: name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	s.Gauges = make([]GaugeStat, 0, len(r.gauges)+len(r.gfuncs))
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeStat{Name: name, Value: g.Value()})
	}
	for name, fn := range r.gfuncs {
		s.Gauges = append(s.Gauges, GaugeStat{Name: name, Value: fn(now)})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	s.Hists = make([]HistogramStat, 0, len(r.hists))
	for name, h := range r.hists {
		s.Hists = append(s.Hists, h.stat(name))
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
