package obs

import (
	"testing"
	"time"
)

// These benchmarks price the hot-path primitives the instrumented
// subsystems call per request; BENCH_obs.json quotes them alongside the
// end-to-end A/B experiment.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench.gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}

func BenchmarkNewTraceID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewTraceID()
	}
}

func BenchmarkNilHandles(b *testing.B) {
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
	}
}
