package obs

import (
	"fmt"
	"io"
	"strings"
)

// promName maps a registry name ("server.op.Transfer.latency") onto a
// legal Prometheus metric name ("gridbank_server_op_Transfer_latency").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("gridbank_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. Histogram buckets and sums convert from the registry's
// microseconds to Prometheus's conventional seconds.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, c := range s.Counters {
		n := promName(c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		n := promName(h.Name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, float64(b.Le)/1e6, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			n, h.Count, n, float64(h.Sum)/1e6, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
