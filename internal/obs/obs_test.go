package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("counter handle not stable across lookups")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	var l *Logger
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(10)
	h.ObserveDuration(time.Millisecond)
	l.Info("dropped")
	l.With("k", "v").Error("dropped")
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Hists) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 1000 observations spread 1..1000: p50 ≈ 500, p99 ≈ 990, max = 1000.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	st := h.stat("lat")
	if st.Count != 1000 || st.Sum != 1000*1001/2 || st.Max != 1000 {
		t.Fatalf("count/sum/max = %d/%d/%d", st.Count, st.Sum, st.Max)
	}
	// Power-of-two buckets bound the estimate to within its bucket:
	// p50's true value 500 lives in [256,511], p99's 990 in [512,1023].
	if st.P50 < 256 || st.P50 > 511 {
		t.Fatalf("p50 = %d, want within [256,511]", st.P50)
	}
	if st.P90 < 512 || st.P90 > 1023 {
		t.Fatalf("p90 = %d, want within [512,1023]", st.P90)
	}
	if st.P99 < 512 || st.P99 > 1023 {
		t.Fatalf("p99 = %d, want within [512,1023]", st.P99)
	}
	if len(st.Buckets) == 0 || st.Buckets[len(st.Buckets)-1].Count != 1000 {
		t.Fatalf("cumulative buckets broken: %+v", st.Buckets)
	}
}

// TestHistogramRaceRecordVsSnapshot hammers a histogram from many
// goroutines while snapshotting concurrently; run under -race this is
// the tentpole's "recording vs snapshot" concurrency proof.
func TestHistogramRaceRecordVsSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	c := r.Counter("n")
	const writers, perWriter = 8, 2000
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < perWriter; i++ {
				h.Observe(seed*31 + i%977)
				c.Inc()
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-snapDone
	st := h.stat("lat")
	if st.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", st.Count, writers*perWriter)
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.mid"} {
		r.Counter("c." + n).Add(3)
		r.Gauge("g." + n).Set(9)
		r.Histogram("h." + n).Observe(42)
	}
	at := time.Unix(1700000000, 0)
	s1, s2 := r.SnapshotAt(at), r.SnapshotAt(at)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("quiescent snapshots differ:\n%+v\n%+v", s1, s2)
	}
	for i := 1; i < len(s1.Counters); i++ {
		if s1.Counters[i-1].Name >= s1.Counters[i].Name {
			t.Fatalf("counters not sorted: %+v", s1.Counters)
		}
	}
	for i := 1; i < len(s1.Hists); i++ {
		if s1.Hists[i-1].Name >= s1.Hists[i].Name {
			t.Fatalf("histograms not sorted: %+v", s1.Hists)
		}
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 24 {
			t.Fatalf("trace id %q: want 24 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestLoggerFormatAndLevels(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelInfo).WithClock(func() time.Time { return time.Unix(1700000000, 0) })
	l.Debug("hidden")
	child := l.With("seed", int64(123), "trace", "abc")
	child.Warn("slow op", "queue_wait_us", 15, "msg", "two words")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line leaked below min level: %q", out)
	}
	for _, want := range []string{"WARN slow op", "seed=123", "trace=abc", "queue_wait_us=15", `msg="two words"`, "2023-11-14T22:13:20.000Z"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log line %q missing %q", out, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Add(12)
	r.Gauge("usage.queue_depth").Set(3)
	r.Histogram("db.fsync").Observe(1000)
	var buf strings.Builder
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gridbank_server_requests_total counter",
		"gridbank_server_requests_total 12",
		"# TYPE gridbank_usage_queue_depth gauge",
		"gridbank_usage_queue_depth 3",
		"# TYPE gridbank_db_fsync_seconds histogram",
		`gridbank_db_fsync_seconds_bucket{le="+Inf"} 1`,
		"gridbank_db_fsync_seconds_sum 0.001",
		"gridbank_db_fsync_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFuncSampledAtSnapshotTime(t *testing.T) {
	r := NewRegistry()
	base := time.Unix(1700000000, 0)
	r.GaugeFunc("db.checkpoint_age_seconds", func(now time.Time) int64 {
		return now.Unix() - base.Unix()
	})
	s := r.SnapshotAt(base.Add(42 * time.Second))
	if len(s.Gauges) != 1 || s.Gauges[0].Name != "db.checkpoint_age_seconds" || s.Gauges[0].Value != 42 {
		t.Fatalf("gauge func snapshot = %+v; want one gauge at 42", s.Gauges)
	}
	// Same snapshot time, same value: deterministic under injected clocks.
	if again := r.SnapshotAt(base.Add(42 * time.Second)); again.Gauges[0].Value != 42 {
		t.Fatalf("resample = %d; want 42", again.Gauges[0].Value)
	}
	// A nil registry no-ops.
	var nilReg *Registry
	nilReg.GaugeFunc("x", func(time.Time) int64 { return 1 })
}
