package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets are fixed powers of two: bucket i counts
// observations whose bit length is i, i.e. values in [2^(i-1), 2^i).
// Bucketing is therefore a single bits.Len64 — no search, no bounds
// slice — and observations of latencies recorded in microseconds span
// 1µs..2^39µs (~6 days) before clamping into the overflow bucket.
const histBuckets = 40

// histShards spreads hot-path recording over independent cache lines;
// snapshots sum across shards. Shard choice hashes the observed value,
// so concurrent recorders of differing latencies land on different
// lines without any shared cursor.
const histShards = 4

type histShard struct {
	count  atomic.Int64
	sum    atomic.Int64
	counts [histBuckets]atomic.Int64
	_      [64]byte // pad shards onto separate cache lines
}

// Histogram is a sharded fixed-bucket histogram of int64 observations
// (GridBank records latencies in microseconds). Recording is
// allocation-free: one bits.Len64, three atomic adds, and at most one
// CAS loop for the running max.
type Histogram struct {
	shards [histShards]histShard
	max    atomic.Int64
}

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	s := &h.shards[(uint64(v)*0x9E3779B97F4A7C15)>>62%histShards]
	s.count.Add(1)
	s.sum.Add(v)
	s.counts[bucketIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records d in microseconds (sub-microsecond
// observations land in the lowest bucket). No-op on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d / time.Microsecond))
}

// ObserveSince records the elapsed time since start, in microseconds —
// `defer h.ObserveSince(time.Now())` times a whole function. No-op on
// a nil receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	h.ObserveDuration(time.Since(start))
}

// HistogramStat is one histogram in a Snapshot: totals, the running
// max, estimated quantiles, and the non-empty buckets (cumulative, for
// Prometheus rendering).
type HistogramStat struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is a cumulative bucket: Count observations were ≤ Le.
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

func (h *Histogram) stat(name string) HistogramStat {
	st := HistogramStat{Name: name}
	if h == nil {
		return st
	}
	var counts [histBuckets]int64
	for i := range h.shards {
		s := &h.shards[i]
		st.Count += s.count.Load()
		st.Sum += s.sum.Load()
		for b := range s.counts {
			counts[b] += s.counts[b].Load()
		}
	}
	st.Max = h.max.Load()
	if st.Count == 0 {
		return st
	}
	st.P50 = quantile(&counts, st.Count, 0.50)
	st.P90 = quantile(&counts, st.Count, 0.90)
	st.P99 = quantile(&counts, st.Count, 0.99)
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue // empty buckets contribute nothing cumulative either
		}
		cum += c
		st.Buckets = append(st.Buckets, HistogramBucket{Le: bucketUpper(i), Count: cum})
	}
	return st
}

// quantile estimates the q-quantile by linear interpolation inside the
// bucket where the cumulative count crosses q*total.
func quantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << uint(i-1)
			}
			hi := bucketUpper(i)
			frac := float64(target-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return bucketUpper(histBuckets - 1)
}
