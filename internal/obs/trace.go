package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// tracePrefix is a per-process random prefix so trace IDs from
// different processes (client fleets, gridbankd instances) never
// collide; the per-trace cost is then a single atomic increment
// instead of a crypto/rand read.
var tracePrefix = func() [8]byte {
	var p [8]byte
	if _, err := rand.Read(p[:]); err != nil {
		// crypto/rand failing is a broken platform; trace IDs are
		// diagnostics, not security, so fall back to a fixed prefix.
		copy(p[:], "gbtrace!")
	}
	return p
}()

var traceCounter atomic.Uint64

// NewTraceID returns a 24-hex-char process-unique trace ID: an
// 8-byte random per-process prefix followed by a 4-byte sequence.
// Cheap enough to stamp on every wire call.
func NewTraceID() string {
	var b [12]byte
	copy(b[:8], tracePrefix[:])
	binary.BigEndian.PutUint32(b[8:], uint32(traceCounter.Add(1)))
	return hex.EncodeToString(b[:])
}
