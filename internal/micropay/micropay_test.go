package micropay_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/micropay"
	"gridbank/internal/payment"
	"gridbank/internal/shard"
	"gridbank/internal/shard/simtest"
	"gridbank/internal/usage"
)

var testEpoch = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

// world is a sharded ledger + redeemer + pipeline over crash-survivable
// journals, with a drawer funded to issue chains and payees on both
// shard sides of the drawer.
type world struct {
	t        *testing.T
	journals []*simtest.Journal
	spoolJ   *simtest.Journal
	led      *shard.Ledger
	red      *micropay.Redeemer
	pipe     *micropay.Pipeline
	clock    time.Time // advanced by tests; read through nowFn
	crash    func(micropay.Boundary, string) error

	drawer    accounts.ID
	sameAcct  accounts.ID // payee on the drawer's shard
	crossAcct accounts.ID // payee on another shard
	sameCert  string
	crossCert string
	total     currency.Amount
}

func (w *world) nowFn() time.Time { return w.clock }

func newWorld(t *testing.T, shards int) *world {
	t.Helper()
	w := &world{t: t, clock: testEpoch, spoolJ: simtest.NewJournal()}
	w.journals = make([]*simtest.Journal, shards)
	for i := range w.journals {
		w.journals[i] = simtest.NewJournal()
	}
	w.boot()

	drawer, err := w.led.CreateAccount("CN=alice", "VO-X", "")
	if err != nil {
		t.Fatal(err)
	}
	w.drawer = drawer.AccountID
	ds := w.led.ShardFor(w.drawer)
	for i := 0; w.sameAcct == "" || (shards > 1 && w.crossAcct == ""); i++ {
		if i > 10000 {
			t.Fatal("could not place payees on both shard sides")
		}
		cert := fmt.Sprintf("CN=gsp-%d", i)
		a, err := w.led.CreateAccount(cert, "VO-X", "")
		if err != nil {
			t.Fatal(err)
		}
		if w.led.ShardFor(a.AccountID) == ds {
			if w.sameAcct == "" {
				w.sameAcct, w.sameCert = a.AccountID, cert
			}
		} else if w.crossAcct == "" {
			w.crossAcct, w.crossCert = a.AccountID, cert
		}
	}
	if err := w.led.Deposit(w.drawer, currency.FromG(1000)); err != nil {
		t.Fatal(err)
	}
	w.total, err = w.led.TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// boot (re)builds every store from its journal: redeemer recovery
// (chain-table scan + pin reseeding) runs in NewRedeemer, pipeline
// recovery in micropay.New.
func (w *world) boot() {
	w.t.Helper()
	stores := make([]*db.Store, len(w.journals))
	for i, j := range w.journals {
		j.Revive()
		st, err := db.Open(j)
		if err != nil {
			w.t.Fatalf("reboot shard %d: %v", i, err)
		}
		stores[i] = st
	}
	led, err := shard.New(stores, shard.Config{Now: w.nowFn})
	if err != nil {
		w.t.Fatal(err)
	}
	w.led = led
	red, err := micropay.NewRedeemer(usage.WrapSharded(led), w.nowFn)
	if err != nil {
		w.t.Fatal(err)
	}
	w.red = red
	w.spoolJ.Revive()
	spool, err := db.Open(w.spoolJ)
	if err != nil {
		w.t.Fatalf("reboot spool: %v", err)
	}
	pipe, err := micropay.New(micropay.Config{
		Redeemer:    red,
		FindAccount: led.FindByCertificate,
		Spool:       spool,
		Workers:     -1, // deterministic: settlement only via SettleOnce/Drain
		Now:         w.nowFn,
		CrashHook: func(b micropay.Boundary, serial string) error {
			if w.crash != nil {
				return w.crash(b, serial)
			}
			return nil
		},
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.pipe = pipe
}

func (w *world) reboot() {
	w.t.Helper()
	w.pipe.Close()
	w.boot()
}

// issue creates a chain from the drawer to payeeCert, locks its total,
// and registers the row — what Bank.RequestChain does, minus the wire.
func (w *world) issue(payeeCert string, length int, perWord currency.Amount, ttl time.Duration) *payment.Chain {
	w.t.Helper()
	ch, err := payment.NewChain(w.drawer, "CN=alice", payeeCert, length, perWord, currency.GridDollar, w.clock, ttl)
	if err != nil {
		w.t.Fatal(err)
	}
	total, err := ch.Commitment.Total()
	if err != nil {
		w.t.Fatal(err)
	}
	if err := w.led.CheckFunds(w.drawer, total); err != nil {
		w.t.Fatal(err)
	}
	if err := w.red.Put(&micropay.ChainRow{Commitment: ch.Commitment, State: micropay.StateOutstanding}); err != nil {
		w.t.Fatal(err)
	}
	return ch
}

func (w *world) word(ch *payment.Chain, i int) []byte {
	w.t.Helper()
	word, err := ch.Word(i)
	if err != nil {
		w.t.Fatal(err)
	}
	return word
}

func (w *world) avail(id accounts.ID) currency.Amount {
	w.t.Helper()
	a, err := w.led.Details(id)
	if err != nil {
		w.t.Fatal(err)
	}
	return a.AvailableBalance
}

func (w *world) locked(id accounts.ID) currency.Amount {
	w.t.Helper()
	a, err := w.led.Details(id)
	if err != nil {
		w.t.Fatal(err)
	}
	return a.LockedBalance
}

func (w *world) assertConserved() {
	w.t.Helper()
	total, err := w.led.TotalBalance()
	if err != nil {
		w.t.Fatal(err)
	}
	if total != w.total {
		w.t.Errorf("conservation violated: %s -> %s", w.total, total)
	}
	esc, err := w.led.PendingEscrow()
	if err != nil || !esc.IsZero() {
		w.t.Errorf("escrow residue = %v, %v", esc, err)
	}
}

// --- Redeemer ---------------------------------------------------------------

func TestRedeemSameShardIncremental(t *testing.T) {
	w := newWorld(t, 1)
	per := currency.MustParse("0.01")
	ch := w.issue(w.sameCert, 100, per, time.Hour)
	serial := ch.Commitment.Serial

	out, err := w.red.Redeem(serial, w.sameAcct, 25, w.word(ch, 25), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Paid != currency.MustParse("0.25") || out.Ticks != 25 || out.Index != 25 || out.TxID == 0 {
		t.Fatalf("redeem 25 = %+v", out)
	}
	// The second batch pays only the delta above the stored index.
	out, err = w.red.Redeem(serial, w.sameAcct, 40, w.word(ch, 40), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Paid != currency.MustParse("0.15") || out.Ticks != 15 {
		t.Fatalf("redeem 40 = %+v", out)
	}
	if got := w.avail(w.sameAcct); got != currency.MustParse("0.40") {
		t.Fatalf("payee = %s", got)
	}
	if got := w.locked(w.drawer); got != currency.MustParse("0.60") {
		t.Fatalf("drawer locked = %s", got)
	}
	// Replay of either settled claim is a stale-index duplicate.
	if _, err := w.red.Redeem(serial, w.sameAcct, 25, w.word(ch, 25), nil); !errors.Is(err, micropay.ErrStaleIndex) {
		t.Fatalf("replay err = %v", err)
	}
	w.assertConserved()
}

func TestRedeemCrossShardPinned(t *testing.T) {
	w := newWorld(t, 3)
	per := currency.MustParse("0.01")
	ch := w.issue(w.crossCert, 50, per, time.Hour)

	out, err := w.red.Redeem(ch.Commitment.Serial, w.crossAcct, 30, w.word(ch, 30), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CrossShard || out.Paid != currency.MustParse("0.30") || out.Index != 30 {
		t.Fatalf("cross redeem = %+v", out)
	}
	if got := w.avail(w.crossAcct); got != currency.MustParse("0.30") {
		t.Fatalf("payee = %s", got)
	}
	row, err := w.red.Get(ch.Commitment.Serial)
	if err != nil || row.PinTxID != 0 || row.RedeemedIndex != 30 {
		t.Fatalf("row after cross redeem = %+v, %v", row, err)
	}
	w.assertConserved()
}

func TestRedeemFullThenReplayIsStaleNotState(t *testing.T) {
	// A replayed claim against a finished chain must read as a
	// duplicate (ErrStaleIndex), not a state complaint — recovery code
	// resubmitting a settled claim relies on the distinction.
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 5, currency.FromG(1), time.Hour)
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 5, w.word(ch, 5), nil); err != nil {
		t.Fatal(err)
	}
	row, err := w.red.Get(ch.Commitment.Serial)
	if err != nil || row.State != micropay.StateRedeemed {
		t.Fatalf("row = %+v, %v", row, err)
	}
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 5, w.word(ch, 5), nil); !errors.Is(err, micropay.ErrStaleIndex) {
		t.Fatalf("replay on finished chain = %v", err)
	}
}

func TestReleaseUnlocksRemainder(t *testing.T) {
	w := newWorld(t, 1)
	per := currency.FromG(1)
	ch := w.issue(w.sameCert, 10, per, time.Hour)
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 4, w.word(ch, 4), nil); err != nil {
		t.Fatal(err)
	}
	out, err := w.red.Release(ch.Commitment.Serial, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Paid != currency.FromG(6) || out.State != micropay.StateReleased {
		t.Fatalf("release = %+v", out)
	}
	if got := w.locked(w.drawer); !got.IsZero() {
		t.Fatalf("drawer locked after release = %s", got)
	}
	// Neither a second release nor a late redemption may touch money.
	if _, err := w.red.Release(ch.Commitment.Serial, nil); !errors.Is(err, micropay.ErrChainState) {
		t.Fatalf("double release = %v", err)
	}
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 7, w.word(ch, 7), nil); !errors.Is(err, micropay.ErrChainState) {
		t.Fatalf("redeem after release = %v", err)
	}
	w.assertConserved()
}

func TestReleaseGateBlocksFlip(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
	gateErr := errors.New("gate says no")
	if _, err := w.red.Release(ch.Commitment.Serial, func(*micropay.ChainRow) error { return gateErr }); !errors.Is(err, gateErr) {
		t.Fatalf("gated release = %v", err)
	}
	// Chain stays redeemable.
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 1, w.word(ch, 1), nil); err != nil {
		t.Fatalf("redeem after refused release: %v", err)
	}
}

func TestRedeemUnknownSerial(t *testing.T) {
	w := newWorld(t, 1)
	if _, err := w.red.Redeem("no-such-chain", w.sameAcct, 1, make([]byte, 32), nil); !errors.Is(err, micropay.ErrUnknownChain) {
		t.Fatalf("unknown serial = %v", err)
	}
}

func TestRedeemForgedWordRefused(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
	forged := make([]byte, 32)
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 3, forged, nil); !errors.Is(err, payment.ErrBadWord) {
		t.Fatalf("forged word = %v", err)
	}
	// An inflated index with a real (lower) word must also fail.
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 6, w.word(ch, 5), nil); !errors.Is(err, payment.ErrBadWord) {
		t.Fatalf("inflated index = %v", err)
	}
	if got := w.avail(w.sameAcct); !got.IsZero() {
		t.Fatalf("payee credited on refusal: %s", got)
	}
}

func TestRedeemerRecoversLegacyRowWithoutWord(t *testing.T) {
	// Rows advanced before RedeemedWord existed verify the slow way
	// once, then re-anchor on the first successful claim.
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 20, currency.FromG(1), time.Hour)
	row, err := w.red.Get(ch.Commitment.Serial)
	if err != nil {
		t.Fatal(err)
	}
	legacy := *row
	legacy.RedeemedIndex = 5
	legacy.RedeemedWord = nil
	if err := w.red.Put(&legacy); err != nil {
		t.Fatal(err)
	}
	// Balance the books for the pre-advanced 5 words.
	if err := w.led.Unlock(w.drawer, currency.FromG(5)); err != nil {
		t.Fatal(err)
	}
	out, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 9, w.word(ch, 9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Paid != currency.FromG(4) || out.Ticks != 4 {
		t.Fatalf("legacy redeem = %+v", out)
	}
	row, err = w.red.Get(ch.Commitment.Serial)
	if err != nil || len(row.RedeemedWord) == 0 {
		t.Fatalf("row not re-anchored: %+v, %v", row, err)
	}
}

// --- Pipeline ---------------------------------------------------------------

func claimsFor(t *testing.T, ch *payment.Chain, indices ...int) []micropay.Claim {
	t.Helper()
	out := make([]micropay.Claim, 0, len(indices))
	for _, i := range indices {
		word, err := ch.Word(i)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, micropay.Claim{Serial: ch.Commitment.Serial, Index: i, Word: word})
	}
	return out
}

func TestPipelineStreamsAndSettles(t *testing.T) {
	w := newWorld(t, 1)
	per := currency.MustParse("0.001")
	ch := w.issue(w.sameCert, 500, per, time.Hour)

	res, err := w.pipe.Submit(w.sameCert, claimsFor(t, ch, 100, 200, 300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.AcceptedTicks != 300 || len(res.Rejected) != 0 {
		t.Fatalf("submit = %+v", res)
	}
	st, err := w.pipe.Drain(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.SettledTicks != 300 || st.Pending != 0 {
		t.Fatalf("drain = %+v", st)
	}
	if got := w.avail(w.sameAcct); got != currency.MustParse("0.3") {
		t.Fatalf("payee = %s", got)
	}
	// All three claims for the chain coalesced into few redemptions.
	if st.Batches == 0 || st.SettledClaims != 3 {
		t.Fatalf("batching counters = %+v", st)
	}
	w.assertConserved()
}

func TestPipelineResubmitIsIdempotent(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 100, currency.MustParse("0.01"), time.Hour)
	if _, err := w.pipe.Submit(w.sameCert, claimsFor(t, ch, 10, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.pipe.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The whole batch again, plus one genuinely new claim.
	res, err := w.pipe.Submit(w.sameCert, claimsFor(t, ch, 10, 20, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicates != 2 || res.Accepted != 1 || res.AcceptedTicks != 10 {
		t.Fatalf("resubmit = %+v", res)
	}
	if _, err := w.pipe.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := w.avail(w.sameAcct); got != currency.MustParse("0.30") {
		t.Fatalf("payee after resubmit = %s (exactly-once violated)", got)
	}
	w.assertConserved()
}

func TestPipelineRejectsTyped(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
	expired := w.issue(w.sameCert, 10, currency.FromG(1), time.Minute)
	w.clock = w.clock.Add(2 * time.Minute) // expire the second chain

	forged := micropay.Claim{Serial: ch.Commitment.Serial, Index: 3, Word: make([]byte, 32)}
	unknown := micropay.Claim{Serial: "ghost", Index: 1, Word: make([]byte, 32)}
	short := micropay.Claim{Serial: ch.Commitment.Serial, Index: 4, Word: []byte("stub")}
	zero := micropay.Claim{Serial: ch.Commitment.Serial, Index: 0, Word: make([]byte, 32)}
	late := claimsFor(t, expired, 1)[0]

	res, err := w.pipe.Submit(w.sameCert, []micropay.Claim{forged, unknown, short, zero, late})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || len(res.Rejected) != 5 {
		t.Fatalf("submit = %+v", res)
	}
	reasons := map[string]string{}
	for _, rej := range res.Rejected {
		reasons[fmt.Sprintf("%s/%d", rej.Serial, rej.Index)] = rej.Reason
	}
	for key, want := range map[string]string{
		fmt.Sprintf("%s/3", ch.Commitment.Serial): "word",
		"ghost/1": "unknown",
		fmt.Sprintf("%s/4", ch.Commitment.Serial):      "word",
		fmt.Sprintf("%s/0", ch.Commitment.Serial):      "index",
		fmt.Sprintf("%s/1", expired.Commitment.Serial): "expired",
	} {
		if !strings.Contains(reasons[key], want) {
			t.Errorf("rejection[%s] = %q, want mention of %q", key, reasons[key], want)
		}
	}
}

func TestPipelineEnforcesPayeeBinding(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
	// A different certificate streaming someone else's chain is refused.
	res, err := w.pipe.Submit("CN=thief", claimsFor(t, ch, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || len(res.Rejected) != 1 || !strings.Contains(res.Rejected[0].Reason, "payable") {
		t.Fatalf("thief submit = %+v", res)
	}
	// Admin relay ("" payee) is allowed; money still goes to the
	// chain's own payee.
	res, err = w.pipe.Submit("", claimsFor(t, ch, 1))
	if err != nil || res.Accepted != 1 {
		t.Fatalf("relay submit = %+v, %v", res, err)
	}
	if _, err := w.pipe.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := w.avail(w.sameAcct); got != currency.FromG(1) {
		t.Fatalf("payee = %s", got)
	}
}

func TestPipelineBackpressure(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 100, currency.MustParse("0.01"), time.Hour)
	w.pipe.Close()
	spool, err := db.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := micropay.New(micropay.Config{
		Redeemer:    w.red,
		FindAccount: w.led.FindByCertificate,
		Spool:       spool,
		Workers:     -1,
		MaxPending:  2,
		Now:         w.nowFn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	if _, err := pipe.Submit(w.sameCert, claimsFor(t, ch, 1, 2, 3)); !errors.Is(err, micropay.ErrOverloaded) {
		t.Fatalf("overfull submit = %v", err)
	}
	// Under the bound it goes through; a settle frees the capacity.
	if _, err := pipe.Submit(w.sameCert, claimsFor(t, ch, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Submit(w.sameCert, claimsFor(t, ch, 3, 4)); err != nil {
		t.Fatalf("submit after drain = %v", err)
	}
}

func TestPipelineCrossShardStream(t *testing.T) {
	w := newWorld(t, 3)
	ch := w.issue(w.crossCert, 100, currency.MustParse("0.01"), time.Hour)
	if _, err := w.pipe.Submit(w.crossCert, claimsFor(t, ch, 50, 80)); err != nil {
		t.Fatal(err)
	}
	st, err := w.pipe.Drain(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.SettledTicks != 80 || st.CrossShard == 0 {
		t.Fatalf("drain = %+v", st)
	}
	if got := w.avail(w.crossAcct); got != currency.MustParse("0.80") {
		t.Fatalf("payee = %s", got)
	}
	w.assertConserved()
}

func TestPipelineRecoversSpooledClaims(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 100, currency.MustParse("0.01"), time.Hour)
	if _, err := w.pipe.Submit(w.sameCert, claimsFor(t, ch, 10, 40)); err != nil {
		t.Fatal(err)
	}
	// Die before any settlement; the spool carries the claims over.
	w.reboot()
	st, err := w.pipe.Drain(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.SettledTicks != 40 {
		t.Fatalf("recovered drain = %+v", st)
	}
	if got := w.avail(w.sameAcct); got != currency.MustParse("0.40") {
		t.Fatalf("payee = %s", got)
	}
	w.assertConserved()
}

func TestPipelineBackgroundWorkersSettle(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 200, currency.MustParse("0.001"), time.Hour)
	w.pipe.Close()
	spool, err := db.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := micropay.New(micropay.Config{
		Redeemer:    w.red,
		FindAccount: w.led.FindByCertificate,
		Spool:       spool,
		Workers:     2,
		Now:         w.nowFn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	for i := 10; i <= 200; i += 10 {
		if _, err := pipe.Submit(w.sameCert, claimsFor(t, ch, i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := pipe.Drain(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.SettledTicks != 200 || st.Pending != 0 {
		t.Fatalf("drain = %+v", st)
	}
	if got := w.avail(w.sameAcct); got != currency.MustParse("0.2") {
		t.Fatalf("payee = %s", got)
	}
}
