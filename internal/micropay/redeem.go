package micropay

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/shard"
	"gridbank/internal/strhash"
	"gridbank/internal/usage"
)

// redeemStripes is the shard count of the redeemer's per-serial lock.
const redeemStripes = 64

// Outcome reports one redemption or release.
type Outcome struct {
	// TxID is the TRANSFER transaction ID (0 when no money moved).
	TxID uint64
	// Paid is the amount moved to the payee (redeem) or unlocked back
	// to the drawer (release).
	Paid currency.Amount
	// Ticks is how many chain words this call newly paid for.
	Ticks int
	// Index is the chain's redeemed index after the call.
	Index int
	// State is the chain row state after the call.
	State string
	// CrossShard reports the pinned 2PC path was used.
	CrossShard bool
}

// Redeemer owns GridHash chain state transitions against the ledger.
// Every mutation of a chain row — issuance, redemption, release — goes
// through one Redeemer instance so the per-serial stripe lock serializes
// the synchronous bank path and the streaming pipeline against each
// other.
//
// The correctness core: for a same-shard redemption (payee on the
// drawer's shard) the locked-balance debit, the payee credit, both §5.1
// TRANSACTION rows, the TRANSFER record and the chain row advance
// commit in ONE store transaction. Either the money moved and the row
// says so, or neither happened. A cross-shard redemption pins its
// transaction ID (plus target index, word, payee and evidence) in the
// chain row write-ahead, drives the 2PC transfer under the pinned ID,
// and only then advances the row — a crash anywhere re-drives the same
// transfer and the monotone RedeemedIndex makes the replayed claim
// stale. The row is the exactly-once marker.
type Redeemer struct {
	led   usage.Ledger
	cross usage.CrossShardLedger // nil when the ledger cannot cross shards
	rs    rows
	now   func() time.Time
	locks [redeemStripes]sync.Mutex

	// Hook fires after every durable step with the boundary and serial;
	// returning an error abandons processing at that point (simulated
	// process death). Test instrumentation only; set before use.
	Hook func(b Boundary, serial string) error
}

// NewRedeemer builds a redeemer over the ledger, ensures the chain
// table on every shard store, and finishes crash recovery bookkeeping:
// the transaction-ID allocator is reseeded above every pinned ID found
// in a chain row, so fresh transfers never collide with a
// pinned-but-unfinished redemption. Like the usage pipeline, this must
// run before the ledger serves traffic.
func NewRedeemer(led usage.Ledger, now func() time.Time) (*Redeemer, error) {
	if led == nil {
		return nil, errors.New("micropay: redeemer requires a ledger")
	}
	if now == nil {
		now = time.Now
	}
	cross, _ := led.(usage.CrossShardLedger)
	if led.Shards() > 1 && cross == nil {
		return nil, errors.New("micropay: a multi-shard ledger must implement CrossShardLedger")
	}
	r := &Redeemer{led: led, cross: cross, rs: rows{led: led}, now: now}
	var maxPin uint64
	for i := 0; i < led.Shards(); i++ {
		st := led.ShardStore(i)
		if err := st.EnsureTable(TableChains); err != nil {
			return nil, err
		}
		var scanErr error
		err := st.Scan(TableChains, func(key string, value []byte) bool {
			row, err := decodeChainRow(value)
			if err != nil {
				scanErr = fmt.Errorf("micropay: chain %s: %w", key, err)
				return false
			}
			if row.PinTxID > maxPin {
				maxPin = row.PinTxID
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if scanErr != nil {
			return nil, scanErr
		}
	}
	if maxPin > 0 {
		if cross == nil {
			return nil, fmt.Errorf("micropay: chain rows hold pinned transaction IDs (max %d) but the ledger cannot cross shards", maxPin)
		}
		cross.SeedTxIDsAbove(maxPin)
	}
	return r, nil
}

// Ledger returns the settlement target.
func (r *Redeemer) Ledger() usage.Ledger { return r.led }

func (r *Redeemer) lock(serial string) *sync.Mutex {
	return &r.locks[strhash.FNV32a(serial)%redeemStripes]
}

func (r *Redeemer) hook(b Boundary, serial string) error {
	if r.Hook == nil {
		return nil
	}
	return r.Hook(b, serial)
}

// Put registers a freshly issued chain on the drawer's home shard.
func (r *Redeemer) Put(row *ChainRow) error {
	mu := r.lock(row.Commitment.Serial)
	mu.Lock()
	defer mu.Unlock()
	return r.rs.put(row)
}

// Get returns the chain row (read-only; an unfinished pin is left
// untouched — the next mutation finishes it).
func (r *Redeemer) Get(serial string) (*ChainRow, error) {
	row, _, err := r.rs.get(serial)
	return row, err
}

// Delete removes a chain row wherever it lives (admin/test plumbing).
func (r *Redeemer) Delete(serial string) error {
	mu := r.lock(serial)
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < r.led.Shards(); i++ {
		err := r.led.ShardStore(i).Update(func(tx *db.Tx) error {
			ok, err := tx.Exists(TableChains, serial)
			if err != nil || !ok {
				return err
			}
			return tx.Delete(TableChains, serial)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Redeem advances the chain to target, paying the payee
// (target − RedeemedIndex) × PerWord out of the drawer's locked funds.
// word must be the chain word at target; it is verified incrementally
// against the row's anchor in O(target − RedeemedIndex) hashes. rurEv
// is stored in the TRANSFER record as §5.1 evidence.
//
// A target at or below the redeemed position returns ErrStaleIndex even
// on a finished chain — a replayed claim is a duplicate, never an
// error about chain state — so crash-recovery resubmission is
// idempotent.
func (r *Redeemer) Redeem(serial string, payee accounts.ID, target int, word, rurEv []byte) (*Outcome, error) {
	mu := r.lock(serial)
	mu.Lock()
	defer mu.Unlock()

	row, at, err := r.rs.get(serial)
	if err != nil {
		return nil, err
	}
	if row.PinTxID != 0 {
		if row, at, err = r.finishPin(row, at); err != nil {
			return nil, err
		}
	}
	if target <= row.RedeemedIndex {
		return nil, fmt.Errorf("%w: claim %d, already redeemed to %d", ErrStaleIndex, target, row.RedeemedIndex)
	}
	if row.State != StateOutstanding {
		return nil, fmt.Errorf("%w: chain %s is %s", ErrChainState, serial, row.State)
	}
	if err := row.verifyClaimWord(target, word); err != nil {
		return nil, err
	}
	delta, err := row.Commitment.PerWord.MulInt(int64(target - row.RedeemedIndex))
	if err != nil {
		return nil, err
	}
	home := r.rs.home(row)
	if r.led.ShardFor(payee) == home {
		return r.redeemSame(row, at, home, payee, target, word, rurEv, delta)
	}
	return r.redeemCross(row, at, home, payee, target, word, rurEv, delta)
}

// redeemSame applies a same-shard redemption in one store transaction.
// Caller holds the serial's stripe lock.
func (r *Redeemer) redeemSame(row *ChainRow, at, home int, payee accounts.ID, target int, word, rurEv []byte, delta currency.Amount) (*Outcome, error) {
	serial := row.Commitment.Serial
	drawer := row.Commitment.DrawerAccountID
	if drawer == payee {
		return nil, fmt.Errorf("%w: chain %s pays its own drawer", accounts.ErrBadAmount, serial)
	}
	mgr := r.led.ShardManager(home)
	st := r.led.ShardStore(home)
	now := r.now()
	ticks := 0
	var txID uint64
	var out ChainRow
	err := st.Update(func(tx *db.Tx) error {
		// The closure may rerun on conflict: recompute everything from
		// the transaction's view. The row itself is re-read so the
		// advance builds on committed state; a miss means the row still
		// lives at its legacy location and migrates home right here.
		cur := row
		if raw, err := tx.Get(TableChains, serial); err == nil {
			c, derr := decodeChainRow(raw)
			if derr != nil {
				return derr
			}
			cur = c
		} else if !errors.Is(err, db.ErrNoRecord) {
			return err
		}
		if target <= cur.RedeemedIndex {
			return fmt.Errorf("%w: claim %d, already redeemed to %d", ErrStaleIndex, target, cur.RedeemedIndex)
		}
		if cur.State != StateOutstanding {
			return fmt.Errorf("%w: chain %s is %s", ErrChainState, serial, cur.State)
		}
		ticks = target - cur.RedeemedIndex

		from, err := accounts.GetAccountTx(tx, drawer)
		if errors.Is(err, db.ErrNoRecord) {
			return fmt.Errorf("%w: drawer %s", accounts.ErrNotFound, drawer)
		} else if err != nil {
			return err
		}
		to, err := accounts.GetAccountTx(tx, payee)
		if errors.Is(err, db.ErrNoRecord) {
			return fmt.Errorf("%w: payee %s", accounts.ErrNotFound, payee)
		} else if err != nil {
			return err
		}
		if to.Closed {
			return fmt.Errorf("%w: payee %s", accounts.ErrClosed, payee)
		}
		if to.Currency != from.Currency {
			return fmt.Errorf("%w: drawer %s, payee %s", accounts.ErrCurrencyMismatch, from.Currency, to.Currency)
		}
		if from.LockedBalance.Cmp(delta) < 0 {
			return fmt.Errorf("%w: locked %s < %s", accounts.ErrInsufficientLock, from.LockedBalance, delta)
		}
		from.LockedBalance = from.LockedBalance.MustSub(delta)
		to.AvailableBalance = to.AvailableBalance.MustAdd(delta)
		if err := accounts.PutAccountTx(tx, from); err != nil {
			return err
		}
		if err := accounts.PutAccountTx(tx, to); err != nil {
			return err
		}
		neg, err := delta.Neg()
		if err != nil {
			return err
		}
		txID, err = mgr.AppendTransactionTx(tx, &accounts.Transaction{
			AccountID: drawer, Type: accounts.TxTransfer, Date: now, Amount: neg,
		})
		if err != nil {
			return err
		}
		if _, err := mgr.AppendTransactionTx(tx, &accounts.Transaction{
			TransactionID: txID, AccountID: payee, Type: accounts.TxTransfer, Date: now, Amount: delta,
		}); err != nil {
			return err
		}
		if err := mgr.InsertTransferTx(tx, &accounts.Transfer{
			TransactionID:       txID,
			Date:                now,
			DrawerAccountID:     drawer,
			Amount:              delta,
			RecipientAccountID:  payee,
			ResourceUsageRecord: rurEv,
		}); err != nil {
			return err
		}
		out = *cur
		out.RedeemedIndex = target
		out.RedeemedWord = word
		if target == out.Commitment.Length {
			out.State = StateRedeemed
		}
		return tx.Put(TableChains, serial, out.encode())
	})
	if err != nil {
		return nil, err
	}
	if err := r.hook(BoundarySettled, serial); err != nil {
		return nil, err
	}
	r.rs.dropStray(serial, at, home)
	return &Outcome{TxID: txID, Paid: delta, Ticks: ticks, Index: target, State: out.State}, nil
}

// redeemCross runs a cross-shard redemption: pin the intent in the
// chain row, drive the pinned 2PC transfer, advance the row. Caller
// holds the serial's stripe lock.
func (r *Redeemer) redeemCross(row *ChainRow, at, home int, payee accounts.ID, target int, word, rurEv []byte, delta currency.Amount) (*Outcome, error) {
	serial := row.Commitment.Serial
	pinned := *row
	pinned.PinTxID = r.cross.AllocTxID()
	pinned.PinIndex = target
	pinned.PinWord = word
	pinned.PinPayee = payee
	pinned.PinRUR = rurEv
	if err := r.rs.put(&pinned); err != nil {
		return nil, err
	}
	r.rs.dropStray(serial, at, home)
	if err := r.hook(BoundaryPinned, serial); err != nil {
		return nil, err
	}
	adv, ticks, err := r.drivePin(&pinned, delta)
	if err != nil {
		return nil, err
	}
	return &Outcome{TxID: pinned.PinTxID, Paid: delta, Ticks: ticks, Index: adv.RedeemedIndex, State: adv.State, CrossShard: true}, nil
}

// finishPin completes the pinned redemption a crash (or abandon) left in
// a chain row, returning the row as it stands afterwards. A pin whose
// transfer can never succeed is cleared without advancing — the money
// provably did not move. Caller holds the serial's stripe lock.
func (r *Redeemer) finishPin(row *ChainRow, at int) (*ChainRow, int, error) {
	home := r.rs.home(row)
	delta, err := row.Commitment.PerWord.MulInt(int64(row.PinIndex - row.RedeemedIndex))
	if err != nil {
		return nil, 0, err
	}
	if row.PinIndex <= row.RedeemedIndex || !delta.IsPositive() {
		// Malformed pin (cannot happen through Redeem): clear it.
		cleared, err := r.unpin(row)
		return cleared, home, err
	}
	adv, _, err := r.drivePin(row, delta)
	if err != nil {
		if terminal := r.unpinnable(err); terminal != nil {
			cleared, uerr := r.unpin(row)
			if uerr != nil {
				return nil, 0, uerr
			}
			return cleared, home, nil
		}
		return nil, 0, err
	}
	r.rs.dropStray(row.Commitment.Serial, at, home)
	return adv, home, nil
}

// unpinnable classifies transfer errors that prove the pinned transfer
// never ran and never will: the pin can be dropped. In-doubt and
// transient faults return nil — the pin must stay until resolved.
func (r *Redeemer) unpinnable(err error) error {
	if errors.Is(err, shard.ErrInDoubt) {
		return nil
	}
	if errors.Is(err, accounts.ErrNotFound) ||
		errors.Is(err, accounts.ErrClosed) ||
		errors.Is(err, accounts.ErrCurrencyMismatch) ||
		errors.Is(err, accounts.ErrInsufficient) ||
		errors.Is(err, accounts.ErrInsufficientLock) ||
		errors.Is(err, accounts.ErrBadAmount) {
		return err
	}
	return nil
}

// unpin clears a dead pin without advancing the row.
func (r *Redeemer) unpin(row *ChainRow) (*ChainRow, error) {
	cleared := *row
	cleared.PinTxID = 0
	cleared.PinIndex = 0
	cleared.PinWord = nil
	cleared.PinPayee = ""
	cleared.PinRUR = nil
	if err := r.rs.put(&cleared); err != nil {
		return nil, err
	}
	return &cleared, nil
}

// drivePin resolves and (re-)drives the pinned transfer, then advances
// the chain row and clears the pin. Idempotent: if the transfer already
// landed it is not re-run; if the row is already advanced the advance
// transaction is a no-op. Returns the advanced row and how many ticks
// the advance covered.
func (r *Redeemer) drivePin(row *ChainRow, delta currency.Amount) (*ChainRow, int, error) {
	serial := row.Commitment.Serial
	home := r.rs.home(row)
	if err := r.cross.ResolveInDoubt(home, row.PinTxID); err != nil {
		return nil, 0, fmt.Errorf("micropay: resolving pinned transfer %d: %w", row.PinTxID, err)
	}
	if _, err := r.cross.GetTransfer(row.PinTxID); err != nil {
		if !errors.Is(err, accounts.ErrNoSuchTransfer) {
			return nil, 0, err
		}
		if _, terr := r.cross.TransferWithID(row.PinTxID, row.Commitment.DrawerAccountID, row.PinPayee, delta,
			accounts.TransferOptions{FromLocked: true, RUR: row.PinRUR}); terr != nil {
			if errors.Is(terr, shard.ErrInDoubt) {
				return nil, 0, fmt.Errorf("micropay: chain %s redemption in doubt: %w", serial, terr)
			}
			return nil, 0, terr
		}
	}
	if err := r.hook(BoundarySettled, serial); err != nil {
		return nil, 0, err
	}

	// Advance and unpin in one transaction on the home store. The
	// transfer is durable; from here on a crash replays into the
	// idempotent branch above (GetTransfer finds the pin) and lands
	// back here.
	ticks := 0
	var out ChainRow
	err := r.led.ShardStore(home).Update(func(tx *db.Tx) error {
		cur := row
		if raw, err := tx.Get(TableChains, serial); err == nil {
			c, derr := decodeChainRow(raw)
			if derr != nil {
				return derr
			}
			cur = c
		} else if !errors.Is(err, db.ErrNoRecord) {
			return err
		}
		out = *cur
		ticks = 0
		if cur.PinTxID == row.PinTxID { // not yet advanced
			ticks = cur.PinIndex - cur.RedeemedIndex
			out.RedeemedIndex = cur.PinIndex
			out.RedeemedWord = cur.PinWord
			out.PinTxID = 0
			out.PinIndex = 0
			out.PinWord = nil
			out.PinPayee = ""
			out.PinRUR = nil
			if out.RedeemedIndex == out.Commitment.Length {
				out.State = StateRedeemed
			}
		}
		return tx.Put(TableChains, serial, out.encode())
	})
	if err != nil {
		return nil, 0, err
	}
	if err := r.hook(BoundaryAdvanced, serial); err != nil {
		return nil, 0, err
	}
	return &out, ticks, nil
}

// Release flips an outstanding chain to released and unlocks the
// unredeemed remainder back to the drawer, in one transaction on the
// drawer's shard. gate runs under the serial's stripe lock with the
// current row (pins already finished) — the bank's caller/expiry checks
// go there, so an in-flight redemption and a release can never
// interleave between check and act.
func (r *Redeemer) Release(serial string, gate func(*ChainRow) error) (*Outcome, error) {
	mu := r.lock(serial)
	mu.Lock()
	defer mu.Unlock()

	row, at, err := r.rs.get(serial)
	if err != nil {
		return nil, err
	}
	if row.PinTxID != 0 {
		if row, at, err = r.finishPin(row, at); err != nil {
			return nil, err
		}
	}
	if gate != nil {
		if err := gate(row); err != nil {
			return nil, err
		}
	}
	if row.State != StateOutstanding {
		return nil, fmt.Errorf("%w: chain %s is %s", ErrChainState, serial, row.State)
	}
	remainder, err := row.Commitment.PerWord.MulInt(int64(row.Commitment.Length - row.RedeemedIndex))
	if err != nil {
		return nil, err
	}
	home := r.rs.home(row)
	drawer := row.Commitment.DrawerAccountID
	mgr := r.led.ShardManager(home)
	now := r.now()
	var out ChainRow
	err = r.led.ShardStore(home).Update(func(tx *db.Tx) error {
		cur := row
		if raw, err := tx.Get(TableChains, serial); err == nil {
			c, derr := decodeChainRow(raw)
			if derr != nil {
				return derr
			}
			cur = c
		} else if !errors.Is(err, db.ErrNoRecord) {
			return err
		}
		if cur.State != StateOutstanding {
			return fmt.Errorf("%w: chain %s is %s", ErrChainState, serial, cur.State)
		}
		if remainder.IsPositive() {
			a, err := accounts.GetAccountTx(tx, drawer)
			if errors.Is(err, db.ErrNoRecord) {
				return fmt.Errorf("%w: drawer %s", accounts.ErrNotFound, drawer)
			} else if err != nil {
				return err
			}
			if a.LockedBalance.Cmp(remainder) < 0 {
				return fmt.Errorf("%w: locked %s < %s", accounts.ErrInsufficientLock, a.LockedBalance, remainder)
			}
			a.LockedBalance = a.LockedBalance.MustSub(remainder)
			a.AvailableBalance = a.AvailableBalance.MustAdd(remainder)
			if err := accounts.PutAccountTx(tx, a); err != nil {
				return err
			}
			if _, err := mgr.AppendTransactionTx(tx, &accounts.Transaction{
				AccountID: drawer, Type: accounts.TxUnlock, Date: now, Amount: remainder,
			}); err != nil {
				return err
			}
		}
		out = *cur
		out.State = StateReleased
		return tx.Put(TableChains, serial, out.encode())
	})
	if err != nil {
		return nil, err
	}
	if err := r.hook(BoundarySettled, serial); err != nil {
		return nil, err
	}
	r.rs.dropStray(serial, at, home)
	return &Outcome{Paid: remainder, Index: out.RedeemedIndex, State: out.State}, nil
}
