package micropay

import (
	"encoding/json"
	"errors"
	"fmt"

	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/usage"

	"gridbank/internal/accounts"
)

// TableChains is the chain registry table. Rows for chains issued since
// the one-transaction redemption fix live on the drawer's shard store —
// the same store as the drawer's ACCOUNT row — so the row advance and
// the locked-balance debit commit atomically. Rows issued before the
// fix sit on the metadata store (shard 0); lookups scan every shard and
// redemption migrates such a row home on its next state change.
const TableChains = "chains"

// Chain row states (shared with the bank's cheque registry values).
const (
	StateOutstanding = "outstanding"
	StateRedeemed    = "redeemed"
	StateReleased    = "released"
)

// ChainRow is the bank's durable record of one issued GridHash chain:
// the signed commitment, its lifecycle state, and the redemption
// high-water mark. RedeemedWord caches the chain word at RedeemedIndex
// so the next claim verifies incrementally — H^(delta)(claim) must
// equal it — in O(delta) hashes instead of O(index) back to the root.
//
// The Pin* fields are the write-ahead intent of a cross-shard
// redemption: the transaction ID, target index, word, payee and
// evidence are pinned in the row (one transaction on the drawer's
// shard) before the 2PC transfer runs, so a crash at any point
// re-drives the same transfer instead of minting a new one. A row with
// a pin is finished — transfer resolved, row advanced, pin cleared —
// before any new redemption or release proceeds.
type ChainRow struct {
	Commitment    payment.ChainCommitment `json:"commitment"`
	State         string                  `json:"state"`
	RedeemedIndex int                     `json:"redeemed_index"`
	RedeemedWord  []byte                  `json:"redeemed_word,omitempty"`

	PinTxID  uint64      `json:"pin_txid,omitempty"`
	PinIndex int         `json:"pin_index,omitempty"`
	PinWord  []byte      `json:"pin_word,omitempty"`
	PinPayee accounts.ID `json:"pin_payee,omitempty"`
	PinRUR   []byte      `json:"pin_rur,omitempty"`
}

// decodeChainRow unmarshals a chain row.
func decodeChainRow(raw []byte) (*ChainRow, error) {
	var row ChainRow
	if err := json.Unmarshal(raw, &row); err != nil {
		return nil, fmt.Errorf("micropay: corrupt chain row: %w", err)
	}
	return &row, nil
}

// encode marshals the row (marshal of plain fields cannot fail).
func (r *ChainRow) encode() []byte {
	raw, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("micropay: encoding chain row: %v", err))
	}
	return raw
}

// verifyClaimWord checks a claimed word against the row's redemption
// anchor: the cached RedeemedWord when present, the commitment root at
// index zero. Rows advanced before the incremental fix have an index
// but no cached word; those verify the slow way (hashes back to the
// root) exactly once — the next advance caches the word.
func (r *ChainRow) verifyClaimWord(target int, word []byte) error {
	if r.RedeemedIndex > 0 && len(r.RedeemedWord) == 0 {
		return payment.VerifyWord(&r.Commitment, target, word)
	}
	return payment.VerifyWordAfter(&r.Commitment, r.RedeemedIndex, r.RedeemedWord, target, word)
}

// rows locates and moves chain rows across shard stores.
type rows struct {
	led usage.Ledger
}

// home is the shard that owns a chain's row: the drawer's shard.
func (rs rows) home(row *ChainRow) int {
	return rs.led.ShardFor(row.Commitment.DrawerAccountID)
}

// get finds a chain row, preferring the copy on the drawer's home
// shard. A legacy row (pre-fix, metadata store) or a stray copy left by
// an interrupted migration is found by scanning every shard store; when
// both a home and a stray copy exist the home copy is authoritative —
// migration writes home first and deletes the stray second.
func (rs rows) get(serial string) (*ChainRow, int, error) {
	var found *ChainRow
	foundAt := -1
	for i := 0; i < rs.led.Shards(); i++ {
		raw, err := rs.led.ShardStore(i).Get(TableChains, serial)
		if errors.Is(err, db.ErrNoRecord) {
			continue
		}
		if err != nil {
			return nil, 0, err
		}
		row, err := decodeChainRow(raw)
		if err != nil {
			return nil, 0, err
		}
		if home := rs.home(row); home == i {
			return row, i, nil
		}
		if found == nil {
			found, foundAt = row, i
		}
	}
	if found == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownChain, serial)
	}
	// No home copy: check it directly in case the scan order visited
	// the stray store first while a migration was writing home.
	home := rs.home(found)
	if raw, err := rs.led.ShardStore(home).Get(TableChains, serial); err == nil {
		row, derr := decodeChainRow(raw)
		if derr != nil {
			return nil, 0, derr
		}
		return row, home, nil
	} else if !errors.Is(err, db.ErrNoRecord) {
		return nil, 0, err
	}
	return found, foundAt, nil
}

// put writes the row to its home shard store in one transaction.
func (rs rows) put(row *ChainRow) error {
	raw := row.encode()
	return rs.led.ShardStore(rs.home(row)).Update(func(tx *db.Tx) error {
		return tx.Put(TableChains, row.Commitment.Serial, raw)
	})
}

// dropStray removes a legacy/stray copy after a successful home write.
// Best effort: a surviving stray is shadowed by the home copy on every
// future lookup, never trusted over it.
func (rs rows) dropStray(serial string, at, home int) {
	if at == home {
		return
	}
	_ = rs.led.ShardStore(at).Update(func(tx *db.Tx) error {
		ok, err := tx.Exists(TableChains, serial)
		if err != nil || !ok {
			return err
		}
		return tx.Delete(TableChains, serial)
	})
}
