package micropay

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/obs"
	"gridbank/internal/payment"
)

// tableSpool is the intake spool table (on the spool store).
const tableSpool = "micropay_spool"

// Config configures a Pipeline.
type Config struct {
	// Redeemer performs the actual chain redemptions. Required. Sharing
	// the bank's instance makes the streaming path and the synchronous
	// RedeemChain path serialize per serial.
	Redeemer *Redeemer
	// FindAccount resolves a certificate name to its account in the
	// given currency — the payee lookup at intake. Required.
	FindAccount func(cert string, cur currency.Code) (*accounts.Account, error)
	// Spool is the intake store. Required. Give it a WAL-backed journal
	// for durable intake; the pipeline recovers pending claims from it
	// at construction.
	Spool *db.Store
	// BatchSize caps how many claims one settlement batch takes off the
	// queue (default 64). All claims for one chain inside a batch
	// settle as ONE redemption transaction.
	BatchSize int
	// Workers is the number of background settlement goroutines
	// (default 2). Workers < 0 starts none: settlement then runs only
	// through SettleOnce/Drain — the deterministic mode crash tests use.
	Workers int
	// MaxPending bounds the intake queue: a Submit that would push the
	// pending count past it fails with ErrOverloaded (default 4096).
	MaxPending int
	// RetryInterval is how often idle workers re-check for work missed
	// by kicks, and the pace of transient-failure retries (default 25ms).
	RetryInterval time.Duration
	// Now supplies timestamps; defaults to time.Now.
	Now func() time.Time
	// Log records transient settlement faults; nil discards them.
	Log *obs.Logger
	// Obs names the pipeline's instruments (micropay.queue_depth,
	// micropay.inflight, micropay.batch_claims, micropay.settled_ticks,
	// micropay.settled_claims, micropay.parked, micropay.overloaded).
	// Nil leaves telemetry off.
	Obs *obs.Registry
	// CrashHook installs fault injection before the workers start; it
	// also arms the Redeemer's hook, so the Pinned/Settled/Advanced
	// boundaries fire from inside redemption. Test instrumentation only.
	CrashHook func(b Boundary, serial string) error
}

// groupKey buckets pending claims for batching: all chains drawn on one
// account live on one shard, so their redemptions land on one store's
// group-committed journal back to back.
type groupKey struct {
	shard  int
	drawer accounts.ID
}

// session is the per-chain intake state: the verified commitment, the
// resolved payee, and the highest word accepted so far — the anchor the
// next preimage verifies against in O(delta) hashes.
type session struct {
	cc       payment.ChainCommitment
	payee    accounts.ID
	head     int
	headWord []byte // empty at head 0 (anchor = root) or for legacy rows
}

// verify checks a claimed word against the session anchor. A legacy
// anchor (head advanced before words were cached) verifies the slow way
// back to the root; the first accepted claim re-anchors it.
func (s *session) verify(i int, word []byte) error {
	if s.head > 0 && len(s.headWord) == 0 {
		return payment.VerifyWord(&s.cc, i, word)
	}
	return payment.VerifyWordAfter(&s.cc, s.head, s.headWord, i, word)
}

// Pipeline is the streaming micropayment engine. Construct with New —
// which also runs crash recovery — and Close when done.
type Pipeline struct {
	red   *Redeemer
	spool *db.Store
	cfg   Config
	now   func() time.Time

	// Log records transient settlement faults. Prefer Config.Log; with
	// background workers this field may only be reassigned while the
	// pipeline is provably idle (Workers < 0).
	Log *obs.Logger

	// intakeMu serializes claim verification so session anchors advance
	// consistently; it is never held across a settlement.
	intakeMu sync.Mutex
	sessions map[string]*session

	mu       sync.Mutex
	queue    map[groupKey][]string
	reserved int
	inflight int
	failed   int
	lastErr  string
	closed   bool

	settledTicks  atomic.Uint64
	settledClaims atomic.Uint64
	duplicates    atomic.Uint64
	rejected      atomic.Uint64
	batches       atomic.Uint64
	crossShard    atomic.Uint64

	mQueue       *obs.Gauge
	mInflight    *obs.Gauge
	mBatchClaims *obs.Histogram
	mTicks       *obs.Counter
	mClaims      *obs.Counter
	mParked      *obs.Counter
	mOverloaded  *obs.Counter

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// errAbandoned wraps a crash-hook abandon so a settlement pass stops
// cold without requeueing (simulated process death loses the in-memory
// queue by design; recovery rebuilds it from the spool).
var errAbandoned = errors.New("micropay: processing abandoned by crash hook")

// New builds a pipeline over the redeemer and spool store, recovers any
// claims a crash left pending, and starts the settlement workers.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Redeemer == nil {
		return nil, errors.New("micropay: pipeline requires a redeemer")
	}
	if cfg.FindAccount == nil {
		return nil, errors.New("micropay: pipeline requires an account resolver")
	}
	if cfg.Spool == nil {
		return nil, errors.New("micropay: pipeline requires a spool store")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0 // synchronous mode: SettleOnce/Drain only
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 25 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &Pipeline{
		red:      cfg.Redeemer,
		spool:    cfg.Spool,
		cfg:      cfg,
		now:      cfg.Now,
		Log:      cfg.Log,
		sessions: make(map[string]*session),
		queue:    make(map[groupKey][]string),
		kick:     make(chan struct{}, cfg.Workers+1),
		stop:     make(chan struct{}),

		mQueue:       cfg.Obs.Gauge("micropay.queue_depth"),
		mInflight:    cfg.Obs.Gauge("micropay.inflight"),
		mBatchClaims: cfg.Obs.Histogram("micropay.batch_claims"),
		mTicks:       cfg.Obs.Counter("micropay.settled_ticks"),
		mClaims:      cfg.Obs.Counter("micropay.settled_claims"),
		mParked:      cfg.Obs.Counter("micropay.parked"),
		mOverloaded:  cfg.Obs.Counter("micropay.overloaded"),
	}
	if cfg.CrashHook != nil && p.red.Hook == nil {
		p.red.Hook = func(b Boundary, serial string) error {
			if err := cfg.CrashHook(b, serial); err != nil {
				return fmt.Errorf("%w: %v", errAbandoned, err)
			}
			return nil
		}
	}
	if err := p.spool.EnsureTable(tableSpool); err != nil {
		return nil, err
	}
	if err := p.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

// recover re-queues every pending spool row. (Pinned cross-shard
// redemptions live in chain rows and are recovered by NewRedeemer.)
func (p *Pipeline) recover() error {
	var scanErr error
	err := p.spool.Scan(tableSpool, func(key string, value []byte) bool {
		var row spoolRow
		if err := json.Unmarshal(value, &row); err != nil {
			scanErr = fmt.Errorf("micropay: corrupt spool row %s: %w", key, err)
			return false
		}
		switch row.State {
		case statePending:
			k := groupKey{shard: p.red.Ledger().ShardFor(row.Drawer), drawer: row.Drawer}
			p.queue[k] = append(p.queue[k], row.Key)
			p.mQueue.Inc()
		case stateFailed:
			p.failed++
		}
		return true
	})
	if err != nil {
		return err
	}
	return scanErr
}

// Close stops the workers. Pending claims stay durably spooled and
// settle when a new pipeline is constructed over the same stores.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	return nil
}

func (p *Pipeline) pendingLocked() int {
	n := p.reserved + p.inflight
	for _, ids := range p.queue {
		n += len(ids)
	}
	return n
}

// Status reports the pipeline's observable state.
func (p *Pipeline) Status() *Stats {
	p.mu.Lock()
	pending := p.pendingLocked()
	queued := 0
	for _, ids := range p.queue {
		queued += len(ids)
	}
	inflight := p.inflight
	failed := p.failed
	lastErr := p.lastErr
	p.mu.Unlock()
	return &Stats{
		Pending:       pending,
		QueueDepth:    queued,
		InFlight:      inflight,
		Failed:        failed,
		SettledTicks:  p.settledTicks.Load(),
		SettledClaims: p.settledClaims.Load(),
		Duplicates:    p.duplicates.Load(),
		Rejected:      p.rejected.Load(),
		Batches:       p.batches.Load(),
		CrossShard:    p.crossShard.Load(),
		Workers:       p.cfg.Workers,
		BatchSize:     p.cfg.BatchSize,
		LastError:     lastErr,
	}
}

// Submit verifies and durably spools a batch of chain claims for
// asynchronous redemption. payeeCert is the authenticated caller; every
// claim must belong to a chain made out to that certificate (pass "" to
// bypass the binding — admin relay). Claims with bad preimages, unknown
// serials or expired chains come back in SubmitResult.Rejected
// (terminal); claims at or below the accepted head are duplicates under
// the delta rule. A nil error means every accepted claim is journaled
// and its ticks will be paid exactly once.
func (p *Pipeline) Submit(payeeCert string, batch []Claim) (*SubmitResult, error) {
	res := &SubmitResult{}
	if len(batch) == 0 {
		return res, nil
	}

	// Verify under the intake lock: each claim extends a per-chain
	// anchor, so a burst of N claims on one chain costs O(maxIndex)
	// hashes total, not O(N·maxIndex). Anchor advances are buffered and
	// applied only after the spool transaction commits.
	type advance struct {
		idx  int
		word []byte
	}
	adv := make(map[string]advance)
	var rows []spoolRow
	var ticks int
	p.intakeMu.Lock()
	for i := range batch {
		cl := &batch[i]
		if reason := ValidClaimShape(cl); reason != "" {
			p.rejected.Add(1)
			res.Rejected = append(res.Rejected, Rejection{Serial: cl.Serial, Index: cl.Index, Reason: reason})
			continue
		}
		sess, reason := p.sessionFor(cl.Serial, payeeCert)
		if reason != "" {
			p.rejected.Add(1)
			res.Rejected = append(res.Rejected, Rejection{Serial: cl.Serial, Index: cl.Index, Reason: reason})
			continue
		}
		head, headWord := sess.head, sess.headWord
		if a, ok := adv[cl.Serial]; ok {
			head, headWord = a.idx, a.word
		}
		if cl.Index <= head {
			// The delta rule makes a lower claim redundant: the accepted
			// higher word already pays for it.
			res.Duplicates++
			continue
		}
		eff := session{cc: sess.cc, payee: sess.payee, head: head, headWord: headWord}
		if err := eff.verify(cl.Index, cl.Word); err != nil {
			p.rejected.Add(1)
			res.Rejected = append(res.Rejected, Rejection{Serial: cl.Serial, Index: cl.Index, Reason: err.Error()})
			continue
		}
		ticks += cl.Index - head
		adv[cl.Serial] = advance{idx: cl.Index, word: cl.Word}
		rows = append(rows, spoolRow{
			Key:      spoolKey(cl.Serial, cl.Index),
			Serial:   cl.Serial,
			Index:    cl.Index,
			Word:     cl.Word,
			RUR:      cl.RUR,
			Drawer:   sess.cc.DrawerAccountID,
			Payee:    sess.payee,
			State:    statePending,
			Enqueued: p.now(),
		})
	}
	if len(rows) == 0 {
		p.intakeMu.Unlock()
		return res, nil
	}

	// Backpressure: reserve capacity before any durable write.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.intakeMu.Unlock()
		return nil, ErrClosed
	}
	if p.pendingLocked()+len(rows) > p.cfg.MaxPending {
		pending := p.pendingLocked()
		p.mu.Unlock()
		p.intakeMu.Unlock()
		p.mOverloaded.Inc()
		return nil, fmt.Errorf("%w: %d pending + %d offered exceeds bound %d",
			ErrOverloaded, pending, len(rows), p.cfg.MaxPending)
	}
	p.reserved += len(rows)
	p.mu.Unlock()
	release := len(rows)
	defer func() {
		p.mu.Lock()
		p.reserved -= release
		p.mu.Unlock()
	}()

	// Durable intake: one spool transaction for the whole batch,
	// deduplicating against rows already spooled. A row parked failed
	// resurrects for another attempt.
	var accepted []spoolRow
	var dups, revived int
	err := p.spool.Update(func(tx *db.Tx) error {
		accepted, dups, revived = accepted[:0], 0, 0 // Update may retry fn
		for i := range rows {
			raw, err := tx.Get(tableSpool, rows[i].Key)
			switch {
			case err == nil:
				var cur spoolRow
				if err := json.Unmarshal(raw, &cur); err != nil {
					return fmt.Errorf("micropay: corrupt spool row %s: %w", rows[i].Key, err)
				}
				if cur.State != stateFailed {
					dups++
					continue
				}
				revived++
			case !errors.Is(err, db.ErrNoRecord):
				return err
			}
			out, err := json.Marshal(&rows[i])
			if err != nil {
				return err
			}
			if err := tx.Put(tableSpool, rows[i].Key, out); err != nil {
				return err
			}
			accepted = append(accepted, rows[i])
		}
		return nil
	})
	if err != nil {
		p.intakeMu.Unlock()
		return nil, fmt.Errorf("micropay: spooling claim batch: %w", err)
	}
	// Commit the anchor advances now that the claims are durable.
	for serial, a := range adv {
		if sess := p.sessions[serial]; sess != nil && a.idx > sess.head {
			sess.head = a.idx
			sess.headWord = a.word
		}
	}
	p.intakeMu.Unlock()

	if revived > 0 {
		p.mu.Lock()
		p.failed -= revived
		p.mu.Unlock()
	}
	res.Accepted = len(accepted)
	res.AcceptedTicks = ticks
	res.Duplicates += dups
	p.duplicates.Add(uint64(dups))
	if len(accepted) == 0 {
		return res, nil
	}
	if err := p.crashHook(BoundarySpooled, accepted[0].Serial); err != nil {
		// Simulated death after the durable append: the rows are in the
		// spool and recovery will settle them; nothing is enqueued here.
		return res, err
	}

	p.mu.Lock()
	for i := range accepted {
		k := groupKey{shard: p.red.Ledger().ShardFor(accepted[i].Drawer), drawer: accepted[i].Drawer}
		p.queue[k] = append(p.queue[k], accepted[i].Key)
	}
	p.mu.Unlock()
	p.mQueue.Add(int64(len(accepted)))
	p.kickWorkers()
	return res, nil
}

// sessionFor loads (or returns) the intake session for a chain,
// checking everything that makes a claim terminally unacceptable. A
// non-empty reason rejects the claim. Caller holds intakeMu.
func (p *Pipeline) sessionFor(serial, payeeCert string) (*session, string) {
	if serial == "" {
		return nil, "empty chain serial"
	}
	sess := p.sessions[serial]
	if sess == nil {
		row, err := p.red.Get(serial)
		if errors.Is(err, ErrUnknownChain) {
			return nil, "unknown chain serial"
		}
		if err != nil {
			return nil, err.Error()
		}
		if row.State != StateOutstanding {
			return nil, fmt.Sprintf("chain is %s", row.State)
		}
		acct, err := p.cfg.FindAccount(row.Commitment.PayeeCert, row.Commitment.Currency)
		if err != nil {
			return nil, fmt.Sprintf("payee has no %s account: %v", row.Commitment.Currency, err)
		}
		head := row.RedeemedIndex
		if row.PinTxID != 0 && row.PinIndex > head {
			head = row.PinIndex
		}
		headWord := row.RedeemedWord
		if row.PinTxID != 0 && row.PinIndex > row.RedeemedIndex {
			headWord = row.PinWord
		}
		sess = &session{cc: row.Commitment, payee: acct.AccountID, head: head, headWord: headWord}
		p.sessions[serial] = sess
	}
	if payeeCert != "" && payeeCert != sess.cc.PayeeCert {
		return nil, fmt.Sprintf("chain is payable to %s, not %s", sess.cc.PayeeCert, payeeCert)
	}
	if !p.now().Before(sess.cc.Expires) {
		return nil, "chain expired"
	}
	return sess, ""
}

// crashHook fires the pipeline-level crash hook, if any.
func (p *Pipeline) crashHook(b Boundary, serial string) error {
	if p.cfg.CrashHook == nil {
		return nil
	}
	if err := p.cfg.CrashHook(b, serial); err != nil {
		return fmt.Errorf("%w: %v", errAbandoned, err)
	}
	return nil
}

func (p *Pipeline) kickWorkers() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.RetryInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
		case <-t.C:
		}
		if _, err := p.drainPass(); err != nil {
			p.noteErr(err)
		}
	}
}

func (p *Pipeline) noteErr(err error) {
	p.mu.Lock()
	p.lastErr = err.Error()
	p.mu.Unlock()
	p.Log.Warn("micropay settlement fault", "err", err)
}

// SettleOnce runs one synchronous settlement pass over every group that
// had pending work when the pass started, and reports how many claims
// reached a terminal outcome.
func (p *Pipeline) SettleOnce() (int, error) {
	return p.drainPass()
}

func (p *Pipeline) drainPass() (int, error) {
	p.mu.Lock()
	keys := make([]groupKey, 0, len(p.queue))
	for k := range p.queue {
		keys = append(keys, k)
	}
	p.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].shard != keys[j].shard {
			return keys[i].shard < keys[j].shard
		}
		return keys[i].drawer < keys[j].drawer
	})
	var done int
	var firstErr error
	for _, k := range keys {
		for {
			ids := p.takeGroup(k)
			if len(ids) == 0 {
				break
			}
			n, err := p.settleGroup(k, ids)
			done += n
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break // leave this group for the next pass
			}
		}
		if firstErr != nil && errors.Is(firstErr, errAbandoned) {
			break // simulated death: stop the whole pass
		}
	}
	return done, firstErr
}

// takeGroup pops up to BatchSize claim keys from one group, moving them
// into the in-flight count.
func (p *Pipeline) takeGroup(k groupKey) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := p.queue[k]
	if len(ids) == 0 {
		delete(p.queue, k)
		return nil
	}
	n := len(ids)
	if n > p.cfg.BatchSize {
		n = p.cfg.BatchSize
	}
	taken := ids[:n:n]
	rest := ids[n:]
	if len(rest) == 0 {
		delete(p.queue, k)
	} else {
		p.queue[k] = rest
	}
	p.inflight += n
	p.mQueue.Add(int64(-n))
	p.mInflight.Add(int64(n))
	p.mBatchClaims.Observe(int64(n))
	return taken
}

// requeue returns unfinished claims to the queue (transient faults).
func (p *Pipeline) requeue(k groupKey, keys []string) {
	if len(keys) == 0 {
		return
	}
	p.mu.Lock()
	p.queue[k] = append(p.queue[k], keys...)
	p.mu.Unlock()
	p.mQueue.Add(int64(len(keys)))
}

func (p *Pipeline) requeueRows(k groupKey, rows []spoolRow) {
	keys := make([]string, len(rows))
	for i := range rows {
		keys[i] = rows[i].Key
	}
	p.requeue(k, keys)
}

// failure is a claim parked by a terminal settlement outcome.
type failure struct {
	row    spoolRow
	reason string
}

// terminalRedeemErr classifies redemption errors retrying cannot fix.
func terminalRedeemErr(err error) bool {
	if errors.Is(err, db.ErrStorageFailed) {
		// Fail-stopped storage is an instance outage, not a verdict on
		// the claim: it must stay queued and redeem after restart, even
		// if the failure surfaced wrapped in a business error.
		return false
	}
	return errors.Is(err, ErrUnknownChain) ||
		errors.Is(err, ErrChainState) ||
		errors.Is(err, payment.ErrBadWord) ||
		errors.Is(err, payment.ErrBadIndex) ||
		errors.Is(err, accounts.ErrNotFound) ||
		errors.Is(err, accounts.ErrClosed) ||
		errors.Is(err, accounts.ErrCurrencyMismatch) ||
		errors.Is(err, accounts.ErrInsufficient) ||
		errors.Is(err, accounts.ErrInsufficientLock) ||
		errors.Is(err, accounts.ErrBadAmount)
}

// settleGroup settles one batch of claims drawn from a single account.
// Claims collapse per chain: only the highest index redeems (one
// transaction per chain), and the lower claims it subsumes finish as
// part of the same advance. Returns how many claims reached a terminal
// outcome.
func (p *Pipeline) settleGroup(k groupKey, keys []string) (int, error) {
	defer func() {
		p.mu.Lock()
		p.inflight -= len(keys)
		p.mu.Unlock()
		p.mInflight.Add(int64(-len(keys)))
	}()

	// Load the durable rows; keys whose row vanished were finished by
	// an earlier generation's cleanup.
	bySerial := make(map[string][]spoolRow)
	serials := make([]string, 0, 4)
	for _, key := range keys {
		raw, err := p.spool.Get(tableSpool, key)
		if errors.Is(err, db.ErrNoRecord) {
			continue
		}
		if err != nil {
			p.requeue(k, keys)
			return 0, err
		}
		var row spoolRow
		if err := json.Unmarshal(raw, &row); err != nil {
			p.requeue(k, keys)
			return 0, fmt.Errorf("micropay: corrupt spool row %s: %w", key, err)
		}
		if row.State != statePending {
			continue // parked failed by an earlier pass
		}
		if _, seen := bySerial[row.Serial]; !seen {
			serials = append(serials, row.Serial)
		}
		bySerial[row.Serial] = append(bySerial[row.Serial], row)
	}
	sort.Strings(serials)

	done := 0
	for si, serial := range serials {
		rows := bySerial[serial]
		// The delta rule: the highest claim pays for everything below it.
		best := 0
		for i := range rows {
			if rows[i].Index > rows[best].Index {
				best = i
			}
		}
		top := rows[best]
		out, err := p.red.Redeem(serial, top.Payee, top.Index, top.Word, top.RUR)
		switch {
		case err == nil:
			if out.Ticks > 0 {
				p.batches.Add(1)
			}
			if out.CrossShard {
				p.crossShard.Add(1)
			}
			p.settledTicks.Add(uint64(out.Ticks))
			p.settledClaims.Add(uint64(len(rows)))
			p.mTicks.Add(int64(out.Ticks))
			p.mClaims.Add(int64(len(rows)))
		case errors.Is(err, ErrStaleIndex):
			// Already paid (replay, or subsumed by an earlier advance).
			p.duplicates.Add(uint64(len(rows)))
		case errors.Is(err, errAbandoned):
			return done, err
		case terminalRedeemErr(err):
			failures := make([]failure, len(rows))
			for i := range rows {
				failures[i] = failure{row: rows[i], reason: err.Error()}
			}
			if cerr := p.cleanup(nil, failures); cerr != nil {
				p.requeueRows(k, rows)
				return done, cerr
			}
			done += len(rows)
			continue
		default:
			p.requeueRows(k, rows)
			for _, rest := range serials[si+1:] {
				p.requeueRows(k, bySerial[rest])
			}
			return done, fmt.Errorf("micropay: redeeming chain %s: %w", serial, err)
		}
		if err := p.cleanup(rows, nil); err != nil {
			p.requeueRows(k, rows)
			return done, err
		}
		done += len(rows)
		if err := p.crashHook(BoundaryCleaned, serial); err != nil {
			return done, err
		}
	}
	return done, nil
}

// cleanup finishes claims durably: settled/duplicate rows leave the
// spool; failed rows are parked with their reason for the operator.
func (p *Pipeline) cleanup(finished []spoolRow, failures []failure) error {
	if len(finished) == 0 && len(failures) == 0 {
		return nil
	}
	err := p.spool.Update(func(tx *db.Tx) error {
		for i := range finished {
			ok, err := tx.Exists(tableSpool, finished[i].Key)
			if err != nil {
				return err
			}
			if ok {
				if err := tx.Delete(tableSpool, finished[i].Key); err != nil {
					return err
				}
			}
		}
		for i := range failures {
			row := failures[i].row
			row.State = stateFailed
			row.Reason = failures[i].reason
			raw, err := json.Marshal(&row)
			if err != nil {
				return err
			}
			if err := tx.Put(tableSpool, row.Key, raw); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("micropay: spool cleanup: %w", err)
	}
	if len(failures) > 0 {
		p.mu.Lock()
		p.failed += len(failures)
		p.mu.Unlock()
		p.mParked.Add(int64(len(failures)))
	}
	return nil
}

// Drain blocks until every pending claim reaches a terminal outcome, or
// the timeout elapses. With background workers it kicks and waits; in
// synchronous mode (Workers < 0) it runs settlement passes itself and
// reports ErrDrainStalled if a full pass makes no progress.
func (p *Pipeline) Drain(timeout time.Duration) (*Stats, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		pending := p.pendingLocked()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return p.Status(), ErrClosed
		}
		if pending == 0 {
			return p.Status(), nil
		}
		if time.Now().After(deadline) {
			return p.Status(), fmt.Errorf("%w: %d still pending", ErrDrainTimeout, pending)
		}
		if p.cfg.Workers == 0 {
			n, err := p.drainPass()
			if err != nil {
				return p.Status(), err
			}
			if n == 0 {
				p.mu.Lock()
				settleable := p.inflight
				for _, ids := range p.queue {
					settleable += len(ids)
				}
				p.mu.Unlock()
				if settleable > 0 {
					return p.Status(), fmt.Errorf("%w: %d pending", ErrDrainStalled, settleable)
				}
				time.Sleep(time.Millisecond) // reservations only: wait them out
			}
			continue
		}
		p.kickWorkers()
		time.Sleep(2 * time.Millisecond)
	}
}

// wordSize guards claim shape at the wire layer.
const wordSize = sha256.Size

// ValidClaimShape cheaply screens a claim before any chain lookup.
func ValidClaimShape(cl *Claim) string {
	switch {
	case cl.Serial == "":
		return "empty chain serial"
	case cl.Index <= 0 || cl.Index > payment.MaxChainLength:
		return fmt.Sprintf("claim index %d out of range", cl.Index)
	case len(cl.Word) != wordSize:
		return "claim word is not a SHA-256 digest"
	}
	return ""
}
