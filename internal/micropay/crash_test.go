package micropay_test

// Crash-at-every-boundary coverage for chain redemption, in the style
// of internal/usage's crash suite: every durable protocol step —
// spool-append, cross-shard pin, settle, row advance, spool cleanup —
// is interrupted by a simulated process death, every store reboots from
// its crash-survivable journal, and the recovered pipeline must
// converge to exactly-once payment with exact conservation.
//
// These tests are the regression net for the chain-redemption atomicity
// bug: the pre-fix bank moved the money and flipped the chain row in
// two separate ledger transactions, so a crash between them replayed
// the delta on retry (double pay) or stranded it (lost pay). With the
// row advance folded into the money movement, no crash point can
// produce either.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/micropay"
	"gridbank/internal/payment"
)

// runCrash streams one claim to the given boundary, dies there, reboots
// and drains.
func runCrash(w *world, ch *payment.Chain, payeeCert string, index int, at micropay.Boundary) {
	w.t.Helper()
	died := false
	w.crash = func(b micropay.Boundary, serial string) error {
		if b == at && !died {
			died = true
			return fmt.Errorf("injected death at %s", b)
		}
		return nil
	}
	_, err := w.pipe.Submit(payeeCert, claimsFor(w.t, ch, index))
	if at == micropay.BoundarySpooled {
		if err == nil {
			w.t.Fatal("expected injected death during Submit")
		}
	} else {
		if err != nil {
			w.t.Fatalf("submit: %v", err)
		}
		if _, err := w.pipe.SettleOnce(); !died {
			w.t.Fatalf("boundary %s never reached (settle err %v)", at, err)
		}
	}
	w.crash = nil
	w.reboot()
	if _, err := w.pipe.Drain(10 * time.Second); err != nil {
		w.t.Fatalf("drain after reboot: %v", err)
	}
}

func TestCrashAtEveryBoundarySameShard(t *testing.T) {
	// Same-shard redemptions settle atomically (the row advance rides
	// the ledger transaction), so only three boundaries exist.
	for _, b := range []micropay.Boundary{
		micropay.BoundarySpooled, micropay.BoundarySettled, micropay.BoundaryCleaned,
	} {
		t.Run(b.String(), func(t *testing.T) {
			w := newWorld(t, 2)
			ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
			runCrash(w, ch, w.sameCert, 7, b)
			if got := w.avail(w.sameAcct); got != currency.FromG(7) {
				t.Errorf("payee = %s, want 7 G$ (exactly-once violated)", got)
			}
			if st := w.pipe.Status(); st.Pending != 0 || st.Failed != 0 {
				t.Errorf("residue after recovery: %+v", st)
			}
			w.assertConserved()
		})
	}
}

func TestCrashAtEveryBoundaryCrossShard(t *testing.T) {
	for _, b := range []micropay.Boundary{
		micropay.BoundarySpooled, micropay.BoundaryPinned, micropay.BoundarySettled,
		micropay.BoundaryAdvanced, micropay.BoundaryCleaned,
	} {
		t.Run(b.String(), func(t *testing.T) {
			w := newWorld(t, 2)
			ch := w.issue(w.crossCert, 10, currency.FromG(1), time.Hour)
			runCrash(w, ch, w.crossCert, 7, b)
			if got := w.avail(w.crossAcct); got != currency.FromG(7) {
				t.Errorf("payee = %s, want 7 G$ (exactly-once violated)", got)
			}
			w.assertConserved()
		})
	}
}

// TestDoubleCrashCrossShard dies once mid-settlement and again during
// the recovery drain, at every ordered boundary pair; the claim must
// still pay exactly once.
func TestDoubleCrashCrossShard(t *testing.T) {
	boundaries := []micropay.Boundary{
		micropay.BoundaryPinned, micropay.BoundarySettled,
		micropay.BoundaryAdvanced, micropay.BoundaryCleaned,
	}
	for i, first := range boundaries {
		for _, second := range boundaries[i:] {
			t.Run(fmt.Sprintf("%s-then-%s", first, second), func(t *testing.T) {
				w := newWorld(t, 2)
				ch := w.issue(w.crossCert, 10, currency.FromG(1), time.Hour)
				runCrash(w, ch, w.crossCert, 7, first)
				// Second cycle: resubmit the settled claim plus a new
				// one, crash again at the second boundary, recover.
				died := false
				w.crash = func(b micropay.Boundary, _ string) error {
					if b == second && !died {
						died = true
						return fmt.Errorf("second injected death at %s", b)
					}
					return nil
				}
				if _, err := w.pipe.Submit(w.crossCert, claimsFor(t, ch, 7, 9)); err == nil {
					w.pipe.SettleOnce()
				}
				w.crash = nil
				w.reboot()
				if _, err := w.pipe.Drain(10 * time.Second); err != nil {
					t.Fatalf("drain after second reboot: %v", err)
				}
				if got := w.avail(w.crossAcct); got != currency.FromG(9) {
					t.Errorf("payee = %s, want 9 G$", got)
				}
				w.assertConserved()
			})
		}
	}
}

// TestJournalDeathDuringRedeem kills the home shard's journal mid-
// redemption (the store refuses the write, like a dead disk). The
// redemption must fail whole: no money moved, no row advanced — the
// retry after revival pays exactly once. On the pre-fix two-transaction
// shape this test double-pays, because the transfer landed in its own
// transaction before the row write failed.
func TestJournalDeathDuringRedeem(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
	w.journals[w.led.ShardFor(w.drawer)].Kill()
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 6, w.word(ch, 6), nil); err == nil {
		t.Fatal("redeem with dead journal succeeded")
	}
	w.reboot()
	out, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 6, w.word(ch, 6), nil)
	if err != nil {
		t.Fatalf("retry after reboot: %v", err)
	}
	if out.Paid != currency.FromG(6) {
		t.Fatalf("retry paid %s", out.Paid)
	}
	if got := w.avail(w.sameAcct); got != currency.FromG(6) {
		t.Fatalf("payee = %s, want exactly 6 G$", got)
	}
	w.assertConserved()
}

// TestJournalDeathDuringRelease is the same regression for ReleaseChain:
// pre-fix, the unlock and the row flip were two transactions, so a
// crash between them let a second release unlock the remainder twice.
func TestJournalDeathDuringRelease(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 4, w.word(ch, 4), nil); err != nil {
		t.Fatal(err)
	}
	w.journals[w.led.ShardFor(w.drawer)].Kill()
	if _, err := w.red.Release(ch.Commitment.Serial, nil); err == nil {
		t.Fatal("release with dead journal succeeded")
	}
	w.reboot()
	out, err := w.red.Release(ch.Commitment.Serial, nil)
	if err != nil {
		t.Fatalf("retry after reboot: %v", err)
	}
	if out.Paid != currency.FromG(6) {
		t.Fatalf("retry unlocked %s", out.Paid)
	}
	if got := w.locked(w.drawer); !got.IsZero() {
		t.Fatalf("drawer locked after release = %s", got)
	}
	// A third release attempt must find the flip durable.
	if _, err := w.red.Release(ch.Commitment.Serial, nil); !errors.Is(err, micropay.ErrChainState) {
		t.Fatalf("triple release = %v", err)
	}
	w.assertConserved()
}

// TestStaleClaimAcrossRestart replays an already-settled claim against
// a rebooted node: the chain row (not in-memory state) must refuse it.
func TestStaleClaimAcrossRestart(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
	if _, err := w.pipe.Submit(w.sameCert, claimsFor(t, ch, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.pipe.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.reboot()
	// Synchronous replay: stale.
	if _, err := w.red.Redeem(ch.Commitment.Serial, w.sameAcct, 5, w.word(ch, 5), nil); !errors.Is(err, micropay.ErrStaleIndex) {
		t.Fatalf("replay after restart = %v", err)
	}
	// Streaming replay: duplicate, not an error, not a payment.
	res, err := w.pipe.Submit(w.sameCert, claimsFor(t, ch, 5))
	if err != nil || res.Duplicates != 1 || res.Accepted != 0 {
		t.Fatalf("stream replay = %+v, %v", res, err)
	}
	if got := w.avail(w.sameAcct); got != currency.FromG(5) {
		t.Fatalf("payee = %s", got)
	}
	w.assertConserved()
}

// TestSpoolJournalDeathDuringSubmit kills the spool journal mid-intake:
// Submit must fail (nothing acknowledged) and nothing phantom-settles.
func TestSpoolJournalDeathDuringSubmit(t *testing.T) {
	w := newWorld(t, 1)
	ch := w.issue(w.sameCert, 10, currency.FromG(1), time.Hour)
	w.spoolJ.Kill()
	if _, err := w.pipe.Submit(w.sameCert, claimsFor(t, ch, 3)); err == nil {
		t.Fatal("submit with dead spool journal succeeded")
	}
	w.reboot()
	if st, err := w.pipe.Drain(5 * time.Second); err != nil || st.SettledTicks != 0 {
		t.Fatalf("drain = %+v, %v", st, err)
	}
	if got := w.avail(w.sameAcct); !got.IsZero() {
		t.Fatalf("payee = %s after refused intake", got)
	}
}
