// Package micropay is the GridHash pay-as-you-go fast path: the
// paper's §3.3 hash-chain micro-payment instrument carried at wire
// speed. One ECDSA signature (the chain commitment, §5.2 Request
// GridHash chain) authorizes up to 2^20 payments; every subsequent
// payment is one SHA-256 preimage, verified incrementally in O(delta)
// hashes. This package holds the two halves the seed repo was missing:
//
//   - Redeemer: chain redemption done right. The chain row advance and
//     the money movement commit in ONE store transaction on the
//     drawer's shard (accounts tx API, like the usage pipeline's
//     settled markers), so a crash can never replay a paid delta. When
//     the payee lives on another shard the redemption pins its
//     transaction ID write-ahead in the chain row and drives the 2PC
//     transfer under it, exactly like the usage pipeline's cross-shard
//     path.
//   - Pipeline: streaming claim intake and batched redemption. GSPs
//     submit chain claims in batches (Micropay.Submit); intake verifies
//     each preimage against the highest word already accepted —
//     O(delta) hashes — spools it durably, and acknowledges. Workers
//     batch spooled claims per (shard, drawer), keep only the highest
//     index per serial (the delta rule makes lower claims redundant),
//     and settle each chain with one redemption transaction. Thousands
//     of micro-payments amortize into a few signatures' worth of work
//     and a handful of group-committed ledger transactions.
//
// Contract (mirroring internal/usage):
//
//   - Durable intake: an acknowledged claim is journaled to the spool
//     and survives a crash.
//   - Exactly-once settlement: the chain row's RedeemedIndex advances
//     monotonically in the same transaction that moves the money, so a
//     replayed or crash-recovered claim is recognized as stale and
//     pays nothing. No separate marker table is needed — the row IS
//     the marker.
//   - Backpressure: Submit refuses batches with ErrOverloaded once
//     settlement lags past the configured bound.
//   - Malformed-vs-transient: a claim that can never settle (unknown
//     serial, bad preimage, expired chain, wrong payee) is rejected at
//     intake with a per-claim reason; transient faults surface as
//     Submit errors the caller retries.
//
// Spool format (table "micropay_spool", key = "<serial>/<index>"):
//
//	{"key":"S/000000000042","serial":"S","index":42,"word":"...",
//	 "drawer":"01-0001-00000003","payee":"01-0001-00000007",
//	 "state":"pending","enqueued":"..."}
package micropay

import (
	"errors"
	"fmt"
	"time"

	"gridbank/internal/accounts"
)

// Pipeline errors.
var (
	// ErrOverloaded refuses an intake batch because settlement lags;
	// callers back off and retry. The wire layer maps it to the stable
	// "overloaded" code.
	ErrOverloaded = errors.New("micropay: settlement pipeline overloaded, retry later")
	// ErrClosed rejects operations on a closed pipeline.
	ErrClosed = errors.New("micropay: pipeline closed")
	// ErrDrainStalled reports a Drain that stopped making progress.
	ErrDrainStalled = errors.New("micropay: drain stalled, pending claims not settling")
	// ErrDrainTimeout reports a Drain that ran out of time.
	ErrDrainTimeout = errors.New("micropay: drain timed out")
)

// Redemption errors.
var (
	// ErrUnknownChain reports a serial with no chain row anywhere on
	// the ledger.
	ErrUnknownChain = errors.New("micropay: unknown chain serial")
	// ErrStaleIndex reports a claim at or below the redeemed position:
	// a replay or an out-of-date claim. Paying it would double-pay, so
	// it settles as a duplicate (zero value moved).
	ErrStaleIndex = errors.New("micropay: claim index not beyond redeemed position")
	// ErrChainState reports an operation against a chain that is no
	// longer outstanding (already fully redeemed or released).
	ErrChainState = errors.New("micropay: chain is not outstanding")
)

// Claim is one streamed redemption claim: the highest word the payee
// holds for a chain, plus optional usage evidence. Cumulative value is
// Index × PerWord; the bank pays the delta above the redeemed position.
type Claim struct {
	Serial string `json:"serial"`
	Index  int    `json:"index"`
	Word   []byte `json:"word"`
	RUR    []byte `json:"rur,omitempty"`
}

// Rejection reports one claim refused at intake, with the reason.
// Rejections are terminal: the same claim will be rejected again.
type Rejection struct {
	Serial string `json:"serial"`
	Index  int    `json:"index"`
	Reason string `json:"reason"`
}

// SubmitResult summarizes one intake batch. AcceptedTicks counts the
// chain words newly covered by accepted claims — the number of
// micro-payments this batch advanced the stream by.
type SubmitResult struct {
	Accepted      int         `json:"accepted"`
	AcceptedTicks int         `json:"accepted_ticks"`
	Duplicates    int         `json:"duplicates"`
	Rejected      []Rejection `json:"rejected,omitempty"`
}

// Stats is the pipeline's observable state (Micropay.Status).
type Stats struct {
	// Pending counts claims spooled but not yet settled.
	Pending int `json:"pending"`
	// QueueDepth counts claims waiting for a worker.
	QueueDepth int `json:"queue_depth"`
	// InFlight counts claims inside a settlement batch.
	InFlight int `json:"in_flight"`
	// Failed counts claims parked by terminal settlement outcomes.
	Failed int `json:"failed"`
	// SettledTicks counts chain words paid out — individual
	// micro-payments — since this pipeline instance started.
	SettledTicks uint64 `json:"settled_ticks"`
	// SettledClaims counts spooled claims that reached settlement.
	SettledClaims uint64 `json:"settled_claims"`
	// Duplicates counts stale/replayed claims recognized and skipped.
	Duplicates uint64 `json:"duplicates"`
	// Rejected counts claims refused at intake.
	Rejected uint64 `json:"rejected"`
	// Batches counts redemption transactions; SettledTicks/Batches is
	// the amortization factor.
	Batches uint64 `json:"batches"`
	// CrossShard counts redemptions driven through the pinned 2PC path.
	CrossShard uint64 `json:"cross_shard"`
	// Workers and BatchSize echo the pipeline's configuration.
	Workers   int `json:"workers"`
	BatchSize int `json:"batch_size"`
	// LastError is the most recent transient settlement error.
	LastError string `json:"last_error,omitempty"`
}

// Boundary identifies a durable step of the redemption protocol, for
// fault injection: a crash hook fires immediately after the named step
// became durable.
type Boundary int

// The redemption protocol's durable step boundaries, in order.
const (
	// BoundarySpooled: intake claims journaled, settlement not started.
	BoundarySpooled Boundary = iota + 1
	// BoundaryPinned: a cross-shard redemption's transaction ID pinned
	// in the chain row, transfer not yet driven.
	BoundaryPinned
	// BoundarySettled: the money movement is durable — for same-shard
	// redemptions this includes the row advance (one atomic
	// transaction); for cross-shard the 2PC transfer completed, row not
	// yet advanced.
	BoundarySettled
	// BoundaryAdvanced: a cross-shard redemption's chain row advanced
	// and unpinned.
	BoundaryAdvanced
	// BoundaryCleaned: spool rows deleted/parked; the claims are fully
	// finished.
	BoundaryCleaned
)

// String names a boundary for test output.
func (b Boundary) String() string {
	switch b {
	case BoundarySpooled:
		return "spooled"
	case BoundaryPinned:
		return "pinned"
	case BoundarySettled:
		return "settled"
	case BoundaryAdvanced:
		return "advanced"
	case BoundaryCleaned:
		return "cleaned"
	default:
		return fmt.Sprintf("boundary(%d)", int(b))
	}
}

// spool row states.
const (
	statePending = "pending"
	stateFailed  = "failed"
)

// spoolRow is one durable intake claim, with the parties resolved at
// intake so recovery never needs a directory lookup.
type spoolRow struct {
	Key      string      `json:"key"`
	Serial   string      `json:"serial"`
	Index    int         `json:"index"`
	Word     []byte      `json:"word"`
	RUR      []byte      `json:"rur,omitempty"`
	Drawer   accounts.ID `json:"drawer"`
	Payee    accounts.ID `json:"payee"`
	State    string      `json:"state"`
	Reason   string      `json:"reason,omitempty"`
	Enqueued time.Time   `json:"enqueued"`
}

// spoolKey is the idempotency key of one claim: a serial can be claimed
// at each index at most once.
func spoolKey(serial string, index int) string {
	return fmt.Sprintf("%s/%012d", serial, index)
}
