// Package netsim is the network-fault sibling of shard/simtest: where
// simtest kills processes at durable boundaries, netsim misbehaves the
// wire between them. It provides a TCP proxy and a net.Conn wrapper
// that inject seeded latency, mid-frame cuts, torn (fragmented) writes,
// duplicate delivery and directional partitions, so the resilience
// stack (deadlines, idempotent retry, circuit breaking) can be driven
// through the failures a wide-area grid actually produces.
//
// Determinism: every (connection, direction) pair derives its own
// rand.Rand from Config.Seed, so its fault schedule is a pure function
// of (seed, connection index, direction, chunk sequence). Wall-clock
// interleaving across connections still varies run to run — the
// invariants the chaos harness asserts are exactly the ones that must
// hold under any interleaving.
//
// The proxy forwards raw bytes, which on a TLS stream means faults act
// below the record layer: cuts and tears surface as torn TLS records
// and dead connections, while duplicated bytes break the record MAC
// sequence and degrade to a cut. Byte-level duplicate delivery is
// therefore only observable on plaintext streams; duplicate *request*
// delivery on TLS deployments is exercised one layer up, by client
// retries replaying idempotency-keyed requests.
package netsim

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets a Proxy's fault profile. The zero value forwards
// faithfully (a transparent proxy that can still Partition/CutAll).
type Config struct {
	// Seed anchors every derived fault schedule.
	Seed int64
	// Latency is a fixed extra one-way delay per forwarded chunk.
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) delay on top of Latency.
	Jitter time.Duration
	// CutProb is the per-chunk probability the connection is cut midway
	// through the chunk: the peer sees a torn prefix, then EOF.
	CutProb float64
	// TearProb is the per-chunk probability of torn delivery: the chunk
	// arrives complete but as many tiny writes, so readers observe
	// partial frames mid-read.
	TearProb float64
	// DupProb is the per-chunk probability the chunk's bytes are
	// delivered twice (plaintext streams; on TLS this degrades to a
	// cut, see the package comment).
	DupProb float64
}

// Proxy is a faulty TCP relay in front of one target address.
type Proxy struct {
	target string
	cfg    Config
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	nconn  int64
	closed bool

	dropAB atomic.Bool // drop client→server bytes (blackhole, conn stays up)
	dropBA atomic.Bool // drop server→client bytes

	wg sync.WaitGroup
}

// NewProxy starts a proxy listening on a fresh loopback port, relaying
// every accepted connection to target under cfg's fault profile.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netsim: listen: %w", err)
	}
	p := &Proxy{target: target, cfg: cfg, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition blackholes the given directions: bytes are read and
// discarded, so both endpoints keep a live socket that silently loses
// traffic — the failure mode deadlines exist for. Delivery resumes on
// Heal (bytes dropped meanwhile are gone forever, as on a real
// partition).
func (p *Proxy) Partition(clientToServer, serverToClient bool) {
	p.dropAB.Store(clientToServer)
	p.dropBA.Store(serverToClient)
}

// Heal ends a Partition.
func (p *Proxy) Heal() { p.Partition(false, false) }

// CutAll hard-closes every live relayed connection (both sides), while
// the proxy keeps accepting new ones — a transient total connection
// loss that clients must redial through.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops the proxy and severs every relayed connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			server.Close()
			return
		}
		idx := p.nconn
		p.nconn++
		p.conns[client] = struct{}{}
		p.conns[server] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()
		go p.pump(server, client, &p.dropAB, dirRNG(p.cfg.Seed, idx, 0))
		go p.pump(client, server, &p.dropBA, dirRNG(p.cfg.Seed, idx, 1))
	}
}

// dirRNG derives the (connection, direction) fault-schedule generator
// from the base seed via a splitmix64 round, so neighbouring indices do
// not produce correlated streams.
func dirRNG(seed, conn int64, dir int64) *rand.Rand {
	z := uint64(seed) + uint64(conn)*0x9e3779b97f4a7c15 + uint64(dir)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return rand.New(rand.NewSource(int64(z ^ (z >> 31))))
}

// faultPlan is one chunk's fate, drawn up front so the schedule depends
// only on the rng stream and chunk size.
type faultPlan struct {
	delay time.Duration
	cut   bool
	cutAt int
	tear  bool
	dup   bool
}

func (p *Proxy) plan(rng *rand.Rand, n int) faultPlan {
	var fp faultPlan
	fp.delay = p.cfg.Latency
	if p.cfg.Jitter > 0 {
		fp.delay += time.Duration(rng.Int63n(int64(p.cfg.Jitter)))
	}
	if p.cfg.CutProb > 0 && rng.Float64() < p.cfg.CutProb {
		fp.cut = true
		fp.cutAt = rng.Intn(n + 1)
	}
	if p.cfg.TearProb > 0 && rng.Float64() < p.cfg.TearProb {
		fp.tear = true
	}
	if p.cfg.DupProb > 0 && rng.Float64() < p.cfg.DupProb {
		fp.dup = true
	}
	return fp
}

// pump relays src→dst, applying the fault schedule chunk by chunk.
// Either side dying (or a scheduled cut) tears down both.
func (p *Proxy) pump(dst, src net.Conn, drop *atomic.Bool, rng *rand.Rand) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
	}()
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if drop.Load() {
				// Partitioned: the bytes vanish, the socket lives.
			} else if !p.deliver(dst, buf[:n], rng) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// deliver forwards one chunk under its fault plan; false cuts the
// connection.
func (p *Proxy) deliver(dst net.Conn, b []byte, rng *rand.Rand) bool {
	fp := p.plan(rng, len(b))
	if fp.delay > 0 {
		time.Sleep(fp.delay)
	}
	if fp.cut {
		if fp.cutAt > 0 {
			dst.Write(b[:fp.cutAt]) // the peer sees a torn prefix, then EOF
		}
		return false
	}
	write := func(c []byte) bool {
		if !fp.tear {
			_, err := dst.Write(c)
			return err == nil
		}
		for len(c) > 0 {
			frag := 1 + rng.Intn(8)
			if frag > len(c) {
				frag = len(c)
			}
			if _, err := dst.Write(c[:frag]); err != nil {
				return false
			}
			c = c[frag:]
		}
		return true
	}
	if !write(b) {
		return false
	}
	if fp.dup {
		return write(b)
	}
	return true
}
