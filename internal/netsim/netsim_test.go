package netsim

import (
	"bytes"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until EOF.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

// sinkServer accepts connections and appends everything received to a
// shared buffer.
func sinkServer(t *testing.T) (addr string, received func() []byte) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	var buf bytes.Buffer
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				tmp := make([]byte, 4096)
				for {
					n, err := c.Read(tmp)
					if n > 0 {
						mu.Lock()
						buf.Write(tmp[:n])
						mu.Unlock()
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() []byte {
		mu.Lock()
		defer mu.Unlock()
		return append([]byte(nil), buf.Bytes()...)
	}
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestProxyTransparent(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

// TestProxyTearPreservesStream: torn delivery fragments writes but
// never loses or reorders a byte.
func TestProxyTearPreservesStream(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{Seed: 2, TearProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	payload := make([]byte, 8192)
	if _, err := rand.Read(payload); err != nil {
		t.Fatal(err)
	}
	go c.Write(payload)
	got := make([]byte, len(payload))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("torn stream corrupted the payload")
	}
}

// TestProxyDuplicateDelivery: a duplicated chunk arrives twice on a
// plaintext stream.
func TestProxyDuplicateDelivery(t *testing.T) {
	addr, received := sinkServer(t)
	p, err := NewProxy(addr, Config{Seed: 3, DupProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("once")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := received(); len(got) >= 8 {
			if string(got) != "onceonce" {
				t.Fatalf("received %q, want %q", got, "onceonce")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("duplicate never arrived; got %q", received())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProxyCut: a scheduled cut tears the connection down; the client
// observes EOF (possibly after a torn prefix).
func TestProxyCut(t *testing.T) {
	p, err := NewProxy(echoServer(t), Config{Seed: 4, CutProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	c.Write([]byte("doomed"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		_, err := c.Read(buf)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Fatal("connection survived a certain cut")
			}
			return // RST is fine too
		}
	}
}

// TestProxyPartitionAndHeal: a blackholed direction silently discards
// bytes while the socket stays up; healing restores delivery of
// subsequent traffic only.
func TestProxyPartitionAndHeal(t *testing.T) {
	addr, received := sinkServer(t)
	p, err := NewProxy(addr, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	// Establish the relay before partitioning (the write below must
	// traverse the pump, not sit in a dial race).
	if _, err := c.Write([]byte("pre.")); err != nil {
		t.Fatal(err)
	}
	waitFor := func(want string) {
		deadline := time.Now().Add(2 * time.Second)
		for string(received()) != want {
			if time.Now().After(deadline) {
				t.Fatalf("received %q, want %q", received(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("pre.")

	p.Partition(true, false)
	if _, err := c.Write([]byte("lost.")); err != nil {
		t.Fatal(err) // write succeeds: the partition eats it silently
	}
	time.Sleep(50 * time.Millisecond)
	if got := string(received()); got != "pre." {
		t.Fatalf("partitioned bytes leaked through: %q", got)
	}

	p.Heal()
	if _, err := c.Write([]byte("seen.")); err != nil {
		t.Fatal(err)
	}
	waitFor("pre.seen.")
}

// TestPlanDeterminism: the fault schedule is a pure function of (seed,
// connection, direction, chunk sequence).
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Jitter: time.Millisecond, CutProb: 0.3, TearProb: 0.3, DupProb: 0.3}
	p := &Proxy{cfg: cfg}
	sizes := []int{1, 7, 100, 4096, 17, 1000}
	a, b := dirRNG(42, 3, 0), dirRNG(42, 3, 0)
	for i, n := range sizes {
		pa, pb := p.plan(a, n), p.plan(b, n)
		if pa != pb {
			t.Fatalf("chunk %d: same seed diverged: %+v vs %+v", i, pa, pb)
		}
	}
	// A different connection index draws a different schedule.
	c := dirRNG(42, 4, 0)
	same := true
	for _, n := range sizes {
		if p.plan(dirRNG(42, 3, 0), n) != p.plan(c, n) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct connections share a fault schedule")
	}
}

// TestWrapConnTearAndCut: the in-process wrapper fragments writes and
// dies exactly at its byte budget — the peer sees the torn prefix, then
// EOF.
func TestWrapConnTearAndCut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- result{0, err}
			return
		}
		defer c.Close()
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		b, err := io.ReadAll(c)
		if errors.Is(err, io.EOF) {
			err = nil
		}
		done <- result{len(b), err}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	wc := WrapConn(raw, ConnConfig{Seed: 7, Tear: true, CutAfter: 10})
	n, werr := wc.Write(make([]byte, 32))
	if werr == nil {
		t.Fatal("write past the cut budget succeeded")
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes before the cut, want 10", n)
	}
	res := <-done
	if res.err != nil && !errors.Is(res.err, net.ErrClosed) {
		// A RST instead of FIN is acceptable: the peer died mid-frame.
		t.Logf("reader ended with %v", res.err)
	}
	if res.n > 10 {
		t.Fatalf("peer received %d bytes, budget was 10", res.n)
	}
}
