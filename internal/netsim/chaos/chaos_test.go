package chaos

import (
	"strings"
	"testing"
	"time"

	"gridbank/internal/netsim"
	"gridbank/internal/obs"
)

// tlogWriter routes the harness's structured log into test output.
type tlogWriter struct{ t *testing.T }

func (w tlogWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

func testLog(t *testing.T) *obs.Logger {
	return obs.NewLogger(tlogWriter{t}, obs.LevelInfo)
}

// moderate is the fault profile the fast test and the soak share as a
// baseline: a lossy, jittery, frame-tearing WAN.
var moderate = netsim.Config{
	Latency:  500 * time.Microsecond,
	Jitter:   2 * time.Millisecond,
	CutProb:  0.01,
	TearProb: 0.25,
	DupProb:  0.05,
}

// TestChaosEndToEnd is the fixed-seed smoke: a sharded, replicated,
// usage-enabled deployment under partitions, cuts, torn frames and
// retries must conserve money exactly, apply every operation exactly
// once, leak no escrow and converge its replicas.
func TestChaosEndToEnd(t *testing.T) {
	res, err := Run(Config{
		Seed:     1,
		Duration: 1500 * time.Millisecond,
		Faults:   moderate,
		Log:      testLog(t),
	})
	if err != nil {
		t.Fatal(err) // the error carries the seed
	}
	if res.AckedOps == 0 {
		t.Fatalf("no operation survived the chaos window: %+v", res)
	}
	t.Logf("seed %d: acked=%d ambiguous=%d redriven=%d retries=%d goodput=%.0f ops/s p99=%v",
		res.Seed, res.AckedOps, res.AmbiguousOps, res.Redriven, res.Retries, res.GoodputOps, res.P99)
}

// TestChaosRetryDisabledStillExactlyOnce pins that exactly-once comes
// from the idempotency keys, not from the retry layer: with retries off
// more operations end ambiguous, and every one of them must still
// re-drive to a single application.
func TestChaosRetryDisabledStillExactlyOnce(t *testing.T) {
	res, err := Run(Config{
		Seed:          2,
		Duration:      time.Second,
		Faults:        moderate,
		RetryDisabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("retries disabled but %d retries committed", res.Retries)
	}
}

// TestChaosSoak runs several seeds at a heavier fault profile. Skipped
// under -short; CI runs it as the seeded chaos-soak smoke. On failure
// the error message names the seed to replay.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	heavy := netsim.Config{
		Latency:  time.Millisecond,
		Jitter:   4 * time.Millisecond,
		CutProb:  0.04,
		TearProb: 0.5,
		DupProb:  0.1,
	}
	for _, seed := range []int64{7, 19, 23} {
		res, err := Run(Config{
			Seed:           seed,
			Duration:       4 * time.Second,
			Workers:        6,
			UsageJobs:      32,
			Faults:         heavy,
			PartitionEvery: 150 * time.Millisecond,
			Log:            testLog(t),
		})
		if err != nil {
			t.Fatalf("soak failed (replay with this seed): %v", err)
		}
		t.Logf("seed %d: acked=%d ambiguous=%d redriven=%d retries=%d goodput=%.0f ops/s p50=%v p99=%v",
			res.Seed, res.AckedOps, res.AmbiguousOps, res.Redriven, res.Retries, res.GoodputOps, res.P50, res.P99)
	}
}
