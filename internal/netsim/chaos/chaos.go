// Package chaos is the end-to-end resilience harness: it stands up a
// sharded, replicated, usage-enabled GridBank deployment, interposes
// netsim fault proxies on the client and replication links, runs a
// randomized keyed-transfer + usage workload while partitions, cuts,
// torn frames and duplicated bytes fire, then heals the network,
// re-drives every ambiguous operation under its original idempotency
// key, and asserts the invariants that must hold under any fault
// interleaving:
//
//   - exact conservation: the sharded ledger's total balance equals the
//     sum of deposits, to the micro-credit;
//   - exactly-once application: every operation the harness issued was
//     applied exactly once — a retried keyed DirectTransfer never
//     double-spends, a resubmitted usage batch never double-settles —
//     checked by replaying the harness's own account model against the
//     ledger;
//   - zero escrow leakage: no 2PC cross-shard escrow survives the run;
//   - convergence: replicas reach the primary's sequence after the
//     partitions heal and agree with it on account state.
//
// Run is exported (not test-only) so cmd/experiments can sweep fault
// rate × retry policy over the same harness the tests pin.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gridbank"
	"gridbank/internal/netsim"
	"gridbank/internal/obs"
)

// Config parameterizes one chaos run. The zero value of every field
// takes a default; Seed 0 is a valid (and deterministic) seed.
type Config struct {
	// Seed drives the workload, the fault driver and every proxy's
	// fault schedule. Failure reports include it.
	Seed int64
	// Duration is the chaos window the workload runs for. Default 2s.
	Duration time.Duration
	// Workers is the number of concurrent transfer clients, each with
	// its own funded account. Default 4.
	Workers int
	// Shards is the shard count. Default 3.
	Shards int
	// Replicas is the read-replica count, assigned round-robin over the
	// shards, each following its shard through a fault proxy. Default 3.
	Replicas int
	// UsageJobs is how many usage charges are submitted during the
	// chaos window (and resubmitted wholesale afterwards — intake dedup
	// by submission ID makes the blanket resubmit safe). Default 16.
	UsageJobs int
	// Faults is the byte-level fault profile of the client link (its
	// Seed field is overridden with a value derived from Seed). The
	// replication links get transparent proxies — their faulting is the
	// driver's partition windows — so post-heal convergence failures
	// indict the ledger, not a still-faulty pipe.
	Faults netsim.Config
	// PartitionEvery is the mean gap between fault-driver events
	// (partition windows of 100–300ms on a random link, occasionally a
	// CutAll on the client link). Default 250ms; negative disables the
	// driver.
	PartitionEvery time.Duration
	// RetryDisabled turns off the routed client's retry policy — the
	// baseline arm of the retry sweep.
	RetryDisabled bool
	// CallTimeout is the per-call deadline of the chaos clients.
	// Default 800ms.
	CallTimeout time.Duration
	// Log records fault-driver events (debug) and invariant failures
	// (error) in the shared obs log format; every line names the seed,
	// and chaos client calls are traced so server-side slow-op lines
	// correlate by trace ID. Nil discards.
	Log *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.UsageJobs <= 0 {
		c.UsageJobs = 16
	}
	if c.PartitionEvery == 0 {
		c.PartitionEvery = 250 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 800 * time.Millisecond
	}
	return c
}

// Result carries a run's metrics. Invariant violations are returned as
// errors from Run, not encoded here.
type Result struct {
	Seed         int64
	AckedOps     int           // transfers acknowledged inside the chaos window
	AmbiguousOps int           // transfers whose outcome was unknown at the deadline
	Redriven     int           // ambiguous transfers re-driven post-heal (all of them)
	Retries      int64         // committed client-side retries (amplification numerator)
	Duration     time.Duration // chaos window actually run
	GoodputOps   float64       // acked transfers per second during chaos
	P50, P99     time.Duration // latency of acked transfers
}

// op is one intended transfer: the idempotency key pins it, so issuing
// it again after an ambiguous failure cannot apply it twice.
type op struct {
	key    string
	from   gridbank.AccountID
	to     gridbank.AccountID
	amount gridbank.Amount
	acked  bool
}

// Run executes one seeded chaos run and checks every invariant,
// returning metrics on success and a seed-stamped error on the first
// violation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	clog := cfg.Log.With("seed", cfg.Seed)
	fail := func(format string, a ...any) error {
		clog.Error("chaos run failed", "err", fmt.Sprintf(format, a...))
		return fmt.Errorf("chaos seed %d: %s", cfg.Seed, fmt.Sprintf(format, a...))
	}

	dep, err := gridbank.NewDeployment(gridbank.DeploymentConfig{VO: "VO-Chaos"})
	if err != nil {
		return nil, fail("deployment: %v", err)
	}
	defer dep.Close()
	if err := dep.EnableSharding(cfg.Shards); err != nil {
		return nil, fail("sharding: %v", err)
	}
	if _, err := dep.EnableUsage(gridbank.UsageOptions{Workers: 2, BatchSize: 16}); err != nil {
		return nil, fail("usage: %v", err)
	}

	// Replication links ride transparent proxies the driver partitions.
	var proxies []*netsim.Proxy
	defer func() {
		for _, p := range proxies {
			p.Close()
		}
	}()
	var repProxies []*netsim.Proxy
	for i := 0; i < cfg.Replicas; i++ {
		shardIdx := i % cfg.Shards
		pub, err := dep.PublisherAddr(shardIdx)
		if err != nil {
			return nil, fail("publisher shard %d: %v", shardIdx, err)
		}
		rp, err := netsim.NewProxy(pub, netsim.Config{Seed: cfg.Seed + 1000 + int64(i)})
		if err != nil {
			return nil, fail("replica proxy: %v", err)
		}
		proxies = append(proxies, rp)
		repProxies = append(repProxies, rp)
		if _, err := dep.AddShardReplicaAt(fmt.Sprintf("chaos-rep-%d", i), shardIdx, rp.Addr()); err != nil {
			return nil, fail("replica %d: %v", i, err)
		}
	}

	// The client link carries the full byte-fault profile.
	fcfg := cfg.Faults
	fcfg.Seed = cfg.Seed
	cliProxy, err := netsim.NewProxy(dep.Addr(), fcfg)
	if err != nil {
		return nil, fail("client proxy: %v", err)
	}
	proxies = append(proxies, cliProxy)

	// Identities, accounts, funding — over the direct (healthy) link.
	admin, err := dep.Dial(dep.Banker)
	if err != nil {
		return nil, fail("admin dial: %v", err)
	}
	defer admin.Close()
	users := make([]*gridbank.Identity, cfg.Workers)
	accts := make([]gridbank.AccountID, cfg.Workers)
	const fund = 1_000_000 // G$ per funded account; large enough that insufficient_funds cannot occur
	for i := range users {
		u, err := dep.NewUser(fmt.Sprintf("chaos-w%d", i))
		if err != nil {
			return nil, fail("user %d: %v", i, err)
		}
		users[i] = u
		c, err := dep.Dial(u)
		if err != nil {
			return nil, fail("dial %d: %v", i, err)
		}
		a, err := c.CreateAccount("VO-Chaos", gridbank.GridDollar)
		c.Close()
		if err != nil {
			return nil, fail("account %d: %v", i, err)
		}
		accts[i] = a.AccountID
		if err := admin.AdminDeposit(a.AccountID, gridbank.G(fund)); err != nil {
			return nil, fail("fund %d: %v", i, err)
		}
	}
	consumer, consumerID, gspAcct, gspID, err := usageAccounts(dep, admin, gridbank.G(fund))
	if err != nil {
		return nil, fail("%v", err)
	}
	owners := make(map[gridbank.AccountID]*gridbank.Identity, cfg.Workers+2)
	for i, a := range accts {
		owners[a] = users[i]
	}
	owners[consumer] = consumerID
	owners[gspAcct] = gspID

	led := dep.Sharded()
	// Consistent hashing may leave a shard with none of the accounts
	// above; give every shard at least one account so the convergence
	// check can read each replica meaningfully.
	covered := make(map[int]bool)
	for a := range owners {
		covered[led.ShardFor(a)] = true
	}
	for i := 0; len(covered) < cfg.Shards && i < 64; i++ {
		u, err := dep.NewUser(fmt.Sprintf("chaos-probe-%d", i))
		if err != nil {
			return nil, fail("probe user: %v", err)
		}
		c, err := dep.Dial(u)
		if err != nil {
			return nil, fail("probe dial: %v", err)
		}
		a, err := c.CreateAccount("VO-Chaos", gridbank.GridDollar)
		c.Close()
		if err != nil {
			return nil, fail("probe account: %v", err)
		}
		owners[a.AccountID] = u
		covered[led.ShardFor(a.AccountID)] = true
	}
	if len(covered) < cfg.Shards {
		return nil, fail("could not place an account on every shard")
	}

	total0, err := led.TotalBalance()
	if err != nil {
		return nil, fail("total balance: %v", err)
	}

	// Routed chaos clients: primary through the fault proxy, replicas
	// direct (reads cannot violate money invariants; the replication
	// stream itself is already faulted).
	ropts := gridbank.RouteOptions{
		MaxStaleness:    2 * time.Second,
		BreakerCooldown: 250 * time.Millisecond,
		Retry:           gridbank.RetryPolicy{Disabled: cfg.RetryDisabled},
	}
	dialRouted := func(id *gridbank.Identity) (*gridbank.RoutedClient, error) {
		primary, err := gridbank.Dial(cliProxy.Addr(), id, dep.Trust)
		if err != nil {
			return nil, err
		}
		primary.DialTimeout = 2 * time.Second
		primary.CallTimeout = cfg.CallTimeout
		primary.TraceCalls = true
		var reps []*gridbank.Client
		for _, r := range dep.Replicas() {
			c, err := gridbank.Dial(r.Addr(), id, dep.Trust)
			if err != nil {
				primary.Close()
				return nil, err
			}
			reps = append(reps, c)
		}
		return gridbank.NewRoutedClient(primary, reps, ropts)
	}

	// The fault driver: partition windows on random links, occasional
	// hard connection cuts on the client link.
	driverStop := make(chan struct{})
	var driverWG sync.WaitGroup
	if cfg.PartitionEvery > 0 {
		driverWG.Add(1)
		go func() {
			defer driverWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
			links := append(append([]*netsim.Proxy(nil), repProxies...), cliProxy)
			for {
				gap := cfg.PartitionEvery/2 + time.Duration(rng.Int63n(int64(cfg.PartitionEvery)))
				select {
				case <-driverStop:
					return
				case <-time.After(gap):
				}
				if rng.Float64() < 0.1 {
					clog.Debug("chaos driver: cut all client connections")
					cliProxy.CutAll()
					continue
				}
				li := rng.Intn(len(links))
				p := links[li]
				dir := rng.Intn(3)
				p.Partition(dir != 1, dir != 0) // c2s, s2c or both
				window := 100*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
				clog.Debug("chaos driver: partition", "link", li, "dir", dir, "window", window)
				select {
				case <-driverStop:
					p.Heal()
					return
				case <-time.After(window):
				}
				p.Heal()
			}
		}()
	}

	// Chaos window: workers fire keyed transfers from their own account
	// to random others; the usage submitter streams charge batches.
	var (
		wg            sync.WaitGroup
		workerOps     = make([][]op, cfg.Workers)
		workerErr     = make([]error, cfg.Workers)
		workerRetries = make([]int64, cfg.Workers)
		latMu         sync.Mutex
		lats          []time.Duration
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rc, err := dialRouted(users[w])
			if err != nil {
				workerErr[w] = err
				return
			}
			defer rc.Close()
			defer func() { workerRetries[w] = rc.RetryCount() }()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for i := 0; time.Now().Before(deadline); i++ {
				to := accts[rng.Intn(len(accts))]
				if to == accts[w] {
					to = consumer
				}
				o := op{
					key:    fmt.Sprintf("chaos-%d-w%d-%d", cfg.Seed, w, i),
					from:   accts[w],
					to:     to,
					amount: gridbank.Micro(1 + rng.Int63n(1_000_000)),
				}
				t0 := time.Now()
				_, err := rc.DirectTransferKeyed(o.key, o.from, o.to, o.amount, "")
				if err == nil {
					o.acked = true
					latMu.Lock()
					lats = append(lats, time.Since(t0))
					latMu.Unlock()
				}
				workerOps[w] = append(workerOps[w], o)
				// Occasionally read through the routed path so the
				// breaker/degraded-read machinery sees traffic too.
				if i%16 == 15 {
					rc.AccountDetails(accts[w]) //nolint:errcheck — reads can't break invariants
				}
				time.Sleep(time.Duration(rng.Intn(2_000_000))) // 0–2ms pacing
			}
		}(w)
	}
	subs := usageBatch(cfg, consumer, gspAcct)
	var retries int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rc, err := dialRouted(dep.Banker)
		if err != nil {
			return // the post-heal blanket resubmit covers everything
		}
		defer rc.Close()
		defer func() { retries = rc.RetryCount() }()
		for i := 0; i < len(subs) && time.Now().Before(deadline); i += 4 {
			end := i + 4
			if end > len(subs) {
				end = len(subs)
			}
			rc.UsageSubmit(subs[i:end]) //nolint:errcheck — intake dedup makes the resubmit safe
		}
	}()
	wg.Wait()
	chaosDur := time.Since(start)
	close(driverStop)
	driverWG.Wait()
	for _, p := range proxies {
		p.Heal()
	}
	for w, err := range workerErr {
		if err != nil {
			return nil, fail("worker %d never started: %v", w, err)
		}
	}

	// Reconcile over the healthy link: re-drive every ambiguous
	// transfer under its original key (replays server-side if the
	// original executed), resubmit the whole usage batch, drain.
	for _, n := range workerRetries {
		retries += n
	}
	res := &Result{Seed: cfg.Seed, Duration: chaosDur, Retries: retries}
	for w := range workerOps {
		direct, err := dep.Dial(users[w])
		if err != nil {
			return nil, fail("reconcile dial %d: %v", w, err)
		}
		for i := range workerOps[w] {
			o := &workerOps[w][i]
			if o.acked {
				res.AckedOps++
				continue
			}
			res.AmbiguousOps++
			if _, err := rc2Transfer(direct, o); err != nil {
				direct.Close()
				return nil, fail("re-drive %s: %v", o.key, err)
			}
			res.Redriven++
		}
		direct.Close()
	}
	if _, err := admin.UsageSubmit(subs); err != nil {
		return nil, fail("usage resubmit: %v", err)
	}
	st, err := admin.UsageDrain(30 * time.Second)
	if err != nil {
		return nil, fail("usage drain: %v", err)
	}
	if st.Pending != 0 {
		return nil, fail("usage pipeline not drained: %+v", st)
	}
	if st.Settled != uint64(len(subs)) {
		return nil, fail("usage settled %d times, want exactly %d (duplicate settlement?)", st.Settled, len(subs))
	}

	// Invariants.
	if err := checkMoney(cfg, dep, admin, total0, workerOps, accts, consumer, gspAcct, len(subs), fund); err != nil {
		clog.Error("chaos invariant failed", "err", err)
		return nil, err
	}
	if err := checkReplicas(cfg, dep, owners); err != nil {
		clog.Error("chaos invariant failed", "err", err)
		return nil, err
	}

	res.GoodputOps = float64(res.AckedOps) / chaosDur.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		res.P50 = lats[n/2]
		res.P99 = lats[n*99/100]
	}
	clog.Info("chaos run passed",
		"acked", res.AckedOps, "ambiguous", res.AmbiguousOps, "redriven", res.Redriven,
		"retries", res.Retries, "goodput_ops", int64(res.GoodputOps))
	return res, nil
}

// rc2Transfer re-drives one op over a direct client.
func rc2Transfer(c *gridbank.Client, o *op) (any, error) {
	return c.DirectTransferKeyed(o.key, o.from, o.to, o.amount, "")
}

// checkMoney asserts conservation, exactly-once application and zero
// escrow leakage by replaying the harness's op log into a local model
// and comparing every account.
func checkMoney(cfg Config, dep *gridbank.Deployment, admin *gridbank.Client, total0 gridbank.Amount,
	workerOps [][]op, accts []gridbank.AccountID, consumer, gspAcct gridbank.AccountID, usageJobs, fund int) error {
	fail := func(format string, a ...any) error {
		return fmt.Errorf("chaos seed %d: %s", cfg.Seed, fmt.Sprintf(format, a...))
	}
	led := dep.Sharded()
	total1, err := led.TotalBalance()
	if err != nil {
		return fail("total balance: %v", err)
	}
	if total0 != total1 {
		return fail("conservation violated: total %s -> %s", total0, total1)
	}
	esc, err := led.PendingEscrow()
	if err != nil {
		return fail("pending escrow: %v", err)
	}
	if esc != 0 {
		return fail("2PC escrow leaked: %s still pending after heal", esc)
	}
	model := make(map[gridbank.AccountID]gridbank.Amount)
	for _, a := range accts {
		model[a] = gridbank.G(int64(fund))
	}
	model[consumer] = gridbank.G(int64(fund))
	model[gspAcct] = 0
	for _, ops := range workerOps {
		for _, o := range ops {
			model[o.from] -= o.amount
			model[o.to] += o.amount
		}
	}
	model[consumer] -= gridbank.G(int64(usageJobs)) // 1 G$ per settled job
	model[gspAcct] += gridbank.G(int64(usageJobs))
	for id, want := range model {
		a, err := admin.AccountDetails(id)
		if err != nil {
			return fail("details %s: %v", id, err)
		}
		if a.AvailableBalance != want {
			return fail("account %s: balance %s, model says %s (an op applied zero or two times)",
				id, a.AvailableBalance, want)
		}
	}
	return nil
}

// checkReplicas asserts every replica converges to its shard's current
// sequence and agrees with the model-verified primary on the accounts
// of its shard. Replica reads authenticate as each account's owner —
// the replica enforces the same ownership rule as the primary, and its
// read-only bank carries no admin list.
func checkReplicas(cfg Config, dep *gridbank.Deployment, owners map[gridbank.AccountID]*gridbank.Identity) error {
	fail := func(format string, a ...any) error {
		return fmt.Errorf("chaos seed %d: %s", cfg.Seed, fmt.Sprintf(format, a...))
	}
	if err := dep.SyncReplicas(15 * time.Second); err != nil {
		return fail("replicas failed to converge after heal: %v", err)
	}
	led := dep.Sharded()
	for i, r := range dep.Replicas() {
		checked := false
		for acct, owner := range owners {
			if led.ShardFor(acct) != r.Shard {
				continue
			}
			c, err := gridbank.Dial(r.Addr(), owner, dep.Trust)
			if err != nil {
				return fail("dial replica %d: %v", i, err)
			}
			got, err := c.AccountDetails(acct)
			c.Close()
			if err != nil {
				return fail("replica %d read %s: %v", i, acct, err)
			}
			want, err := led.Details(acct)
			if err != nil {
				return fail("primary read %s: %v", acct, err)
			}
			if got.AvailableBalance != want.AvailableBalance {
				return fail("replica %d diverged on %s: %s, primary %s",
					i, acct, got.AvailableBalance, want.AvailableBalance)
			}
			checked = true
		}
		if !checked {
			return fail("replica %d: no harness account landed on shard %d to verify", i, r.Shard)
		}
	}
	return nil
}

// usageAccounts creates the usage consumer (funded drawer) and GSP
// (recipient) accounts, returning their identities for replica-side
// owner-authenticated reads.
func usageAccounts(dep *gridbank.Deployment, admin *gridbank.Client, fund gridbank.Amount) (consumer gridbank.AccountID, consumerID *gridbank.Identity, gsp gridbank.AccountID, gspID *gridbank.Identity, err error) {
	mk := func(name string) (gridbank.AccountID, *gridbank.Identity, error) {
		u, err := dep.NewUser(name)
		if err != nil {
			return "", nil, err
		}
		c, err := dep.Dial(u)
		if err != nil {
			return "", nil, err
		}
		defer c.Close()
		a, err := c.CreateAccount("VO-Chaos", gridbank.GridDollar)
		if err != nil {
			return "", nil, err
		}
		return a.AccountID, u, nil
	}
	if consumer, consumerID, err = mk("chaos-consumer"); err != nil {
		return "", nil, "", nil, fmt.Errorf("consumer account: %w", err)
	}
	if err = admin.AdminDeposit(consumer, fund); err != nil {
		return "", nil, "", nil, fmt.Errorf("fund consumer: %w", err)
	}
	if gsp, gspID, err = mk("chaos-gsp"); err != nil {
		return "", nil, "", nil, fmt.Errorf("gsp account: %w", err)
	}
	return consumer, consumerID, gsp, gspID, nil
}

// usageBatch builds cfg.UsageJobs priced one-CPU-hour charges (1 G$
// each at the flat rate card) from consumer to gspAcct.
func usageBatch(cfg Config, consumer, gspAcct gridbank.AccountID) []gridbank.UsageSubmission {
	rates := map[gridbank.UsageItem]gridbank.Rate{gridbank.ItemCPU: gridbank.PerHour(1_000_000)}
	for _, item := range gridbank.AllUsageItems {
		if _, ok := rates[item]; !ok {
			rates[item] = gridbank.ZeroRate
		}
	}
	card := &gridbank.RateCard{Provider: "chaos-gsp", Currency: gridbank.GridDollar, Rates: rates}
	now := time.Now()
	subs := make([]gridbank.UsageSubmission, 0, cfg.UsageJobs)
	for i := 0; i < cfg.UsageJobs; i++ {
		id := fmt.Sprintf("uchaos-%d-%d", cfg.Seed, i)
		var rec gridbank.UsageRecord
		rec.User.CertificateName = "chaos-consumer"
		rec.Job.JobID = id
		rec.Job.Application = "chaos"
		rec.Job.Start = now.Add(-time.Hour)
		rec.Job.End = now
		rec.Resource.Host = "h"
		rec.Resource.CertificateName = "chaos-gsp"
		rec.Resource.LocalJobID = "pid"
		rec.SetQuantity(gridbank.ItemCPU, 3600)
		raw, err := gridbank.EncodeUsageRecord(&rec, gridbank.UsageFormatJSON)
		if err != nil {
			panic(err) // static record shape; cannot fail
		}
		subs = append(subs, gridbank.UsageSubmission{
			ID: id, Drawer: consumer, Recipient: gspAcct, RUR: raw, Rates: card,
		})
	}
	return subs
}
