package netsim

import (
	"io"
	"math/rand"
	"net"
	"sync"
)

// ConnConfig sets a wrapped connection's write-side faults.
type ConnConfig struct {
	// Seed drives the fragmentation schedule.
	Seed int64
	// Tear fragments every Write into 1–8 byte pieces: the peer's
	// reader observes partial frames mid-read.
	Tear bool
	// CutAfter, when positive, closes the underlying connection after
	// that many bytes have been written — the byte-budget version of a
	// client dying mid-frame.
	CutAfter int
}

// Conn wraps a net.Conn with torn/cut writes. Unlike Proxy it sits
// inside the process, so a test can place it beneath a TLS client and
// tear the record stream itself.
type Conn struct {
	net.Conn
	cfg ConnConfig

	mu      sync.Mutex
	rng     *rand.Rand
	written int
	cut     bool
}

// WrapConn wraps c.
func WrapConn(c net.Conn, cfg ConnConfig) *Conn {
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Write implements net.Conn, applying the fault schedule.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, io.ErrClosedPipe
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if c.cfg.Tear {
			n = 1 + c.rng.Intn(8)
			if n > len(p) {
				n = len(p)
			}
		}
		if c.cfg.CutAfter > 0 && c.written+n > c.cfg.CutAfter {
			n = c.cfg.CutAfter - c.written
		}
		if n > 0 {
			w, err := c.Conn.Write(p[:n])
			total += w
			c.written += w
			if err != nil {
				return total, err
			}
			p = p[n:]
		}
		if c.cfg.CutAfter > 0 && c.written >= c.cfg.CutAfter {
			c.cut = true
			c.Conn.Close()
			return total, io.ErrClosedPipe
		}
	}
	return total, nil
}
