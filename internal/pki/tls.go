package pki

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"time"
)

// Globus used GSS-API over its I/O layer for authenticated, encrypted
// channels (§3.1). Here the equivalent is mutual TLS: both sides present
// certificates, and GridBank's authorization step (subject-name lookup in
// the accounts/admin tables) runs on the verified peer chain.
//
// Proxy certificates require custom verification (a proxy is signed by a
// non-CA end-entity certificate, which stock X.509 path building
// rejects), so both configs disable the stock verifier and install
// TrustStore.VerifyPeer — exactly the split Globus made with its own
// proxy-aware validation.

// ServerTLSConfig builds the GridBank server's TLS configuration: it
// presents the server identity and demands a client certificate verified
// by the trust store (proxies allowed).
func ServerTLSConfig(server *Identity, ts *TrustStore) (*tls.Config, error) {
	cert, err := tlsCertificate(server)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		ClientAuth:   tls.RequireAnyClientCert,
		MinVersion:   tls.VersionTLS13,
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			_, err := verifyRawChain(ts, rawCerts)
			return err
		},
	}, nil
}

// ClientTLSConfig builds a client configuration that authenticates with
// the given identity (typically a user proxy) and verifies the server
// against the trust store.
func ClientTLSConfig(client *Identity, ts *TrustStore) (*tls.Config, error) {
	cert, err := tlsCertificate(client)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS13,
		// Server identity is pinned to the trust store, not to DNS names:
		// Grid deployments address services by contact string, and the
		// subject-name authorization happens at the application layer.
		InsecureSkipVerify: true,
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			_, err := verifyRawChain(ts, rawCerts)
			return err
		},
	}, nil
}

func tlsCertificate(id *Identity) (tls.Certificate, error) {
	if id == nil || id.Cert == nil || id.Key == nil {
		return tls.Certificate{}, errors.New("pki: incomplete identity")
	}
	chain := [][]byte{id.Cert.Raw}
	for _, c := range id.Chain {
		chain = append(chain, c.Raw)
	}
	return tls.Certificate{Certificate: chain, PrivateKey: id.Key, Leaf: id.Cert}, nil
}

func verifyRawChain(ts *TrustStore, rawCerts [][]byte) (string, error) {
	if len(rawCerts) == 0 {
		return "", errors.New("pki: peer sent no certificates")
	}
	chain := make([]*x509.Certificate, 0, len(rawCerts))
	for _, raw := range rawCerts {
		c, err := x509.ParseCertificate(raw)
		if err != nil {
			return "", fmt.Errorf("pki: parse peer certificate: %w", err)
		}
		chain = append(chain, c)
	}
	return ts.VerifyPeer(chain, time.Now())
}

// PeerSubject extracts the authenticated base subject name from a
// completed TLS connection state. It re-runs chain verification so the
// caller never trusts an unverified name.
func PeerSubject(ts *TrustStore, state tls.ConnectionState) (string, error) {
	raw := make([][]byte, len(state.PeerCertificates))
	for i, c := range state.PeerCertificates {
		raw[i] = c.Raw
	}
	return verifyRawChain(ts, raw)
}
