// Package pki is the security substrate of GridBank, standing in for the
// Globus Security Infrastructure (GSI) the paper builds on (§3.1, §3.2).
//
// It provides what the paper's Security Layer needs:
//
//   - a Certificate Authority issuing X509v3 identity certificates ("
//     Certificates can be issued by the Globus CA. Alternatively, GridBank
//     can set up its own CA" — this is that CA);
//   - user proxy certificates: short-lived certificates signed by the
//     user's own identity certificate, preserving the Grid's single
//     sign-on property ("A user proxy is a certificate signed by the user,
//     which is later used to repeatedly authenticate the user to
//     resources");
//   - mutually-authenticated, encrypted channels via crypto/tls (the
//     paper's GSS-API/SSL data protection);
//   - detached signatures over payment instruments, cost statements and
//     RURs for the paper's non-repudiation requirement (§2.1).
//
// ECDSA P-256 is used instead of the early-2000s RSA-1024 of the Globus
// era: same protocol roles, modern parameters.
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"
)

// Errors returned by the package.
var (
	ErrNotCA        = errors.New("pki: certificate is not a CA")
	ErrBadSignature = errors.New("pki: signature verification failed")
	ErrExpired      = errors.New("pki: certificate outside validity window")
	ErrUntrusted    = errors.New("pki: certificate chain does not reach a trusted CA")
	ErrProxyTooDeep = errors.New("pki: proxy delegation depth exceeded")
	ErrNameMismatch = errors.New("pki: subject name mismatch")
	ErrBadKey       = errors.New("pki: malformed key material")
)

// Identity bundles a certificate with its private key: a Grid principal
// (user, GSP, GridBank server, or administrator).
type Identity struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// Chain holds intermediate certificates between Cert and the CA (for
	// proxies: the user identity certificate that signed the proxy).
	Chain []*x509.Certificate
}

// SubjectName returns the paper's "Certificate Name": the globally unique
// identifier GridBank keys accounts by (§5.1 CertificateName).
func (id *Identity) SubjectName() string { return SubjectNameOf(id.Cert) }

// SubjectNameOf renders a certificate's distinguished name in the
// conventional Grid form "CN=name,O=org".
func SubjectNameOf(cert *x509.Certificate) string {
	name := cert.Subject
	s := "CN=" + name.CommonName
	for _, o := range name.Organization {
		s += ",O=" + o
	}
	for _, ou := range name.OrganizationalUnit {
		s += ",OU=" + ou
	}
	return s
}

// CA is a certificate authority. A Grid deployment typically runs one CA
// per Virtual Organization; GridBank trusts a set of CAs. Serial numbers
// are 62-bit random values, so a CA resumed from saved key material
// (ResumeCA) never reuses serials.
type CA struct {
	id *Identity
}

// NewCA creates a self-signed CA with the given common name and
// organization, valid for validity from now.
func NewCA(commonName, org string, validity time.Duration) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{org}},
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(validity),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature | x509.KeyUsageCRLSign,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLenZero:        false,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: self-sign CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{id: &Identity{Cert: cert, Key: key}}, nil
}

// ResumeCA reconstructs a CA from a previously saved CA identity
// (certificate + key), e.g. after a gridbankd restart.
func ResumeCA(id *Identity) (*CA, error) {
	if id == nil || id.Cert == nil || id.Key == nil {
		return nil, errors.New("pki: incomplete CA identity")
	}
	if !id.Cert.IsCA {
		return nil, ErrNotCA
	}
	return &CA{id: id}, nil
}

// Certificate returns the CA's certificate (distribute to relying
// parties).
func (ca *CA) Certificate() *x509.Certificate { return ca.id.Cert }

// Identity returns the CA identity (certificate plus key).
func (ca *CA) Identity() *Identity { return ca.id }

func (ca *CA) nextSerial() *big.Int {
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 62))
	if err != nil {
		// crypto/rand failure is unrecoverable for a CA.
		panic(fmt.Sprintf("pki: serial generation: %v", err))
	}
	return serial
}

// IssueOptions control identity issuance.
type IssueOptions struct {
	CommonName   string
	Organization string
	Unit         string
	Validity     time.Duration // default 365 days
	DNSNames     []string      // for server certificates (TLS SNI/hostname checks)
	IsServer     bool          // adds server-auth EKU
}

// Issue creates a new end-entity identity signed by the CA.
func (ca *CA) Issue(opts IssueOptions) (*Identity, error) {
	if opts.CommonName == "" {
		return nil, errors.New("pki: issue: empty common name")
	}
	if opts.Validity <= 0 {
		opts.Validity = 365 * 24 * time.Hour
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate key: %w", err)
	}
	subject := pkix.Name{CommonName: opts.CommonName}
	if opts.Organization != "" {
		subject.Organization = []string{opts.Organization}
	}
	if opts.Unit != "" {
		subject.OrganizationalUnit = []string{opts.Unit}
	}
	eku := []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth}
	if opts.IsServer {
		eku = append(eku, x509.ExtKeyUsageServerAuth)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          ca.nextSerial(),
		Subject:               subject,
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(opts.Validity),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           eku,
		BasicConstraintsValid: true,
		DNSNames:              opts.DNSNames,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.id.Cert, &key.PublicKey, ca.id.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: sign certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Identity{Cert: cert, Key: key}, nil
}

// proxyMarker is how we tag proxy certificates: the proxy's CN is the
// issuer identity's CN with this suffix, mirroring GSI's "/CN=proxy"
// convention.
const proxyMarker = "proxy"

// NewProxy creates a user proxy: a fresh keypair certified by the user's
// *identity* key (not the CA), with a short validity. The proxy
// authenticates as the user without ever touching the user's long-term
// key again — the paper's single sign-on requirement. GSI allows limited
// delegation chains; we allow proxies of proxies up to depth 2.
func NewProxy(user *Identity, validity time.Duration) (*Identity, error) {
	if validity <= 0 {
		validity = 12 * time.Hour
	}
	depth := proxyDepth(user.Cert)
	if depth >= 2 {
		return nil, ErrProxyTooDeep
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	subject := user.Cert.Subject
	subject.CommonName = subject.CommonName + "/" + proxyMarker
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 62))
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               subject,
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(validity),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
		// The user cert is not a CA in the X.509 sense; GSI proxies are
		// verified by dedicated path logic (VerifyPeer below), exactly as
		// Globus did with its own proxy validation code.
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, user.Cert, &key.PublicKey, user.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: sign proxy: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	chain := append([]*x509.Certificate{user.Cert}, user.Chain...)
	return &Identity{Cert: cert, Key: key, Chain: chain}, nil
}

// proxyDepth counts trailing "/proxy" components in the CN.
func proxyDepth(cert *x509.Certificate) int {
	cn := cert.Subject.CommonName
	depth := 0
	for len(cn) > len(proxyMarker)+1 && cn[len(cn)-len(proxyMarker)-1:] == "/"+proxyMarker {
		depth++
		cn = cn[:len(cn)-len(proxyMarker)-1]
	}
	return depth
}

// IsProxy reports whether the certificate is a proxy certificate.
func IsProxy(cert *x509.Certificate) bool { return proxyDepth(cert) > 0 }

// BaseSubjectName strips proxy markers, returning the underlying user's
// Certificate Name: the name GridBank accounts are keyed by. A proxy for
// CN=alice,O=VO authenticates as "CN=alice,O=VO".
func BaseSubjectName(cert *x509.Certificate) string {
	name := SubjectNameOf(cert)
	for {
		const suffix = "/" + proxyMarker
		cnEnd := indexComma(name)
		cn := name[:cnEnd]
		if len(cn) > len(suffix) && cn[len(cn)-len(suffix):] == suffix {
			name = cn[:len(cn)-len(suffix)] + name[cnEnd:]
			continue
		}
		return name
	}
}

func indexComma(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			return i
		}
	}
	return len(s)
}

// TrustStore is the set of CAs a verifier accepts plus verification
// policy. It implements the paper's client-authentication step: the
// subject name extracted here is what gets checked against the accounts
// database.
type TrustStore struct {
	mu    sync.RWMutex
	roots map[string]*x509.Certificate // cert fingerprint -> CA cert
}

// NewTrustStore builds a trust store over the given CA certificates.
func NewTrustStore(cas ...*x509.Certificate) *TrustStore {
	ts := &TrustStore{roots: make(map[string]*x509.Certificate)}
	for _, c := range cas {
		ts.AddCA(c)
	}
	return ts
}

// AddCA adds a trusted CA. Distinct certificates with the same subject
// name are kept separately (roots are keyed by certificate fingerprint),
// so CA rollover can trust old and new certificates simultaneously.
func (ts *TrustStore) AddCA(cert *x509.Certificate) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	sum := sha256.Sum256(cert.Raw)
	ts.roots[string(sum[:])] = cert
}

// CAs returns the trusted CA certificates.
func (ts *TrustStore) CAs() []*x509.Certificate {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]*x509.Certificate, 0, len(ts.roots))
	for _, c := range ts.roots {
		out = append(out, c)
	}
	return out
}

// VerifyPeer validates a peer certificate chain (leaf first) at time now
// and returns the authenticated base subject name. It accepts either a
// direct CA-issued identity or a GSI-style proxy chain
// leaf(proxy)→identity→CA, checking signatures, validity windows, proxy
// name discipline (proxy CN must extend its signer's CN) and delegation
// depth.
func (ts *TrustStore) VerifyPeer(chain []*x509.Certificate, now time.Time) (string, error) {
	if len(chain) == 0 {
		return "", errors.New("pki: empty certificate chain")
	}
	for i := 0; i < len(chain); i++ {
		c := chain[i]
		if now.Before(c.NotBefore) || now.After(c.NotAfter) {
			return "", fmt.Errorf("%w: %s", ErrExpired, SubjectNameOf(c))
		}
		// Proxy links: signer is the next element and must not be a CA.
		if i+1 < len(chain) && IsProxy(c) {
			signer := chain[i+1]
			if err := checkProxySignature(c, signer); err != nil {
				return "", err
			}
			continue
		}
		// Identity link: must be signed by a trusted CA.
		ts.mu.RLock()
		var root *x509.Certificate
		for _, ca := range ts.roots {
			if err := c.CheckSignatureFrom(ca); err == nil {
				root = ca
				break
			}
		}
		ts.mu.RUnlock()
		if root == nil {
			return "", fmt.Errorf("%w: %s", ErrUntrusted, SubjectNameOf(c))
		}
		// Everything below i was proxy links; everything above is
		// ignored (the CA itself).
		if proxyDepth(chain[0]) > 2 {
			return "", ErrProxyTooDeep
		}
		return BaseSubjectName(chain[0]), nil
	}
	return "", fmt.Errorf("%w: chain ends in proxy with no identity", ErrUntrusted)
}

func checkProxySignature(proxy, signer *x509.Certificate) error {
	// Name discipline: proxy CN = signer CN + "/proxy".
	want := signer.Subject.CommonName + "/" + proxyMarker
	if proxy.Subject.CommonName != want {
		return fmt.Errorf("%w: proxy CN %q does not extend signer CN %q",
			ErrNameMismatch, proxy.Subject.CommonName, signer.Subject.CommonName)
	}
	if err := proxy.CheckSignatureFrom(signer); err != nil {
		// CheckSignatureFrom insists the signer is a CA; GSI proxies are
		// signed by non-CA identity certs, so fall back to a raw
		// signature check.
		if err := verifyRawSignature(proxy, signer); err != nil {
			return fmt.Errorf("%w: proxy signature: %v", ErrBadSignature, err)
		}
	}
	return nil
}

func verifyRawSignature(cert, signer *x509.Certificate) error {
	pub, ok := signer.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return ErrBadKey
	}
	h := sha256.Sum256(cert.RawTBSCertificate)
	if !ecdsa.VerifyASN1(pub, h[:], cert.Signature) {
		return ErrBadSignature
	}
	return nil
}

// --- PEM helpers -----------------------------------------------------------

// EncodeCertPEM renders a certificate as PEM.
func EncodeCertPEM(cert *x509.Certificate) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cert.Raw})
}

// EncodeKeyPEM renders a private key as PEM (PKCS#8).
func EncodeKeyPEM(key *ecdsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(key)
	if err != nil {
		return nil, err
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// DecodeCertPEM parses the first certificate in a PEM bundle.
func DecodeCertPEM(b []byte) (*x509.Certificate, error) {
	block, _ := pem.Decode(b)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, errors.New("pki: no certificate PEM block")
	}
	return x509.ParseCertificate(block.Bytes)
}

// DecodeKeyPEM parses a PKCS#8 ECDSA private key.
func DecodeKeyPEM(b []byte) (*ecdsa.PrivateKey, error) {
	block, _ := pem.Decode(b)
	if block == nil || block.Type != "PRIVATE KEY" {
		return nil, errors.New("pki: no key PEM block")
	}
	k, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	ek, ok := k.(*ecdsa.PrivateKey)
	if !ok {
		return nil, ErrBadKey
	}
	return ek, nil
}
