package pki

import (
	"path/filepath"
	"testing"
	"time"
)

func TestSaveLoadIdentity(t *testing.T) {
	dir := t.TempDir()
	ca := newTestCA(t)
	id := issue(t, ca, "alice")
	if err := SaveIdentity(dir, "alice", id); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIdentity(dir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if back.SubjectName() != id.SubjectName() {
		t.Errorf("subject = %q", back.SubjectName())
	}
	if !back.Key.Equal(id.Key) {
		t.Error("key mismatch")
	}
}

func TestSaveLoadProxyWithChain(t *testing.T) {
	dir := t.TempDir()
	ca := newTestCA(t)
	alice := issue(t, ca, "alice")
	proxy, err := NewProxy(alice, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveIdentity(dir, "proxy", proxy); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIdentity(dir, "proxy")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Chain) != 1 || SubjectNameOf(back.Chain[0]) != alice.SubjectName() {
		t.Fatalf("chain lost: %+v", back.Chain)
	}
	// The reloaded proxy still verifies.
	ts := NewTrustStore(ca.Certificate())
	chainCerts := append(chain(back.Cert), back.Chain...)
	subj, err := ts.VerifyPeer(chainCerts, time.Now())
	if err != nil || subj != alice.SubjectName() {
		t.Fatalf("reloaded proxy verify = %q, %v", subj, err)
	}
}

func TestSaveLoadCACert(t *testing.T) {
	dir := t.TempDir()
	ca := newTestCA(t)
	path := filepath.Join(dir, "ca.crt")
	if err := SaveCACert(path, ca.Certificate()); err != nil {
		t.Fatal(err)
	}
	certs, err := LoadCACerts(path)
	if err != nil || len(certs) != 1 {
		t.Fatalf("LoadCACerts = %d, %v", len(certs), err)
	}
	if SubjectNameOf(certs[0]) != SubjectNameOf(ca.Certificate()) {
		t.Error("subject mismatch")
	}
	if _, err := LoadCACerts(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestLoadIdentityErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadIdentity(dir, "ghost"); err == nil {
		t.Error("missing identity loaded")
	}
	if err := SaveIdentity(dir, "bad", &Identity{}); err == nil {
		t.Error("incomplete identity saved")
	}
}
