package pki

import (
	"bytes"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"os"
	"path/filepath"
)

// File persistence for identities and CA certificates, used by the CLIs
// (cmd/gridbankd, cmd/gridbank, cmd/gbadmin). An identity <name> is
// stored as <name>.crt (certificate chain, leaf first) and <name>.key
// (PKCS#8, mode 0600).

// SaveIdentity writes an identity's certificate chain and key under dir.
func SaveIdentity(dir, name string, id *Identity) error {
	if id == nil || id.Cert == nil || id.Key == nil {
		return fmt.Errorf("pki: incomplete identity %q", name)
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	var certs bytes.Buffer
	certs.Write(EncodeCertPEM(id.Cert))
	for _, c := range id.Chain {
		certs.Write(EncodeCertPEM(c))
	}
	if err := os.WriteFile(filepath.Join(dir, name+".crt"), certs.Bytes(), 0o644); err != nil {
		return err
	}
	keyPEM, err := EncodeKeyPEM(id.Key)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".key"), keyPEM, 0o600)
}

// LoadIdentity reads an identity previously written by SaveIdentity.
func LoadIdentity(dir, name string) (*Identity, error) {
	certPEM, err := os.ReadFile(filepath.Join(dir, name+".crt"))
	if err != nil {
		return nil, err
	}
	chain, err := decodeCertBundle(certPEM)
	if err != nil {
		return nil, fmt.Errorf("pki: %s.crt: %w", name, err)
	}
	keyPEM, err := os.ReadFile(filepath.Join(dir, name+".key"))
	if err != nil {
		return nil, err
	}
	key, err := DecodeKeyPEM(keyPEM)
	if err != nil {
		return nil, fmt.Errorf("pki: %s.key: %w", name, err)
	}
	id := &Identity{Cert: chain[0], Key: key}
	if len(chain) > 1 {
		id.Chain = chain[1:]
	}
	return id, nil
}

// SaveCACert writes a bare CA certificate (for distribution to clients).
func SaveCACert(path string, cert *x509.Certificate) error {
	return os.WriteFile(path, EncodeCertPEM(cert), 0o644)
}

// LoadCACerts reads one or more CA certificates from a PEM bundle file.
func LoadCACerts(path string) ([]*x509.Certificate, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeCertBundle(b)
}

func decodeCertBundle(b []byte) ([]*x509.Certificate, error) {
	var out []*x509.Certificate
	for {
		var block *pem.Block
		block, b = pem.Decode(b)
		if block == nil {
			break
		}
		if block.Type != "CERTIFICATE" {
			continue
		}
		c, err := x509.ParseCertificate(block.Bytes)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pki: no certificates in bundle")
	}
	return out, nil
}
