package pki

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"time"
)

// Signed wraps an arbitrary payload with a detached signature and the
// signer's certificate chain. It is the envelope GridBank uses wherever
// the paper requires non-repudiation: GSP-signed cost statements and RURs
// (§2.1 "these calculations along with the rates and RUR records are
// signed by GSP to provide non-repudiation"), GridCheques, and hash-chain
// commitments.
type Signed struct {
	// Payload is the canonical JSON encoding of the signed object.
	Payload []byte `json:"payload"`
	// Signature is an ASN.1 ECDSA signature over SHA-256(context || payload).
	Signature []byte `json:"signature"`
	// Context domain-separates signature uses (e.g. "gridbank/cheque/v1"):
	// a signature over a cheque can never be replayed as a signature over
	// an RUR.
	Context string `json:"context"`
	// CertChain is the signer's certificate chain, leaf first, DER encoded.
	CertChain [][]byte `json:"cert_chain"`
}

// Sign marshals payload to JSON and signs it under the given context.
func Sign(id *Identity, context string, payload any) (*Signed, error) {
	if context == "" {
		return nil, fmt.Errorf("pki: empty signature context")
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("pki: marshal payload: %w", err)
	}
	digest := signingDigest(context, b)
	sig, err := ecdsa.SignASN1(rand.Reader, id.Key, digest)
	if err != nil {
		return nil, fmt.Errorf("pki: sign: %w", err)
	}
	chain := [][]byte{id.Cert.Raw}
	for _, c := range id.Chain {
		chain = append(chain, c.Raw)
	}
	return &Signed{Payload: b, Signature: sig, Context: context, CertChain: chain}, nil
}

func signingDigest(context string, payload []byte) []byte {
	h := sha256.New()
	h.Write([]byte(context))
	h.Write([]byte{0})
	h.Write(payload)
	return h.Sum(nil)
}

// Chain parses the embedded certificate chain, leaf first.
func (s *Signed) Chain() ([]*x509.Certificate, error) {
	if len(s.CertChain) == 0 {
		return nil, fmt.Errorf("pki: signed envelope has no certificates")
	}
	out := make([]*x509.Certificate, 0, len(s.CertChain))
	for _, der := range s.CertChain {
		c, err := x509.ParseCertificate(der)
		if err != nil {
			return nil, fmt.Errorf("pki: parse chain certificate: %w", err)
		}
		out = append(out, c)
	}
	return out, nil
}

// Verify checks the signature and the signer's chain against the trust
// store, returning the authenticated base subject name of the signer and
// decoding the payload into out (if non-nil).
func (s *Signed) Verify(ts *TrustStore, context string, now time.Time, out any) (string, error) {
	if s.Context != context {
		return "", fmt.Errorf("%w: signature context %q, want %q", ErrBadSignature, s.Context, context)
	}
	chain, err := s.Chain()
	if err != nil {
		return "", err
	}
	subject, err := ts.VerifyPeer(chain, now)
	if err != nil {
		return "", err
	}
	pub, ok := chain[0].PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return "", ErrBadKey
	}
	digest := signingDigest(context, s.Payload)
	if !ecdsa.VerifyASN1(pub, digest, s.Signature) {
		return "", ErrBadSignature
	}
	if out != nil {
		if err := json.Unmarshal(s.Payload, out); err != nil {
			return "", fmt.Errorf("pki: decode signed payload: %w", err)
		}
	}
	return subject, nil
}

// Fingerprint returns a short base64 SHA-256 digest of the envelope,
// usable as a stable reference to a specific signed instrument.
func (s *Signed) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte(s.Context))
	h.Write([]byte{0})
	h.Write(s.Payload)
	h.Write([]byte{0})
	h.Write(s.Signature)
	return base64.RawURLEncoding.EncodeToString(h.Sum(nil)[:18])
}
