package pki

import (
	"crypto/tls"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// tlsPair runs a TLS handshake between a server and client identity over
// an in-memory pipe, returning the server-observed subject or an error.
func tlsPair(t *testing.T, server, client *Identity, serverTS, clientTS *TrustStore) (string, error) {
	t.Helper()
	sCfg, err := ServerTLSConfig(server, serverTS)
	if err != nil {
		t.Fatal(err)
	}
	cCfg, err := ClientTLSConfig(client, clientTS)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		subject string
		err     error
	}
	ch := make(chan result, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			ch <- result{"", err}
			return
		}
		defer conn.Close()
		srv := tls.Server(conn, sCfg)
		if err := srv.Handshake(); err != nil {
			ch <- result{"", err}
			return
		}
		subj, err := PeerSubject(serverTS, srv.ConnectionState())
		// Echo a byte so the client handshake fully completes.
		srv.Write([]byte{1})
		ch <- result{subj, err}
	}()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cli := tls.Client(conn, cCfg)
	clientErr := cli.Handshake()
	if clientErr == nil {
		buf := make([]byte, 1)
		if _, err := io.ReadFull(cli, buf); err != nil {
			clientErr = err
		}
	}
	cli.Close()
	wg.Wait()
	r := <-ch
	if clientErr != nil && r.err == nil {
		return "", clientErr
	}
	if r.err != nil {
		return "", r.err
	}
	return r.subject, nil
}

func TestMutualTLSWithIdentity(t *testing.T) {
	ca := newTestCA(t)
	srv, err := ca.Issue(IssueOptions{CommonName: "gridbank-server", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	alice := issue(t, ca, "alice")
	ts := NewTrustStore(ca.Certificate())
	subj, err := tlsPair(t, srv, alice, ts, ts)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if subj != "CN=alice,O=VO-Test" {
		t.Errorf("server saw %q", subj)
	}
}

func TestMutualTLSWithProxy(t *testing.T) {
	ca := newTestCA(t)
	srv, err := ca.Issue(IssueOptions{CommonName: "gridbank-server", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	alice := issue(t, ca, "alice")
	proxy, err := NewProxy(alice, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Certificate())
	subj, err := tlsPair(t, srv, proxy, ts, ts)
	if err != nil {
		t.Fatalf("proxy handshake: %v", err)
	}
	// Single sign-on: the server sees alice, not the proxy.
	if subj != "CN=alice,O=VO-Test" {
		t.Errorf("server saw %q", subj)
	}
}

func TestTLSRejectsForeignClient(t *testing.T) {
	caGood, caEvil := newTestCA(t), newTestCA(t)
	srv, err := caGood.Issue(IssueOptions{CommonName: "server", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	mallory := issue(t, caEvil, "mallory")
	serverTS := NewTrustStore(caGood.Certificate())
	clientTS := NewTrustStore(caGood.Certificate())
	if _, err := tlsPair(t, srv, mallory, serverTS, clientTS); err == nil {
		t.Fatal("foreign client completed handshake")
	}
}

func TestTLSClientRejectsForeignServer(t *testing.T) {
	caGood, caEvil := newTestCA(t), newTestCA(t)
	evilSrv, err := caEvil.Issue(IssueOptions{CommonName: "mitm", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	alice := issue(t, caGood, "alice")
	serverTS := NewTrustStore(caGood.Certificate(), caEvil.Certificate())
	clientTS := NewTrustStore(caGood.Certificate()) // client trusts only the good CA
	if _, err := tlsPair(t, evilSrv, alice, serverTS, clientTS); err == nil {
		t.Fatal("client accepted a server from an untrusted CA")
	}
}

func TestTLSConfigValidation(t *testing.T) {
	ts := NewTrustStore()
	if _, err := ServerTLSConfig(nil, ts); err == nil {
		t.Error("nil server identity accepted")
	}
	if _, err := ClientTLSConfig(&Identity{}, ts); err == nil {
		t.Error("incomplete client identity accepted")
	}
}

func TestPeerSubjectEmptyState(t *testing.T) {
	ts := NewTrustStore()
	if _, err := PeerSubject(ts, tls.ConnectionState{}); err == nil {
		t.Error("empty connection state accepted")
	}
}

func TestVerifyRawChainGarbage(t *testing.T) {
	ts := NewTrustStore()
	if _, err := verifyRawChain(ts, [][]byte{{0x01, 0x02}}); err == nil {
		t.Error("garbage DER accepted")
	}
	var target error = ErrUntrusted
	_ = errors.Is(target, ErrUntrusted) // silence unused in case of edits
}
