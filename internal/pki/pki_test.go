package pki

import (
	"crypto/x509"
	"errors"
	"testing"
	"time"
)

func chain(certs ...*x509.Certificate) []*x509.Certificate { return certs }

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("GridBank Test CA", "VO-Test", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func issue(t *testing.T, ca *CA, cn string) *Identity {
	t.Helper()
	id, err := ca.Issue(IssueOptions{CommonName: cn, Organization: "VO-Test"})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCASelfSigned(t *testing.T) {
	ca := newTestCA(t)
	cert := ca.Certificate()
	if !cert.IsCA {
		t.Error("CA cert not marked CA")
	}
	if err := cert.CheckSignatureFrom(cert); err != nil {
		t.Errorf("CA not self-signed: %v", err)
	}
	if got := SubjectNameOf(cert); got != "CN=GridBank Test CA,O=VO-Test" {
		t.Errorf("subject = %q", got)
	}
}

func TestIssueAndVerify(t *testing.T) {
	ca := newTestCA(t)
	alice := issue(t, ca, "alice")
	if alice.SubjectName() != "CN=alice,O=VO-Test" {
		t.Errorf("subject = %q", alice.SubjectName())
	}
	ts := NewTrustStore(ca.Certificate())
	name, err := ts.VerifyPeer(chain(alice.Cert), time.Now())
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if name != "CN=alice,O=VO-Test" {
		t.Errorf("verified name = %q", name)
	}
}

func TestIssueValidationErrors(t *testing.T) {
	ca := newTestCA(t)
	if _, err := ca.Issue(IssueOptions{}); err == nil {
		t.Error("empty CN accepted")
	}
}

func TestVerifyRejectsUntrusted(t *testing.T) {
	ca1, ca2 := newTestCA(t), newTestCA(t)
	mallory := issue(t, ca2, "mallory")
	ts := NewTrustStore(ca1.Certificate())
	if _, err := ts.VerifyPeer(chain(mallory.Cert), time.Now()); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("foreign-CA cert verified: %v", err)
	}
	// After trusting ca2 it verifies.
	ts.AddCA(ca2.Certificate())
	if _, err := ts.VerifyPeer(chain(mallory.Cert), time.Now()); err != nil {
		t.Fatalf("after AddCA: %v", err)
	}
	if len(ts.CAs()) != 2 {
		t.Errorf("CAs() = %d", len(ts.CAs()))
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	ca := newTestCA(t)
	id, err := ca.Issue(IssueOptions{CommonName: "shortlived", Validity: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Certificate())
	if _, err := ts.VerifyPeer(chain(id.Cert), time.Now().Add(time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired cert verified: %v", err)
	}
	if _, err := ts.VerifyPeer(chain(id.Cert), time.Now().Add(-time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("not-yet-valid cert verified: %v", err)
	}
}

func TestVerifyEmptyChain(t *testing.T) {
	ts := NewTrustStore(newTestCA(t).Certificate())
	if _, err := ts.VerifyPeer(nil, time.Now()); err == nil {
		t.Fatal("empty chain verified")
	}
}

func TestProxySingleSignOn(t *testing.T) {
	ca := newTestCA(t)
	alice := issue(t, ca, "alice")
	proxy, err := NewProxy(alice, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !IsProxy(proxy.Cert) {
		t.Error("proxy not detected as proxy")
	}
	if IsProxy(alice.Cert) {
		t.Error("identity detected as proxy")
	}
	ts := NewTrustStore(ca.Certificate())
	name, err := ts.VerifyPeer(append(chain(proxy.Cert), alice.Cert), time.Now())
	if err != nil {
		t.Fatalf("proxy chain rejected: %v", err)
	}
	// The authenticated name is the *user's*, not the proxy's.
	if name != "CN=alice,O=VO-Test" {
		t.Errorf("authenticated name = %q", name)
	}
	if got := BaseSubjectName(proxy.Cert); got != "CN=alice,O=VO-Test" {
		t.Errorf("BaseSubjectName = %q", got)
	}
}

func TestProxyOfProxy(t *testing.T) {
	ca := newTestCA(t)
	alice := issue(t, ca, "alice")
	p1, err := NewProxy(alice, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProxy(p1, time.Hour)
	if err != nil {
		t.Fatalf("second-level proxy: %v", err)
	}
	ts := NewTrustStore(ca.Certificate())
	name, err := ts.VerifyPeer(chain(p2.Cert, p1.Cert, alice.Cert), time.Now())
	if err != nil {
		t.Fatalf("depth-2 proxy chain rejected: %v", err)
	}
	if name != "CN=alice,O=VO-Test" {
		t.Errorf("name = %q", name)
	}
	// Depth 3 refused at creation.
	if _, err := NewProxy(p2, time.Hour); !errors.Is(err, ErrProxyTooDeep) {
		t.Fatalf("depth-3 proxy allowed: %v", err)
	}
}

func TestProxyChainNameDiscipline(t *testing.T) {
	ca := newTestCA(t)
	alice := issue(t, ca, "alice")
	bob := issue(t, ca, "bob")
	proxy, err := NewProxy(alice, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Certificate())
	// Present alice's proxy with *bob* as the claimed signer: must fail.
	if _, err := ts.VerifyPeer(append(chain(proxy.Cert), bob.Cert), time.Now()); err == nil {
		t.Fatal("proxy accepted with wrong signer")
	}
}

func TestProxyExpiryIndependentOfIdentity(t *testing.T) {
	ca := newTestCA(t)
	alice := issue(t, ca, "alice")
	proxy, err := NewProxy(alice, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Certificate())
	if _, err := ts.VerifyPeer(append(chain(proxy.Cert), alice.Cert), time.Now().Add(time.Minute)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired proxy accepted: %v", err)
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	gsp := issue(t, ca, "gsp1")
	ts := NewTrustStore(ca.Certificate())
	payload := map[string]any{"total": "12.5", "job": "j-1"}
	env, err := Sign(gsp, "gridbank/test/v1", payload)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	signer, err := env.Verify(ts, "gridbank/test/v1", time.Now(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if signer != "CN=gsp1,O=VO-Test" {
		t.Errorf("signer = %q", signer)
	}
	if out["total"] != "12.5" {
		t.Errorf("payload = %v", out)
	}
	if env.Fingerprint() == "" {
		t.Error("empty fingerprint")
	}
}

func TestSignVerifyWithProxy(t *testing.T) {
	ca := newTestCA(t)
	alice := issue(t, ca, "alice")
	proxy, err := NewProxy(alice, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Certificate())
	env, err := Sign(proxy, "ctx", "hello")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := env.Verify(ts, "ctx", time.Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if signer != "CN=alice,O=VO-Test" {
		t.Errorf("proxy signature attributed to %q", signer)
	}
}

func TestVerifyRejectsTamperAndContextSwap(t *testing.T) {
	ca := newTestCA(t)
	gsp := issue(t, ca, "gsp1")
	ts := NewTrustStore(ca.Certificate())
	env, err := Sign(gsp, "ctx/a", map[string]int{"v": 1})
	if err != nil {
		t.Fatal(err)
	}
	// Payload tamper.
	tampered := *env
	tampered.Payload = []byte(`{"v":2}`)
	if _, err := tampered.Verify(ts, "ctx/a", time.Now(), nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered payload verified: %v", err)
	}
	// Context swap (replay into another instrument type).
	if _, err := env.Verify(ts, "ctx/b", time.Now(), nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("context swap verified: %v", err)
	}
	// Signature corruption.
	corrupted := *env
	corrupted.Signature = append([]byte(nil), env.Signature...)
	corrupted.Signature[4] ^= 0xff
	if _, err := corrupted.Verify(ts, "ctx/a", time.Now(), nil); err == nil {
		t.Fatal("corrupted signature verified")
	}
	// Untrusted signer.
	other := newTestCA(t)
	foreign := issue(t, other, "intruder")
	env2, err := Sign(foreign, "ctx/a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env2.Verify(ts, "ctx/a", time.Now(), nil); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("untrusted signer verified: %v", err)
	}
	// Empty chain.
	env3 := *env
	env3.CertChain = nil
	if _, err := env3.Verify(ts, "ctx/a", time.Now(), nil); err == nil {
		t.Fatal("chainless envelope verified")
	}
}

func TestSignEmptyContextRejected(t *testing.T) {
	ca := newTestCA(t)
	id := issue(t, ca, "x")
	if _, err := Sign(id, "", "payload"); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestPEMRoundTrips(t *testing.T) {
	ca := newTestCA(t)
	id := issue(t, ca, "pemtest")
	certPEM := EncodeCertPEM(id.Cert)
	cert, err := DecodeCertPEM(certPEM)
	if err != nil {
		t.Fatal(err)
	}
	if SubjectNameOf(cert) != id.SubjectName() {
		t.Error("cert PEM round trip lost subject")
	}
	keyPEM, err := EncodeKeyPEM(id.Key)
	if err != nil {
		t.Fatal(err)
	}
	key, err := DecodeKeyPEM(keyPEM)
	if err != nil {
		t.Fatal(err)
	}
	if !key.Equal(id.Key) {
		t.Error("key PEM round trip mismatch")
	}
	if _, err := DecodeCertPEM([]byte("junk")); err == nil {
		t.Error("junk cert PEM accepted")
	}
	if _, err := DecodeKeyPEM([]byte("junk")); err == nil {
		t.Error("junk key PEM accepted")
	}
}

func TestSerialNumbersDistinct(t *testing.T) {
	ca := newTestCA(t)
	a, b := issue(t, ca, "a"), issue(t, ca, "b")
	if a.Cert.SerialNumber.Cmp(b.Cert.SerialNumber) == 0 {
		t.Error("duplicate serial numbers")
	}
}
