package replica

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gridbank/internal/db"
	"gridbank/internal/obs"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

// PublisherConfig configures a Publisher.
type PublisherConfig struct {
	// Store is the primary's ledger store (required).
	Store *db.Store
	// Identity is the TLS server identity replication is served under
	// (typically the bank's own identity). Required.
	Identity *pki.Identity
	// Trust verifies follower certificates. Required.
	Trust *pki.TrustStore
	// Allow restricts replication to these follower subjects. Empty
	// means any subject the trust store verifies may replicate — the
	// stream is the whole ledger, so production deployments should list
	// their replica identities here.
	Allow []string
	// PrimaryAddr is the client-facing API address of the primary,
	// advertised to followers so read-only servers can redirect
	// mutations.
	PrimaryAddr string
	// SubscriberBuffer is the per-follower commit buffer (batches); a
	// follower that falls further behind is disconnected and
	// re-bootstraps. Default 1024.
	SubscriberBuffer int
	// Heartbeat is the idle frame interval. Default 500ms.
	Heartbeat time.Duration
	// WireCodecs lists the codec names accepted when a follower offers
	// alternatives on its hello (see wire.Codec). Nil accepts every
	// supported codec; [wire.CodecJSON] pins sessions to the seed
	// format. Followers that never offer always stream JSON.
	WireCodecs []string
}

// Publisher serves the primary side of WAL shipping: each follower
// connection gets a bootstrap snapshot plus the live commit stream.
type Publisher struct {
	cfg PublisherConfig
	tls *tls.Config

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Log records session-level events; nil discards them. Reassign
	// only before Serve.
	Log *obs.Logger
}

// NewPublisher builds a replication publisher over the store.
func NewPublisher(cfg PublisherConfig) (*Publisher, error) {
	if cfg.Store == nil {
		return nil, errors.New("replica: publisher requires a store")
	}
	if cfg.Identity == nil || cfg.Trust == nil {
		return nil, errors.New("replica: publisher requires an identity and a trust store")
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 1024
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	tcfg, err := pki.ServerTLSConfig(cfg.Identity, cfg.Trust)
	if err != nil {
		return nil, err
	}
	return &Publisher{
		cfg:   cfg,
		tls:   tcfg,
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts follower connections on ln until Close. It blocks.
func (p *Publisher) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("replica: publisher closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		// Register (and wg.Add) under the same lock Close holds while
		// tearing down, so a conn accepted during Close is dropped here
		// instead of leaking an untracked session.
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return nil
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.handleConn(conn)
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (p *Publisher) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return p.Serve(ln)
}

// Addr returns the bound address, once serving.
func (p *Publisher) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops accepting and tears down live replication sessions.
func (p *Publisher) Close() error {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

// allowed reports whether subject may replicate.
func (p *Publisher) allowed(subject string) bool {
	if len(p.cfg.Allow) == 0 {
		return true
	}
	for _, s := range p.cfg.Allow {
		if s == subject {
			return true
		}
	}
	return false
}

func (p *Publisher) handleConn(raw net.Conn) {
	defer raw.Close()
	tconn := tls.Server(raw, p.tls)
	if err := tconn.HandshakeContext(context.Background()); err != nil {
		p.Log.Warn("replica handshake failed", "remote", raw.RemoteAddr(), "err", err)
		return
	}
	subject, err := pki.PeerSubject(p.cfg.Trust, tconn.ConnectionState())
	if err != nil {
		p.Log.Warn("replica peer verification failed", "remote", raw.RemoteAddr(), "err", err)
		return
	}
	conn := wire.NewConn(tconn)
	req, err := conn.ReadRequest()
	if err != nil {
		return
	}
	fail := func(code, msg string) {
		_ = conn.WriteResponse(&wire.Response{ID: req.ID, OK: false, Code: code, Error: msg})
	}
	if !p.allowed(subject) {
		p.Log.Warn("replica subject not in allow list", "subject", subject)
		fail(wire.CodeDenied, fmt.Sprintf("subject %s may not replicate", subject))
		return
	}
	if req.Op != opHello {
		fail(wire.CodeInvalid, fmt.Sprintf("replication expects %s, got %q", opHello, req.Op))
		return
	}
	var hello helloRequest
	if err := wire.Decode(req.Body, &hello); err != nil {
		fail(wire.CodeInvalid, err.Error())
		return
	}
	// Codec negotiation piggybacks on the hello: the confirmation rides
	// the (JSON) hello response, and every stream frame after it uses
	// the agreed codec. The follower reads nothing between sending the
	// hello and seeing the confirmation, so the switch is unambiguous.
	codec := wire.Codec(wire.JSON)
	var confirm string
	if len(req.Codecs) > 0 {
		accept := p.cfg.WireCodecs
		if accept == nil {
			accept = []string{wire.CodecBin1, wire.CodecJSON}
		}
		if c, ok := wire.NegotiateCodec(req.Codecs, accept); ok {
			codec = c
			confirm = c.Name()
		}
	}

	// Subscribe BEFORE snapshotting: entries sequenced after the cut are
	// then guaranteed to be in the buffer, making snapshot+stream a
	// gapless history.
	sub, err := p.cfg.Store.SubscribeCommits(p.cfg.SubscriberBuffer)
	if err != nil {
		fail(wire.CodeInternal, err.Error())
		return
	}
	defer sub.Close()
	after := hello.AfterSeq
	if hello.Epoch != p.cfg.Store.InstanceID() {
		// The follower's sequence belongs to another primary epoch
		// (pre-restart history it may have outrun): not resumable.
		after = 0
	}
	snap, err := p.cfg.Store.SnapshotSince(after)
	if err != nil {
		fail(wire.CodeInternal, err.Error())
		return
	}
	body, err := wire.Encode(&helloResponse{
		Snapshot:    snap,
		HeadSeq:     p.cfg.Store.CurrentSeq(),
		Epoch:       p.cfg.Store.InstanceID(),
		PrimaryAddr: p.cfg.PrimaryAddr,
	})
	if err != nil {
		fail(wire.CodeInternal, err.Error())
		return
	}
	if err := conn.WriteResponse(&wire.Response{ID: req.ID, OK: true, Codec: confirm, Body: body}); err != nil {
		return
	}
	// The hello response (carrying the confirmation) went out in JSON;
	// everything after it — stream frames and the stream-lost notice —
	// uses the agreed codec.
	conn.SetWriteCodec(codec)
	from := after
	if snap != nil {
		from = snap.Seq
	}
	p.Log.Info("replica streaming", "subject", subject, "from_seq", from, "snapshot", snap != nil, "codec", codec.Name())
	p.stream(tconn, conn, sub, codec)
	p.Log.Info("replica session ended", "subject", subject, "err", sub.Err())
}

// stream pumps the subscription (plus heartbeats) to the follower until
// either side fails. A follower catching up through a backlog gets
// batches coalesced into fewer, larger frames. Every frame write
// carries a deadline: a wedged follower (open socket, zero window) must
// error the session out, not pin its goroutine and buffers forever.
func (p *Publisher) stream(raw net.Conn, conn *wire.Conn, sub *db.CommitSub, codec wire.Codec) {
	hb := time.NewTicker(p.cfg.Heartbeat)
	defer hb.Stop()
	writeTimeout := 10 * p.cfg.Heartbeat
	if writeTimeout < 5*time.Second {
		writeTimeout = 5 * time.Second
	}
	// Frames go out through the shared deadline-armed single-write path:
	// header+body in one TLS record, wedged followers error out.
	dw := &wire.DeadlineWriter{Conn: raw, Timeout: writeTimeout}
	var id uint64
	send := func(entries []db.Entry) error {
		id++
		body, err := wire.EncodeWith(codec, &streamFrame{Entries: entries, HeadSeq: p.cfg.Store.CurrentSeq()})
		if err != nil {
			return err
		}
		return codec.Encode(dw, &wire.Response{ID: id, OK: true, Body: body})
	}
	for {
		select {
		case batch, ok := <-sub.C():
			if !ok {
				// Slow subscriber, store closed, or journal failure:
				// tell the follower why, then drop the session — it
				// will re-bootstrap.
				err := sub.Err()
				if err == nil {
					err = io.EOF
				}
				id++
				_ = conn.WriteResponse(&wire.Response{ID: id, OK: false, Code: wire.CodeStreamLost, Error: err.Error()})
				return
			}
			entries := batch
			// Coalesce a backlog into one frame (bounded).
		drain:
			for len(entries) < coalesceEntries {
				select {
				case more, ok := <-sub.C():
					if !ok {
						break drain
					}
					entries = append(entries[:len(entries):len(entries)], more...)
				default:
					break drain
				}
			}
			if err := send(entries); err != nil {
				return
			}
		case <-hb.C:
			if err := send(nil); err != nil {
				return
			}
		}
	}
}
