package replica

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/db"
	"gridbank/internal/obs"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

// Follower errors.
var (
	// ErrNotReady is returned by state accessors before the first
	// successful bootstrap.
	ErrNotReady = errors.New("replica: follower not yet bootstrapped")
	// errGap aborts a session whose stream skipped a sequence; the
	// follower re-bootstraps.
	errGap = errors.New("replica: sequence gap in commit stream")
)

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// PublisherAddr is the primary's replication endpoint. Required.
	PublisherAddr string
	// Identity authenticates the follower to the publisher. Required.
	Identity *pki.Identity
	// Trust verifies the publisher's certificate. Required.
	Trust *pki.TrustStore
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// RetryInterval is the pause between reconnect attempts (default
	// 500ms).
	RetryInterval time.Duration
	// OfferCodecs lists wire codec names offered on the hello, in
	// preference order (e.g. [wire.CodecBin1, wire.CodecJSON]). Empty
	// keeps the session byte-identical to the seed protocol; publishers
	// predating negotiation ignore the offer and stream JSON.
	OfferCodecs []string
	// Log records session-level events; nil discards them.
	Log *obs.Logger
	// Obs names the follower's instruments (replica.applied_seq,
	// replica.head_seq, replica.staleness_ms, replica.bootstraps). Nil
	// leaves telemetry off.
	Obs *obs.Registry
}

// Follower maintains a read-only mirror of the primary's store: it
// bootstraps from a snapshot, applies the shipped commit stream, tracks
// its applied/head sequences and staleness, and re-bootstraps whenever
// the stream breaks or gaps. The store it exposes is swapped wholesale
// on re-bootstrap, so readers must fetch it per use (Store()) rather
// than caching it.
type Follower struct {
	cfg FollowerConfig
	tls *tls.Config

	store      atomic.Pointer[db.Store]
	applied    atomic.Uint64
	head       atomic.Uint64
	bootstraps atomic.Uint64

	// Telemetry handles (nil no-ops when FollowerConfig.Obs is nil).
	mApplied    *obs.Gauge
	mHead       *obs.Gauge
	mStaleness  *obs.Gauge
	mBootstraps *obs.Counter

	mu          sync.Mutex
	syncedAt    time.Time // last instant applied == head was observed
	primaryAddr string    // advertised by the publisher
	epoch       string    // primary store epoch the applied seq belongs to
	conn        net.Conn  // live session, closed to interrupt
	closed      bool

	ready     chan struct{} // closed after the first bootstrap
	readyOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// StartFollower connects to the publisher and begins replicating in the
// background, reconnecting (and re-bootstrapping when needed) until
// Close.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.PublisherAddr == "" {
		return nil, errors.New("replica: follower requires a publisher address")
	}
	if cfg.Identity == nil || cfg.Trust == nil {
		return nil, errors.New("replica: follower requires an identity and a trust store")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	tcfg, err := pki.ClientTLSConfig(cfg.Identity, cfg.Trust)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		cfg:   cfg,
		tls:   tcfg,
		ready: make(chan struct{}),
		done:  make(chan struct{}),

		mApplied:    cfg.Obs.Gauge("replica.applied_seq"),
		mHead:       cfg.Obs.Gauge("replica.head_seq"),
		mStaleness:  cfg.Obs.Gauge("replica.staleness_ms"),
		mBootstraps: cfg.Obs.Counter("replica.bootstraps"),
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

func (f *Follower) run() {
	defer f.wg.Done()
	for {
		err := f.session()
		f.mu.Lock()
		closed := f.closed
		f.mu.Unlock()
		if closed {
			return
		}
		f.cfg.Log.Warn("replica session ended",
			"publisher", f.cfg.PublisherAddr, "err", err, "retry_in", f.cfg.RetryInterval)
		select {
		case <-f.done:
			return
		case <-time.After(f.cfg.RetryInterval):
		}
	}
}

// session runs one replication connection: hello, bootstrap, stream.
func (f *Follower) session() error {
	// Dial under a context that Close cancels, so shutdown never waits
	// out a full DialTimeout against an unreachable publisher.
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.DialTimeout)
	defer cancel()
	go func() {
		select {
		case <-f.done:
			cancel()
		case <-ctx.Done():
		}
	}()
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", f.cfg.PublisherAddr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", f.cfg.PublisherAddr, err)
	}
	tconn := tls.Client(raw, f.tls)
	if err := tconn.HandshakeContext(ctx); err != nil {
		raw.Close()
		return fmt.Errorf("tls handshake: %w", err)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		tconn.Close()
		return errors.New("replica: follower closed")
	}
	f.conn = tconn
	f.mu.Unlock()
	defer func() {
		tconn.Close()
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}()

	conn := wire.NewConn(tconn)
	after := f.applied.Load()
	f.mu.Lock()
	epoch := f.epoch
	f.mu.Unlock()
	if f.store.Load() == nil {
		after = 0
	}
	body, err := wire.Encode(&helloRequest{AfterSeq: after, Epoch: epoch})
	if err != nil {
		return err
	}
	if err := conn.WriteRequest(&wire.Request{ID: 1, Op: opHello, Codecs: f.cfg.OfferCodecs, Body: body}); err != nil {
		return err
	}
	resp, err := conn.ReadResponse()
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("publisher refused: %s (%s)", resp.Error, resp.Code)
	}
	// The hello response arrives in JSON; a confirmation in it switches
	// every stream frame after it to the agreed codec.
	if resp.Codec != "" {
		c, ok := wire.CodecByName(resp.Codec)
		if !ok {
			return fmt.Errorf("replica: publisher confirmed unknown codec %q", resp.Codec)
		}
		conn.SetReadCodec(c)
		conn.SetWriteCodec(c)
	}
	var hello helloResponse
	if err := wire.Decode(resp.Body, &hello); err != nil {
		return err
	}
	if hello.Snapshot != nil {
		store, err := db.OpenFromSnapshot(hello.Snapshot, nil)
		if err != nil {
			return fmt.Errorf("bootstrap snapshot: %w", err)
		}
		f.store.Store(store)
		f.applied.Store(hello.Snapshot.Seq)
		f.mApplied.Set(int64(hello.Snapshot.Seq))
		f.bootstraps.Add(1)
		f.mBootstraps.Inc()
	} else if f.store.Load() == nil {
		return errors.New("replica: publisher sent no snapshot to a cold follower")
	}
	f.head.Store(hello.HeadSeq)
	f.mHead.Set(int64(hello.HeadSeq))
	f.mu.Lock()
	f.primaryAddr = hello.PrimaryAddr
	f.epoch = hello.Epoch
	// The bootstrap itself is a sync point: a fresh snapshot (or a
	// nil-snapshot resume, which means applied == primary seq) is the
	// primary's state as of this moment, even if the head has already
	// moved on — without this, a replica bootstrapped under sustained
	// writes would report astronomical staleness until it first fully
	// caught up, and the read router would never use it.
	f.syncedAt = time.Now()
	f.mu.Unlock()
	f.readyOnce.Do(func() { close(f.ready) })

	for {
		frame, err := conn.ReadResponse()
		if err != nil {
			return err
		}
		if !frame.OK {
			return fmt.Errorf("stream terminated by publisher: %s (%s)", frame.Error, frame.Code)
		}
		var sf streamFrame
		if err := wire.Decode(frame.Body, &sf); err != nil {
			return err
		}
		if sf.HeadSeq > f.head.Load() {
			f.head.Store(sf.HeadSeq)
			f.mHead.Set(int64(sf.HeadSeq))
		}
		if len(sf.Entries) > 0 {
			if err := f.apply(sf.Entries); err != nil {
				return err
			}
		}
		f.noteSynced()
	}
}

// apply folds one frame's entries into the local store, enforcing the
// gapless-sequence contract. Entries at or below the applied sequence
// (overlap between subscription and snapshot) are skipped.
func (f *Follower) apply(entries []db.Entry) error {
	applied := f.applied.Load()
	live := entries[:0:0]
	for _, e := range entries {
		if e.Seq <= applied {
			continue
		}
		if e.Seq != applied+1 {
			return fmt.Errorf("%w: entry %d after applied %d", errGap, e.Seq, applied)
		}
		live = append(live, e)
		applied = e.Seq
	}
	if len(live) == 0 {
		return nil
	}
	if err := f.store.Load().ApplyReplicated(live); err != nil {
		return err
	}
	f.applied.Store(applied)
	f.mApplied.Set(int64(applied))
	return nil
}

// noteSynced records the instant the follower was last observed caught
// up with the publisher's head, and refreshes the staleness gauge.
func (f *Follower) noteSynced() {
	if f.applied.Load() < f.head.Load() {
		f.mu.Lock()
		since := time.Since(f.syncedAt)
		f.mu.Unlock()
		f.mStaleness.Set(since.Milliseconds())
		return
	}
	f.mu.Lock()
	f.syncedAt = time.Now()
	f.mu.Unlock()
	f.mStaleness.Set(0)
}

// Store returns the current read-only mirror, or nil before the first
// bootstrap. The pointer changes on re-bootstrap: fetch it per use.
func (f *Follower) Store() *db.Store { return f.store.Load() }

// AppliedSeq returns the highest applied entry sequence.
func (f *Follower) AppliedSeq() uint64 { return f.applied.Load() }

// Bootstraps counts snapshot loads — 1 after a clean start; more after
// gap or slow-subscriber recoveries. Exposed for tests and metrics.
func (f *Follower) Bootstraps() uint64 { return f.bootstraps.Load() }

// PrimaryAddr returns the primary's advertised client API address.
func (f *Follower) PrimaryAddr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primaryAddr
}

// Progress reports the replication position: applied and head
// sequences, plus how long ago the follower was last caught up with
// the head (its staleness bound — under a live connection this stays
// below the publisher's heartbeat interval). Before the first
// bootstrap it returns ErrNotReady.
func (f *Follower) Progress() (appliedSeq, headSeq uint64, staleFor time.Duration, err error) {
	if f.store.Load() == nil {
		return 0, 0, 0, ErrNotReady
	}
	f.mu.Lock()
	syncedAt := f.syncedAt
	f.mu.Unlock()
	return f.applied.Load(), f.head.Load(), time.Since(syncedAt), nil
}

// WaitReady blocks until the first bootstrap completes.
func (f *Follower) WaitReady(timeout time.Duration) error {
	select {
	case <-f.ready:
		return nil
	case <-f.done:
		return errors.New("replica: follower closed")
	case <-time.After(timeout):
		return fmt.Errorf("replica: not bootstrapped within %v", timeout)
	}
}

// WaitForSeq blocks until the follower has applied at least minSeq —
// the way to wait out replication lag against a known primary sequence
// (e.g. store.CurrentSeq() observed after a write).
func (f *Follower) WaitForSeq(minSeq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if f.store.Load() != nil && f.applied.Load() >= minSeq {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica: seq %d not applied within %v (at %d)",
				minSeq, timeout, f.applied.Load())
		}
		select {
		case <-f.done:
			return errors.New("replica: follower closed")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops replication. The last bootstrapped store remains readable
// (frozen at its applied sequence).
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	conn := f.conn
	f.mu.Unlock()
	close(f.done)
	if conn != nil {
		conn.Close()
	}
	f.wg.Wait()
	return nil
}
