// Package replica implements WAL-shipping read replication for GridBank
// servers. One primary bank fans its committed journal stream out to N
// followers; each follower maintains a read-only copy of the ledger
// store that the core layer serves balance, statement and account
// queries from, turning the read-dominated half of the §5.2 API into a
// horizontally scalable resource while every mutation still flows
// through the single authoritative primary (the paper's one-bank-per-VO
// model, §3.2/§6, extended the way NetCheque-style clearing networks
// scale).
//
// The protocol rides the same mutually-authenticated TLS transport and
// framed wire protocol as the client API:
//
//	follower → publisher   Request{Op: "Repl.Hello", Body: {after_seq}}
//	publisher → follower   Response{Body: {snapshot?, head_seq, primary_addr}}
//	publisher → follower   Response{Body: {entries, head_seq}}   (repeated)
//
// The publisher subscribes to the store's commit stream *before* taking
// the bootstrap snapshot, so the snapshot's cut plus the stream is a
// gapless history: the follower applies exactly the entries sequenced
// after the cut. Empty frames are heartbeats — they carry the
// publisher's head sequence so a follower (and anything routing reads
// through it) can measure staleness even when the primary is idle.
//
// Failure handling is re-bootstrap, not repair: a follower that detects
// a sequence gap, loses its connection, or is cut off as a slow
// subscriber reconnects and asks for state since its applied sequence;
// the publisher answers with a fresh snapshot whenever the follower is
// not exactly current. Snapshots and frames are bounded by the wire
// layer's MaxFrame; stores whose full snapshot exceeds it need chunked
// bootstrap, which this package does not yet implement.
package replica

import (
	"gridbank/internal/db"
)

// opHello opens a replication session.
const opHello = "Repl.Hello"

// helloRequest is the follower's opening message: the highest entry
// sequence its store has applied (zero for a cold start) and the
// primary epoch that sequence belongs to. Sequence numbers are only
// comparable within one epoch — a restarted primary may have replayed
// less history than the follower saw and re-issued the same numbers
// for different writes — so the publisher forces a snapshot whenever
// the epochs differ.
type helloRequest struct {
	AfterSeq uint64 `json:"after_seq"`
	Epoch    string `json:"epoch,omitempty"`
}

// helloResponse is the publisher's bootstrap answer. Snapshot is nil
// when the follower is exactly current (same epoch) and can resume from
// its own store; otherwise the follower replaces its store with the
// snapshot.
type helloResponse struct {
	Snapshot    *db.Snapshot `json:"snapshot,omitempty"`
	HeadSeq     uint64       `json:"head_seq"`
	Epoch       string       `json:"epoch"`
	PrimaryAddr string       `json:"primary_addr,omitempty"`
}

// streamFrame carries committed entries (or, when empty, a heartbeat).
// HeadSeq is the publisher's current sequence at send time, letting the
// follower compute its lag without a round trip.
type streamFrame struct {
	Entries []db.Entry `json:"entries,omitempty"`
	HeadSeq uint64     `json:"head_seq"`
}

// coalesceEntries caps how many entries the publisher merges into one
// stream frame when a follower is catching up through a backlog.
const coalesceEntries = 256
