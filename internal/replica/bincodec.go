package replica

import (
	"bytes"

	"gridbank/internal/db"
	"gridbank/internal/wire"
)

// streamFrame is the replication hot path — under bin1 each frame body
// is the shared db entry-batch encoding behind the head sequence,
// skipping JSON entirely for bulk catch-up. The hello exchange stays
// JSON (it happens once, before the codec switch).
//
// Layout: head_seq:u64 entries (db.AppendEntriesBinary).

const binTagStreamFrame = 0x05

// BinaryBodyTag identifies streamFrame bodies on the wire.
func (s *streamFrame) BinaryBodyTag() byte { return binTagStreamFrame }

// AppendBinaryBody encodes the frame for a bin1-negotiated session.
func (s *streamFrame) AppendBinaryBody(buf *bytes.Buffer) error {
	wire.AppendU64(buf, s.HeadSeq)
	return db.AppendEntriesBinary(buf, s.Entries)
}

// DecodeBinaryBody decodes what AppendBinaryBody wrote.
func (s *streamFrame) DecodeBinaryBody(payload []byte) error {
	br := wire.NewBinReader(payload)
	head := br.U64()
	if err := br.Err(); err != nil {
		return err
	}
	entries, err := db.DecodeEntriesBinary(br.Rest())
	if err != nil {
		return err
	}
	*s = streamFrame{Entries: entries, HeadSeq: head}
	return nil
}

var _ wire.BinaryBody = (*streamFrame)(nil)
