package replica

import (
	"bytes"
	"crypto/tls"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/wire"
)

type testPKI struct {
	trust *pki.TrustStore
	pub   *pki.Identity // publisher (server) identity
	fol   *pki.Identity // follower identity
}

func newTestPKI(t *testing.T) *testPKI {
	t.Helper()
	ca, err := pki.NewCA("Replica CA", "VO-R", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-R", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := ca.Issue(pki.IssueOptions{CommonName: "replica-1", Organization: "VO-R", IsServer: true})
	if err != nil {
		t.Fatal(err)
	}
	return &testPKI{trust: pki.NewTrustStore(ca.Certificate()), pub: pub, fol: fol}
}

func startPublisher(t *testing.T, kp *testPKI, store *db.Store, mut func(*PublisherConfig)) (*Publisher, string) {
	t.Helper()
	cfg := PublisherConfig{
		Store:       store,
		Identity:    kp.pub,
		Trust:       kp.trust,
		PrimaryAddr: "primary.example:7776",
		Heartbeat:   20 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewPublisher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	t.Cleanup(func() { p.Close() })
	return p, ln.Addr().String()
}

func startFollower(t *testing.T, kp *testPKI, addr string) *Follower {
	t.Helper()
	f, err := StartFollower(FollowerConfig{
		PublisherAddr: addr,
		Identity:      kp.fol,
		Trust:         kp.trust,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFollowerConvergesUnderSustainedWrites(t *testing.T) {
	kp := newTestPKI(t)
	primary, err := db.Open(db.NewMemJournal())
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("pre%d", i)
		if err := primary.Update(func(tx *db.Tx) error { return tx.Put("kv", key, []byte("seed")) }); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startPublisher(t, kp, primary, nil)
	f := startFollower(t, kp, addr)
	if err := f.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.PrimaryAddr() != "primary.example:7776" {
		t.Fatalf("PrimaryAddr = %q", f.PrimaryAddr())
	}

	// Sustained writes while the follower is attached.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("live%d", i%31)
		val := []byte(fmt.Sprintf("v%d", i))
		if err := primary.Update(func(tx *db.Tx) error { return tx.Put("kv", key, val) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WaitForSeq(primary.CurrentSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	applied, head, _, err := f.Progress()
	if err != nil {
		t.Fatal(err)
	}
	if applied != head || applied != primary.CurrentSeq() {
		t.Fatalf("applied %d, head %d, primary %d", applied, head, primary.CurrentSeq())
	}
	// Heartbeats keep staleness bounded on an idle primary.
	time.Sleep(60 * time.Millisecond)
	_, _, staleFor, err := f.Progress()
	if err != nil {
		t.Fatal(err)
	}
	if staleFor > time.Second {
		t.Fatalf("staleness %v despite live heartbeats", staleFor)
	}

	want, err := primary.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Tables["kv"]) != len(got.Tables["kv"]) {
		t.Fatalf("row counts diverge: %d vs %d", len(want.Tables["kv"]), len(got.Tables["kv"]))
	}
	for k, v := range want.Tables["kv"] {
		if !bytes.Equal(got.Tables["kv"][k], v) {
			t.Fatalf("key %s: primary %q, replica %q", k, v, got.Tables["kv"][k])
		}
	}
	if f.Bootstraps() != 1 {
		t.Fatalf("clean run bootstrapped %d times, want 1", f.Bootstraps())
	}
}

// fakePublisher accepts replication sessions and hands each to the
// scripted handler, for deterministic fault injection.
func fakePublisher(t *testing.T, kp *testPKI, handler func(session int, conn *wire.Conn, hello helloRequest)) string {
	t.Helper()
	tcfg, err := pki.ServerTLSConfig(kp.pub, kp.trust)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var sessions atomic.Int64
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			n := int(sessions.Add(1))
			go func() {
				defer raw.Close()
				tconn := tls.Server(raw, tcfg)
				if err := tconn.Handshake(); err != nil {
					return
				}
				conn := wire.NewConn(tconn)
				req, err := conn.ReadRequest()
				if err != nil || req.Op != opHello {
					return
				}
				var hello helloRequest
				if err := wire.Decode(req.Body, &hello); err != nil {
					return
				}
				handler(n, conn, hello)
			}()
		}
	}()
	return ln.Addr().String()
}

func respond(t *testing.T, conn *wire.Conn, hr *helloResponse) {
	t.Helper()
	body, err := wire.Encode(hr)
	if err != nil {
		t.Error(err)
		return
	}
	_ = conn.WriteResponse(&wire.Response{ID: 1, OK: true, Body: body})
}

func push(conn *wire.Conn, id uint64, entries []db.Entry, head uint64) error {
	body, err := wire.Encode(&streamFrame{Entries: entries, HeadSeq: head})
	if err != nil {
		return err
	}
	return conn.WriteResponse(&wire.Response{ID: id, OK: true, Body: body})
}

func TestFollowerReBootstrapsOnSequenceGap(t *testing.T) {
	kp := newTestPKI(t)
	recovered := make(chan struct{})
	addr := fakePublisher(t, kp, func(session int, conn *wire.Conn, hello helloRequest) {
		switch session {
		case 1:
			// Bootstrap at seq 1, then ship a frame that skips seq 2 —
			// a gap the follower must refuse to paper over.
			respond(t, conn, &helloResponse{
				Snapshot: &db.Snapshot{Seq: 1, Tables: map[string]map[string][]byte{
					"kv": {"a": []byte("1")},
				}},
				HeadSeq: 3,
			})
			_ = push(conn, 2, []db.Entry{{Seq: 3, Op: db.OpPut, Table: "kv", Key: "c", Value: []byte("3")}}, 3)
			// Keep the connection up; the follower drops it on the gap.
			time.Sleep(2 * time.Second)
		default:
			// The follower reports what it had applied; it must not
			// have applied past the gap.
			if hello.AfterSeq != 1 {
				t.Errorf("session 2 hello.AfterSeq = %d, want 1", hello.AfterSeq)
			}
			respond(t, conn, &helloResponse{
				Snapshot: &db.Snapshot{Seq: 3, Tables: map[string]map[string][]byte{
					"kv": {"a": []byte("1"), "b": []byte("2"), "c": []byte("3")},
				}},
				HeadSeq: 3,
			})
			close(recovered)
			time.Sleep(2 * time.Second)
		}
	})

	f := startFollower(t, kp, addr)
	select {
	case <-recovered:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never re-bootstrapped after the gap")
	}
	if err := f.WaitForSeq(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Bootstraps() != 2 {
		t.Fatalf("Bootstraps = %d, want 2 (initial + gap recovery)", f.Bootstraps())
	}
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, err := f.Store().Get("kv", k)
		if err != nil || string(v) != want {
			t.Fatalf("after recovery, %s = %q, %v", k, v, err)
		}
	}
}

func TestFollowerResumesWithoutSnapshotWhenCurrent(t *testing.T) {
	kp := newTestPKI(t)
	resumed := make(chan struct{})
	addr := fakePublisher(t, kp, func(session int, conn *wire.Conn, hello helloRequest) {
		switch session {
		case 1:
			respond(t, conn, &helloResponse{
				Snapshot: &db.Snapshot{Seq: 2, Tables: map[string]map[string][]byte{
					"kv": {"a": []byte("1")},
				}},
				HeadSeq: 2,
			})
			// Drop the connection: simulated primary blip.
		default:
			if hello.AfterSeq != 2 {
				t.Errorf("resume hello.AfterSeq = %d, want 2", hello.AfterSeq)
			}
			// Current follower: no snapshot, stream the tail directly.
			respond(t, conn, &helloResponse{HeadSeq: 2})
			_ = push(conn, 2, []db.Entry{
				{Seq: 3, Op: db.OpPut, Table: "kv", Key: "b", Value: []byte("2")},
				{Seq: 4, Op: db.OpPut, Table: "kv", Key: "c", Value: []byte("3")},
			}, 4)
			close(resumed)
			time.Sleep(2 * time.Second)
		}
	})

	f := startFollower(t, kp, addr)
	select {
	case <-resumed:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never resumed")
	}
	if err := f.WaitForSeq(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Bootstraps() != 1 {
		t.Fatalf("Bootstraps = %d, want 1 (resume must not re-snapshot)", f.Bootstraps())
	}
	if f.AppliedSeq() != 4 {
		t.Fatalf("AppliedSeq = %d, want 4", f.AppliedSeq())
	}
	v, err := f.Store().Get("kv", "c")
	if err != nil || string(v) != "3" {
		t.Fatalf("c = %q, %v", v, err)
	}
}

func TestPublisherAllowListRefusesStrangers(t *testing.T) {
	kp := newTestPKI(t)
	store := db.MustOpenMemory()
	if err := store.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	_, addr := startPublisher(t, kp, store, func(cfg *PublisherConfig) {
		cfg.Allow = []string{"CN=somebody-else,O=VO-R"}
	})
	f := startFollower(t, kp, addr)
	if err := f.WaitReady(300 * time.Millisecond); err == nil {
		t.Fatal("disallowed follower bootstrapped")
	}
}

// TestPublisherEpochMismatchForcesSnapshot: sequence numbers are only
// comparable within one primary epoch. A follower claiming to be
// current at the primary's head seq, but from a different epoch (a
// pre-restart history), must be handed a full snapshot.
func TestPublisherEpochMismatchForcesSnapshot(t *testing.T) {
	kp := newTestPKI(t)
	store, err := db.Open(db.NewMemJournal())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := store.Update(func(tx *db.Tx) error { return tx.Put("kv", "k", []byte("v")) }); err != nil {
		t.Fatal(err)
	}
	_, addr := startPublisher(t, kp, store, nil)

	hello := func(afterSeq uint64, epoch string) *helloResponse {
		t.Helper()
		tcfg, err := pki.ClientTLSConfig(kp.fol, kp.trust)
		if err != nil {
			t.Fatal(err)
		}
		tconn, err := tls.Dial("tcp", addr, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tconn.Close()
		conn := wire.NewConn(tconn)
		body, err := wire.Encode(&helloRequest{AfterSeq: afterSeq, Epoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.WriteRequest(&wire.Request{ID: 1, Op: opHello, Body: body}); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.ReadResponse()
		if err != nil || !resp.OK {
			t.Fatalf("hello failed: %+v, %v", resp, err)
		}
		var hr helloResponse
		if err := wire.Decode(resp.Body, &hr); err != nil {
			t.Fatal(err)
		}
		return &hr
	}

	head := store.CurrentSeq()
	// Same epoch, current seq: resumable, no snapshot.
	hr := hello(head, store.InstanceID())
	if hr.Snapshot != nil {
		t.Fatal("same-epoch current follower was re-snapshotted")
	}
	if hr.Epoch != store.InstanceID() {
		t.Fatalf("hello epoch = %q, want store instance", hr.Epoch)
	}
	// Different epoch, same seq: the numbers are not comparable — full
	// snapshot required.
	hr = hello(head, "some-previous-epoch")
	if hr.Snapshot == nil {
		t.Fatal("stale-epoch follower allowed to resume by sequence")
	}
	if hr.Snapshot.Seq != head {
		t.Fatalf("snapshot seq = %d, want %d", hr.Snapshot.Seq, head)
	}
}
