package charging

import (
	"errors"
	"fmt"
	"sync"
)

// Pool errors.
var (
	ErrPoolExhausted = errors.New("charging: no free template accounts")
	ErrNotHeld       = errors.New("charging: account not held by this certificate")
)

// TemplatePool implements §2.3's template accounts (after Hacker & Athey):
// "GSP maintains a pool of template accounts. These accounts are local
// system accounts that are not associated with any particular user. When
// a GSC contacts GSP to execute some application, GSP dynamically assigns
// one of the template accounts from the pool of free accounts." The pool
// is what makes GridBank access scale: thousands of consumers share a
// handful of local accounts instead of each needing their own.
type TemplatePool struct {
	mu      sync.Mutex
	free    []string          // LIFO free list
	held    map[string]string // local account -> certificate name
	mapfile *Mapfile

	// statistics for the access-scalability experiment (E5)
	acquires      uint64
	rejections    uint64
	peakInUse     int
	distinctUsers map[string]struct{}
}

// NewTemplatePool creates a pool of n template accounts named
// prefix001..prefixNNN, wired to the given mapfile.
func NewTemplatePool(prefix string, n int, mapfile *Mapfile) (*TemplatePool, error) {
	if n <= 0 {
		return nil, errors.New("charging: pool needs at least one account")
	}
	if prefix == "" {
		prefix = "grid"
	}
	if mapfile == nil {
		mapfile = NewMapfile()
	}
	p := &TemplatePool{
		held:          make(map[string]string),
		mapfile:       mapfile,
		distinctUsers: make(map[string]struct{}),
	}
	// LIFO: grid001 is handed out first.
	for i := n; i >= 1; i-- {
		p.free = append(p.free, fmt.Sprintf("%s%03d", prefix, i))
	}
	return p, nil
}

// Mapfile returns the pool's grid-mapfile.
func (p *TemplatePool) Mapfile() *Mapfile { return p.mapfile }

// Acquire assigns a free template account to the consumer and maps it in
// the grid-mapfile. A consumer already holding an account gets the same
// one back (idempotent: one local account per active consumer).
func (p *TemplatePool) Acquire(certName string) (string, error) {
	if certName == "" {
		return "", errors.New("charging: empty certificate name")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if acct, ok := p.mapfile.Lookup(certName); ok {
		return acct, nil
	}
	if len(p.free) == 0 {
		p.rejections++
		return "", fmt.Errorf("%w: %d in use", ErrPoolExhausted, len(p.held))
	}
	acct := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	if err := p.mapfile.Add(certName, acct); err != nil {
		p.free = append(p.free, acct)
		return "", err
	}
	p.held[acct] = certName
	p.acquires++
	p.distinctUsers[certName] = struct{}{}
	if inUse := len(p.held); inUse > p.peakInUse {
		p.peakInUse = inUse
	}
	return acct, nil
}

// Release removes the consumer's mapping and returns the account to the
// free pool — the GBCM's post-job cleanup (§2.3: "GBCM then removes the
// association by deleting the entry corresponding to GSC in the
// grid-mapfile and returning the local account to the pool").
func (p *TemplatePool) Release(certName string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	acct, ok := p.mapfile.Lookup(certName)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotHeld, certName)
	}
	if err := p.mapfile.Remove(certName); err != nil {
		return err
	}
	delete(p.held, acct)
	p.free = append(p.free, acct)
	return nil
}

// InUse returns the number of currently assigned accounts.
func (p *TemplatePool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.held)
}

// Free returns the number of available accounts.
func (p *TemplatePool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// PoolStats summarize pool behaviour for the scalability experiment.
type PoolStats struct {
	Acquires      uint64 // successful assignments
	Rejections    uint64 // ErrPoolExhausted returns
	PeakInUse     int    // high-water mark of simultaneous assignments
	DistinctUsers int    // distinct certificate names ever served
	Size          int    // total template accounts
}

// Stats returns a snapshot of the counters.
func (p *TemplatePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Acquires:      p.acquires,
		Rejections:    p.rejections,
		PeakInUse:     p.peakInUse,
		DistinctUsers: len(p.distinctUsers),
		Size:          len(p.free) + len(p.held),
	}
}
