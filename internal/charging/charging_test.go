package charging

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
)

func accountsID(s string) accounts.ID { return accounts.ID(s) }

// --- Mapfile ----------------------------------------------------------------

func TestMapfileBasics(t *testing.T) {
	m := NewMapfile()
	if err := m.Add("CN=alice,O=VO", "grid001"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("CN=alice,O=VO", "grid002"); !errors.Is(err, ErrMapped) {
		t.Errorf("double add err = %v", err)
	}
	if err := m.Add("", "x"); err == nil {
		t.Error("empty cert accepted")
	}
	acct, ok := m.Lookup("CN=alice,O=VO")
	if !ok || acct != "grid001" {
		t.Errorf("Lookup = %q, %v", acct, ok)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	if err := m.Remove("CN=alice,O=VO"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("CN=alice,O=VO"); !errors.Is(err, ErrNotMapped) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestMapfileSerializeParse(t *testing.T) {
	m := NewMapfile()
	if err := m.Add("CN=bob,O=VO", "grid002"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("CN=alice,O=VO", "grid001"); err != nil {
		t.Fatal(err)
	}
	text := m.Serialize()
	// Globus format, sorted.
	want := "\"CN=alice,O=VO\" grid001\n\"CN=bob,O=VO\" grid002\n"
	if text != want {
		t.Fatalf("serialize = %q", text)
	}
	back, err := ParseMapfile("# comment\n\n" + text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("parsed len = %d", back.Len())
	}
	if acct, _ := back.Lookup("CN=bob,O=VO"); acct != "grid002" {
		t.Errorf("parsed bob = %q", acct)
	}
	for _, bad := range []string{"no quotes here", `"unclosed`, `"cert"`} {
		if _, err := ParseMapfile(bad); err == nil {
			t.Errorf("malformed line %q parsed", bad)
		}
	}
}

// --- TemplatePool -------------------------------------------------------------

func TestPoolAcquireRelease(t *testing.T) {
	pool, err := NewTemplatePool("grid", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := pool.Acquire("CN=alice")
	if err != nil || a1 != "grid001" {
		t.Fatalf("first acquire = %q, %v", a1, err)
	}
	// Idempotent per consumer.
	again, err := pool.Acquire("CN=alice")
	if err != nil || again != a1 {
		t.Fatalf("re-acquire = %q, %v", again, err)
	}
	a2, err := pool.Acquire("CN=bob")
	if err != nil || a2 != "grid002" {
		t.Fatalf("second acquire = %q, %v", a2, err)
	}
	// Exhausted.
	if _, err := pool.Acquire("CN=carol"); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("exhausted err = %v", err)
	}
	if pool.InUse() != 2 || pool.Free() != 0 {
		t.Errorf("in use/free = %d/%d", pool.InUse(), pool.Free())
	}
	// Release returns capacity; carol now succeeds.
	if err := pool.Release("CN=alice"); err != nil {
		t.Fatal(err)
	}
	if err := pool.Release("CN=alice"); !errors.Is(err, ErrNotHeld) {
		t.Errorf("double release err = %v", err)
	}
	if _, err := pool.Acquire("CN=carol"); err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
	st := pool.Stats()
	if st.Acquires != 3 || st.Rejections != 1 || st.PeakInUse != 2 || st.DistinctUsers != 3 || st.Size != 2 {
		t.Errorf("stats = %+v", st)
	}
	// The mapfile reflects live assignments only.
	if pool.Mapfile().Len() != 2 {
		t.Errorf("mapfile len = %d", pool.Mapfile().Len())
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewTemplatePool("g", 0, nil); err == nil {
		t.Error("zero-size pool accepted")
	}
	pool, _ := NewTemplatePool("", 1, nil)
	if a, _ := pool.Acquire("CN=x"); !strings.HasPrefix(a, "grid") {
		t.Errorf("default prefix = %q", a)
	}
	if _, err := pool.Acquire(""); err == nil {
		t.Error("empty cert accepted")
	}
}

func TestPoolScalabilityManyUsersFewAccounts(t *testing.T) {
	// The §2.3 claim: thousands of consumers over a fixed template pool,
	// provided they don't all run at once.
	pool, _ := NewTemplatePool("grid", 16, nil)
	for i := 0; i < 2000; i++ {
		cert := fmt.Sprintf("CN=user%04d", i)
		if _, err := pool.Acquire(cert); err != nil {
			t.Fatalf("user %d rejected: %v", i, err)
		}
		if err := pool.Release(cert); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.DistinctUsers != 2000 || st.Size != 16 || st.PeakInUse != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolConcurrentSafety(t *testing.T) {
	pool, _ := NewTemplatePool("grid", 8, nil)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cert := fmt.Sprintf("CN=worker%d", g)
			for i := 0; i < 100; i++ {
				if _, err := pool.Acquire(cert); err == nil {
					_ = pool.Release(cert)
				}
			}
		}(g)
	}
	wg.Wait()
	if pool.InUse() != 0 || pool.Free() != 8 {
		t.Fatalf("leaked accounts: in use %d, free %d", pool.InUse(), pool.Free())
	}
}

// --- Module (GBCM) -----------------------------------------------------------

// gbcmWorld: an in-process bank plus a GSP-side GBCM wired directly to it.
type gbcmWorld struct {
	ca      *pki.CA
	ts      *pki.TrustStore
	bank    *core.Bank
	alice   *pki.Identity
	gsp     *pki.Identity
	aliceID string
	acct    string // alice account ID
	module  *Module
}

// bankRedeemer adapts *core.Bank (in-process) to the Redeemer interface,
// authenticating as the GSP.
type bankRedeemer struct {
	bank *core.Bank
	gsp  string
}

func (r *bankRedeemer) RedeemCheque(cheque *payment.SignedCheque, claim *payment.ChequeClaim) (*core.RedeemChequeResponse, error) {
	return r.bank.RedeemCheque(r.gsp, &core.RedeemChequeRequest{Cheque: *cheque, Claim: *claim})
}

func (r *bankRedeemer) RedeemChain(chain *payment.SignedChain, claim *payment.ChainClaim) (*core.RedeemChainResponse, error) {
	return r.bank.RedeemChain(r.gsp, &core.RedeemChainRequest{Chain: *chain, Claim: *claim})
}

func newGBCMWorld(t testing.TB) *gbcmWorld {
	t.Helper()
	ca, err := pki.NewCA("CA", "VO", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bankID, _ := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO"})
	alice, _ := ca.Issue(pki.IssueOptions{CommonName: "alice", Organization: "VO"})
	gsp, _ := ca.Issue(pki.IssueOptions{CommonName: "gsp1", Organization: "VO"})
	ts := pki.NewTrustStore(ca.Certificate())
	bank, err := core.NewBank(db.MustOpenMemory(), core.BankConfig{
		Identity: bankID, Trust: ts, Admins: []string{"CN=root"},
	})
	if err != nil {
		t.Fatal(err)
	}
	aResp, err := bank.CreateAccount(alice.SubjectName(), &core.CreateAccountRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank.CreateAccount(gsp.SubjectName(), &core.CreateAccountRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bank.AdminDeposit("CN=root", &core.AdminAmountRequest{AccountID: aResp.Account.AccountID, Amount: currency.FromG(1000)}); err != nil {
		t.Fatal(err)
	}
	pool, err := NewTemplatePool("grid", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	module, err := NewModule(ModuleConfig{
		Identity: gsp,
		Trust:    ts,
		Pool:     pool,
		Redeemer: &bankRedeemer{bank: bank, gsp: gsp.SubjectName()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &gbcmWorld{
		ca: ca, ts: ts, bank: bank, alice: alice, gsp: gsp,
		aliceID: alice.SubjectName(), acct: string(aResp.Account.AccountID), module: module,
	}
}

func (w *gbcmWorld) issueCheque(t testing.TB, amount currency.Amount) *payment.SignedCheque {
	t.Helper()
	resp, err := w.bank.RequestCheque(w.aliceID, &core.RequestChequeRequest{
		AccountID: accountsID(w.acct), Amount: amount, PayeeCert: w.gsp.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &resp.Cheque
}

func testRecord(consumer, provider string) *rur.Record {
	start := time.Now().Add(-time.Hour)
	rec := &rur.Record{
		User:     rur.UserDetails{CertificateName: consumer},
		Job:      rur.JobDetails{JobID: "j-1", Application: "app", Start: start, End: start.Add(time.Hour)},
		Resource: rur.ResourceDetails{Host: "h", CertificateName: provider, LocalJobID: "pid-1"},
	}
	rec.SetQuantity(rur.ItemCPU, 3600) // 1 CPU hour
	rec.SetQuantity(rur.ItemNetwork, 100)
	return rec
}

func testRates(provider string) *rur.RateCard {
	return &rur.RateCard{
		Provider: provider,
		Currency: currency.GridDollar,
		Rates: map[rur.Item]currency.Rate{
			rur.ItemCPU:     currency.PerHour(2 * currency.Scale), // 2 G$/h
			rur.ItemNetwork: currency.PerMB(currency.Scale / 100), // 0.01 G$/MB
		},
	}
}

func TestModuleValidation(t *testing.T) {
	if _, err := NewModule(ModuleConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestGBCMChequeFlow(t *testing.T) {
	w := newGBCMWorld(t)
	cheque := w.issueCheque(t, currency.FromG(10))
	adm, err := w.module.AdmitCheque("j-1", cheque)
	if err != nil {
		t.Fatal(err)
	}
	if adm.LocalAccount != "grid001" || adm.Consumer != w.aliceID {
		t.Fatalf("admission = %+v", adm)
	}
	// The grid-mapfile shows the binding while the job runs.
	if acct, ok := w.module.Pool().Mapfile().Lookup(w.aliceID); !ok || acct != "grid001" {
		t.Fatal("mapfile missing binding")
	}
	// Settle: 1 CPU-hour × 2 + 100 MB × 0.01 = 3 G$.
	res, err := w.module.SettleCheque("j-1", testRecord(w.aliceID, w.gsp.SubjectName()), testRates(w.gsp.SubjectName()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Paid != "3" {
		t.Fatalf("paid = %s", res.Paid)
	}
	// Statement verifies and re-derives.
	stmt, signer, err := VerifyStatement(res.SignedStatement, w.ts, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if signer != w.gsp.SubjectName() || stmt.Total != currency.FromG(3) {
		t.Fatalf("verified statement = %+v by %s", stmt, signer)
	}
	// Template account released, mapfile cleaned (§2.3 cleanup).
	if w.module.Pool().InUse() != 0 {
		t.Error("template account not released")
	}
	if _, ok := w.module.Pool().Mapfile().Lookup(w.aliceID); ok {
		t.Error("mapfile entry not removed")
	}
	// Settling again fails: job forgotten.
	if _, err := w.module.SettleCheque("j-1", testRecord(w.aliceID, w.gsp.SubjectName()), testRates(w.gsp.SubjectName())); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("double settle err = %v", err)
	}
}

func TestGBCMRejectsBadCheques(t *testing.T) {
	w := newGBCMWorld(t)
	// Cheque made out to someone else.
	otherGSP, _ := w.ca.Issue(pki.IssueOptions{CommonName: "gsp2", Organization: "VO"})
	resp, err := w.bank.RequestCheque(w.aliceID, &core.RequestChequeRequest{
		AccountID: accountsID(w.acct), Amount: currency.FromG(5), PayeeCert: otherGSP.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.module.AdmitCheque("j-x", &resp.Cheque); err == nil {
		t.Fatal("cheque for another payee admitted")
	}
	// No template account was consumed by the rejection.
	if w.module.Pool().InUse() != 0 {
		t.Error("rejected admission leaked an account")
	}
	// Duplicate job IDs refused.
	good := w.issueCheque(t, currency.FromG(5))
	if _, err := w.module.AdmitCheque("j-dup", good); err != nil {
		t.Fatal(err)
	}
	good2 := w.issueCheque(t, currency.FromG(5))
	if _, err := w.module.AdmitCheque("j-dup", good2); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("duplicate job err = %v", err)
	}
}

func TestGBCMChequeCapAtLimit(t *testing.T) {
	w := newGBCMWorld(t)
	// Reserve only 1 G$ but incur 3 G$ of usage: claim capped at 1.
	cheque := w.issueCheque(t, currency.FromG(1))
	if _, err := w.module.AdmitCheque("j-cap", cheque); err != nil {
		t.Fatal(err)
	}
	res, err := w.module.SettleCheque("j-cap", testRecord(w.aliceID, w.gsp.SubjectName()), testRates(w.gsp.SubjectName()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Paid != "1" {
		t.Fatalf("paid = %s, want cap 1", res.Paid)
	}
	if res.Statement.Total != currency.FromG(3) {
		t.Fatalf("statement total = %s", res.Statement.Total)
	}
}

func TestGBCMChainFlow(t *testing.T) {
	w := newGBCMWorld(t)
	chainResp, err := w.bank.RequestChain(w.aliceID, &core.RequestChainRequest{
		AccountID: accountsID(w.acct), PayeeCert: w.gsp.SubjectName(), Length: 100, PerWord: currency.MustParse("0.05"),
	})
	if err != nil {
		t.Fatal(err)
	}
	consumerChain := &payment.Chain{Commitment: chainResp.Chain.Commitment, Seed: chainResp.Seed}
	adm, err := w.module.AdmitChain("j-chain", &chainResp.Chain)
	if err != nil {
		t.Fatal(err)
	}
	_ = adm
	// Stream words 10, 20, 30 as the job progresses.
	for _, i := range []int{10, 20, 30} {
		word, err := consumerChain.Word(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.module.AcceptWord("j-chain", i, word); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order and forged words refused.
	w5, _ := consumerChain.Word(5)
	if err := w.module.AcceptWord("j-chain", 5, w5); err == nil {
		t.Error("stale word accepted")
	}
	if err := w.module.AcceptWord("j-chain", 40, make([]byte, 32)); err == nil {
		t.Error("forged word accepted")
	}
	if err := w.module.AcceptWord("j-ghost", 1, w5); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job word err = %v", err)
	}
	// Settle: redeems up to word 30 → 1.5 G$.
	res, err := w.module.SettleChain("j-chain", testRecord(w.aliceID, w.gsp.SubjectName()), testRates(w.gsp.SubjectName()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Paid != "1.5" {
		t.Fatalf("paid = %s", res.Paid)
	}
	if w.module.Pool().InUse() != 0 {
		t.Error("account not released after chain settle")
	}
}

func TestGBCMChainNoWordsSettlesZero(t *testing.T) {
	w := newGBCMWorld(t)
	chainResp, err := w.bank.RequestChain(w.aliceID, &core.RequestChainRequest{
		AccountID: accountsID(w.acct), PayeeCert: w.gsp.SubjectName(), Length: 10, PerWord: currency.FromG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.module.AdmitChain("j-idle", &chainResp.Chain); err != nil {
		t.Fatal(err)
	}
	res, err := w.module.SettleChain("j-idle", testRecord(w.aliceID, w.gsp.SubjectName()), testRates(w.gsp.SubjectName()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Paid != "0" {
		t.Fatalf("paid = %s", res.Paid)
	}
}

func TestGBCMSharedAccountAcrossConcurrentJobs(t *testing.T) {
	w := newGBCMWorld(t)
	c1 := w.issueCheque(t, currency.FromG(5))
	c2 := w.issueCheque(t, currency.FromG(5))
	a1, err := w.module.AdmitCheque("j-a", c1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := w.module.AdmitCheque("j-b", c2)
	if err != nil {
		t.Fatal(err)
	}
	if a1.LocalAccount != a2.LocalAccount {
		t.Fatal("same consumer got two template accounts")
	}
	// Settling the first job must NOT release the account while the
	// second still runs.
	if _, err := w.module.SettleCheque("j-a", testRecord(w.aliceID, w.gsp.SubjectName()), testRates(w.gsp.SubjectName())); err != nil {
		t.Fatal(err)
	}
	if w.module.Pool().InUse() != 1 {
		t.Fatal("account released while a job still runs")
	}
	if _, err := w.module.SettleCheque("j-b", testRecord(w.aliceID, w.gsp.SubjectName()), testRates(w.gsp.SubjectName())); err != nil {
		t.Fatal(err)
	}
	if w.module.Pool().InUse() != 0 {
		t.Fatal("account not released after last job")
	}
}

func TestVerifyStatementDetectsTamper(t *testing.T) {
	w := newGBCMWorld(t)
	cheque := w.issueCheque(t, currency.FromG(10))
	if _, err := w.module.AdmitCheque("j-v", cheque); err != nil {
		t.Fatal(err)
	}
	res, err := w.module.SettleCheque("j-v", testRecord(w.aliceID, w.gsp.SubjectName()), testRates(w.gsp.SubjectName()))
	if err != nil {
		t.Fatal(err)
	}
	tampered := *res.SignedStatement
	tampered.Payload = []byte(`{"statement":{"total":"0.01"}}`)
	if _, _, err := VerifyStatement(&tampered, w.ts, time.Now()); err == nil {
		t.Fatal("tampered statement verified")
	}
}
