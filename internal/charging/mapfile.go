// Package charging implements the GSP-side GridBank Charging Module
// (GBCM) of §2.1–§2.3 and §6: validating payment instruments presented by
// consumers, managing the pool of template local accounts and the
// grid-mapfile that binds a consumer's Certificate Name to one, pricing
// finished jobs from RUR × agreed rates, signing the calculation for
// non-repudiation, and redeeming the payment with the GridBank server.
package charging

import (
	"bufio"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mapfile simulates the Globus grid-mapfile (§2.3): the mapping from a
// Grid identity (Certificate Name) to a local system account. "GSC's
// Certificate Name is temporarily mapped to the local account to indicate
// the dynamic relationship between the account and current user."
type Mapfile struct {
	mu      sync.RWMutex
	entries map[string]string // certificate name -> local account
}

// Mapfile errors.
var (
	ErrMapped    = errors.New("charging: certificate already mapped")
	ErrNotMapped = errors.New("charging: certificate not mapped")
)

// NewMapfile creates an empty grid-mapfile.
func NewMapfile() *Mapfile {
	return &Mapfile{entries: make(map[string]string)}
}

// Add binds a certificate name to a local account.
func (m *Mapfile) Add(certName, localAccount string) error {
	if certName == "" || localAccount == "" {
		return errors.New("charging: mapfile entry requires both names")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.entries[certName]; ok {
		return fmt.Errorf("%w: %s -> %s", ErrMapped, certName, existing)
	}
	m.entries[certName] = localAccount
	return nil
}

// Remove deletes the binding for a certificate name, "returning the local
// account to the pool of free accounts" at the caller's side (§2.3).
func (m *Mapfile) Remove(certName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[certName]; !ok {
		return fmt.Errorf("%w: %s", ErrNotMapped, certName)
	}
	delete(m.entries, certName)
	return nil
}

// Lookup resolves a certificate name to its local account.
func (m *Mapfile) Lookup(certName string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	acct, ok := m.entries[certName]
	return acct, ok
}

// Len returns the number of live mappings.
func (m *Mapfile) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Serialize renders the mapfile in the Globus text format:
//
//	"certificate name" local_account
//
// sorted by certificate name for determinism.
func (m *Mapfile) Serialize() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.entries))
	for n := range m.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%q %s\n", n, m.entries[n])
	}
	return b.String()
}

// ParseMapfile reads the Globus text format back into a Mapfile.
func ParseMapfile(s string) (*Mapfile, error) {
	m := NewMapfile()
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, `"`) {
			return nil, fmt.Errorf("charging: malformed mapfile line %q", line)
		}
		end := strings.LastIndex(line, `"`)
		if end <= 0 {
			return nil, fmt.Errorf("charging: malformed mapfile line %q", line)
		}
		cert := line[1:end]
		local := strings.TrimSpace(line[end+1:])
		if local == "" {
			return nil, fmt.Errorf("charging: mapfile line missing account: %q", line)
		}
		if err := m.Add(cert, local); err != nil {
			return nil, err
		}
	}
	return m, sc.Err()
}
