package charging

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
)

// StatementContext domain-separates GSP-signed cost statements (§2.1:
// "these calculations along with the rates and RUR records are signed by
// GSP to provide non-repudiation").
const StatementContext = "gridbank/statement/v1"

// Module errors.
var (
	ErrUnknownJob   = errors.New("charging: no admitted job with this ID")
	ErrDuplicateJob = errors.New("charging: job already admitted")
	ErrNoInstrument = errors.New("charging: admission carries no payment instrument")
)

// Redeemer is the GBCM's window onto the GridBank server: redemption of
// payment instruments. *core.Client satisfies it; tests use in-process
// banks through a thin adapter.
type Redeemer interface {
	RedeemCheque(cheque *payment.SignedCheque, claim *payment.ChequeClaim) (*core.RedeemChequeResponse, error)
	RedeemChain(chain *payment.SignedChain, claim *payment.ChainClaim) (*core.RedeemChainResponse, error)
}

// Admission is the GBCM's record of an accepted job: the validated
// payment instrument and the template account executing it.
type Admission struct {
	JobID        string
	Consumer     string // certificate name
	LocalAccount string
	Cheque       *payment.SignedCheque // exactly one of Cheque/Chain is set
	Chain        *payment.SignedChain
	// chainCommitment is the signature-verified payload commitment from
	// admission — word verification and redemption read it, never the
	// unverified wrapper copy.
	chainCommitment *payment.ChainCommitment
	// chain streaming state: highest verified word
	wordIndex int
	word      []byte
}

// ChargeResult reports a settled job.
type ChargeResult struct {
	JobID     string
	Statement *rur.CostStatement
	// SignedStatement is the GSP-signed pricing calculation (statement +
	// RUR + rates), submitted alongside the claim.
	SignedStatement *pki.Signed
	// Paid is what the bank actually transferred.
	Paid          string
	TransactionID uint64
}

// Module is the GridBank Charging Module for one GSP.
type Module struct {
	identity *pki.Identity
	trust    *pki.TrustStore
	pool     *TemplatePool
	redeemer Redeemer
	now      func() time.Time

	mu       sync.Mutex
	admitted map[string]*Admission // by job ID
}

// ModuleConfig configures a GBCM.
type ModuleConfig struct {
	// Identity is the GSP identity; signs cost statements and is the
	// payee instruments must be made out to.
	Identity *pki.Identity
	// Trust verifies bank signatures on instruments.
	Trust *pki.TrustStore
	// Pool provides template accounts; required.
	Pool *TemplatePool
	// Redeemer submits redemptions to GridBank; required.
	Redeemer Redeemer
	// Now for expiry checks; defaults to time.Now.
	Now func() time.Time
}

// NewModule builds a GBCM.
func NewModule(cfg ModuleConfig) (*Module, error) {
	if cfg.Identity == nil || cfg.Trust == nil {
		return nil, errors.New("charging: module requires identity and trust store")
	}
	if cfg.Pool == nil {
		return nil, errors.New("charging: module requires a template account pool")
	}
	if cfg.Redeemer == nil {
		return nil, errors.New("charging: module requires a redeemer")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Module{
		identity: cfg.Identity,
		trust:    cfg.Trust,
		pool:     cfg.Pool,
		redeemer: cfg.Redeemer,
		now:      cfg.Now,
		admitted: make(map[string]*Admission),
	}, nil
}

// Pool exposes the template pool (stats for experiments).
func (m *Module) Pool() *TemplatePool { return m.pool }

// AdmitCheque validates a cheque-backed job request and assigns a
// template account (§2.3: "provided GSC presents a well-formed payment
// instrument, GSP dynamically assigns one of the template accounts").
func (m *Module) AdmitCheque(jobID string, cheque *payment.SignedCheque) (*Admission, error) {
	if _, err := payment.VerifyCheque(cheque, m.trust, m.identity.SubjectName(), m.now()); err != nil {
		return nil, fmt.Errorf("charging: cheque rejected: %w", err)
	}
	return m.admit(jobID, cheque.Cheque.DrawerCert, &Admission{Cheque: cheque})
}

// AdmitChain validates a hash-chain-backed job request and assigns a
// template account.
func (m *Module) AdmitChain(jobID string, chain *payment.SignedChain) (*Admission, error) {
	_, cc, err := payment.VerifyChain(chain, m.trust, m.identity.SubjectName(), m.now())
	if err != nil {
		return nil, fmt.Errorf("charging: chain rejected: %w", err)
	}
	// Trust only the signature-verified payload commitment from here on —
	// the wrapper copy is attacker-writable.
	return m.admit(jobID, cc.DrawerCert, &Admission{Chain: chain, chainCommitment: cc})
}

func (m *Module) admit(jobID, consumer string, adm *Admission) (*Admission, error) {
	if jobID == "" {
		return nil, errors.New("charging: empty job ID")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.admitted[jobID]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateJob, jobID)
	}
	local, err := m.pool.Acquire(consumer)
	if err != nil {
		return nil, err
	}
	adm.JobID = jobID
	adm.Consumer = consumer
	adm.LocalAccount = local
	m.admitted[jobID] = adm
	return adm, nil
}

// Admission returns the admission record for a job.
func (m *Module) Admission(jobID string) (*Admission, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	adm, ok := m.admitted[jobID]
	return adm, ok
}

// AcceptWord records a streamed hash-chain payment word for an admitted
// pay-as-you-go job, verifying it against the commitment first. Words
// must arrive with strictly increasing indices.
func (m *Module) AcceptWord(jobID string, index int, word []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	adm, ok := m.admitted[jobID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	if adm.Chain == nil {
		return fmt.Errorf("%w: job %s is not chain-paid", ErrNoInstrument, jobID)
	}
	if index <= adm.wordIndex {
		return fmt.Errorf("charging: word index %d not beyond %d", index, adm.wordIndex)
	}
	// Incremental verification: hash forward from the last accepted word
	// (or the root when none yet) — O(index - wordIndex) instead of
	// re-deriving the whole prefix from the root every tick.
	if err := payment.VerifyWordAfter(adm.chainCommitment, adm.wordIndex, adm.word, index, word); err != nil {
		return err
	}
	adm.wordIndex = index
	adm.word = append([]byte(nil), word...)
	return nil
}

// signedCalculation is the §2.1 non-repudiation envelope: the RUR, the
// rates used, and the resulting statement, all under one GSP signature.
type signedCalculation struct {
	RUR       *rur.Record        `json:"rur"`
	Rates     *rur.RateCard      `json:"rates"`
	Statement *rur.CostStatement `json:"statement"`
}

// SettleCheque completes a cheque-paid job: price the RUR against the
// agreed rates, cap the claim at the cheque limit, sign the calculation,
// redeem with the bank, and release the template account.
func (m *Module) SettleCheque(jobID string, record *rur.Record, rates *rur.RateCard) (*ChargeResult, error) {
	m.mu.Lock()
	adm, ok := m.admitted[jobID]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	if adm.Cheque == nil {
		return nil, fmt.Errorf("%w: job %s is not cheque-paid", ErrNoInstrument, jobID)
	}
	statement, signedStmt, rurBytes, err := m.priceAndSign(record, rates)
	if err != nil {
		return nil, err
	}
	amount := statement.Total
	if amount.Cmp(adm.Cheque.Cheque.Limit) > 0 {
		// The metered cost exceeded the reserved budget: the cheque is
		// the guarantee ceiling, so claim exactly the limit. The shortfall
		// is the GSP's exposure — exactly why §3.4 recommends sizing the
		// lock to the budget.
		amount = adm.Cheque.Cheque.Limit
	}
	if amount.IsZero() {
		// Nothing chargeable: release resources without redemption.
		m.finish(jobID, adm)
		return &ChargeResult{JobID: jobID, Statement: statement, SignedStatement: signedStmt, Paid: "0"}, nil
	}
	stmtBytes := signedStmt.Payload
	resp, err := m.redeemer.RedeemCheque(adm.Cheque, &payment.ChequeClaim{
		Serial:    adm.Cheque.Cheque.Serial,
		Amount:    amount,
		RUR:       rurBytes,
		Statement: stmtBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("charging: redemption failed: %w", err)
	}
	m.finish(jobID, adm)
	return &ChargeResult{
		JobID:           jobID,
		Statement:       statement,
		SignedStatement: signedStmt,
		Paid:            resp.Paid.String(),
		TransactionID:   resp.TransactionID,
	}, nil
}

// SettleChain completes a chain-paid job: redeem the highest streamed
// word and release the template account. The RUR travels as redemption
// evidence.
func (m *Module) SettleChain(jobID string, record *rur.Record, rates *rur.RateCard) (*ChargeResult, error) {
	m.mu.Lock()
	adm, ok := m.admitted[jobID]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	if adm.Chain == nil {
		return nil, fmt.Errorf("%w: job %s is not chain-paid", ErrNoInstrument, jobID)
	}
	statement, signedStmt, rurBytes, err := m.priceAndSign(record, rates)
	if err != nil {
		return nil, err
	}
	if adm.wordIndex == 0 {
		// No words received: nothing to redeem.
		m.finish(jobID, adm)
		return &ChargeResult{JobID: jobID, Statement: statement, SignedStatement: signedStmt, Paid: "0"}, nil
	}
	resp, err := m.redeemer.RedeemChain(adm.Chain, &payment.ChainClaim{
		Serial: adm.chainCommitment.Serial,
		Index:  adm.wordIndex,
		Word:   adm.word,
		RUR:    rurBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("charging: chain redemption failed: %w", err)
	}
	m.finish(jobID, adm)
	return &ChargeResult{
		JobID:           jobID,
		Statement:       statement,
		SignedStatement: signedStmt,
		Paid:            resp.Paid.String(),
		TransactionID:   resp.TransactionID,
	}, nil
}

func (m *Module) priceAndSign(record *rur.Record, rates *rur.RateCard) (*rur.CostStatement, *pki.Signed, []byte, error) {
	statement, err := rur.Price(record, rates)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("charging: pricing: %w", err)
	}
	signed, err := pki.Sign(m.identity, StatementContext, signedCalculation{
		RUR:       record,
		Rates:     rates,
		Statement: statement,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	rurBytes, err := rur.Encode(record, rur.FormatJSON)
	if err != nil {
		return nil, nil, nil, err
	}
	return statement, signed, rurBytes, nil
}

// finish releases the job's template account and forgets the admission.
func (m *Module) finish(jobID string, adm *Admission) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.admitted, jobID)
	// Release only if the consumer has no other admitted jobs (one local
	// account serves all of a consumer's concurrent jobs).
	for _, other := range m.admitted {
		if other.Consumer == adm.Consumer {
			return
		}
	}
	_ = m.pool.Release(adm.Consumer)
}

// VerifyStatement checks a GSP-signed calculation and re-derives its
// total, for dispute resolution: the bank (or the consumer) can confirm
// the charge followed from the RUR and the agreed rates.
func VerifyStatement(signed *pki.Signed, ts *pki.TrustStore, now time.Time) (*rur.CostStatement, string, error) {
	var calc signedCalculation
	signer, err := signed.Verify(ts, StatementContext, now, &calc)
	if err != nil {
		return nil, "", err
	}
	rederived, err := rur.Price(calc.RUR, calc.Rates)
	if err != nil {
		return nil, "", fmt.Errorf("charging: statement does not re-derive: %w", err)
	}
	if rederived.Total != calc.Statement.Total {
		return nil, "", fmt.Errorf("charging: statement total %s does not match re-derived %s",
			calc.Statement.Total, rederived.Total)
	}
	return calc.Statement, signer, nil
}
