package charging

import (
	"fmt"
	"testing"
	"testing/quick"

	"gridbank/internal/core"
	"gridbank/internal/currency"
)

// Property: any set of well-formed mapfile entries survives a
// serialize/parse round trip exactly.
func TestMapfileRoundTripProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		m := NewMapfile()
		want := map[string]string{}
		for i, p := range pairs {
			cert := fmt.Sprintf("CN=user-%d,O=VO %d", i, p)
			local := fmt.Sprintf("grid%03d", i%1000)
			if err := m.Add(cert, local); err != nil {
				return false
			}
			want[cert] = local
		}
		back, err := ParseMapfile(m.Serialize())
		if err != nil {
			return false
		}
		if back.Len() != len(want) {
			return false
		}
		for cert, local := range want {
			got, ok := back.Lookup(cert)
			if !ok || got != local {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPoolAcquireRelease(b *testing.B) {
	pool, err := NewTemplatePool("grid", 16, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert := fmt.Sprintf("CN=u%d", i%64)
		if _, err := pool.Acquire(cert); err != nil {
			b.Fatal(err)
		}
		if err := pool.Release(cert); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBCMSettle measures the full provider-side settlement path:
// pricing, signing, redemption against an in-process bank.
func BenchmarkGBCMSettle(b *testing.B) {
	w := newGBCMWorld(b)
	// The fixture funds alice with 1000 G$; long bench runs need more.
	if _, err := w.bank.AdminDeposit("CN=root", &core.AdminAmountRequest{
		AccountID: accountsID(w.acct), Amount: currency.FromG(100_000_000),
	}); err != nil {
		b.Fatal(err)
	}
	rates := testRates(w.gsp.SubjectName())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cheque := w.issueCheque(b, currency.FromG(10))
		jobID := fmt.Sprintf("bench-%d", i)
		if _, err := w.module.AdmitCheque(jobID, cheque); err != nil {
			b.Fatal(err)
		}
		rec := testRecord(w.aliceID, w.gsp.SubjectName())
		rec.Job.JobID = jobID
		b.StartTimer()
		if _, err := w.module.SettleCheque(jobID, rec, rates); err != nil {
			b.Fatal(err)
		}
	}
}
