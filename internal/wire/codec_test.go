package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"unicode/utf8"
)

// reqCases spans the binary request layout: table ops and op-string
// ops, every optional field present and absent, nil and non-nil bodies.
func reqCases() []*Request {
	return []*Request{
		{ID: 1, Op: "Ping"},
		{ID: 2, Op: "DirectTransfer", Body: json.RawMessage(`{"amount":5}`)},
		{ID: 3, Op: "Custom.NotInTable", Body: json.RawMessage(`"x"`)},
		{ID: 4, Op: "CheckFunds", DeadlineMS: 1500},
		{ID: 5, Op: "Ping", Trace: "trace-abc123"},
		{ID: 6, Op: "Ping", Codecs: []string{CodecBin1, CodecJSON}},
		{ID: 7, Op: "Usage.Submit", DeadlineMS: 250, Trace: "t", Codecs: []string{CodecBin1}, Body: json.RawMessage(`{"charges":[]}`)},
		{ID: 1<<64 - 1, Op: "Micropay.Submit", Body: json.RawMessage(`{}`)},
	}
}

func respCases() []*Response {
	return []*Response{
		{ID: 1, OK: true},
		{ID: 2, OK: true, Body: json.RawMessage(`{"bank":"CN=b"}`)},
		{ID: 3, OK: false, Error: "no such account", Code: "not_found"},
		{ID: 4, OK: true, Codec: CodecBin1},
		{ID: 5, OK: false, Error: "boom", Code: "internal", Body: json.RawMessage(`null`)},
	}
}

// TestBinCodecRequestRoundTrip checks that every request shape survives
// a bin1 encode/decode unchanged, and decodes to exactly what the JSON
// codec decodes — the two codecs are interchangeable representations.
func TestBinCodecRequestRoundTrip(t *testing.T) {
	for _, in := range reqCases() {
		for _, c := range []Codec{Bin1, JSON} {
			var buf bytes.Buffer
			if err := c.Encode(&buf, in); err != nil {
				t.Fatalf("%s encode %+v: %v", c.Name(), in, err)
			}
			var out Request
			if err := c.Decode(&buf, &out); err != nil {
				t.Fatalf("%s decode %+v: %v", c.Name(), in, err)
			}
			if !reflect.DeepEqual(&out, in) {
				t.Fatalf("%s round-trip: got %+v, want %+v", c.Name(), &out, in)
			}
		}
	}
}

func TestBinCodecResponseRoundTrip(t *testing.T) {
	for _, in := range respCases() {
		for _, c := range []Codec{Bin1, JSON} {
			var buf bytes.Buffer
			if err := c.Encode(&buf, in); err != nil {
				t.Fatalf("%s encode %+v: %v", c.Name(), in, err)
			}
			var out Response
			if err := c.Decode(&buf, &out); err != nil {
				t.Fatalf("%s decode %+v: %v", c.Name(), in, err)
			}
			if !reflect.DeepEqual(&out, in) {
				t.Fatalf("%s round-trip: got %+v, want %+v", c.Name(), &out, in)
			}
		}
	}
}

// TestBinCodecAppendFrameMatchesEncode pins AppendFrame and Encode to
// the same bytes, since the client batches with one and the negotiation
// path writes with the other.
func TestBinCodecAppendFrameMatchesEncode(t *testing.T) {
	for _, in := range reqCases() {
		var appended bytes.Buffer
		if err := Bin1.AppendFrame(&appended, in); err != nil {
			t.Fatal(err)
		}
		var encoded bytes.Buffer
		if err := Bin1.Encode(&encoded, in); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(appended.Bytes(), encoded.Bytes()) {
			t.Fatalf("AppendFrame and Encode disagree for %+v", in)
		}
	}
}

// TestCrossCodecMismatchIsTyped is the satellite-5 matrix invariant: a
// reader on the wrong codec refuses with ErrCodecMismatch instead of a
// parse error, so operators can tell skew from corruption.
func TestCrossCodecMismatchIsTyped(t *testing.T) {
	var binFrame bytes.Buffer
	if err := Bin1.Encode(&binFrame, &Request{ID: 1, Op: "Ping"}); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := JSON.Decode(&binFrame, &out); !errors.Is(err, ErrCodecMismatch) {
		t.Fatalf("json codec reading bin1 frame = %v, want ErrCodecMismatch", err)
	}

	var jsonFrame bytes.Buffer
	if err := JSON.Encode(&jsonFrame, &Request{ID: 1, Op: "Ping"}); err != nil {
		t.Fatal(err)
	}
	if err := Bin1.Decode(&jsonFrame, &out); !errors.Is(err, ErrCodecMismatch) {
		t.Fatalf("bin1 codec reading json frame = %v, want ErrCodecMismatch", err)
	}
}

func TestNegotiateCodec(t *testing.T) {
	all := []string{CodecBin1, CodecJSON}
	if c, ok := NegotiateCodec([]string{CodecBin1, CodecJSON}, all); !ok || c.Name() != CodecBin1 {
		t.Fatalf("preference order not honored: %v %v", c, ok)
	}
	if c, ok := NegotiateCodec([]string{"zstd9", CodecJSON}, all); !ok || c.Name() != CodecJSON {
		t.Fatalf("unknown offers should be skipped: %v %v", c, ok)
	}
	if c, ok := NegotiateCodec([]string{CodecBin1}, []string{CodecJSON}); ok {
		t.Fatalf("refused offer negotiated anyway: %v", c)
	}
	if _, ok := NegotiateCodec(nil, all); ok {
		t.Fatal("empty offer negotiated")
	}
}

// TestOfferlessFramesStaySeedIdentical pins the gate: a request without
// an offer and a response without a confirmation must encode to exactly
// the seed JSON bytes — negotiation is invisible until used. (The
// hardcoded-frame tests in wire_test.go pin the format itself; this
// pins the new fields' omitempty behavior.)
func TestOfferlessFramesStaySeedIdentical(t *testing.T) {
	var frame bytes.Buffer
	if err := JSON.Encode(&frame, &Request{ID: 7, Op: "Ping"}); err != nil {
		t.Fatal(err)
	}
	want := `{"id":7,"op":"Ping"}`
	if got := string(frame.Bytes()[4:]); got != want {
		t.Fatalf("offerless request payload = %s, want %s", got, want)
	}
	frame.Reset()
	if err := JSON.Encode(&frame, &Response{ID: 7, OK: true}); err != nil {
		t.Fatal(err)
	}
	want = `{"id":7,"ok":true}`
	if got := string(frame.Bytes()[4:]); got != want {
		t.Fatalf("confirmationless response payload = %s, want %s", got, want)
	}
}

// FuzzBinCodecRequest cross-checks the two codecs on arbitrary field
// values: whatever bin1 round-trips must equal what json round-trips.
func FuzzBinCodecRequest(f *testing.F) {
	f.Add(uint64(1), "Ping", int64(0), "", []byte(nil), false)
	f.Add(uint64(9), "DirectTransfer", int64(2500), "trace-1", []byte(`{"a":1}`), true)
	f.Add(uint64(0), "Weird.Op", int64(-3), "t", []byte(`"s"`), false)
	f.Fuzz(func(t *testing.T, id uint64, op string, deadline int64, trace string, body []byte, offer bool) {
		if !utf8.ValidString(op) || !utf8.ValidString(trace) {
			// JSON replaces invalid UTF-8 with U+FFFD while bin1 carries
			// raw bytes; equivalence is only claimed for valid strings.
			t.Skip()
		}
		in := &Request{ID: id, Op: op, DeadlineMS: deadline, Trace: trace}
		if offer {
			in.Codecs = []string{CodecBin1, CodecJSON}
		}
		if len(body) > 0 {
			// Bodies must be valid JSON for the json codec; wrap the
			// fuzzed bytes as a JSON string so both codecs accept them.
			quoted, err := json.Marshal(string(body))
			if err != nil {
				t.Skip()
			}
			in.Body = quoted
		}
		roundTrip := func(c Codec) (*Request, error) {
			var buf bytes.Buffer
			if err := c.Encode(&buf, in); err != nil {
				return nil, err
			}
			var out Request
			if err := c.Decode(&buf, &out); err != nil {
				t.Fatalf("%s decode of own encoding: %v", c.Name(), err)
			}
			return &out, nil
		}
		viaBin, binErr := roundTrip(Bin1)
		viaJSON, jsonErr := roundTrip(JSON)
		if binErr != nil || jsonErr != nil {
			// Oversized strings or invalid UTF-8 may be encodable by one
			// codec and not the other; equivalence only holds when both
			// accept the message.
			return
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codec divergence:\n bin1: %+v\n json: %+v", viaBin, viaJSON)
		}
	})
}

func FuzzBinCodecResponse(f *testing.F) {
	f.Add(uint64(1), true, "", "", "", []byte(nil))
	f.Add(uint64(3), false, "denied", "denied", "", []byte(nil))
	f.Add(uint64(4), true, "", "", "bin1", []byte(`{"ok":1}`))
	f.Fuzz(func(t *testing.T, id uint64, ok bool, errMsg, code, codec string, body []byte) {
		if !utf8.ValidString(errMsg) || !utf8.ValidString(code) || !utf8.ValidString(codec) {
			t.Skip()
		}
		in := &Response{ID: id, OK: ok, Error: errMsg, Code: code, Codec: codec}
		if len(body) > 0 {
			quoted, err := json.Marshal(string(body))
			if err != nil {
				t.Skip()
			}
			in.Body = quoted
		}
		roundTrip := func(c Codec) (*Response, error) {
			var buf bytes.Buffer
			if err := c.Encode(&buf, in); err != nil {
				return nil, err
			}
			var out Response
			if err := c.Decode(&buf, &out); err != nil {
				t.Fatalf("%s decode of own encoding: %v", c.Name(), err)
			}
			return &out, nil
		}
		viaBin, binErr := roundTrip(Bin1)
		viaJSON, jsonErr := roundTrip(JSON)
		if binErr != nil || jsonErr != nil {
			return
		}
		if !reflect.DeepEqual(viaBin, viaJSON) {
			t.Fatalf("codec divergence:\n bin1: %+v\n json: %+v", viaBin, viaJSON)
		}
	})
}
