package wire

import (
	"bytes"
	"io"
	"testing"
)

// benchRequest is a representative frame: a cheque-redemption-sized
// body (~1 KiB), the common case on the provider hot path.
func benchRequest() *Request {
	body := bytes.Repeat([]byte("x"), 1000)
	return &Request{ID: 42, Op: "RedeemCheque", Body: []byte(`{"pad":"` + string(body) + `"}`)}
}

func BenchmarkWriteMsg(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteMsg(io.Discard, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelWriteMsg(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := WriteMsg(io.Discard, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReadMsg(b *testing.B) {
	var frame bytes.Buffer
	if err := WriteMsg(&frame, benchRequest()); err != nil {
		b.Fatal(err)
	}
	raw := frame.Bytes()
	r := bytes.NewReader(raw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		var req Request
		if err := ReadMsg(r, &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelReadMsg(b *testing.B) {
	var frame bytes.Buffer
	if err := WriteMsg(&frame, benchRequest()); err != nil {
		b.Fatal(err)
	}
	raw := frame.Bytes()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		r := bytes.NewReader(raw)
		for pb.Next() {
			r.Reset(raw)
			var req Request
			if err := ReadMsg(r, &req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendMsgBatch measures the coalesced write path: 16 frames
// into one buffer, one (discarded) flush.
func BenchmarkAppendMsgBatch(b *testing.B) {
	resp := &Response{ID: 7, OK: true, Body: []byte(`{"balance":"123.45"}`)}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		for j := 0; j < 16; j++ {
			if err := AppendMsg(&buf, resp); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := io.Discard.Write(buf.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}
