// Package wire implements GridBank's framed message protocol: the
// "message formats and communication protocols" half of the Payment
// Protocol Layer (§3.2), carried over the Security Layer's
// mutually-authenticated TLS channels.
//
// Framing is 4-byte big-endian length + a codec-determined payload.
// The seed codec is JSON — deliberately boring: auditability of an
// accounting protocol beats cleverness. Connections that negotiate the
// "bin1" codec (first-frame `codecs` offer, see Codec) switch to a
// fixed-layout binary payload for the hot path; un-negotiated
// connections remain byte-identical to the seed protocol. Requests
// carry an operation name and opaque body; responses echo the request
// ID.
package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a single message. RURs are small; 4 MiB leaves room
// for batched redemptions while keeping memory use per connection
// bounded (DoS hygiene, §3.2).
const MaxFrame = 4 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// Request is a client → server message.
type Request struct {
	// ID matches the response to the request on a multiplexed connection.
	ID uint64 `json:"id"`
	// Op names the GridBank API operation (§5.2), e.g. "RequestCheque".
	Op string `json:"op"`
	// DeadlineMS is the caller's remaining patience in milliseconds at
	// the moment the request was sent (a relative budget, deliberately
	// not an absolute timestamp: client and server clocks are not
	// assumed synchronized across a grid). Zero means no deadline, and
	// omitempty keeps deadline-free frames byte-identical to the seed
	// protocol's.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace is the caller's request-trace ID, threaded through dispatch
	// into per-request spans and the slow-op log so one slow call can be
	// followed across client retries, shard redirects, and servers.
	// Empty means untraced, and omitempty keeps trace-free frames
	// byte-identical to the seed protocol's (same discipline as
	// DeadlineMS).
	Trace string `json:"trace,omitempty"`
	// Codecs offers a codec negotiation: the client's supported wire
	// codecs in preference order (e.g. ["bin1","json"]), sent on the
	// first request of a connection. A server that recognizes one
	// confirms it in Response.Codec and both sides switch after that
	// exchange. Empty means no negotiation, and omitempty keeps
	// negotiation-free frames byte-identical to the seed protocol's —
	// seed peers ignore the field and the connection stays JSON.
	Codecs []string `json:"codecs,omitempty"`
	// Body is the operation-specific payload.
	Body json.RawMessage `json:"body,omitempty"`
}

// Response is a server → client message.
type Response struct {
	ID uint64 `json:"id"`
	OK bool   `json:"ok"`
	// Error carries the failure reason when !OK. Errors are strings by
	// design: the wire boundary is a trust boundary, and clients must
	// not build control flow on server internals beyond the Code.
	Error string `json:"error,omitempty"`
	// Code is a stable machine-readable error class (see codes.go).
	Code string `json:"code,omitempty"`
	// Codec confirms a codec negotiation: the name the server picked
	// from the request's Codecs offer. Frames after this response use
	// the confirmed codec in both directions. Empty (the usual case)
	// keeps the frame byte-identical to the seed protocol's.
	Codec string `json:"codec,omitempty"`
	// Body is the operation-specific result.
	Body json.RawMessage `json:"body,omitempty"`
}

// pooledMax caps the capacity of buffers retained by the frame pools:
// the occasional multi-megabyte frame should not pin its allocation
// for the lifetime of the process.
const pooledMax = 64 << 10

// encPool holds scratch buffers for frame encoding.
var encPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readPool holds scratch buffers for frame bodies.
var readPool = sync.Pool{New: func() any { b := make([]byte, 4096); return &b }}

// AppendMsg appends one framed message to buf in the seed JSON codec:
// the 4-byte length header followed by the JSON body, produced in place
// so a batch of frames can be flushed with a single Write (one syscall,
// one TLS record). On error buf is restored to its prior length.
// Codec-aware paths call codec.AppendFrame instead.
func AppendMsg(buf *bytes.Buffer, msg any) error { return JSON.AppendFrame(buf, msg) }

// WriteMsg frames and writes one message in the seed JSON codec.
// Header and body go out in a single Write from a pooled buffer: one
// syscall and one TLS record per message instead of two. Codec-aware
// paths call codec.Encode instead.
func WriteMsg(w io.Writer, msg any) error { return JSON.Encode(w, msg) }

// ReadMsg reads one framed message into out using the seed JSON codec.
// The body is staged in a pooled buffer: json.Unmarshal copies
// everything it keeps (including RawMessage fields), so the scratch
// space is reusable the moment it returns. Codec-aware paths call
// codec.Decode instead.
func ReadMsg(r io.Reader, out any) error { return JSON.Decode(r, out) }

// DeadlineWriter arms a write deadline on Conn before every Write: a
// wedged peer (open socket, zero window) errors the write out instead
// of pinning its goroutine and buffers forever. A zero Timeout writes
// without deadlines. Shared by the server's response writer and the
// replica publisher's stream path.
type DeadlineWriter struct {
	Conn    net.Conn
	Timeout time.Duration
}

// Write implements io.Writer.
func (d *DeadlineWriter) Write(p []byte) (int, error) {
	if d.Timeout > 0 {
		_ = d.Conn.SetWriteDeadline(time.Now().Add(d.Timeout))
	}
	return d.Conn.Write(p)
}

// Conn is a convenience wrapper pairing buffered reads with direct
// writes over a net.Conn-ish stream. Each half carries its own codec
// (both start as the seed JSON codec) so a negotiated switch can take
// effect per direction at the exact frame boundary the handshake
// defines.
type Conn struct {
	r  io.Reader
	w  io.Writer
	rc Codec // read-half codec
	wc Codec // write-half codec
}

// NewConn wraps a stream. The read and write halves are independent —
// one goroutine may read while another writes (how the pipelined client
// and the multiplexed server use it) — but each half admits only one
// goroutine at a time (callers serialize within a direction). Codec
// switches likewise belong to the goroutine owning that half: the
// negotiation protocol guarantees no frames are in flight in the old
// codec when SetReadCodec/SetWriteCodec is called.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, 32<<10), w: rw, rc: JSON, wc: JSON}
}

// SetReadCodec switches the codec for subsequent reads. Call only from
// the goroutine that reads this Conn.
func (c *Conn) SetReadCodec(codec Codec) { c.rc = codec }

// SetWriteCodec switches the codec for subsequent writes. Call only
// from the goroutine that writes this Conn.
func (c *Conn) SetWriteCodec(codec Codec) { c.wc = codec }

// ReadCodec returns the current read-half codec.
func (c *Conn) ReadCodec() Codec { return c.rc }

// WriteCodec returns the current write-half codec.
func (c *Conn) WriteCodec() Codec { return c.wc }

// WriteRequest sends a request.
func (c *Conn) WriteRequest(req *Request) error { return c.wc.Encode(c.w, req) }

// ReadRequest receives a request.
func (c *Conn) ReadRequest() (*Request, error) {
	var req Request
	if err := c.rc.Decode(c.r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// WriteResponse sends a response.
func (c *Conn) WriteResponse(resp *Response) error { return c.wc.Encode(c.w, resp) }

// ReadResponse receives a response.
func (c *Conn) ReadResponse() (*Response, error) {
	var resp Response
	if err := c.rc.Decode(c.r, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Encode marshals a body payload for embedding in a Request/Response.
func Encode(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: encode body: %w", err)
	}
	return b, nil
}

// Decode unmarshals a body payload. The body's encoding is sniffed
// from its first byte: BinBodyMagic selects the binary body codec
// (out must implement BinaryBody with a matching tag), anything else
// is JSON. Sniffing keeps dispatch call sites codec-agnostic — the
// same Decode serves seed and negotiated connections.
func Decode(raw json.RawMessage, out any) error {
	if len(raw) == 0 {
		return errors.New("wire: empty body")
	}
	if raw[0] == BinBodyMagic {
		bb, ok := out.(BinaryBody)
		if !ok {
			return fmt.Errorf("%w: binary body for %T, which has no binary form", ErrCodecMismatch, out)
		}
		if len(raw) < 2 || raw[1] != bb.BinaryBodyTag() {
			return fmt.Errorf("wire: decode body: binary tag mismatch for %T", out)
		}
		if err := bb.DecodeBinaryBody(raw[2:]); err != nil {
			return fmt.Errorf("wire: decode binary body: %w", err)
		}
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("wire: decode body: %w", err)
	}
	return nil
}
