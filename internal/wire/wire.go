// Package wire implements GridBank's framed message protocol: the
// "message formats and communication protocols" half of the Payment
// Protocol Layer (§3.2), carried over the Security Layer's
// mutually-authenticated TLS channels.
//
// Framing is 4-byte big-endian length + JSON body. Requests carry an
// operation name and opaque body; responses echo the request ID. The
// format is deliberately boring: auditability of an accounting protocol
// beats cleverness.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a single message. RURs are small; 4 MiB leaves room
// for batched redemptions while keeping memory use per connection
// bounded (DoS hygiene, §3.2).
const MaxFrame = 4 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// Request is a client → server message.
type Request struct {
	// ID matches the response to the request on a multiplexed connection.
	ID uint64 `json:"id"`
	// Op names the GridBank API operation (§5.2), e.g. "RequestCheque".
	Op string `json:"op"`
	// DeadlineMS is the caller's remaining patience in milliseconds at
	// the moment the request was sent (a relative budget, deliberately
	// not an absolute timestamp: client and server clocks are not
	// assumed synchronized across a grid). Zero means no deadline, and
	// omitempty keeps deadline-free frames byte-identical to the seed
	// protocol's.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace is the caller's request-trace ID, threaded through dispatch
	// into per-request spans and the slow-op log so one slow call can be
	// followed across client retries, shard redirects, and servers.
	// Empty means untraced, and omitempty keeps trace-free frames
	// byte-identical to the seed protocol's (same discipline as
	// DeadlineMS).
	Trace string `json:"trace,omitempty"`
	// Body is the operation-specific payload.
	Body json.RawMessage `json:"body,omitempty"`
}

// Response is a server → client message.
type Response struct {
	ID uint64 `json:"id"`
	OK bool   `json:"ok"`
	// Error carries the failure reason when !OK. Errors are strings by
	// design: the wire boundary is a trust boundary, and clients must
	// not build control flow on server internals beyond the Code.
	Error string `json:"error,omitempty"`
	// Code is a stable machine-readable error class (see core package).
	Code string `json:"code,omitempty"`
	// Body is the operation-specific result.
	Body json.RawMessage `json:"body,omitempty"`
}

// pooledMax caps the capacity of buffers retained by the frame pools:
// the occasional multi-megabyte frame should not pin its allocation
// for the lifetime of the process.
const pooledMax = 64 << 10

// encPool holds scratch buffers for frame encoding.
var encPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readPool holds scratch buffers for frame bodies.
var readPool = sync.Pool{New: func() any { b := make([]byte, 4096); return &b }}

// AppendMsg appends one framed message to buf: the 4-byte length header
// followed by the JSON body, produced in place so a batch of frames can
// be flushed with a single Write (one syscall, one TLS record). On
// error buf is restored to its prior length.
func AppendMsg(buf *bytes.Buffer, msg any) error {
	start := buf.Len()
	buf.Write([]byte{0, 0, 0, 0}) // header placeholder, patched below
	enc := json.NewEncoder(buf)
	if err := enc.Encode(msg); err != nil {
		buf.Truncate(start)
		return fmt.Errorf("wire: encode: %w", err)
	}
	// Encoder appends a newline Marshal would not; strip it to keep the
	// frame bytes identical to the seed protocol's.
	if b := buf.Bytes(); len(b) > start+4 && b[len(b)-1] == '\n' {
		buf.Truncate(len(b) - 1)
	}
	n := buf.Len() - start - 4
	if n > MaxFrame {
		buf.Truncate(start)
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(buf.Bytes()[start:start+4], uint32(n))
	return nil
}

// WriteMsg frames and writes one message (any JSON-encodable value).
// Header and body go out in a single Write from a pooled buffer: one
// syscall and one TLS record per message instead of two.
func WriteMsg(w io.Writer, msg any) error {
	buf := encPool.Get().(*bytes.Buffer)
	buf.Reset()
	err := AppendMsg(buf, msg)
	if err == nil {
		_, err = w.Write(buf.Bytes())
	}
	if buf.Cap() <= pooledMax {
		encPool.Put(buf)
	}
	return err
}

// ReadMsg reads one framed message into out. The body is staged in a
// pooled buffer: json.Unmarshal copies everything it keeps (including
// RawMessage fields), so the scratch space is reusable the moment it
// returns.
func ReadMsg(r io.Reader, out any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n == 0 {
		return fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	bp := readPool.Get().(*[]byte)
	if uint32(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	buf := (*bp)[:n]
	defer func() {
		if cap(*bp) <= pooledMax {
			readPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: truncated body: %v", ErrBadFrame, err)
	}
	if err := json.Unmarshal(buf, out); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return nil
}

// DeadlineWriter arms a write deadline on Conn before every Write: a
// wedged peer (open socket, zero window) errors the write out instead
// of pinning its goroutine and buffers forever. A zero Timeout writes
// without deadlines. Shared by the server's response writer and the
// replica publisher's stream path.
type DeadlineWriter struct {
	Conn    net.Conn
	Timeout time.Duration
}

// Write implements io.Writer.
func (d *DeadlineWriter) Write(p []byte) (int, error) {
	if d.Timeout > 0 {
		_ = d.Conn.SetWriteDeadline(time.Now().Add(d.Timeout))
	}
	return d.Conn.Write(p)
}

// Conn is a convenience wrapper pairing buffered reads with direct
// writes over a net.Conn-ish stream.
type Conn struct {
	r io.Reader
	w io.Writer
}

// NewConn wraps a stream. The read and write halves are independent —
// one goroutine may read while another writes (how the pipelined client
// and the multiplexed server use it) — but each half admits only one
// goroutine at a time (callers serialize within a direction).
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, 32<<10), w: rw}
}

// WriteRequest sends a request.
func (c *Conn) WriteRequest(req *Request) error { return WriteMsg(c.w, req) }

// ReadRequest receives a request.
func (c *Conn) ReadRequest() (*Request, error) {
	var req Request
	if err := ReadMsg(c.r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// WriteResponse sends a response.
func (c *Conn) WriteResponse(resp *Response) error { return WriteMsg(c.w, resp) }

// ReadResponse receives a response.
func (c *Conn) ReadResponse() (*Response, error) {
	var resp Response
	if err := ReadMsg(c.r, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Encode marshals a body payload for embedding in a Request/Response.
func Encode(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: encode body: %w", err)
	}
	return b, nil
}

// Decode unmarshals a body payload.
func Decode(raw json.RawMessage, out any) error {
	if len(raw) == 0 {
		return errors.New("wire: empty body")
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("wire: decode body: %w", err)
	}
	return nil
}
