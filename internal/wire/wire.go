// Package wire implements GridBank's framed message protocol: the
// "message formats and communication protocols" half of the Payment
// Protocol Layer (§3.2), carried over the Security Layer's
// mutually-authenticated TLS channels.
//
// Framing is 4-byte big-endian length + JSON body. Requests carry an
// operation name and opaque body; responses echo the request ID. The
// format is deliberately boring: auditability of an accounting protocol
// beats cleverness.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a single message. RURs are small; 4 MiB leaves room
// for batched redemptions while keeping memory use per connection
// bounded (DoS hygiene, §3.2).
const MaxFrame = 4 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// Request is a client → server message.
type Request struct {
	// ID matches the response to the request on a multiplexed connection.
	ID uint64 `json:"id"`
	// Op names the GridBank API operation (§5.2), e.g. "RequestCheque".
	Op string `json:"op"`
	// Body is the operation-specific payload.
	Body json.RawMessage `json:"body,omitempty"`
}

// Response is a server → client message.
type Response struct {
	ID uint64 `json:"id"`
	OK bool   `json:"ok"`
	// Error carries the failure reason when !OK. Errors are strings by
	// design: the wire boundary is a trust boundary, and clients must
	// not build control flow on server internals beyond the Code.
	Error string `json:"error,omitempty"`
	// Code is a stable machine-readable error class (see core package).
	Code string `json:"code,omitempty"`
	// Body is the operation-specific result.
	Body json.RawMessage `json:"body,omitempty"`
}

// WriteMsg frames and writes one message (any JSON-encodable value).
func WriteMsg(w io.Writer, msg any) error {
	b, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if len(b) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(b))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadMsg reads one framed message into out.
func ReadMsg(r io.Reader, out any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n == 0 {
		return fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: truncated body: %v", ErrBadFrame, err)
	}
	if err := json.Unmarshal(buf, out); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return nil
}

// Conn is a convenience wrapper pairing buffered reads with direct
// writes over a net.Conn-ish stream.
type Conn struct {
	r io.Reader
	w io.Writer
}

// NewConn wraps a stream. The returned Conn is not safe for concurrent
// use by multiple goroutines on the same side (callers serialize).
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, 32<<10), w: rw}
}

// WriteRequest sends a request.
func (c *Conn) WriteRequest(req *Request) error { return WriteMsg(c.w, req) }

// ReadRequest receives a request.
func (c *Conn) ReadRequest() (*Request, error) {
	var req Request
	if err := ReadMsg(c.r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// WriteResponse sends a response.
func (c *Conn) WriteResponse(resp *Response) error { return WriteMsg(c.w, resp) }

// ReadResponse receives a response.
func (c *Conn) ReadResponse() (*Response, error) {
	var resp Response
	if err := ReadMsg(c.r, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Encode marshals a body payload for embedding in a Request/Response.
func Encode(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: encode body: %w", err)
	}
	return b, nil
}

// Decode unmarshals a body payload.
func Decode(raw json.RawMessage, out any) error {
	if len(raw) == 0 {
		return errors.New("wire: empty body")
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("wire: decode body: %w", err)
	}
	return nil
}
