package wire

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{ID: 7, Op: "Ping", Body: []byte(`{"x":1}`)}
	if err := WriteMsg(&buf, req); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadMsg(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Op != "Ping" || string(got.Body) != `{"x":1}` {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := Request{ID: 1, Op: "x", Body: []byte(`"` + strings.Repeat("a", MaxFrame) + `"`)}
	if err := WriteMsg(io.Discard, &big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write err = %v", err)
	}
	// Oversized header on read.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	var out Request
	if err := ReadMsg(&buf, &out); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read err = %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	var out Request
	// Zero-length frame.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := ReadMsg(&buf, &out); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero frame err = %v", err)
	}
	// Truncated body.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if err := ReadMsg(&buf, &out); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated err = %v", err)
	}
	// Garbage JSON.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("{{{")
	if err := ReadMsg(&buf, &out); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("garbage err = %v", err)
	}
	// Clean EOF propagates.
	buf.Reset()
	if err := ReadMsg(&buf, &out); !errors.Is(err, io.EOF) {
		t.Fatalf("eof err = %v", err)
	}
}

func TestConnOverPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	client, server := NewConn(c1), NewConn(c2)
	done := make(chan error, 1)
	go func() {
		req, err := server.ReadRequest()
		if err != nil {
			done <- err
			return
		}
		done <- server.WriteResponse(&Response{ID: req.ID, OK: true, Body: req.Body})
	}()
	if err := client.WriteRequest(&Request{ID: 42, Op: "Echo", Body: []byte(`"hello"`)}); err != nil {
		t.Fatal(err)
	}
	resp, err := client.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 || !resp.OK || string(resp.Body) != `"hello"` {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestEncodeDecode(t *testing.T) {
	type payload struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	raw, err := Encode(payload{Name: "x", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "x" || out.N != 3 {
		t.Fatalf("decode = %+v", out)
	}
	if err := Decode(nil, &out); err == nil {
		t.Error("empty decode accepted")
	}
	if err := Decode([]byte("{"), &out); err == nil {
		t.Error("bad decode accepted")
	}
	if _, err := Encode(make(chan int)); err == nil {
		t.Error("unencodable value accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, body []byte) bool {
		// Arbitrary bytes travel base64-encoded (JSON strings cannot
		// carry invalid UTF-8 losslessly).
		enc := base64.StdEncoding.EncodeToString(body)
		raw, err := Encode(enc)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteMsg(&buf, &Request{ID: id, Op: "op", Body: raw}); err != nil {
			return false
		}
		var got Request
		if err := ReadMsg(&buf, &got); err != nil {
			return false
		}
		var s string
		if err := Decode(got.Body, &s); err != nil {
			return false
		}
		back, err := base64.StdEncoding.DecodeString(s)
		return err == nil && got.ID == id && bytes.Equal(back, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteMsg(&buf, &Request{ID: uint64(i), Op: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		var got Request
		if err := ReadMsg(&buf, &got); err != nil {
			t.Fatal(err)
		}
		if got.ID != uint64(i) {
			t.Fatalf("message %d out of order: %+v", i, got)
		}
	}
}

// TestReadMsgGarbageRobustness: random byte streams never panic the
// reader and always yield a clean error or a valid message.
func TestReadMsgGarbageRobustness(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("ReadMsg panicked")
			}
		}()
		var req Request
		// Errors are fine; crashes and hangs are not.
		_ = ReadMsg(bytes.NewReader(data), &req)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// countingWriter records each Write call's size.
type countingWriter struct {
	writes int
	bytes  int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	c.bytes += len(p)
	return len(p), nil
}

// TestWriteMsgSingleWrite: header and body leave in ONE Write call —
// one syscall / one TLS record per message, and the precondition for
// the server's frame coalescing.
func TestWriteMsgSingleWrite(t *testing.T) {
	var cw countingWriter
	if err := WriteMsg(&cw, &Request{ID: 9, Op: "Ping", Body: []byte(`{"a":1}`)}); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Fatalf("WriteMsg used %d Write calls, want 1", cw.writes)
	}
	if cw.bytes < 5 {
		t.Fatalf("WriteMsg wrote %d bytes", cw.bytes)
	}
}

// TestWriteMsgMatchesSeedFraming: the pooled encoder produces exactly
// the seed protocol's bytes — 4-byte big-endian length + json.Marshal
// output, no trailing newline.
func TestWriteMsgMatchesSeedFraming(t *testing.T) {
	msg := &Response{ID: 3, OK: true, Body: []byte(`{"x":"<&>"}`)}
	var got bytes.Buffer
	if err := WriteMsg(&got, msg); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(want)))
	if !bytes.Equal(got.Bytes(), append(hdr[:], want...)) {
		t.Fatalf("framing drifted from seed:\n got %q\nwant %q", got.Bytes(), append(hdr[:], want...))
	}
}

// TestRequestFramingSeedCompatBothDirections: adding the optional
// deadline_ms header field must not move a single byte for
// deadline-free traffic. Outbound: a request without a deadline
// marshals to exactly the seed frame (hardcoded bytes, not derived
// from the current struct, so drift cannot hide). Inbound: a seed
// frame decodes with a zero deadline, and a frame carrying deadline_ms
// decodes on both new and seed-shaped readers (unknown JSON fields are
// ignored, which is what makes the extension compatible).
func TestRequestFramingSeedCompatBothDirections(t *testing.T) {
	// Outbound: no deadline → seed bytes.
	seedJSON := `{"id":7,"op":"Ping","body":{"x":1}}`
	var got bytes.Buffer
	if err := WriteMsg(&got, &Request{ID: 7, Op: "Ping", Body: []byte(`{"x":1}`)}); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(seedJSON)))
	want := append(hdr[:], seedJSON...)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("deadline-free request drifted from seed framing:\n got %q\nwant %q", got.Bytes(), want)
	}

	// Inbound: seed frame → zero deadline.
	var req Request
	if err := ReadMsg(bytes.NewReader(want), &req); err != nil {
		t.Fatal(err)
	}
	if req.ID != 7 || req.Op != "Ping" || req.DeadlineMS != 0 {
		t.Fatalf("seed frame decoded as %+v", req)
	}

	// Inbound: deadline-carrying frame → seed-shaped reader (a struct
	// without the field, standing in for a seed binary) still decodes.
	var withDL bytes.Buffer
	if err := WriteMsg(&withDL, &Request{ID: 8, Op: "Ping", DeadlineMS: 1500}); err != nil {
		t.Fatal(err)
	}
	var seedShaped struct {
		ID   uint64          `json:"id"`
		Op   string          `json:"op"`
		Body json.RawMessage `json:"body,omitempty"`
	}
	frame := withDL.Bytes()
	if err := json.Unmarshal(frame[4:], &seedShaped); err != nil {
		t.Fatalf("seed-shaped reader rejected deadline frame: %v", err)
	}
	if seedShaped.ID != 8 || seedShaped.Op != "Ping" {
		t.Fatalf("seed-shaped reader decoded %+v", seedShaped)
	}
	// And the new reader round-trips the deadline.
	var back Request
	if err := ReadMsg(bytes.NewReader(frame), &back); err != nil {
		t.Fatal(err)
	}
	if back.DeadlineMS != 1500 {
		t.Fatalf("deadline round trip = %d, want 1500", back.DeadlineMS)
	}
}

// TestTraceFramingSeedCompatBothDirections: the optional trace header
// gets the same byte-compat discipline as deadline_ms. Outbound: an
// untraced request marshals to exactly the seed frame (hardcoded
// bytes). Inbound: a seed frame decodes with an empty trace; a
// trace-carrying frame decodes on a seed-shaped reader (unknown JSON
// fields are ignored) and round-trips on the new one.
func TestTraceFramingSeedCompatBothDirections(t *testing.T) {
	// Outbound: no trace → seed bytes.
	seedJSON := `{"id":7,"op":"Ping","body":{"x":1}}`
	var got bytes.Buffer
	if err := WriteMsg(&got, &Request{ID: 7, Op: "Ping", Body: []byte(`{"x":1}`)}); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(seedJSON)))
	want := append(hdr[:], seedJSON...)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("untraced request drifted from seed framing:\n got %q\nwant %q", got.Bytes(), want)
	}

	// Inbound: seed frame → empty trace.
	var req Request
	if err := ReadMsg(bytes.NewReader(want), &req); err != nil {
		t.Fatal(err)
	}
	if req.ID != 7 || req.Op != "Ping" || req.Trace != "" {
		t.Fatalf("seed frame decoded as %+v", req)
	}

	// Inbound: trace-carrying frame → seed-shaped reader still decodes.
	var withTrace bytes.Buffer
	if err := WriteMsg(&withTrace, &Request{ID: 8, Op: "Ping", Trace: "00ff00ff00ff00ff00ff00ff"}); err != nil {
		t.Fatal(err)
	}
	var seedShaped struct {
		ID   uint64          `json:"id"`
		Op   string          `json:"op"`
		Body json.RawMessage `json:"body,omitempty"`
	}
	frame := withTrace.Bytes()
	if err := json.Unmarshal(frame[4:], &seedShaped); err != nil {
		t.Fatalf("seed-shaped reader rejected trace frame: %v", err)
	}
	if seedShaped.ID != 8 || seedShaped.Op != "Ping" {
		t.Fatalf("seed-shaped reader decoded %+v", seedShaped)
	}
	// And the new reader round-trips the trace.
	var back Request
	if err := ReadMsg(bytes.NewReader(frame), &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != "00ff00ff00ff00ff00ff00ff" {
		t.Fatalf("trace round trip = %q", back.Trace)
	}
}

// TestAppendMsgBatch: multiple frames appended to one buffer decode
// back in order, and an oversized frame leaves the buffer untouched.
func TestAppendMsgBatch(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := AppendMsg(&buf, &Response{ID: uint64(i), OK: true}); err != nil {
			t.Fatal(err)
		}
	}
	before := buf.Len()
	big := Response{ID: 99, Body: []byte(`"` + strings.Repeat("a", MaxFrame) + `"`)}
	if err := AppendMsg(&buf, &big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized append err = %v", err)
	}
	if buf.Len() != before {
		t.Fatalf("failed append left %d residue bytes", buf.Len()-before)
	}
	if err := AppendMsg(&buf, make(chan int)); err == nil {
		t.Fatal("unencodable append accepted")
	}
	if buf.Len() != before {
		t.Fatalf("failed append left %d residue bytes", buf.Len()-before)
	}
	for i := 0; i < 5; i++ {
		var resp Response
		if err := ReadMsg(&buf, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint64(i) || !resp.OK {
			t.Fatalf("frame %d decoded as %+v", i, resp)
		}
	}
}

// TestReadMsgBodyDoesNotAliasPool: RawMessage fields survive the pooled
// read buffer being reused by a later frame.
func TestReadMsgBodyDoesNotAliasPool(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, &Request{ID: 1, Op: "a", Body: []byte(`{"keep":"me"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(&buf, &Request{ID: 2, Op: "b", Body: []byte(`{"clobber":"xxxxxxxxxxxx"}`)}); err != nil {
		t.Fatal(err)
	}
	var first Request
	if err := ReadMsg(&buf, &first); err != nil {
		t.Fatal(err)
	}
	var second Request
	if err := ReadMsg(&buf, &second); err != nil {
		t.Fatal(err)
	}
	if string(first.Body) != `{"keep":"me"}` {
		t.Fatalf("first body clobbered by pooled buffer reuse: %q", first.Body)
	}
}

// TestReadMsgHeaderBombs: headers advertising huge frames are rejected
// before allocation.
func TestReadMsgHeaderBombs(t *testing.T) {
	for _, n := range []uint32{MaxFrame + 1, 1 << 30, 0xffffffff} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		var req Request
		if err := ReadMsg(bytes.NewReader(hdr[:]), &req); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("header %d: err = %v", n, err)
		}
	}
}
