package wire

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{ID: 7, Op: "Ping", Body: []byte(`{"x":1}`)}
	if err := WriteMsg(&buf, req); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadMsg(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Op != "Ping" || string(got.Body) != `{"x":1}` {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := Request{ID: 1, Op: "x", Body: []byte(`"` + strings.Repeat("a", MaxFrame) + `"`)}
	if err := WriteMsg(io.Discard, &big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write err = %v", err)
	}
	// Oversized header on read.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	var out Request
	if err := ReadMsg(&buf, &out); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read err = %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	var out Request
	// Zero-length frame.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := ReadMsg(&buf, &out); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero frame err = %v", err)
	}
	// Truncated body.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if err := ReadMsg(&buf, &out); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated err = %v", err)
	}
	// Garbage JSON.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("{{{")
	if err := ReadMsg(&buf, &out); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("garbage err = %v", err)
	}
	// Clean EOF propagates.
	buf.Reset()
	if err := ReadMsg(&buf, &out); !errors.Is(err, io.EOF) {
		t.Fatalf("eof err = %v", err)
	}
}

func TestConnOverPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	client, server := NewConn(c1), NewConn(c2)
	done := make(chan error, 1)
	go func() {
		req, err := server.ReadRequest()
		if err != nil {
			done <- err
			return
		}
		done <- server.WriteResponse(&Response{ID: req.ID, OK: true, Body: req.Body})
	}()
	if err := client.WriteRequest(&Request{ID: 42, Op: "Echo", Body: []byte(`"hello"`)}); err != nil {
		t.Fatal(err)
	}
	resp, err := client.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 || !resp.OK || string(resp.Body) != `"hello"` {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestEncodeDecode(t *testing.T) {
	type payload struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	raw, err := Encode(payload{Name: "x", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "x" || out.N != 3 {
		t.Fatalf("decode = %+v", out)
	}
	if err := Decode(nil, &out); err == nil {
		t.Error("empty decode accepted")
	}
	if err := Decode([]byte("{"), &out); err == nil {
		t.Error("bad decode accepted")
	}
	if _, err := Encode(make(chan int)); err == nil {
		t.Error("unencodable value accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, body []byte) bool {
		// Arbitrary bytes travel base64-encoded (JSON strings cannot
		// carry invalid UTF-8 losslessly).
		enc := base64.StdEncoding.EncodeToString(body)
		raw, err := Encode(enc)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteMsg(&buf, &Request{ID: id, Op: "op", Body: raw}); err != nil {
			return false
		}
		var got Request
		if err := ReadMsg(&buf, &got); err != nil {
			return false
		}
		var s string
		if err := Decode(got.Body, &s); err != nil {
			return false
		}
		back, err := base64.StdEncoding.DecodeString(s)
		return err == nil && got.ID == id && bytes.Equal(back, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteMsg(&buf, &Request{ID: uint64(i), Op: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		var got Request
		if err := ReadMsg(&buf, &got); err != nil {
			t.Fatal(err)
		}
		if got.ID != uint64(i) {
			t.Fatalf("message %d out of order: %+v", i, got)
		}
	}
}

// TestReadMsgGarbageRobustness: random byte streams never panic the
// reader and always yield a clean error or a valid message.
func TestReadMsgGarbageRobustness(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("ReadMsg panicked")
			}
		}()
		var req Request
		// Errors are fine; crashes and hangs are not.
		_ = ReadMsg(bytes.NewReader(data), &req)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReadMsgHeaderBombs: headers advertising huge frames are rejected
// before allocation.
func TestReadMsgHeaderBombs(t *testing.T) {
	for _, n := range []uint32{MaxFrame + 1, 1 << 30, 0xffffffff} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		var req Request
		if err := ReadMsg(bytes.NewReader(hdr[:]), &req); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("header %d: err = %v", n, err)
		}
	}
}
